//! End-to-end integration tests spanning every crate: workload generation →
//! threshold learning → approximate attention → hardware simulation.

use elsa::algorithm::attention::{ElsaAttention, ElsaParams};
use elsa::attention::exact;
use elsa::linalg::SeededRng;
use elsa::sim::functional::QuantizedElsaAttention;
use elsa::sim::{AcceleratorConfig, ElsaAccelerator};
use elsa::workloads::{AttentionPatternConfig, DatasetKind, ModelKind, Workload};

fn operator_for(train: &[elsa::attention::AttentionInputs], p: f64, seed: u64) -> ElsaAttention {
    let mut rng = SeededRng::new(seed);
    ElsaAttention::learn(ElsaParams::for_dims(64, 64, &mut rng), train, p)
}

#[test]
fn full_pipeline_on_bert_squad_workload() {
    let workload = Workload { model: ModelKind::BertLarge, dataset: DatasetKind::SquadV11 };
    let mut rng = SeededRng::new(1);
    let train = workload.generate_batch(2, &mut rng);
    let test = workload.generate_invocation(&mut rng);
    let operator = operator_for(&train, 1.0, 2);
    let config = AcceleratorConfig::paper();
    let accel = ElsaAccelerator::new(config, operator);

    let base = accel.run_base(&test);
    let approx = accel.run(&test);

    // Approximation must be faster, cheaper, and close in output.
    assert!(approx.cycles.total() < base.cycles.total());
    assert!(approx.energy.total_j() < base.energy.total_j());
    let rel = base.output.relative_frobenius_error(&approx.output);
    assert!(rel < 0.35, "output error {rel}");
    // Base equals the textbook operator.
    let exact_out = exact::attention(&test);
    assert!(base.output.max_abs_diff(&exact_out) < 1e-4);
}

#[test]
fn p_zero_is_bit_equivalent_to_exact() {
    let cfg = AttentionPatternConfig::new(96, 64, 4, 2.0);
    let mut rng = SeededRng::new(3);
    let inputs = cfg.generate(&mut rng);
    let mut rng2 = SeededRng::new(4);
    let operator = ElsaAttention::exact_fallback(ElsaParams::for_dims(64, 64, &mut rng2));
    let (out, stats) = operator.forward(&inputs);
    assert_eq!(stats.selected_pairs, 96 * 96);
    assert!(out.max_abs_diff(&exact::attention(&inputs)) < 1e-4);
}

#[test]
fn increasing_p_never_increases_candidates() {
    let cfg = AttentionPatternConfig::new(128, 64, 5, 2.0);
    let mut rng = SeededRng::new(5);
    let train = cfg.generate_batch(2, &mut rng);
    let test = cfg.generate(&mut rng);
    let mut last = f64::INFINITY;
    for p in [0.5, 1.0, 2.0, 4.0, 8.0] {
        let operator = operator_for(&train, p, 6);
        let (_, stats) = operator.forward(&test);
        let frac = stats.candidate_fraction();
        assert!(frac <= last + 1e-9, "candidates grew from {last} to {frac} at p={p}");
        last = frac;
    }
}

#[test]
fn quantized_datapath_consistent_with_f32_operator() {
    let cfg = AttentionPatternConfig::new(96, 64, 4, 2.0);
    let mut rng = SeededRng::new(7);
    let train = cfg.generate_batch(2, &mut rng);
    let test = cfg.generate(&mut rng);
    let operator = operator_for(&train, 1.0, 8);
    let quant = QuantizedElsaAttention::from_reference(&operator);
    let (f32_out, f32_stats) = operator.forward(&test);
    let (q_out, q_stats) = quant.forward(&test);
    assert!(
        (f32_stats.candidate_fraction() - q_stats.candidate_fraction()).abs() < 0.12,
        "selection diverged"
    );
    let rel = f32_out.relative_frobenius_error(&q_out);
    assert!(rel < 0.4, "quantized output error {rel}");
}

#[test]
fn hardware_runs_any_workload_up_to_nmax() {
    let config = AcceleratorConfig::paper();
    for workload in Workload::all() {
        let mut rng = SeededRng::new(9);
        let inputs = workload.generate_invocation(&mut rng);
        let operator = operator_for(std::slice::from_ref(&inputs), 1.0, 10);
        let accel = ElsaAccelerator::new(config, operator);
        let report = accel.run(&inputs);
        assert!(report.cycles.total() > 0, "{}", workload.name());
        assert!(report.output.as_slice().iter().all(|v| v.is_finite()));
    }
}

#[test]
fn deterministic_across_runs() {
    let workload = Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M };
    let run = || {
        let mut rng = SeededRng::new(11);
        let train = workload.generate_batch(1, &mut rng);
        let test = workload.generate_invocation(&mut rng);
        let operator = operator_for(&train, 2.0, 12);
        let (out, stats) = operator.forward(&test);
        (out, stats.selected_pairs)
    };
    let (a_out, a_sel) = run();
    let (b_out, b_sel) = run();
    assert_eq!(a_sel, b_sel);
    assert_eq!(a_out, b_out);
}
