//! Checks against the concrete numbers the paper states in prose — the
//! reproduction's anchor points.

use elsa::algorithm::calibration::{calibrate_theta_bias, CalibrationConfig};
use elsa::algorithm::hashing::SrpHasher;
use elsa::baselines::{AttentionDevice, GpuModel, IdealAccelerator};
use elsa::linalg::SeededRng;
use elsa::sim::cost::AreaPowerTable;
use elsa::sim::cycle;
use elsa::sim::AcceleratorConfig;

#[test]
fn theta_bias_for_d64_k64_is_0_127() {
    // §III-B: "For a specific case d = 64 and k = 64, θ_bias is 0.127."
    let cfg = CalibrationConfig::default();
    let bias = calibrate_theta_bias(&cfg, &mut SeededRng::new(2021));
    assert!((bias - 0.127).abs() < 0.02, "calibrated {bias}");
}

#[test]
fn hash_cost_formulas() {
    // §III-C: dense d^2 = 4096, two-way 2d^{3/2} = 1024, three-way 3d^{4/3} = 768.
    let mut rng = SeededRng::new(1);
    assert_eq!(SrpHasher::dense(64, 64, &mut rng).multiplication_count(), 4096);
    assert_eq!(SrpHasher::kronecker_two_way(64, &mut rng).multiplication_count(), 1024);
    assert_eq!(SrpHasher::kronecker_three_way(64, &mut rng).multiplication_count(), 768);
}

#[test]
fn preprocessing_cycle_formula() {
    // §IV-D: preprocessing takes 3d^{4/3}(n+1)/m_h cycles.
    let cfg = AcceleratorConfig::paper();
    assert_eq!(cfg.preprocessing_cycles(512), 768 * 513 / 256);
}

#[test]
fn hash_module_registers() {
    // §IV-C: 48 = 3·d^{2/3} registers hold the three 4x4 factor matrices.
    let mut rng = SeededRng::new(2);
    let hasher = SrpHasher::kronecker_three_way(64, &mut rng);
    let factors = hasher.kronecker_factors().expect("kronecker backend");
    let register_count: usize =
        factors.factors().iter().map(|f| f.rows() * f.cols()).sum();
    assert_eq!(register_count, 48);
}

#[test]
fn memory_sizes_of_section_4c() {
    // Key hash SRAM 4 KB, key norm SRAM 512 B, matrix memories ~36 KB at
    // n = 512, d = 64, 9-bit elements.
    let cfg = AcceleratorConfig::paper();
    assert_eq!(cfg.key_hash_bytes(), 4 * 1024);
    assert_eq!(cfg.key_norm_bytes(), 512);
    assert_eq!(cfg.matrix_memory_bytes(), 36 * 1024);
}

#[test]
fn table1_totals() {
    let table = AreaPowerTable::for_config(&AcceleratorConfig::paper());
    assert!((table.accelerator_area_mm2() - 1.255).abs() < 1e-6);
    assert!((table.external_area_mm2() - 0.892).abs() < 1e-6);
    assert!((table.peak_power_w() - 1.494).abs() < 0.005);
    assert!((table.aggregate_peak_power_w() - 17.93).abs() < 0.05);
}

#[test]
fn peak_throughput_iso_flops_matching() {
    // §V-C: twelve accelerators ≈ 13 TOPS vs the V100's 14 TFLOPS.
    let cfg = AcceleratorConfig::paper();
    let elsa = cfg.aggregate_peak_ops_per_second();
    let gpu = GpuModel::v100().peak_flops();
    let ratio = elsa / gpu;
    assert!((0.85..=1.0).contains(&ratio), "iso-peak ratio {ratio}");
}

#[test]
fn ideal_accelerator_has_528_multipliers() {
    let ideal = IdealAccelerator::paper();
    assert_eq!(ideal.multipliers, AcceleratorConfig::paper().total_multipliers());
}

#[test]
fn section_4d_eight_x_example() {
    // §IV-D: with P_c=8, m_h=64, m_o=8 (single pipeline) the design can
    // reach up to 8x over its own base as long as n >= 96, and the speedup
    // is min(n/c, 8).
    let cfg = AcceleratorConfig::single_pipeline();
    let n = 512;
    let base = cycle::simulate_execution_base(&cfg, n, n);
    // c = 8 candidates/query: selection scan (n/8 = 64 cycles) caps at 8x.
    let sparse: Vec<Vec<usize>> = (0..n).map(|i| (0..8).map(|j| (i + j * 64) % n).collect()).collect();
    let fast = cycle::simulate_execution(&cfg, n, &sparse, false);
    let speedup = base.execution as f64 / fast.execution as f64;
    assert!((7.0..=8.01).contains(&speedup), "speedup {speedup}");
    // c = 128 candidates/query: attention-bound, speedup n/c = 4.
    let half: Vec<Vec<usize>> = (0..n).map(|i| (0..128).map(|j| (i + j * 4) % n).collect()).collect();
    let medium = cycle::simulate_execution(&cfg, n, &half, false);
    let speedup = base.execution as f64 / medium.execution as f64;
    assert!((3.4..=4.01).contains(&speedup), "speedup {speedup}");
}

#[test]
fn gpu_baseline_window_matches_fig11() {
    // ELSA-base over GPU must land in the paper's 7.99-43.93x window for
    // the extreme padding cases (RACE ~ dense, SQuAD ~ 2.3x padding).
    let gpu = GpuModel::v100();
    let cfg = AcceleratorConfig::paper();
    let elsa_base_latency = |n_real: usize| {
        let report = cycle::simulate_execution_base(&cfg, n_real, n_real);
        report.total() as f64 * cfg.cycle_time_s()
    };
    let gpu_latency = gpu.attention_latency_s(512, 512, 64);
    let dense = (12.0 / elsa_base_latency(512)) / (1.0 / gpu_latency);
    let padded = (12.0 / elsa_base_latency(190)) / (1.0 / gpu_latency);
    assert!((5.0..=12.0).contains(&dense), "dense-case speedup {dense}");
    assert!((25.0..=60.0).contains(&padded), "padded-case speedup {padded}");
}
