//! Equivalence battery gating the tiled online-softmax exact kernel
//! (`elsa::attention::flash`). Three contracts, all **bitwise** — the
//! kernel's documented ulp bound against the naive reference is exactly 0,
//! so every comparison here is `to_bits` equality, never an epsilon:
//!
//! * **Tile invariance** — the output is bit-identical across all tile
//!   sizes, including 1, sizes that do not divide `n`, `n` itself, and
//!   tiles larger than `n`.
//! * **Thread invariance** — bit-identical at `ELSA_THREADS ∈ {1, 2, 4}`
//!   (the repo-wide determinism contract).
//! * **Reference equality** — bit-identical to the naive
//!   `matmul_transpose_b → softmax → matmul` pipeline on random inputs,
//!   on the full workload zoo, and on adversarial inputs: fully masked
//!   (all-`-inf`-score) rows, a single key, a single query, `n = 1`.
//!
//! Reproduce any failure with the reported seed:
//! `ELSA_TESTKIT_SEED=0x... cargo test --test flash_equivalence`.

use elsa::attention::exact::{self, AttentionInputs};
use elsa::attention::flash::{self, FlashConfig};
use elsa::linalg::{Matrix, SeededRng};
use elsa::parallel::with_threads;
use elsa::workloads::Workload;
use elsa_testkit::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn random_inputs(n_q: usize, n: usize, d: usize, seed: u64) -> AttentionInputs {
    let mut rng = SeededRng::new(seed);
    let q = Matrix::from_fn(n_q, d, |_, _| rng.standard_normal() as f32);
    let k = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
    let v = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
    AttentionInputs::new(q, k, v)
}

/// The acceptance-criteria tile grid for a given `n`: {1, 8, 64, n}, plus
/// a non-divisor and an oversized tile for the adversarial corners.
fn tile_grid(n: usize) -> Vec<usize> {
    let mut tiles = vec![1, 8, 64, n, 7, n + 13];
    tiles.sort_unstable();
    tiles.dedup();
    tiles
}

props! {
    config: Config::with_cases(12);

    // Bit-identical to the naive kernel across every tile size and worker
    // count — the tentpole contract, on random rectangular shapes.
    fn tiled_kernel_bit_identical_to_naive_everywhere(
        n in ints(1, 96),
        n_q in ints(1, 48),
        d in ints(1, 64),
        seed in ints_u64(1, 1 << 32),
    ) {
        let inputs = random_inputs(n_q, n, d, seed);
        let scale = 1.0 / (d as f32).sqrt();
        let naive = with_threads(1, || exact::attention_with_scale(&inputs, scale));
        for tile in tile_grid(n) {
            for workers in THREAD_COUNTS {
                let tiled = with_threads(workers, || {
                    flash::flash_attention(&inputs, scale, FlashConfig::new(tile))
                });
                prop_assert_eq!(
                    bits(&naive),
                    bits(&tiled),
                    "n={} n_q={} d={} tile={} threads={}",
                    n, n_q, d, tile, workers
                );
            }
        }
    }

    // Fully masked rows: dot products that overflow f32 to -inf for every
    // key must reproduce the naive kernel's uniform-distribution path
    // exactly, for rows mixed in with normal rows.
    fn masked_rows_match_naive_uniform_path(
        n in ints(1, 40),
        masked_rows in ints(1, 8),
        seed in ints_u64(1, 1 << 32),
    ) {
        let mut rng = SeededRng::new(seed);
        let d = 8;
        let n_q = masked_rows + 4;
        // Masked query rows have huge-magnitude entries opposing every key;
        // keys share one sign so each dot overflows to -inf after f32 cast.
        let k = Matrix::from_fn(n, d, |_, _| -(3.0e38 / d as f32) * (1.0 + rng.uniform() as f32));
        let q = Matrix::from_fn(n_q, d, |r, _| {
            if r < masked_rows { 3.0e38 } else { rng.standard_normal() as f32 * 0.5 }
        });
        let v = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let inputs = AttentionInputs::new(q, k, v);
        // Confirm the adversarial construction actually produces the -inf row.
        let scores = exact::attention_scores(&inputs, 1.0);
        prop_assert!(scores.row(0).iter().all(|s| *s == f32::NEG_INFINITY));
        let naive = exact::attention(&inputs);
        for tile in tile_grid(n) {
            let tiled = flash::flash_attention(&inputs, 1.0, FlashConfig::new(tile));
            prop_assert_eq!(bits(&naive), bits(&tiled), "n={} tile={}", n, tile);
        }
    }

    // Thread invariance on its own terms: the reference worker count is
    // part of the contract, so compare every count against every other.
    fn streaming_kernel_thread_invariant(
        n in ints(1, 80),
        seed in ints_u64(1, 1 << 32),
    ) {
        let inputs = random_inputs(n, n, 32, seed);
        let reference = with_threads(1, || flash::flash_attention_default(&inputs, 0.25));
        for workers in THREAD_COUNTS {
            let out = with_threads(workers, || flash::flash_attention_default(&inputs, 0.25));
            prop_assert_eq!(bits(&reference), bits(&out), "threads={}", workers);
        }
    }
}

/// The acceptance-criteria sweep: every workload in the zoo, tile sizes
/// {1, 8, 64, n}, threads {1, 2, 4}, bitwise against naive exact attention.
#[test]
fn workload_zoo_bit_identical_across_tiles_and_threads() {
    let mut rng = SeededRng::new(0xF1A5);
    for workload in Workload::all() {
        let inputs = workload.generate_invocation(&mut rng);
        let n = inputs.num_keys();
        let scale = 1.0 / (inputs.dim() as f32).sqrt();
        let naive = with_threads(1, || exact::attention_with_scale(&inputs, scale));
        for tile in [1, 8, 64, n] {
            for workers in THREAD_COUNTS {
                let tiled = with_threads(workers, || {
                    flash::flash_attention(&inputs, scale, FlashConfig::new(tile))
                });
                assert_eq!(
                    bits(&naive),
                    bits(&tiled),
                    "{workload}: n={n} tile={tile} threads={workers}"
                );
            }
        }
    }
}

#[test]
fn single_key_and_single_query_corners() {
    // n = 1: one key tile no matter the tile size; softmax over one score
    // is exactly 1.0, so the output row is the value row bit-for-bit.
    let inputs = random_inputs(3, 1, 16, 77);
    for tile in [1, 8, 64] {
        let out = flash::flash_attention(&inputs, 0.5, FlashConfig::new(tile));
        for i in 0..3 {
            for (a, b) in out.row(i).iter().zip(inputs.value().row(0)) {
                assert_eq!(a.to_bits(), b.to_bits(), "tile={tile} row={i}");
            }
        }
    }
    // Single query row: the par_rows_mut fan-out has exactly one unit of work.
    let inputs = random_inputs(1, 50, 16, 78);
    let naive = exact::attention(&inputs);
    for workers in THREAD_COUNTS {
        let tiled = with_threads(workers, || flash::flash_attention_default(&inputs, 1.0));
        assert_eq!(bits(&naive), bits(&tiled), "threads={workers}");
    }
}

#[test]
fn indivisible_tile_sizes_cover_the_remainder() {
    // n = 97 (prime): no tile in the grid divides it except 1 and 97.
    let inputs = random_inputs(13, 97, 24, 79);
    let naive = exact::attention_with_scale(&inputs, 0.2);
    for tile in [2, 3, 5, 8, 48, 96, 97, 128] {
        let tiled = flash::flash_attention(&inputs, 0.2, FlashConfig::new(tile));
        assert_eq!(bits(&naive), bits(&tiled), "tile={tile}");
    }
}

#[test]
fn streaming_workspace_is_linear_in_n() {
    // The memory claim behind the degradation-path rewiring: for the
    // serving config's n_max = 200 the streaming workspace (even with 8
    // rows in flight) is far below the naive score matrix.
    let n = 200;
    let streaming = flash::streaming_workspace_bytes(n, 64, 8);
    let naive = flash::naive_workspace_bytes(n, n);
    assert!(
        streaming * 10 < naive,
        "streaming {streaming} B vs naive {naive} B"
    );
    // And the gap widens quadratically: 4x the keys, ~4x the ratio.
    let big = flash::naive_workspace_bytes(4 * n, 4 * n) as f64
        / flash::streaming_workspace_bytes(4 * n, 64, 8) as f64;
    let small = naive as f64 / streaming as f64;
    assert!(big > 3.0 * small, "ratio {small} -> {big}");
}
