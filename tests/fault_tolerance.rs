//! Chaos battery for the fault-injection layer and the failover server.
//!
//! Three promises are under test, per the fault-tolerance design:
//!
//! * **(a) Zero faults are free** — with a zero-fault [`FaultPlan`], the
//!   fault-tolerant server's report is bit-for-bit identical
//!   (`f64::to_bits`, never an epsilon) to the plain `InferenceServer`, at
//!   any `ELSA_THREADS`.
//! * **(b) Failover completes everything** — under injected unit death
//!   with at least one survivor, every request completes, with no
//!   duplicated or dropped `RequestRecord`s.
//! * **(c) Corruption never escapes** — an injected NaN/∞/saturated value
//!   or wiped candidate set always triggers the exact-attention fallback;
//!   a NaN is never served.
//!
//! Reproduce any failure with the reported seed:
//! `ELSA_TESTKIT_SEED=0x... cargo test --test fault_tolerance`.

use std::sync::OnceLock;

use elsa::algorithm::attention::{ElsaAttention, ElsaParams};
use elsa::attention::exact::AttentionInputs;
use elsa::fault::{FaultPlan, FaultRates};
use elsa::linalg::{Matrix, SeededRng};
use elsa::parallel::with_threads;
use elsa::runtime::{FailoverPolicy, FaultTolerantServer, InferenceServer, RuntimeError};
use elsa::sim::{AcceleratorConfig, ElsaAccelerator};
use elsa::workloads::{DatasetKind, ModelKind, Workload};
use elsa_testkit::prelude::*;

const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn config() -> AcceleratorConfig {
    AcceleratorConfig { n_max: 200, num_accelerators: 4, ..AcceleratorConfig::paper() }
}

/// One learned operator shared by the whole battery (learning is the
/// expensive step and is orthogonal to the fault layer).
fn operator() -> &'static ElsaAttention {
    static OPERATOR: OnceLock<ElsaAttention> = OnceLock::new();
    OPERATOR.get_or_init(|| {
        let workload = Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M };
        let mut rng = SeededRng::new(0xE15A);
        let train = workload.generate_batch(1, &mut rng);
        ElsaAttention::learn(ElsaParams::for_dims(64, 64, &mut SeededRng::new(0xE15B)), &train, 1.0)
    })
}

fn requests(count: usize, seed: u64) -> Vec<AttentionInputs> {
    let workload = Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M };
    let mut rng = SeededRng::new(seed);
    workload.generate_batch(count, &mut rng)
}

fn record_bits(report: &elsa::runtime::ServingReport) -> Vec<(usize, u64, u64, bool, u32, bool)> {
    report
        .records
        .iter()
        .map(|r| {
            (r.n_real, r.service_s.to_bits(), r.completion_s.to_bits(), r.degraded, r.retries, r.failed)
        })
        .collect()
}

fn matrix_bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

props! {
    config: Config::with_cases(6);

    // (a) A zero-fault plan is bit-identical to the plain server, at any
    // worker count, and the fault-tolerant path agrees with itself across
    // worker counts.
    fn zero_fault_plan_is_bit_identical_to_plain_serving(
        count in ints(6, 14),
        batch_seed in ints_u64(1, 1 << 32),
        widx in ints(0, 4),
    ) {
        let batch = requests(count, batch_seed);
        let plain = InferenceServer::new(config(), operator().clone());
        let server = FaultTolerantServer::new(
            config(),
            operator().clone(),
            FaultPlan::none(),
            FailoverPolicy::default(),
        );
        let baseline = with_threads(1, || plain.serve(&batch));
        let served = with_threads(WORKER_COUNTS[widx], || server.serve(&batch))
            .expect("zero-fault plan cannot fail");
        prop_assert_eq!(record_bits(&baseline), record_bits(&served.report));
        // Outputs are the approximate pipeline's, bit-for-bit.
        let accel = ElsaAccelerator::new(config(), operator().clone());
        for (request, output) in batch.iter().zip(&served.outputs) {
            let output = output.as_ref().expect("no faults, no failures");
            prop_assert_eq!(matrix_bits(output), matrix_bits(&accel.run(request).output));
        }
    }

    // (b) Unit death with >= 1 survivor: every request completes via
    // failover, no records duplicated or dropped.
    fn unit_death_fails_over_and_accounts_for_every_request(
        count in ints(6, 14),
        batch_seed in ints_u64(1, 1 << 32),
        plan_seed in ints_u64(1, 1 << 32),
        widx in ints(0, 4),
    ) {
        // 10%–90% death rate, derived from the plan seed (the props! tuple
        // generator carries at most four dimensions).
        let death_pct = 10 + plan_seed % 81;
        let rates = FaultRates { unit_death: death_pct as f64 / 100.0, ..FaultRates::none() };
        let plan = FaultPlan::seeded(plan_seed, rates);
        let batch = requests(count, batch_seed);
        let server = FaultTolerantServer::new(
            config(),
            operator().clone(),
            plan,
            FailoverPolicy::default(),
        );
        match with_threads(WORKER_COUNTS[widx], || server.serve(&batch)) {
            Err(RuntimeError::NoHealthyUnits) => {
                // The plan killed the whole pool: the error is the contract.
                prop_assert!((0..4).all(|u| plan.unit_dead(u)));
            }
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
            Ok(served) => {
                prop_assert!((0..4).any(|u| !plan.unit_dead(u)));
                // One record per request, in arrival order: nothing dropped,
                // nothing duplicated.
                prop_assert_eq!(served.report.records.len(), batch.len());
                prop_assert_eq!(served.outputs.len(), batch.len());
                let order: Vec<usize> = served.report.records.iter().map(|r| r.n_real).collect();
                let expected: Vec<usize> = batch.iter().map(|r| r.num_keys()).collect();
                prop_assert_eq!(order, expected);
                // Death alone (no transients, no deadline) fails nothing.
                prop_assert_eq!(served.report.failed_count(), 0);
                prop_assert_eq!(served.report.served_count(), batch.len());
                prop_assert_eq!(served.report.total_retries(), 0);
                for output in &served.outputs {
                    let output = output.as_ref().expect("completed via failover");
                    prop_assert!(output.as_slice().iter().all(|v| v.is_finite()));
                }
                // Dead units never accumulate completions: every completion
                // time must be reachable by the survivors alone.
                let survivors = (0..4).filter(|&u| !plan.unit_dead(u)).count();
                let plain = InferenceServer::new(
                    AcceleratorConfig { num_accelerators: survivors, ..config() },
                    operator().clone(),
                );
                prop_assert_eq!(record_bits(&plain.serve(&batch)), record_bits(&served.report));
            }
        }
    }

    // (c) Injected corruption always degrades to exact attention; a NaN is
    // never served.
    fn corruption_always_degrades_to_exact_and_never_serves_nan(
        count in ints(4, 10),
        batch_seed in ints_u64(1, 1 << 32),
        plan_seed in ints_u64(1, 1 << 32),
        widx in ints(0, 4),
    ) {
        // 20%–100% corruption rate, derived from the plan seed.
        let corrupt_pct = 20 + plan_seed % 81;
        let rates = FaultRates { corrupt: corrupt_pct as f64 / 100.0, ..FaultRates::none() };
        let plan = FaultPlan::seeded(plan_seed, rates);
        let batch = requests(count, batch_seed);
        let server = FaultTolerantServer::new(
            config(),
            operator().clone(),
            plan,
            FailoverPolicy::default(),
        );
        let served = with_threads(WORKER_COUNTS[widx], || server.serve(&batch))
            .expect("corruption is survivable");
        let accel = ElsaAccelerator::new(config(), operator().clone());
        prop_assert_eq!(served.report.failed_count(), 0);
        let mut degraded = 0;
        for (i, (request, output)) in batch.iter().zip(&served.outputs).enumerate() {
            let output = output.as_ref().expect("corruption degrades, never fails");
            prop_assert!(
                output.as_slice().iter().all(|v| v.is_finite()),
                "request {i}: NaN/∞ served"
            );
            let record = served.report.records[i];
            // The plan says which (unit, request) pairs were poisoned; the
            // guard must have caught every one of them. The unit is whichever
            // one the FIFO picked, so check the record tag instead: any
            // poisoned request is degraded, and degraded outputs are exactly
            // the base (exact-attention) run.
            if record.degraded {
                degraded += 1;
                prop_assert_eq!(
                    matrix_bits(output),
                    matrix_bits(&accel.run_base(request).output)
                );
            } else {
                prop_assert_eq!(matrix_bits(output), matrix_bits(&accel.run(request).output));
            }
        }
        prop_assert_eq!(degraded, served.report.degraded_count());
        if corrupt_pct >= 100 {
            prop_assert_eq!(degraded, batch.len(), "corrupt rate 1.0 must degrade everything");
        }
    }

    // Regression for the streaming-fallback rewiring: forced corruption
    // (rate 1.0) degrades every request, and the degraded outputs — now
    // produced by the tiled streaming kernel — are bit-identical to the
    // naive `run_base` outputs they replaced, at any worker count.
    fn forced_corruption_streaming_fallback_matches_run_base_bitwise(
        count in ints(4, 10),
        batch_seed in ints_u64(1, 1 << 32),
        plan_seed in ints_u64(1, 1 << 32),
        widx in ints(0, 4),
    ) {
        let rates = FaultRates { corrupt: 1.0, ..FaultRates::none() };
        let plan = FaultPlan::seeded(plan_seed, rates);
        let batch = requests(count, batch_seed);
        let server = FaultTolerantServer::new(
            config(),
            operator().clone(),
            plan,
            FailoverPolicy::default(),
        );
        let served = with_threads(WORKER_COUNTS[widx], || server.serve(&batch))
            .expect("corruption is survivable");
        prop_assert_eq!(served.report.degraded_count(), batch.len());
        let accel = ElsaAccelerator::new(config(), operator().clone());
        for (request, output) in batch.iter().zip(&served.outputs) {
            let output = output.as_ref().expect("degraded, never failed");
            let base = accel.run_base(request);
            let streaming = accel.run_base_streaming(request);
            // The served output IS the streaming kernel's, and the streaming
            // kernel IS the naive base run, bit for bit — including the
            // cycle/energy accounting the service time was charged from.
            prop_assert_eq!(matrix_bits(output), matrix_bits(&streaming.output));
            prop_assert_eq!(matrix_bits(output), matrix_bits(&base.output));
            prop_assert_eq!(&streaming.cycles, &base.cycles);
            prop_assert_eq!(
                streaming.energy.total_j().to_bits(),
                base.energy.total_j().to_bits()
            );
        }
    }

    // Full chaos: every fault class at once; the report accounts for 100%
    // of requests and replays identically at any worker count.
    fn chaotic_plans_account_for_every_request_and_replay(
        count in ints(6, 12),
        batch_seed in ints_u64(1, 1 << 32),
        plan_seed in ints_u64(1, 1 << 32),
    ) {
        let plan = FaultPlan::seeded(plan_seed, FaultRates::chaotic());
        let batch = requests(count, batch_seed);
        let server = FaultTolerantServer::new(
            config(),
            operator().clone(),
            plan,
            FailoverPolicy::default(),
        );
        let serial = with_threads(1, || server.serve(&batch));
        let parallel = with_threads(4, || server.serve(&batch));
        match (serial, parallel) {
            (Err(a), Err(b)) => prop_assert_eq!(a, b),
            (Ok(serial), Ok(parallel)) => {
                prop_assert_eq!(record_bits(&serial.report), record_bits(&parallel.report));
                let report = &serial.report;
                prop_assert_eq!(report.records.len(), batch.len());
                prop_assert_eq!(report.served_count() + report.failed_count(), batch.len());
                prop_assert!(report.degraded_count() <= report.served_count());
                for (record, output) in report.records.iter().zip(&serial.outputs) {
                    prop_assert_eq!(record.failed, output.is_none());
                    if let Some(output) = output {
                        prop_assert!(output.as_slice().iter().all(|v| v.is_finite()));
                    }
                }
                // NaN-free aggregate metrics even under chaos.
                for q in [50.0, 95.0, 99.0] {
                    prop_assert!(!report.completion_percentile_s(q).is_nan());
                }
                prop_assert!(!report.throughput_per_s().is_nan());
                prop_assert!(!report.mean_service_s().is_nan());
            }
            (a, b) => prop_assert!(false, "outcomes diverged across worker counts: {a:?} vs {b:?}"),
        }
    }
}
