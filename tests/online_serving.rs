//! Acceptance battery for the online serving subsystem (`elsa-serve`).
//!
//! Four promises are under test, per the serving design:
//!
//! * **(a) Determinism** — the same seeded arrival trace produces a
//!   bit-identical `ServeReport` (`f64::to_bits`, never an epsilon) at any
//!   `ELSA_THREADS`, including under a chaotic fault plan.
//! * **(b) Offline equivalence** — with an unbounded queue, no batching
//!   wait, batch size 1, and a simultaneous trace, the online pipeline's
//!   per-request records are bit-identical to
//!   `InferenceServer::serve` on the materialized requests.
//! * **(c) Overload behavior** — accounting is exact
//!   (`offered = served + shed + timed-out + failed`) at every load, and
//!   SLO attainment degrades monotonically across increasing λ on the
//!   *same* request sequence (the arrival generator's forked streams keep
//!   shapes fixed while λ compresses the timeline).
//! * **(d) Padding waste** — length-bucketed (ELSA) batching sustains at
//!   least the throughput of the pad-to-batch-max (GPU-style) emulation on
//!   a mixed-length trace, because padding only ever adds rows.
//! * **(e) Multi-turn sessions** — with session-affinity batching and a
//!   bounded decode cache in play, the exact-accounting identity
//!   (`offered = served + shed + timed-out + failed`, and
//!   `hits + cold + stale = served`) still holds and the whole
//!   [`SessionReport`] is bit-identical across worker counts; the
//!   degenerate configuration (capacity = ∞, single-turn traces) stays
//!   bit-identical to today's [`OnlineServer::serve`].
//!
//! Reproduce any failure with the reported seed:
//! `ELSA_TESTKIT_SEED=0x... cargo test --test online_serving`.

use std::sync::OnceLock;

use elsa::algorithm::attention::{ElsaAttention, ElsaParams};
use elsa::fault::{FaultPlan, FaultRates};
use elsa::linalg::SeededRng;
use elsa::parallel::with_threads;
use elsa::runtime::InferenceServer;
use elsa::serve::{
    ArrivalConfig, ArrivalTrace, Backpressure, BatchPolicy, BatcherMode, CacheConfig,
    EvictionPolicy, OnlineServer, Outcome, ServeConfig, ServeReport, SessionArrivalConfig,
    SessionTrace,
};
use elsa::sim::AcceleratorConfig;
use elsa::workloads::trace::WorkloadTrace;
use elsa::workloads::{DatasetKind, ModelKind, Workload};

const WORKER_COUNTS: [usize; 3] = [1, 2, 4];

fn config() -> AcceleratorConfig {
    AcceleratorConfig { n_max: 200, num_accelerators: 4, ..AcceleratorConfig::paper() }
}

fn workload() -> Workload {
    Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M }
}

/// One learned operator shared by the whole battery (learning is the
/// expensive step and is orthogonal to the serving layer).
fn operator() -> &'static ElsaAttention {
    static OPERATOR: OnceLock<ElsaAttention> = OnceLock::new();
    OPERATOR.get_or_init(|| {
        let mut rng = SeededRng::new(0x5E4E);
        let train = workload().generate_batch(1, &mut rng);
        ElsaAttention::learn(ElsaParams::for_dims(64, 64, &mut SeededRng::new(0x5E4F)), &train, 1.0)
    })
}

/// Bit-exact projection of a serve report: every `f64` as raw bits.
fn report_bits(report: &ServeReport) -> Vec<(usize, u64, u64, u64, u32, String)> {
    report
        .records
        .iter()
        .map(|r| {
            (
                r.n_real,
                r.queue_delay_s.to_bits(),
                r.service_s.to_bits(),
                r.completion_s.to_bits(),
                r.retries,
                format!("{:?}", r.outcome),
            )
        })
        .collect()
}

// ---- (a) cross-thread determinism ----

#[test]
fn serve_report_is_bit_identical_across_worker_counts() {
    let trace = ArrivalTrace::generate(
        &workload(),
        &ArrivalConfig { slo_ns: Some(500_000), ..ArrivalConfig::poisson(120_000.0, 40) },
        &mut SeededRng::new(0xA11CE),
    );
    let serve_config = ServeConfig {
        queue_capacity: Some(16),
        backpressure: Backpressure::ShedNewest,
        batch: BatchPolicy { max_batch: 4, max_wait_ns: 50_000, length_buckets: vec![96, 200] },
        shed_unmeetable: true,
        ..ServeConfig::default()
    };
    let server =
        OnlineServer::new(config(), operator().clone(), FaultPlan::none(), serve_config);
    let baseline = with_threads(1, || server.serve(&trace).expect("healthy pool"));
    for workers in WORKER_COUNTS {
        let report = with_threads(workers, || server.serve(&trace).expect("healthy pool"));
        assert_eq!(report_bits(&baseline), report_bits(&report), "{workers} workers diverged");
        assert_eq!(baseline, report, "{workers} workers diverged beyond the bit projection");
    }
}

#[test]
fn chaotic_fault_plan_stays_deterministic_across_worker_counts() {
    let trace = ArrivalTrace::generate(
        &workload(),
        &ArrivalConfig::poisson(150_000.0, 32),
        &mut SeededRng::new(0xB0B),
    );
    let server = OnlineServer::new(
        config(),
        operator().clone(),
        FaultPlan::seeded(0xC4A05, FaultRates::chaotic()),
        ServeConfig::default(),
    );
    match with_threads(1, || server.serve(&trace)) {
        Ok(baseline) => {
            for workers in WORKER_COUNTS {
                let report =
                    with_threads(workers, || server.serve(&trace).expect("matched baseline"));
                assert_eq!(report_bits(&baseline), report_bits(&report));
                assert_eq!(baseline, report);
            }
        }
        Err(err) => {
            // A plan that kills the whole pool must fail identically too.
            for workers in WORKER_COUNTS {
                assert_eq!(with_threads(workers, || server.serve(&trace)).unwrap_err(), err);
            }
        }
    }
}

// ---- (b) offline equivalence ----

#[test]
fn degenerate_online_pipeline_matches_offline_server_bit_for_bit() {
    let recorded = WorkloadTrace::record(&workload(), 20, &mut SeededRng::new(0xD1CE));
    let requests = recorded.materialize();
    let offline = InferenceServer::new(config(), operator().clone()).serve(&requests);

    let online_server = OnlineServer::new(
        config(),
        operator().clone(),
        FaultPlan::none(),
        ServeConfig::immediate(),
    );
    let online = online_server
        .serve(&ArrivalTrace::simultaneous(&recorded))
        .expect("healthy pool")
        .to_serving_report();

    assert_eq!(offline.records.len(), online.records.len());
    for (i, (off, on)) in offline.records.iter().zip(&online.records).enumerate() {
        assert_eq!(off.n_real, on.n_real, "request {i}");
        assert_eq!(
            off.service_s.to_bits(),
            on.service_s.to_bits(),
            "request {i}: service {} vs {}",
            off.service_s,
            on.service_s
        );
        assert_eq!(
            off.completion_s.to_bits(),
            on.completion_s.to_bits(),
            "request {i}: completion {} vs {}",
            off.completion_s,
            on.completion_s
        );
        assert_eq!(off.degraded, on.degraded, "request {i}");
        assert_eq!(off.failed, on.failed, "request {i}");
    }
    // The whole-report comparison catches anything the field loop missed.
    assert_eq!(offline, online);
}

// ---- (c) overload: exact accounting + monotone SLO degradation ----

#[test]
fn overload_accounting_is_exact_and_slo_degrades_monotonically_in_lambda() {
    // The three loads share one seed: the arrival generator's forked
    // streams keep the request sequence fixed while λ compresses the
    // timeline, so attainment across loads compares like with like.
    // Saturation for this pool is ≈ 2M req/s (4 units, ≈ 1.9 µs/request on
    // the approximate pipeline): the sweep crosses it from comfortably
    // under to 10× over.
    let lambdas = [800_000.0, 8_000_000.0, 20_000_000.0];
    let serve_config = ServeConfig {
        queue_capacity: Some(12),
        backpressure: Backpressure::ShedNewest,
        batch: BatchPolicy::single_bucket(4, 4_000),
        shed_unmeetable: true,
        ..ServeConfig::default()
    };
    let server =
        OnlineServer::new(config(), operator().clone(), FaultPlan::none(), serve_config);
    let mut attainments = Vec::new();
    for lambda in lambdas {
        let trace = ArrivalTrace::generate(
            &workload(),
            &ArrivalConfig { slo_ns: Some(12_000), ..ArrivalConfig::poisson(lambda, 80) },
            &mut SeededRng::new(0x10AD),
        );
        let report = server.serve(&trace).expect("healthy pool");
        assert_eq!(
            report.served_count()
                + report.shed_count()
                + report.timed_out_count()
                + report.failed_count(),
            report.offered_count(),
            "accounting must be exact at λ = {lambda}"
        );
        assert_eq!(report.offered_count(), 80);
        // Every record belongs to exactly one outcome class by construction;
        // spot-check the partition is honest, not just the counters.
        let by_match = report
            .records
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    Outcome::Served { .. }
                        | Outcome::ShedQueueFull
                        | Outcome::ShedUnmeetable
                        | Outcome::TimedOut
                        | Outcome::Failed
                )
            })
            .count();
        assert_eq!(by_match, 80);
        attainments.push(report.slo_attainment());
    }
    assert!(
        attainments.windows(2).all(|w| w[0] >= w[1]),
        "SLO attainment must not improve with load: {attainments:?}"
    );
    assert!(
        attainments[0] > attainments[2],
        "8× overload must strictly degrade attainment: {attainments:?}"
    );
    assert!(attainments[0] > 0.9, "light load should mostly meet the SLO: {attainments:?}");
}

// ---- (d) bucketed vs padded throughput ----

#[test]
fn bucketed_batching_sustains_at_least_padded_throughput() {
    // High λ and a wide-open batch window force full batches of mixed
    // lengths — the worst case for pad-to-max.
    let trace = ArrivalTrace::generate(
        &workload(),
        &ArrivalConfig::poisson(1_000_000.0, 48),
        &mut SeededRng::new(0xFAD),
    );
    let serve = |mode| {
        let server = OnlineServer::new(
            config(),
            operator().clone(),
            FaultPlan::none(),
            ServeConfig {
                batch: BatchPolicy::single_bucket(8, 2_000_000),
                mode,
                ..ServeConfig::default()
            },
        );
        server.serve(&trace).expect("healthy pool")
    };
    let bucketed = serve(BatcherMode::Bucketed);
    let padded = serve(BatcherMode::Padded);
    assert_eq!(bucketed.served_count(), 48);
    assert_eq!(padded.served_count(), 48);
    assert!(
        padded.bucket_stats[0].padded_rows > 0,
        "the trace must actually mix lengths for this comparison to bite"
    );
    assert_eq!(bucketed.bucket_stats[0].padded_rows, 0, "ELSA pays no padding");
    let (b, p) = (bucketed.throughput_per_s(), padded.throughput_per_s());
    assert!(
        b >= p,
        "bucketed throughput {b} must be at least padded throughput {p}"
    );
    // Per-request: padding can only add work.
    for (bu, pa) in bucketed.records.iter().zip(&padded.records) {
        assert!(pa.service_s >= bu.service_s, "request {} got cheaper when padded", bu.id);
    }
}

// ---- (e) multi-turn sessions: eviction rebuilds + degenerate equivalence ----

#[test]
fn multi_turn_accounting_is_exact_under_eviction_and_replays_across_threads() {
    // Eight interleaved sessions (resident peak ≈ 185 KB unbounded) against
    // a 60 KB cache — room for roughly two of them: evictions (and the
    // stale rebuilds they force) are guaranteed to be in play, which is
    // exactly when the accounting identities must not bend.
    let trace = SessionTrace::generate(
        &workload(),
        &SessionArrivalConfig {
            lambda_per_s: 100_000.0,
            sessions: 8,
            slo_ns: Some(2_000_000),
            max_decode_turns: Some(5),
        },
        &mut SeededRng::new(0x5E55),
    );
    let server = OnlineServer::new(
        config(),
        operator().clone(),
        FaultPlan::none(),
        ServeConfig {
            batch: BatchPolicy { max_batch: 4, max_wait_ns: 50_000, length_buckets: vec![96, 200] },
            shed_unmeetable: true,
            ..ServeConfig::default()
        },
    );
    for policy in [EvictionPolicy::Lru, EvictionPolicy::SloAware] {
        let cache = CacheConfig { capacity_bytes: Some(60_000), policy };
        let baseline =
            with_threads(1, || server.serve_sessions(&trace, cache).expect("healthy pool"));
        // Accounting identity over the turn outcomes...
        let serve = &baseline.serve;
        assert_eq!(
            serve.served_count()
                + serve.shed_count()
                + serve.timed_out_count()
                + serve.failed_count(),
            serve.offered_count(),
            "turn accounting must be exact ({policy:?})"
        );
        assert_eq!(serve.offered_count(), trace.len());
        // ...and over the cache classification of the served turns.
        let cache_stats = baseline.cache;
        assert_eq!(
            cache_stats.hits + cache_stats.cold + cache_stats.stale,
            serve.served_count() as u64,
            "every served turn is exactly one of hit/cold/stale ({policy:?})"
        );
        assert!(cache_stats.evictions > 0, "the bound must actually evict ({policy:?})");
        assert!(
            cache_stats.stale > 0 && cache_stats.rebuilt_tokens > 0,
            "evicted sessions must pay a from-scratch rebuild on return ({policy:?})"
        );
        assert!(cache_stats.hits > 0, "surviving sessions must still hit ({policy:?})");
        assert!(cache_stats.peak_bytes <= 60_000 + 200 * 528, "peak before eviction bound");
        // The whole report — records, bucket stats, cache stats — replays
        // bit-identically at every worker count.
        for workers in WORKER_COUNTS {
            let report =
                with_threads(workers, || server.serve_sessions(&trace, cache).expect("healthy"));
            assert_eq!(report_bits(&baseline.serve), report_bits(&report.serve));
            assert_eq!(baseline, report, "{workers} workers diverged ({policy:?})");
        }
    }
}

#[test]
fn degenerate_session_serving_matches_plain_online_server_bitwise() {
    // Single-turn sessions + an unbounded cache must collapse onto the
    // plain pipeline: same records, same bucket stats, bit for bit — the
    // session layer is a pure extension, not a reinterpretation.
    let arrivals = ArrivalTrace::generate(
        &workload(),
        &ArrivalConfig { slo_ns: Some(500_000), ..ArrivalConfig::poisson(150_000.0, 36) },
        &mut SeededRng::new(0x5E56),
    );
    let server = OnlineServer::new(
        config(),
        operator().clone(),
        FaultPlan::none(),
        ServeConfig {
            queue_capacity: Some(16),
            backpressure: Backpressure::ShedNewest,
            batch: BatchPolicy { max_batch: 4, max_wait_ns: 50_000, length_buckets: vec![96, 200] },
            shed_unmeetable: true,
            ..ServeConfig::default()
        },
    );
    let sessions = SessionTrace::single_turn(&arrivals);
    for workers in WORKER_COUNTS {
        let (plain, session) = with_threads(workers, || {
            (
                server.serve(&arrivals).expect("healthy pool"),
                server.serve_sessions(&sessions, CacheConfig::unbounded()).expect("healthy pool"),
            )
        });
        assert_eq!(report_bits(&plain), report_bits(&session.serve), "threads={workers}");
        assert_eq!(plain, session.serve, "threads={workers}");
        // One-turn sessions can never hit or go stale, and nothing evicts.
        assert_eq!(session.cache.hits, 0);
        assert_eq!(session.cache.stale, 0);
        assert_eq!(session.cache.evictions, 0);
        assert_eq!(session.cache.cold, plain.served_count() as u64);
    }
}
