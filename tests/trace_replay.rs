//! Integration: recorded workload traces replay to bit-identical
//! experiment results across the whole stack.

use elsa::algorithm::attention::{ElsaAttention, ElsaParams};
use elsa::linalg::SeededRng;
use elsa::sim::{AcceleratorConfig, ElsaAccelerator};
use elsa::workloads::trace::WorkloadTrace;
use elsa::workloads::{DatasetKind, ModelKind, Workload};

fn workload() -> Workload {
    Workload { model: ModelKind::Bert4Rec, dataset: DatasetKind::MovieLens1M }
}

#[test]
fn trace_replay_reproduces_accelerator_results() {
    let mut rng = SeededRng::new(123);
    let trace = WorkloadTrace::record(&workload(), 3, &mut rng);
    // Serialize / reparse, as if the trace were stored next to results.
    let text = trace.to_text();
    let replayed = WorkloadTrace::from_text(&text).expect("well-formed trace");

    let run = |trace: &WorkloadTrace| {
        let invocations = trace.materialize();
        let operator = ElsaAttention::learn(
            ElsaParams::for_dims(64, 64, &mut SeededRng::new(7)),
            &invocations[..1],
            1.0,
        );
        let accel = ElsaAccelerator::new(
            AcceleratorConfig { n_max: 200, ..AcceleratorConfig::paper() },
            operator,
        );
        invocations
            .iter()
            .map(|inv| {
                let report = accel.run(inv);
                (report.cycles.total(), report.stats.selected_pairs, report.output)
            })
            .collect::<Vec<_>>()
    };
    let original = run(&trace);
    let again = run(&replayed);
    assert_eq!(original.len(), again.len());
    for ((c1, s1, o1), (c2, s2, o2)) in original.iter().zip(&again) {
        assert_eq!(c1, c2, "cycle counts must replay exactly");
        assert_eq!(s1, s2, "selection must replay exactly");
        assert_eq!(o1, o2, "outputs must replay bit-identically");
    }
}

#[test]
fn traces_capture_variable_lengths() {
    let mut rng = SeededRng::new(124);
    let trace = WorkloadTrace::record(&workload(), 16, &mut rng);
    let lengths: std::collections::HashSet<usize> =
        trace.entries.iter().map(|e| e.pattern.n_real).collect();
    assert!(lengths.len() > 3, "length sampler should vary: {lengths:?}");
    assert!(lengths.iter().all(|&n| n <= 200));
}
