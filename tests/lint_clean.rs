//! The whole workspace must pass `elsa-lint` with zero unwaived findings.
//!
//! This is the same check `scripts/verify.sh` runs via
//! `cargo run -p elsa-lint`, wired into `cargo test` so a violation of the
//! determinism / offline / panic-policy contracts fails the ordinary test
//! gate too — not just the shell script.

use std::path::Path;

use elsa_lint::rules::RuleSet;

#[test]
fn workspace_has_no_unwaived_lint_findings() {
    // CARGO_MANIFEST_DIR for this integration test is the workspace root
    // (the facade crate lives at the root), so no upward search is needed.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = elsa_lint::check_workspace(root, &RuleSet::all())
        .unwrap_or_else(|e| panic!("elsa-lint failed to scan the workspace: {e}"));

    assert!(
        report.files_scanned > 50,
        "suspiciously few Rust files scanned ({}); the walker is likely broken",
        report.files_scanned
    );
    assert!(
        report.manifests_scanned >= 10,
        "suspiciously few manifests scanned ({}); the walker is likely broken",
        report.manifests_scanned
    );

    let gating: Vec<String> = report.unwaived().iter().map(|f| f.render()).collect();
    assert!(
        gating.is_empty(),
        "unwaived lint findings:\n{}",
        gating.join("\n")
    );
}

#[test]
fn every_active_waiver_is_used() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = elsa_lint::check_workspace(root, &RuleSet::all())
        .unwrap_or_else(|e| panic!("elsa-lint failed to scan the workspace: {e}"));

    let stale: Vec<String> = report
        .waivers
        .iter()
        .filter(|w| !w.used)
        .map(|w| format!("{}:{}: allow({}) — no matching finding", w.file, w.line, w.rule.code()))
        .collect();
    assert!(
        stale.is_empty(),
        "stale waivers (remove them, they no longer suppress anything):\n{}",
        stale.join("\n")
    );
}
