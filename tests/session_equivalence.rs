//! Equivalence battery gating the incremental decode path
//! (`elsa::algorithm::StreamingSession`). The claim under test is the one
//! that makes append-token KV/hash caching trustworthy: a session grown by
//! appending tokens `1..n` — hashing and norming only each new key, `O(k)`
//! work per step — is **bit-identical** (0 ulp, never an epsilon) to an
//! [`ElsaSession`] that preprocesses the final matrices from scratch, in
//! every observable:
//!
//! * **State** — SRP signatures, per-key norms, and the running max-norm
//!   register compare equal bit-for-bit.
//! * **Selection** — the candidate set (and the arg-max fallback flag) of
//!   every query is identical, in both full-context and bounded (causal)
//!   mode.
//! * **Outputs** — every output row matches `to_bits`-exactly, at
//!   `ELSA_THREADS ∈ {1, 2, 4}` (the repo-wide determinism contract).
//!
//! The battery also carries the serving-cache property tests (the
//! [`SessionRegistry`] accounting + eviction invariants behind
//! `elsa-serve`'s bounded decode cache) and the PR 2 regression: an
//! all-`-inf`-score query must keep the defined uniform-softmax behavior on
//! the streaming path, and a zero-length bounded prefix must fail with the
//! documented panic rather than undefined output.
//!
//! Reproduce any failure with the reported seed:
//! `ELSA_TESTKIT_SEED=0x... cargo test --test session_equivalence`.

use elsa::algorithm::{ElsaAttention, ElsaParams, ElsaSession, StreamingSession};
use elsa::linalg::{ops, Matrix, SeededRng};
use elsa::parallel::with_threads;
use elsa::serve::{CacheConfig, EvictionPolicy, SessionRegistry};
use elsa::workloads::Workload;
use elsa_testkit::prelude::*;

const THREAD_COUNTS: [usize; 3] = [1, 2, 4];

fn f32_bits(xs: &[f32]) -> Vec<u32> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn f64_bits(xs: &[f64]) -> Vec<u64> {
    xs.iter().map(|x| x.to_bits()).collect()
}

fn random_context(n: usize, d: usize, seed: u64) -> (ElsaAttention, Matrix, Matrix, Matrix) {
    let mut rng = SeededRng::new(seed);
    let keys = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
    let values = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
    let queries = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
    let operator = ElsaAttention::with_threshold(ElsaParams::for_dims(d, d, &mut rng), 0.4);
    (operator, queries, keys, values)
}

/// The full 0-ulp comparison: appended state vs from-scratch state, then
/// candidate sets and output rows for every query, full-context and causal.
fn assert_streaming_equals_from_scratch(
    operator: &ElsaAttention,
    queries: &Matrix,
    keys: &Matrix,
    values: &Matrix,
    label: &str,
) {
    let mut streaming = StreamingSession::with_value_dim(operator, values.cols());
    for r in 0..keys.rows() {
        streaming.append(keys.row(r), values.row(r));
    }
    let mut fixed = ElsaSession::new(operator, keys, values);

    // State: signatures, norms, max-norm register — all bitwise.
    assert_eq!(
        streaming.preprocessed().hashes(),
        fixed.preprocessed().hashes(),
        "{label}: signatures diverged"
    );
    assert_eq!(
        f64_bits(streaming.preprocessed().norms()),
        f64_bits(fixed.preprocessed().norms()),
        "{label}: key norms diverged"
    );
    assert_eq!(
        streaming.preprocessed().max_norm().to_bits(),
        fixed.preprocessed().max_norm().to_bits(),
        "{label}: max-norm register diverged"
    );

    let n = keys.rows();
    let hasher = operator.params().hasher();
    for i in 0..queries.rows() {
        let q = queries.row(i);
        let qh = hasher.hash(q);
        // Selection: identical candidate sets and fallback flags, for the
        // full context and for the causal prefix of this position.
        for limit in [n, (i + 1).min(n)] {
            let from_stream =
                operator.select_candidates_bounded(&qh, streaming.preprocessed(), limit);
            let from_scratch =
                operator.select_candidates_bounded(&qh, fixed.preprocessed(), limit);
            assert_eq!(
                from_stream, from_scratch,
                "{label}: candidate set diverged at query {i} limit {limit}"
            );
        }
        // Outputs: bitwise, full-context and bounded.
        let full_a = streaming.query(q);
        let full_b = fixed.query(q);
        assert_eq!(
            f32_bits(&full_a),
            f32_bits(&full_b),
            "{label}: full-context output row {i} diverged"
        );
        let limit = (i + 1).min(n);
        let causal_a = streaming.query_bounded(q, limit);
        let causal_b = fixed.query_bounded(q, limit);
        assert_eq!(
            f32_bits(&causal_a),
            f32_bits(&causal_b),
            "{label}: causal output row {i} (limit {limit}) diverged"
        );
    }
    assert_eq!(streaming.stats(), fixed.stats(), "{label}: selection stats diverged");
}

/// The acceptance-criteria sweep: every workload in the zoo, appended
/// token-by-token vs preprocessed from scratch, at threads {1, 2, 4}.
#[test]
fn workload_zoo_appended_state_bit_identical_to_from_scratch() {
    for workload in Workload::all() {
        for workers in THREAD_COUNTS {
            with_threads(workers, || {
                let mut rng = SeededRng::new(0x5E55_0001);
                let inputs = workload.generate_invocation(&mut rng);
                let d = inputs.dim();
                let operator =
                    ElsaAttention::with_threshold(ElsaParams::for_dims(d, d, &mut rng), 0.4);
                assert_streaming_equals_from_scratch(
                    &operator,
                    inputs.query(),
                    inputs.key(),
                    inputs.value(),
                    &format!("{workload} (threads={workers})"),
                );
            });
        }
    }
}

/// Thread invariance of the streaming path on its own terms: the state and
/// outputs produced under every worker count match the single-thread run
/// bit-for-bit (appending is serial by construction; the contract is that
/// nothing about the surrounding pool changes its arithmetic).
#[test]
fn streaming_state_and_outputs_thread_invariant() {
    let run = || {
        let (operator, q, k, v) = random_context(61, 64, 0x5E55_0002);
        let mut session = StreamingSession::new(&operator);
        let mut outputs: Vec<u64> = Vec::new();
        for r in 0..k.rows() {
            session.append(k.row(r), v.row(r));
            outputs.extend(
                f32_bits(&session.query_bounded(q.row(r), r + 1)).iter().map(|&b| u64::from(b)),
            );
        }
        outputs.extend(f64_bits(session.preprocessed().norms()));
        outputs.push(session.preprocessed().max_norm().to_bits());
        outputs
    };
    let reference = with_threads(1, run);
    for workers in THREAD_COUNTS {
        assert_eq!(reference, with_threads(workers, run), "threads={workers}");
    }
}

/// Single-token and prime-n corners, decode-as-you-go: after *every*
/// append `j`, the streaming session matches a from-scratch session over
/// exactly the first `j` rows (both see the same prefix max-norm — the
/// hardware's single max-norm register semantics).
#[test]
fn single_token_and_prime_n_decode_corners() {
    // n = 1: one append, one key; the query's softmax over one candidate is
    // exactly 1.0, so the output is the value row bit-for-bit.
    let (operator, q, k, v) = random_context(1, 27, 0x5E55_0003);
    let mut one = StreamingSession::with_value_dim(&operator, v.cols());
    one.append(k.row(0), v.row(0));
    let out = one.query(q.row(0));
    assert_eq!(f32_bits(&out), f32_bits(v.row(0)), "n=1 output is the value row");

    // n = 97 (prime): nothing about the growth pattern aligns with any
    // internal chunking; check the full per-prefix ladder.
    let (operator, q, k, v) = random_context(97, 64, 0x5E55_0004);
    let mut streaming = StreamingSession::new(&operator);
    for j in 0..k.rows() {
        streaming.append(k.row(j), v.row(j));
        let kp = Matrix::from_fn(j + 1, k.cols(), |r, c| k[(r, c)]);
        let vp = Matrix::from_fn(j + 1, v.cols(), |r, c| v[(r, c)]);
        let mut fixed = ElsaSession::new(&operator, &kp, &vp);
        let a = streaming.query(q.row(j));
        let b = fixed.query(q.row(j));
        assert_eq!(f32_bits(&a), f32_bits(&b), "prefix {} diverged", j + 1);
        assert_eq!(
            streaming.preprocessed().max_norm().to_bits(),
            fixed.preprocessed().max_norm().to_bits(),
            "prefix {} max-norm diverged",
            j + 1
        );
    }
}

// ---------------------------------------------------------------------------
// PR 2 regression: defined behavior on degenerate scores.
// ---------------------------------------------------------------------------

/// A query whose score against every visible key overflows `f32` to `-inf`
/// must keep PR 2's defined uniform-softmax semantics on the streaming
/// path: no panic, no NaN — the output is the uniform average of the
/// candidate value rows, bit-identical between the appended and the
/// from-scratch session.
#[test]
fn fully_masked_scores_keep_uniform_softmax_on_streaming_path() {
    let d = 8;
    let n = 12;
    let mut rng = SeededRng::new(0x5E55_0005);
    // Keys share one sign with huge magnitude; the opposing query drives
    // every f64 dot product far past f32::MAX, so the `as f32` cast in the
    // score path saturates to -inf for every key.
    let keys =
        Matrix::from_fn(n, d, |_, _| -(3.0e38 / d as f32) * (1.0 + rng.uniform() as f32));
    let values = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
    let q = vec![3.0e38f32; d];
    let operator = ElsaAttention::with_threshold(ElsaParams::for_dims(d, d, &mut rng), 0.4);

    let mut streaming = StreamingSession::new(&operator);
    streaming.append_rows(&keys, &values);
    let mut fixed = ElsaSession::new(&operator, &keys, &values);

    let a = streaming.query(&q);
    let b = fixed.query(&q);
    assert!(a.iter().all(|x| x.is_finite()), "masked query produced non-finite output");
    assert_eq!(f32_bits(&a), f32_bits(&b), "masked query diverged between paths");

    // Reconstruct the uniform-softmax expectation over the exact candidate
    // set the operator selected: -inf scores → 1/m weights (PR 2).
    let qh = operator.params().hasher().hash(&q);
    let (candidates, _) = operator.select_candidates_bounded(&qh, fixed.preprocessed(), n);
    let weights = ops::softmax(&vec![f32::NEG_INFINITY; candidates.len()]);
    assert!(weights.iter().all(|&w| w == 1.0 / candidates.len() as f32));
    let mut expected = vec![0.0f32; d];
    for (&j, &w) in candidates.iter().zip(&weights) {
        ops::axpy(w, values.row(j), &mut expected);
    }
    assert_eq!(f32_bits(&a), f32_bits(&expected), "masked query is not the uniform average");
}

/// A bounded prefix of length 0 has no keys to attend to: the documented
/// behavior is the `"limit out of range"` panic, not silent output.
#[test]
#[should_panic(expected = "limit out of range")]
fn zero_length_bounded_prefix_panics_with_documented_message() {
    let (operator, q, k, v) = random_context(6, 16, 0x5E55_0006);
    let mut streaming = StreamingSession::with_value_dim(&operator, v.cols());
    streaming.append_rows(&k, &v);
    let _ = streaming.query_bounded(q.row(0), 0);
}

// ---------------------------------------------------------------------------
// Serving-cache properties (the eviction model behind elsa-serve).
// ---------------------------------------------------------------------------

props! {
    config: Config::with_cases(24);

    // Accounting safety under arbitrary commit/remove interleavings, for
    // both policies: resident bytes always equal the sum over the cached
    // sessions (so the unsigned total can never underflow), the capacity
    // bound holds after every commit, and the high-water mark dominates.
    fn registry_accounting_is_exact_and_bounded(
        cap_tokens in ints(1, 80),
        steps in ints(10, 120),
        seed in ints_u64(1, 1 << 32),
    ) {
        let per = SessionRegistry::per_token_bytes(64, 64);
        let cap = cap_tokens as u64 * per;
        for policy in [EvictionPolicy::Lru, EvictionPolicy::SloAware] {
            let mut reg = SessionRegistry::new(
                CacheConfig { capacity_bytes: Some(cap), policy },
                64,
                64,
            );
            let mut rng = SeededRng::new(seed);
            for _ in 0..steps {
                let session = rng.index(12) as u64;
                if rng.uniform() < 0.2 {
                    reg.remove(session);
                } else {
                    let len = 1 + rng.index(40);
                    reg.commit(session, len);
                    prop_assert!(
                        reg.total_bytes() <= cap,
                        "over capacity: {} > {} ({:?})", reg.total_bytes(), cap, policy
                    );
                }
                let recomputed: u64 =
                    reg.cached_sessions().iter().map(|&(_, len)| len as u64 * per).sum();
                prop_assert_eq!(recomputed, reg.total_bytes(), "accounting drift ({:?})", policy);
                prop_assert!(reg.peak_bytes() >= reg.total_bytes());
                prop_assert_eq!(reg.num_cached(), reg.cached_sessions().len());
            }
        }
    }

    // The functional half of the eviction contract: a session whose state
    // was evicted and rebuilt from scratch on its next turn is bit-identical
    // to one that was never evicted — state, candidate sets, and outputs.
    fn evicted_then_rebuilt_session_is_bit_identical(
        n in ints(2, 48),
        evict_at in ints(1, 47),
        seed in ints_u64(1, 1 << 32),
    ) {
        let d = 32;
        let (operator, q, k, v) = random_context(n, d, seed);
        let evict_at = evict_at.min(n - 1);
        // Never evicted: one session, appended 1..n.
        let mut kept = StreamingSession::with_value_dim(&operator, d);
        kept.append_rows(&k, &v);
        // Evicted after `evict_at` tokens: the incremental state is dropped
        // wholesale and rebuilt from the same rows, then decode continues.
        let mut rebuilt = StreamingSession::with_value_dim(&operator, d);
        for r in 0..evict_at {
            rebuilt.append(k.row(r), v.row(r));
        }
        drop(rebuilt); // the eviction
        let mut rebuilt = StreamingSession::with_value_dim(&operator, d);
        rebuilt.append_rows(&k, &v); // from-scratch rebuild + remaining decode
        prop_assert_eq!(
            kept.preprocessed().hashes(),
            rebuilt.preprocessed().hashes()
        );
        prop_assert_eq!(
            f64_bits(kept.preprocessed().norms()),
            f64_bits(rebuilt.preprocessed().norms())
        );
        prop_assert_eq!(
            kept.preprocessed().max_norm().to_bits(),
            rebuilt.preprocessed().max_norm().to_bits()
        );
        for i in 0..q.rows().min(4) {
            let a = kept.query(q.row(i));
            let b = rebuilt.query(q.row(i));
            prop_assert_eq!(f32_bits(&a), f32_bits(&b), "query {} diverged", i);
        }
    }

    // Victim choice is pure bookkeeping (BTreeMap + monotone counter), so
    // the entire cache trajectory — who is resident, byte totals, eviction
    // counts — replays identically at every thread count.
    fn victim_choice_is_replay_deterministic_across_threads(
        cap_tokens in ints(2, 40),
        steps in ints(5, 60),
        seed in ints_u64(1, 1 << 32),
    ) {
        for policy in [EvictionPolicy::Lru, EvictionPolicy::SloAware] {
            let trajectory = |workers: usize| {
                with_threads(workers, || {
                    let per = SessionRegistry::per_token_bytes(64, 64);
                    let mut reg = SessionRegistry::new(
                        CacheConfig { capacity_bytes: Some(cap_tokens as u64 * per), policy },
                        64,
                        64,
                    );
                    let mut rng = SeededRng::new(seed);
                    let mut log = Vec::new();
                    for _ in 0..steps {
                        let session = rng.index(10) as u64;
                        let len = 1 + rng.index(16);
                        let evicted = reg.commit(session, len);
                        log.push((evicted, reg.total_bytes(), reg.cached_sessions()));
                    }
                    log
                })
            };
            let reference = trajectory(1);
            for workers in THREAD_COUNTS {
                prop_assert_eq!(
                    reference.clone(),
                    trajectory(workers),
                    "{:?} trajectory diverged at threads={}", policy, workers
                );
            }
        }
    }
}
