//! Model-level integration: plug the ELSA kernel into a multi-head
//! transformer layer and check the end-to-end forward pass degrades
//! gracefully, mirroring how a host device would offload attention.

use elsa::algorithm::attention::{ElsaAttention, ElsaParams};
use elsa::attention::{exact, MultiHeadAttention, TransformerConfig, TransformerLayer};
use elsa::linalg::{Matrix, SeededRng};

#[test]
fn multihead_with_elsa_kernel_tracks_exact() {
    let mut rng = SeededRng::new(1);
    let d_model = 128;
    let mha = MultiHeadAttention::random(d_model, 2, 64, &mut rng);
    // Clustered token embeddings: tokens in the same cluster share a strong
    // direction, producing the block-structured, peaked attention real
    // models exhibit. (Pure Gaussian inputs through random projections give
    // near-uniform softmax rows — a regime where *any* candidate pruning is
    // lossy, and which trained models avoid.)
    let n = 48;
    let clusters = 8;
    let centers = Matrix::from_fn(clusters, d_model, |_, _| (rng.standard_normal() * 3.0) as f32);
    let x = Matrix::from_fn(n, d_model, |r, c| {
        centers[(r % clusters, c)] + 0.3 * rng.standard_normal() as f32
    });

    // Learn per-head thresholds from the projections themselves, as a host
    // runtime would during its calibration pass.
    let mut op_rng = SeededRng::new(2);
    let train0 = mha.project_head(&x, 0);
    let train1 = mha.project_head(&x, 1);
    let operator = ElsaAttention::learn(
        ElsaParams::for_dims(64, 64, &mut op_rng),
        &[train0, train1],
        0.5,
    );

    let exact_out = mha.forward(&x);
    let approx_out = mha.forward_with(&x, |inputs| {
        // The models use scaled attention; ELSA folds the scale into the
        // learned threshold space, so apply the same scale on candidates.
        let (cands, _) = operator.candidates(inputs);
        exact::attention_with_candidates(inputs, &cands, 1.0 / (inputs.dim() as f32).sqrt())
    });
    let rel = exact_out.relative_frobenius_error(&approx_out);
    assert!(rel < 0.6, "model-level relative error {rel}");
    // And it must not be trivially identical (the approximation did fire).
    assert!(exact_out.max_abs_diff(&approx_out) > 0.0);
}

#[test]
fn transformer_layer_with_custom_kernel_is_finite() {
    let mut rng = SeededRng::new(3);
    let config = TransformerConfig::new(1, 128, 2, 256, 64);
    let layer = TransformerLayer::random(&config, &mut rng);
    let x = Matrix::from_fn(32, 128, |_, _| rng.standard_normal() as f32);
    let mut op_rng = SeededRng::new(4);
    let operator = ElsaAttention::exact_fallback(ElsaParams::for_dims(64, 64, &mut op_rng));
    let out = layer.forward_with(&x, |inputs| {
        let (cands, _) = operator.candidates(inputs);
        exact::attention_with_candidates(inputs, &cands, 1.0 / 8.0)
    });
    assert_eq!((out.rows(), out.cols()), (32, 128));
    assert!(out.as_slice().iter().all(|v| v.is_finite()));
    // p = 0 fallback => identical to the exact layer.
    let exact_out = layer.forward(&x);
    assert!(out.max_abs_diff(&exact_out) < 1e-3);
}

#[test]
fn bert_shape_head_dimensions_flow_through() {
    // BERT-large projections produce 64-dimensional heads — exactly what
    // the ELSA hardware is sized for.
    let cfg = elsa::workloads::ModelKind::BertLarge.config();
    assert_eq!(cfg.d_head(), 64);
    let mut rng = SeededRng::new(5);
    let mha = MultiHeadAttention::random(cfg.d_model, cfg.num_heads, cfg.d_head(), &mut rng);
    let x = Matrix::from_fn(16, cfg.d_model, |_, _| rng.standard_normal() as f32);
    let head = mha.project_head(&x, 7);
    assert_eq!(head.dim(), 64);
    assert_eq!(head.num_keys(), 16);
}
