//! Property-based tests (elsa-testkit) over the hardware simulator,
//! scheduler, and sparse-attention baselines.
//!
//! Ported from the original proptest suite; every invariant is preserved.
//! The `candidate_positions` strategy (a random `BTreeSet` of bank slots)
//! becomes `subsets(bank_keys)`, which likewise yields sorted distinct
//! positions at varying densities.

use elsa::linalg::SeededRng;
use elsa::runtime::{BatchScheduler, SchedulePolicy};
use elsa::sim::arbiter::{simulate_bank_drain_queued, ArbiterPolicy};
use elsa::sim::cost::EnergyBreakdown;
use elsa::sim::cycle::{
    closed_form_query_cycles, simulate_bank_drain, simulate_execution,
};
use elsa::sim::AcceleratorConfig;
use elsa::sparse::SegmentedAttention;
use elsa_testkit::prelude::*;

props! {
    config: Config::with_cases(48);

    fn detailed_arbiter_with_deep_queues_matches_coarse_model(
        positions in subsets(128),
    ) {
        let coarse = simulate_bank_drain(8, 128, &positions);
        let detailed = simulate_bank_drain_queued(
            8,
            128,
            &positions,
            1 << 16,
            ArbiterPolicy::LongestQueueFirst,
        );
        prop_assert_eq!(detailed.finish_cycle, coarse);
        prop_assert_eq!(detailed.stall_cycles, 0);
    }

    fn shallow_queues_never_finish_earlier(
        positions in subsets(128),
        depth in ints(1, 4),
    ) {
        let deep = simulate_bank_drain_queued(8, 128, &positions, 1 << 16, ArbiterPolicy::LongestQueueFirst);
        let shallow = simulate_bank_drain_queued(8, 128, &positions, depth, ArbiterPolicy::LongestQueueFirst);
        prop_assert!(shallow.finish_cycle >= deep.finish_cycle);
        // And both consume every candidate: finish bounded by scan + count.
        prop_assert!(shallow.finish_cycle <= (16 + positions.len() + 8) as u64 * 2);
    }

    fn execution_respects_closed_form_bound(
        seed in ints_u64(0, 10_000),
        count in ints(1, 256),
    ) {
        let cfg = AcceleratorConfig::paper();
        let n = 512;
        let mut rng = SeededRng::new(seed);
        let mut cand = rng.sample_indices(n, count);
        cand.sort_unstable();
        let mut per_bank = vec![0usize; cfg.p_a];
        for &j in &cand {
            per_bank[j % cfg.p_a] += 1;
        }
        let bound = closed_form_query_cycles(&cfg, n, &per_bank);
        let report = simulate_execution(&cfg, n, &[cand], true);
        prop_assert!(report.per_query[0] >= bound);
        prop_assert!(report.per_query[0] <= bound + cfg.scan_cycles(n));
    }

    fn energy_monotone_in_candidate_count(
        seed in ints_u64(0, 1000),
        c_small in ints(1, 100),
        extra in ints(1, 100),
    ) {
        let cfg = AcceleratorConfig::paper();
        let n = 512;
        let mut rng = SeededRng::new(seed);
        let mut small = rng.sample_indices(n, c_small);
        small.sort_unstable();
        let mut large = rng.sample_indices(n, (c_small + extra).min(n));
        large.sort_unstable();
        let small_report = simulate_execution(&cfg, n, &vec![small; 8], false);
        let large_report = simulate_execution(&cfg, n, &vec![large; 8], false);
        let e_small = EnergyBreakdown::from_run(&cfg, &small_report, 8, 8 * c_small, n);
        let e_large = EnergyBreakdown::from_run(&cfg, &large_report, 8, 8 * (c_small + extra).min(n), n);
        prop_assert!(e_large.total_j() >= e_small.total_j());
    }

    fn scheduler_makespan_bounds(
        jobs in vecs(range(0.001, 10.0), 1, 40),
        accels in ints(1, 16),
    ) {
        let scheduler = BatchScheduler::new(accels, 0.0, SchedulePolicy::LongestFirst);
        let schedule = scheduler.schedule(&jobs);
        let max_job = jobs.iter().copied().fold(0.0, f64::max);
        let total: f64 = jobs.iter().sum();
        let lower = max_job.max(total / accels as f64);
        prop_assert!(schedule.makespan_s() + 1e-12 >= lower);
        // Graham's bound for LPT: makespan <= (4/3 - 1/3m) * OPT <= 4/3 * lower-ish;
        // use the safe 2x bound of greedy list scheduling.
        prop_assert!(schedule.makespan_s() <= 2.0 * lower + 1e-9);
        // Work conservation.
        let assigned: f64 = schedule.per_accelerator_s.iter().sum();
        prop_assert!((assigned - total).abs() < 1e-9);
    }

    fn segmented_candidates_partition_consistently(
        n in ints(2, 200),
        seg_len in ints(1, 64),
    ) {
        let seg = SegmentedAttention::new(seg_len);
        for i in 0..n {
            let s = seg.segment_of(i);
            let (lo, hi) = seg.segment_range(s, n);
            prop_assert!(lo <= i && i < hi.max(lo + 1), "i={i} not in its own segment");
        }
        // Segment ranges tile [0, n).
        let mut covered = 0usize;
        let mut s = 0usize;
        loop {
            let (lo, hi) = seg.segment_range(s, n);
            if lo >= n {
                break;
            }
            prop_assert_eq!(lo, covered);
            covered = hi;
            s += 1;
        }
        prop_assert_eq!(covered, n);
    }

    fn preprocessing_formula_holds(n in ints(1, 2048), m_h in ints(1, 512)) {
        let cfg = AcceleratorConfig {
            m_h,
            n_max: 2048,
            ..AcceleratorConfig::paper()
        };
        let per_vec = 768u64.div_ceil(m_h as u64);
        prop_assert_eq!(cfg.preprocessing_cycles(n), per_vec * (n as u64 + 1));
    }
}
