//! Regression guards for the figure-level behaviours: small, fast versions
//! of the experiment binaries whose *qualitative* outcomes must never
//! silently drift (the quantitative outputs live in `results/`).

use elsa::baselines::{A3Model, AttentionDevice, GpuModel, IdealAccelerator};
use elsa::linalg::SeededRng;
use elsa::sim::cycle;
use elsa::sim::AcceleratorConfig;
use elsa::workloads::workload::evaluate_workload;
use elsa::workloads::{DatasetKind, ModelKind, Workload};

#[test]
fn fig10_band_bert_squad() {
    // Conservative p keeps the proxy metric high with a minority of
    // candidates; aggressive p trades metric for fewer candidates.
    let w = Workload { model: ModelKind::BertLarge, dataset: DatasetKind::SquadV11 };
    let cfg = w.pattern_config(128);
    let mut rng = SeededRng::new(1);
    let train = cfg.generate_batch(2, &mut rng);
    let test = cfg.generate_batch(2, &mut rng);
    let conservative = evaluate_workload(&w, 0.5, &train, &test, 2);
    let aggressive = evaluate_workload(&w, 4.0, &train, &test, 2);
    assert!(conservative.metric > 0.93, "metric {}", conservative.metric);
    assert!(conservative.stats.candidate_fraction() < 0.6);
    assert!(aggressive.stats.candidate_fraction() < conservative.stats.candidate_fraction());
    assert!(aggressive.metric <= conservative.metric + 0.02);
}

#[test]
fn fig2_ordering_recommenders_highest() {
    let gpu = GpuModel::v100();
    let frac = |m: ModelKind| {
        let cfg = m.config();
        gpu.attention_runtime_fraction(&cfg, cfg.max_seq_len)
    };
    assert!(frac(ModelKind::SasRec) > frac(ModelKind::BertLarge));
    assert!(frac(ModelKind::Bert4Rec) > frac(ModelKind::BertLarge));
}

#[test]
fn fig11_ordering_padding_drives_speedup() {
    // ELSA-base's advantage over GPU must be larger on padding-heavy
    // (SQuAD-like) inputs than on dense (RACE-like) inputs.
    let gpu = GpuModel::v100();
    let cfg = AcceleratorConfig::paper();
    let elsa_latency = |n_real: usize| {
        cycle::simulate_execution_base(&cfg, n_real, n_real).total() as f64 * cfg.cycle_time_s()
    };
    let gpu_latency = gpu.attention_latency_s(512, 512, 64);
    let squad_like = gpu_latency / elsa_latency(190) * 12.0;
    let race_like = gpu_latency / elsa_latency(505) * 12.0;
    assert!(squad_like > 2.5 * race_like, "{squad_like} vs {race_like}");
}

#[test]
fn fig11b_base_close_to_ideal() {
    // ELSA-base latency within ~15% of the ideal accelerator (paper: 1.03x).
    let cfg = AcceleratorConfig::paper();
    let ideal = IdealAccelerator::paper();
    for n in [128usize, 256, 512] {
        let elsa = cycle::simulate_execution_base(&cfg, n, n).total() as f64 * cfg.cycle_time_s();
        let ideal_t = ideal.attention_latency_s(n, n, 64);
        let ratio = elsa / ideal_t;
        assert!((1.0..=1.2).contains(&ratio), "n={n}: base/ideal {ratio}");
    }
}

#[test]
fn a3_scaling_pathology_holds() {
    let a3 = A3Model::paper();
    let share_1 = a3.preprocessing_time_s(512, 64) / a3.total_time_s(512, 64, 1, true);
    let share_12 = a3.preprocessing_time_s(512, 64) / a3.total_time_s(512, 64, 12, true);
    assert!(share_12 > share_1);
    assert!(share_12 > 0.5);
}

#[test]
fn energy_ordering_across_points() {
    // More approximation => less energy, monotonically across the four
    // operating regimes (modeled via candidate counts).
    let cfg = AcceleratorConfig::paper();
    let n = 512;
    let energy_at = |frac: f64| {
        let c = ((n as f64 * frac) as usize).max(1);
        let cand: Vec<usize> = (0..c).map(|i| (i * 509) % n).collect();
        let mut sorted = cand;
        sorted.sort_unstable();
        sorted.dedup();
        let count = sorted.len();
        let report = cycle::simulate_execution(&cfg, n, &vec![sorted; n], false);
        elsa::sim::cost::EnergyBreakdown::from_run(&cfg, &report, n, n * count, n).total_j()
    };
    let e100 = energy_at(1.0);
    let e40 = energy_at(0.4);
    let e25 = energy_at(0.25);
    let e15 = energy_at(0.15);
    assert!(e100 > e40 && e40 > e25 && e25 > e15, "{e100} {e40} {e25} {e15}");
}
