//! Equivalence battery for the deterministic parallel execution layer.
//!
//! Every property compares a computation pinned to one worker thread against
//! the same computation at 2, 4, or 8 workers and requires **bit-for-bit**
//! equality (`f32::to_bits`, never an epsilon): `elsa-parallel` promises that
//! worker count is unobservable in results, and these tests are that promise.
//!
//! Shapes are drawn large enough that a slice of each run genuinely crosses
//! `elsa_parallel::MIN_PARALLEL_WORK` and takes the fan-out path (the gate
//! only affects scheduling, so sub-threshold cases are still valid checks).
//!
//! Reproduce any failure with the reported seed:
//! `ELSA_TESTKIT_SEED=0x... cargo test --test parallel_equivalence`.

use elsa::attention::exact::{self, AttentionInputs};
use elsa::attention::MultiHeadAttention;
use elsa::algorithm::attention::{ElsaAttention, ElsaParams};
use elsa::algorithm::SrpHasher;
use elsa::linalg::{Matrix, SeededRng};
use elsa::parallel::with_threads;
use elsa_testkit::prelude::*;

/// The worker counts the battery sweeps: serial plus three parallel widths.
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn random_matrix(rows: usize, cols: usize, rng: &mut SeededRng) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.standard_normal() as f32)
}

/// Exact bit pattern of a matrix — the only equality these tests accept.
fn bits(m: &Matrix) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

props! {
    config: Config::with_cases(24);

    fn matmul_bits_equal_across_worker_counts(
        m in ints(24, 72),
        k in ints(24, 72),
        n in ints(24, 72),
        widx in ints(0, 4),
    ) {
        let mut rng = SeededRng::new((m * 1_000_000 + k * 1_000 + n) as u64);
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(k, n, &mut rng);
        let serial = with_threads(1, || a.matmul(&b));
        let parallel = with_threads(WORKER_COUNTS[widx], || a.matmul(&b));
        prop_assert_eq!(bits(&serial), bits(&parallel));
    }

    fn matmul_transpose_b_bits_equal_across_worker_counts(
        m in ints(24, 72),
        k in ints(24, 72),
        n in ints(24, 72),
        widx in ints(0, 4),
    ) {
        let mut rng = SeededRng::new((n * 1_000_000 + m * 1_000 + k) as u64);
        let a = random_matrix(m, k, &mut rng);
        let b = random_matrix(n, k, &mut rng);
        let serial = with_threads(1, || a.matmul_transpose_b(&b));
        let parallel = with_threads(WORKER_COUNTS[widx], || a.matmul_transpose_b(&b));
        prop_assert_eq!(bits(&serial), bits(&parallel));
    }

    fn exact_attention_bits_equal_across_worker_counts(
        n in ints(48, 96),
        d in ints(16, 48),
        widx in ints(0, 4),
    ) {
        let mut rng = SeededRng::new((n * 10_000 + d) as u64);
        let inputs = AttentionInputs::new(
            random_matrix(n, d, &mut rng),
            random_matrix(n, d, &mut rng),
            random_matrix(n, d, &mut rng),
        );
        let serial = with_threads(1, || exact::scaled_attention(&inputs));
        let parallel = with_threads(WORKER_COUNTS[widx], || exact::scaled_attention(&inputs));
        prop_assert_eq!(bits(&serial), bits(&parallel));
    }

    fn multihead_forward_bits_equal_across_worker_counts(
        n in ints(24, 64),
        heads in ints(2, 5),
        widx in ints(0, 4),
    ) {
        let d_head = 16;
        let d_model = heads * d_head;
        let mut rng = SeededRng::new((n * 100 + heads) as u64);
        let mha = MultiHeadAttention::random(d_model, heads, d_head, &mut rng);
        let x = random_matrix(n, d_model, &mut rng);
        let serial = with_threads(1, || mha.forward(&x));
        let parallel = with_threads(WORKER_COUNTS[widx], || mha.forward(&x));
        prop_assert_eq!(bits(&serial), bits(&parallel));
        // The stateful-kernel path must agree with the parallel path too.
        let stateful = with_threads(WORKER_COUNTS[widx], || {
            mha.forward_with(&x, exact::scaled_attention)
        });
        prop_assert_eq!(bits(&serial), bits(&stateful));
    }

    fn hash_signatures_equal_across_worker_counts(
        rows in ints(16, 80),
        widx in ints(0, 4),
    ) {
        let mut rng = SeededRng::new(rows as u64);
        // Dense 64x64: 4096 multiplies per row, so 16+ rows cross the
        // parallel-work threshold.
        let hasher = SrpHasher::dense(64, 64, &mut rng);
        let m = random_matrix(rows, 64, &mut rng);
        let serial = with_threads(1, || hasher.hash_rows(&m));
        let parallel = with_threads(WORKER_COUNTS[widx], || hasher.hash_rows(&m));
        prop_assert_eq!(serial, parallel);
    }

    fn elsa_forward_bits_and_stats_equal_across_worker_counts(
        n in ints(48, 96),
        widx in ints(0, 4),
    ) {
        let mut rng = SeededRng::new(n as u64);
        let inputs = AttentionInputs::new(
            random_matrix(n, 64, &mut rng),
            random_matrix(n, 64, &mut rng),
            random_matrix(n, 64, &mut rng),
        );
        let mut prng = SeededRng::new(n as u64 + 1);
        let elsa = ElsaAttention::with_threshold(ElsaParams::for_dims(64, 64, &mut prng), 0.3);
        let (serial_out, serial_stats) = with_threads(1, || elsa.forward(&inputs));
        let (par_out, par_stats) =
            with_threads(WORKER_COUNTS[widx], || elsa.forward(&inputs));
        prop_assert_eq!(bits(&serial_out), bits(&par_out));
        prop_assert_eq!(serial_stats, par_stats);
    }
}
