//! Property-based tests (proptest) over the core data structures and
//! algorithm invariants.

use elsa::algorithm::attention::{ElsaAttention, ElsaParams, PreprocessedKeys};
use elsa::algorithm::hashing::BinaryHash;
use elsa::attention::exact::{self, AttentionInputs};
use elsa::linalg::kronecker::KroneckerFactors;
use elsa::linalg::{ops, Matrix, SeededRng};
use elsa::numeric::{CustomFloat, Fixed, FixedSpec};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---- fixed point ----

    #[test]
    fn fixed_round_trip_within_half_ulp(v in -40.0f64..40.0) {
        let spec = FixedSpec::qkv();
        let q = Fixed::from_f64(v, spec);
        let clamped = v.clamp(spec.min_value(), spec.max_value());
        prop_assert!((q.to_f64() - clamped).abs() <= spec.resolution() / 2.0 + 1e-12);
    }

    #[test]
    fn fixed_addition_is_exact(a in -30.0f64..30.0, b in -30.0f64..30.0) {
        let spec = FixedSpec::qkv();
        let qa = Fixed::from_f64(a, spec);
        let qb = Fixed::from_f64(b, spec);
        prop_assert_eq!((qa + qb).to_f64(), qa.to_f64() + qb.to_f64());
    }

    #[test]
    fn fixed_multiplication_is_exact(a in -30.0f64..30.0, b in -30.0f64..30.0) {
        let spec = FixedSpec::qkv();
        let qa = Fixed::from_f64(a, spec);
        let qb = Fixed::from_f64(b, spec);
        prop_assert_eq!((qa * qb).to_f64(), qa.to_f64() * qb.to_f64());
    }

    // ---- custom float ----

    #[test]
    fn custom_float_encoding_error_bounded(v in prop::num::f64::NORMAL) {
        let v = v % 1e60; // keep within the format's range
        prop_assume!(v != 0.0 && v.abs() > 1e-60);
        let enc = CustomFloat::from_f64(v).to_f64();
        let rel = ((enc - v) / v).abs();
        prop_assert!(rel <= CustomFloat::epsilon() + 1e-12, "v={v} rel={rel}");
    }

    #[test]
    fn custom_float_mul_commutes(a in -1e20f64..1e20, b in -1e20f64..1e20) {
        let ca = CustomFloat::from_f64(a);
        let cb = CustomFloat::from_f64(b);
        prop_assert_eq!(ca * cb, cb * ca);
    }

    #[test]
    fn custom_float_add_commutes(a in -1e20f64..1e20, b in -1e20f64..1e20) {
        let ca = CustomFloat::from_f64(a);
        let cb = CustomFloat::from_f64(b);
        prop_assert_eq!(ca + cb, cb + ca);
    }

    #[test]
    fn custom_float_bits_round_trip(a in -1e30f64..1e30) {
        let c = CustomFloat::from_f64(a);
        prop_assert_eq!(CustomFloat::from_bits(c.to_bits()), c);
    }

    // ---- softmax / ops ----

    #[test]
    fn softmax_is_distribution(scores in prop::collection::vec(-30.0f32..30.0, 1..64)) {
        let p = ops::softmax(&scores);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
    }

    #[test]
    fn softmax_invariant_to_shift(scores in prop::collection::vec(-10.0f32..10.0, 2..32), shift in -50.0f32..50.0) {
        let a = ops::softmax(&scores);
        let shifted: Vec<f32> = scores.iter().map(|s| s + shift).collect();
        let b = ops::softmax(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn percentile_is_monotone(values in prop::collection::vec(-100.0f64..100.0, 1..50), q1 in 0.0f64..100.0, q2 in 0.0f64..100.0) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(ops::percentile(&values, lo) <= ops::percentile(&values, hi) + 1e-12);
    }

    // ---- binary hashes ----

    #[test]
    fn hamming_is_a_metric(
        a in prop::collection::vec(any::<bool>(), 64),
        b in prop::collection::vec(any::<bool>(), 64),
        c in prop::collection::vec(any::<bool>(), 64),
    ) {
        let ha = BinaryHash::from_bits(&a);
        let hb = BinaryHash::from_bits(&b);
        let hc = BinaryHash::from_bits(&c);
        prop_assert_eq!(ha.hamming(&ha), 0);
        prop_assert_eq!(ha.hamming(&hb), hb.hamming(&ha));
        prop_assert!(ha.hamming(&hc) <= ha.hamming(&hb) + hb.hamming(&hc));
    }

    // ---- Kronecker transforms ----

    #[test]
    fn kronecker_apply_matches_dense(seed in 0u64..1000) {
        let mut rng = SeededRng::new(seed);
        let t = KroneckerFactors::two_way_square(16, &mut rng);
        let x = rng.normal_vec(16);
        let fast = t.apply(&x);
        let slow = t.dense().matmul(&Matrix::from_vec(16, 1, x)).col(0);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    // ---- attention semantics ----

    #[test]
    fn candidate_attention_with_full_set_matches_dense(seed in 0u64..500) {
        let mut rng = SeededRng::new(seed);
        let n = 12;
        let q = Matrix::from_fn(n, 8, |_, _| rng.standard_normal() as f32);
        let k = Matrix::from_fn(n, 8, |_, _| rng.standard_normal() as f32);
        let v = Matrix::from_fn(n, 8, |_, _| rng.standard_normal() as f32);
        let inputs = AttentionInputs::new(q, k, v);
        let dense = exact::attention(&inputs);
        let sparse = exact::attention_with_candidates(
            &inputs,
            &exact::full_candidates(n, n),
            1.0,
        );
        prop_assert!(dense.max_abs_diff(&sparse) < 1e-4);
    }

    #[test]
    fn selection_respects_threshold_semantics(seed in 0u64..200) {
        let mut rng = SeededRng::new(seed);
        let n = 24;
        let keys = Matrix::from_fn(n, 64, |_, _| rng.standard_normal() as f32);
        let params = ElsaParams::for_dims(64, 64, &mut rng);
        let operator = ElsaAttention::with_threshold(params, 0.4);
        let pre = PreprocessedKeys::compute(operator.params(), &keys);
        let query = rng.normal_vec(64);
        let qh = operator.params().hasher().hash(&query);
        let (selected, fallback) = operator.select_candidates(&qh, &pre);
        prop_assert!(!selected.is_empty());
        let cutoff = operator.threshold() * pre.max_norm();
        if !fallback {
            for &j in &selected {
                let sim = operator.params().lut().similarity(&qh, &pre.hashes()[j], pre.norms()[j]);
                prop_assert!(sim > cutoff, "selected key {j} below cutoff");
            }
        } else {
            prop_assert_eq!(selected.len(), 1);
        }
    }
}
