//! Property-based tests (elsa-testkit) over the core data structures and
//! algorithm invariants.
//!
//! Ported from the original proptest suite; every invariant is preserved,
//! with the generators swapped for `elsa_testkit::prop` equivalents.

use elsa::algorithm::attention::{ElsaAttention, ElsaParams, PreprocessedKeys};
use elsa::algorithm::hashing::BinaryHash;
use elsa::attention::exact::{self, AttentionInputs};
use elsa::linalg::kronecker::KroneckerFactors;
use elsa::linalg::{ops, Matrix, SeededRng};
use elsa::numeric::{CustomFloat, Fixed, FixedSpec};
use elsa_testkit::prelude::*;

props! {
    config: Config::with_cases(64);

    // ---- fixed point ----

    fn fixed_round_trip_within_half_ulp(v in range(-40.0, 40.0)) {
        let spec = FixedSpec::qkv();
        let q = Fixed::from_f64(v, spec);
        let clamped = v.clamp(spec.min_value(), spec.max_value());
        prop_assert!((q.to_f64() - clamped).abs() <= spec.resolution() / 2.0 + 1e-12);
    }

    fn fixed_addition_is_exact(a in range(-30.0, 30.0), b in range(-30.0, 30.0)) {
        let spec = FixedSpec::qkv();
        let qa = Fixed::from_f64(a, spec);
        let qb = Fixed::from_f64(b, spec);
        prop_assert_eq!((qa + qb).to_f64(), qa.to_f64() + qb.to_f64());
    }

    fn fixed_multiplication_is_exact(a in range(-30.0, 30.0), b in range(-30.0, 30.0)) {
        let spec = FixedSpec::qkv();
        let qa = Fixed::from_f64(a, spec);
        let qb = Fixed::from_f64(b, spec);
        prop_assert_eq!((qa * qb).to_f64(), qa.to_f64() * qb.to_f64());
    }

    // ---- custom float ----

    fn custom_float_encoding_error_bounded(mag in range(-59.5, 59.5), neg in bools()) {
        // Log-uniform magnitudes spanning the format's full usable range
        // (the original generator drew any normal f64 folded into +-1e60).
        let v = if neg { -1.0 } else { 1.0 } * 10f64.powf(mag);
        prop_assume!(v != 0.0 && v.abs() > 1e-60);
        let enc = CustomFloat::from_f64(v).to_f64();
        let rel = ((enc - v) / v).abs();
        prop_assert!(rel <= CustomFloat::epsilon() + 1e-12, "v={v} rel={rel}");
    }

    fn custom_float_mul_commutes(a in range(-1e20, 1e20), b in range(-1e20, 1e20)) {
        let ca = CustomFloat::from_f64(a);
        let cb = CustomFloat::from_f64(b);
        prop_assert_eq!(ca * cb, cb * ca);
    }

    fn custom_float_add_commutes(a in range(-1e20, 1e20), b in range(-1e20, 1e20)) {
        let ca = CustomFloat::from_f64(a);
        let cb = CustomFloat::from_f64(b);
        prop_assert_eq!(ca + cb, cb + ca);
    }

    fn custom_float_bits_round_trip(a in range(-1e30, 1e30)) {
        let c = CustomFloat::from_f64(a);
        prop_assert_eq!(CustomFloat::from_bits(c.to_bits()), c);
    }

    // ---- softmax / ops ----

    fn softmax_is_distribution(scores in vecs(range_f32(-30.0, 30.0), 1, 64)) {
        let p = ops::softmax(&scores);
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
        prop_assert!(p.iter().all(|&x| (0.0..=1.0 + 1e-6).contains(&x)));
    }

    fn softmax_invariant_to_shift(
        scores in vecs(range_f32(-10.0, 10.0), 2, 32),
        shift in range_f32(-50.0, 50.0),
    ) {
        let a = ops::softmax(&scores);
        let shifted: Vec<f32> = scores.iter().map(|s| s + shift).collect();
        let b = ops::softmax(&shifted);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    // Monotone in q even for out-of-range quantiles (q is drawn well
    // outside [0, 100]): `ops::percentile` clamps the rank, so q <= 0 pins
    // to the min, q >= 100 to the max, and the serving-report percentiles
    // built on it (`ServingReport::completion_percentile_s`, the
    // `ServeReport` queue-delay percentiles) can never index out of bounds
    // or extrapolate.
    fn percentile_is_monotone(
        values in vecs(range(-100.0, 100.0), 1, 50),
        q1 in range(-100.0, 250.0),
        q2 in range(-100.0, 250.0),
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(ops::percentile(&values, lo) <= ops::percentile(&values, hi) + 1e-12);
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for q in [lo, hi] {
            let p = ops::percentile(&values, q);
            prop_assert!((min..=max).contains(&p), "percentile({q}) = {p} outside [{min}, {max}]");
        }
        prop_assert_eq!(ops::percentile(&values, -5.0), min);
        prop_assert_eq!(ops::percentile(&values, 205.0), max);
    }

    // The serving report inherits the clamp: out-of-range quantiles pin to
    // the fastest / slowest surviving completion.
    fn serving_report_percentile_clamps(
        times in vecs(range(0.001, 100.0), 1, 24),
        q in range(-100.0, 300.0),
    ) {
        use elsa::runtime::{RequestRecord, ServingReport};
        let report = ServingReport {
            records: times.iter().map(|&t| RequestRecord::served(8, t, t)).collect(),
        };
        let p = report.completion_percentile_s(q);
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((min..=max).contains(&p));
        prop_assert_eq!(report.completion_percentile_s(-1.0), min);
        prop_assert_eq!(report.completion_percentile_s(101.0), max);
    }

    // ---- binary hashes ----

    fn hamming_is_a_metric(
        a in vecs(bools(), 64, 65),
        b in vecs(bools(), 64, 65),
        c in vecs(bools(), 64, 65),
    ) {
        let ha = BinaryHash::from_bits(&a);
        let hb = BinaryHash::from_bits(&b);
        let hc = BinaryHash::from_bits(&c);
        prop_assert_eq!(ha.hamming(&ha), 0);
        prop_assert_eq!(ha.hamming(&hb), hb.hamming(&ha));
        prop_assert!(ha.hamming(&hc) <= ha.hamming(&hb) + hb.hamming(&hc));
    }

    // ---- Kronecker transforms ----

    fn kronecker_apply_matches_dense(seed in ints_u64(0, 1000)) {
        let mut rng = SeededRng::new(seed);
        let t = KroneckerFactors::two_way_square(16, &mut rng);
        let x = rng.normal_vec(16);
        let fast = t.apply(&x);
        let slow = t.dense().matmul(&Matrix::from_vec(16, 1, x)).col(0);
        for (a, b) in fast.iter().zip(&slow) {
            prop_assert!((a - b).abs() < 1e-3);
        }
    }

    // ---- attention semantics ----

    fn candidate_attention_with_full_set_matches_dense(seed in ints_u64(0, 500)) {
        let mut rng = SeededRng::new(seed);
        let n = 12;
        let q = Matrix::from_fn(n, 8, |_, _| rng.standard_normal() as f32);
        let k = Matrix::from_fn(n, 8, |_, _| rng.standard_normal() as f32);
        let v = Matrix::from_fn(n, 8, |_, _| rng.standard_normal() as f32);
        let inputs = AttentionInputs::new(q, k, v);
        let dense = exact::attention(&inputs);
        let sparse = exact::attention_with_candidates(
            &inputs,
            &exact::full_candidates(n, n),
            1.0,
        );
        prop_assert!(dense.max_abs_diff(&sparse) < 1e-4);
    }

    fn selection_respects_threshold_semantics(seed in ints_u64(0, 200)) {
        let mut rng = SeededRng::new(seed);
        let n = 24;
        let keys = Matrix::from_fn(n, 64, |_, _| rng.standard_normal() as f32);
        let params = ElsaParams::for_dims(64, 64, &mut rng);
        let operator = ElsaAttention::with_threshold(params, 0.4);
        let pre = PreprocessedKeys::compute(operator.params(), &keys);
        let query = rng.normal_vec(64);
        let qh = operator.params().hasher().hash(&query);
        let (selected, fallback) = operator.select_candidates(&qh, &pre);
        prop_assert!(!selected.is_empty());
        let cutoff = operator.threshold() * pre.max_norm();
        if !fallback {
            for &j in &selected {
                let sim = operator.params().lut().similarity(&qh, &pre.hashes()[j], pre.norms()[j]);
                prop_assert!(sim > cutoff, "selected key {j} below cutoff");
            }
        } else {
            prop_assert_eq!(selected.len(), 1);
        }
    }
}
