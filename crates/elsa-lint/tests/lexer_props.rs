//! Property tests for the lint lexer: totality over arbitrary input.
//!
//! The lexer is the foundation every rule stands on, and it runs over every
//! source file in the workspace on every gate run — so it must be total:
//! no byte sequence may panic it, token spans must tile forward, and line
//! numbers must be monotonic and consistent with the newlines actually seen.

use elsa_lint::lexer::{lex, TokenKind};
use elsa_testkit::prelude::*;

props! {
    config: Config::with_cases(512);

    fn lexing_arbitrary_bytes_never_panics(raw in vecs(ints(0, 256), 0, 300)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let tokens = lex(&bytes);
        // Spans are well-formed, in-bounds, and strictly ordered.
        let mut prev_end = 0usize;
        let mut prev_line = 1u32;
        for t in &tokens {
            prop_assert!(t.start < t.end, "empty span {t:?}");
            prop_assert!(t.end <= bytes.len(), "span past EOF {t:?}");
            prop_assert!(t.start >= prev_end, "overlapping tokens at {t:?}");
            prop_assert!(t.line >= prev_line, "line went backwards at {t:?}");
            prev_end = t.end;
            prev_line = t.line;
        }
    }

    fn lexing_ascii_soup_never_panics(raw in vecs(ints(0, 128), 0, 300)) {
        // Dense in the delimiter space: quotes, hashes, slashes, backslashes
        // appear constantly, hammering the literal/comment scanners.
        let tricky = b"\"'#/\\*r b\n{}[]().:!";
        let bytes: Vec<u8> = raw.iter().map(|&i| tricky[i % tricky.len()]).collect();
        let tokens = lex(&bytes);
        for t in &tokens {
            prop_assert!(t.end <= bytes.len());
        }
    }

    fn token_lines_match_newline_count(raw in vecs(ints(0, 256), 0, 200)) {
        let bytes: Vec<u8> = raw.iter().map(|&b| b as u8).collect();
        let total_lines = 1 + bytes.iter().filter(|&&b| b == b'\n').count() as u32;
        for t in lex(&bytes) {
            prop_assert!(t.line >= 1 && t.line <= total_lines, "line {t:?} out of range");
            // The recorded line equals 1 + newlines strictly before start.
            let before = bytes[..t.start].iter().filter(|&&b| b == b'\n').count() as u32;
            prop_assert_eq!(t.line, before + 1);
        }
    }

    fn valid_rust_snippets_round_trip_structure(n in ints(0, 6)) {
        // A rotating set of well-formed snippets must lex without Unknowns
        // in places that would hide code from the rules.
        let snippets: [&str; 6] = [
            "fn main() { let x = 1; }",
            "let s = \"str\"; let r = r#\"raw\"#; let c = 'c';",
            "// line\n/* block /* nested */ */\ncode",
            "#[cfg(test)]\nmod tests { fn t() {} }",
            "impl<'a> Foo<'a> { fn f(&'a self) -> &'a str { self.s } }",
            "let b = b\"bytes\"; let bc = b'\\n'; let br = br#\"raw bytes\"#;",
        ];
        let src = snippets[n % snippets.len()].as_bytes();
        let tokens = lex(src);
        prop_assert!(!tokens.is_empty());
        prop_assert!(tokens.iter().all(|t| t.end <= src.len()));
    }
}

#[test]
fn comment_and_literal_kinds_partition_cleanly() {
    let src = b"code // c1\n/* c2 */ \"s\" r#\"rs\"# 'c' 'life more";
    let kinds: Vec<TokenKind> = lex(src).into_iter().map(|t| t.kind).collect();
    assert!(kinds.contains(&TokenKind::LineComment));
    assert!(kinds.contains(&TokenKind::BlockComment));
    assert!(kinds.contains(&TokenKind::Str));
    assert!(kinds.contains(&TokenKind::RawStr));
    assert!(kinds.contains(&TokenKind::CharLit));
    assert!(kinds.contains(&TokenKind::Lifetime));
}
