//! A comment- and string-aware token scanner for Rust source.
//!
//! This is deliberately **not** a parser: the lint rules only need to know
//! whether a byte is code, comment, or literal, what identifier it belongs
//! to, and on which line it sits. The scanner therefore produces a flat
//! token stream with accurate line numbers and literal/comment boundaries —
//! enough for the rules in [`crate::rules`] to match token *sequences*
//! (e.g. `env :: var ( "ELSA_THREADS"`) without ever being fooled by the
//! same text inside a string literal or a comment.
//!
//! The scanner is total: it never panics, on any byte sequence (enforced by
//! a property test over arbitrary byte strings). Malformed input degrades to
//! `Unknown`/`Punct` tokens; an unterminated literal or comment simply runs
//! to end of input.

/// The lexical class of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`foo`, `unsafe`, `r#fn`).
    Ident,
    /// Numeric literal (`42`, `0xFF`, `1.5`).
    Number,
    /// A single punctuation byte (`.`, `:`, `{`, …).
    Punct(u8),
    /// String or byte-string literal with escapes (`"…"`, `b"…"`).
    Str,
    /// Raw (byte-)string literal (`r"…"`, `r#"…"#`, `br#"…"#`).
    RawStr,
    /// Character or byte literal (`'a'`, `b'\n'`).
    CharLit,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// `// …` comment (including doc comments).
    LineComment,
    /// `/* … */` comment, nesting-aware.
    BlockComment,
}

/// One token: kind, 1-based line of its first byte, and byte span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// Lexical class.
    pub kind: TokenKind,
    /// 1-based line number of the token's first byte.
    pub line: u32,
    /// Byte offset of the first byte.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Token {
    /// The token's bytes within `src`.
    ///
    /// Returns an empty slice if the span is out of bounds for `src` (only
    /// possible when `src` is not the buffer the token was lexed from).
    #[must_use]
    pub fn bytes<'a>(&self, src: &'a [u8]) -> &'a [u8] {
        src.get(self.start..self.end).unwrap_or(&[])
    }

    /// The token's text, lossily decoded.
    #[must_use]
    pub fn text(&self, src: &[u8]) -> String {
        String::from_utf8_lossy(self.bytes(src)).into_owned()
    }

    /// For [`TokenKind::Str`] tokens, the content between the quotes (no
    /// escape processing); `None` for other kinds or malformed spans.
    #[must_use]
    pub fn str_content(&self, src: &[u8]) -> Option<String> {
        if self.kind != TokenKind::Str {
            return None;
        }
        let bytes = self.bytes(src);
        let open = bytes.iter().position(|&b| b == b'"')?;
        let close = bytes.iter().rposition(|&b| b == b'"')?;
        if close <= open {
            return None;
        }
        Some(String::from_utf8_lossy(&bytes[open + 1..close]).into_owned())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

struct Scanner<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
}

impl Scanner<'_> {
    fn peek(&self, k: usize) -> Option<u8> {
        self.src.get(self.i + k).copied()
    }

    fn bump(&mut self) {
        if let Some(b) = self.peek(0) {
            if b == b'\n' {
                self.line += 1;
            }
            self.i += 1;
        }
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes a `//`-comment up to (not including) the newline.
    fn line_comment(&mut self) {
        while let Some(b) = self.peek(0) {
            if b == b'\n' {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a `/* … */` comment, tracking nesting; the leading `/*` has
    /// already been consumed.
    fn block_comment(&mut self) {
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some(b'/'), Some(b'*')) => {
                    depth += 1;
                    self.bump_n(2);
                }
                (Some(b'*'), Some(b'/')) => {
                    depth -= 1;
                    self.bump_n(2);
                }
                (Some(_), _) => self.bump(),
                (None, _) => break,
            }
        }
    }

    /// Consumes an escape-aware `"…"` body; the opening quote has already
    /// been consumed.
    fn quoted(&mut self) {
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'"' => {
                    self.bump();
                    break;
                }
                _ => self.bump(),
            }
        }
    }

    /// Consumes a raw-string body terminated by `"` followed by `hashes`
    /// `#` bytes; the opening `"` has already been consumed.
    fn raw_quoted(&mut self, hashes: usize) {
        while let Some(b) = self.peek(0) {
            self.bump();
            if b == b'"' && (0..hashes).all(|k| self.peek(k) == Some(b'#')) {
                self.bump_n(hashes);
                break;
            }
        }
    }

    /// Consumes a char/byte-literal body; the opening `'` has already been
    /// consumed. Stops at the closing quote, a raw newline, or end of input.
    fn char_literal(&mut self) {
        while let Some(b) = self.peek(0) {
            match b {
                b'\\' => self.bump_n(2),
                b'\'' => {
                    self.bump();
                    break;
                }
                b'\n' => break,
                _ => self.bump(),
            }
        }
    }

    fn ident(&mut self) {
        while let Some(b) = self.peek(0) {
            if !is_ident_continue(b) {
                break;
            }
            self.bump();
        }
    }

    /// Number of consecutive `#` bytes starting at lookahead offset `k`.
    fn count_hashes(&self, k: usize) -> usize {
        let mut n = 0;
        while self.peek(k + n) == Some(b'#') {
            n += 1;
        }
        n
    }
}

/// Lexes `src` into a flat token stream. Whitespace is skipped; everything
/// else (including comments) becomes a token. Total: never panics.
#[must_use]
pub fn lex(src: &[u8]) -> Vec<Token> {
    let mut s = Scanner { src, i: 0, line: 1 };
    let mut tokens = Vec::new();
    while let Some(b) = s.peek(0) {
        if b.is_ascii_whitespace() {
            s.bump();
            continue;
        }
        let (start, line) = (s.i, s.line);
        let kind = match b {
            b'/' if s.peek(1) == Some(b'/') => {
                s.bump_n(2);
                s.line_comment();
                TokenKind::LineComment
            }
            b'/' if s.peek(1) == Some(b'*') => {
                s.bump_n(2);
                s.block_comment();
                TokenKind::BlockComment
            }
            b'"' => {
                s.bump();
                s.quoted();
                TokenKind::Str
            }
            b'r' | b'b' => scan_prefixed(&mut s),
            b'\'' => {
                // Lifetime iff the quote is followed by an identifier that
                // is *not* immediately closed by another quote.
                if s.peek(1).is_some_and(is_ident_start) && s.peek(2) != Some(b'\'') {
                    s.bump();
                    s.ident();
                    TokenKind::Lifetime
                } else {
                    s.bump();
                    s.char_literal();
                    TokenKind::CharLit
                }
            }
            _ if is_ident_start(b) => {
                s.ident();
                TokenKind::Ident
            }
            _ if b.is_ascii_digit() => {
                while let Some(c) = s.peek(0) {
                    if is_ident_continue(c) {
                        s.bump();
                    } else if c == b'.' && s.peek(1).is_some_and(|d| d.is_ascii_digit()) {
                        // `1.5` continues the number; `0..n` and `x.0.y` do
                        // not swallow the dot.
                        s.bump();
                    } else {
                        break;
                    }
                }
                TokenKind::Number
            }
            _ => {
                s.bump();
                TokenKind::Punct(b)
            }
        };
        // Defensive: guarantee forward progress on any input.
        if s.i == start {
            s.bump();
        }
        tokens.push(Token { kind, line, start, end: s.i });
    }
    tokens
}

/// Scans a token starting with `r` or `b`: raw strings (`r"`, `r#"`),
/// byte strings (`b"`), byte chars (`b'`), raw byte strings (`br"`, `br#"`),
/// raw identifiers (`r#fn`), or a plain identifier.
fn scan_prefixed(s: &mut Scanner<'_>) -> TokenKind {
    let b = s.peek(0).unwrap_or(0);
    if b == b'r' {
        match s.peek(1) {
            Some(b'"') => {
                s.bump_n(2);
                s.raw_quoted(0);
                return TokenKind::RawStr;
            }
            Some(b'#') => {
                let hashes = s.count_hashes(1);
                if s.peek(1 + hashes) == Some(b'"') {
                    s.bump_n(2 + hashes);
                    s.raw_quoted(hashes);
                    return TokenKind::RawStr;
                }
                if hashes == 1 && s.peek(2).is_some_and(is_ident_start) {
                    // Raw identifier `r#type`.
                    s.bump_n(2);
                    s.ident();
                    return TokenKind::Ident;
                }
            }
            _ => {}
        }
    } else {
        // b == b'b'
        match s.peek(1) {
            Some(b'"') => {
                s.bump_n(2);
                s.quoted();
                return TokenKind::Str;
            }
            Some(b'\'') => {
                s.bump_n(2);
                s.char_literal();
                return TokenKind::CharLit;
            }
            Some(b'r') => {
                let hashes = s.count_hashes(2);
                if s.peek(2 + hashes) == Some(b'"') {
                    s.bump_n(3 + hashes);
                    s.raw_quoted(hashes);
                    return TokenKind::RawStr;
                }
            }
            _ => {}
        }
    }
    s.ident();
    TokenKind::Ident
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src.as_bytes()).into_iter().map(|t| t.kind).collect()
    }

    fn idents(src: &str) -> Vec<String> {
        let bytes = src.as_bytes();
        lex(bytes)
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(bytes))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        assert_eq!(idents("let x = foo.bar();"), ["let", "x", "foo", "bar"]);
    }

    #[test]
    fn line_numbers_are_accurate() {
        let src = b"a\nbb\n\nccc";
        let lines: Vec<u32> = lex(src).into_iter().map(|t| t.line).collect();
        assert_eq!(lines, [1, 2, 4]);
    }

    #[test]
    fn strings_hide_their_content() {
        assert_eq!(idents(r#"let s = "Instant::now() panic!";"#), ["let", "s"]);
        assert_eq!(idents(r#"let s = b"unwrap";"#), ["let", "s"]);
    }

    #[test]
    fn raw_strings_hide_their_content() {
        let src = r####"let s = r#"x.unwrap() "quoted" more"# ; done"####;
        assert_eq!(idents(src), ["let", "s", "done"]);
        let src = r####"let s = br##"bytes "# here"## ; done"####;
        assert_eq!(idents(src), ["let", "s", "done"]);
    }

    #[test]
    fn escaped_quotes_do_not_end_strings() {
        assert_eq!(idents(r#"let s = "a\"b Instant \"c"; tail"#), ["let", "s", "tail"]);
    }

    #[test]
    fn comments_are_tokens_with_hidden_content() {
        let src = "code // trailing unwrap()\nmore /* block\npanic! */ after";
        assert_eq!(idents(src), ["code", "more", "after"]);
        let comment_kinds: Vec<TokenKind> = lex(src.as_bytes())
            .into_iter()
            .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
            .map(|t| t.kind)
            .collect();
        assert_eq!(comment_kinds, [TokenKind::LineComment, TokenKind::BlockComment]);
    }

    #[test]
    fn nested_block_comments() {
        assert_eq!(idents("a /* outer /* inner */ still comment */ b"), ["a", "b"]);
    }

    #[test]
    fn lifetimes_versus_char_literals() {
        let src = "fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let q = '\\''; }";
        let toks = lex(src.as_bytes());
        let lifetimes = toks.iter().filter(|t| t.kind == TokenKind::Lifetime).count();
        let chars = toks.iter().filter(|t| t.kind == TokenKind::CharLit).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 3);
    }

    #[test]
    fn static_lifetime_is_a_lifetime() {
        let toks = lex(b"&'static str");
        assert!(toks.iter().any(|t| t.kind == TokenKind::Lifetime));
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1;"), ["let", "r#type"]);
    }

    #[test]
    fn numbers_do_not_swallow_method_calls() {
        // `x.0.unwrap()` must expose `unwrap` as an identifier after a dot.
        let src = "x.0.unwrap()";
        assert_eq!(idents(src), ["x", "unwrap"]);
        // while real float literals stay single tokens
        assert_eq!(kinds("1.5"), [TokenKind::Number]);
        assert_eq!(kinds("0..9"), [
            TokenKind::Number,
            TokenKind::Punct(b'.'),
            TokenKind::Punct(b'.'),
            TokenKind::Number
        ]);
    }

    #[test]
    fn str_content_extraction() {
        let src = br#"env::var("ELSA_THREADS")"#;
        let toks = lex(src);
        let content: Vec<String> =
            toks.iter().filter_map(|t| t.str_content(src)).collect();
        assert_eq!(content, ["ELSA_THREADS"]);
    }

    #[test]
    fn unterminated_literals_run_to_end_without_panicking() {
        for src in ["\"abc", "r#\"abc", "/* abc", "'", "b\"x", "r#"] {
            let toks = lex(src.as_bytes());
            assert!(!toks.is_empty());
        }
    }
}
