//! O1 `offline-deps`: every dependency in every workspace manifest must be
//! an in-tree path dependency.
//!
//! This reimplements (in Rust, with `file:line` findings) the dependency
//! guard `scripts/verify.sh` used to run through `python3 -c` + `tomllib`:
//! an entry in any `[dependencies]`, `[dev-dependencies]`,
//! `[build-dependencies]`, `[workspace.dependencies]`, or
//! `[target.*.dependencies]` table is acceptable only when it resolves
//! inside this tree —
//!
//! * `foo = { path = "..." }` — direct path dependency,
//! * `foo.workspace = true` / `foo = { workspace = true }` — inheriting a
//!   workspace-level entry (those are themselves checked for `path`),
//! * `[dependencies.foo]` sub-tables carrying a `path` or
//!   `workspace = true` key.
//!
//! Anything else (`foo = "1.0"`, `version = ...`-only tables, `git = ...`)
//! is a finding: it would resolve to a registry or remote source and break
//! the offline, zero-external-dependency build contract.
//!
//! The parser is a deliberately small line-based TOML subset — exactly the
//! shapes `cargo` accepts for dependency tables — not a general TOML reader.

use crate::rules::{Finding, RuleId};

/// Manifests the workspace walk must keep seeing. A layout change that
/// silently drops one of these from the scan would let a registry dep in
/// unobserved, so their absence is itself a finding (the same pinning the
/// python guard did with `assert`s).
pub const PINNED_MANIFESTS: &[&str] = &[
    "Cargo.toml",
    "crates/elsa-parallel/Cargo.toml",
    "crates/elsa-fault/Cargo.toml",
    "crates/elsa-serve/Cargo.toml",
    "crates/elsa-lint/Cargo.toml",
    "crates/elsa-workloads/Cargo.toml",
];

/// Dependency-table names (last path segment `dependencies` variants).
fn is_dep_table(table: &str) -> bool {
    table == "dependencies"
        || table == "dev-dependencies"
        || table == "build-dependencies"
        || table == "workspace.dependencies"
        || table.ends_with(".dependencies")
        || table.ends_with(".dev-dependencies")
        || table.ends_with(".build-dependencies")
}

/// For a header like `dependencies.foo` (a per-dependency sub-table),
/// returns the dependency name when the prefix is a dependency table.
fn sub_table_dep(table: &str) -> Option<&str> {
    let (prefix, name) = table.rsplit_once('.')?;
    if is_dep_table(prefix) {
        Some(name)
    } else {
        None
    }
}

/// Strips a TOML line comment (a `#` outside any quoted string).
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Whether an inline-table value (`{ ... }`) pins the dep in-tree.
fn inline_table_is_local(value: &str) -> bool {
    let inner = value.trim().trim_start_matches('{').trim_end_matches('}');
    inner.split(',').any(|kv| {
        let Some((key, val)) = kv.split_once('=') else {
            return false;
        };
        let (key, val) = (key.trim(), val.trim());
        key == "path" || (key == "workspace" && val == "true")
    })
}

/// Checks one manifest. `rel_path` is used verbatim in findings.
#[must_use]
pub fn check_manifest(rel_path: &str, text: &str) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut table = String::new();
    // For `[dependencies.foo]` sub-tables: (dep name, header line, local?).
    let mut sub: Option<(String, u32, bool)> = None;

    let close_sub = |sub: &mut Option<(String, u32, bool)>, findings: &mut Vec<Finding>| {
        if let Some((name, line, local)) = sub.take() {
            if !local {
                findings.push(Finding {
                    file: rel_path.to_owned(),
                    line,
                    rule: RuleId::OfflineDeps,
                    message: format!(
                        "dependency `{name}` is not an in-tree path dependency \
                         (no `path` or `workspace = true` key)"
                    ),
                    waived: None,
                });
            }
        }
    };

    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx as u32 + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            close_sub(&mut sub, &mut findings);
            table = line.trim_matches(|c| c == '[' || c == ']').trim().to_owned();
            if let Some(name) = sub_table_dep(&table) {
                sub = Some((name.to_owned(), line_no, false));
            }
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let (key, value) = (key.trim(), value.trim());
        if let Some((_, _, local)) = sub.as_mut() {
            if key == "path" || (key == "workspace" && value == "true") {
                *local = true;
            }
            continue;
        }
        if !is_dep_table(&table) {
            continue;
        }
        // `foo.workspace = true` (dotted-key inheritance) is in-tree.
        if let Some(name) = key.strip_suffix(".workspace") {
            if value == "true" && !name.is_empty() {
                continue;
            }
        }
        // `foo = { path = "..." }` / `foo = { workspace = true }` are
        // in-tree; bare versions, `git`, and version-only tables are not.
        let local = value.starts_with('{') && inline_table_is_local(value);
        if !local {
            findings.push(Finding {
                file: rel_path.to_owned(),
                line: line_no,
                rule: RuleId::OfflineDeps,
                message: format!(
                    "dependency `{key}` in [{table}] is not an in-tree path dependency"
                ),
                waived: None,
            });
        }
    }
    close_sub(&mut sub, &mut findings);
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(text: &str) -> Vec<Finding> {
        check_manifest("Cargo.toml", text)
    }

    #[test]
    fn path_and_workspace_deps_pass() {
        let text = "\
[package]
name = \"x\"

[dependencies]
elsa-core = { path = \"crates/elsa-core\" }
elsa-linalg.workspace = true
elsa-sim = { workspace = true }

[dev-dependencies]
elsa-testkit.workspace = true

[workspace.dependencies]
elsa-core = { path = \"crates/elsa-core\" }
";
        assert!(hits(text).is_empty(), "{:?}", hits(text));
    }

    #[test]
    fn registry_and_git_deps_fail_with_line_numbers() {
        let text = "\
[dependencies]
rand = \"0.8\"
serde = { version = \"1\", features = [\"derive\"] }
remote = { git = \"https://example.com/x.git\" }
";
        let findings = hits(text);
        assert_eq!(findings.len(), 3);
        assert_eq!(findings[0].line, 2);
        assert_eq!(findings[1].line, 3);
        assert_eq!(findings[2].line, 4);
        assert!(findings.iter().all(|f| f.rule == RuleId::OfflineDeps));
        assert!(findings[0].message.contains("rand"));
    }

    #[test]
    fn workspace_dependencies_table_is_checked_too() {
        let text = "[workspace.dependencies]\nrand = \"0.8\"\n";
        assert_eq!(hits(text).len(), 1);
    }

    #[test]
    fn sub_table_deps_are_grouped() {
        let good = "[dependencies.elsa-core]\npath = \"crates/elsa-core\"\n";
        assert!(hits(good).is_empty());
        let good_ws = "[dependencies.elsa-core]\nworkspace = true\n";
        assert!(hits(good_ws).is_empty());
        let bad = "[dependencies.rand]\nversion = \"0.8\"\nfeatures = [\"std\"]\n";
        let findings = hits(bad);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].line, 1);
        assert!(findings[0].message.contains("rand"));
    }

    #[test]
    fn target_specific_dep_tables_are_checked() {
        let text = "[target.'cfg(unix)'.dependencies]\nlibc = \"0.2\"\n";
        assert_eq!(hits(text).len(), 1);
    }

    #[test]
    fn comments_and_unrelated_tables_are_ignored() {
        let text = "\
# rand = \"0.8\"
[package]
version = \"1.0\"
[features]
default = []
[dependencies]
elsa-core.workspace = true # in-tree
";
        assert!(hits(text).is_empty());
    }

    #[test]
    fn pinned_manifests_cover_the_lint_crate_itself() {
        assert!(PINNED_MANIFESTS.contains(&"crates/elsa-lint/Cargo.toml"));
        assert!(PINNED_MANIFESTS.contains(&"Cargo.toml"));
    }
}
