//! The repo-specific rule set.
//!
//! Every rule enforces, at the source level, a contract the test batteries
//! otherwise only probe dynamically:
//!
//! | code | id                | contract                                           |
//! |------|-------------------|----------------------------------------------------|
//! | D1   | `nondeterminism`  | no wall-clock/entropy sources outside bench/testkit |
//! | D2   | `hash-collections`| no `HashMap`/`HashSet` in deterministic crates      |
//! | D3   | `threads-env`     | `ELSA_THREADS` is read only by `elsa-parallel`      |
//! | P1   | `panic-policy`    | no panicking calls in serving-path crates           |
//! | O1   | `offline-deps`    | every dependency is an in-tree path dependency      |
//! | U1   | `unsafe-safety`   | every `unsafe` carries a `// SAFETY:` comment       |
//! | W0   | `waiver-syntax`   | waiver comments must parse and carry a reason       |
//!
//! Rules D1–U1 can be waived per-site with the syntax in [`crate::waiver`];
//! W0 cannot.

use crate::lexer::{self, Token, TokenKind};
use crate::waiver::{self, Waiver};

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RuleId {
    /// D1: wall-clock or entropy source outside the explicit allowlist.
    Nondeterminism,
    /// D2: `HashMap`/`HashSet` in a crate promising deterministic output.
    HashCollections,
    /// D3: `ELSA_THREADS` read outside `elsa-parallel`.
    ThreadsEnv,
    /// P1: panicking construct in a serving-path crate's non-test code.
    PanicPolicy,
    /// O1: a `Cargo.toml` dependency that is not an in-tree path dep.
    OfflineDeps,
    /// U1: `unsafe` without an adjacent `// SAFETY:` comment.
    UnsafeSafety,
    /// W0: malformed waiver comment (never waivable itself).
    WaiverSyntax,
}

impl RuleId {
    /// All rules, in report order.
    pub const ALL: [RuleId; 7] = [
        RuleId::Nondeterminism,
        RuleId::HashCollections,
        RuleId::ThreadsEnv,
        RuleId::PanicPolicy,
        RuleId::OfflineDeps,
        RuleId::UnsafeSafety,
        RuleId::WaiverSyntax,
    ];

    /// Short code (`D1` … `W0`).
    #[must_use]
    pub const fn code(self) -> &'static str {
        match self {
            RuleId::Nondeterminism => "D1",
            RuleId::HashCollections => "D2",
            RuleId::ThreadsEnv => "D3",
            RuleId::PanicPolicy => "P1",
            RuleId::OfflineDeps => "O1",
            RuleId::UnsafeSafety => "U1",
            RuleId::WaiverSyntax => "W0",
        }
    }

    /// Kebab-case id (`nondeterminism` …).
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            RuleId::Nondeterminism => "nondeterminism",
            RuleId::HashCollections => "hash-collections",
            RuleId::ThreadsEnv => "threads-env",
            RuleId::PanicPolicy => "panic-policy",
            RuleId::OfflineDeps => "offline-deps",
            RuleId::UnsafeSafety => "unsafe-safety",
            RuleId::WaiverSyntax => "waiver-syntax",
        }
    }

    /// Parses either the code (`D1`) or the kebab id (`nondeterminism`).
    #[must_use]
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL
            .into_iter()
            .find(|r| r.code().eq_ignore_ascii_case(s) || r.name() == s)
    }
}

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// The violated rule.
    pub rule: RuleId,
    /// What was found.
    pub message: String,
    /// `Some(reason)` when a waiver covers this finding.
    pub waived: Option<String>,
}

impl Finding {
    /// Render as `file:line: [code id] message`.
    #[must_use]
    pub fn render(&self) -> String {
        let waived = match &self.waived {
            Some(reason) => format!(" (waived: {reason})"),
            None => String::new(),
        };
        format!(
            "{}:{}: [{} {}] {}{}",
            self.file,
            self.line,
            self.rule.code(),
            self.rule.name(),
            self.message,
            waived
        )
    }
}

/// The set of rules a run enforces.
#[derive(Debug, Clone)]
pub struct RuleSet {
    enabled: Vec<RuleId>,
}

impl RuleSet {
    /// Every rule.
    #[must_use]
    pub fn all() -> Self {
        Self { enabled: RuleId::ALL.to_vec() }
    }

    /// Only the given rules (W0 is always kept on: waiver syntax must hold
    /// whenever waivers are interpreted at all).
    #[must_use]
    pub fn only(rules: &[RuleId]) -> Self {
        let mut enabled = rules.to_vec();
        if !enabled.contains(&RuleId::WaiverSyntax) {
            enabled.push(RuleId::WaiverSyntax);
        }
        enabled.sort();
        enabled.dedup();
        Self { enabled }
    }

    /// Whether `rule` is enforced by this set.
    #[must_use]
    pub fn contains(&self, rule: RuleId) -> bool {
        self.enabled.contains(&rule)
    }
}

/// Crates whose outputs must be bit-identical at any worker count and across
/// runs: D2 bans hash-ordered collections here outright.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "elsa-attention",
    "elsa-core",
    "elsa-fault",
    "elsa-linalg",
    "elsa-parallel",
    "elsa-runtime",
    "elsa-serve",
    "elsa-sim",
    "elsa-sparse",
    "elsa-workloads",
];

/// Crates allowed to touch wall clocks and environment seeds: the bench
/// binaries time real executions, and the testkit owns seed plumbing.
pub const ENTROPY_EXEMPT_CRATES: &[&str] = &["elsa-bench", "elsa-testkit"];

/// Serving-path crates where P1 bans panicking constructs in non-test code.
pub const PANIC_POLICY_CRATES: &[&str] = &["elsa-runtime", "elsa-serve"];

/// Identifiers that name a wall-clock or entropy source.
const ENTROPY_IDENTS: &[&str] =
    &["Instant", "SystemTime", "UNIX_EPOCH", "thread_rng", "from_entropy", "OsRng", "getrandom"];

/// Environment variables whose values act as entropy/seed inputs.
const ENTROPY_ENV_VARS: &[&str] = &["RANDOM", "ELSA_TESTKIT_SEED"];

/// Method names that panic on the error/none path.
const PANIC_METHODS: &[&str] = &["unwrap", "unwrap_err", "expect", "expect_err"];

/// Macros that panic unconditionally when reached.
const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented"];

/// Runs every enabled source rule over one file.
///
/// `crate_name` decides rule applicability (see the scoping consts),
/// `rel_path` is used verbatim in findings. Returns the findings (waived
/// ones carry their reason) and every waiver comment found in the file.
#[must_use]
pub fn check_source(
    crate_name: &str,
    rel_path: &str,
    src: &[u8],
    enabled: &RuleSet,
) -> (Vec<Finding>, Vec<Waiver>) {
    let tokens = lexer::lex(src);
    let code: Vec<&Token> = tokens
        .iter()
        .filter(|t| !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .collect();

    let mut findings = Vec::new();
    let mut waivers = Vec::new();
    for t in &tokens {
        if !matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment) {
            continue;
        }
        let text = t.text(src);
        // Waivers live in plain comments only: doc comments describe APIs
        // (and may legitimately *quote* the waiver syntax, as the waiver
        // module's own docs do), so they never register as directives.
        let is_doc = ["///", "//!", "/**", "/*!"].iter().any(|p| text.starts_with(p));
        if is_doc || !text.contains(waiver::MARKER) {
            continue;
        }
        match waiver::parse_directive(&text) {
            Ok((rule, reason)) => waivers.push(Waiver {
                file: rel_path.to_owned(),
                line: t.line,
                rule,
                reason,
                used: false,
            }),
            Err(msg) => findings.push(Finding {
                file: rel_path.to_owned(),
                line: t.line,
                rule: RuleId::WaiverSyntax,
                message: format!("malformed waiver: {msg}"),
                waived: None,
            }),
        }
    }

    let test_regions = test_regions(&code, src);
    let in_test = |line: u32| test_regions.iter().any(|&(lo, hi)| (lo..=hi).contains(&line));
    let mut push = |line: u32, rule: RuleId, message: String| {
        findings.push(Finding { file: rel_path.to_owned(), line, rule, message, waived: None });
    };

    let deterministic = DETERMINISTIC_CRATES.contains(&crate_name);
    let entropy_exempt = ENTROPY_EXEMPT_CRATES.contains(&crate_name);
    let panic_scoped = PANIC_POLICY_CRATES.contains(&crate_name);

    // A line is SAFETY-documented if a comment containing "SAFETY:" sits on
    // it or up to three lines above (U1).
    let safety_lines: Vec<u32> = tokens
        .iter()
        .filter(|t| matches!(t.kind, TokenKind::LineComment | TokenKind::BlockComment))
        .filter(|t| t.text(src).contains("SAFETY:"))
        .map(|t| t.line)
        .collect();
    let has_safety = |line: u32| {
        safety_lines.iter().any(|&l| l <= line && line.saturating_sub(l) <= 3)
    };

    for (k, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let ident = t.text(src);
        let at = |off: usize| code.get(k + off).copied();
        let punct_at = |off: usize, b: u8| at(off).is_some_and(|t| t.kind == TokenKind::Punct(b));

        // `env :: var ( "NAME"` — the shared shape behind D1's seed-env rule
        // and D3. The `env` prefix keeps unrelated `.var(...)` methods out.
        let env_read: Option<String> = if ident == "env"
            && punct_at(1, b':')
            && punct_at(2, b':')
            && at(3).is_some_and(|t| t.kind == TokenKind::Ident && t.text(src) == "var")
            && punct_at(4, b'(')
        {
            at(5).and_then(|t| t.str_content(src))
        } else {
            None
        };

        if enabled.contains(RuleId::Nondeterminism) && !entropy_exempt {
            if ENTROPY_IDENTS.contains(&ident.as_str()) {
                push(
                    t.line,
                    RuleId::Nondeterminism,
                    format!("wall-clock/entropy source `{ident}` outside bench/testkit"),
                );
            }
            if let Some(name) = env_read.as_deref() {
                if ENTROPY_ENV_VARS.contains(&name) {
                    push(
                        t.line,
                        RuleId::Nondeterminism,
                        format!("entropy-bearing environment read `env::var(\"{name}\")`"),
                    );
                }
            }
        }

        if enabled.contains(RuleId::HashCollections)
            && deterministic
            && (ident == "HashMap" || ident == "HashSet")
        {
            push(
                t.line,
                RuleId::HashCollections,
                format!(
                    "`{ident}` in deterministic crate `{crate_name}`: iteration order is \
                     unspecified; use `BTreeMap`/`BTreeSet` or sorted access"
                ),
            );
        }

        if enabled.contains(RuleId::ThreadsEnv)
            && crate_name != "elsa-parallel"
            && env_read.as_deref() == Some("ELSA_THREADS")
        {
            push(
                t.line,
                RuleId::ThreadsEnv,
                "`ELSA_THREADS` may only be read inside elsa-parallel (single source \
                 of worker-count truth)"
                    .to_owned(),
            );
        }

        if enabled.contains(RuleId::PanicPolicy) && panic_scoped && !in_test(t.line) {
            let prev_is_dot = k > 0 && code[k - 1].kind == TokenKind::Punct(b'.');
            if prev_is_dot && PANIC_METHODS.contains(&ident.as_str()) {
                push(
                    t.line,
                    RuleId::PanicPolicy,
                    format!("`.{ident}(...)` in serving-path crate `{crate_name}`"),
                );
            }
            if punct_at(1, b'!') && PANIC_MACROS.contains(&ident.as_str()) {
                push(
                    t.line,
                    RuleId::PanicPolicy,
                    format!("`{ident}!` in serving-path crate `{crate_name}`"),
                );
            }
        }

        if enabled.contains(RuleId::UnsafeSafety) && ident == "unsafe" && !has_safety(t.line) {
            push(
                t.line,
                RuleId::UnsafeSafety,
                "`unsafe` without an adjacent `// SAFETY:` comment".to_owned(),
            );
        }
    }

    apply_waivers(&mut findings, &mut waivers);
    (findings, waivers)
}

/// Marks findings covered by a waiver (same rule, same line or the line
/// below the waiver) and flags those waivers as used. W0 findings are never
/// waivable.
fn apply_waivers(findings: &mut [Finding], waivers: &mut [Waiver]) {
    for finding in findings.iter_mut() {
        if finding.rule == RuleId::WaiverSyntax {
            continue;
        }
        for waiver in waivers.iter_mut() {
            if waiver.rule == finding.rule
                && (waiver.line == finding.line || waiver.line + 1 == finding.line)
            {
                finding.waived = Some(waiver.reason.clone());
                waiver.used = true;
                break;
            }
        }
    }
}

/// Line ranges (inclusive) of `#[cfg(test)]` / `#[test]`-annotated items.
///
/// The scan recognizes the attribute token shapes `# [ test ]` and
/// `# [ cfg ( test ) ]`, skips any further attributes, and extends the
/// region to the matching close brace of the item body (or its terminating
/// semicolon). `cfg(not(test))` and feature-gated attributes are left alone.
fn test_regions(code: &[&Token], src: &[u8]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut k = 0;
    while k < code.len() {
        if code[k].kind != TokenKind::Punct(b'#')
            || code.get(k + 1).is_none_or(|t| t.kind != TokenKind::Punct(b'['))
        {
            k += 1;
            continue;
        }
        let attr_start_line = code[k].line;
        let close = match matching_bracket(code, k + 1) {
            Some(c) => c,
            None => break,
        };
        let inner: Vec<String> = code[k + 2..close]
            .iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text(src))
            .collect();
        let is_test = inner.as_slice() == ["test"]
            || (inner.first().is_some_and(|i| i == "cfg")
                && inner.iter().any(|i| i == "test")
                && !inner.iter().any(|i| i == "not"));
        if !is_test {
            k = close + 1;
            continue;
        }
        // Skip any further attributes on the same item.
        let mut j = close + 1;
        while code.get(j).is_some_and(|t| t.kind == TokenKind::Punct(b'#'))
            && code.get(j + 1).is_some_and(|t| t.kind == TokenKind::Punct(b'['))
        {
            match matching_bracket(code, j + 1) {
                Some(c) => j = c + 1,
                None => return regions,
            }
        }
        // The item body: everything to the matching `}` of its first brace,
        // or to a `;` for a braceless item (`#[cfg(test)] mod tests;`).
        let mut depth = 0usize;
        let mut end_line = code.last().map_or(attr_start_line, |t| t.line);
        while let Some(t) = code.get(j) {
            match t.kind {
                TokenKind::Punct(b'{') => depth += 1,
                TokenKind::Punct(b'}') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        end_line = t.line;
                        break;
                    }
                }
                TokenKind::Punct(b';') if depth == 0 => {
                    end_line = t.line;
                    break;
                }
                _ => {}
            }
            j += 1;
        }
        regions.push((attr_start_line, end_line));
        k = j + 1;
    }
    regions
}

/// Index of the `]` matching the `[` at `open`, tracking nesting.
fn matching_bracket(code: &[&Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (off, t) in code[open..].iter().enumerate() {
        match t.kind {
            TokenKind::Punct(b'[') => depth += 1,
            TokenKind::Punct(b']') => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + off);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(crate_name: &str, src: &str) -> (Vec<Finding>, Vec<Waiver>) {
        check_source(crate_name, "test.rs", src.as_bytes(), &RuleSet::all())
    }

    fn unwaived(crate_name: &str, src: &str) -> Vec<Finding> {
        run(crate_name, src).0.into_iter().filter(|f| f.waived.is_none()).collect()
    }

    // ---- D1 ---------------------------------------------------------------

    #[test]
    fn d1_flags_wall_clock_and_entropy() {
        let hits = unwaived("elsa-core", "let t = std::time::Instant::now();\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RuleId::Nondeterminism);
        assert_eq!(hits[0].line, 1);
        assert_eq!(unwaived("elsa-serve", "let t = SystemTime::now();").len(), 1);
        assert_eq!(unwaived("elsa-core", "let mut r = thread_rng();").len(), 1);
    }

    #[test]
    fn d1_flags_entropy_env_reads() {
        let hits =
            unwaived("elsa-fault", "let s = std::env::var(\"ELSA_TESTKIT_SEED\").ok();\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RuleId::Nondeterminism);
        assert_eq!(unwaived("elsa-core", "let s = std::env::var(\"RANDOM\");").len(), 1);
        // Non-entropy env vars are not D1's business.
        assert!(unwaived("elsa-core", "let s = std::env::var(\"HOME\");").is_empty());
    }

    #[test]
    fn d1_allowlists_bench_and_testkit() {
        assert!(unwaived("elsa-bench", "let t = Instant::now();").is_empty());
        assert!(unwaived("elsa-testkit", "std::env::var(\"ELSA_TESTKIT_SEED\")").is_empty());
    }

    #[test]
    fn d1_immune_to_strings_and_comments() {
        assert!(unwaived("elsa-core", "let s = \"Instant::now()\"; // Instant::now()").is_empty());
        assert!(unwaived("elsa-core", "/* SystemTime */ let x = 1;").is_empty());
        assert!(unwaived("elsa-core", "let s = r#\"thread_rng()\"#;").is_empty());
    }

    #[test]
    fn d1_waived_hit_is_reported_as_waived() {
        let src = "// elsa-lint: allow(nondeterminism) reason=\"replay hook\"\n\
                   let s = std::env::var(\"ELSA_TESTKIT_SEED\");\n";
        let (findings, waivers) = run("elsa-fault", src);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].waived.as_deref(), Some("replay hook"));
        assert!(waivers[0].used);
    }

    // ---- D2 ---------------------------------------------------------------

    #[test]
    fn d2_flags_hash_collections_in_deterministic_crates() {
        let hits = unwaived("elsa-sparse", "use std::collections::HashMap;\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RuleId::HashCollections);
        assert_eq!(unwaived("elsa-core", "let s: HashSet<u32> = HashSet::new();").len(), 2);
    }

    #[test]
    fn d2_ignores_unscoped_crates_and_strings() {
        assert!(unwaived("elsa-bench", "use std::collections::HashSet;").is_empty());
        assert!(unwaived("elsa-core", "let s = \"HashMap\"; // HashMap").is_empty());
        assert!(unwaived("elsa-core", "use std::collections::BTreeMap;").is_empty());
    }

    // ---- D3 ---------------------------------------------------------------

    #[test]
    fn d3_confines_elsa_threads_to_parallel() {
        let hits = unwaived("elsa-core", "match std::env::var(\"ELSA_THREADS\") {}\n");
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RuleId::ThreadsEnv);
        assert!(unwaived("elsa-parallel", "match std::env::var(\"ELSA_THREADS\") {}").is_empty());
        // Mentioning the name in a string or docs is fine — only reads count.
        assert!(unwaived("elsa-core", "let s = \"ELSA_THREADS\";").is_empty());
    }

    // ---- P1 ---------------------------------------------------------------

    #[test]
    fn p1_flags_panicking_constructs_in_serving_crates() {
        assert_eq!(unwaived("elsa-runtime", "let v = x.unwrap();").len(), 1);
        assert_eq!(unwaived("elsa-serve", "let v = x.expect(\"m\");").len(), 1);
        assert_eq!(unwaived("elsa-runtime", "panic!(\"boom\");").len(), 1);
        assert_eq!(unwaived("elsa-serve", "todo!()").len(), 1);
        assert_eq!(unwaived("elsa-runtime", "unimplemented!()").len(), 1);
    }

    #[test]
    fn p1_ignores_non_panicking_lookalikes() {
        assert!(unwaived("elsa-runtime", "let v = x.unwrap_or(0);").is_empty());
        assert!(unwaived("elsa-runtime", "let v = x.unwrap_or_else(|| 0);").is_empty());
        assert!(unwaived("elsa-runtime", "let v = x.unwrap_or_default();").is_empty());
        assert!(unwaived("elsa-serve", "std::panic::catch_unwind(f)").is_empty());
        // `expect` not as a method call (no preceding dot) is not flagged.
        assert!(unwaived("elsa-runtime", "fn expect(x: u32) {}").is_empty());
    }

    #[test]
    fn p1_is_scoped_to_serving_crates() {
        assert!(unwaived("elsa-core", "let v = x.unwrap();").is_empty());
        assert!(unwaived("elsa-linalg", "panic!(\"fine here\");").is_empty());
    }

    #[test]
    fn p1_skips_test_modules_and_test_fns() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper() { x.unwrap(); }\n}\n";
        assert!(unwaived("elsa-runtime", src).is_empty());
        let src = "#[test]\nfn t() { x.unwrap(); }\n";
        assert!(unwaived("elsa-runtime", src).is_empty());
        // …but code before/after the region is still scanned.
        let src = "fn live() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }\n";
        let hits = unwaived("elsa-runtime", src);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn p1_does_not_skip_cfg_not_test() {
        let src = "#[cfg(not(test))]\nfn live() { x.unwrap(); }\n";
        assert_eq!(unwaived("elsa-runtime", src).len(), 1);
    }

    #[test]
    fn p1_waiver_on_same_line_and_line_above() {
        let same = "let v = x.unwrap(); // elsa-lint: allow(panic-policy) reason=\"invariant\"";
        let (findings, _) = run("elsa-runtime", same);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].waived.is_some());
        let above = "// elsa-lint: allow(panic-policy) reason=\"invariant\"\nlet v = x.unwrap();";
        let (findings, _) = run("elsa-runtime", above);
        assert!(findings[0].waived.is_some());
        // Two lines away: not covered.
        let far = "// elsa-lint: allow(panic-policy) reason=\"invariant\"\n\nlet v = x.unwrap();";
        let (findings, _) = run("elsa-runtime", far);
        assert!(findings.iter().any(|f| f.waived.is_none()));
    }

    #[test]
    fn p1_immune_to_strings_and_comments() {
        assert!(unwaived("elsa-runtime", "let s = \"x.unwrap()\"; // .unwrap()").is_empty());
        assert!(unwaived("elsa-serve", "let s = r#\"panic!(\"x\")\"#;").is_empty());
    }

    // ---- U1 ---------------------------------------------------------------

    #[test]
    fn u1_requires_safety_comment() {
        let bare = "fn f() { unsafe { core::hint::unreachable_unchecked() } }";
        let hits = unwaived("elsa-linalg", bare);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].rule, RuleId::UnsafeSafety);
        let documented = "// SAFETY: n is checked above\nfn f() { unsafe { g() } }";
        assert!(unwaived("elsa-linalg", documented).is_empty());
    }

    #[test]
    fn u1_safety_comment_must_be_adjacent() {
        let far = "// SAFETY: stale note\n\n\n\n\nfn f() { unsafe { g() } }";
        assert_eq!(unwaived("elsa-linalg", far).len(), 1);
    }

    #[test]
    fn u1_immune_to_strings_and_comments() {
        assert!(unwaived("elsa-core", "let s = \"unsafe\"; // unsafe").is_empty());
    }

    // ---- W0 ---------------------------------------------------------------

    #[test]
    fn w0_flags_malformed_waivers() {
        let (findings, waivers) = run("elsa-core", "// elsa-lint: allow(P1)\nlet x = 1;");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::WaiverSyntax);
        assert!(findings[0].waived.is_none());
        assert!(waivers.is_empty());
    }

    #[test]
    fn doc_comments_never_register_as_waivers() {
        // Quoting the syntax in docs must neither create a waiver nor a W0.
        let doc = "//! // elsa-lint: allow(panic-policy) reason=\"example\"\n\
                   /// elsa-lint: allow(bogus-rule)\n\
                   let v = x.unwrap();";
        let (findings, waivers) = run("elsa-runtime", doc);
        assert!(waivers.is_empty());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, RuleId::PanicPolicy);
        assert!(findings[0].waived.is_none());
    }

    #[test]
    fn w0_flags_empty_reason_and_unknown_rule() {
        let empty = "// elsa-lint: allow(panic-policy) reason=\"\"";
        assert_eq!(unwaived("elsa-core", empty)[0].rule, RuleId::WaiverSyntax);
        let unknown = "// elsa-lint: allow(nonsense) reason=\"x\"";
        assert_eq!(unwaived("elsa-core", unknown)[0].rule, RuleId::WaiverSyntax);
    }

    // ---- rule set / ids ---------------------------------------------------

    #[test]
    fn rule_ids_round_trip() {
        for rule in RuleId::ALL {
            assert_eq!(RuleId::parse(rule.code()), Some(rule));
            assert_eq!(RuleId::parse(rule.name()), Some(rule));
        }
        assert_eq!(RuleId::parse("bogus"), None);
    }

    #[test]
    fn rule_filtering_disables_other_rules() {
        let only_p1 = RuleSet::only(&[RuleId::PanicPolicy]);
        let (findings, _) = check_source(
            "elsa-runtime",
            "t.rs",
            b"let t = Instant::now(); let v = x.unwrap();",
            &only_p1,
        );
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].rule, RuleId::PanicPolicy);
    }

    #[test]
    fn findings_render_with_file_line_and_rule() {
        let hits = unwaived("elsa-runtime", "let v = x.unwrap();");
        let rendered = hits[0].render();
        assert!(rendered.starts_with("test.rs:1:"), "{rendered}");
        assert!(rendered.contains("[P1 panic-policy]"), "{rendered}");
    }
}
