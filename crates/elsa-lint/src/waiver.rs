//! Waiver comments: the only sanctioned way to silence a lint finding.
//!
//! Syntax, inside any line or block comment:
//!
//! ```text
//! // elsa-lint: allow(panic-policy) reason="documented # Panics wrapper; try_new is the non-panicking form"
//! ```
//!
//! The rule may be named by its id (`panic-policy`) or its code (`P1`).
//! The `reason` is **mandatory and must be non-empty** — an auditable
//! justification is the price of every exemption. A waiver covers findings
//! of its rule on the same line and on the line directly below it (so it can
//! sit either at the end of the offending line or on its own line above).
//!
//! A comment that contains the `elsa-lint:` marker but does not parse is
//! itself reported as a [`RuleId::WaiverSyntax`] finding, which cannot be
//! waived. Only plain `//` and `/* */` comments count: doc comments
//! (`///`, `//!`, `/**`, `/*!`) are documentation and never register as
//! directives, so syntax examples like the ones above stay inert.

use crate::rules::RuleId;

/// One parsed waiver.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Workspace-relative path of the file the waiver sits in.
    pub file: String,
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// The rule being waived.
    pub rule: RuleId,
    /// The mandatory justification.
    pub reason: String,
    /// Whether the waiver suppressed at least one finding in this run.
    pub used: bool,
}

/// The marker that makes a comment a waiver candidate.
pub const MARKER: &str = "elsa-lint:";

/// Parses the directive out of one comment's text, given that it contains
/// [`MARKER`]. Returns the rule and reason, or a syntax-error message.
///
/// # Errors
///
/// Returns a human-readable description of the first syntax problem:
/// missing/unknown rule, missing `reason=`, unterminated or empty reason.
pub fn parse_directive(comment: &str) -> Result<(RuleId, String), String> {
    let after = match comment.split_once(MARKER) {
        Some((_, rest)) => rest.trim_start(),
        None => return Err("internal: comment lacks the elsa-lint: marker".into()),
    };
    let Some(rest) = after.strip_prefix("allow(") else {
        return Err(format!("expected `allow(<rule>)` after `{MARKER}`"));
    };
    let Some((rule_name, rest)) = rest.split_once(')') else {
        return Err("unterminated `allow(` — missing `)`".into());
    };
    let Some(rule) = RuleId::parse(rule_name.trim()) else {
        return Err(format!("unknown rule `{}` in allow(...)", rule_name.trim()));
    };
    let rest = rest.trim_start();
    let Some(rest) = rest.strip_prefix("reason=") else {
        return Err("missing mandatory `reason=\"...\"`".into());
    };
    let Some(rest) = rest.strip_prefix('"') else {
        return Err("reason must be a double-quoted string".into());
    };
    let Some((reason, _)) = rest.split_once('"') else {
        return Err("unterminated reason string".into());
    };
    let reason = reason.trim();
    if reason.is_empty() {
        return Err("reason must be non-empty: justify the exemption".into());
    }
    Ok((rule, reason.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_by_rule_id_and_code() {
        let (rule, reason) =
            parse_directive("// elsa-lint: allow(panic-policy) reason=\"wrapper\"").unwrap();
        assert_eq!(rule, RuleId::PanicPolicy);
        assert_eq!(reason, "wrapper");
        let (rule, _) = parse_directive("// elsa-lint: allow(D1) reason=\"replay hook\"").unwrap();
        assert_eq!(rule, RuleId::Nondeterminism);
    }

    #[test]
    fn rejects_missing_or_empty_reason() {
        assert!(parse_directive("// elsa-lint: allow(P1)").is_err());
        assert!(parse_directive("// elsa-lint: allow(P1) reason=\"\"").is_err());
        assert!(parse_directive("// elsa-lint: allow(P1) reason=\"   \"").is_err());
        assert!(parse_directive("// elsa-lint: allow(P1) reason=unquoted").is_err());
    }

    #[test]
    fn rejects_unknown_rule() {
        let err = parse_directive("// elsa-lint: allow(no-such-rule) reason=\"x\"").unwrap_err();
        assert!(err.contains("no-such-rule"));
    }

    #[test]
    fn rejects_malformed_allow() {
        assert!(parse_directive("// elsa-lint: disallow(P1) reason=\"x\"").is_err());
        assert!(parse_directive("// elsa-lint: allow(P1 reason=\"x\"").is_err());
    }
}
