//! `elsa-lint` CLI.
//!
//! ```text
//! cargo run -p elsa-lint                       # all rules over the workspace
//! cargo run -p elsa-lint -- --rule offline-deps  # one rule (the dep guard)
//! cargo run -p elsa-lint -- --list-waivers       # audit every active waiver
//! cargo run -p elsa-lint -- --root /path/to/ws   # explicit workspace root
//! ```
//!
//! Exit status: `0` when every finding is waived (or none exist), `1` on any
//! unwaived finding, `2` on usage or I/O errors. `--list-waivers` always
//! exits `0`: it is an audit view, not a gate.

use std::path::PathBuf;
use std::process::ExitCode;

use elsa_lint::{check_workspace, find_workspace_root, RuleId, RuleSet};

struct Options {
    root: Option<PathBuf>,
    rules: Vec<RuleId>,
    list_waivers: bool,
}

fn usage() -> &'static str {
    "usage: elsa-lint [--root PATH] [--rule ID]... [--list-waivers]\n\
     rules: D1/nondeterminism D2/hash-collections D3/threads-env \
     P1/panic-policy O1/offline-deps U1/unsafe-safety"
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options { root: None, rules: Vec::new(), list_waivers: false };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => {
                let path = args.next().ok_or("--root requires a path")?;
                opts.root = Some(PathBuf::from(path));
            }
            "--rule" => {
                let id = args.next().ok_or("--rule requires a rule id")?;
                let rule =
                    RuleId::parse(&id).ok_or_else(|| format!("unknown rule `{id}`"))?;
                opts.rules.push(rule);
            }
            "--list-waivers" => opts.list_waivers = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(opts) => opts,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("elsa-lint: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let root = match opts.root.or_else(|| {
        std::env::current_dir().ok().and_then(|d| find_workspace_root(&d))
    }) {
        Some(root) => root,
        None => {
            eprintln!("elsa-lint: no workspace root found (run from the repo or pass --root)");
            return ExitCode::from(2);
        }
    };
    let rules = if opts.rules.is_empty() { RuleSet::all() } else { RuleSet::only(&opts.rules) };
    let report = match check_workspace(&root, &rules) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("elsa-lint: I/O error while scanning {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if opts.list_waivers {
        if report.waivers.is_empty() {
            println!("no active waivers");
        }
        for w in &report.waivers {
            let status = if w.used || !rules.contains(w.rule) { "" } else { " [UNUSED]" };
            println!(
                "{}:{}: allow({} {}) reason=\"{}\"{status}",
                w.file,
                w.line,
                w.rule.code(),
                w.rule.name(),
                w.reason
            );
        }
        return ExitCode::SUCCESS;
    }

    for finding in report.unwaived() {
        println!("{}", finding.render());
    }
    // A waiver can only be judged stale when its rule actually ran: a
    // `--rule offline-deps` pass must not flag untouched panic-policy waivers.
    let stale =
        report.waivers.iter().filter(|w| !w.used && rules.contains(w.rule)).count();
    if stale > 0 {
        eprintln!(
            "note: {stale} waiver(s) no longer match any finding \
             (see --list-waivers); consider removing them"
        );
    }
    let unwaived = report.unwaived().len();
    println!(
        "elsa-lint: {} file(s), {} manifest(s) scanned; {} finding(s) \
         ({} waived, {} gating)",
        report.files_scanned,
        report.manifests_scanned,
        report.findings.len(),
        report.waived().len(),
        unwaived
    );
    if unwaived > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
