//! In-tree static analysis for the ELSA reproduction workspace.
//!
//! The repo promises three contracts that the test batteries enforce only
//! dynamically: **determinism** (bit-identical results at any
//! `ELSA_THREADS`), a fully **offline** zero-external-dependency build, and
//! **panic-free serving paths**. `elsa-lint` turns each promise into a
//! machine-checked source-level rule, so a violation is caught the moment it
//! is written rather than when a seed happens to hit it. See
//! [`rules::RuleId`] for the rule table and [`waiver`] for the per-site
//! exemption syntax.
//!
//! Run it as a binary (`cargo run -p elsa-lint`), as a single-rule gate
//! (`cargo run -p elsa-lint -- --rule offline-deps` replaces the old
//! python dependency guard in `scripts/verify.sh`), or through the
//! workspace integration test (`tests/lint_clean.rs`), which keeps every
//! `cargo test` run honest.

pub mod lexer;
pub mod manifest;
pub mod rules;
pub mod waiver;

pub use rules::{Finding, RuleId, RuleSet};
pub use waiver::Waiver;

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Result of linting a whole workspace.
#[derive(Debug, Default)]
pub struct Report {
    /// Every finding, waived or not, sorted by file then line.
    pub findings: Vec<Finding>,
    /// Every waiver comment encountered, sorted by file then line.
    pub waivers: Vec<Waiver>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Number of `Cargo.toml` manifests scanned.
    pub manifests_scanned: usize,
}

impl Report {
    /// Findings not covered by a waiver — the ones that gate.
    #[must_use]
    pub fn unwaived(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.waived.is_none()).collect()
    }

    /// Findings covered by a waiver.
    #[must_use]
    pub fn waived(&self) -> Vec<&Finding> {
        self.findings.iter().filter(|f| f.waived.is_some()).collect()
    }
}

/// Ascends from `start` to the nearest directory whose `Cargo.toml` declares
/// `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.lines().any(|l| l.trim() == "[workspace]") {
                return Some(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    None
}

/// The crate a workspace-relative path belongs to: `crates/<name>/…` maps to
/// `<name>`, everything else (root `src/`, `tests/`, `examples/`) to the
/// facade crate `elsa`.
#[must_use]
pub fn crate_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("elsa")
}

/// Lints every `.rs` file and `Cargo.toml` under `root`, skipping `target`,
/// hidden directories, and non-source trees.
///
/// # Errors
///
/// Returns the first I/O error encountered while walking or reading files.
pub fn check_workspace(root: &Path, enabled: &RuleSet) -> io::Result<Report> {
    let mut sources = Vec::new();
    let mut manifests = Vec::new();
    collect(root, root, &mut sources, &mut manifests)?;
    sources.sort();
    manifests.sort();

    let mut report = Report::default();
    for rel in &sources {
        let src = fs::read(root.join(rel))?;
        let (findings, waivers) = rules::check_source(crate_of(rel), rel, &src, enabled);
        report.findings.extend(findings);
        report.waivers.extend(waivers);
        report.files_scanned += 1;
    }
    if enabled.contains(RuleId::OfflineDeps) {
        for rel in &manifests {
            let text = fs::read_to_string(root.join(rel))?;
            report.findings.extend(manifest::check_manifest(rel, &text));
            report.manifests_scanned += 1;
        }
        for pinned in manifest::PINNED_MANIFESTS {
            if !manifests.iter().any(|m| m == pinned) {
                report.findings.push(Finding {
                    file: (*pinned).to_owned(),
                    line: 0,
                    rule: RuleId::OfflineDeps,
                    message: "pinned manifest missing from the scan: a layout change must \
                              update elsa_lint::manifest::PINNED_MANIFESTS deliberately"
                        .to_owned(),
                    waived: None,
                });
            }
        }
    }
    report.findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    report.waivers.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    Ok(report)
}

/// Recursive walk collecting workspace-relative `.rs` and `Cargo.toml`
/// paths. `target/`, hidden entries, and the pre-generated `results/` tree
/// are skipped.
fn collect(
    root: &Path,
    dir: &Path,
    sources: &mut Vec<String>,
    manifests: &mut Vec<String>,
) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name().to_string_lossy().into_owned();
        if path.is_dir() {
            if name == "target" || name == "results" || name.starts_with('.') {
                continue;
            }
            collect(root, &path, sources, manifests)?;
            continue;
        }
        let rel = match path.strip_prefix(root) {
            Ok(r) => r.to_string_lossy().replace('\\', "/"),
            Err(_) => continue,
        };
        if name == "Cargo.toml" {
            manifests.push(rel);
        } else if name.ends_with(".rs") {
            sources.push(rel);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_attribution() {
        assert_eq!(crate_of("crates/elsa-core/src/lib.rs"), "elsa-core");
        assert_eq!(crate_of("crates/elsa-serve/tests/x.rs"), "elsa-serve");
        assert_eq!(crate_of("src/lib.rs"), "elsa");
        assert_eq!(crate_of("tests/end_to_end.rs"), "elsa");
        assert_eq!(crate_of("examples/demo.rs"), "elsa");
    }

    #[test]
    fn workspace_root_is_found_from_nested_dirs() {
        let here = Path::new(env!("CARGO_MANIFEST_DIR"));
        let root = find_workspace_root(here).expect("workspace root above crates/elsa-lint");
        assert!(root.join("crates/elsa-lint/Cargo.toml").exists());
    }

    #[test]
    fn planted_violations_are_caught_end_to_end() {
        // Every waivable rule class, planted in a scratch source string under
        // the crate scope it applies to, must produce a finding — the
        // acceptance criterion for the pass as a whole. O1 is covered by
        // manifest::tests; this exercises the source rules through the same
        // check_source entry the workspace walk uses.
        let cases: &[(&str, &str, RuleId)] = &[
            ("elsa-core", "let t = Instant::now();", RuleId::Nondeterminism),
            ("elsa-sim", "use std::collections::HashMap;", RuleId::HashCollections),
            ("elsa-core", "std::env::var(\"ELSA_THREADS\")", RuleId::ThreadsEnv),
            ("elsa-serve", "let v = x.unwrap();", RuleId::PanicPolicy),
            ("elsa-attention", "unsafe { g() }", RuleId::UnsafeSafety),
        ];
        for (crate_name, src, rule) in cases {
            let (findings, _) =
                rules::check_source(crate_name, "scratch.rs", src.as_bytes(), &RuleSet::all());
            assert!(
                findings.iter().any(|f| f.rule == *rule && f.waived.is_none()),
                "planting {rule:?} in {crate_name} produced {findings:?}"
            );
        }
    }
}
