//! The end-to-end approximate self-attention operator (§III-D, Fig. 4).
//!
//! [`ElsaAttention`] owns everything a deployed (sub-)layer needs: the SRP
//! hasher (shared by keys and queries), the similarity lookup table with its
//! angle correction, and the learned threshold `t`. Its [`ElsaAttention::forward`]
//! walks the exact algorithm of Fig. 4:
//!
//! * **preprocessing** — hash every key, compute every key norm and
//!   `t·‖K_max‖`;
//! * **per query** — hash the query, compute approximate similarities against
//!   all keys, select candidates by threshold, run exact attention over the
//!   candidates only.

use elsa_attention::exact::{self, AttentionInputs};
use elsa_linalg::{ops, Matrix, SeededRng};

use crate::calibration::{calibrate_theta_bias, CalibrationConfig};
use crate::hashing::{BinaryHash, SrpHasher};
use crate::similarity::SimilarityLut;
use crate::threshold::ThresholdLearner;

/// Immutable algorithm parameters shared by every invocation of one
/// (sub-)layer: the hasher and the angle-corrected similarity table.
#[derive(Debug, Clone)]
pub struct ElsaParams {
    hasher: SrpHasher,
    lut: SimilarityLut,
    scale: f32,
}

impl ElsaParams {
    /// Builds parameters from an explicit hasher and bias.
    ///
    /// # Panics
    ///
    /// Panics if `scale <= 0`.
    #[must_use]
    pub fn new(hasher: SrpHasher, theta_bias: f64, scale: f32) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        let lut = SimilarityLut::new(hasher.k(), theta_bias);
        Self { hasher, lut, scale }
    }

    /// Convenience constructor for a `d`-dimensional head with `k` hash bits:
    /// picks the hardware's three-way Kronecker projection when possible
    /// (`k = d`, `d` a perfect cube), a dense orthogonal projection
    /// otherwise, and the paper's `θ_bias = 0.127` for `d = k = 64` (a quick
    /// calibration run for other shapes).
    #[must_use]
    pub fn for_dims(d: usize, k: usize, rng: &mut SeededRng) -> Self {
        let cube_root = (d as f64).cbrt().round() as usize;
        let hasher = if k == d && cube_root.pow(3) == d {
            SrpHasher::kronecker_three_way(d, rng)
        } else {
            SrpHasher::dense(k, d, rng)
        };
        let theta_bias = if d == 64 && k == 64 {
            crate::THETA_BIAS_D64_K64
        } else {
            let cfg = CalibrationConfig { d, k, pairs: 500, hasher_draws: 2, percentile: 80.0 };
            calibrate_theta_bias(&cfg, rng)
        };
        Self::new(hasher, theta_bias, 1.0)
    }

    /// The hasher.
    #[must_use]
    pub fn hasher(&self) -> &SrpHasher {
        &self.hasher
    }

    /// The similarity lookup table.
    #[must_use]
    pub fn lut(&self) -> &SimilarityLut {
        &self.lut
    }

    /// The score scale used when computing exact attention over candidates.
    #[must_use]
    pub const fn scale(&self) -> f32 {
        self.scale
    }
}

/// The per-invocation preprocessing product (§III-D *Preprocessing*; what the
/// hardware stores in the key hash / key norm SRAMs).
#[derive(Debug, Clone)]
pub struct PreprocessedKeys {
    hashes: Vec<BinaryHash>,
    norms: Vec<f64>,
    max_norm: f64,
}

impl PreprocessedKeys {
    /// Hashes all keys and computes all key norms.
    #[must_use]
    pub fn compute(params: &ElsaParams, keys: &Matrix) -> Self {
        let hashes = params.hasher.hash_rows(keys);
        let norms: Vec<f64> = (0..keys.rows()).map(|r| ops::norm(keys.row(r))).collect();
        let max_norm = norms.iter().copied().fold(0.0f64, f64::max);
        Self { hashes, norms, max_norm }
    }

    /// The empty preprocessing state an incremental decode session starts
    /// from. Appending every row of a key matrix in order reproduces
    /// [`PreprocessedKeys::compute`] **bit-identically**: per-row hashing and
    /// norms use the same serial kernels, and the running `max` here is the
    /// same left fold over `f64::max` that `compute` performs
    /// (`tests/session_equivalence.rs` enforces this at 0 ulp).
    #[must_use]
    pub const fn empty() -> Self {
        Self { hashes: Vec::new(), norms: Vec::new(), max_norm: 0.0 }
    }

    /// Appends the preprocessing state for one key row: O(k) hash work and
    /// one norm, instead of the O(n·k) full recompute — the software mirror
    /// of the hardware writing one new entry into the key hash / key norm
    /// SRAMs during autoregressive decode.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not match the hasher's input dimension.
    pub fn append(&mut self, params: &ElsaParams, key: &[f32]) {
        let hash = params.hasher.hash(key);
        let norm = ops::norm(key);
        self.max_norm = self.max_norm.max(norm);
        self.hashes.push(hash);
        self.norms.push(norm);
    }

    /// Number of preprocessed keys.
    #[must_use]
    pub fn len(&self) -> usize {
        self.norms.len()
    }

    /// Whether no key has been preprocessed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.norms.is_empty()
    }

    /// Key hashes, in key order.
    #[must_use]
    pub fn hashes(&self) -> &[BinaryHash] {
        &self.hashes
    }

    /// Key norms, in key order.
    #[must_use]
    pub fn norms(&self) -> &[f64] {
        &self.norms
    }

    /// `‖K_max‖`, the largest key norm.
    #[must_use]
    pub const fn max_norm(&self) -> f64 {
        self.max_norm
    }
}

/// Selection statistics for one forward pass — the quantities Fig. 10's bars
/// (candidate fraction) and the performance model (average candidates per
/// query, which bounds accelerator throughput) are built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SelectionStats {
    /// Total query–key pairs inspected (`n_q · n`).
    pub total_pairs: usize,
    /// Pairs that survived candidate selection.
    pub selected_pairs: usize,
    /// Number of queries processed.
    pub num_queries: usize,
    /// Number of keys.
    pub num_keys: usize,
    /// Queries whose threshold selected nothing (arg-max fallback applied).
    pub fallback_queries: usize,
}

impl SelectionStats {
    /// Fraction of query–key pairs selected as candidates (the bar heights
    /// of Fig. 10).
    #[must_use]
    pub fn candidate_fraction(&self) -> f64 {
        if self.total_pairs == 0 {
            0.0
        } else {
            self.selected_pairs as f64 / self.total_pairs as f64
        }
    }

    /// Average selected candidates per query (`c` in §IV-D's pipeline
    /// analysis).
    #[must_use]
    pub fn avg_candidates_per_query(&self) -> f64 {
        if self.num_queries == 0 {
            0.0
        } else {
            self.selected_pairs as f64 / self.num_queries as f64
        }
    }

    /// Merges statistics from another pass (used when aggregating over heads
    /// / layers / batches).
    #[must_use]
    pub fn merged(&self, other: &SelectionStats) -> SelectionStats {
        SelectionStats {
            total_pairs: self.total_pairs + other.total_pairs,
            selected_pairs: self.selected_pairs + other.selected_pairs,
            num_queries: self.num_queries + other.num_queries,
            num_keys: self.num_keys.max(other.num_keys),
            fallback_queries: self.fallback_queries + other.fallback_queries,
        }
    }
}

/// A ready-to-run approximate attention operator for one (sub-)layer.
///
/// # Examples
///
/// See the crate-level example.
#[derive(Debug, Clone)]
pub struct ElsaAttention {
    params: ElsaParams,
    threshold: f64,
}

impl ElsaAttention {
    /// Builds the operator from an explicit learned threshold.
    #[must_use]
    pub fn with_threshold(params: ElsaParams, threshold: f64) -> Self {
        Self { params, threshold }
    }

    /// Learns the layer threshold from training invocations at approximation
    /// degree `p` (§III-E) and returns the deployed operator.
    #[must_use]
    pub fn learn(params: ElsaParams, training: &[AttentionInputs], p: f64) -> Self {
        let mut learner = ThresholdLearner::with_scale(p, params.scale);
        for inputs in training {
            learner.observe(inputs);
        }
        Self { params, threshold: learner.learned_threshold() }
    }

    /// The exact fallback the paper describes for `p = 0`: a threshold of
    /// `−∞` selects every key, making the operator bit-equivalent to exact
    /// attention (at the cost of `c = n`).
    #[must_use]
    pub fn exact_fallback(params: ElsaParams) -> Self {
        Self { params, threshold: f64::NEG_INFINITY }
    }

    /// The learned threshold `t`.
    #[must_use]
    pub const fn threshold(&self) -> f64 {
        self.threshold
    }

    /// The algorithm parameters.
    #[must_use]
    pub fn params(&self) -> &ElsaParams {
        &self.params
    }

    /// Selects candidate key indices for one (already hashed) query —
    /// the candidate selection module's function (§IV-C). Falls back to the
    /// single best-approximate-similarity key if the threshold filters out
    /// everything, so downstream softmax is always well defined.
    ///
    /// Returns `(candidates, used_fallback)`.
    #[must_use]
    pub fn select_candidates(
        &self,
        query_hash: &BinaryHash,
        pre: &PreprocessedKeys,
    ) -> (Vec<usize>, bool) {
        self.select_candidates_bounded(query_hash, pre, pre.len())
    }

    /// [`select_candidates`](Self::select_candidates) restricted to the
    /// first `limit` keys — the causal/bounded-prefix form the selection
    /// modules implement by simply stopping the scan earlier. The cutoff
    /// still uses `t·‖K_max‖` over the *whole* preprocessed context (the
    /// hardware stores one max-norm register, not one per prefix).
    ///
    /// Shared verbatim by the batch path, [`crate::session::ElsaSession`],
    /// and [`crate::session::StreamingSession`], so all three select
    /// bit-identically by construction.
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0` or `limit > pre.len()`.
    #[must_use]
    pub fn select_candidates_bounded(
        &self,
        query_hash: &BinaryHash,
        pre: &PreprocessedKeys,
        limit: usize,
    ) -> (Vec<usize>, bool) {
        assert!(limit > 0 && limit <= pre.len(), "limit out of range");
        let cutoff = self.threshold * pre.max_norm();
        let mut selected = Vec::new();
        let mut best: Option<(usize, f64)> = None;
        for (j, (hash, &norm)) in pre.hashes().iter().zip(pre.norms()).take(limit).enumerate() {
            let sim = self.params.lut.similarity(query_hash, hash, norm);
            if sim > cutoff {
                selected.push(j);
            }
            match best {
                Some((_, b)) if sim <= b => {}
                _ => best = Some((j, sim)),
            }
        }
        if selected.is_empty() {
            let j = best.expect("limit > 0 guarantees a best key").0;
            (vec![j], true)
        } else {
            (selected, false)
        }
    }

    /// Computes candidate lists for every query of an invocation.
    ///
    /// Queries are independent, so hashing + selection fans out across worker
    /// threads when the invocation is large enough; per-query results are
    /// collected in query order and the statistics are folded serially in
    /// that same order, so both outputs are bit-identical to the serial loop
    /// at any worker count.
    #[must_use]
    pub fn candidates(&self, inputs: &AttentionInputs) -> (Vec<Vec<usize>>, SelectionStats) {
        let pre = PreprocessedKeys::compute(&self.params, inputs.key());
        let mut stats = SelectionStats {
            total_pairs: inputs.num_queries() * inputs.num_keys(),
            num_queries: inputs.num_queries(),
            num_keys: inputs.num_keys(),
            ..SelectionStats::default()
        };
        // Per query: one hash (multiplication_count multiplies) plus one
        // LUT-backed similarity comparison per key.
        let per_query = self.params.hasher.multiplication_count() + inputs.num_keys();
        let work = inputs.num_queries().saturating_mul(per_query);
        let select_one = |i: usize| {
            let qh = self.params.hasher.hash(inputs.query().row(i));
            self.select_candidates(&qh, &pre)
        };
        let per_query_results: Vec<(Vec<usize>, bool)> = if elsa_parallel::beneficial(work) {
            elsa_parallel::par_map_indexed(inputs.num_queries(), select_one)
        } else {
            (0..inputs.num_queries()).map(select_one).collect()
        };
        let mut all = Vec::with_capacity(inputs.num_queries());
        for (cand, fallback) in per_query_results {
            stats.selected_pairs += cand.len();
            stats.fallback_queries += usize::from(fallback);
            all.push(cand);
        }
        (all, stats)
    }

    /// Full approximate forward pass: candidate selection followed by exact
    /// attention restricted to the candidates.
    #[must_use]
    pub fn forward(&self, inputs: &AttentionInputs) -> (Matrix, SelectionStats) {
        let (cands, stats) = self.candidates(inputs);
        let out = exact::attention_with_candidates(inputs, &cands, self.params.scale);
        (out, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_inputs(n: usize, d: usize, seed: u64) -> AttentionInputs {
        let mut rng = SeededRng::new(seed);
        let q = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let k = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let v = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        AttentionInputs::new(q, k, v)
    }

    /// Inputs where each query strongly attends to a few planted keys —
    /// the regime the approximation is designed for.
    fn peaked_inputs(n: usize, d: usize, relevant: usize, seed: u64) -> AttentionInputs {
        let mut rng = SeededRng::new(seed);
        let k = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let mut q = Matrix::zeros(n, d);
        for i in 0..n {
            // Query = weight-decayed sum of its relevant keys + small noise:
            // real attention rows have one dominant key and a short tail.
            let targets = rng.sample_indices(n, relevant);
            for (rank, &t) in targets.iter().enumerate() {
                let w = if rank == 0 { 2.0 } else { 0.6 };
                for c in 0..d {
                    q[(i, c)] += w * k[(t, c)];
                }
            }
            for c in 0..d {
                q[(i, c)] += 0.3 * rng.standard_normal() as f32;
            }
        }
        let v = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        AttentionInputs::new(q, k, v)
    }

    #[test]
    fn exact_fallback_matches_exact_attention() {
        let inputs = random_inputs(32, 64, 1);
        let mut rng = SeededRng::new(2);
        let elsa = ElsaAttention::exact_fallback(ElsaParams::for_dims(64, 64, &mut rng));
        let (out, stats) = elsa.forward(&inputs);
        let exact = exact::attention(&inputs);
        assert!(out.max_abs_diff(&exact) < 1e-4);
        assert_eq!(stats.selected_pairs, 32 * 32);
        assert!((stats.candidate_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn approximation_reduces_candidates_on_peaked_data() {
        let train = peaked_inputs(64, 64, 4, 10);
        let test = peaked_inputs(64, 64, 4, 11);
        let mut rng = SeededRng::new(3);
        let elsa = ElsaAttention::learn(ElsaParams::for_dims(64, 64, &mut rng), &[train], 1.0);
        let (_, stats) = elsa.forward(&test);
        assert!(
            stats.candidate_fraction() < 0.6,
            "candidate fraction {}",
            stats.candidate_fraction()
        );
        assert!(stats.selected_pairs >= 64, "every query keeps at least one key");
    }

    #[test]
    fn approximate_output_close_to_exact_on_peaked_data() {
        let train = peaked_inputs(64, 64, 4, 20);
        let test = peaked_inputs(64, 64, 4, 21);
        let mut rng = SeededRng::new(4);
        let elsa = ElsaAttention::learn(ElsaParams::for_dims(64, 64, &mut rng), &[train], 1.0);
        let (approx, _) = elsa.forward(&test);
        let exact = exact::attention(&test);
        let rel = exact.relative_frobenius_error(&approx);
        // The learned threshold sits exactly at the weakest "relevant" key,
        // so some marginal keys are lost — the paper's own accuracy-vs-p
        // trade-off (Fig. 10). What matters is that the output stays close.
        assert!(rel < 0.35, "relative output error {rel}");
    }

    #[test]
    fn larger_p_selects_fewer_candidates() {
        let train = peaked_inputs(96, 64, 6, 30);
        let test = peaked_inputs(96, 64, 6, 31);
        let mut rng = SeededRng::new(5);
        let params = ElsaParams::for_dims(64, 64, &mut rng);
        let frac = |p: f64| {
            let elsa = ElsaAttention::learn(params.clone(), std::slice::from_ref(&train), p);
            elsa.forward(&test).1.candidate_fraction()
        };
        let f_half = frac(0.5);
        let f_two = frac(2.0);
        let f_eight = frac(8.0);
        assert!(f_half >= f_two, "{f_half} < {f_two}");
        assert!(f_two >= f_eight, "{f_two} < {f_eight}");
    }

    #[test]
    fn fallback_guarantees_nonempty_candidates() {
        // An absurdly high threshold forces the fallback for every query.
        let inputs = random_inputs(16, 64, 6);
        let mut rng = SeededRng::new(7);
        let elsa = ElsaAttention::with_threshold(ElsaParams::for_dims(64, 64, &mut rng), 1e9);
        let (cands, stats) = elsa.candidates(&inputs);
        assert!(cands.iter().all(|c| c.len() == 1));
        assert_eq!(stats.fallback_queries, 16);
    }

    #[test]
    fn selected_keys_have_high_true_scores() {
        // Recall check: keys with large softmax scores should rarely be
        // dropped at conservative p.
        let train = peaked_inputs(64, 64, 3, 40);
        let test = peaked_inputs(64, 64, 3, 41);
        let mut rng = SeededRng::new(8);
        let elsa = ElsaAttention::learn(ElsaParams::for_dims(64, 64, &mut rng), &[train], 0.5);
        let (cands, _) = elsa.candidates(&test);
        let scores = exact::normalized_scores(&test, 1.0);
        let n = test.num_keys();
        let mut relevant = 0usize;
        let mut captured = 0usize;
        for i in 0..test.num_queries() {
            for j in 0..n {
                if scores[(i, j)] > 2.0 / n as f32 {
                    relevant += 1;
                    if cands[i].contains(&j) {
                        captured += 1;
                    }
                }
            }
        }
        let recall = captured as f64 / relevant.max(1) as f64;
        assert!(recall > 0.85, "recall of relevant keys {recall}");
    }

    #[test]
    fn stats_merge() {
        let a = SelectionStats {
            total_pairs: 100,
            selected_pairs: 20,
            num_queries: 10,
            num_keys: 10,
            fallback_queries: 1,
        };
        let b = SelectionStats {
            total_pairs: 300,
            selected_pairs: 60,
            num_queries: 30,
            num_keys: 10,
            fallback_queries: 0,
        };
        let m = a.merged(&b);
        assert_eq!(m.total_pairs, 400);
        assert_eq!(m.selected_pairs, 80);
        assert!((m.candidate_fraction() - 0.2).abs() < 1e-12);
        assert!((m.avg_candidates_per_query() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn empty_stats_are_safe() {
        let s = SelectionStats::default();
        assert_eq!(s.candidate_fraction(), 0.0);
        assert_eq!(s.avg_candidates_per_query(), 0.0);
    }
}
