//! Sanity checks on candidate sets and attention outputs.
//!
//! The candidate selection module is the one place where a corrupted hash
//! signature or a saturated similarity can silently change *which* keys are
//! attended: a flipped hash bit yields wrong-but-plausible candidates, and a
//! corrupted LUT output can empty the candidate set entirely (the arg-max
//! fallback in [`ElsaAttention::select_candidates`] protects the software
//! operator, but a faulty hardware unit bypasses it). These checks are the
//! serving-time guards: a violation means the approximate pipeline cannot be
//! trusted for this request and the dispatcher must degrade to exact
//! attention (see `elsa-runtime`'s failover path).
//!
//! [`ElsaAttention::select_candidates`]: crate::ElsaAttention::select_candidates

use std::fmt;

use elsa_linalg::Matrix;

/// A structural violation in a per-query candidate list set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateFault {
    /// The number of candidate lists differs from the number of queries.
    CountMismatch {
        /// Candidate lists provided.
        lists: usize,
        /// Queries in the invocation.
        queries: usize,
    },
    /// A query ended up with no candidates at all (softmax undefined).
    Empty {
        /// The offending query index.
        query: usize,
    },
    /// A candidate index refers past the key matrix.
    OutOfRange {
        /// The offending query index.
        query: usize,
        /// The out-of-range key index.
        index: usize,
        /// Number of keys in the invocation.
        num_keys: usize,
    },
    /// A candidate list is not strictly increasing (duplicate or unsorted
    /// entries — selection scans keys in order, so order is an invariant).
    Unordered {
        /// The offending query index.
        query: usize,
    },
}

impl fmt::Display for CandidateFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            CandidateFault::CountMismatch { lists, queries } => {
                write!(f, "{lists} candidate lists for {queries} queries")
            }
            CandidateFault::Empty { query } => {
                write!(f, "query {query} has an empty candidate set")
            }
            CandidateFault::OutOfRange { query, index, num_keys } => {
                write!(f, "query {query} selects key {index} of only {num_keys}")
            }
            CandidateFault::Unordered { query } => {
                write!(f, "query {query} has an unordered or duplicated candidate list")
            }
        }
    }
}

impl std::error::Error for CandidateFault {}

/// Validates the structural invariants of a candidate set: one non-empty,
/// strictly increasing, in-range list per query.
///
/// # Errors
///
/// Returns the first [`CandidateFault`] found, scanning queries in order.
pub fn check_candidates(
    candidates: &[Vec<usize>],
    num_queries: usize,
    num_keys: usize,
) -> Result<(), CandidateFault> {
    if candidates.len() != num_queries {
        return Err(CandidateFault::CountMismatch { lists: candidates.len(), queries: num_queries });
    }
    for (query, list) in candidates.iter().enumerate() {
        if list.is_empty() {
            return Err(CandidateFault::Empty { query });
        }
        let mut prev: Option<usize> = None;
        for &index in list {
            if index >= num_keys {
                return Err(CandidateFault::OutOfRange { query, index, num_keys });
            }
            if prev.is_some_and(|p| p >= index) {
                return Err(CandidateFault::Unordered { query });
            }
            prev = Some(index);
        }
    }
    Ok(())
}

/// Position and value of the first non-finite element of an output matrix,
/// scanning in row-major order; `None` when every element is finite.
#[must_use]
pub fn first_non_finite(m: &Matrix) -> Option<(usize, usize, f32)> {
    let cols = m.cols();
    m.as_slice()
        .iter()
        .position(|v| !v.is_finite())
        .map(|pos| (pos / cols, pos % cols, m.as_slice()[pos]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_candidate_sets_pass() {
        let cands = vec![vec![0, 2, 5], vec![1], vec![3, 4]];
        assert_eq!(check_candidates(&cands, 3, 6), Ok(()));
    }

    #[test]
    fn structural_violations_are_reported_in_order() {
        assert_eq!(
            check_candidates(&[vec![0]], 2, 4),
            Err(CandidateFault::CountMismatch { lists: 1, queries: 2 })
        );
        assert_eq!(
            check_candidates(&[vec![0], vec![]], 2, 4),
            Err(CandidateFault::Empty { query: 1 })
        );
        assert_eq!(
            check_candidates(&[vec![0, 9]], 1, 4),
            Err(CandidateFault::OutOfRange { query: 0, index: 9, num_keys: 4 })
        );
        assert_eq!(
            check_candidates(&[vec![2, 2]], 1, 4),
            Err(CandidateFault::Unordered { query: 0 })
        );
        assert_eq!(
            check_candidates(&[vec![3, 1]], 1, 4),
            Err(CandidateFault::Unordered { query: 0 })
        );
    }

    #[test]
    fn finite_scan_finds_first_bad_element() {
        let mut m = Matrix::zeros(3, 4);
        assert_eq!(first_non_finite(&m), None);
        m[(2, 1)] = f32::NEG_INFINITY;
        m[(1, 3)] = f32::NAN;
        let (r, c, v) = first_non_finite(&m).expect("bad element");
        assert_eq!((r, c), (1, 3));
        assert!(v.is_nan());
    }

    #[test]
    fn operator_candidates_always_pass_sanity() {
        use crate::attention::{ElsaAttention, ElsaParams};
        use elsa_attention::exact::AttentionInputs;
        use elsa_linalg::SeededRng;

        let mut rng = SeededRng::new(91);
        let n = 48;
        let mk = |rng: &mut SeededRng| {
            Matrix::from_fn(n, 64, |_, _| rng.standard_normal() as f32)
        };
        let inputs = AttentionInputs::new(mk(&mut rng), mk(&mut rng), mk(&mut rng));
        let elsa = ElsaAttention::with_threshold(ElsaParams::for_dims(64, 64, &mut rng), 0.4);
        let (cands, _) = elsa.candidates(&inputs);
        assert_eq!(check_candidates(&cands, n, n), Ok(()));
    }
}
