//! θ_bias calibration (§III-B, *Angle Correction*).
//!
//! The Hamming estimator of the angle is unbiased but noisy, so without
//! correction it *over*-estimates the angle (under-estimates similarity) in
//! about half of all cases — and an over-estimated angle can make the
//! selection step drop a key that actually matters. ELSA therefore subtracts
//! a bias `θ_bias` chosen as the **80th percentile of the estimation error**
//! on a synthetic dataset of standard normal vectors, so that after
//! correction the estimator under-estimates the angle in ~80% of cases.
//!
//! For `d = 64`, `k = 64` the paper reports `θ_bias = 0.127`; the calibration
//! here reproduces that value (see `theta_bias_matches_paper_constant`).

use elsa_linalg::{ops, SeededRng};

use crate::hashing::{estimate_angle, SrpHasher};

/// Configuration for a θ_bias calibration run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationConfig {
    /// Vector dimension `d`.
    pub d: usize,
    /// Hash length `k`.
    pub k: usize,
    /// Number of random vector pairs to sample.
    pub pairs: usize,
    /// Error percentile to return (the paper uses 80.0).
    pub percentile: f64,
    /// Number of independent hasher draws to average over (reduces the
    /// variance contributed by one specific projection draw).
    pub hasher_draws: usize,
}

impl Default for CalibrationConfig {
    fn default() -> Self {
        Self { d: 64, k: 64, pairs: 2000, percentile: 80.0, hasher_draws: 8 }
    }
}

/// Runs the §III-B calibration: samples standard-normal vector pairs,
/// measures `estimated_angle − true_angle`, and returns the requested error
/// percentile.
///
/// # Panics
///
/// Panics if `pairs == 0` or `hasher_draws == 0`.
///
/// # Examples
///
/// ```
/// use elsa_core::calibration::{calibrate_theta_bias, CalibrationConfig};
/// use elsa_linalg::SeededRng;
///
/// let cfg = CalibrationConfig { pairs: 300, hasher_draws: 2, ..CalibrationConfig::default() };
/// let bias = calibrate_theta_bias(&cfg, &mut SeededRng::new(0));
/// assert!(bias > 0.05 && bias < 0.25);
/// ```
#[must_use]
pub fn calibrate_theta_bias(config: &CalibrationConfig, rng: &mut SeededRng) -> f64 {
    assert!(config.pairs > 0, "calibration needs at least one pair");
    assert!(config.hasher_draws > 0, "calibration needs at least one hasher");
    let mut errors = Vec::with_capacity(config.pairs * config.hasher_draws);
    for draw in 0..config.hasher_draws {
        let mut fork = rng.fork(draw as u64);
        let hasher = SrpHasher::dense(config.k, config.d, &mut fork);
        for _ in 0..config.pairs {
            let a = fork.normal_vec(config.d);
            let b = fork.normal_vec(config.d);
            let truth = ops::angle_between(&a, &b);
            let est = estimate_angle(hasher.hash(&a).hamming(&hasher.hash(&b)), config.k);
            errors.push(est - truth);
        }
    }
    ops::percentile(&errors, config.percentile)
}

/// Applies the angle correction: `max(0, θ_est − θ_bias)`.
#[must_use]
pub fn corrected_angle(estimated: f64, theta_bias: f64) -> f64 {
    (estimated - theta_bias).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theta_bias_matches_paper_constant() {
        // §III-B: d = 64, k = 64 -> θ_bias = 0.127. Our calibration must land
        // near it (the paper's own value came from one synthetic experiment).
        let cfg = CalibrationConfig::default();
        let bias = calibrate_theta_bias(&cfg, &mut SeededRng::new(42));
        assert!(
            (bias - crate::THETA_BIAS_D64_K64).abs() < 0.03,
            "calibrated {bias}, paper 0.127"
        );
    }

    #[test]
    fn calibration_is_deterministic_given_seed() {
        let cfg = CalibrationConfig { pairs: 200, hasher_draws: 2, ..Default::default() };
        let a = calibrate_theta_bias(&cfg, &mut SeededRng::new(1));
        let b = calibrate_theta_bias(&cfg, &mut SeededRng::new(1));
        assert_eq!(a, b);
    }

    #[test]
    fn longer_hashes_need_less_correction() {
        // More hash bits -> lower estimator variance -> smaller 80th
        // percentile error.
        let short = CalibrationConfig { k: 16, pairs: 800, hasher_draws: 4, ..Default::default() };
        let long = CalibrationConfig { k: 128, pairs: 800, hasher_draws: 4, ..Default::default() };
        let mut rng = SeededRng::new(9);
        let b_short = calibrate_theta_bias(&short, &mut rng);
        let b_long = calibrate_theta_bias(&long, &mut rng);
        assert!(
            b_short > b_long,
            "k=16 bias {b_short} should exceed k=128 bias {b_long}"
        );
    }

    #[test]
    fn correction_under_estimates_most_angles() {
        // After subtracting the 80th-percentile bias, ~80% of estimates must
        // be below the true angle.
        let cfg = CalibrationConfig { pairs: 1000, hasher_draws: 4, ..Default::default() };
        let mut rng = SeededRng::new(11);
        let bias = calibrate_theta_bias(&cfg, &mut rng);
        let hasher = SrpHasher::dense(64, 64, &mut rng);
        let mut under = 0;
        let total = 1000;
        for _ in 0..total {
            let a = rng.normal_vec(64);
            let b = rng.normal_vec(64);
            let truth = ops::angle_between(&a, &b);
            let est = corrected_angle(
                estimate_angle(hasher.hash(&a).hamming(&hasher.hash(&b)), 64),
                bias,
            );
            if est <= truth {
                under += 1;
            }
        }
        let frac = f64::from(under) / f64::from(total);
        assert!((0.68..=0.92).contains(&frac), "under-estimation fraction {frac}");
    }

    #[test]
    fn corrected_angle_clamps_at_zero() {
        assert_eq!(corrected_angle(0.05, 0.127), 0.0);
        assert!((corrected_angle(0.5, 0.127) - 0.373).abs() < 1e-12);
    }
}
