//! Streaming, query-at-a-time execution — the software mirror of the
//! hardware's flow (§IV-B): preprocess the key/value matrices once, then
//! feed queries one by one, each producing one output row.
//!
//! The session also supports *bounded* (causal) selection: restricting the
//! scan to a key prefix is free in hardware (the selection modules simply
//! stop earlier), and it is how the sequential recommenders (SASRec attends
//! only to previous interactions) run on ELSA.

use elsa_attention::exact::AttentionInputs;
use elsa_linalg::{ops, Matrix};

use crate::attention::{ElsaAttention, PreprocessedKeys, SelectionStats};
use crate::hashing::BinaryHash;

/// A preprocessed key/value context accepting a stream of queries.
///
/// # Examples
///
/// ```
/// use elsa_core::attention::{ElsaAttention, ElsaParams};
/// use elsa_core::session::ElsaSession;
/// use elsa_linalg::{Matrix, SeededRng};
///
/// let mut rng = SeededRng::new(1);
/// let keys = Matrix::from_fn(32, 64, |_, _| rng.standard_normal() as f32);
/// let values = Matrix::from_fn(32, 64, |_, _| rng.standard_normal() as f32);
/// let operator = ElsaAttention::exact_fallback(ElsaParams::for_dims(64, 64, &mut rng));
/// let mut session = ElsaSession::new(&operator, &keys, &values);
/// let q = rng.normal_vec(64);
/// let row = session.query(&q);
/// assert_eq!(row.len(), 64);
/// assert_eq!(session.stats().num_queries, 1);
/// ```
#[derive(Debug)]
pub struct ElsaSession<'a> {
    operator: &'a ElsaAttention,
    keys: &'a Matrix,
    values: &'a Matrix,
    pre: PreprocessedKeys,
    stats: SelectionStats,
}

impl<'a> ElsaSession<'a> {
    /// Preprocesses the keys (hashes + norms) for the given operator.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `values` have different row counts, the key
    /// dimension differs from the operator's, or `keys` is empty.
    #[must_use]
    pub fn new(operator: &'a ElsaAttention, keys: &'a Matrix, values: &'a Matrix) -> Self {
        assert!(keys.rows() > 0, "session needs at least one key");
        assert_eq!(keys.rows(), values.rows(), "key/value row mismatch");
        assert_eq!(keys.cols(), operator.params().hasher().dim(), "key dimension mismatch");
        let pre = PreprocessedKeys::compute(operator.params(), keys);
        let stats = SelectionStats {
            num_keys: keys.rows(),
            ..SelectionStats::default()
        };
        Self { operator, keys, values, pre, stats }
    }

    /// Number of keys in the context.
    #[must_use]
    pub fn num_keys(&self) -> usize {
        self.keys.rows()
    }

    /// The preprocessing product (hashes/norms), for inspection.
    #[must_use]
    pub fn preprocessed(&self) -> &PreprocessedKeys {
        &self.pre
    }

    /// Accumulated selection statistics over all queries so far.
    #[must_use]
    pub const fn stats(&self) -> SelectionStats {
        self.stats
    }

    /// Processes one query against the full context, returning its output
    /// row.
    #[must_use]
    pub fn query(&mut self, q: &[f32]) -> Vec<f32> {
        self.query_bounded(q, self.keys.rows())
    }

    /// Processes one query restricted to the first `limit` keys (causal
    /// masking when `limit = position + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0` or `limit > num_keys()`.
    #[must_use]
    pub fn query_bounded(&mut self, q: &[f32], limit: usize) -> Vec<f32> {
        assert!(limit > 0 && limit <= self.keys.rows(), "limit out of range");
        let qh = self.operator.params().hasher().hash(q);
        let (candidates, fallback) = self.select_bounded(&qh, limit);
        self.stats.total_pairs += limit;
        self.stats.selected_pairs += candidates.len();
        self.stats.num_queries += 1;
        self.stats.fallback_queries += usize::from(fallback);
        // Exact attention over the candidate rows.
        let scale = self.operator.params().scale();
        let scores: Vec<f32> = candidates
            .iter()
            .map(|&j| (ops::dot(q, self.keys.row(j)) * f64::from(scale)) as f32)
            .collect();
        let weights = ops::softmax(&scores);
        let mut out = vec![0.0f32; self.values.cols()];
        for (&j, &w) in candidates.iter().zip(&weights) {
            ops::axpy(w, self.values.row(j), &mut out);
        }
        out
    }

    /// Candidate selection over the first `limit` keys, with the arg-max
    /// fallback guaranteeing a nonempty result.
    fn select_bounded(&self, query_hash: &BinaryHash, limit: usize) -> (Vec<usize>, bool) {
        let cutoff = self.operator.threshold() * self.pre.max_norm();
        let lut = self.operator.params().lut();
        let mut selected = Vec::new();
        let mut best: Option<(usize, f64)> = None;
        for j in 0..limit {
            let sim = lut.similarity(query_hash, &self.pre.hashes()[j], self.pre.norms()[j]);
            if sim > cutoff {
                selected.push(j);
            }
            match best {
                Some((_, b)) if sim <= b => {}
                _ => best = Some((j, sim)),
            }
        }
        if selected.is_empty() {
            (vec![best.expect("limit > 0").0], true)
        } else {
            (selected, false)
        }
    }
}

/// Convenience for whole-invocation causal attention through the operator:
/// query `i` selects among keys `0..=i` only.
#[must_use]
pub fn forward_causal(
    operator: &ElsaAttention,
    inputs: &AttentionInputs,
) -> (Matrix, SelectionStats) {
    let mut session = ElsaSession::new(operator, inputs.key(), inputs.value());
    let mut out = Matrix::zeros(inputs.num_queries(), inputs.value().cols());
    for i in 0..inputs.num_queries() {
        let limit = (i + 1).min(inputs.num_keys());
        let row = session.query_bounded(inputs.query().row(i), limit);
        out.row_mut(i).copy_from_slice(&row);
    }
    (out, session.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::ElsaParams;
    use elsa_attention::exact;
    use elsa_linalg::SeededRng;

    fn setup(seed: u64) -> (ElsaAttention, Matrix, Matrix, Matrix) {
        let mut rng = SeededRng::new(seed);
        let n = 48;
        let d = 64;
        let keys = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let values = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let queries = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let operator = ElsaAttention::exact_fallback(ElsaParams::for_dims(64, 64, &mut rng));
        (operator, queries, keys, values)
    }

    #[test]
    fn streaming_matches_batch_forward() {
        let (operator, q, k, v) = setup(1);
        let inputs = AttentionInputs::new(q.clone(), k.clone(), v.clone());
        let (batch_out, batch_stats) = operator.forward(&inputs);
        let mut session = ElsaSession::new(&operator, &k, &v);
        for i in 0..q.rows() {
            let row = session.query(q.row(i));
            for (a, b) in row.iter().zip(batch_out.row(i)) {
                assert!((a - b).abs() < 1e-5);
            }
        }
        assert_eq!(session.stats().selected_pairs, batch_stats.selected_pairs);
    }

    #[test]
    fn causal_forward_matches_exact_causal_with_full_selection() {
        let (operator, q, k, v) = setup(2);
        let inputs = AttentionInputs::new(q, k, v);
        let (out, stats) = forward_causal(&operator, &inputs);
        let exact_out = exact::causal_attention(&inputs, 1.0);
        assert!(out.max_abs_diff(&exact_out) < 1e-5);
        // Lower-triangular pair count: n(n+1)/2.
        let n = inputs.num_keys();
        assert_eq!(stats.total_pairs, n * (n + 1) / 2);
    }

    #[test]
    fn bounded_query_never_sees_future_keys() {
        let (operator, q, mut k, v) = setup(3);
        // Poison the "future" keys: identical to the query direction so
        // they'd certainly be selected if visible.
        for j in 24..48 {
            for c in 0..64 {
                k[(j, c)] = q[(0, c)] * 3.0;
            }
        }
        let mut session = ElsaSession::new(&operator, &k, &v);
        let _ = session.query_bounded(q.row(0), 24);
        assert_eq!(session.stats().total_pairs, 24);
        assert!(session.stats().selected_pairs <= 24);
    }

    #[test]
    fn stats_accumulate_across_queries() {
        let (operator, q, k, v) = setup(4);
        let mut session = ElsaSession::new(&operator, &k, &v);
        let _ = session.query(q.row(0));
        let _ = session.query(q.row(1));
        assert_eq!(session.stats().num_queries, 2);
        assert_eq!(session.stats().total_pairs, 2 * k.rows());
    }

    #[test]
    #[should_panic(expected = "limit out of range")]
    fn rejects_zero_limit() {
        let (operator, q, k, v) = setup(5);
        let mut session = ElsaSession::new(&operator, &k, &v);
        let _ = session.query_bounded(q.row(0), 0);
    }
}
