//! Streaming, query-at-a-time execution — the software mirror of the
//! hardware's flow (§IV-B), in two flavours:
//!
//! * [`ElsaSession`] borrows fixed key/value matrices, preprocesses them
//!   once, and then feeds queries one by one (the one-shot encoder flow).
//! * [`StreamingSession`] **owns** its KV state and grows it token by token
//!   via [`StreamingSession::append`]: each appended key hashes and norms
//!   *only itself* (`O(k)` work instead of the `O(n·k)` from-scratch
//!   preprocessing), which is the autoregressive-decode flow. Appending
//!   tokens `1..n` and then querying is bit-identical to building an
//!   [`ElsaSession`] over the final matrices — the equivalence battery in
//!   `tests/session_equivalence.rs` proves it 0-ulp across the workload
//!   zoo.
//!
//! Both sessions support *bounded* (causal) selection: restricting the scan
//! to a key prefix is free in hardware (the selection modules simply stop
//! earlier), and it is how the sequential recommenders (SASRec attends only
//! to previous interactions) run on ELSA. Candidate selection and the
//! candidate-restricted output row are computed by the *same* shared code
//! ([`ElsaAttention::select_candidates_bounded`] and a private helper), so
//! the two session types cannot drift apart numerically.

use elsa_attention::exact::AttentionInputs;
use elsa_linalg::{ops, Matrix};

use crate::attention::{ElsaAttention, PreprocessedKeys, SelectionStats};

/// A preprocessed key/value context accepting a stream of queries.
///
/// # Examples
///
/// ```
/// use elsa_core::attention::{ElsaAttention, ElsaParams};
/// use elsa_core::session::ElsaSession;
/// use elsa_linalg::{Matrix, SeededRng};
///
/// let mut rng = SeededRng::new(1);
/// let keys = Matrix::from_fn(32, 64, |_, _| rng.standard_normal() as f32);
/// let values = Matrix::from_fn(32, 64, |_, _| rng.standard_normal() as f32);
/// let operator = ElsaAttention::exact_fallback(ElsaParams::for_dims(64, 64, &mut rng));
/// let mut session = ElsaSession::new(&operator, &keys, &values);
/// let q = rng.normal_vec(64);
/// let row = session.query(&q);
/// assert_eq!(row.len(), 64);
/// assert_eq!(session.stats().num_queries, 1);
/// ```
#[derive(Debug)]
pub struct ElsaSession<'a> {
    operator: &'a ElsaAttention,
    keys: &'a Matrix,
    values: &'a Matrix,
    pre: PreprocessedKeys,
    stats: SelectionStats,
}

impl<'a> ElsaSession<'a> {
    /// Preprocesses the keys (hashes + norms) for the given operator.
    ///
    /// # Panics
    ///
    /// Panics if `keys` and `values` have different row counts, the key
    /// dimension differs from the operator's, or `keys` is empty.
    #[must_use]
    pub fn new(operator: &'a ElsaAttention, keys: &'a Matrix, values: &'a Matrix) -> Self {
        assert!(keys.rows() > 0, "session needs at least one key");
        assert_eq!(keys.rows(), values.rows(), "key/value row mismatch");
        assert_eq!(keys.cols(), operator.params().hasher().dim(), "key dimension mismatch");
        let pre = PreprocessedKeys::compute(operator.params(), keys);
        let stats = SelectionStats {
            num_keys: keys.rows(),
            ..SelectionStats::default()
        };
        Self { operator, keys, values, pre, stats }
    }

    /// Number of keys in the context.
    #[must_use]
    pub fn num_keys(&self) -> usize {
        self.keys.rows()
    }

    /// The preprocessing product (hashes/norms), for inspection.
    #[must_use]
    pub fn preprocessed(&self) -> &PreprocessedKeys {
        &self.pre
    }

    /// Accumulated selection statistics over all queries so far.
    #[must_use]
    pub const fn stats(&self) -> SelectionStats {
        self.stats
    }

    /// Processes one query against the full context, returning its output
    /// row.
    #[must_use]
    pub fn query(&mut self, q: &[f32]) -> Vec<f32> {
        self.query_bounded(q, self.keys.rows())
    }

    /// Processes one query restricted to the first `limit` keys (causal
    /// masking when `limit = position + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0` or `limit > num_keys()`.
    #[must_use]
    pub fn query_bounded(&mut self, q: &[f32], limit: usize) -> Vec<f32> {
        let qh = self.operator.params().hasher().hash(q);
        let (candidates, fallback) = self.operator.select_candidates_bounded(&qh, &self.pre, limit);
        self.stats.total_pairs += limit;
        self.stats.selected_pairs += candidates.len();
        self.stats.num_queries += 1;
        self.stats.fallback_queries += usize::from(fallback);
        attend_candidates(self.operator, self.keys, self.values, q, &candidates)
    }
}

/// An append-only key/value context for autoregressive decode.
///
/// Unlike [`ElsaSession`] this session *owns* its matrices and preprocessing
/// state. [`append`](Self::append) hashes and norms only the new key
/// ([`PreprocessedKeys::append`]), so a decode step over an `n`-token
/// context costs `O(k)` hash work instead of the `O(n·k)` a from-scratch
/// [`PreprocessedKeys::compute`] pays. The running max-norm, signatures,
/// norms, candidate sets, and output rows are bit-identical to a session
/// built from the final matrices (see `tests/session_equivalence.rs`).
///
/// # Examples
///
/// ```
/// use elsa_core::attention::{ElsaAttention, ElsaParams};
/// use elsa_core::session::StreamingSession;
/// use elsa_linalg::SeededRng;
///
/// let mut rng = SeededRng::new(1);
/// let operator = ElsaAttention::exact_fallback(ElsaParams::for_dims(64, 64, &mut rng));
/// let mut session = StreamingSession::new(&operator);
/// for _ in 0..8 {
///     let k = rng.normal_vec(64);
///     let v = rng.normal_vec(64);
///     session.append(&k, &v);
/// }
/// let q = rng.normal_vec(64);
/// let row = session.query(&q);
/// assert_eq!(row.len(), 64);
/// assert_eq!(session.num_keys(), 8);
/// ```
#[derive(Debug)]
pub struct StreamingSession<'a> {
    operator: &'a ElsaAttention,
    keys: Matrix,
    values: Matrix,
    pre: PreprocessedKeys,
    stats: SelectionStats,
}

impl<'a> StreamingSession<'a> {
    /// Creates an empty session whose value rows have the same dimension as
    /// the operator's key dimension (the common square case).
    #[must_use]
    pub fn new(operator: &'a ElsaAttention) -> Self {
        let d = operator.params().hasher().dim();
        Self::with_value_dim(operator, d)
    }

    /// Creates an empty session with an explicit value-row dimension
    /// (rectangular `d_v != d` contexts).
    #[must_use]
    pub fn with_value_dim(operator: &'a ElsaAttention, value_dim: usize) -> Self {
        let d = operator.params().hasher().dim();
        Self {
            operator,
            keys: Matrix::zeros(0, d),
            values: Matrix::zeros(0, value_dim),
            pre: PreprocessedKeys::empty(),
            stats: SelectionStats::default(),
        }
    }

    /// Appends one token: stores its key/value rows and incrementally
    /// extends the preprocessing state (hash, norm, running max-norm) for
    /// the new key only.
    ///
    /// # Panics
    ///
    /// Panics if `key` does not match the operator's dimension or `value`
    /// does not match the session's value dimension.
    pub fn append(&mut self, key: &[f32], value: &[f32]) {
        self.pre.append(self.operator.params(), key);
        self.keys.push_row(key);
        self.values.push_row(value);
        self.stats.num_keys = self.keys.rows();
    }

    /// Appends every row of `keys`/`values` in order — a convenience for
    /// prompt prefill.
    ///
    /// # Panics
    ///
    /// Panics if the matrices have different row counts or their widths do
    /// not match the session's dimensions.
    pub fn append_rows(&mut self, keys: &Matrix, values: &Matrix) {
        assert_eq!(keys.rows(), values.rows(), "key/value row mismatch");
        for r in 0..keys.rows() {
            self.append(keys.row(r), values.row(r));
        }
    }

    /// Number of tokens appended so far.
    #[must_use]
    pub fn num_keys(&self) -> usize {
        self.keys.rows()
    }

    /// `true` before the first [`append`](Self::append).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keys.rows() == 0
    }

    /// The incrementally maintained preprocessing product, for inspection.
    #[must_use]
    pub fn preprocessed(&self) -> &PreprocessedKeys {
        &self.pre
    }

    /// Accumulated selection statistics over all queries so far.
    #[must_use]
    pub const fn stats(&self) -> SelectionStats {
        self.stats
    }

    /// Approximate resident bytes of the cached state (KV rows + signatures
    /// + norms) — the quantity the serving-layer session cache accounts.
    #[must_use]
    pub fn state_bytes(&self) -> usize {
        let kv = (self.keys.rows() * self.keys.cols() + self.values.rows() * self.values.cols())
            * core::mem::size_of::<f32>();
        let sig = self.keys.rows() * self.operator.params().hasher().k() / 8;
        let norms = self.keys.rows() * core::mem::size_of::<f64>();
        kv + sig + norms
    }

    /// Processes one query against the full appended context, returning its
    /// output row.
    ///
    /// # Panics
    ///
    /// Panics if no tokens have been appended yet.
    #[must_use]
    pub fn query(&mut self, q: &[f32]) -> Vec<f32> {
        self.query_bounded(q, self.keys.rows())
    }

    /// Processes one query restricted to the first `limit` appended tokens
    /// (causal masking when `limit = position + 1`).
    ///
    /// # Panics
    ///
    /// Panics if `limit == 0` or `limit > num_keys()`.
    #[must_use]
    pub fn query_bounded(&mut self, q: &[f32], limit: usize) -> Vec<f32> {
        let qh = self.operator.params().hasher().hash(q);
        let (candidates, fallback) = self.operator.select_candidates_bounded(&qh, &self.pre, limit);
        self.stats.total_pairs += limit;
        self.stats.selected_pairs += candidates.len();
        self.stats.num_queries += 1;
        self.stats.fallback_queries += usize::from(fallback);
        attend_candidates(self.operator, &self.keys, &self.values, q, &candidates)
    }
}

/// Exact attention over the candidate rows: the single implementation both
/// session types call, so a query over the same candidates produces the
/// same bits regardless of which session selected them.
fn attend_candidates(
    operator: &ElsaAttention,
    keys: &Matrix,
    values: &Matrix,
    q: &[f32],
    candidates: &[usize],
) -> Vec<f32> {
    let scale = operator.params().scale();
    let scores: Vec<f32> = candidates
        .iter()
        .map(|&j| (ops::dot(q, keys.row(j)) * f64::from(scale)) as f32)
        .collect();
    let weights = ops::softmax(&scores);
    let mut out = vec![0.0f32; values.cols()];
    for (&j, &w) in candidates.iter().zip(&weights) {
        ops::axpy(w, values.row(j), &mut out);
    }
    out
}

/// Convenience for whole-invocation causal attention through the operator:
/// query `i` selects among keys `0..=i` only.
#[must_use]
pub fn forward_causal(
    operator: &ElsaAttention,
    inputs: &AttentionInputs,
) -> (Matrix, SelectionStats) {
    let mut session = ElsaSession::new(operator, inputs.key(), inputs.value());
    let mut out = Matrix::zeros(inputs.num_queries(), inputs.value().cols());
    for i in 0..inputs.num_queries() {
        let limit = (i + 1).min(inputs.num_keys());
        let row = session.query_bounded(inputs.query().row(i), limit);
        out.row_mut(i).copy_from_slice(&row);
    }
    (out, session.stats())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attention::ElsaParams;
    use elsa_attention::exact;
    use elsa_linalg::SeededRng;

    fn setup(seed: u64) -> (ElsaAttention, Matrix, Matrix, Matrix) {
        let mut rng = SeededRng::new(seed);
        let n = 48;
        let d = 64;
        let keys = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let values = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let queries = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let operator = ElsaAttention::exact_fallback(ElsaParams::for_dims(64, 64, &mut rng));
        (operator, queries, keys, values)
    }

    #[test]
    fn streaming_matches_batch_forward() {
        let (operator, q, k, v) = setup(1);
        let inputs = AttentionInputs::new(q.clone(), k.clone(), v.clone());
        let (batch_out, batch_stats) = operator.forward(&inputs);
        let mut session = ElsaSession::new(&operator, &k, &v);
        for i in 0..q.rows() {
            let row = session.query(q.row(i));
            for (a, b) in row.iter().zip(batch_out.row(i)) {
                assert!((a - b).abs() < 1e-5);
            }
        }
        assert_eq!(session.stats().selected_pairs, batch_stats.selected_pairs);
    }

    #[test]
    fn causal_forward_matches_exact_causal_with_full_selection() {
        let (operator, q, k, v) = setup(2);
        let inputs = AttentionInputs::new(q, k, v);
        let (out, stats) = forward_causal(&operator, &inputs);
        let exact_out = exact::causal_attention(&inputs, 1.0);
        assert!(out.max_abs_diff(&exact_out) < 1e-5);
        // Lower-triangular pair count: n(n+1)/2.
        let n = inputs.num_keys();
        assert_eq!(stats.total_pairs, n * (n + 1) / 2);
    }

    #[test]
    fn bounded_query_never_sees_future_keys() {
        let (operator, q, mut k, v) = setup(3);
        // Poison the "future" keys: identical to the query direction so
        // they'd certainly be selected if visible.
        for j in 24..48 {
            for c in 0..64 {
                k[(j, c)] = q[(0, c)] * 3.0;
            }
        }
        let mut session = ElsaSession::new(&operator, &k, &v);
        let _ = session.query_bounded(q.row(0), 24);
        assert_eq!(session.stats().total_pairs, 24);
        assert!(session.stats().selected_pairs <= 24);
    }

    #[test]
    fn stats_accumulate_across_queries() {
        let (operator, q, k, v) = setup(4);
        let mut session = ElsaSession::new(&operator, &k, &v);
        let _ = session.query(q.row(0));
        let _ = session.query(q.row(1));
        assert_eq!(session.stats().num_queries, 2);
        assert_eq!(session.stats().total_pairs, 2 * k.rows());
    }

    #[test]
    #[should_panic(expected = "limit out of range")]
    fn rejects_zero_limit() {
        let (operator, q, k, v) = setup(5);
        let mut session = ElsaSession::new(&operator, &k, &v);
        let _ = session.query_bounded(q.row(0), 0);
    }

    #[test]
    fn appended_session_matches_borrowing_session_bitwise() {
        let (operator, q, k, v) = setup(6);
        let mut streaming = StreamingSession::new(&operator);
        streaming.append_rows(&k, &v);
        let mut fixed = ElsaSession::new(&operator, &k, &v);
        assert_eq!(streaming.preprocessed().hashes(), fixed.preprocessed().hashes());
        assert_eq!(
            streaming.preprocessed().max_norm().to_bits(),
            fixed.preprocessed().max_norm().to_bits()
        );
        for i in 0..q.rows() {
            let a = streaming.query(q.row(i));
            let b = fixed.query(q.row(i));
            let a_bits: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
            let b_bits: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
            assert_eq!(a_bits, b_bits);
        }
        assert_eq!(streaming.stats(), fixed.stats());
    }

    #[test]
    fn streaming_decode_prefix_matches_prefix_session() {
        // Decode-as-you-go: after appending j tokens, the streaming session
        // must match an ElsaSession built over exactly those j rows (both
        // see the same prefix max-norm).
        let (operator, q, k, v) = setup(7);
        let mut streaming = StreamingSession::new(&operator);
        for j in 0..k.rows() {
            streaming.append(k.row(j), v.row(j));
            let kp = Matrix::from_fn(j + 1, k.cols(), |r, c| k[(r, c)]);
            let vp = Matrix::from_fn(j + 1, v.cols(), |r, c| v[(r, c)]);
            let mut fixed = ElsaSession::new(&operator, &kp, &vp);
            let a = streaming.query(q.row(j % q.rows()));
            let b = fixed.query(q.row(j % q.rows()));
            let a_bits: Vec<u32> = a.iter().map(|x| x.to_bits()).collect();
            let b_bits: Vec<u32> = b.iter().map(|x| x.to_bits()).collect();
            assert_eq!(a_bits, b_bits, "prefix {} diverged", j + 1);
        }
    }

    #[test]
    fn state_bytes_grows_linearly() {
        let (operator, _q, k, v) = setup(8);
        let mut streaming = StreamingSession::new(&operator);
        assert_eq!(streaming.state_bytes(), 0);
        streaming.append(k.row(0), v.row(0));
        let per_token = streaming.state_bytes();
        streaming.append_rows(
            &Matrix::from_fn(3, k.cols(), |r, c| k[(r + 1, c)]),
            &Matrix::from_fn(3, v.cols(), |r, c| v[(r + 1, c)]),
        );
        assert_eq!(streaming.state_bytes(), 4 * per_token);
    }

    #[test]
    #[should_panic(expected = "limit out of range")]
    fn empty_streaming_query_panics() {
        let mut rng = SeededRng::new(9);
        let operator = ElsaAttention::exact_fallback(ElsaParams::for_dims(64, 64, &mut rng));
        let mut session = StreamingSession::new(&operator);
        let q = vec![0.0f32; 64];
        let _ = session.query(&q);
    }
}
