//! Learning layer-specific candidate-selection thresholds (§III-E).
//!
//! Sorting candidates per query would cost `n log n` and serialize badly in
//! hardware, so ELSA filters with a *threshold*. Different (sub-)layers have
//! very different score distributions (BERT-large has 384 attention
//! sub-layers), so per-layer thresholds are **learned** from a single global
//! hyperparameter `p` — the degree of approximation:
//!
//! 1. run exact attention on training data;
//! 2. per query, find keys whose softmax score exceeds `p·(1/n)`;
//! 3. among them take the key with the *minimum* softmax score (the weakest
//!    key the user still considers relevant) — or the maximum-score key when
//!    nothing clears `p/n` (footnote 1 of the paper);
//! 4. normalize that key's **raw** score by `‖q‖·‖K_max‖` → one observation
//!    of the threshold `t`;
//! 5. average observations across queries and batches.
//!
//! At inference a key is selected iff its approximate similarity exceeds
//! `t·‖K_max‖` — both sides live in the query-normalized space, so `‖q‖`
//! never needs to be computed at selection time.

use elsa_attention::exact::{self, AttentionInputs};
use elsa_linalg::ops;

/// Accumulates threshold observations for one attention (sub-)layer.
///
/// # Examples
///
/// ```
/// use elsa_core::ThresholdLearner;
/// use elsa_attention::AttentionInputs;
/// use elsa_linalg::{Matrix, SeededRng};
///
/// let mut rng = SeededRng::new(5);
/// let mut mk = || Matrix::from_fn(32, 16, |_, _| rng.standard_normal() as f32);
/// let inputs = AttentionInputs::new(mk(), mk(), mk());
///
/// let mut learner = ThresholdLearner::new(1.0);
/// learner.observe(&inputs);
/// assert!(learner.learned_threshold().is_finite());
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdLearner {
    p: f64,
    scale: f32,
    sum_t: f64,
    observations: usize,
}

impl ThresholdLearner {
    /// Creates a learner for approximation degree `p` with unscaled scores
    /// (the paper's formulation).
    ///
    /// # Panics
    ///
    /// Panics if `p < 0` or `p` is not finite.
    #[must_use]
    pub fn new(p: f64) -> Self {
        Self::with_scale(p, 1.0)
    }

    /// Creates a learner whose softmax inspection uses scores scaled by
    /// `scale` (for models that use scaled attention). The learned `t`
    /// remains in the *unscaled* `‖q‖·‖K_max‖`-normalized space so it is
    /// directly comparable with the hash-based similarity estimate.
    ///
    /// # Panics
    ///
    /// Panics if `p < 0`, `p` is not finite, or `scale <= 0`.
    #[must_use]
    pub fn with_scale(p: f64, scale: f32) -> Self {
        assert!(p.is_finite() && p >= 0.0, "p must be a finite non-negative number");
        assert!(scale > 0.0, "scale must be positive");
        Self { p, scale, sum_t: 0.0, observations: 0 }
    }

    /// The degree-of-approximation hyperparameter.
    #[must_use]
    pub const fn p(&self) -> f64 {
        self.p
    }

    /// Number of per-query observations accumulated so far.
    #[must_use]
    pub const fn observations(&self) -> usize {
        self.observations
    }

    /// Inspects one exact-attention invocation (§III-E, Fig. 6) and
    /// accumulates one threshold observation per query.
    pub fn observe(&mut self, inputs: &AttentionInputs) {
        let n = inputs.num_keys();
        let cutoff = (self.p / n as f64) as f32;
        let normalized = exact::normalized_scores(inputs, self.scale);
        let key_norms: Vec<f64> = (0..n).map(|j| ops::norm(inputs.key().row(j))).collect();
        let max_key_norm = key_norms.iter().copied().fold(0.0f64, f64::max);
        if max_key_norm == 0.0 {
            return; // degenerate all-zero keys: nothing to learn from
        }
        for i in 0..inputs.num_queries() {
            let q = inputs.query().row(i);
            let q_norm = ops::norm(q);
            if q_norm == 0.0 {
                continue;
            }
            let row = normalized.row(i);
            // ① keys whose softmax score exceeds p/n; ② weakest of them —
            // or the strongest key overall when none clears the cutoff.
            let mut chosen: Option<(usize, f32)> = None;
            for (j, &s) in row.iter().enumerate() {
                if s > cutoff {
                    match chosen {
                        Some((_, best)) if s >= best => {}
                        _ => chosen = Some((j, s)),
                    }
                }
            }
            let j = match chosen {
                Some((j, _)) => j,
                None => ops::argmax(row).expect("nonempty score row"),
            };
            // ③ normalize the *raw* attention score by ‖q‖·‖K_max‖.
            let raw = ops::dot(q, inputs.key().row(j));
            self.sum_t += raw / (q_norm * max_key_norm);
            self.observations += 1;
        }
    }

    /// The averaged threshold `t`. Returns `f64::NEG_INFINITY` when nothing
    /// has been observed (select-everything: the safe fallback).
    #[must_use]
    pub fn learned_threshold(&self) -> f64 {
        if self.observations == 0 {
            f64::NEG_INFINITY
        } else {
            self.sum_t / self.observations as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsa_linalg::{Matrix, SeededRng};

    fn random_inputs(n: usize, d: usize, seed: u64) -> AttentionInputs {
        let mut rng = SeededRng::new(seed);
        let q = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let k = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let v = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        AttentionInputs::new(q, k, v)
    }

    #[test]
    fn threshold_is_finite_after_observation() {
        let mut learner = ThresholdLearner::new(1.0);
        learner.observe(&random_inputs(32, 16, 1));
        assert!(learner.learned_threshold().is_finite());
        assert_eq!(learner.observations(), 32);
    }

    #[test]
    fn no_observations_select_everything() {
        let learner = ThresholdLearner::new(1.0);
        assert_eq!(learner.learned_threshold(), f64::NEG_INFINITY);
    }

    #[test]
    fn larger_p_gives_larger_threshold() {
        // Larger p = more aggressive approximation = higher bar for
        // relevance = larger learned t.
        let inputs = random_inputs(64, 32, 2);
        let mut conservative = ThresholdLearner::new(0.5);
        let mut aggressive = ThresholdLearner::new(4.0);
        conservative.observe(&inputs);
        aggressive.observe(&inputs);
        assert!(
            aggressive.learned_threshold() > conservative.learned_threshold(),
            "t(p=4) {} <= t(p=0.5) {}",
            aggressive.learned_threshold(),
            conservative.learned_threshold()
        );
    }

    #[test]
    fn observations_accumulate_across_batches() {
        let mut learner = ThresholdLearner::new(1.0);
        learner.observe(&random_inputs(16, 8, 3));
        learner.observe(&random_inputs(16, 8, 4));
        assert_eq!(learner.observations(), 32);
    }

    #[test]
    fn averaging_is_stable_across_similar_batches() {
        let mut a = ThresholdLearner::new(1.0);
        let mut b = ThresholdLearner::new(1.0);
        for seed in 0..5 {
            a.observe(&random_inputs(64, 32, 100 + seed));
        }
        for seed in 0..5 {
            b.observe(&random_inputs(64, 32, 200 + seed));
        }
        let (ta, tb) = (a.learned_threshold(), b.learned_threshold());
        assert!(
            (ta - tb).abs() < 0.25,
            "thresholds from iid batches differ too much: {ta} vs {tb}"
        );
    }

    #[test]
    fn p_zero_tracks_weakest_positive_score() {
        // With p = 0 every key with nonzero softmax weight is "relevant", so
        // the learner tracks the weakest key — t becomes very low and at
        // inference essentially everything is selected (the paper's "set p
        // to 0 to fall back to exact" behaviour).
        let inputs = random_inputs(32, 16, 5);
        let mut all = ThresholdLearner::new(0.0);
        let mut some = ThresholdLearner::new(2.0);
        all.observe(&inputs);
        some.observe(&inputs);
        assert!(all.learned_threshold() < some.learned_threshold());
    }

    #[test]
    fn zero_query_rows_are_skipped() {
        let k = Matrix::from_fn(8, 4, |r, c| ((r + c) % 3) as f32);
        let q = Matrix::zeros(8, 4);
        let v = Matrix::zeros(8, 4);
        let mut learner = ThresholdLearner::new(1.0);
        learner.observe(&AttentionInputs::new(q, k, v));
        assert_eq!(learner.observations(), 0);
    }

    #[test]
    fn degenerate_zero_keys_are_skipped() {
        let inputs = AttentionInputs::new(
            Matrix::from_fn(4, 4, |_, _| 1.0),
            Matrix::zeros(4, 4),
            Matrix::zeros(4, 4),
        );
        let mut learner = ThresholdLearner::new(1.0);
        learner.observe(&inputs);
        assert_eq!(learner.observations(), 0);
    }

    #[test]
    #[should_panic(expected = "finite non-negative")]
    fn rejects_negative_p() {
        let _ = ThresholdLearner::new(-1.0);
    }
}
