//! Sign random projection (SRP) binary hashing (§III-B, §III-C).
//!
//! A `k`-bit hash of a vector `x` is `sign(Ax)` bit-by-bit, where the rows of
//! `A` are orthogonal unit vectors. The Hamming distance between two hashes
//! is an unbiased estimator of the angular distance between the original
//! vectors (Charikar, STOC 2002): `θ ≈ π/k · hamming`.
//!
//! Two projection backends are provided:
//!
//! * [`SrpHasher::dense`] — an explicit `k × d` orthogonal matrix
//!   (Gram–Schmidt on Gaussian draws), costing `k·d` multiplies per hash;
//! * [`SrpHasher::kronecker`] — the paper's structured transform
//!   (§III-C), costing `m·d^{1+1/m}` multiplies (768 for the hardware's
//!   three-way `d = k = 64` configuration).
//!
//! Both are orthogonal, so their statistical quality is identical; the
//! Kronecker form exists purely to cut the hash-computation cost, and the
//! test-suite checks the two agree in estimator quality.

use elsa_linalg::{kronecker::KroneckerFactors, orthogonal, Matrix, SeededRng};

/// A packed `k`-bit binary embedding.
///
/// # Examples
///
/// ```
/// use elsa_core::BinaryHash;
/// let a = BinaryHash::from_bits(&[true, false, true, true]);
/// let b = BinaryHash::from_bits(&[true, true, true, false]);
/// assert_eq!(a.hamming(&b), 2);
/// assert_eq!(a.len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BinaryHash {
    words: Vec<u64>,
    len: usize,
}

impl BinaryHash {
    /// Builds a hash from explicit bits.
    #[must_use]
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut words = vec![0u64; bits.len().div_ceil(64)];
        for (i, &b) in bits.iter().enumerate() {
            if b {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        Self { words, len: bits.len() }
    }

    /// Builds the hash from the signs of a projected vector
    /// (`bit = 1 ⇔ value ≥ 0`, matching the paper's `sign` convention).
    #[must_use]
    pub fn from_signs(projected: &[f32]) -> Self {
        let mut words = vec![0u64; projected.len().div_ceil(64)];
        for (i, &v) in projected.iter().enumerate() {
            if v >= 0.0 {
                words[i / 64] |= 1 << (i % 64);
            }
        }
        Self { words, len: projected.len() }
    }

    /// Number of bits `k`.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.len
    }

    /// True if the hash has zero bits (never produced by a hasher).
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bit `i` as a bool.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.len()`.
    #[must_use]
    pub fn bit(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index out of range");
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Hamming distance — the XOR-and-popcount the candidate selection
    /// module computes in one cycle.
    ///
    /// # Panics
    ///
    /// Panics if the hashes have different lengths.
    #[must_use]
    pub fn hamming(&self, other: &Self) -> usize {
        assert_eq!(self.len, other.len, "hash length mismatch");
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// The raw packed words (low bit = bit 0).
    #[must_use]
    pub fn as_words(&self) -> &[u64] {
        &self.words
    }
}

impl std::fmt::Display for BinaryHash {
    /// Bits rendered LSB-first as `0`/`1` (e.g. `1011` for bits 0,2,3 set).
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for i in 0..self.len {
            f.write_str(if self.bit(i) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl std::fmt::Binary for BinaryHash {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Display::fmt(self, f)
    }
}

impl std::fmt::LowerHex for BinaryHash {
    /// Packed words rendered low-word-first.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for w in &self.words {
            write!(f, "{w:016x}")?;
        }
        Ok(())
    }
}

/// Converts a Hamming distance into the SRP angle estimate `π/k · h`
/// (no bias correction; see [`crate::calibration`]).
#[must_use]
pub fn estimate_angle(hamming: usize, k: usize) -> f64 {
    std::f64::consts::PI * hamming as f64 / k as f64
}

/// The projection backend of a [`SrpHasher`].
#[derive(Debug, Clone)]
enum Projection {
    Dense(Matrix),
    Kronecker(KroneckerFactors),
}

/// A sign-random-projection hasher with orthogonal projections.
///
/// # Examples
///
/// ```
/// use elsa_core::SrpHasher;
/// use elsa_linalg::SeededRng;
///
/// let mut rng = SeededRng::new(3);
/// let hasher = SrpHasher::kronecker_three_way(64, &mut rng);
/// let h = hasher.hash(&vec![1.0f32; 64]);
/// assert_eq!(h.len(), 64);
/// assert_eq!(hasher.multiplication_count(), 768); // 3·64^(4/3)
/// ```
#[derive(Debug, Clone)]
pub struct SrpHasher {
    projection: Projection,
    k: usize,
    d: usize,
}

impl SrpHasher {
    /// A dense `k × d` orthogonal projection (batched Gram–Schmidt when
    /// `k > d`).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or `d == 0`.
    #[must_use]
    pub fn dense(k: usize, d: usize, rng: &mut SeededRng) -> Self {
        let m = orthogonal::random_orthogonal_projections(k, d, rng);
        Self { projection: Projection::Dense(m), k, d }
    }

    /// A dense projection whose rows are **independent Gaussian** directions
    /// (plain SRP, *not* orthogonalized) — kept as an ablation baseline for
    /// the §III-B claim that orthogonal projections estimate better.
    #[must_use]
    pub fn dense_gaussian(k: usize, d: usize, rng: &mut SeededRng) -> Self {
        let m = Matrix::from_fn(k, d, |_, _| rng.standard_normal() as f32);
        // Normalize rows to unit length (scale does not affect signs, but
        // keeps the matrix comparable in tests).
        let mut normalized = m;
        for r in 0..k {
            let n = elsa_linalg::ops::norm(normalized.row(r));
            if n > 0.0 {
                for v in normalized.row_mut(r) {
                    *v = (f64::from(*v) / n) as f32;
                }
            }
        }
        Self { projection: Projection::Dense(normalized), k, d }
    }

    /// The paper's two-way Kronecker projection (`√d × √d` factors,
    /// `2·d^{3/2}` multiplies; requires `d` to be a perfect square and
    /// `k = d`).
    #[must_use]
    pub fn kronecker_two_way(d: usize, rng: &mut SeededRng) -> Self {
        let t = KroneckerFactors::two_way_square(d, rng);
        Self { projection: Projection::Kronecker(t), k: d, d }
    }

    /// The hardware's three-way Kronecker projection (`d^{1/3}`-sized
    /// factors, `3·d^{4/3}` multiplies; requires `d` to be a perfect cube
    /// and `k = d`). For `d = 64`: three `4×4` factors, 768 multiplies.
    #[must_use]
    pub fn kronecker_three_way(d: usize, rng: &mut SeededRng) -> Self {
        let t = KroneckerFactors::three_way_square(d, rng);
        Self { projection: Projection::Kronecker(t), k: d, d }
    }

    /// A Kronecker projection from explicit factor shapes (supports `k ≠ d`).
    #[must_use]
    pub fn kronecker(shapes: &[(usize, usize)], rng: &mut SeededRng) -> Self {
        let t = KroneckerFactors::random_orthogonal(shapes, rng);
        let (k, d) = (t.output_dim(), t.input_dim());
        Self { projection: Projection::Kronecker(t), k, d }
    }

    /// Hash length `k`.
    #[must_use]
    pub const fn k(&self) -> usize {
        self.k
    }

    /// Input dimension `d`.
    #[must_use]
    pub const fn dim(&self) -> usize {
        self.d
    }

    /// Scalar multiplications per hash (the quantity §III-C's efficient
    /// scheme minimizes; feeds the hardware cost model).
    #[must_use]
    pub fn multiplication_count(&self) -> usize {
        match &self.projection {
            Projection::Dense(m) => m.rows() * m.cols(),
            Projection::Kronecker(t) => t.multiplication_count(),
        }
    }

    /// The projected (pre-sign) vector — exposed for the quantized datapath
    /// in `elsa-sim`, which re-computes the projection in fixed point.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    #[must_use]
    pub fn project(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.d, "input dimension mismatch");
        match &self.projection {
            Projection::Dense(m) => {
                (0..self.k).map(|r| elsa_linalg::ops::dot(m.row(r), x) as f32).collect()
            }
            Projection::Kronecker(t) => t.apply(x),
        }
    }

    /// Hashes one vector.
    #[must_use]
    pub fn hash(&self, x: &[f32]) -> BinaryHash {
        BinaryHash::from_signs(&self.project(x))
    }

    /// Hashes every row of a matrix (all keys, or all queries).
    ///
    /// Rows fan out across worker threads when the total projection cost is
    /// large enough; each row is hashed by the unchanged serial kernel and
    /// results are collected in row order, so the output is bit-identical to
    /// the serial loop at any worker count.
    #[must_use]
    pub fn hash_rows(&self, m: &Matrix) -> Vec<BinaryHash> {
        let work = m.rows().saturating_mul(self.multiplication_count());
        if elsa_parallel::beneficial(work) {
            elsa_parallel::par_map_indexed(m.rows(), |r| self.hash(m.row(r)))
        } else {
            (0..m.rows()).map(|r| self.hash(m.row(r))).collect()
        }
    }

    /// The dense `k × d` projection matrix (materialized for Kronecker
    /// backends) — used by the quantized hardware datapath and by tests.
    #[must_use]
    pub fn dense_projection(&self) -> Matrix {
        match &self.projection {
            Projection::Dense(m) => m.clone(),
            Projection::Kronecker(t) => t.dense(),
        }
    }

    /// The Kronecker factors, if this hasher uses the structured transform.
    #[must_use]
    pub fn kronecker_factors(&self) -> Option<&KroneckerFactors> {
        match &self.projection {
            Projection::Dense(_) => None,
            Projection::Kronecker(t) => Some(t),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsa_linalg::ops;

    #[test]
    fn hash_identical_vectors_distance_zero() {
        let mut rng = SeededRng::new(1);
        let hasher = SrpHasher::dense(64, 64, &mut rng);
        let x = rng.normal_vec(64);
        assert_eq!(hasher.hash(&x).hamming(&hasher.hash(&x)), 0);
    }

    #[test]
    fn hash_opposite_vectors_distance_k() {
        let mut rng = SeededRng::new(2);
        let hasher = SrpHasher::dense(64, 64, &mut rng);
        let x = rng.normal_vec(64);
        let neg: Vec<f32> = x.iter().map(|v| -v).collect();
        let h = hasher.hash(&x).hamming(&hasher.hash(&neg));
        // Every projection flips sign except exact zeros (measure zero).
        assert!(h >= 62, "hamming {h}");
    }

    #[test]
    fn hamming_estimates_angle_unbiased() {
        // Average over many pairs: the estimator should track the true angle.
        let mut rng = SeededRng::new(3);
        let d = 64;
        let trials = 200;
        let mut err_sum = 0.0;
        for t in 0..trials {
            let hasher = SrpHasher::dense(64, d, &mut rng.fork(t));
            let a = rng.normal_vec(d);
            let b = rng.normal_vec(d);
            let true_angle = ops::angle_between(&a, &b);
            let est = estimate_angle(hasher.hash(&a).hamming(&hasher.hash(&b)), 64);
            err_sum += est - true_angle;
        }
        let bias = err_sum / trials as f64;
        assert!(bias.abs() < 0.05, "estimator bias {bias}");
    }

    #[test]
    fn kronecker_hash_quality_matches_dense() {
        // Mean absolute angle-estimation error of the Kronecker-structured
        // orthogonal projection must be statistically indistinguishable from
        // the dense orthogonal projection.
        let mut rng = SeededRng::new(4);
        let d = 64;
        let trials = 150;
        let mut dense_err = 0.0;
        let mut kron_err = 0.0;
        for t in 0..trials {
            let mut fork = rng.fork(t);
            let dense = SrpHasher::dense(64, d, &mut fork);
            let kron = SrpHasher::kronecker_three_way(d, &mut fork);
            let a = rng.normal_vec(d);
            let b = rng.normal_vec(d);
            let truth = ops::angle_between(&a, &b);
            dense_err +=
                (estimate_angle(dense.hash(&a).hamming(&dense.hash(&b)), 64) - truth).abs();
            kron_err +=
                (estimate_angle(kron.hash(&a).hamming(&kron.hash(&b)), 64) - truth).abs();
        }
        dense_err /= trials as f64;
        kron_err /= trials as f64;
        assert!(
            (dense_err - kron_err).abs() < 0.05,
            "dense {dense_err} vs kronecker {kron_err}"
        );
    }

    #[test]
    fn orthogonal_beats_gaussian_variance() {
        // §III-B: orthogonal projections reduce estimator error vs plain SRP.
        let mut rng = SeededRng::new(5);
        let d = 64;
        let trials = 400;
        let mut ortho_sq = 0.0;
        let mut gauss_sq = 0.0;
        for t in 0..trials {
            let mut fork = rng.fork(t);
            let ortho = SrpHasher::dense(64, d, &mut fork);
            let gauss = SrpHasher::dense_gaussian(64, d, &mut fork);
            let a = rng.normal_vec(d);
            let b = rng.normal_vec(d);
            let truth = ops::angle_between(&a, &b);
            let eo = estimate_angle(ortho.hash(&a).hamming(&ortho.hash(&b)), 64) - truth;
            let eg = estimate_angle(gauss.hash(&a).hamming(&gauss.hash(&b)), 64) - truth;
            ortho_sq += eo * eo;
            gauss_sq += eg * eg;
        }
        assert!(
            ortho_sq < gauss_sq,
            "orthogonal MSE {ortho_sq} should beat gaussian MSE {gauss_sq}"
        );
    }

    #[test]
    fn kronecker_multiplication_counts() {
        let mut rng = SeededRng::new(6);
        assert_eq!(SrpHasher::kronecker_three_way(64, &mut rng).multiplication_count(), 768);
        assert_eq!(SrpHasher::kronecker_two_way(64, &mut rng).multiplication_count(), 1024);
        assert_eq!(SrpHasher::dense(64, 64, &mut rng).multiplication_count(), 4096);
    }

    #[test]
    fn hash_rows_matches_single_hash() {
        let mut rng = SeededRng::new(7);
        let hasher = SrpHasher::kronecker_two_way(16, &mut rng);
        let m = Matrix::from_fn(5, 16, |_, _| rng.standard_normal() as f32);
        let hashes = hasher.hash_rows(&m);
        for (r, h) in hashes.iter().enumerate() {
            assert_eq!(*h, hasher.hash(m.row(r)));
        }
    }

    #[test]
    fn k_not_equal_d_supported() {
        let mut rng = SeededRng::new(8);
        // k = 32 bits from d = 64 inputs via (4x8)⊗(8x8) factors.
        let hasher = SrpHasher::kronecker(&[(4, 8), (8, 8)], &mut rng);
        assert_eq!(hasher.k(), 32);
        assert_eq!(hasher.dim(), 64);
        let h = hasher.hash(&rng.normal_vec(64));
        assert_eq!(h.len(), 32);
    }

    #[test]
    fn binary_hash_bit_access_and_words() {
        let bits: Vec<bool> = (0..70).map(|i| i % 3 == 0).collect();
        let h = BinaryHash::from_bits(&bits);
        assert_eq!(h.len(), 70);
        assert_eq!(h.as_words().len(), 2);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(h.bit(i), b);
        }
    }

    #[test]
    fn sign_convention_zero_is_positive() {
        let h = BinaryHash::from_signs(&[0.0, -0.0, 1.0, -1.0]);
        assert!(h.bit(0)); // 0.0 >= 0
        assert!(h.bit(1)); // -0.0 >= 0 in IEEE comparison
        assert!(h.bit(2));
        assert!(!h.bit(3));
    }

    #[test]
    fn formatting_impls() {
        let h = BinaryHash::from_bits(&[true, false, true, true]);
        assert_eq!(format!("{h}"), "1011");
        assert_eq!(format!("{h:b}"), "1011");
        let hex = format!("{h:x}");
        assert_eq!(hex.len(), 16);
        assert!(hex.starts_with("000000000000000d")); // bits 0,2,3 -> 0b1101 = 0xd
    }

    #[test]
    #[should_panic(expected = "hash length mismatch")]
    fn hamming_rejects_length_mismatch() {
        let a = BinaryHash::from_bits(&[true; 8]);
        let b = BinaryHash::from_bits(&[true; 16]);
        let _ = a.hamming(&b);
    }

    #[test]
    fn dense_projection_of_kronecker_matches_apply() {
        let mut rng = SeededRng::new(9);
        let hasher = SrpHasher::kronecker_three_way(64, &mut rng);
        let dense = hasher.dense_projection();
        let x = rng.normal_vec(64);
        let via_dense: Vec<f32> =
            (0..64).map(|r| ops::dot(dense.row(r), &x) as f32).collect();
        let via_fast = hasher.project(&x);
        for (a, b) in via_dense.iter().zip(&via_fast) {
            assert!((a - b).abs() < 1e-3);
        }
    }
}
