//! Approximate similarity computation (§III-D).
//!
//! For a query `Q_x` and key `K_y`, the approximate (query-normalized)
//! similarity is
//!
//! ```text
//! Sim(Q_x/‖Q_x‖, K_y) ≈ ‖K_y‖ · cos(max(0, π/k·hamming(h(Q_x), h(K_y)) − θ_bias))
//! ```
//!
//! which estimates the dot product between the *normalized* query and the
//! key. Normalizing by the query is free at selection time because the same
//! query norm scales every key's similarity equally — it cancels against the
//! threshold, which was learned in the same normalized space.

use elsa_numeric::CosLut;

use crate::hashing::BinaryHash;

/// Computes the approximate similarity from a Hamming distance, a key norm,
/// and the correction bias — the arithmetic path of the candidate selection
/// module without the lookup table.
#[must_use]
pub fn approximate_similarity(hamming: usize, k: usize, key_norm: f64, theta_bias: f64) -> f64 {
    let angle = (std::f64::consts::PI * hamming as f64 / k as f64 - theta_bias).max(0.0);
    key_norm * angle.cos()
}

/// The LUT-based evaluator the hardware uses: `cos(max(0, π/k·h − θ_bias))`
/// is precomputed for every possible Hamming distance (`k + 1` entries), so
/// the per-key work is one table read and one multiply (§IV-C).
///
/// # Examples
///
/// ```
/// use elsa_core::similarity::SimilarityLut;
/// use elsa_core::BinaryHash;
///
/// let lut = SimilarityLut::new(4, 0.0);
/// let q = BinaryHash::from_bits(&[true, true, false, false]);
/// let k = BinaryHash::from_bits(&[true, false, false, false]);
/// let sim = lut.similarity(&q, &k, 2.0);
/// // hamming = 1, angle = pi/4, cos = √2/2, × norm 2
/// assert!((sim - std::f64::consts::SQRT_2).abs() < 1e-9);
/// ```
#[derive(Debug, Clone)]
pub struct SimilarityLut {
    cos: CosLut,
}

impl SimilarityLut {
    /// Builds the evaluator for hash length `k` and bias `theta_bias`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize, theta_bias: f64) -> Self {
        Self { cos: CosLut::new(k, theta_bias) }
    }

    /// Hash length `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.cos.hash_length()
    }

    /// The bias baked into the table.
    #[must_use]
    pub fn theta_bias(&self) -> f64 {
        self.cos.theta_bias()
    }

    /// Approximate similarity between hashed query and key
    /// (`‖K_y‖ · cosLUT[hamming]`).
    ///
    /// # Panics
    ///
    /// Panics if the hash lengths differ from `k`.
    #[must_use]
    pub fn similarity(&self, query_hash: &BinaryHash, key_hash: &BinaryHash, key_norm: f64) -> f64 {
        assert_eq!(query_hash.len(), self.k(), "query hash length mismatch");
        let h = query_hash.hamming(key_hash);
        self.cos.value(h) * key_norm
    }

    /// The table value for a raw Hamming distance (used by the cycle-level
    /// simulator, which tracks Hamming distances directly).
    #[must_use]
    pub fn cos_of_hamming(&self, hamming: usize) -> f64 {
        self.cos.value(hamming)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashing::SrpHasher;
    use elsa_linalg::{ops, SeededRng};

    #[test]
    fn lut_matches_direct_formula() {
        let k = 64;
        let bias = 0.127;
        let lut = SimilarityLut::new(k, bias);
        for h in 0..=k {
            let direct = approximate_similarity(h, k, 3.5, bias);
            assert!((lut.cos_of_hamming(h) * 3.5 - direct).abs() < 1e-12);
        }
    }

    #[test]
    fn similarity_tracks_true_normalized_dot_product() {
        // The approximation should correlate strongly with (q/|q|)·k over
        // random pairs; with θ_bias it should mostly over-estimate.
        let mut rng = SeededRng::new(13);
        let d = 64;
        let hasher = SrpHasher::dense(64, d, &mut rng);
        let lut = SimilarityLut::new(64, crate::THETA_BIAS_D64_K64);
        let mut over = 0;
        let trials = 500;
        let mut abs_err = 0.0;
        for _ in 0..trials {
            let q = rng.normal_vec(d);
            let key = rng.normal_vec(d);
            let qn = ops::norm(&q);
            let truth = ops::dot(&q, &key) / qn;
            let approx = lut.similarity(&hasher.hash(&q), &hasher.hash(&key), ops::norm(&key));
            if approx >= truth {
                over += 1;
            }
            abs_err += (approx - truth).abs();
        }
        let over_frac = f64::from(over) / f64::from(trials);
        assert!(over_frac > 0.6, "over-estimation fraction {over_frac}");
        // Mean absolute error is small relative to the key norm scale (~8).
        assert!(abs_err / f64::from(trials) < 2.0);
    }

    #[test]
    fn zero_norm_key_has_zero_similarity() {
        let lut = SimilarityLut::new(8, 0.1);
        let h = BinaryHash::from_bits(&[true; 8]);
        assert_eq!(lut.similarity(&h, &h, 0.0), 0.0);
    }

    #[test]
    fn similarity_decreases_with_hamming() {
        let lut = SimilarityLut::new(64, 0.127);
        let mut prev = f64::INFINITY;
        for h in 0..=40 {
            // restrict to angles < pi where cos is decreasing
            let v = lut.cos_of_hamming(h);
            assert!(v <= prev + 1e-12, "not nonincreasing at {h}");
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "query hash length mismatch")]
    fn rejects_wrong_hash_length() {
        let lut = SimilarityLut::new(16, 0.0);
        let h = BinaryHash::from_bits(&[true; 8]);
        let _ = lut.similarity(&h, &h, 1.0);
    }
}
