//! The ELSA approximate self-attention algorithm (§III of the paper).
//!
//! The pipeline, exactly as the paper describes it:
//!
//! 1. **Binary hashing** ([`hashing`]) — every key and query is mapped to a
//!    `k`-bit sign-random-projection hash using *orthogonal* projections,
//!    computed efficiently through a Kronecker-structured transform
//!    (`3·d^{4/3}` multiplies instead of `k·d`).
//! 2. **Angle estimation with bias correction** ([`calibration`]) — the
//!    Hamming distance between two hashes estimates the angle
//!    `θ ≈ π/k · hamming`; a bias `θ_bias` (the 80th-percentile estimator
//!    error on synthetic `N(0,1)` data — `0.127` for `d = k = 64`) is
//!    subtracted so the similarity is *under*-estimated in only ~20% of
//!    cases, protecting recall of relevant keys.
//! 3. **Approximate similarity** ([`similarity`]) —
//!    `‖K_y‖ · cos(max(0, π/k·hamming − θ_bias))` estimates the dot product
//!    between the *normalized* query and the key.
//! 4. **Learned candidate threshold** ([`threshold`]) — a single user
//!    hyperparameter `p` (degree of approximation) is translated into a
//!    per-(sub-)layer threshold `t` by inspecting softmax scores on a
//!    training set; at inference a key is selected iff its approximate
//!    similarity exceeds `t·‖K_max‖`.
//! 5. **Candidate-restricted attention** ([`attention`]) — exact attention
//!    is computed over the selected keys only.
//!
//! [`session`] adds a streaming query-at-a-time API (matching the hardware
//! flow) with bounded/causal selection for autoregressive models, including
//! an append-only [`session::StreamingSession`] that extends hashes/norms
//! per decoded token instead of re-preprocessing the whole context.
//!
//! # Examples
//!
//! ```
//! use elsa_core::attention::{ElsaAttention, ElsaParams};
//! use elsa_attention::{exact, AttentionInputs};
//! use elsa_linalg::{Matrix, SeededRng};
//!
//! let mut rng = SeededRng::new(7);
//! let n = 64;
//! let d = 64;
//! let q = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
//! let k = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
//! let v = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
//! let inputs = AttentionInputs::new(q, k, v);
//!
//! // Learn the layer threshold on (here: the same) data with p = 1.0,
//! // then run the approximate operator.
//! let params = ElsaParams::for_dims(d, 64, &mut rng);
//! let elsa = ElsaAttention::learn(params, &[inputs.clone()], 1.0);
//! let (out, stats) = elsa.forward(&inputs);
//! assert_eq!(out.rows(), n);
//! assert!(stats.candidate_fraction() <= 1.0);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod attention;
pub mod calibration;
pub mod hashing;
pub mod sanity;
pub mod session;
pub mod similarity;
pub mod threshold;

pub use attention::{ElsaAttention, ElsaParams, SelectionStats};
pub use hashing::{BinaryHash, SrpHasher};
pub use sanity::{check_candidates, first_non_finite, CandidateFault};
pub use session::{ElsaSession, StreamingSession};
pub use threshold::ThresholdLearner;

/// The paper's reference angle-correction bias for `d = 64`, `k = 64`
/// (§III-B: "For a specific case d = 64 and k = 64, θ_bias is 0.127").
pub const THETA_BIAS_D64_K64: f64 = 0.127;
