//! Transformer-layer substrate: layer norm, feed-forward network, and the
//! encoder layer combining them with multi-head attention.
//!
//! The evaluation in the paper varies the FFN dimension (Fig. 2 shows the
//! self-attention runtime share growing as FFN width shrinks, per Wu et al.'s
//! *Lite Transformer* observation), so the layer is parameterized by an
//! explicit [`TransformerConfig`] rather than hard-coding BERT shapes.

use elsa_linalg::{Matrix, SeededRng};

use crate::multihead::MultiHeadAttention;

/// Static shape description of a transformer encoder stack — everything the
/// FLOP model and the workload generators need to know about a model.
///
/// # Examples
///
/// ```
/// use elsa_attention::TransformerConfig;
///
/// let bert_large = TransformerConfig::new(24, 1024, 16, 4096, 512);
/// assert_eq!(bert_large.d_head(), 64);
/// assert_eq!(bert_large.attention_sublayers(), 24 * 16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransformerConfig {
    /// Number of encoder layers.
    pub num_layers: usize,
    /// Model (hidden) dimension.
    pub d_model: usize,
    /// Number of attention heads per layer.
    pub num_heads: usize,
    /// Feed-forward inner dimension.
    pub d_ff: usize,
    /// Maximum sequence length the model is configured for.
    pub max_seq_len: usize,
}

impl TransformerConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any field is zero or `d_model` is not divisible by
    /// `num_heads`.
    #[must_use]
    pub fn new(
        num_layers: usize,
        d_model: usize,
        num_heads: usize,
        d_ff: usize,
        max_seq_len: usize,
    ) -> Self {
        assert!(num_layers > 0 && d_model > 0 && num_heads > 0 && d_ff > 0 && max_seq_len > 0);
        assert_eq!(d_model % num_heads, 0, "d_model must be divisible by num_heads");
        Self { num_layers, d_model, num_heads, d_ff, max_seq_len }
    }

    /// Per-head dimension `d = d_model / num_heads`.
    #[must_use]
    pub const fn d_head(&self) -> usize {
        self.d_model / self.num_heads
    }

    /// Total number of self-attention sub-layers (`layers × heads`) — the
    /// granularity at which ELSA learns thresholds (384 for BERT-large).
    #[must_use]
    pub const fn attention_sublayers(&self) -> usize {
        self.num_layers * self.num_heads
    }

    /// Returns a copy with the FFN dimension scaled by `factor` (used for
    /// the Fig. 2 `FFN/4` variants). The result is clamped to at least 1.
    #[must_use]
    pub fn with_ffn_scaled(&self, factor: f64) -> Self {
        let d_ff = ((self.d_ff as f64 * factor).round() as usize).max(1);
        Self { d_ff, ..*self }
    }

    /// Returns a copy with the maximum sequence length scaled by `factor`
    /// (used for the Fig. 2 `4× sequence length` variants).
    #[must_use]
    pub fn with_seq_len_scaled(&self, factor: f64) -> Self {
        let max_seq_len = ((self.max_seq_len as f64 * factor).round() as usize).max(1);
        Self { max_seq_len, ..*self }
    }
}

/// Layer normalization with learned scale and bias.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gamma: Vec<f32>,
    beta: Vec<f32>,
    eps: f32,
}

impl LayerNorm {
    /// Identity-initialized layer norm over `dim` features.
    ///
    /// # Panics
    ///
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        Self { gamma: vec![1.0; dim], beta: vec![0.0; dim], eps: 1e-5 }
    }

    /// Normalizes each row of `x` to zero mean / unit variance, then applies
    /// the affine parameters.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != dim`.
    #[must_use]
    pub fn forward(&self, x: &Matrix) -> Matrix {
        assert_eq!(x.cols(), self.gamma.len(), "layer norm dimension mismatch");
        let d = x.cols();
        let mut out = Matrix::zeros(x.rows(), d);
        for r in 0..x.rows() {
            let row = x.row(r);
            let mean = row.iter().map(|&v| f64::from(v)).sum::<f64>() / d as f64;
            let var =
                row.iter().map(|&v| (f64::from(v) - mean).powi(2)).sum::<f64>() / d as f64;
            let inv = 1.0 / (var + f64::from(self.eps)).sqrt();
            let dst = out.row_mut(r);
            for i in 0..d {
                dst[i] = (((f64::from(row[i]) - mean) * inv) as f32) * self.gamma[i] + self.beta[i];
            }
        }
        out
    }
}

/// GELU activation (tanh approximation, as used by BERT).
#[must_use]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044_715 * x * x * x)).tanh())
}

/// A position-wise feed-forward network: `GELU(x·W₁ + b₁)·W₂ + b₂`.
#[derive(Debug, Clone)]
pub struct FeedForward {
    w1: Matrix,
    b1: Vec<f32>,
    w2: Matrix,
    b2: Vec<f32>,
}

impl FeedForward {
    /// Random Gaussian initialization scaled by `1/√fan_in`.
    #[must_use]
    pub fn random(d_model: usize, d_ff: usize, rng: &mut SeededRng) -> Self {
        let s1 = 1.0 / (d_model as f64).sqrt();
        let s2 = 1.0 / (d_ff as f64).sqrt();
        Self {
            w1: Matrix::from_fn(d_model, d_ff, |_, _| (rng.standard_normal() * s1) as f32),
            b1: vec![0.0; d_ff],
            w2: Matrix::from_fn(d_ff, d_model, |_, _| (rng.standard_normal() * s2) as f32),
            b2: vec![0.0; d_model],
        }
    }

    /// Applies the network row-wise.
    #[must_use]
    pub fn forward(&self, x: &Matrix) -> Matrix {
        let mut h = x.matmul(&self.w1);
        for r in 0..h.rows() {
            for (v, b) in h.row_mut(r).iter_mut().zip(&self.b1) {
                *v = gelu(*v + b);
            }
        }
        let mut out = h.matmul(&self.w2);
        for r in 0..out.rows() {
            for (v, b) in out.row_mut(r).iter_mut().zip(&self.b2) {
                *v += b;
            }
        }
        out
    }
}

/// One transformer encoder layer: post-norm residual attention followed by a
/// post-norm residual FFN (the BERT arrangement).
#[derive(Debug, Clone)]
pub struct TransformerLayer {
    attention: MultiHeadAttention,
    ffn: FeedForward,
    norm1: LayerNorm,
    norm2: LayerNorm,
}

impl TransformerLayer {
    /// Builds a randomly initialized layer matching `config`.
    #[must_use]
    pub fn random(config: &TransformerConfig, rng: &mut SeededRng) -> Self {
        Self {
            attention: MultiHeadAttention::random(
                config.d_model,
                config.num_heads,
                config.d_head(),
                rng,
            ),
            ffn: FeedForward::random(config.d_model, config.d_ff, rng),
            norm1: LayerNorm::new(config.d_model),
            norm2: LayerNorm::new(config.d_model),
        }
    }

    /// Builds a layer whose attention uses symmetric projections
    /// (`W_K = W_Q`, see [`MultiHeadAttention::random_symmetric`]) with the
    /// given gain — preserves content-similarity structure through deep
    /// stacks.
    #[must_use]
    pub fn random_symmetric(config: &TransformerConfig, gain: f64, rng: &mut SeededRng) -> Self {
        Self {
            attention: MultiHeadAttention::random_symmetric(
                config.d_model,
                config.num_heads,
                config.d_head(),
                gain,
                rng,
            ),
            ffn: FeedForward::random(config.d_model, config.d_ff, rng),
            norm1: LayerNorm::new(config.d_model),
            norm2: LayerNorm::new(config.d_model),
        }
    }

    /// The attention block (exposed so workloads can extract per-head QKV).
    #[must_use]
    pub fn attention(&self) -> &MultiHeadAttention {
        &self.attention
    }

    /// Full forward pass with the exact attention kernel.
    #[must_use]
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_with(x, crate::exact::scaled_attention)
    }

    /// Forward pass with a caller-supplied attention kernel — the seam the
    /// ELSA approximation plugs into at the model level.
    #[must_use]
    pub fn forward_with(
        &self,
        x: &Matrix,
        kernel: impl FnMut(&crate::exact::AttentionInputs) -> Matrix,
    ) -> Matrix {
        let attn = self.attention.forward_with(x, kernel);
        let res1 = add(x, &attn);
        let h = self.norm1.forward(&res1);
        let ff = self.ffn.forward(&h);
        let res2 = add(&h, &ff);
        self.norm2.forward(&res2)
    }
}

fn add(a: &Matrix, b: &Matrix) -> Matrix {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()));
    Matrix::from_fn(a.rows(), a.cols(), |r, c| a[(r, c)] + b[(r, c)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_invariants() {
        let c = TransformerConfig::new(24, 1024, 16, 4096, 512);
        assert_eq!(c.d_head(), 64);
        assert_eq!(c.attention_sublayers(), 384); // the BERT-large number from §III-E
        assert_eq!(c.with_ffn_scaled(0.25).d_ff, 1024);
        assert_eq!(c.with_seq_len_scaled(4.0).max_seq_len, 2048);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn config_rejects_indivisible_heads() {
        let _ = TransformerConfig::new(1, 100, 3, 128, 32);
    }

    #[test]
    fn layer_norm_normalizes() {
        let ln = LayerNorm::new(4);
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let y = ln.forward(&x);
        let mean: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        let var: f32 = y.row(0).iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 4.0;
        assert!(mean.abs() < 1e-5);
        assert!((var - 1.0).abs() < 1e-3);
    }

    #[test]
    fn layer_norm_constant_row_is_finite() {
        let ln = LayerNorm::new(3);
        let y = ln.forward(&Matrix::from_rows(&[&[5.0, 5.0, 5.0]]));
        assert!(y.row(0).iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gelu_known_values() {
        assert_eq!(gelu(0.0), 0.0);
        assert!((gelu(1.0) - 0.8412).abs() < 1e-3);
        assert!(gelu(-10.0).abs() < 1e-3);
        assert!((gelu(10.0) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn ffn_shapes() {
        let mut rng = SeededRng::new(5);
        let ffn = FeedForward::random(16, 64, &mut rng);
        let x = Matrix::from_fn(3, 16, |_, _| rng.standard_normal() as f32);
        let y = ffn.forward(&x);
        assert_eq!((y.rows(), y.cols()), (3, 16));
    }

    #[test]
    fn layer_forward_is_finite_and_shaped() {
        let mut rng = SeededRng::new(6);
        let config = TransformerConfig::new(1, 32, 2, 64, 16);
        let layer = TransformerLayer::random(&config, &mut rng);
        let x = Matrix::from_fn(10, 32, |_, _| rng.standard_normal() as f32);
        let y = layer.forward(&x);
        assert_eq!((y.rows(), y.cols()), (10, 32));
        assert!(y.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn layer_forward_with_custom_kernel_differs() {
        let mut rng = SeededRng::new(7);
        let config = TransformerConfig::new(1, 32, 2, 64, 16);
        let layer = TransformerLayer::random(&config, &mut rng);
        let x = Matrix::from_fn(8, 32, |_, _| rng.standard_normal() as f32);
        let exact = layer.forward(&x);
        let zeroed = layer.forward_with(&x, |inputs| {
            Matrix::zeros(inputs.num_queries(), inputs.value().cols())
        });
        assert!(exact.max_abs_diff(&zeroed) > 1e-4);
    }
}
