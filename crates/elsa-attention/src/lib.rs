//! Exact self-attention and the transformer substrate.
//!
//! This crate is the *ground truth* of the reproduction: the textbook
//! `softmax(QKᵀ)·V` operator of §II-A, computed in `f32` with `f64`
//! accumulation, plus the surrounding transformer machinery (multi-head
//! projection, feed-forward network, layer norm) needed to build
//! BERT/RoBERTa/ALBERT/SASRec/BERT4Rec-shaped workloads and to count the
//! FLOPs that the GPU/TPU baseline models and Fig. 2 rely on.
//!
//! The approximation in `elsa-core` and the hardware datapath in `elsa-sim`
//! are both judged against the outputs produced here.
//!
//! # Examples
//!
//! ```
//! use elsa_attention::exact::{self, AttentionInputs};
//! use elsa_linalg::Matrix;
//!
//! let n = 4;
//! let d = 8;
//! let q = Matrix::from_fn(n, d, |r, c| ((r + c) % 3) as f32);
//! let k = q.clone();
//! let v = Matrix::from_fn(n, d, |r, _| r as f32);
//! let inputs = AttentionInputs::new(q, k, v);
//! let out = exact::attention(&inputs);
//! assert_eq!(out.rows(), n);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod exact;
pub mod flash;
pub mod flops;
pub mod multihead;
pub mod transformer;

pub use exact::AttentionInputs;
pub use multihead::MultiHeadAttention;
pub use transformer::{LayerNorm, TransformerConfig, TransformerLayer};
