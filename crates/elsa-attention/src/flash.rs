//! Tiled online-softmax **exact** attention — the FlashAttention-class
//! streaming kernel (Dao et al. 2022; modeled in hardware by H-FA and
//! Low-Cost FlashAttention, see `PAPERS.md`).
//!
//! [`flash_attention`] computes the same `softmax(QKᵀ·scale)·V` operator as
//! [`exact::attention_with_scale`](crate::exact::attention_with_scale), but
//! never materializes the `n_q × n` score matrix: each query row streams over
//! the keys in tiles of [`FlashConfig::tile`], maintaining a **running
//! maximum** and a **running sum of exponentials** across tiles, and then
//! accumulates the weighted value sum in a single `d_v`-wide register file.
//! Peak workspace is `O(n + d_v)` per active query row
//! ([`streaming_workspace_bytes`]) against the naive kernel's `O(n_q · n)`
//! score matrix ([`naive_workspace_bytes`]) — the reason the serving stack's
//! graceful-degradation path uses this kernel as its memory-light exact
//! fallback (`elsa-runtime::failover`, `elsa-serve`).
//!
//! # Numerical contract: 0 ulp, proven by schedule equality
//!
//! The classic single-pass FlashAttention recurrence *rescales* the running
//! sum and output accumulator by `exp(m_old − m_new)` whenever a later tile
//! raises the running maximum. That rescaling multiply rounds differently
//! for every tile size, so a kernel built on it can only ever be
//! "close to" the reference — and bit-stability across tile sizes (the
//! repo-wide determinism contract) would be unprovable.
//!
//! This kernel instead uses the *deferred-renormalization* (lazy-softmax)
//! schedule: the running maximum is folded to completion across all tiles
//! **before** any exponential is taken, so no accumulator is ever rescaled.
//! Every scalar operation is then literally the same operation, in the same
//! order, at the same precision as the naive pipeline
//! (`matmul_transpose_b → scale → softmax_in_place → matmul`):
//!
//! 1. `s_j = (Σ_k f64(q_k)·f64(K_jk)) as f32 · scale` — `f64`-accumulated
//!    dot in key order, cast, one `f32` scale multiply;
//! 2. `m = fold(-∞, f32::max)` over `s_0..s_{n-1}` in key order;
//! 3. `e_j = exp(f64(s_j − m))`, stored as `f32`; the running sum
//!    accumulates the *unrounded* `f64` exponentials in key order;
//! 4. `inv = (1/sum) as f32`; `w_j = (e_j as f32) · inv` in `f32`;
//! 5. `out_c = (Σ_j f64(w_j)·f64(V_jc)) as f32`, accumulated in key order.
//!
//! Tiling only blocks the loops; it never reassociates an accumulation and
//! never changes an operand. The kernel is therefore **bit-identical for
//! every tile size in `1..=n` and every `ELSA_THREADS`, and bit-identical
//! to the naive kernel** — a worst-case error bound of exactly **0 ulp**,
//! enforced (not just sampled) by `tests/flash_equivalence.rs`.
//!
//! The *cost* of the hardware single-pass schedule — the renormalization
//! multiplies this kernel deliberately defers, and the tile-reload traffic
//! of a fixed-size on-chip buffer — is still charged faithfully by the
//! FLOP/bytes model in [`crate::flops::FlashAttentionOps`] and by the
//! `elsa-baselines` `FlashModel` competitor; the functional kernel and the
//! cost model describe the same design point from the software and hardware
//! sides respectively.
//!
//! # Examples
//!
//! ```
//! use elsa_attention::exact::{self, AttentionInputs};
//! use elsa_attention::flash;
//! use elsa_linalg::{Matrix, SeededRng};
//!
//! let mut rng = SeededRng::new(7);
//! let mut mk = || Matrix::from_fn(33, 16, |_, _| rng.standard_normal() as f32);
//! let inputs = AttentionInputs::new(mk(), mk(), mk());
//!
//! let naive = exact::scaled_attention(&inputs);
//! let tiled = flash::flash_attention(&inputs, 1.0 / 4.0, flash::FlashConfig::new(8));
//! // Bit-identical, not merely close — n = 33 is not even divisible by 8.
//! assert_eq!(naive.as_slice(), tiled.as_slice());
//! ```

use elsa_linalg::{ops, Matrix};

use crate::exact::AttentionInputs;

/// Default key-tile size: matches the 64-row on-chip tile the
/// `elsa-baselines` `FlashModel` hardware competitor buffers, so the
/// software kernel and the cost model describe the same design point.
pub const DEFAULT_TILE: usize = 64;

/// Tiling parameters for the streaming kernel.
///
/// # Examples
///
/// ```
/// use elsa_attention::flash::FlashConfig;
/// assert_eq!(FlashConfig::default().tile, 64);
/// assert_eq!(FlashConfig::new(0).tile, 1); // clamped to at least one key
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashConfig {
    /// Number of keys processed per tile (clamped to `[1, n]` at run time).
    /// The output is bit-identical for every value; the tile only selects
    /// the modeled on-chip working set.
    pub tile: usize,
}

impl FlashConfig {
    /// A config with the given tile size (zero is clamped to one).
    #[must_use]
    pub fn new(tile: usize) -> Self {
        Self { tile: tile.max(1) }
    }
}

impl Default for FlashConfig {
    fn default() -> Self {
        Self { tile: DEFAULT_TILE }
    }
}

/// Tiled online-softmax exact attention `softmax(QKᵀ·scale)·V`.
///
/// Output is bit-identical to
/// [`exact::attention_with_scale`](crate::exact::attention_with_scale) for
/// every tile size and worker count (see the module docs for the proof
/// sketch, and `tests/flash_equivalence.rs` for the enforcement). Query rows
/// fan out over `elsa-parallel` workers; each row's streaming loop is
/// serial, so worker count is unobservable in the result.
#[must_use]
pub fn flash_attention(inputs: &AttentionInputs, scale: f32, config: FlashConfig) -> Matrix {
    let n = inputs.num_keys();
    let d_v = inputs.value().cols();
    let tile = config.tile.clamp(1, n);
    let mut out = Matrix::zeros(inputs.num_queries(), d_v);
    // Work estimate mirrors the naive pipeline's gates: dot products +
    // exponentials + weighted sum per query row.
    let work = inputs
        .num_queries()
        .saturating_mul(n)
        .saturating_mul(inputs.dim() + d_v + 8);
    out.par_rows_mut(work, |i, row| {
        stream_row(inputs, scale, tile, i, row);
    });
    out
}

/// Streaming kernel with the default tile size — the form the serving
/// stack's memory-light exact fallback calls.
#[must_use]
pub fn flash_attention_default(inputs: &AttentionInputs, scale: f32) -> Matrix {
    flash_attention(inputs, scale, FlashConfig::default())
}

/// One query row: three streaming passes over the key tiles, in key order.
fn stream_row(inputs: &AttentionInputs, scale: f32, tile: usize, i: usize, row: &mut [f32]) {
    let n = inputs.num_keys();
    let q = inputs.query().row(i);
    let key = inputs.key();
    let value = inputs.value();

    // Per-row workspace: one f32 lane per key (scores, then exponentials)
    // plus the f64 output accumulator — O(n + d_v), never O(n²).
    let mut lane = vec![0.0f32; n];
    let mut acc = vec![0.0f64; row.len()];

    // Pass 1 — scores and the running maximum, streamed tile by tile.
    // `running_max` after tile t is the online statistic m_t; folding it to
    // completion before pass 2 is the deferred-renormalization schedule.
    let mut running_max = f32::NEG_INFINITY;
    for tile_start in (0..n).step_by(tile) {
        let tile_end = (tile_start + tile).min(n);
        for j in tile_start..tile_end {
            // Same op sequence as matmul_transpose_b (f64 dot, f32 cast)
            // followed by Matrix::scale (f32 multiply).
            let s = (ops::dot(q, key.row(j)) as f32) * scale;
            lane[j] = s;
            running_max = running_max.max(s);
        }
    }

    // A fully masked row (all scores −∞, or NaN-only) is the uniform
    // distribution, exactly as ops::softmax_in_place defines it.
    if running_max == f32::NEG_INFINITY {
        let w = 1.0 / n as f32;
        accumulate_tiles(value, &mut acc, tile, |_| w);
        for (slot, &a) in row.iter_mut().zip(&acc) {
            *slot = a as f32;
        }
        return;
    }

    // Pass 2 — exponentials and the running sum, streamed tile by tile.
    // The sum accumulates the unrounded f64 exponentials in key order; the
    // f32 rounding only affects the stored per-key weight, matching
    // softmax_in_place bit for bit.
    let mut running_sum = 0.0f64;
    for tile_start in (0..n).step_by(tile) {
        let tile_end = (tile_start + tile).min(n);
        for j in tile_start..tile_end {
            let e = f64::from(lane[j] - running_max).exp();
            lane[j] = e as f32;
            running_sum += e;
        }
    }
    let inv = (1.0 / running_sum) as f32;

    // Pass 3 — weighted value sum, streamed tile by tile, f64 accumulation
    // per output column in key order (matmul's exact schedule).
    accumulate_tiles(value, &mut acc, tile, |j| lane[j] * inv);
    for (slot, &a) in row.iter_mut().zip(&acc) {
        *slot = a as f32;
    }
}

/// Streams the value rows tile by tile, adding `weight(j) · V_j` into the
/// f64 accumulator — per-column accumulation order is ascending key order,
/// identical to the naive `S′·V` matmul.
fn accumulate_tiles(value: &Matrix, acc: &mut [f64], tile: usize, weight: impl Fn(usize) -> f32) {
    let n = value.rows();
    for tile_start in (0..n).step_by(tile) {
        let tile_end = (tile_start + tile).min(n);
        for j in tile_start..tile_end {
            let w = weight(j);
            for (a, &v) in acc.iter_mut().zip(value.row(j)) {
                *a += f64::from(w) * f64::from(v);
            }
        }
    }
}

/// Peak per-invocation workspace of the streaming kernel in bytes, with
/// `workers` query rows in flight: each active row holds one `f32` lane per
/// key plus a `d_v`-wide `f64` accumulator. `O(n·d)`-class — linear in `n`.
#[must_use]
pub fn streaming_workspace_bytes(n: usize, d_v: usize, workers: usize) -> u64 {
    workers.max(1) as u64 * (n as u64 * 4 + d_v as u64 * 8)
}

/// Workspace of the naive kernel in bytes: the materialized `n_q × n` `f32`
/// score matrix. `O(n²)` for self-attention.
#[must_use]
pub fn naive_workspace_bytes(num_queries: usize, n: usize) -> u64 {
    num_queries as u64 * n as u64 * 4
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;
    use elsa_linalg::SeededRng;

    fn random_inputs(n_q: usize, n: usize, d: usize, seed: u64) -> AttentionInputs {
        let mut rng = SeededRng::new(seed);
        let q = Matrix::from_fn(n_q, d, |_, _| rng.standard_normal() as f32);
        let k = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let v = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        AttentionInputs::new(q, k, v)
    }

    fn bits(m: &Matrix) -> Vec<u32> {
        m.as_slice().iter().map(|v| v.to_bits()).collect()
    }

    #[test]
    fn bit_identical_to_naive_across_tile_sizes() {
        let inputs = random_inputs(21, 37, 16, 1);
        let naive = exact::attention_with_scale(&inputs, 0.25);
        for tile in [1, 2, 8, 16, 37, 64, 1000] {
            let tiled = flash_attention(&inputs, 0.25, FlashConfig::new(tile));
            assert_eq!(bits(&naive), bits(&tiled), "tile {tile}");
        }
    }

    #[test]
    fn unscaled_matches_naive_attention() {
        let inputs = random_inputs(12, 12, 8, 2);
        assert_eq!(
            bits(&exact::attention(&inputs)),
            bits(&flash_attention_default(&inputs, 1.0))
        );
    }

    #[test]
    fn single_key_copies_value_row() {
        let inputs = random_inputs(3, 1, 8, 3);
        let out = flash_attention(&inputs, 1.0, FlashConfig::new(1));
        for i in 0..3 {
            for (a, b) in out.row(i).iter().zip(inputs.value().row(0)) {
                // softmax over one key is exactly 1.0.
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
    }

    #[test]
    fn fully_masked_row_is_uniform() {
        // Scores overflow f32 to −∞ for every key: q = 3e38·1, k = −3e38·1.
        let d = 4;
        let q = Matrix::from_fn(2, d, |_, _| 3.0e38);
        let k = Matrix::from_fn(5, d, |_, _| -3.0e38);
        let v = Matrix::from_fn(5, 3, |r, c| (r * 3 + c) as f32);
        let inputs = AttentionInputs::new(q, k, v);
        let naive = exact::attention(&inputs);
        for tile in [1, 2, 5, 8] {
            let tiled = flash_attention(&inputs, 1.0, FlashConfig::new(tile));
            assert_eq!(bits(&naive), bits(&tiled), "tile {tile}");
        }
        // And the semantics really is the uniform mixture of value rows.
        let mean: f32 = (0..5).map(|r| inputs.value()[(r, 0)] * 0.2).sum();
        assert!((naive[(0, 0)] - mean).abs() < 1e-5);
    }

    #[test]
    fn rectangular_values_supported() {
        // d_v ≠ d: value width differs from key/query width.
        let mut rng = SeededRng::new(4);
        let q = Matrix::from_fn(5, 8, |_, _| rng.standard_normal() as f32);
        let k = Matrix::from_fn(9, 8, |_, _| rng.standard_normal() as f32);
        let v = Matrix::from_fn(9, 3, |_, _| rng.standard_normal() as f32);
        let inputs = AttentionInputs::new(q, k, v);
        let naive = exact::attention_with_scale(&inputs, 1.0);
        let tiled = flash_attention(&inputs, 1.0, FlashConfig::new(4));
        assert_eq!(bits(&naive), bits(&tiled));
    }

    #[test]
    fn workspace_accounting_is_linear_vs_quadratic() {
        // Streaming: 512·4 + 64·8 bytes per active row.
        assert_eq!(streaming_workspace_bytes(512, 64, 1), 512 * 4 + 64 * 8);
        assert_eq!(streaming_workspace_bytes(512, 64, 4), 4 * (512 * 4 + 64 * 8));
        // Naive: the full score matrix.
        assert_eq!(naive_workspace_bytes(512, 512), 512 * 512 * 4);
        // The asymptotic gap the serving fallback relies on.
        let n = 2048;
        assert!(streaming_workspace_bytes(n, 64, 8) * 64 < naive_workspace_bytes(n, n));
    }

    #[test]
    fn tile_zero_is_clamped() {
        let inputs = random_inputs(4, 6, 8, 5);
        let a = flash_attention(&inputs, 1.0, FlashConfig::new(0));
        let b = flash_attention(&inputs, 1.0, FlashConfig::new(1));
        assert_eq!(bits(&a), bits(&b));
    }
}
