//! The exact self-attention operator (§II-A) and its candidate-restricted
//! variant.
//!
//! Three steps: ① similarity `S = QKᵀ` (optionally scaled by `1/√d`),
//! ② row-wise softmax `S′`, ③ weighted sum `O = S′V`.
//!
//! [`attention_with_candidates`] computes the same operator restricted to a
//! per-query subset of keys — the semantics the ELSA approximation and the
//! hardware's attention computation module implement. With every key selected
//! for every query it is bit-identical to [`attention`], which is one of the
//! crate's invariant tests.

use elsa_linalg::{ops, Matrix};

/// Validated `(Q, K, V)` input triple for one self-attention invocation.
///
/// `Q` is `n_q × d`; `K` and `V` are `n × d`. (Self-attention has `n_q = n`;
/// the type allows `n_q ≠ n` so tests can exercise single-query paths.)
///
/// # Examples
///
/// ```
/// use elsa_attention::AttentionInputs;
/// use elsa_linalg::Matrix;
///
/// let inputs = AttentionInputs::new(Matrix::zeros(3, 8), Matrix::zeros(5, 8), Matrix::zeros(5, 8));
/// assert_eq!(inputs.num_queries(), 3);
/// assert_eq!(inputs.num_keys(), 5);
/// assert_eq!(inputs.dim(), 8);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AttentionInputs {
    query: Matrix,
    key: Matrix,
    value: Matrix,
}

impl AttentionInputs {
    /// Bundles the three matrices, validating their shapes.
    ///
    /// # Panics
    ///
    /// Panics if `key.rows() != value.rows()`, if `query.cols() != key.cols()`,
    /// or if any matrix is empty.
    #[must_use]
    pub fn new(query: Matrix, key: Matrix, value: Matrix) -> Self {
        assert!(query.rows() > 0 && key.rows() > 0, "attention inputs must be nonempty");
        assert_eq!(query.cols(), key.cols(), "query/key dimension mismatch");
        assert_eq!(key.rows(), value.rows(), "key/value row count mismatch");
        Self { query, key, value }
    }

    /// The query matrix (`n_q × d`).
    #[must_use]
    pub fn query(&self) -> &Matrix {
        &self.query
    }

    /// The key matrix (`n × d`).
    #[must_use]
    pub fn key(&self) -> &Matrix {
        &self.key
    }

    /// The value matrix (`n × d_v`).
    #[must_use]
    pub fn value(&self) -> &Matrix {
        &self.value
    }

    /// Number of queries `n_q`.
    #[must_use]
    pub fn num_queries(&self) -> usize {
        self.query.rows()
    }

    /// Number of keys/values `n`.
    #[must_use]
    pub fn num_keys(&self) -> usize {
        self.key.rows()
    }

    /// Head dimension `d` (of queries and keys).
    #[must_use]
    pub fn dim(&self) -> usize {
        self.query.cols()
    }

    /// Truncates to the first `n` keys/values and queries — used to strip the
    /// padding rows that GPU implementations add (§V-C, *Throughput*).
    ///
    /// # Panics
    ///
    /// Panics if `n` exceeds the current sizes or is zero.
    #[must_use]
    pub fn truncated(&self, n: usize) -> Self {
        assert!(n > 0 && n <= self.num_keys() && n <= self.num_queries());
        Self {
            query: self.query.row_slice(0..n),
            key: self.key.row_slice(0..n),
            value: self.value.row_slice(0..n),
        }
    }
}

/// The raw (unnormalized) attention score matrix `S = QKᵀ · scale`.
#[must_use]
pub fn attention_scores(inputs: &AttentionInputs, scale: f32) -> Matrix {
    inputs.query().matmul_transpose_b(inputs.key()).scale(scale)
}

/// Exact *unscaled* self-attention `softmax(QKᵀ)·V`, matching the paper's
/// formulation (ELSA's models fold any `1/√d` scaling into the projections;
/// see [`scaled_attention`] for the scaled variant).
#[must_use]
pub fn attention(inputs: &AttentionInputs) -> Matrix {
    attention_with_scale(inputs, 1.0)
}

/// Exact *scaled* self-attention `softmax(QKᵀ/√d)·V`.
#[must_use]
pub fn scaled_attention(inputs: &AttentionInputs) -> Matrix {
    attention_with_scale(inputs, 1.0 / (inputs.dim() as f32).sqrt())
}

/// Exact self-attention with an arbitrary score scale.
#[must_use]
pub fn attention_with_scale(inputs: &AttentionInputs, scale: f32) -> Matrix {
    let mut scores = attention_scores(inputs, scale);
    softmax_rows(&mut scores);
    scores.matmul(inputs.value())
}

/// Row-wise in-place softmax, fanned out across rows when the matrix is
/// large enough to pay for it. Each row is normalized by the same serial
/// kernel, so results are bit-identical at any worker count.
fn softmax_rows(scores: &mut Matrix) {
    // exp dominates per-element cost; weight it so mid-sized score matrices
    // cross the parallel threshold.
    let work = scores.rows().saturating_mul(scores.cols()).saturating_mul(8);
    scores.par_rows_mut(work, |_, row| ops::softmax_in_place(row));
}

/// The row-wise softmax-normalized score matrix `S′` (kept separate because
/// threshold learning in `elsa-core` inspects it directly).
#[must_use]
pub fn normalized_scores(inputs: &AttentionInputs, scale: f32) -> Matrix {
    let mut scores = attention_scores(inputs, scale);
    softmax_rows(&mut scores);
    scores
}

/// Self-attention restricted to a per-query candidate set: for query `i`,
/// only keys in `candidates[i]` participate in the softmax and the weighted
/// sum — the computation ELSA's attention computation module performs for
/// the keys that survive candidate selection.
///
/// An empty candidate list for a query produces an all-zero output row
/// (callers are expected to guarantee non-empty candidate sets; `elsa-core`
/// always falls back to the top-scoring key).
///
/// # Panics
///
/// Panics if `candidates.len() != inputs.num_queries()` or any index is out
/// of range.
#[must_use]
pub fn attention_with_candidates(
    inputs: &AttentionInputs,
    candidates: &[Vec<usize>],
    scale: f32,
) -> Matrix {
    assert_eq!(
        candidates.len(),
        inputs.num_queries(),
        "one candidate list per query required"
    );
    let n = inputs.num_keys();
    let dv = inputs.value().cols();
    let mut out = Matrix::zeros(inputs.num_queries(), dv);
    // Per-query rows are independent; fan them out when the total candidate
    // volume is large. Each row's computation is the unchanged serial kernel,
    // so the result is bit-identical at any worker count.
    let total_cands: usize = candidates.iter().map(Vec::len).sum();
    let work = total_cands.saturating_mul(inputs.dim() + dv);
    out.par_rows_mut(work, |i, row| {
        let cand = &candidates[i];
        if cand.is_empty() {
            return;
        }
        let q = inputs.query().row(i);
        // ① dot products for candidate keys only.
        let scores: Vec<f32> = cand
            .iter()
            .map(|&j| {
                assert!(j < n, "candidate index {j} out of range ({n} keys)");
                (ops::dot(q, inputs.key().row(j)) * f64::from(scale)) as f32
            })
            .collect();
        // ② softmax over the candidate subset.
        let weights = ops::softmax(&scores);
        // ③ weighted sum of candidate value rows.
        for (&j, &w) in cand.iter().zip(&weights) {
            ops::axpy(w, inputs.value().row(j), row);
        }
    });
    out
}

/// Convenience: the candidate lists that select *every* key for every query.
#[must_use]
pub fn full_candidates(num_queries: usize, num_keys: usize) -> Vec<Vec<usize>> {
    vec![(0..num_keys).collect(); num_queries]
}

/// The causal candidate lists: query `i` may attend keys `0..=i` only — the
/// masking used by autoregressive models and the sequential recommenders
/// (SASRec attends only to *previous* interactions).
#[must_use]
pub fn causal_candidates(num_queries: usize, num_keys: usize) -> Vec<Vec<usize>> {
    (0..num_queries).map(|i| (0..=i.min(num_keys - 1)).collect()).collect()
}

/// Exact *causal* self-attention: `softmax` over keys `0..=i` per query `i`.
#[must_use]
pub fn causal_attention(inputs: &AttentionInputs, scale: f32) -> Matrix {
    let cands = causal_candidates(inputs.num_queries(), inputs.num_keys());
    attention_with_candidates(inputs, &cands, scale)
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsa_linalg::SeededRng;

    fn random_inputs(n: usize, d: usize, seed: u64) -> AttentionInputs {
        let mut rng = SeededRng::new(seed);
        let q = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let k = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let v = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        AttentionInputs::new(q, k, v)
    }

    #[test]
    fn output_shape() {
        let inputs = random_inputs(6, 8, 1);
        let out = attention(&inputs);
        assert_eq!((out.rows(), out.cols()), (6, 8));
    }

    #[test]
    fn output_rows_are_convex_combinations() {
        // With V = identity-like basis rows, each output row equals the
        // softmax weights and must be a probability distribution.
        let mut rng = SeededRng::new(2);
        let n = 5;
        let q = Matrix::from_fn(n, 4, |_, _| rng.standard_normal() as f32);
        let k = Matrix::from_fn(n, 4, |_, _| rng.standard_normal() as f32);
        let v = Matrix::identity(n);
        let out = attention(&AttentionInputs::new(q, k, v));
        for r in 0..n {
            let sum: f32 = out.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(out.row(r).iter().all(|&w| (0.0..=1.0).contains(&w)));
        }
    }

    #[test]
    fn attention_attends_to_matching_key() {
        // Query 0 is strongly aligned with key 2: output ~ value row 2.
        let d = 8;
        let mut k = Matrix::zeros(4, d);
        for j in 0..4 {
            k[(j, j)] = 10.0;
        }
        let mut q = Matrix::zeros(1, d);
        q[(0, 2)] = 10.0;
        let v = Matrix::from_fn(4, 2, |r, _| r as f32);
        let out = attention(&AttentionInputs::new(q, k, v));
        assert!((out[(0, 0)] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn scaled_matches_manual_scale() {
        let inputs = random_inputs(7, 16, 3);
        let scaled = scaled_attention(&inputs);
        let manual = attention_with_scale(&inputs, 1.0 / 4.0);
        assert!(scaled.max_abs_diff(&manual) < 1e-6);
    }

    #[test]
    fn full_candidates_match_dense_attention() {
        let inputs = random_inputs(9, 8, 4);
        let dense = attention(&inputs);
        let cands = full_candidates(9, 9);
        let sparse = attention_with_candidates(&inputs, &cands, 1.0);
        assert!(dense.max_abs_diff(&sparse) < 1e-5);
    }

    #[test]
    fn singleton_candidate_copies_value_row() {
        let inputs = random_inputs(3, 8, 5);
        let cands = vec![vec![2], vec![0], vec![1]];
        let out = attention_with_candidates(&inputs, &cands, 1.0);
        for (i, c) in [2usize, 0, 1].iter().enumerate() {
            for (a, b) in out.row(i).iter().zip(inputs.value().row(*c)) {
                assert!((a - b).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn empty_candidates_zero_row() {
        let inputs = random_inputs(2, 4, 6);
        let out = attention_with_candidates(&inputs, &[vec![], vec![0]], 1.0);
        assert!(out.row(0).iter().all(|&x| x == 0.0));
        assert!(out.row(1).iter().any(|&x| x != 0.0));
    }

    #[test]
    fn candidate_order_is_irrelevant() {
        let full = random_inputs(4, 8, 7);
        let inputs = AttentionInputs::new(
            full.query().row_slice(0..1),
            full.key().clone(),
            full.value().clone(),
        );
        let a = attention_with_candidates(&inputs, &[vec![0, 1, 2]], 1.0);
        let b = attention_with_candidates(&inputs, &[vec![2, 0, 1]], 1.0);
        assert!(a.max_abs_diff(&b) < 1e-5);
    }

    #[test]
    fn normalized_scores_rows_sum_to_one() {
        let inputs = random_inputs(5, 8, 8);
        let s = normalized_scores(&inputs, 1.0);
        for r in 0..5 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn causal_attention_masks_future_keys() {
        let inputs = random_inputs(6, 8, 10);
        let out = causal_attention(&inputs, 1.0);
        // Query 0 sees only key 0: its output is exactly value row 0.
        for (a, b) in out.row(0).iter().zip(inputs.value().row(0)) {
            assert!((a - b).abs() < 1e-6);
        }
        // Last query sees everything: matches dense attention's last row.
        let dense = attention(&inputs);
        for (a, b) in out.row(5).iter().zip(dense.row(5)) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn causal_candidates_are_lower_triangular() {
        let cands = causal_candidates(4, 4);
        assert_eq!(cands[0], vec![0]);
        assert_eq!(cands[2], vec![0, 1, 2]);
        assert_eq!(cands[3].len(), 4);
    }

    #[test]
    fn truncation_strips_padding() {
        let inputs = random_inputs(8, 4, 9);
        let t = inputs.truncated(3);
        assert_eq!(t.num_queries(), 3);
        assert_eq!(t.num_keys(), 3);
        assert_eq!(t.query().row(0), inputs.query().row(0));
    }

    #[test]
    #[should_panic(expected = "query/key dimension mismatch")]
    fn rejects_dimension_mismatch() {
        let _ = AttentionInputs::new(Matrix::zeros(2, 4), Matrix::zeros(2, 8), Matrix::zeros(2, 8));
    }

    #[test]
    #[should_panic(expected = "key/value row count mismatch")]
    fn rejects_row_mismatch() {
        let _ = AttentionInputs::new(Matrix::zeros(2, 4), Matrix::zeros(2, 4), Matrix::zeros(3, 4));
    }
}
