//! Multi-head attention: the per-head projection machinery that surrounds
//! the self-attention kernel inside transformer layers.
//!
//! ELSA accelerates the kernel itself; the projections (`W_Q`, `W_K`, `W_V`,
//! `W_O`) stay on the host device. This module exists so that workloads can
//! run genuine end-to-end transformer forward passes and so FLOP accounting
//! (Fig. 2) can separate projection cost from attention cost.

use elsa_linalg::{Matrix, SeededRng};

use crate::exact::{self, AttentionInputs};

/// A multi-head self-attention block with `h` heads of dimension `d_head`
/// over a model dimension `d_model = h · d_head`.
///
/// # Examples
///
/// ```
/// use elsa_attention::MultiHeadAttention;
/// use elsa_linalg::{Matrix, SeededRng};
///
/// let mha = MultiHeadAttention::random(128, 2, 64, &mut SeededRng::new(0));
/// let x = Matrix::zeros(10, 128);
/// let y = mha.forward(&x);
/// assert_eq!((y.rows(), y.cols()), (10, 128));
/// ```
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    d_model: usize,
    num_heads: usize,
    d_head: usize,
    /// Per-head query/key/value projections, each `d_model × d_head`.
    w_q: Vec<Matrix>,
    w_k: Vec<Matrix>,
    w_v: Vec<Matrix>,
    /// Output projection, `d_model × d_model` (heads concatenated).
    w_o: Matrix,
}

impl MultiHeadAttention {
    /// Builds a block with random Gaussian projections scaled by
    /// `1/√d_model` (Xavier-style), as a stand-in for trained weights.
    ///
    /// # Panics
    ///
    /// Panics if `d_model != num_heads * d_head` or any dimension is zero.
    #[must_use]
    pub fn random(d_model: usize, num_heads: usize, d_head: usize, rng: &mut SeededRng) -> Self {
        assert!(d_model > 0 && num_heads > 0 && d_head > 0);
        assert_eq!(d_model, num_heads * d_head, "d_model must equal num_heads * d_head");
        let scale = 1.0 / (d_model as f64).sqrt();
        let proj = |rng: &mut SeededRng| {
            Matrix::from_fn(d_model, d_head, |_, _| (rng.standard_normal() * scale) as f32)
        };
        let w_q = (0..num_heads).map(|_| proj(rng)).collect();
        let w_k = (0..num_heads).map(|_| proj(rng)).collect();
        let w_v = (0..num_heads).map(|_| proj(rng)).collect();
        let w_o =
            Matrix::from_fn(d_model, d_model, |_, _| (rng.standard_normal() * scale) as f32);
        Self { d_model, num_heads, d_head, w_q, w_k, w_v, w_o }
    }

    /// Builds a block whose key projection equals its query projection
    /// (`W_K = W_Q`), scaled by `gain`. Symmetric projections make the
    /// attention score a true similarity (`(Wx_i)·(Wx_j)`), so structured
    /// inputs produce the peaked, content-based attention patterns trained
    /// models exhibit — useful for multi-layer quality studies where plain
    /// random projections would wash structure out after one layer.
    ///
    /// # Panics
    ///
    /// Panics if `d_model != num_heads * d_head`, any dimension is zero, or
    /// `gain` is not positive.
    #[must_use]
    pub fn random_symmetric(
        d_model: usize,
        num_heads: usize,
        d_head: usize,
        gain: f64,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(gain > 0.0, "gain must be positive");
        let mut block = Self::random(d_model, num_heads, d_head, rng);
        for h in 0..num_heads {
            let scaled = block.w_q[h].scale(gain as f32);
            block.w_q[h] = scaled.clone();
            block.w_k[h] = scaled;
        }
        block
    }

    /// Model dimension.
    #[must_use]
    pub const fn d_model(&self) -> usize {
        self.d_model
    }

    /// Number of heads.
    #[must_use]
    pub const fn num_heads(&self) -> usize {
        self.num_heads
    }

    /// Per-head dimension.
    #[must_use]
    pub const fn d_head(&self) -> usize {
        self.d_head
    }

    /// Projects the input into this head's `(Q, K, V)` triple — the tensors
    /// a host device would hand to the ELSA accelerator.
    ///
    /// # Panics
    ///
    /// Panics if `head >= num_heads` or `x.cols() != d_model`.
    #[must_use]
    pub fn project_head(&self, x: &Matrix, head: usize) -> AttentionInputs {
        assert!(head < self.num_heads, "head {head} out of range");
        assert_eq!(x.cols(), self.d_model, "input dimension mismatch");
        AttentionInputs::new(
            x.matmul(&self.w_q[head]),
            x.matmul(&self.w_k[head]),
            x.matmul(&self.w_v[head]),
        )
    }

    /// Full forward pass: per-head scaled attention, concatenation, output
    /// projection. Heads fan out across worker threads when the block is
    /// large enough (see [`Self::forward_par`]).
    #[must_use]
    pub fn forward(&self, x: &Matrix) -> Matrix {
        self.forward_par(x, exact::scaled_attention)
    }

    /// Forward pass with a thread-safe attention kernel: heads are computed
    /// independently (in parallel when beneficial), then concatenated in head
    /// order. Because every head's computation is the unchanged serial kernel
    /// and the concatenation order is fixed, the output is bit-identical to
    /// the serial [`Self::forward_with`] at any worker count.
    #[must_use]
    pub fn forward_par(
        &self,
        x: &Matrix,
        kernel: impl Fn(&AttentionInputs) -> Matrix + Sync,
    ) -> Matrix {
        let n = x.rows();
        // Projection cost per head: three n×d_model×d_head matmuls.
        let work = self
            .num_heads
            .saturating_mul(3 * n)
            .saturating_mul(self.d_model)
            .saturating_mul(self.d_head);
        let head_outs: Vec<Matrix> = if self.num_heads > 1 && elsa_parallel::beneficial(work) {
            elsa_parallel::par_map_indexed(self.num_heads, |h| kernel(&self.project_head(x, h)))
        } else {
            (0..self.num_heads).map(|h| kernel(&self.project_head(x, h))).collect()
        };
        self.concat_and_project(n, &head_outs)
    }

    /// Forward pass with a caller-supplied attention kernel (exact,
    /// approximate, or hardware-simulated) — the seam where ELSA plugs in.
    /// Accepts stateful (`FnMut`) kernels and therefore always runs heads
    /// serially, in head order; use [`Self::forward_par`] for thread-safe
    /// kernels.
    #[must_use]
    pub fn forward_with(
        &self,
        x: &Matrix,
        mut kernel: impl FnMut(&AttentionInputs) -> Matrix,
    ) -> Matrix {
        let n = x.rows();
        let head_outs: Vec<Matrix> =
            (0..self.num_heads).map(|h| kernel(&self.project_head(x, h))).collect();
        self.concat_and_project(n, &head_outs)
    }

    /// Concatenates per-head outputs (head order) and applies `W_O`.
    fn concat_and_project(&self, n: usize, head_outs: &[Matrix]) -> Matrix {
        let mut concat = Matrix::zeros(n, self.d_model);
        for (h, head_out) in head_outs.iter().enumerate() {
            for r in 0..n {
                let dst = concat.row_mut(r);
                dst[h * self.d_head..(h + 1) * self.d_head].copy_from_slice(head_out.row(r));
            }
        }
        concat.matmul(&self.w_o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut rng = SeededRng::new(1);
        let mha = MultiHeadAttention::random(64, 4, 16, &mut rng);
        let x = Matrix::from_fn(12, 64, |_, _| rng.standard_normal() as f32);
        let y = mha.forward(&x);
        assert_eq!((y.rows(), y.cols()), (12, 64));
    }

    #[test]
    fn forward_with_exact_kernel_matches_forward() {
        let mut rng = SeededRng::new(2);
        let mha = MultiHeadAttention::random(32, 2, 16, &mut rng);
        let x = Matrix::from_fn(6, 32, |_, _| rng.standard_normal() as f32);
        let a = mha.forward(&x);
        let b = mha.forward_with(&x, exact::scaled_attention);
        assert!(a.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn project_head_shapes() {
        let mut rng = SeededRng::new(3);
        let mha = MultiHeadAttention::random(48, 3, 16, &mut rng);
        let x = Matrix::from_fn(5, 48, |_, _| rng.standard_normal() as f32);
        let inputs = mha.project_head(&x, 2);
        assert_eq!(inputs.num_queries(), 5);
        assert_eq!(inputs.dim(), 16);
    }

    #[test]
    fn kernel_substitution_changes_output() {
        let mut rng = SeededRng::new(4);
        let mha = MultiHeadAttention::random(32, 2, 16, &mut rng);
        let x = Matrix::from_fn(6, 32, |_, _| rng.standard_normal() as f32);
        let exact_out = mha.forward(&x);
        // A degenerate kernel (always value row 0) must flow through.
        let degenerate = mha.forward_with(&x, |inputs| {
            Matrix::from_fn(inputs.num_queries(), inputs.value().cols(), |_, c| {
                inputs.value()[(0, c)]
            })
        });
        assert!(exact_out.max_abs_diff(&degenerate) > 1e-4);
    }

    #[test]
    fn symmetric_projections_share_weights() {
        let mut rng = SeededRng::new(9);
        let mha = MultiHeadAttention::random_symmetric(32, 2, 16, 2.0, &mut rng);
        let x = Matrix::from_fn(5, 32, |_, _| rng.standard_normal() as f32);
        for h in 0..2 {
            let inputs = mha.project_head(&x, h);
            assert_eq!(inputs.query(), inputs.key());
        }
    }

    #[test]
    fn symmetric_attention_is_self_peaked_on_clusters() {
        // Two identical tokens must attend to each other strongly.
        let mut rng = SeededRng::new(10);
        let mha = MultiHeadAttention::random_symmetric(32, 2, 16, 3.0, &mut rng);
        let proto = Matrix::from_fn(1, 32, |_, _| rng.standard_normal() as f32);
        let x = Matrix::from_fn(6, 32, |r, c| {
            if r < 2 { proto[(0, c)] * 2.0 } else { rng.standard_normal() as f32 }
        });
        let inputs = mha.project_head(&x, 0);
        let scores = exact::normalized_scores(&inputs, 0.25);
        // Token 0's attention mass on tokens {0, 1} (its twin cluster).
        let mass = scores[(0, 0)] + scores[(0, 1)];
        assert!(mass > 0.6, "cluster mass {mass}");
    }

    #[test]
    #[should_panic(expected = "d_model must equal")]
    fn rejects_bad_head_split() {
        let _ = MultiHeadAttention::random(60, 4, 16, &mut SeededRng::new(0));
    }
}
