//! Operation counting for transformer inference (§II-B, Fig. 2).
//!
//! The cost model distinguishes the *attention kernel* — the `QKᵀ`, softmax
//! and `S′V` steps that ELSA accelerates — from everything else in a layer
//! (QKV/output projections and the FFN), because the paper's Fig. 2 is
//! exactly the ratio between those two quantities and the GPU/TPU baselines
//! are driven by these counts.
//!
//! Conventions: one multiply-accumulate = 2 FLOPs; one exponential/special
//! function = 1 op (a single SFU instruction on GPU).

use crate::transformer::TransformerConfig;

/// FLOP breakdown for a single transformer encoder layer at sequence length
/// `n`.
///
/// # Examples
///
/// ```
/// use elsa_attention::{flops::LayerFlops, TransformerConfig};
///
/// let cfg = TransformerConfig::new(24, 1024, 16, 4096, 512);
/// let layer = LayerFlops::for_layer(&cfg, 512);
/// // The attention kernel is a minority of per-layer FLOPs at n = 512...
/// assert!(layer.attention_kernel() < layer.total() / 2);
/// // ...but grows quadratically with n.
/// let long = LayerFlops::for_layer(&cfg, 2048);
/// assert!(long.attention_kernel() > 15 * layer.attention_kernel());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LayerFlops {
    /// Q, K, V input projections: `3 · n · d_model²` MACs.
    pub qkv_projection: u64,
    /// Similarity computation `QKᵀ` over all heads: `n² · d_model` MACs.
    pub attention_scores: u64,
    /// Softmax: `heads · n²` exponentials plus normalization.
    pub softmax: u64,
    /// Weighted sum `S′V` over all heads: `n² · d_model` MACs.
    pub weighted_sum: u64,
    /// Output projection: `n · d_model²` MACs.
    pub output_projection: u64,
    /// Feed-forward network: `2 · n · d_model · d_ff` MACs.
    pub ffn: u64,
    /// Residual adds + layer norms: `~8 · n · d_model` FLOPs.
    pub other: u64,
}

impl LayerFlops {
    /// Counts FLOPs for one encoder layer of `config` at sequence length `n`.
    #[must_use]
    pub fn for_layer(config: &TransformerConfig, n: usize) -> Self {
        let n = n as u64;
        let dm = config.d_model as u64;
        let dff = config.d_ff as u64;
        let h = config.num_heads as u64;
        Self {
            qkv_projection: 2 * 3 * n * dm * dm,
            attention_scores: 2 * n * n * dm,
            // exp + divide per score entry, per head.
            softmax: 2 * h * n * n,
            weighted_sum: 2 * n * n * dm,
            output_projection: 2 * n * dm * dm,
            ffn: 2 * 2 * n * dm * dff,
            other: 8 * n * dm,
        }
    }

    /// FLOPs of the part ELSA accelerates: scores + softmax + weighted sum.
    #[must_use]
    pub fn attention_kernel(&self) -> u64 {
        self.attention_scores + self.softmax + self.weighted_sum
    }

    /// FLOPs of everything ELSA leaves on the host.
    #[must_use]
    pub fn non_attention(&self) -> u64 {
        self.qkv_projection + self.output_projection + self.ffn + self.other
    }

    /// Total per-layer FLOPs.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.attention_kernel() + self.non_attention()
    }

    /// Fraction of layer FLOPs spent in the attention kernel.
    #[must_use]
    pub fn attention_fraction(&self) -> f64 {
        self.attention_kernel() as f64 / self.total() as f64
    }
}

/// FLOPs for the whole model (all layers) at sequence length `n`.
#[must_use]
pub fn model_flops(config: &TransformerConfig, n: usize) -> LayerFlops {
    let l = LayerFlops::for_layer(config, n);
    let layers = config.num_layers as u64;
    LayerFlops {
        qkv_projection: l.qkv_projection * layers,
        attention_scores: l.attention_scores * layers,
        softmax: l.softmax * layers,
        weighted_sum: l.weighted_sum * layers,
        output_projection: l.output_projection * layers,
        ffn: l.ffn * layers,
        other: l.other * layers,
    }
}

/// MAC count of the ELSA *approximate* attention pipeline for one
/// `n × d` attention head with hash length `k` (3-way Kronecker hashing) and
/// `c̄` average selected candidates per query — the paper's §III-D cost
/// accounting, used to show the algorithmic reduction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ApproxAttentionOps {
    /// Preprocessing: key hashes (`3·n·d^{4/3}`) + key norms (`n·d`).
    pub preprocessing_macs: u64,
    /// Query hashing: `3·n·d^{4/3}`.
    pub query_hash_macs: u64,
    /// Per-pair approximate similarity: Hamming (XOR+popcount, counted as 1
    /// op per pair) + LUT + 1 multiply.
    pub similarity_ops: u64,
    /// Exact attention restricted to candidates: `2·c̄·n·d` MACs.
    pub selected_attention_macs: u64,
}

impl ApproxAttentionOps {
    /// Counts operations for `n` entities of dimension `d`, hash length `k`,
    /// with `avg_candidates` keys surviving selection per query.
    #[must_use]
    pub fn count(n: usize, d: usize, avg_candidates: f64) -> Self {
        let n64 = n as u64;
        let d64 = d as u64;
        let hash = 3 * (d64 as f64).powf(4.0 / 3.0).round() as u64;
        let c = avg_candidates.max(0.0);
        Self {
            preprocessing_macs: n64 * hash + n64 * d64,
            query_hash_macs: n64 * hash,
            similarity_ops: 2 * n64 * n64,
            selected_attention_macs: (2.0 * c * n as f64 * d as f64).round() as u64,
        }
    }

    /// Total operation count.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.preprocessing_macs
            + self.query_hash_macs
            + self.similarity_ops
            + self.selected_attention_macs
    }
}

/// Exact attention MAC count for one head: `2·n²·d` MACs plus `n²` exps.
#[must_use]
pub fn exact_attention_ops(n: usize, d: usize) -> u64 {
    let n = n as u64;
    let d = d as u64;
    2 * n * n * d + n * n
}

/// FLOP/byte accounting for the tiled online-softmax (FlashAttention-class)
/// streaming baseline — the hardware competitor modeled by
/// `elsa-baselines::FlashModel` and implemented functionally by
/// [`crate::flash`].
///
/// Unlike the software kernel (which defers renormalization to stay
/// bit-identical to the naive reference), the *hardware* design point is the
/// true single-pass recurrence, so this count deliberately charges:
///
/// * **Renormalization multiplies** — whenever a later tile raises the
///   running maximum, the running sum (1 multiply) and the `d_v`-wide output
///   accumulator (`d_v` multiplies) are rescaled by `exp(m_old − m_new)`.
///   The worst case — charged here so the competitor can never be
///   undercounted — is a rescale after *every* tile past the first:
///   `n_q · (⌈n/tile⌉ − 1) · (d_v + 2)` FLOPs (the `+2` is the rescale
///   factor's own exponential and the sum update).
/// * **Tile-reload bytes** — for self-attention the K/V stream does not fit
///   on chip, so each of the `⌈n_q/q_tile⌉` query-tile passes re-reads all
///   `n · (d + d_v)` K/V elements from HBM. Only the first pass is compulsory
///   traffic; the rest is tiling overhead, reported separately in
///   [`tile_reload_bytes`](Self::tile_reload_bytes).
///
/// # Examples
///
/// ```
/// use elsa_attention::flops::{exact_attention_ops, FlashAttentionOps};
///
/// let ops = FlashAttentionOps::count(512, 512, 64, 64, 64);
/// // Compute matches the exact kernel to leading order...
/// assert!(ops.total_flops() >= exact_attention_ops(512, 64));
/// // ...and renormalization is charged on top, never hidden.
/// assert!(ops.renorm_flops > 0);
/// // Workspace is O(n·d)-class, not the naive O(n²) score matrix.
/// assert!(ops.workspace_bytes < 512 * 512 * 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlashAttentionOps {
    /// `QKᵀ` scores: `2 · n_q · n · d` FLOPs (f64-accumulated MACs).
    pub score_flops: u64,
    /// Exponentials: one per (query, key) pair, `n_q · n` ops.
    pub exp_ops: u64,
    /// Worst-case online-renormalization cost:
    /// `n_q · (⌈n/tile⌉ − 1) · (d_v + 2)` FLOPs (accumulator + sum rescale
    /// plus the correction factor's exponential, once per tile boundary).
    pub renorm_flops: u64,
    /// Weighted value sum `S′V`: `2 · n_q · n · d_v` FLOPs.
    pub weighted_sum_flops: u64,
    /// Final division (hidden inside the recurrence by FLASH-D, but charged
    /// here): `n_q · (d_v + 1)` FLOPs.
    pub division_flops: u64,
    /// Compulsory HBM traffic: read Q/K/V once, write the output once
    /// (`f32` elements).
    pub hbm_bytes: u64,
    /// Extra K/V re-read traffic from the `⌈n_q/q_tile⌉ − 1` repeat passes
    /// of a fixed-size on-chip query tile.
    pub tile_reload_bytes: u64,
    /// Peak on-chip workspace: one query tile plus running statistics and
    /// the `d_v`-wide accumulators — `O(tile · d)`, independent of `n`.
    pub workspace_bytes: u64,
}

impl FlashAttentionOps {
    /// Counts operations for `n_q` queries over `n` keys of dimension `d`
    /// with value width `d_v`, streaming key tiles of `tile` rows (clamped
    /// to `[1, n]`; the same tile is used for the query dimension).
    #[must_use]
    pub fn count(n_q: usize, n: usize, d: usize, d_v: usize, tile: usize) -> Self {
        let tile = tile.clamp(1, n.max(1));
        let (n_q64, n64, d64, dv64) = (n_q as u64, n as u64, d as u64, d_v as u64);
        let key_tiles = (n as u64).div_ceil(tile as u64);
        let query_passes = (n_q as u64).div_ceil(tile as u64);
        let kv_bytes = n64 * (d64 + dv64) * 4;
        Self {
            score_flops: 2 * n_q64 * n64 * d64,
            exp_ops: n_q64 * n64,
            renorm_flops: n_q64 * key_tiles.saturating_sub(1) * (dv64 + 2),
            weighted_sum_flops: 2 * n_q64 * n64 * dv64,
            division_flops: n_q64 * (dv64 + 1),
            hbm_bytes: n_q64 * d64 * 4 + kv_bytes + n_q64 * dv64 * 4,
            tile_reload_bytes: query_passes.saturating_sub(1) * kv_bytes,
            workspace_bytes: tile as u64 * (d64 + dv64 + 2) * 4 + dv64 * 4,
        }
    }

    /// Total FLOPs (exponentials counted as 1 op, per the crate convention).
    #[must_use]
    pub fn total_flops(&self) -> u64 {
        self.score_flops
            + self.exp_ops
            + self.renorm_flops
            + self.weighted_sum_flops
            + self.division_flops
    }

    /// Total off-chip traffic: compulsory bytes plus tile reloads.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.hbm_bytes + self.tile_reload_bytes
    }

    /// Arithmetic intensity in FLOPs per off-chip byte.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        self.total_flops() as f64 / self.total_bytes() as f64
    }
}

/// Off-chip traffic of the *naive* exact kernel for the same problem: on top
/// of the compulsory Q/K/V/output transfers it spills and re-reads the
/// `n_q × n` `f32` score matrix twice (once after `QKᵀ`, once after softmax)
/// when it exceeds on-chip capacity — the memory term the streaming kernel
/// exists to delete.
#[must_use]
pub fn naive_attention_bytes(n_q: usize, n: usize, d: usize, d_v: usize) -> u64 {
    let (n_q64, n64, d64, dv64) = (n_q as u64, n as u64, d as u64, d_v as u64);
    let io = n_q64 * d64 * 4 + n64 * (d64 + dv64) * 4 + n_q64 * dv64 * 4;
    let score_matrix = n_q64 * n64 * 4;
    io + 4 * score_matrix
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bert_large() -> TransformerConfig {
        TransformerConfig::new(24, 1024, 16, 4096, 512)
    }

    #[test]
    fn attention_fraction_grows_with_n() {
        let cfg = bert_large();
        let f512 = LayerFlops::for_layer(&cfg, 512).attention_fraction();
        let f2048 = LayerFlops::for_layer(&cfg, 2048).attention_fraction();
        assert!(f2048 > f512);
        // Paper Fig. 2: ~38% average at published n rises to ~64% at 4x.
        assert!(f512 > 0.05 && f512 < 0.5, "fraction at 512 = {f512}");
        // (FLOP share; the *runtime* share of Fig. 2 is higher because GPU
        // attention kernels run at lower efficiency than the dense GEMMs.)
        assert!(f2048 > 0.2, "fraction at 2048 = {f2048}");
    }

    #[test]
    fn attention_fraction_grows_when_ffn_shrinks() {
        let cfg = bert_large();
        let slim = cfg.with_ffn_scaled(0.25);
        let f_full = LayerFlops::for_layer(&cfg, 512).attention_fraction();
        let f_slim = LayerFlops::for_layer(&slim, 512).attention_fraction();
        assert!(f_slim > f_full);
    }

    #[test]
    fn model_flops_scale_linearly_in_layers() {
        let cfg = bert_large();
        let one = LayerFlops::for_layer(&cfg, 512).total();
        let all = model_flops(&cfg, 512).total();
        assert_eq!(all, one * 24);
    }

    #[test]
    fn attention_kernel_formula() {
        // n² d MACs for scores and n² d for weighted sum => 4 n² d FLOPs + softmax.
        let cfg = TransformerConfig::new(1, 64, 1, 256, 128);
        let l = LayerFlops::for_layer(&cfg, 128);
        assert_eq!(l.attention_scores, 2 * 128 * 128 * 64);
        assert_eq!(l.weighted_sum, 2 * 128 * 128 * 64);
        assert_eq!(l.softmax, 2 * 128 * 128);
    }

    #[test]
    fn approx_ops_beat_exact_when_candidates_few() {
        let n = 512;
        let d = 64;
        let exact = exact_attention_ops(n, d);
        let approx = ApproxAttentionOps::count(n, d, 0.2 * n as f64);
        assert!(
            approx.total() < exact / 2,
            "approx {} vs exact {exact}",
            approx.total()
        );
    }

    #[test]
    fn approx_preprocessing_matches_paper_formula() {
        // 3 n d^{4/3} + n d multiplications (§III-D).
        let ops = ApproxAttentionOps::count(512, 64, 100.0);
        assert_eq!(ops.preprocessing_macs, 512 * (3 * 256) + 512 * 64);
        assert_eq!(ops.query_hash_macs, 512 * 768);
    }

    #[test]
    fn exact_ops_formula() {
        assert_eq!(exact_attention_ops(128, 64), 2 * 128 * 128 * 64 + 128 * 128);
    }

    #[test]
    fn flash_ops_formulas() {
        let ops = FlashAttentionOps::count(512, 512, 64, 64, 64);
        assert_eq!(ops.score_flops, 2 * 512 * 512 * 64);
        assert_eq!(ops.exp_ops, 512 * 512);
        // 8 key tiles => 7 rescale boundaries of (64 + 2) FLOPs per query.
        assert_eq!(ops.renorm_flops, 512 * 7 * 66);
        assert_eq!(ops.weighted_sum_flops, 2 * 512 * 512 * 64);
        assert_eq!(ops.division_flops, 512 * 65);
        // 8 query passes => 7 full K/V reloads.
        assert_eq!(ops.tile_reload_bytes, 7 * 512 * 128 * 4);
    }

    #[test]
    fn flash_charges_at_least_exact_compute() {
        // The streaming baseline can never be undercounted relative to the
        // naive kernel: same score/sum MACs, renormalization on top.
        for (n, d, tile) in [(128, 64, 8), (512, 64, 64), (200, 64, 64), (33, 16, 8)] {
            let flash = FlashAttentionOps::count(n, n, d, d, tile);
            assert!(
                flash.total_flops() > exact_attention_ops(n, d),
                "n={n} tile={tile}"
            );
        }
    }

    #[test]
    fn flash_single_tile_has_no_renorm_or_reload() {
        // When everything fits in one tile the recurrence never rescales and
        // K/V stream exactly once.
        let ops = FlashAttentionOps::count(128, 128, 64, 64, 128);
        assert_eq!(ops.renorm_flops, 0);
        assert_eq!(ops.tile_reload_bytes, 0);
    }

    #[test]
    fn flash_workspace_independent_of_n() {
        let small = FlashAttentionOps::count(128, 128, 64, 64, 64);
        let large = FlashAttentionOps::count(4096, 4096, 64, 64, 64);
        assert_eq!(small.workspace_bytes, large.workspace_bytes);
        // The naive kernel's traffic includes the O(n²) score-matrix spill.
        assert!(naive_attention_bytes(4096, 4096, 64, 64) > large.total_bytes());
    }

    #[test]
    fn smaller_tiles_cost_more_renorm_and_reload() {
        let coarse = FlashAttentionOps::count(512, 512, 64, 64, 128);
        let fine = FlashAttentionOps::count(512, 512, 64, 64, 8);
        assert!(fine.renorm_flops > coarse.renorm_flops);
        assert!(fine.tile_reload_bytes > coarse.tile_reload_bytes);
        assert!(fine.workspace_bytes < coarse.workspace_bytes);
    }
}
