//! Orthogonal projection sets for sign random projection (§III-B).
//!
//! ELSA uses a variant of SRP whose `k` projection vectors are *orthogonal*
//! rather than independent Gaussian draws: orthogonality prevents two
//! projections from pointing in similar directions (which would over-weight
//! that direction in the Hamming estimate) and provably reduces the angular
//! estimation error (Ji et al., *Super-Bit Locality-Sensitive Hashing*,
//! NeurIPS 2012).
//!
//! The construction is the **modified Gram–Schmidt process** applied to a
//! `k × d` standard-normal matrix. When `k > d` (more hash bits than
//! dimensions) no single orthogonal set exists, so batches of `d` orthogonal
//! vectors are concatenated, each batch drawn independently — exactly the
//! batched scheme the paper cites for that case.

use crate::matrix::Matrix;
use crate::ops;
use crate::rng::SeededRng;

/// Orthonormalizes the rows of `m` in place using modified Gram–Schmidt,
/// returning the number of rows that survived (rows that become numerically
/// zero — linearly dependent inputs — are removed).
///
/// Modified (as opposed to classical) Gram–Schmidt subtracts each projection
/// immediately, which is numerically stable enough for the `64 × 64` sizes
/// used here without re-orthogonalization passes.
#[must_use]
pub fn modified_gram_schmidt(m: &Matrix) -> Matrix {
    let mut rows: Vec<Vec<f32>> = m.iter_rows().map(<[f32]>::to_vec).collect();
    let mut kept: Vec<Vec<f32>> = Vec::with_capacity(rows.len());
    for row in rows.iter_mut() {
        // Subtract components along all previously accepted directions.
        for q in &kept {
            let proj = ops::dot(row, q);
            for (r, &qi) in row.iter_mut().zip(q.iter()) {
                *r -= (proj * f64::from(qi)) as f32;
            }
        }
        let n = ops::norm(row);
        if n > 1e-6 {
            let unit: Vec<f32> = row.iter().map(|&x| (f64::from(x) / n) as f32).collect();
            kept.push(unit);
        }
    }
    let cols = m.cols();
    let flat: Vec<f32> = kept.iter().flatten().copied().collect();
    Matrix::from_vec(kept.len(), cols, flat)
}

/// Draws a `k × d` matrix whose rows are orthonormal projection directions
/// for SRP hashing.
///
/// * `k ≤ d`: a single Gram–Schmidt-orthogonalized Gaussian batch.
/// * `k > d`: `ceil(k/d)` independent orthogonal batches concatenated and
///   truncated to `k` rows (batched super-bit construction).
///
/// # Panics
///
/// Panics if `k == 0` or `d == 0`.
///
/// # Examples
///
/// ```
/// use elsa_linalg::{orthogonal, SeededRng};
/// let mut rng = SeededRng::new(1);
/// let p = orthogonal::random_orthogonal_projections(8, 16, &mut rng);
/// assert_eq!((p.rows(), p.cols()), (8, 16));
/// ```
#[must_use]
pub fn random_orthogonal_projections(k: usize, d: usize, rng: &mut SeededRng) -> Matrix {
    assert!(k > 0 && d > 0, "projection dimensions must be positive");
    let mut out: Option<Matrix> = None;
    let mut remaining = k;
    while remaining > 0 {
        let batch_rows = remaining.min(d);
        // Draw a full d×d batch so the orthogonalization has room, then trim.
        let gauss = Matrix::from_fn(d.min(remaining.max(batch_rows)), d, |_, _| {
            rng.standard_normal() as f32
        });
        let ortho = modified_gram_schmidt(&gauss);
        // In the (probability ~0) event of degenerate draws, retry.
        if ortho.rows() < batch_rows {
            continue;
        }
        let batch = ortho.row_slice(0..batch_rows);
        out = Some(match out {
            None => batch,
            Some(acc) => acc.vstack(&batch),
        });
        remaining -= batch_rows;
    }
    out.expect("k > 0 guarantees at least one batch")
}

/// Draws a `n × n` Haar-like random orthogonal matrix (Gaussian +
/// Gram–Schmidt). Used to build small orthogonal Kronecker factors.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn random_orthogonal_square(n: usize, rng: &mut SeededRng) -> Matrix {
    assert!(n > 0, "matrix size must be positive");
    loop {
        let gauss = Matrix::from_fn(n, n, |_, _| rng.standard_normal() as f32);
        let ortho = modified_gram_schmidt(&gauss);
        if ortho.rows() == n {
            return ortho;
        }
    }
}

/// Measures how far `m · mᵀ` deviates from identity — the orthogonality
/// residual (max absolute entry of `m·mᵀ − I`). Useful for tests and for
/// validating quantized hash matrices.
#[must_use]
pub fn orthogonality_residual(m: &Matrix) -> f32 {
    let gram = m.matmul_transpose_b(m);
    let mut worst = 0.0f32;
    for i in 0..gram.rows() {
        for j in 0..gram.cols() {
            let target = if i == j { 1.0 } else { 0.0 };
            worst = worst.max((gram[(i, j)] - target).abs());
        }
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gram_schmidt_produces_orthonormal_rows() {
        let mut rng = SeededRng::new(11);
        let m = Matrix::from_fn(16, 32, |_, _| rng.standard_normal() as f32);
        let q = modified_gram_schmidt(&m);
        assert_eq!(q.rows(), 16);
        assert!(orthogonality_residual(&q) < 1e-4);
    }

    #[test]
    fn gram_schmidt_drops_dependent_rows() {
        let m = Matrix::from_rows(&[&[1.0, 0.0], &[2.0, 0.0], &[0.0, 1.0]]);
        let q = modified_gram_schmidt(&m);
        assert_eq!(q.rows(), 2); // second row was a multiple of the first
        assert!(orthogonality_residual(&q) < 1e-5);
    }

    #[test]
    fn gram_schmidt_preserves_span_direction_of_first_row() {
        let m = Matrix::from_rows(&[&[3.0, 4.0]]);
        let q = modified_gram_schmidt(&m);
        assert!((q[(0, 0)] - 0.6).abs() < 1e-6);
        assert!((q[(0, 1)] - 0.8).abs() < 1e-6);
    }

    #[test]
    fn projections_k_le_d_are_orthonormal() {
        let mut rng = SeededRng::new(21);
        let p = random_orthogonal_projections(64, 64, &mut rng);
        assert_eq!((p.rows(), p.cols()), (64, 64));
        assert!(orthogonality_residual(&p) < 1e-4);
    }

    #[test]
    fn projections_k_gt_d_batched() {
        let mut rng = SeededRng::new(22);
        let p = random_orthogonal_projections(100, 32, &mut rng);
        assert_eq!((p.rows(), p.cols()), (100, 32));
        // First batch of 32 rows is orthonormal within itself.
        let batch = p.row_slice(0..32);
        assert!(orthogonality_residual(&batch) < 1e-4);
        // Second batch likewise.
        let batch2 = p.row_slice(32..64);
        assert!(orthogonality_residual(&batch2) < 1e-4);
        // Every row is unit length.
        for r in 0..p.rows() {
            assert!((ops::norm(p.row(r)) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn square_orthogonal_is_full_rank() {
        let mut rng = SeededRng::new(23);
        for n in [2, 4, 8] {
            let q = random_orthogonal_square(n, &mut rng);
            assert_eq!(q.rows(), n);
            assert!(orthogonality_residual(&q) < 1e-5);
        }
    }

    #[test]
    fn orthogonal_transform_preserves_norms() {
        let mut rng = SeededRng::new(24);
        let q = random_orthogonal_square(8, &mut rng);
        let x = Matrix::from_fn(1, 8, |_, c| c as f32 - 3.5);
        let y = x.matmul(&q.transpose());
        assert!((ops::norm(y.row(0)) - ops::norm(x.row(0))).abs() < 1e-4);
    }

    #[test]
    fn determinism_given_seed() {
        let a = random_orthogonal_projections(16, 16, &mut SeededRng::new(77));
        let b = random_orthogonal_projections(16, 16, &mut SeededRng::new(77));
        assert_eq!(a, b);
    }
}
