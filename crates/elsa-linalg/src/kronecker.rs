//! Structured orthogonal transforms via Kronecker products (§III-C).
//!
//! Computing a `k`-bit SRP hash of a `d`-dimensional vector naively costs
//! `k·d` multiplications per vector. ELSA instead uses an orthogonal matrix
//! that is the Kronecker product of `m` small orthogonal factors; applying it
//! mode-by-mode costs only `m·d^{1+1/m}` multiplications:
//!
//! * `m = 2`, `d = k = 64`: two `8×8` factors, `2·64^{3/2} = 1024` multiplies
//!   (vs 4096 dense);
//! * `m = 3`, `d = k = 64`: three `4×4` factors, `3·64^{4/3} = 768` multiplies
//!   — the configuration the hash computation module implements in hardware.
//!
//! The implementation here is fully general: any number of factors, square or
//! not (`k ≠ d` works, per Zhang et al., *Fast Orthogonal Projection based on
//! Kronecker Product*, ICCV 2015), with an exact multiplication counter that
//! the hardware cost model consumes.

use crate::matrix::Matrix;
use crate::orthogonal;
use crate::rng::SeededRng;

/// A linear map represented as the Kronecker product of small factors,
/// `A = A₁ ⊗ A₂ ⊗ … ⊗ A_m`, applied via efficient mode-wise contraction.
///
/// # Examples
///
/// ```
/// use elsa_linalg::{KroneckerFactors, Matrix};
///
/// let a1 = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
/// let a2 = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
/// let t = KroneckerFactors::new(vec![a1, a2]);
/// // (I ⊗ swap) x: swaps within each half.
/// assert_eq!(t.apply(&[1.0, 2.0, 3.0, 4.0]), vec![2.0, 1.0, 4.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct KroneckerFactors {
    factors: Vec<Matrix>,
}

impl KroneckerFactors {
    /// Wraps an ordered list of factors.
    ///
    /// # Panics
    ///
    /// Panics if `factors` is empty or any factor has a zero dimension.
    #[must_use]
    pub fn new(factors: Vec<Matrix>) -> Self {
        assert!(!factors.is_empty(), "at least one Kronecker factor required");
        for (i, f) in factors.iter().enumerate() {
            assert!(f.rows() > 0 && f.cols() > 0, "factor {i} has a zero dimension");
        }
        Self { factors }
    }

    /// Random orthogonal transform from explicit factor shapes
    /// `[(k₁,d₁), (k₂,d₂), …]`; the composite maps `∏dᵢ → ∏kᵢ` dimensions.
    /// Each factor has orthonormal rows (requires `kᵢ ≤ dᵢ`).
    ///
    /// # Panics
    ///
    /// Panics if `shapes` is empty or some `kᵢ > dᵢ`.
    #[must_use]
    pub fn random_orthogonal(shapes: &[(usize, usize)], rng: &mut SeededRng) -> Self {
        assert!(!shapes.is_empty(), "at least one factor shape required");
        let factors = shapes
            .iter()
            .map(|&(k, d)| {
                assert!(k <= d, "orthonormal rows require k <= d per factor (got {k}x{d})");
                if k == d {
                    orthogonal::random_orthogonal_square(d, rng)
                } else {
                    orthogonal::random_orthogonal_projections(k, d, rng)
                }
            })
            .collect();
        Self { factors }
    }

    /// The paper's 2-way square construction: `√d × √d` factors.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not a perfect square.
    #[must_use]
    pub fn two_way_square(d: usize, rng: &mut SeededRng) -> Self {
        let s = integer_root(d, 2).unwrap_or_else(|| panic!("{d} is not a perfect square"));
        Self::random_orthogonal(&[(s, s), (s, s)], rng)
    }

    /// The paper's 3-way square construction (`d^{1/3}`-sized factors) — the
    /// hardware configuration for `d = 64` uses three `4×4` factors.
    ///
    /// # Panics
    ///
    /// Panics if `d` is not a perfect cube.
    #[must_use]
    pub fn three_way_square(d: usize, rng: &mut SeededRng) -> Self {
        let s = integer_root(d, 3).unwrap_or_else(|| panic!("{d} is not a perfect cube"));
        Self::random_orthogonal(&[(s, s), (s, s), (s, s)], rng)
    }

    /// Borrow of the ordered factors.
    #[must_use]
    pub fn factors(&self) -> &[Matrix] {
        &self.factors
    }

    /// Input dimension `∏ cols(Aᵢ)`.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.factors.iter().map(Matrix::cols).product()
    }

    /// Output dimension `∏ rows(Aᵢ)`.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.factors.iter().map(Matrix::rows).product()
    }

    /// Exact number of scalar multiplications one [`KroneckerFactors::apply`]
    /// performs — the quantity the paper's hash-cost formulas
    /// (`2d^{3/2}`, `3d^{4/3}`) describe.
    #[must_use]
    pub fn multiplication_count(&self) -> usize {
        // Contract modes left to right: before contracting mode i, modes
        // 0..i already have output sizes, modes i.. still input sizes.
        let mut total = 0usize;
        for i in 0..self.factors.len() {
            let outer: usize = self.factors[..i].iter().map(Matrix::rows).product();
            let inner: usize = self.factors[i + 1..].iter().map(Matrix::cols).product();
            total += outer * inner * self.factors[i].rows() * self.factors[i].cols();
        }
        total
    }

    /// Applies the composite transform to a vector using mode-wise
    /// contraction (`multiplication_count()` scalar multiplies).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.input_dim()`.
    #[must_use]
    pub fn apply(&self, x: &[f32]) -> Vec<f32> {
        assert_eq!(x.len(), self.input_dim(), "input length mismatch");
        let mut data = x.to_vec();
        let mut dims: Vec<usize> = self.factors.iter().map(Matrix::cols).collect();
        for (mode, factor) in self.factors.iter().enumerate() {
            data = contract_mode(&data, &dims, mode, factor);
            dims[mode] = factor.rows();
        }
        data
    }

    /// Applies the transform to every row of `m` (e.g. hashing all keys at
    /// once), returning an `m.rows() × output_dim()` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `m.cols() != self.input_dim()`.
    #[must_use]
    pub fn apply_rows(&self, m: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(m.rows(), self.output_dim());
        for r in 0..m.rows() {
            let y = self.apply(m.row(r));
            out.row_mut(r).copy_from_slice(&y);
        }
        out
    }

    /// Materializes the dense `output_dim × input_dim` matrix
    /// `A₁ ⊗ A₂ ⊗ … ⊗ A_m` (test/verification path; `O(k·d)` memory).
    #[must_use]
    pub fn dense(&self) -> Matrix {
        let mut acc = self.factors[0].clone();
        for f in &self.factors[1..] {
            acc = kron(&acc, f);
        }
        acc
    }
}

/// Dense Kronecker product of two matrices.
///
/// `kron(A, B)[i·p + r, j·q + s] = A[i,j] · B[r,s]` for `B` of shape `p × q`.
///
/// # Examples
///
/// ```
/// use elsa_linalg::{kronecker::kron, Matrix};
/// let a = Matrix::from_rows(&[&[1.0, 2.0]]);
/// let b = Matrix::from_rows(&[&[3.0], &[4.0]]);
/// let k = kron(&a, &b);
/// assert_eq!((k.rows(), k.cols()), (2, 2));
/// assert_eq!(k[(0, 1)], 6.0);
/// ```
#[must_use]
pub fn kron(a: &Matrix, b: &Matrix) -> Matrix {
    let (p, q) = (b.rows(), b.cols());
    Matrix::from_fn(a.rows() * p, a.cols() * q, |r, c| {
        a[(r / p, c / q)] * b[(r % p, c % q)]
    })
}

/// Contracts tensor mode `mode` of `data` (shape `dims`) with `factor`
/// (`r × c`, where `dims[mode] == c`), producing the tensor with
/// `dims[mode] -> r` in row-major order.
fn contract_mode(data: &[f32], dims: &[usize], mode: usize, factor: &Matrix) -> Vec<f32> {
    let c = dims[mode];
    debug_assert_eq!(factor.cols(), c);
    let r = factor.rows();
    let outer: usize = dims[..mode].iter().product();
    let inner: usize = dims[mode + 1..].iter().product();
    let mut out = vec![0.0f32; outer * r * inner];
    for o in 0..outer {
        for ir in 0..r {
            let frow = factor.row(ir);
            for ii in 0..inner {
                let mut acc = 0.0f64;
                for (j, &f) in frow.iter().enumerate() {
                    acc += f64::from(f) * f64::from(data[(o * c + j) * inner + ii]);
                }
                out[(o * r + ir) * inner + ii] = acc as f32;
            }
        }
    }
    out
}

/// Returns `s` such that `s^m == n`, if it exists.
fn integer_root(n: usize, m: u32) -> Option<usize> {
    let mut s = (n as f64).powf(1.0 / f64::from(m)).round() as usize;
    // Guard against floating point under/overshoot.
    while s.pow(m) > n {
        s -= 1;
    }
    while (s + 1).pow(m) <= n {
        s += 1;
    }
    (s.pow(m) == n).then_some(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops;

    fn random_matrix(rows: usize, cols: usize, rng: &mut SeededRng) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.standard_normal() as f32)
    }

    #[test]
    fn kron_identity() {
        let i2 = Matrix::identity(2);
        let i3 = Matrix::identity(3);
        assert_eq!(kron(&i2, &i3), Matrix::identity(6));
    }

    #[test]
    fn kron_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 5);
        let k = kron(&a, &b);
        assert_eq!((k.rows(), k.cols()), (8, 15));
    }

    #[test]
    fn apply_matches_dense_two_way() {
        let mut rng = SeededRng::new(31);
        let t = KroneckerFactors::new(vec![random_matrix(8, 8, &mut rng), random_matrix(8, 8, &mut rng)]);
        let x: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let fast = t.apply(&x);
        let dense = t.dense();
        let slow = dense.matmul(&Matrix::from_vec(64, 1, x)).col(0);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn apply_matches_dense_three_way() {
        let mut rng = SeededRng::new(32);
        let t = KroneckerFactors::new(vec![
            random_matrix(4, 4, &mut rng),
            random_matrix(4, 4, &mut rng),
            random_matrix(4, 4, &mut rng),
        ]);
        let x: Vec<f32> = (0..64).map(|i| ((i * i) % 17) as f32 - 8.0).collect();
        let fast = t.apply(&x);
        let slow = t.dense().matmul(&Matrix::from_vec(64, 1, x)).col(0);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn apply_matches_dense_nonsquare_factors() {
        let mut rng = SeededRng::new(33);
        // k != d: (2x4) ⊗ (3x5): maps 20 -> 6.
        let t = KroneckerFactors::new(vec![random_matrix(2, 4, &mut rng), random_matrix(3, 5, &mut rng)]);
        assert_eq!(t.input_dim(), 20);
        assert_eq!(t.output_dim(), 6);
        let x: Vec<f32> = (0..20).map(|i| (i as f32).cos()).collect();
        let fast = t.apply(&x);
        let slow = t.dense().matmul(&Matrix::from_vec(20, 1, x)).col(0);
        for (a, b) in fast.iter().zip(&slow) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn multiplication_counts_match_paper() {
        let mut rng = SeededRng::new(34);
        let two = KroneckerFactors::two_way_square(64, &mut rng);
        assert_eq!(two.multiplication_count(), 1024); // 2 * 64^1.5
        let three = KroneckerFactors::three_way_square(64, &mut rng);
        assert_eq!(three.multiplication_count(), 768); // 3 * 64^(4/3)
        // Dense equivalent would be d^2 = 4096.
        let dense = KroneckerFactors::new(vec![random_matrix(64, 64, &mut rng)]);
        assert_eq!(dense.multiplication_count(), 4096);
    }

    #[test]
    fn kronecker_of_orthogonal_is_orthogonal() {
        let mut rng = SeededRng::new(35);
        let t = KroneckerFactors::three_way_square(64, &mut rng);
        let residual = orthogonal::orthogonality_residual(&t.dense());
        assert!(residual < 1e-4, "residual {residual}");
    }

    #[test]
    fn orthogonal_kronecker_preserves_norm() {
        let mut rng = SeededRng::new(36);
        let t = KroneckerFactors::two_way_square(64, &mut rng);
        let x = rng.normal_vec(64);
        let y = t.apply(&x);
        assert!((ops::norm(&y) - ops::norm(&x)).abs() < 1e-4);
    }

    #[test]
    fn apply_rows_matches_apply() {
        let mut rng = SeededRng::new(37);
        let t = KroneckerFactors::two_way_square(16, &mut rng);
        let m = random_matrix(5, 16, &mut rng);
        let all = t.apply_rows(&m);
        for r in 0..5 {
            let single = t.apply(m.row(r));
            assert_eq!(all.row(r), single.as_slice());
        }
    }

    #[test]
    fn integer_root_detection() {
        assert_eq!(integer_root(64, 2), Some(8));
        assert_eq!(integer_root(64, 3), Some(4));
        assert_eq!(integer_root(63, 2), None);
        assert_eq!(integer_root(1, 3), Some(1));
    }

    #[test]
    #[should_panic(expected = "not a perfect cube")]
    fn three_way_rejects_non_cube() {
        let _ = KroneckerFactors::three_way_square(100, &mut SeededRng::new(1));
    }
}
