//! Dense linear-algebra substrate for the ELSA reproduction.
//!
//! Everything the approximate-attention algorithm and its baselines need is
//! implemented here from scratch:
//!
//! * [`Matrix`] — a row-major `f32` matrix with the handful of operations the
//!   attention pipeline uses (matmul, transposed matmul, row access, maps);
//! * [`ops`] — vector/softmax kernels with `f64` accumulation;
//! * [`rng`] — seeded random sources, including a Box–Muller standard-normal
//!   sampler (the `rand` crate alone does not ship a normal distribution);
//! * [`orthogonal`] — the modified Gram–Schmidt process (§III-B) used to draw
//!   the orthogonal projection vectors of the SRP variant ELSA employs,
//!   including the batched construction for `k > d` (Ji et al., super-bit LSH);
//! * [`kronecker`] — structured orthogonal transforms built as Kronecker
//!   products of small orthogonal factors, with the efficient `O(d^{1+1/m})`
//!   application algorithms of §III-C and an exact multiplication counter the
//!   hardware model relies on.
//!
//! # Examples
//!
//! ```
//! use elsa_linalg::{Matrix, ops};
//!
//! let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Matrix::identity(2);
//! assert_eq!(a.matmul(&b), a);
//!
//! let sm = ops::softmax(&[1.0, 2.0, 3.0]);
//! assert!((sm.iter().sum::<f32>() - 1.0).abs() < 1e-6);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod kronecker;
pub mod matrix;
pub mod ops;
pub mod orthogonal;
pub mod rng;

pub use kronecker::KroneckerFactors;
pub use matrix::Matrix;
pub use rng::SeededRng;
