//! Seeded randomness helpers.
//!
//! Every experiment in this repository is deterministic: all stochastic
//! components (projection vectors, synthetic workloads, calibration datasets)
//! draw from a [`SeededRng`] constructed from an explicit `u64` seed.
//!
//! [`SeededRng`] is a thin wrapper over the workspace's own
//! [`elsa_testkit::TestRng`] (xoshiro256++ seeded through SplitMix64, with
//! Box–Muller normals) — no external RNG crate is involved, so the stream is
//! identical on every platform and toolchain.

use elsa_testkit::TestRng;

/// A deterministic random source with the sampling primitives the ELSA
/// reproduction needs.
///
/// # Examples
///
/// ```
/// use elsa_linalg::SeededRng;
///
/// let mut a = SeededRng::new(42);
/// let mut b = SeededRng::new(42);
/// assert_eq!(a.standard_normal(), b.standard_normal());
/// ```
#[derive(Debug, Clone)]
pub struct SeededRng {
    inner: TestRng,
}

impl SeededRng {
    /// Creates a generator from an explicit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { inner: TestRng::new(seed) }
    }

    /// Derives an independent child generator; used to give each layer /
    /// workload its own stream so adding one experiment never perturbs
    /// another's draws.
    #[must_use]
    pub fn fork(&mut self, label: u64) -> Self {
        Self { inner: self.inner.split(label) }
    }

    /// Uniform draw in `[0, 1)`.
    #[must_use]
    pub fn uniform(&mut self) -> f64 {
        self.inner.uniform()
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[must_use]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.uniform_in(lo, hi)
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.index(n)
    }

    /// A standard normal `N(0, 1)` deviate via the Box–Muller transform.
    #[must_use]
    pub fn standard_normal(&mut self) -> f64 {
        self.inner.standard_normal()
    }

    /// A normal deviate with the given mean and standard deviation.
    #[must_use]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        self.inner.normal(mean, std_dev)
    }

    /// Fills a vector with `len` standard normal deviates.
    #[must_use]
    pub fn normal_vec(&mut self, len: usize) -> Vec<f32> {
        (0..len).map(|_| self.standard_normal() as f32).collect()
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[must_use]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.inner.bernoulli(p)
    }

    /// A random unit vector of dimension `d` (normal direction, normalized).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn unit_vector(&mut self, d: usize) -> Vec<f32> {
        assert!(d > 0, "unit vector dimension must be positive");
        loop {
            let v = self.normal_vec(d);
            let n = crate::ops::norm(&v);
            if n > 1e-9 {
                return v.iter().map(|&x| (f64::from(x) / n) as f32).collect();
            }
        }
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples `count` distinct indices from `0..n` (order unspecified).
    ///
    /// # Panics
    ///
    /// Panics if `count > n`.
    #[must_use]
    pub fn sample_indices(&mut self, n: usize, count: usize) -> Vec<usize> {
        assert!(count <= n, "cannot sample {count} distinct items from {n}");
        // Partial Fisher–Yates over an index buffer.
        let mut idx: Vec<usize> = (0..n).collect();
        for i in 0..count {
            let j = i + self.index(n - i);
            idx.swap(i, j);
        }
        idx.truncate(count);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism() {
        let mut a = SeededRng::new(7);
        let mut b = SeededRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.uniform(), b.uniform());
        }
    }

    #[test]
    fn determinism_across_primitive_kinds() {
        // Same seed must replay the same mixed-draw sequence, not just the
        // same uniform stream.
        let mut a = SeededRng::new(2024);
        let mut b = SeededRng::new(2024);
        for i in 1..50 {
            assert_eq!(a.standard_normal(), b.standard_normal());
            assert_eq!(a.index(i + 1), b.index(i + 1));
            assert_eq!(a.bernoulli(0.3), b.bernoulli(0.3));
            assert_eq!(a.uniform_in(-3.0, 9.0), b.uniform_in(-3.0, 9.0));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SeededRng::new(1);
        let mut b = SeededRng::new(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn fork_streams_are_independent_of_sibling_draws() {
        let mut root1 = SeededRng::new(3);
        let mut root2 = SeededRng::new(3);
        let mut c1 = root1.fork(10);
        let mut c2 = root2.fork(10);
        assert_eq!(c1.uniform(), c2.uniform());
    }

    #[test]
    fn fork_children_decorrelated_from_parent_and_each_other() {
        let mut root = SeededRng::new(17);
        let mut child_a = root.fork(1);
        let mut child_b = root.fork(2);
        let matches_ab =
            (0..256).filter(|_| child_a.uniform() == child_b.uniform()).count();
        assert_eq!(matches_ab, 0, "sibling forks share draws");
        let mut root_replay = SeededRng::new(17);
        let matches_parent =
            (0..256).filter(|_| root.uniform() == root_replay.uniform()).count();
        assert_eq!(matches_parent, 0, "forked parent replays pre-fork stream");
    }

    #[test]
    fn fork_labels_select_distinct_streams() {
        // Same parent state, different labels => different child streams.
        let mut c1 = SeededRng::new(3).fork(1);
        let mut c2 = SeededRng::new(3).fork(2);
        let same = (0..128).filter(|_| c1.uniform() == c2.uniform()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SeededRng::new(12345);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn standard_normal_moments_10k_across_seeds() {
        // Statistical sanity at the 10k-draw scale for several seeds: mean
        // within ~4 sigma of 0 (sigma_mean = 1/sqrt(n)), variance near 1,
        // and both tails actually populated.
        for seed in [1u64, 7, 99, 12345, 0xDEAD_BEEF] {
            let mut rng = SeededRng::new(seed);
            let n = 10_000;
            let samples: Vec<f64> = (0..n).map(|_| rng.standard_normal()).collect();
            let mean = samples.iter().sum::<f64>() / n as f64;
            let var =
                samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
            assert!(mean.abs() < 0.04, "seed {seed}: mean {mean}");
            assert!((var - 1.0).abs() < 0.06, "seed {seed}: var {var}");
            let above = samples.iter().filter(|&&x| x > 1.0).count() as f64 / n as f64;
            let below = samples.iter().filter(|&&x| x < -1.0).count() as f64 / n as f64;
            // P(X > 1) ~ 0.1587 for a standard normal.
            assert!((above - 0.1587).abs() < 0.02, "seed {seed}: upper tail {above}");
            assert!((below - 0.1587).abs() < 0.02, "seed {seed}: lower tail {below}");
        }
    }

    #[test]
    fn normal_parameters_respected() {
        let mut rng = SeededRng::new(99);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal(5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1);
    }

    #[test]
    fn unit_vector_is_unit() {
        let mut rng = SeededRng::new(5);
        for d in [1, 2, 8, 64] {
            let v = rng.unit_vector(d);
            assert!((crate::ops::norm(&v) - 1.0).abs() < 1e-5);
        }
    }

    #[test]
    fn sample_indices_distinct_and_in_range() {
        let mut rng = SeededRng::new(8);
        let idx = rng.sample_indices(100, 40);
        assert_eq!(idx.len(), 40);
        let mut sorted = idx.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 40);
        assert!(sorted.iter().all(|&i| i < 100));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SeededRng::new(4);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = SeededRng::new(6);
        assert!(!rng.bernoulli(0.0));
        assert!(rng.bernoulli(1.0));
        assert!(rng.bernoulli(2.0)); // clamped
    }

    #[test]
    #[should_panic(expected = "empty uniform range")]
    fn uniform_in_rejects_empty_range() {
        let mut rng = SeededRng::new(1);
        let _ = rng.uniform_in(2.0, 2.0);
    }
}
