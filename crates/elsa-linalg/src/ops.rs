//! Vector kernels used by the attention pipeline.
//!
//! All reductions accumulate in `f64` so results are independent of the order
//! refactorings might impose, and stable enough to serve as the "exact"
//! reference against which the approximation and the quantized datapath are
//! judged.

/// Dot product with `f64` accumulation.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// # Examples
///
/// ```
/// assert_eq!(elsa_linalg::ops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(&x, &y)| f64::from(x) * f64::from(y)).sum()
}

/// Euclidean (L2) norm.
///
/// # Examples
///
/// ```
/// assert_eq!(elsa_linalg::ops::norm(&[3.0, 4.0]), 5.0);
/// ```
#[must_use]
pub fn norm(v: &[f32]) -> f64 {
    dot(v, v).sqrt()
}

/// Numerically-stable softmax: `exp(x_i - max) / Σ exp(x_j - max)`.
///
/// Returns an empty vector for empty input. All-equal inputs produce the
/// uniform distribution — including an input that is entirely `-∞` (a fully
/// masked score row), where the limit form `-∞ - -∞` would otherwise turn
/// the whole output into NaN.
///
/// # Examples
///
/// ```
/// let p = elsa_linalg::ops::softmax(&[0.0, 0.0]);
/// assert_eq!(p, vec![0.5, 0.5]);
/// let masked = elsa_linalg::ops::softmax(&[f32::NEG_INFINITY; 4]);
/// assert_eq!(masked, vec![0.25; 4]);
/// ```
#[must_use]
pub fn softmax(scores: &[f32]) -> Vec<f32> {
    if scores.is_empty() {
        return Vec::new();
    }
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        return vec![1.0 / scores.len() as f32; scores.len()];
    }
    let exps: Vec<f64> = scores.iter().map(|&s| f64::from(s - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| (e / sum) as f32).collect()
}

/// In-place softmax over a mutable slice (used by row-wise normalization in
/// hot loops to avoid an allocation per row). Same semantics as [`softmax`],
/// including the uniform output for an all-`-∞` row.
pub fn softmax_in_place(scores: &mut [f32]) {
    if scores.is_empty() {
        return;
    }
    let max = scores.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    if max == f32::NEG_INFINITY {
        scores.fill(1.0 / scores.len() as f32);
        return;
    }
    let mut sum = 0.0f64;
    for s in scores.iter_mut() {
        let e = f64::from(*s - max).exp();
        *s = e as f32;
        sum += e;
    }
    let inv = (1.0 / sum) as f32;
    for s in scores.iter_mut() {
        *s *= inv;
    }
}

/// Index of the maximum element (first occurrence on ties); `None` on empty
/// input.
///
/// # Examples
///
/// ```
/// assert_eq!(elsa_linalg::ops::argmax(&[1.0, 5.0, 3.0]), Some(1));
/// assert_eq!(elsa_linalg::ops::argmax(&[]), None);
/// ```
#[must_use]
pub fn argmax(v: &[f32]) -> Option<usize> {
    let mut best: Option<(usize, f32)> = None;
    for (i, &x) in v.iter().enumerate() {
        match best {
            Some((_, b)) if x <= b => {}
            _ => best = Some((i, x)),
        }
    }
    best.map(|(i, _)| i)
}

/// `axpy`: `y += a * x`, elementwise.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn axpy(a: f32, x: &[f32], y: &mut [f32]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// The angle between two vectors in radians, in `[0, π]`.
///
/// Degenerate inputs (zero vectors) return `π/2` — the "uninformative" angle,
/// matching how a hash of a zero vector carries no angular information.
///
/// # Examples
///
/// ```
/// let theta = elsa_linalg::ops::angle_between(&[1.0, 0.0], &[0.0, 1.0]);
/// assert!((theta - std::f64::consts::FRAC_PI_2).abs() < 1e-6);
/// ```
#[must_use]
pub fn angle_between(a: &[f32], b: &[f32]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return std::f64::consts::FRAC_PI_2;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0).acos()
}

/// Mean of a slice of `f64` values (0.0 for empty input).
#[must_use]
pub fn mean(v: &[f64]) -> f64 {
    if v.is_empty() {
        0.0
    } else {
        v.iter().sum::<f64>() / v.len() as f64
    }
}

/// The `q`-th percentile (0 ≤ q ≤ 100) using linear interpolation between
/// order statistics; 0.0 for empty input.
///
/// # Examples
///
/// ```
/// let median = elsa_linalg::ops::percentile(&[1.0, 2.0, 3.0, 4.0], 50.0);
/// assert!((median - 2.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn percentile(values: &[f64], q: f64) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    let rank = (q / 100.0).clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = rank - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_orthogonal_is_zero() {
        assert_eq!(dot(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
    }

    #[test]
    fn dot_accumulates_in_f64() {
        // Alternating large/small values that would lose bits in f32.
        let a: Vec<f32> = (0..1000).map(|i| if i % 2 == 0 { 1e7 } else { -1e7 }).collect();
        let b = vec![1.0f32; 1000];
        assert_eq!(dot(&a, &b), 0.0);
    }

    #[test]
    fn norm_known() {
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
        assert_eq!(norm(&[]), 0.0);
    }

    #[test]
    fn softmax_sums_to_one_and_is_monotone() {
        let p = softmax(&[1.0, 3.0, 2.0, -5.0]);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[1] > p[2] && p[2] > p[0] && p[0] > p[3]);
    }

    #[test]
    fn softmax_handles_large_scores() {
        let p = softmax(&[1000.0, 1000.0]);
        assert_eq!(p, vec![0.5, 0.5]);
        let p = softmax(&[-1000.0, 0.0]);
        assert!(p[1] > 0.999);
    }

    #[test]
    fn softmax_in_place_matches_softmax() {
        let scores = [0.3f32, -1.2, 4.4, 0.0, 2.2];
        let expected = softmax(&scores);
        let mut buf = scores;
        softmax_in_place(&mut buf);
        for (a, b) in buf.iter().zip(&expected) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_empty() {
        assert!(softmax(&[]).is_empty());
        let mut empty: [f32; 0] = [];
        softmax_in_place(&mut empty);
    }

    #[test]
    fn softmax_all_neg_infinity_is_uniform() {
        // A fully masked row must not collapse into NaNs (inf · 0 in the
        // normalization); the defined semantics is the uniform distribution.
        let p = softmax(&[f32::NEG_INFINITY; 5]);
        assert_eq!(p, vec![0.2; 5]);
        let mut buf = [f32::NEG_INFINITY; 5];
        softmax_in_place(&mut buf);
        assert_eq!(buf, [0.2; 5]);
    }

    #[test]
    fn softmax_single_element() {
        assert_eq!(softmax(&[3.7]), vec![1.0]);
        assert_eq!(softmax(&[f32::NEG_INFINITY]), vec![1.0]);
        let mut one = [f32::NEG_INFINITY];
        softmax_in_place(&mut one);
        assert_eq!(one, [1.0]);
    }

    #[test]
    fn softmax_partial_neg_infinity_masks_entries() {
        // -inf entries get exactly zero mass; the rest renormalizes.
        let p = softmax(&[0.0, f32::NEG_INFINITY, 0.0]);
        assert_eq!(p[1], 0.0);
        assert!((p[0] - 0.5).abs() < 1e-6 && (p[2] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn argmax_ties_prefer_first() {
        assert_eq!(argmax(&[2.0, 2.0, 1.0]), Some(0));
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = [1.0f32, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, [7.0, 9.0]);
    }

    #[test]
    fn angle_between_known_values() {
        assert!(angle_between(&[1.0, 0.0], &[1.0, 0.0]).abs() < 1e-6);
        let opposite = angle_between(&[1.0, 0.0], &[-1.0, 0.0]);
        assert!((opposite - std::f64::consts::PI).abs() < 1e-6);
        // Degenerate input.
        assert_eq!(angle_between(&[0.0, 0.0], &[1.0, 0.0]), std::f64::consts::FRAC_PI_2);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), 10.0);
        assert_eq!(percentile(&v, 100.0), 50.0);
        assert_eq!(percentile(&v, 50.0), 30.0);
        assert!((percentile(&v, 80.0) - 42.0).abs() < 1e-12);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }
}
