//! A minimal row-major dense matrix.
//!
//! The ELSA pipeline works entirely with small dense matrices (`n × d` with
//! `n ≤ 2048`, `d = 64`), so the implementation favours clarity and exact
//! control over accumulation order (dot products accumulate in `f64`, which
//! keeps the f32 substrate bit-stable across refactors) over blocking or SIMD.
//!
//! Large products are row-partitioned over `elsa-parallel` workers: each
//! output row is computed by the unchanged serial inner loops, so parallel
//! results are bit-identical to serial ones for every worker count (and
//! `ELSA_THREADS=1` never spawns a thread).

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::ops;

/// A dense row-major `f32` matrix.
///
/// # Examples
///
/// ```
/// use elsa_linalg::Matrix;
///
/// let m = Matrix::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
/// assert_eq!(m.rows(), 2);
/// assert_eq!(m.cols(), 3);
/// assert_eq!(m[(1, 2)], 5.0);
/// assert_eq!(m.row(1), &[3.0, 4.0, 5.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl Matrix {
    /// Creates a `rows × cols` matrix of zeros.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Creates a matrix from explicit row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    #[must_use]
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        if rows.is_empty() {
            return Self::default();
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Self { rows: rows.len(), cols, data }
    }

    /// Creates a matrix from a flat row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    #[must_use]
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[must_use]
    pub const fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub const fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert!(r < self.rows, "row {r} out of bounds ({} rows)", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies column `c` out into a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    #[must_use]
    pub fn col(&self, c: usize) -> Vec<f32> {
        assert!(c < self.cols, "col {c} out of bounds ({} cols)", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterator over rows as slices.
    pub fn iter_rows(&self) -> impl Iterator<Item = &[f32]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// The flat row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Consumes the matrix, returning the flat row-major buffer.
    #[must_use]
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Matrix product `self · other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    #[must_use]
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        if out.data.is_empty() {
            return out;
        }
        let work = self.rows.saturating_mul(self.cols).saturating_mul(other.cols);
        let compute_row = |i: usize, row_out: &mut [f32]| {
            let lhs = self.row(i);
            for (j, slot) in row_out.iter_mut().enumerate() {
                let mut acc = 0.0f64;
                for (k, &l) in lhs.iter().enumerate() {
                    acc += f64::from(l) * f64::from(other[(k, j)]);
                }
                *slot = acc as f32;
            }
        };
        if elsa_parallel::beneficial(work) {
            elsa_parallel::par_chunks_mut(&mut out.data, other.cols, compute_row);
        } else {
            for (i, row_out) in out.data.chunks_mut(other.cols).enumerate() {
                compute_row(i, row_out);
            }
        }
        out
    }

    /// Matrix product against a transposed right operand: `self · otherᵀ`.
    ///
    /// This is the natural layout for attention's `QKᵀ` (both `Q` and `K` are
    /// stored row-major as `n × d`), and is measurably faster than
    /// `self.matmul(&other.transpose())` because both inner loops walk
    /// contiguous rows.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.cols()`.
    #[must_use]
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b shape mismatch: {}x{} · ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        if out.data.is_empty() {
            return out;
        }
        let work = self.rows.saturating_mul(self.cols).saturating_mul(other.rows);
        let compute_row = |i: usize, row_out: &mut [f32]| {
            let lhs = self.row(i);
            for (j, slot) in row_out.iter_mut().enumerate() {
                *slot = ops::dot(lhs, other.row(j)) as f32;
            }
        };
        if elsa_parallel::beneficial(work) {
            elsa_parallel::par_chunks_mut(&mut out.data, other.rows, compute_row);
        } else {
            for (i, row_out) in out.data.chunks_mut(other.rows).enumerate() {
                compute_row(i, row_out);
            }
        }
        out
    }

    /// Applies `f` to every row (`f(row_index, row)`), fanning rows out
    /// across worker threads when `work_hint` clears
    /// [`elsa_parallel::beneficial`]. Each row's computation is independent
    /// and internally unchanged, so results are bit-identical to the serial
    /// row-order loop regardless of worker count.
    ///
    /// `work_hint` is the caller's estimate of total scalar operations (rows
    /// × cols × per-element cost); below the threshold the loop runs inline.
    pub fn par_rows_mut(&mut self, work_hint: usize, f: impl Fn(usize, &mut [f32]) + Sync) {
        if self.data.is_empty() {
            return;
        }
        if elsa_parallel::beneficial(work_hint) {
            elsa_parallel::par_chunks_mut(&mut self.data, self.cols, f);
        } else {
            for (i, row) in self.data.chunks_mut(self.cols).enumerate() {
                f(i, row);
            }
        }
    }

    /// The transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Applies `f` to every element, producing a new matrix.
    #[must_use]
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplies every element by `s`.
    #[must_use]
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// Elementwise maximum absolute difference against another matrix of the
    /// same shape — the error metric used throughout the test-suite.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Frobenius norm of the difference, divided by the Frobenius norm of
    /// `self` — a scale-free relative error.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    #[must_use]
    pub fn relative_frobenius_error(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        let mut num = 0.0f64;
        let mut den = 0.0f64;
        for (a, b) in self.data.iter().zip(&other.data) {
            num += f64::from(a - b) * f64::from(a - b);
            den += f64::from(*a) * f64::from(*a);
        }
        if den == 0.0 {
            if num == 0.0 {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (num / den).sqrt()
        }
    }

    /// Vertical concatenation of two matrices with equal column counts.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    #[must_use]
    pub fn vstack(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "vstack column mismatch");
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Matrix { rows: self.rows + other.rows, cols: self.cols, data }
    }

    /// Appends one row in place (amortized O(cols), no reallocation of
    /// earlier rows) — the growth primitive behind incremental decode
    /// sessions, where a context gains one key/value row per token.
    ///
    /// On a matrix with zero rows this sets the column count, so
    /// `Matrix::zeros(0, d)` grows into an `n × d` matrix row by row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != self.cols()` (for a matrix with at least one
    /// row) or `row.len() != cols` of an empty matrix constructed with an
    /// explicit column count.
    pub fn push_row(&mut self, row: &[f32]) {
        assert_eq!(row.len(), self.cols, "push_row length mismatch");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Returns the sub-matrix consisting of rows `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the number of rows.
    #[must_use]
    pub fn row_slice(&self, range: std::ops::Range<usize>) -> Matrix {
        assert!(range.end <= self.rows, "row range out of bounds");
        Matrix {
            rows: range.len(),
            cols: self.cols,
            data: self.data[range.start * self.cols..range.end * self.cols].to_vec(),
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;

    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(8) {
                write!(f, "{:>9.4} ", self[(r, c)])?;
            }
            writeln!(f, "{}", if self.cols > 8 { "…" } else { "" })?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_row_grows_from_empty() {
        let mut m = Matrix::zeros(0, 3);
        m.push_row(&[1.0, 2.0, 3.0]);
        m.push_row(&[4.0, 5.0, 6.0]);
        assert_eq!((m.rows(), m.cols()), (2, 3));
        assert_eq!(m, Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]));
        // Row-by-row growth is vstack, bit for bit.
        let stacked = m.row_slice(0..1).vstack(&m.row_slice(1..2));
        assert_eq!(m, stacked);
    }

    #[test]
    #[should_panic(expected = "push_row length mismatch")]
    fn push_row_rejects_wrong_width() {
        Matrix::zeros(2, 3).push_row(&[1.0]);
    }

    #[test]
    fn construction_and_indexing() {
        let m = Matrix::from_fn(3, 2, |r, c| (r * 10 + c) as f32);
        assert_eq!(m[(0, 0)], 0.0);
        assert_eq!(m[(2, 1)], 21.0);
        assert_eq!(m.row(1), &[10.0, 11.0]);
        assert_eq!(m.col(1), vec![1.0, 11.0, 21.0]);
    }

    #[test]
    fn identity_is_neutral() {
        let m = Matrix::from_fn(4, 4, |r, c| (r + 2 * c) as f32);
        assert_eq!(m.matmul(&Matrix::identity(4)), m);
        assert_eq!(Matrix::identity(4).matmul(&m), m);
    }

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]));
    }

    #[test]
    fn matmul_transpose_b_equals_explicit_transpose() {
        let a = Matrix::from_fn(5, 7, |r, c| ((r * 7 + c) % 13) as f32 - 6.0);
        let b = Matrix::from_fn(4, 7, |r, c| ((r * 3 + c) % 5) as f32);
        let fast = a.matmul_transpose_b(&b);
        let slow = a.matmul(&b.transpose());
        assert!(fast.max_abs_diff(&slow) < 1e-5);
    }

    #[test]
    fn transpose_involution() {
        let m = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f32);
        assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn map_and_scale() {
        let m = Matrix::from_rows(&[&[1.0, -2.0]]);
        assert_eq!(m.scale(2.0), Matrix::from_rows(&[&[2.0, -4.0]]));
        assert_eq!(m.map(f32::abs), Matrix::from_rows(&[&[1.0, 2.0]]));
    }

    #[test]
    fn error_metrics() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]);
        let b = Matrix::from_rows(&[&[1.0, 0.1], &[0.0, 1.0]]);
        assert!((a.max_abs_diff(&b) - 0.1).abs() < 1e-7);
        assert!(a.relative_frobenius_error(&a) == 0.0);
        assert!(a.relative_frobenius_error(&b) > 0.0);
    }

    #[test]
    fn vstack_and_row_slice() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]);
        let b = Matrix::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let s = a.vstack(&b);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.row(2), &[5.0, 6.0]);
        assert_eq!(s.row_slice(1..3), b);
    }

    #[test]
    fn empty_matrix_behaves() {
        let m = Matrix::default();
        assert_eq!(m.rows(), 0);
        assert_eq!(m.cols(), 0);
        assert_eq!(m.as_slice().len(), 0);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn display_truncates() {
        let m = Matrix::zeros(20, 20);
        let s = format!("{m}");
        assert!(s.contains("Matrix 20x20"));
        assert!(s.contains('…'));
    }
}
