//! Deterministic parallel execution layer for the ELSA reproduction.
//!
//! Every hot path in the workspace — matmul, multi-head attention, SRP
//! hashing, candidate selection, request serving — is embarrassingly
//! parallel across rows, heads, queries, or requests. This crate provides
//! the one primitive they all share: fan work out over scoped `std::thread`
//! workers **without changing any result bit**.
//!
//! # Determinism contract
//!
//! Parallel results are bit-for-bit identical to serial results, for any
//! worker count, because
//!
//! * work is split into *items* (a row, a head, a query, a request) whose
//!   internal computation is untouched — the same instructions run in the
//!   same order per item as in the serial loop;
//! * [`par_map_indexed`] returns outputs ordered by item index, regardless
//!   of which worker computed what when;
//! * [`par_map_reduce`] performs its reduction serially, in index order, on
//!   the already-ordered mapped values — so f32/f64 accumulation order is
//!   the serial order, always.
//!
//! No floating-point reassociation, no racy accumulation, no scheduling
//! dependence. `ELSA_THREADS=1` (or a single-core host) short-circuits to
//! plain in-thread loops — no threads are spawned at all.
//!
//! # Worker count
//!
//! The default worker count is read once from the `ELSA_THREADS` environment
//! variable, falling back to [`std::thread::available_parallelism`]. Tests
//! and benches override it for the current thread with [`with_threads`],
//! which nests and restores on unwind.
//!
//! # Panic propagation
//!
//! A panicking task poisons the run: remaining queued items are abandoned,
//! all workers are joined, and the first panic payload is re-raised on the
//! calling thread. No hangs, no silently lost panics.
//!
//! # Examples
//!
//! ```
//! // Ordered parallel map: output order is index order, whatever the
//! // worker count.
//! let squares = elsa_parallel::par_map_indexed(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! // Deterministic reduction: mapped in parallel, reduced serially in
//! // index order (f32 sums are bit-stable across worker counts).
//! let sum = elsa_parallel::par_map_reduce(4, |i| (i + 1) as f32, 0.0f32, |a, b| a + b);
//! assert_eq!(sum, 10.0);
//!
//! // Same code, forced serial:
//! let serial = elsa_parallel::with_threads(1, || {
//!     elsa_parallel::par_map_indexed(8, |i| i * i)
//! });
//! assert_eq!(serial, squares);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};

/// Re-export of [`std::thread::scope`]: the underlying structured-concurrency
/// primitive, for callers that need custom fan-out shapes. Panics in spawned
/// threads propagate to the caller when the scope joins.
pub use std::thread::scope;
/// Re-export of [`std::thread::Scope`] for signatures using [`scope`].
pub use std::thread::Scope;

/// Minimum estimated work (in rough "inner-loop operation" units) below
/// which fanning out is slower than computing in place. Call sites gate
/// their parallel path on [`beneficial`], which compares against this.
///
/// The constant is deliberately conservative: a scoped-thread spawn+join
/// cycle costs tens of microseconds, so an item batch must amortize several
/// of those to win.
pub const MIN_PARALLEL_WORK: usize = 1 << 16;

fn default_threads() -> usize {
    static DEFAULT: OnceLock<usize> = OnceLock::new();
    *DEFAULT.get_or_init(|| {
        match std::env::var("ELSA_THREADS") {
            Ok(raw) => match raw.trim().parse::<usize>() {
                Ok(n) if n >= 1 => n,
                _ => panic!("ELSA_THREADS must be a positive integer, got {raw:?}"),
            },
            Err(_) => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        }
    })
}

thread_local! {
    static OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The worker count parallel primitives will use when called from this
/// thread: the innermost [`with_threads`] override, else `ELSA_THREADS`,
/// else the machine's available parallelism.
#[must_use]
pub fn current_threads() -> usize {
    OVERRIDE.with(Cell::get).unwrap_or_else(default_threads)
}

/// Runs `f` with the worker count pinned to `n` on the current thread,
/// restoring the previous setting afterwards (also on panic). Overrides
/// nest. The setting is thread-local: it governs parallel calls *made by*
/// `f` on this thread, not calls made from inside spawned workers (which
/// run their items serially — the layer does not nest parallelism).
///
/// # Panics
///
/// Panics if `n == 0`.
pub fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
    assert!(n >= 1, "worker count must be at least 1");
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|o| o.replace(Some(n))));
    f()
}

/// True when a parallel fan-out is worth it: more than one worker is
/// configured and the estimated work clears [`MIN_PARALLEL_WORK`].
///
/// Gating on this keeps the many small invocations in the test-suite and
/// the simulator on the zero-overhead serial path; results are identical
/// either way (the gate affects scheduling only, never values).
#[must_use]
pub fn beneficial(estimated_work: usize) -> bool {
    estimated_work >= MIN_PARALLEL_WORK && current_threads() > 1
}

/// Ordered parallel map over `0..len`: returns `[f(0), f(1), …, f(len-1)]`.
///
/// Items are distributed to workers in contiguous chunks claimed from an
/// atomic counter (dynamic load balancing); each worker keeps its chunks'
/// results tagged by chunk index, and the caller reassembles them in index
/// order. Output ordering — and therefore any downstream reduction order —
/// is independent of the worker count and of scheduling.
///
/// With one worker (or `len <= 1`) no threads are spawned.
///
/// # Panics
///
/// Re-raises the first panic from any task on the calling thread after all
/// workers have stopped.
pub fn par_map_indexed<R: Send>(len: usize, f: impl Fn(usize) -> R + Sync) -> Vec<R> {
    let workers = current_threads();
    if workers <= 1 || len <= 1 {
        return (0..len).map(f).collect();
    }
    // Chunks per worker > 1 so a slow chunk does not serialize the run.
    let chunk_len = len.div_ceil(workers * 4).max(1);
    let num_chunks = len.div_ceil(chunk_len);
    let spawn = workers.min(num_chunks);

    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);
    type ChunkResult<R> = Result<Vec<(usize, Vec<R>)>, Box<dyn std::any::Any + Send>>;

    let mut pieces: Vec<(usize, Vec<R>)> = Vec::with_capacity(num_chunks);
    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    scope(|s| {
        let handles: Vec<_> = (0..spawn)
            .map(|_| {
                s.spawn(|| -> ChunkResult<R> {
                    let mut local = Vec::new();
                    loop {
                        if poisoned.load(Ordering::Acquire) {
                            break;
                        }
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= num_chunks {
                            break;
                        }
                        let start = c * chunk_len;
                        let end = (start + chunk_len).min(len);
                        match catch_unwind(AssertUnwindSafe(|| {
                            (start..end).map(&f).collect::<Vec<R>>()
                        })) {
                            Ok(v) => local.push((c, v)),
                            Err(payload) => {
                                poisoned.store(true, Ordering::Release);
                                return Err(payload);
                            }
                        }
                    }
                    Ok(local)
                })
            })
            .collect();
        for h in handles {
            match h.join().expect("worker caught its own panics") {
                Ok(mut local) => pieces.append(&mut local),
                Err(payload) => {
                    if first_panic.is_none() {
                        first_panic = Some(payload);
                    }
                }
            }
        }
    });
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
    pieces.sort_unstable_by_key(|&(c, _)| c);
    let mut out = Vec::with_capacity(len);
    for (_, mut piece) in pieces {
        out.append(&mut piece);
    }
    debug_assert_eq!(out.len(), len);
    out
}

/// Parallel map over `0..len` followed by a **serial, index-ordered**
/// reduction: `fold(identity, [f(0), …, f(len-1)])`.
///
/// Because the fold runs on the calling thread over the already-ordered
/// mapped values, a non-associative `reduce` (f32/f64 addition) produces the
/// same bits as the serial loop for every worker count.
pub fn par_map_reduce<R: Send, A>(
    len: usize,
    f: impl Fn(usize) -> R + Sync,
    identity: A,
    mut reduce: impl FnMut(A, R) -> A,
) -> A {
    par_map_indexed(len, f).into_iter().fold(identity, &mut reduce)
}

/// Applies `f(chunk_index, chunk)` to consecutive `chunk_size` slices of
/// `data` in parallel (the final chunk may be shorter), exactly like a
/// serial `data.chunks_mut(chunk_size).enumerate()` loop.
///
/// Chunks are disjoint `&mut` borrows handed to workers through a queue, so
/// no synchronization touches the data itself. With one worker, or when the
/// input fits in a single chunk, the serial loop runs in place.
///
/// # Panics
///
/// Panics if `chunk_size == 0`; re-raises the first task panic on the
/// calling thread after all workers have stopped.
pub fn par_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_size: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_size > 0, "chunk_size must be positive");
    let workers = current_threads();
    if workers <= 1 || data.len() <= chunk_size {
        for (i, chunk) in data.chunks_mut(chunk_size).enumerate() {
            f(i, chunk);
        }
        return;
    }
    let num_chunks = data.len().div_ceil(chunk_size);
    let spawn = workers.min(num_chunks);
    let queue = Mutex::new(data.chunks_mut(chunk_size).enumerate());
    let poisoned = AtomicBool::new(false);

    let mut first_panic: Option<Box<dyn std::any::Any + Send>> = None;
    scope(|s| {
        let handles: Vec<_> = (0..spawn)
            .map(|_| {
                s.spawn(|| -> Result<(), Box<dyn std::any::Any + Send>> {
                    loop {
                        if poisoned.load(Ordering::Acquire) {
                            return Ok(());
                        }
                        // Hold the lock only to claim the next chunk.
                        let item = {
                            let mut iter = queue.lock().unwrap_or_else(|e| e.into_inner());
                            iter.next()
                        };
                        let Some((i, chunk)) = item else { return Ok(()) };
                        if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i, chunk))) {
                            poisoned.store(true, Ordering::Release);
                            return Err(payload);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join().expect("worker caught its own panics") {
                if first_panic.is_none() {
                    first_panic = Some(payload);
                }
            }
        }
    });
    if let Some(payload) = first_panic {
        resume_unwind(payload);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_index_order() {
        for workers in [1, 2, 3, 4, 8] {
            let out = with_threads(workers, || par_map_indexed(100, |i| i * 3));
            assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>(), "workers={workers}");
        }
    }

    #[test]
    fn map_empty_and_singleton() {
        let empty: Vec<usize> = with_threads(4, || par_map_indexed(0, |i| i));
        assert!(empty.is_empty());
        let one = with_threads(4, || par_map_indexed(1, |i| i + 41));
        assert_eq!(one, vec![41]);
    }

    #[test]
    fn reduce_is_bit_stable_across_worker_counts() {
        // Sums whose f32 result depends on accumulation order.
        let term = |i: usize| if i % 2 == 0 { 1e7f32 } else { 1e-3f32 };
        let serial: f32 = (0..1000).map(term).fold(0.0, |a, b| a + b);
        for workers in [2, 4, 8] {
            let parallel =
                with_threads(workers, || par_map_reduce(1000, term, 0.0f32, |a, b| a + b));
            assert_eq!(parallel.to_bits(), serial.to_bits(), "workers={workers}");
        }
    }

    #[test]
    fn chunks_mut_matches_serial_loop() {
        let mut serial: Vec<u64> = (0..97).collect();
        for (i, c) in serial.chunks_mut(10).enumerate() {
            for v in c.iter_mut() {
                *v = *v * 2 + i as u64;
            }
        }
        for workers in [2, 4, 8] {
            let mut parallel: Vec<u64> = (0..97).collect();
            with_threads(workers, || {
                par_chunks_mut(&mut parallel, 10, |i, c| {
                    for v in c.iter_mut() {
                        *v = *v * 2 + i as u64;
                    }
                });
            });
            assert_eq!(parallel, serial, "workers={workers}");
        }
    }

    #[test]
    fn chunks_mut_empty_input() {
        let mut empty: [u8; 0] = [];
        with_threads(4, || par_chunks_mut(&mut empty, 5, |_, _| panic!("no chunks exist")));
    }

    #[test]
    #[should_panic(expected = "chunk_size must be positive")]
    fn chunks_mut_rejects_zero_chunk() {
        let mut data = [1u8, 2];
        par_chunks_mut(&mut data, 0, |_, _| {});
    }

    #[test]
    fn with_threads_nests_and_restores() {
        let outer = current_threads();
        with_threads(3, || {
            assert_eq!(current_threads(), 3);
            with_threads(7, || assert_eq!(current_threads(), 7));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), outer);
    }

    #[test]
    fn with_threads_restores_on_panic() {
        let before = current_threads();
        let result = catch_unwind(|| with_threads(5, || panic!("inner")));
        assert!(result.is_err());
        assert_eq!(current_threads(), before);
    }

    #[test]
    #[should_panic(expected = "worker count must be at least 1")]
    fn with_threads_rejects_zero() {
        with_threads(0, || {});
    }

    #[test]
    fn beneficial_gates_on_both_axes() {
        with_threads(1, || assert!(!beneficial(usize::MAX)));
        with_threads(4, || {
            assert!(!beneficial(MIN_PARALLEL_WORK - 1));
            assert!(beneficial(MIN_PARALLEL_WORK));
        });
    }

    #[test]
    fn map_panic_propagates_with_payload() {
        let result = catch_unwind(|| {
            with_threads(4, || {
                par_map_indexed(64, |i| if i == 37 { panic!("task 37 failed") } else { i })
            })
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().expect("str payload");
        assert_eq!(*msg, "task 37 failed");
    }

    #[test]
    fn chunks_mut_panic_propagates() {
        let mut data = vec![0u32; 64];
        let result = catch_unwind(AssertUnwindSafe(|| {
            with_threads(4, || {
                par_chunks_mut(&mut data, 4, |i, _| {
                    assert!(i != 7, "chunk 7 poisoned");
                });
            });
        }));
        assert!(result.is_err());
    }
}
