//! Stress and soak tests for the scoped pool: panic propagation through
//! nested scopes, degenerate inputs, and task-churn soak runs.
//!
//! The full 10k-task churn is `#[ignore]`d by default (run with
//! `cargo test -p elsa-parallel -- --ignored`); a 1k-task fast variant runs
//! in tier-1.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use elsa_parallel::{par_chunks_mut, par_map_indexed, par_map_reduce, scope, with_threads};

/// Deterministic per-task pseudo-work: a few dozen integer ops whose result
/// depends only on the task index.
fn churn_task(i: usize) -> u64 {
    let mut h = i as u64 ^ 0x9E37_79B9_7F4A_7C15;
    for _ in 0..32 {
        h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        h ^= h >> 27;
    }
    h
}

fn churn(tasks: usize, workers: usize) {
    let serial: Vec<u64> = (0..tasks).map(churn_task).collect();
    let parallel = with_threads(workers, || par_map_indexed(tasks, churn_task));
    assert_eq!(parallel, serial, "churn mismatch at {tasks} tasks / {workers} workers");
    let serial_sum = serial.iter().fold(0u64, |a, &b| a ^ b.rotate_left(7));
    let parallel_sum = with_threads(workers, || {
        par_map_reduce(tasks, churn_task, 0u64, |a, b| a ^ b.rotate_left(7))
    });
    assert_eq!(parallel_sum, serial_sum);
}

#[test]
fn churn_1k_tasks_fast() {
    for workers in [2, 4, 8] {
        churn(1_000, workers);
    }
}

#[test]
#[ignore = "soak test: 10k tasks x several worker counts; run with --ignored"]
fn churn_10k_tasks_soak() {
    for workers in [2, 3, 4, 8, 16] {
        for round in 0..10 {
            churn(10_000 + round, workers);
        }
    }
}

#[test]
fn panicking_task_aborts_scope_and_reraises() {
    // The panic from one task must surface on the caller; the remaining
    // tasks must not hang the pool (poisoning drains the queue).
    let started = AtomicUsize::new(0);
    let result = catch_unwind(AssertUnwindSafe(|| {
        with_threads(4, || {
            par_map_indexed(10_000, |i| {
                started.fetch_add(1, Ordering::Relaxed);
                assert!(i != 3, "early task panics");
                i
            })
        })
    }));
    assert!(result.is_err(), "panic must propagate");
    // Poisoning stops the fan-out long before all 10k tasks run.
    assert!(started.load(Ordering::Relaxed) < 10_000, "queue should be abandoned");
}

#[test]
fn nested_scope_panic_propagates_to_caller() {
    // A par_map task that itself opens a scope whose thread panics: the
    // payload must cross both join boundaries and reach the caller.
    let result = catch_unwind(|| {
        with_threads(2, || {
            par_map_indexed(4, |i| {
                if i == 2 {
                    scope(|s| {
                        s.spawn(|| panic!("inner scope thread panicked"));
                    });
                }
                i
            })
        })
    });
    assert!(result.is_err(), "nested panic must propagate");
}

#[test]
fn nested_par_map_inside_tasks_is_serial_and_correct() {
    // Worker threads have no thread-local override, and on a gated serial
    // default this nests as plain loops — results must still be exact.
    let out = with_threads(4, || {
        par_map_indexed(8, |i| par_map_indexed(8, move |j| i * 8 + j).iter().sum::<usize>())
    });
    let expect: Vec<usize> = (0..8).map(|i| (0..8).map(|j| i * 8 + j).sum()).collect();
    assert_eq!(out, expect);
}

#[test]
fn empty_input_spawns_nothing() {
    let out: Vec<u8> = with_threads(8, || par_map_indexed(0, |_| unreachable!()));
    assert!(out.is_empty());
    let mut empty: [u64; 0] = [];
    with_threads(8, || par_chunks_mut(&mut empty, 3, |_, _| unreachable!()));
}

#[test]
fn chunk_size_larger_than_input() {
    // One chunk covering everything: must take the in-place serial path and
    // still report chunk index 0.
    let mut data = vec![1i32, 2, 3];
    with_threads(8, || {
        par_chunks_mut(&mut data, 1_000_000, |i, c| {
            assert_eq!(i, 0);
            assert_eq!(c.len(), 3);
            for v in c.iter_mut() {
                *v = -*v;
            }
        });
    });
    assert_eq!(data, vec![-1, -2, -3]);
}

#[test]
fn worker_count_far_exceeding_items() {
    // More workers than items: extra workers find the queue empty and exit.
    let out = with_threads(64, || par_map_indexed(3, |i| i + 1));
    assert_eq!(out, vec![1, 2, 3]);
}

#[test]
fn uneven_tail_chunk_is_processed() {
    let mut data: Vec<usize> = (0..13).collect();
    with_threads(4, || {
        par_chunks_mut(&mut data, 5, |i, c| {
            assert!(if i == 2 { c.len() == 3 } else { c.len() == 5 });
            for v in c.iter_mut() {
                *v += 100 * (i + 1);
            }
        });
    });
    let expect: Vec<usize> = (0..13).map(|v| v + 100 * (v / 5 + 1)).collect();
    assert_eq!(data, expect);
}
