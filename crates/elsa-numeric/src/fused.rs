//! Fused and log-domain functional units for the FlashAttention-class
//! streaming baseline (`elsa-baselines::FlashModel`).
//!
//! Two datapath ideas from the post-ELSA accelerator literature (see
//! `PAPERS.md`):
//!
//! * **Fused exponential-multiply** (*Low-Cost FlashAttention*): the
//!   streaming softmax never needs `e^x` on its own — every exponential is
//!   immediately multiplied by a value operand (`e^{s−m} · v`) or by a
//!   running accumulator (the `e^{m_old − m_new}` rescale). Fusing the LUT
//!   exponent stage of [`crate::ExpUnit`] with that multiply removes the
//!   intermediate rounding: one table lookup, one multiplier, **one** output
//!   rounding instead of two.
//! * **Log-domain accumulation** (*H-FA*): keeping the running sum of
//!   exponentials as `log2 Σe^{s_i}` turns every accumulate into a `max`
//!   plus a small correction lookup `log2(1 + 2^{−d})`, and the final
//!   softmax division into a subtraction — no adder tree, no divider.
//!
//! Both units follow the `lut.rs` discipline: segment-midpoint tables and a
//! `worst_case_*_error()` constant derived from the segment geometry, which
//! `tests/fused_properties.rs` verifies against an `f64` reference.

use crate::cfloat::CustomFloat;
use crate::lut::LUT_ENTRIES;

/// The fused exponential-multiply unit: computes `e^x · y` with a single
/// output rounding.
///
/// The exponent stage is identical to [`crate::ExpUnit`] — `(log2 e)·x` is
/// split into integer and fractional parts, and the fraction indexes the
/// same 32-entry midpoint table of `2^((i+0.5)/32)`. Instead of rounding
/// that result into the custom format and multiplying later, the raw
/// mantissa feeds the multiplier directly and only the *product* is rounded.
///
/// # Examples
///
/// ```
/// use elsa_numeric::{ExpMultUnit, ExpUnit};
/// let unit = ExpMultUnit::new();
/// let y = unit.exp_mult(1.0, 3.0).to_f64();
/// let exact = std::f64::consts::E * 3.0;
/// assert!(((y - exact) / exact).abs() < ExpMultUnit::worst_case_relative_error());
/// // Strictly tighter than the unfused exp-then-multiply bound:
/// assert!(ExpMultUnit::worst_case_relative_error() < ExpUnit::worst_case_relative_error()
///     + elsa_numeric::CustomFloat::epsilon() * 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct ExpMultUnit {
    table: [f64; LUT_ENTRIES],
}

impl ExpMultUnit {
    /// Builds the unit, populating the shared 32-entry fractional-power
    /// table (`2^((i + 0.5)/32)`, segment midpoints).
    #[must_use]
    pub fn new() -> Self {
        let mut table = [0.0; LUT_ENTRIES];
        for (i, slot) in table.iter_mut().enumerate() {
            *slot = f64::powf(2.0, (i as f64 + 0.5) / LUT_ENTRIES as f64);
        }
        Self { table }
    }

    /// Computes `e^x · y` in the custom floating-point output format.
    ///
    /// The exponent's integer part merges into the product's exponent field
    /// (exact, as in [`crate::ExpUnit::exp`]); the table mantissa and `y`
    /// meet in one multiplier and the product is rounded once.
    #[must_use]
    pub fn exp_mult(&self, x: f64, y: f64) -> CustomFloat {
        let t = std::f64::consts::LOG2_E * x;
        let floor = t.floor();
        let frac = t - floor;
        let idx = ((frac * LUT_ENTRIES as f64) as usize).min(LUT_ENTRIES - 1);
        let mantissa = self.table[idx];
        CustomFloat::from_f64(mantissa * f64::powi(2.0, floor as i32) * y)
    }

    /// Worst-case relative error: half a table segment in log2 space plus
    /// **one** output rounding. The unfused pipeline pays the same segment
    /// error plus *two* roundings (`exp` output, then product output), so
    /// fusion tightens the bound by exactly one [`CustomFloat::epsilon`].
    #[must_use]
    pub fn worst_case_relative_error() -> f64 {
        let seg = f64::powf(2.0, 0.5 / LUT_ENTRIES as f64) - 1.0;
        seg + CustomFloat::epsilon()
    }
}

impl Default for ExpMultUnit {
    fn default() -> Self {
        Self::new()
    }
}

/// Span of the log-domain correction table: differences `d = |a − b|` are
/// corrected over `[0, 16)`; beyond that `log2(1 + 2^{−d}) < 2.2·10^{−5}`
/// and the unit returns `max(a, b)` unchanged.
pub const LOG_ADD_SPAN: f64 = 16.0;

/// Entries in the log-domain correction table.
pub const LOG_ADD_ENTRIES: usize = 128;

/// The log-domain adder: computes `log2(2^a + 2^b)` as
/// `max(a, b) + log2(1 + 2^{−|a−b|})`, with the correction term a 128-entry
/// segment-midpoint table over `|a − b| ∈ [0, 16)`.
///
/// This is the H-FA accumulator: a streaming softmax that keeps
/// `L = log2 Σ e^{s_i}` needs one `max`, one subtract and one lookup per
/// key — no adder tree — and normalizes by *subtracting* `L` instead of
/// dividing by `Σ e^{s_i}`.
///
/// # Examples
///
/// ```
/// use elsa_numeric::LogDomainAdder;
/// let unit = LogDomainAdder::new();
/// // log2(2^3 + 2^3) = 4 exactly; d = 0 sits in the first table segment.
/// assert!((unit.add(3.0, 3.0) - 4.0).abs() < LogDomainAdder::worst_case_log2_error());
/// // Far-apart operands: the small term vanishes below the table span.
/// assert_eq!(unit.add(0.0, -40.0), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct LogDomainAdder {
    /// `log2(1 + 2^{−d})` at the midpoint of each of the 128 segments.
    table: [f64; LOG_ADD_ENTRIES],
}

impl LogDomainAdder {
    /// Builds the correction table at segment midpoints.
    #[must_use]
    pub fn new() -> Self {
        let mut table = [0.0; LOG_ADD_ENTRIES];
        let seg = LOG_ADD_SPAN / LOG_ADD_ENTRIES as f64;
        for (i, slot) in table.iter_mut().enumerate() {
            let mid = (i as f64 + 0.5) * seg;
            *slot = (1.0 + f64::powf(2.0, -mid)).log2();
        }
        Self { table }
    }

    /// Computes `log2(2^a + 2^b)`.
    ///
    /// `NEG_INFINITY` is the log-domain zero and is absorbed exactly:
    /// `add(a, −∞) = a`.
    #[must_use]
    pub fn add(&self, a: f64, b: f64) -> f64 {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        if lo == f64::NEG_INFINITY {
            return hi;
        }
        let d = hi - lo;
        if d >= LOG_ADD_SPAN {
            return hi;
        }
        let seg = LOG_ADD_SPAN / LOG_ADD_ENTRIES as f64;
        let idx = ((d / seg) as usize).min(LOG_ADD_ENTRIES - 1);
        hi + self.table[idx]
    }

    /// Folds a slice of log-domain values into `log2 Σ 2^{v_i}`, in index
    /// order (the order the streaming kernel visits keys). Returns
    /// `NEG_INFINITY` for an empty slice (the log-domain zero).
    #[must_use]
    pub fn sum(&self, values: &[f64]) -> f64 {
        values.iter().fold(f64::NEG_INFINITY, |acc, &v| self.add(acc, v))
    }

    /// Worst-case absolute error of a single `add`, in the log2 domain.
    ///
    /// The correction `f(d) = log2(1 + 2^{−d})` has `|f′(d)| ≤ 1/2` (at
    /// `d = 0`), so midpoint storage over segments of width `16/128` bounds
    /// the interpolation error by `(16/128)/2 · 1/2 = 2^{−5}`; truncating
    /// the table at `d = 16` adds at most `log2(1 + 2^{−16})`. Total
    /// ≈ `0.03127` — a linear-domain relative error of `2^{0.03127} − 1`
    /// ≈ 2.2% per add ([`worst_case_relative_error`]
    /// (Self::worst_case_relative_error)).
    #[must_use]
    pub fn worst_case_log2_error() -> f64 {
        let seg = LOG_ADD_SPAN / LOG_ADD_ENTRIES as f64;
        seg / 2.0 * 0.5 + (1.0 + f64::powf(2.0, -LOG_ADD_SPAN)).log2()
    }

    /// Worst-case *linear-domain* relative error after `n_adds` chained
    /// additions: log2 errors accumulate additively, so the linear bound is
    /// `2^(n · e_log) − 1`.
    #[must_use]
    pub fn worst_case_relative_error(n_adds: usize) -> f64 {
        f64::powf(2.0, n_adds as f64 * Self::worst_case_log2_error()) - 1.0
    }
}

impl Default for LogDomainAdder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_mult_tracks_reference() {
        let unit = ExpMultUnit::new();
        let bound = ExpMultUnit::worst_case_relative_error();
        for i in -20..=20 {
            let x = f64::from(i) * 0.61;
            for &y in &[0.125, 1.0, 3.7, 250.0] {
                let approx = unit.exp_mult(x, y).to_f64();
                let exact = x.exp() * y;
                let rel = ((approx - exact) / exact).abs();
                assert!(rel < bound + 0.02, "exp_mult({x}, {y}): rel err {rel}");
            }
        }
    }

    #[test]
    fn exp_mult_with_unit_y_matches_exp_unit() {
        // y = 1 reduces the fused unit to the plain exponent unit modulo the
        // single rounding; both share the same table, so the mantissa path
        // is identical.
        let fused = ExpMultUnit::new();
        let plain = crate::lut::ExpUnit::new();
        for i in -10..=10 {
            let x = f64::from(i) * 0.9;
            assert_eq!(fused.exp_mult(x, 1.0).to_bits(), plain.exp(x).to_bits());
        }
    }

    #[test]
    fn exp_mult_preserves_sign_of_y() {
        let unit = ExpMultUnit::new();
        assert!(unit.exp_mult(0.5, -2.0).to_f64() < 0.0);
        assert_eq!(unit.exp_mult(0.5, 0.0).to_f64(), 0.0);
    }

    #[test]
    fn log_add_is_commutative_and_tracks_reference() {
        let unit = LogDomainAdder::new();
        let bound = LogDomainAdder::worst_case_log2_error();
        for &(a, b) in &[(0.0, 0.0), (3.0, 1.0), (-2.5, 4.0), (10.0, 9.9), (0.0, -15.9)] {
            let got = unit.add(a, b);
            let exact = (f64::powf(2.0, a) + f64::powf(2.0, b)).log2();
            assert!((got - exact).abs() <= bound, "add({a},{b}): {got} vs {exact}");
            assert_eq!(got.to_bits(), unit.add(b, a).to_bits());
        }
    }

    #[test]
    fn log_add_absorbs_neg_infinity_exactly() {
        let unit = LogDomainAdder::new();
        assert_eq!(unit.add(2.5, f64::NEG_INFINITY), 2.5);
        assert_eq!(unit.add(f64::NEG_INFINITY, f64::NEG_INFINITY), f64::NEG_INFINITY);
        assert_eq!(unit.sum(&[]), f64::NEG_INFINITY);
    }

    #[test]
    fn log_sum_bound_scales_with_length() {
        let unit = LogDomainAdder::new();
        let values: Vec<f64> = (0..64).map(|i| f64::from(i) * 0.05).collect();
        let got = unit.sum(&values);
        let exact = values.iter().map(|&v| f64::powf(2.0, v)).sum::<f64>().log2();
        let bound = 64.0 * LogDomainAdder::worst_case_log2_error();
        assert!((got - exact).abs() <= bound, "{got} vs {exact}");
    }
}
