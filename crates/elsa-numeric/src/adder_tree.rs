//! Bitwidth-tracked adder tree — the reduction structure inside the
//! attention computation module (§IV-C: "d multipliers and an adder tree")
//! under §IV-E's rule that intermediate signals carry *the minimal necessary
//! integer bitwidth to avoid overflow while maintaining the number of
//! fraction bits*.
//!
//! Each tree level adds one integer bit (the sum of two B-bit values needs
//! B+1 bits), so a `d`-leaf tree over products of `Qa.f × Qb.f` inputs needs
//! `a + b + 1 + log2(d)` integer bits at the root. [`AdderTree`] computes
//! the reduction value *and* reports the per-level formats, so tests can pin
//! the hardware sizing the paper implies, and the cost model can count
//! adder bits.

use crate::fixed::{Fixed, FixedSpec};

/// A balanced binary reduction over fixed-point values with per-level
/// format tracking.
///
/// # Examples
///
/// ```
/// use elsa_numeric::{AdderTree, Fixed, FixedSpec};
///
/// let spec = FixedSpec::qkv();
/// let leaves: Vec<Fixed> = (0..8).map(|i| Fixed::from_f64(i as f64, spec)).collect();
/// let tree = AdderTree::reduce(&leaves);
/// assert_eq!(tree.sum().to_f64(), 28.0);
/// assert_eq!(tree.levels(), 3); // 8 leaves -> 3 levels
/// // Root integer width grew by exactly one bit per level.
/// assert_eq!(tree.root_spec().int_bits(), spec.int_bits() + 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdderTree {
    sum: Fixed,
    leaf_spec: FixedSpec,
    levels: u32,
}

impl AdderTree {
    /// Reduces the leaves pairwise, widening one integer bit per level.
    ///
    /// # Panics
    ///
    /// Panics if `leaves` is empty or the leaves carry different formats.
    #[must_use]
    pub fn reduce(leaves: &[Fixed]) -> Self {
        assert!(!leaves.is_empty(), "adder tree needs at least one leaf");
        let leaf_spec = leaves[0].spec();
        assert!(
            leaves.iter().all(|l| l.spec() == leaf_spec),
            "adder tree leaves must share one format"
        );
        let mut level: Vec<Fixed> = leaves.to_vec();
        let mut levels = 0u32;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            for pair in level.chunks(2) {
                next.push(if pair.len() == 2 {
                    pair[0].wide_add(&pair[1])
                } else {
                    // Odd leaf passes through, widened to keep the level's
                    // format uniform (hardware pads with a zero input).
                    pair[0].wide_add(&Fixed::zero(pair[0].spec()))
                });
            }
            level = next;
            levels += 1;
        }
        Self { sum: level[0], leaf_spec, levels }
    }

    /// The reduction result.
    #[must_use]
    pub const fn sum(&self) -> Fixed {
        self.sum
    }

    /// Number of tree levels (`ceil(log2(leaf count))`).
    #[must_use]
    pub const fn levels(&self) -> u32 {
        self.levels
    }

    /// Format of the leaves.
    #[must_use]
    pub const fn leaf_spec(&self) -> FixedSpec {
        self.leaf_spec
    }

    /// Format of the root — the §IV-E minimal-width rule made explicit.
    #[must_use]
    pub fn root_spec(&self) -> FixedSpec {
        self.sum.spec()
    }

    /// Total full-adder bit count of the tree (a proxy for its area):
    /// level `ℓ` (1-based) has `ceil(d / 2^ℓ)` adders of `leaf_int + ℓ +
    /// frac` bits.
    #[must_use]
    pub fn adder_bits(leaf_count: usize, leaf_spec: FixedSpec) -> u64 {
        let mut total = 0u64;
        let mut width = leaf_count;
        let mut level = 1u32;
        while width > 1 {
            let adders = (width / 2) as u64;
            let bits = u64::from(1 + leaf_spec.int_bits() + level + leaf_spec.frac_bits());
            total += adders * bits;
            width = width.div_ceil(2);
            level += 1;
        }
        total
    }
}

/// The full dot-product datapath of the attention computation module:
/// `d` parallel `Qkv × Qkv` multipliers feeding the adder tree, returning
/// the exact score and the root format (17 + log2(d) integer bits for
/// Q5.3 inputs).
///
/// # Panics
///
/// Panics if the slices differ in length or are empty.
#[must_use]
pub fn dot_product_datapath(a: &[Fixed], b: &[Fixed]) -> AdderTree {
    assert_eq!(a.len(), b.len(), "dot product operand mismatch");
    let products: Vec<Fixed> = a.iter().zip(b).map(|(x, y)| x.wide_mul(y)).collect();
    AdderTree::reduce(&products)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixed::QkvFixed;

    #[test]
    fn reduction_value_is_exact() {
        let spec = FixedSpec::qkv();
        let leaves: Vec<Fixed> =
            (0..64).map(|i| Fixed::from_f64(f64::from(i % 7) - 3.0, spec)).collect();
        let expect: f64 = (0..64).map(|i| f64::from(i % 7) - 3.0).sum();
        assert_eq!(AdderTree::reduce(&leaves).sum().to_f64(), expect);
    }

    #[test]
    fn one_bit_of_growth_per_level() {
        let spec = FixedSpec::qkv();
        for d in [2usize, 4, 16, 64] {
            let leaves = vec![Fixed::from_f64(1.0, spec); d];
            let tree = AdderTree::reduce(&leaves);
            assert_eq!(tree.levels(), d.ilog2());
            assert_eq!(tree.root_spec().int_bits(), spec.int_bits() + d.ilog2());
            assert_eq!(tree.root_spec().frac_bits(), spec.frac_bits());
        }
    }

    #[test]
    fn worst_case_never_overflows() {
        // All-maximal products through the full d = 64 dot-product path.
        let max = QkvFixed::from_f32(31.875).as_fixed();
        let min = QkvFixed::from_f32(-32.0).as_fixed();
        let a = vec![max; 64];
        let b = vec![min; 64];
        let tree = dot_product_datapath(&a, &b);
        assert_eq!(tree.sum().to_f64(), 64.0 * 31.875 * -32.0);
        // Root: 5+5+1 int bits from the multiply, +6 from the tree.
        assert_eq!(tree.root_spec().int_bits(), 11 + 6);
        assert_eq!(tree.root_spec().frac_bits(), 6);
    }

    #[test]
    fn odd_leaf_counts_handled() {
        let spec = FixedSpec::qkv();
        let leaves: Vec<Fixed> = (0..7).map(|i| Fixed::from_f64(f64::from(i), spec)).collect();
        let tree = AdderTree::reduce(&leaves);
        assert_eq!(tree.sum().to_f64(), 21.0);
        assert_eq!(tree.levels(), 3);
    }

    #[test]
    fn single_leaf_is_identity() {
        let spec = FixedSpec::qkv();
        let tree = AdderTree::reduce(&[Fixed::from_f64(2.5, spec)]);
        assert_eq!(tree.sum().to_f64(), 2.5);
        assert_eq!(tree.levels(), 0);
        assert_eq!(tree.root_spec(), spec);
    }

    #[test]
    fn adder_bit_budget_is_plausible() {
        // d = 64 tree over 12-bit products (Q11.6 after the multiply):
        // level widths 18..23 bits over 32+16+8+4+2+1 adders.
        let product_spec = FixedSpec::new(11, 6);
        let bits = AdderTree::adder_bits(64, product_spec);
        let manual: u64 = [(32u64, 19u64), (16, 20), (8, 21), (4, 22), (2, 23), (1, 24)]
            .iter()
            .map(|&(adders, width)| adders * width)
            .sum();
        assert_eq!(bits, manual);
    }

    #[test]
    #[should_panic(expected = "share one format")]
    fn rejects_mixed_formats() {
        let a = Fixed::from_f64(1.0, FixedSpec::qkv());
        let b = Fixed::from_f64(1.0, FixedSpec::hash_matrix());
        let _ = AdderTree::reduce(&[a, b]);
    }
}
