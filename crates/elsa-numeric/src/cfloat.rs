//! The custom floating-point format of §IV-E.
//!
//! The outputs of the exponent function — and everything computed from them
//! (the running sum of exponentiated scores, the weighted value accumulation,
//! the reciprocal and the final division) — cover a huge dynamic range, so the
//! ELSA datapath switches from fixed point to a small custom float: **1 sign
//! bit, 10 exponent bits, 5 fraction bits**.
//!
//! We model the format as a normalized binary float with a hidden leading one
//! and no subnormals (values below the smallest normal flush to zero, values
//! above the largest normal saturate — the natural behaviour for a datapath
//! that only ever sees outputs of `e^x` with `x` bounded by the score range).

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg};

/// Exponent field width in bits.
const EXP_BITS: u32 = 10;
/// Mantissa (fraction) field width in bits.
const FRAC_BITS: u32 = 5;
/// Exponent bias: 2^(EXP_BITS-1) - 1.
const BIAS: i32 = (1 << (EXP_BITS - 1)) - 1;
/// Largest biased exponent (all-ones is a valid normal here; the hardware has
/// no infinities or NaNs).
const EXP_MAX: i32 = (1 << EXP_BITS) - 1;

/// A value in ELSA's 16-bit custom floating-point format
/// (1 sign + 10 exponent + 5 fraction bits).
///
/// Arithmetic (`+`, `*`) is performed the way a small hardware FPU would:
/// operands are decoded, significands aligned/multiplied exactly, and the
/// result is renormalized and rounded to nearest back into the format.
///
/// # Examples
///
/// ```
/// use elsa_numeric::CustomFloat;
///
/// let a = CustomFloat::from_f32(1.0);
/// let b = CustomFloat::from_f32(2.5);
/// assert_eq!((a + b).to_f32(), 3.5);
/// assert_eq!((a * b).to_f32(), 2.5);
///
/// // 5 fraction bits => relative error bounded by 2^-6.
/// let x = CustomFloat::from_f32(1234.567);
/// assert!(((x.to_f32() - 1234.567) / 1234.567).abs() < 1.0 / 64.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CustomFloat {
    sign: bool,
    /// Biased exponent; 0 together with `frac == 0` encodes zero.
    exp: u16,
    /// 5-bit fraction field (hidden leading one not stored).
    frac: u8,
}

impl CustomFloat {
    /// Positive zero.
    #[must_use]
    pub const fn zero() -> Self {
        Self { sign: false, exp: 0, frac: 0 }
    }

    /// One.
    #[must_use]
    pub fn one() -> Self {
        Self::from_f64(1.0)
    }

    /// Largest finite value of the format.
    #[must_use]
    pub fn max_value() -> Self {
        Self { sign: false, exp: EXP_MAX as u16, frac: (1 << FRAC_BITS) - 1 }
    }

    /// Encodes an `f64`, rounding the mantissa to 5 bits; flushes to zero
    /// below the smallest normal and saturates above the largest normal.
    /// NaN encodes as zero (the datapath cannot produce NaN).
    #[must_use]
    pub fn from_f64(value: f64) -> Self {
        if value == 0.0 || value.is_nan() {
            return Self::zero();
        }
        let sign = value < 0.0;
        let mag = value.abs();
        // Decompose into mantissa in [1, 2) and exponent.
        let e = mag.log2().floor() as i32;
        let mut exp = e;
        let mut mant = mag / f64::powi(2.0, e);
        // Round mantissa to FRAC_BITS fractional bits.
        let scale = f64::from(1u32 << FRAC_BITS);
        let mut m = (mant * scale).round() / scale;
        if m >= 2.0 {
            m /= 2.0;
            exp += 1;
        }
        mant = m;
        let biased = exp + BIAS;
        if biased <= 0 {
            return Self { sign, exp: 0, frac: 0 }; // flush to zero
        }
        if biased > EXP_MAX {
            return Self { sign, exp: EXP_MAX as u16, frac: (1 << FRAC_BITS) - 1 };
        }
        let frac = ((mant - 1.0) * scale).round() as u8;
        Self { sign, exp: biased as u16, frac }
    }

    /// Encodes an `f32` (see [`CustomFloat::from_f64`]).
    #[must_use]
    pub fn from_f32(value: f32) -> Self {
        Self::from_f64(f64::from(value))
    }

    /// Decodes to `f64` (exact).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        let mant = 1.0 + f64::from(self.frac) / f64::from(1u32 << FRAC_BITS);
        let mag = mant * f64::powi(2.0, i32::from(self.exp) - BIAS);
        if self.sign {
            -mag
        } else {
            mag
        }
    }

    /// Decodes to `f32`.
    #[must_use]
    pub fn to_f32(&self) -> f32 {
        self.to_f64() as f32
    }

    /// True for (positive or negative) zero.
    #[must_use]
    pub const fn is_zero(&self) -> bool {
        self.exp == 0 && self.frac == 0
    }

    /// The sign bit.
    #[must_use]
    pub const fn is_negative(&self) -> bool {
        self.sign
    }

    /// The biased 10-bit exponent field.
    #[must_use]
    pub const fn biased_exponent(&self) -> u16 {
        self.exp
    }

    /// The 5-bit fraction field (without the hidden one).
    #[must_use]
    pub const fn fraction(&self) -> u8 {
        self.frac
    }

    /// The 6-bit significand including the hidden leading one
    /// (zero for the value zero).
    #[must_use]
    pub const fn significand(&self) -> u8 {
        if self.is_zero() {
            0
        } else {
            (1 << FRAC_BITS) | self.frac
        }
    }

    /// Worst-case relative representation error of the format (`2^-(FRAC_BITS+1)`).
    #[must_use]
    pub fn epsilon() -> f64 {
        f64::powi(2.0, -(FRAC_BITS as i32 + 1))
    }

    /// Packs into the 16-bit wire representation `[sign | exp(10) | frac(5)]`.
    #[must_use]
    pub fn to_bits(&self) -> u16 {
        (u16::from(self.sign) << 15) | (self.exp << FRAC_BITS) | u16::from(self.frac)
    }

    /// Unpacks the 16-bit wire representation.
    #[must_use]
    pub fn from_bits(bits: u16) -> Self {
        Self {
            sign: bits >> 15 == 1,
            exp: (bits >> FRAC_BITS) & ((1 << EXP_BITS) - 1),
            frac: (bits & ((1 << FRAC_BITS) - 1)) as u8,
        }
    }
}

impl Add for CustomFloat {
    type Output = CustomFloat;

    /// Hardware-style addition: align significands, add/subtract exactly over
    /// integers, renormalize, round to nearest.
    fn add(self, rhs: CustomFloat) -> CustomFloat {
        if self.is_zero() {
            return rhs;
        }
        if rhs.is_zero() {
            return self;
        }
        // Work with signed significands scaled so bit 0 is 2^(exp - BIAS - FRAC_BITS).
        let (hi, lo) = if self.exp >= rhs.exp { (self, rhs) } else { (rhs, self) };
        let shift = u32::from(hi.exp - lo.exp);
        // Keep 3 guard bits for rounding fidelity; beyond ~12 bits the small
        // operand vanishes entirely.
        const GUARD: u32 = 3;
        let hi_sig = i64::from(hi.significand()) << GUARD;
        let lo_sig = if shift >= 32 {
            0
        } else {
            (i64::from(lo.significand()) << GUARD) >> shift
        };
        let hi_signed = if hi.sign { -hi_sig } else { hi_sig };
        let lo_signed = if lo.sign { -lo_sig } else { lo_sig };
        let sum = hi_signed + lo_signed;
        if sum == 0 {
            return CustomFloat::zero();
        }
        let sign = sum < 0;
        let mut mag = sum.unsigned_abs();
        // `mag` currently has FRAC_BITS+GUARD fractional bits relative to
        // 2^(hi.exp - BIAS). Renormalize into [1, 2).
        let mut exp = i32::from(hi.exp);
        let target_msb = FRAC_BITS + GUARD; // bit index of the hidden one
        let msb = 63 - mag.leading_zeros();
        if msb > target_msb {
            let sh = msb - target_msb;
            // Round to nearest on the bits we shift out.
            let half = 1u64 << (sh - 1);
            mag = (mag + half) >> sh;
            exp += sh as i32;
            // Rounding may have carried into a new bit.
            if 63 - mag.leading_zeros() > target_msb {
                mag >>= 1;
                exp += 1;
            }
        } else if msb < target_msb {
            let sh = target_msb - msb;
            mag <<= sh;
            exp -= sh as i32;
        }
        // Drop guard bits with round-to-nearest.
        let half = 1u64 << (GUARD - 1);
        let mut sig = (mag + half) >> GUARD;
        if sig >> (FRAC_BITS + 1) != 0 {
            sig >>= 1;
            exp += 1;
        }
        if exp <= 0 || sig == 0 {
            return CustomFloat::zero();
        }
        if exp > EXP_MAX {
            let mut sat = CustomFloat::max_value();
            sat.sign = sign;
            return sat;
        }
        CustomFloat { sign, exp: exp as u16, frac: (sig & ((1 << FRAC_BITS) - 1)) as u8 }
    }
}

impl Mul for CustomFloat {
    type Output = CustomFloat;

    /// Hardware-style multiplication: 6×6-bit significand multiply,
    /// renormalize, round to nearest.
    fn mul(self, rhs: CustomFloat) -> CustomFloat {
        if self.is_zero() || rhs.is_zero() {
            return CustomFloat::zero();
        }
        let sign = self.sign ^ rhs.sign;
        let prod = u32::from(self.significand()) * u32::from(rhs.significand());
        // prod has 2*FRAC_BITS fractional bits and lies in [2^(2F), 2^(2F+2)).
        let mut exp = i32::from(self.exp) + i32::from(rhs.exp) - BIAS;
        let mut mag = u64::from(prod);
        let target_msb = 2 * FRAC_BITS;
        let msb = 63 - mag.leading_zeros();
        if msb > target_msb {
            debug_assert_eq!(msb, target_msb + 1);
            exp += 1;
            // Renormalize by treating one extra fractional bit below.
            mag = (mag + 1) >> 1;
        }
        // Round 2F fractional bits down to F.
        let half = 1u64 << (FRAC_BITS - 1);
        let mut sig = (mag + half) >> FRAC_BITS;
        if sig >> (FRAC_BITS + 1) != 0 {
            sig >>= 1;
            exp += 1;
        }
        if exp <= 0 {
            return CustomFloat::zero();
        }
        if exp > EXP_MAX {
            let mut sat = CustomFloat::max_value();
            sat.sign = sign;
            return sat;
        }
        CustomFloat { sign, exp: exp as u16, frac: (sig & ((1 << FRAC_BITS) - 1)) as u8 }
    }
}

impl Neg for CustomFloat {
    type Output = CustomFloat;

    fn neg(self) -> CustomFloat {
        if self.is_zero() {
            self
        } else {
            CustomFloat { sign: !self.sign, ..self }
        }
    }
}

impl PartialOrd for CustomFloat {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        self.to_f64().partial_cmp(&other.to_f64())
    }
}

impl From<f32> for CustomFloat {
    fn from(value: f32) -> Self {
        Self::from_f32(value)
    }
}

impl fmt::Display for CustomFloat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_round_trip() {
        assert_eq!(CustomFloat::zero().to_f64(), 0.0);
        assert_eq!(CustomFloat::from_f64(0.0), CustomFloat::zero());
        assert!(CustomFloat::from_f64(f64::NAN).is_zero());
    }

    #[test]
    fn exact_powers_of_two() {
        for e in [-10i32, -3, 0, 1, 7, 40, 100] {
            let v = f64::powi(2.0, e);
            assert_eq!(CustomFloat::from_f64(v).to_f64(), v, "2^{e}");
        }
    }

    #[test]
    fn relative_error_bound() {
        let eps = CustomFloat::epsilon();
        for &v in &[1.0, 3.3, 0.07, 12345.6, 1e-30, 1e30, -2.7, -9999.0] {
            let enc = CustomFloat::from_f64(v).to_f64();
            let rel = ((enc - v) / v).abs();
            assert!(rel <= eps + 1e-12, "value {v}: rel err {rel} > {eps}");
        }
    }

    #[test]
    fn huge_range_covers_exponent_outputs() {
        // exp of attention scores: scores bounded by |q||k| <= 32*32*64 = 65536
        // is out of range for any float; realistic scaled scores are < ~64.
        // e^64 ~ 6.2e27 must be representable.
        let v = 6.2e27;
        let enc = CustomFloat::from_f64(v);
        assert!(((enc.to_f64() - v) / v).abs() < CustomFloat::epsilon() + 1e-12);
        // And tiny values from e^-64.
        let t = 1.6e-28;
        let enc = CustomFloat::from_f64(t);
        assert!(((enc.to_f64() - t) / t).abs() < CustomFloat::epsilon() + 1e-12);
    }

    #[test]
    fn saturation_and_flush() {
        assert_eq!(CustomFloat::from_f64(1e200), CustomFloat::max_value());
        assert!(CustomFloat::from_f64(1e-200).is_zero());
    }

    #[test]
    fn addition_basic() {
        let a = CustomFloat::from_f64(1.0);
        let b = CustomFloat::from_f64(2.5);
        assert_eq!((a + b).to_f64(), 3.5);
        assert_eq!((a + CustomFloat::zero()).to_f64(), 1.0);
        assert_eq!((CustomFloat::zero() + b).to_f64(), 2.5);
    }

    #[test]
    fn addition_cancellation() {
        let a = CustomFloat::from_f64(5.0);
        let b = CustomFloat::from_f64(-5.0);
        assert!((a + b).is_zero());
    }

    #[test]
    fn addition_with_misaligned_exponents() {
        let a = CustomFloat::from_f64(1024.0);
        let b = CustomFloat::from_f64(1.0);
        // 1.0 is below the rounding granularity of 1024 (step 32) -> absorbed.
        let sum = (a + b).to_f64();
        assert!(sum == 1024.0 || sum == 1056.0, "sum = {sum}");
    }

    #[test]
    fn addition_accumulates_with_bounded_error() {
        // Accumulating n equal values must track n*v within ~n*eps relative.
        let v = 0.37;
        let mut acc = CustomFloat::zero();
        for _ in 0..100 {
            acc = acc + CustomFloat::from_f64(v);
        }
        let exact = 37.0;
        let rel = ((acc.to_f64() - exact) / exact).abs();
        assert!(rel < 0.2, "accumulated rel err {rel}");
    }

    #[test]
    fn multiplication_basic() {
        let a = CustomFloat::from_f64(3.0);
        let b = CustomFloat::from_f64(0.5);
        assert_eq!((a * b).to_f64(), 1.5);
        assert!((a * CustomFloat::zero()).is_zero());
    }

    #[test]
    fn multiplication_error_bound() {
        let vals = [1.7, -0.33, 250.0, 1e-5, 7.77];
        for &x in &vals {
            for &y in &vals {
                let prod = (CustomFloat::from_f64(x) * CustomFloat::from_f64(y)).to_f64();
                let exact = CustomFloat::from_f64(x).to_f64() * CustomFloat::from_f64(y).to_f64();
                let rel = ((prod - exact) / exact).abs();
                assert!(rel <= CustomFloat::epsilon() + 1e-12, "{x}*{y}: rel {rel}");
            }
        }
    }

    #[test]
    fn multiplication_saturates() {
        let big = CustomFloat::from_f64(1e80);
        let sat = big * big;
        assert_eq!(sat, CustomFloat::max_value());
    }

    #[test]
    fn negation() {
        let a = CustomFloat::from_f64(2.0);
        assert_eq!((-a).to_f64(), -2.0);
        assert_eq!((-CustomFloat::zero()).to_f64(), 0.0);
    }

    #[test]
    fn bit_packing_round_trip() {
        for &v in &[0.0, 1.0, -1.0, 3.25, 1e20, -1e-20] {
            let c = CustomFloat::from_f64(v);
            assert_eq!(CustomFloat::from_bits(c.to_bits()), c);
        }
    }

    #[test]
    fn ordering_matches_f64() {
        let a = CustomFloat::from_f64(1.5);
        let b = CustomFloat::from_f64(2.0);
        assert!(a < b);
        assert!(-b < a);
    }

    #[test]
    fn format_is_16_bits_wide() {
        // sign(1) + exp(10) + frac(5) = 16: the wire repr must use all of u16.
        let max = CustomFloat::max_value();
        assert_eq!(max.to_bits(), 0x7FFF);
        let neg_max = -max;
        assert_eq!(neg_max.to_bits(), 0xFFFF);
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", CustomFloat::one()).is_empty());
    }
}
