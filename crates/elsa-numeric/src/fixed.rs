//! Fixed-point number representation used across the ELSA datapath.
//!
//! The hardware represents different signals with different Q-formats (§IV-E):
//! matrix elements use a sign bit, 5 integer bits and 3 fraction bits; the
//! pre-defined hash matrices use a sign bit and 5 fraction bits. Downstream of
//! each multiplier/adder the hardware widens the *integer* part as needed so
//! that no overflow occurs while keeping the fraction bits fixed — we model
//! that by carrying the raw value in an `i64` together with its [`FixedSpec`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

/// Describes a signed fixed-point format: `1` sign bit, `int_bits` integer
/// bits and `frac_bits` fraction bits.
///
/// The representable range is `[-2^int_bits, 2^int_bits - 2^-frac_bits]` and
/// the resolution is `2^-frac_bits`.
///
/// # Examples
///
/// ```
/// use elsa_numeric::FixedSpec;
/// let qkv = FixedSpec::new(5, 3);
/// assert_eq!(qkv.max_value(), 31.875);
/// assert_eq!(qkv.min_value(), -32.0);
/// assert_eq!(qkv.resolution(), 0.125);
/// assert_eq!(qkv.total_bits(), 9);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FixedSpec {
    int_bits: u32,
    frac_bits: u32,
}

impl FixedSpec {
    /// Creates a format with the given integer and fraction bit counts.
    ///
    /// # Panics
    ///
    /// Panics if `int_bits + frac_bits` exceeds 40 — beyond that the widening
    /// multiplication used internally could overflow `i64`, and no signal in
    /// the ELSA pipeline is anywhere near that wide.
    #[must_use]
    pub fn new(int_bits: u32, frac_bits: u32) -> Self {
        assert!(
            int_bits + frac_bits <= 40,
            "fixed point format too wide: {int_bits}+{frac_bits} bits"
        );
        Self { int_bits, frac_bits }
    }

    /// Format of key/query/value matrix elements: 1 sign + 5 int + 3 frac (9 bits).
    #[must_use]
    pub const fn qkv() -> Self {
        Self { int_bits: 5, frac_bits: 3 }
    }

    /// Format of the pre-defined hash matrix elements: 1 sign + 5 frac (6 bits).
    #[must_use]
    pub const fn hash_matrix() -> Self {
        Self { int_bits: 0, frac_bits: 5 }
    }

    /// Number of integer bits (excluding the sign bit).
    #[must_use]
    pub const fn int_bits(&self) -> u32 {
        self.int_bits
    }

    /// Number of fraction bits.
    #[must_use]
    pub const fn frac_bits(&self) -> u32 {
        self.frac_bits
    }

    /// Total storage width including the sign bit.
    #[must_use]
    pub const fn total_bits(&self) -> u32 {
        1 + self.int_bits + self.frac_bits
    }

    /// Largest representable value.
    #[must_use]
    pub fn max_value(&self) -> f64 {
        (self.max_raw() as f64) / self.scale()
    }

    /// Smallest (most negative) representable value.
    #[must_use]
    pub fn min_value(&self) -> f64 {
        (self.min_raw() as f64) / self.scale()
    }

    /// Distance between two adjacent representable values (`2^-frac_bits`).
    #[must_use]
    pub fn resolution(&self) -> f64 {
        1.0 / self.scale()
    }

    fn scale(&self) -> f64 {
        f64::from(1u32 << self.frac_bits)
    }

    fn max_raw(&self) -> i64 {
        (1i64 << (self.int_bits + self.frac_bits)) - 1
    }

    fn min_raw(&self) -> i64 {
        -(1i64 << (self.int_bits + self.frac_bits))
    }
}

impl fmt::Display for FixedSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Q{}.{}", self.int_bits, self.frac_bits)
    }
}

/// A signed fixed-point value.
///
/// The raw integer is the real value multiplied by `2^frac_bits`. Arithmetic
/// widens exactly the way the hardware does: addition keeps the fraction
/// width and grows the integer part; multiplication produces
/// `frac_a + frac_b` fraction bits which the caller can [`Fixed::requantize`]
/// back down, mirroring a truncating/rounding hardware multiplier.
///
/// Conversions from `f32`/`f64` **saturate** at the format bounds — exactly
/// what a hardware quantizer does — and round to nearest (ties away from
/// zero).
///
/// # Examples
///
/// ```
/// use elsa_numeric::{Fixed, FixedSpec};
///
/// let spec = FixedSpec::qkv();
/// let a = Fixed::from_f64(1.5, spec);
/// let b = Fixed::from_f64(2.25, spec);
/// let sum = a + b;
/// assert_eq!(sum.to_f64(), 3.75);
///
/// // Multiplication widens the fraction field (3 + 3 = 6 bits)...
/// let prod = a * b;
/// assert_eq!(prod.spec().frac_bits(), 6);
/// assert_eq!(prod.to_f64(), 3.375);
/// // ...and can be requantized back to the storage format.
/// let stored = prod.requantize(spec);
/// assert_eq!(stored.to_f64(), 3.375); // exactly representable here
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fixed {
    raw: i64,
    spec: FixedSpec,
}

impl Fixed {
    /// Zero in the given format.
    #[must_use]
    pub const fn zero(spec: FixedSpec) -> Self {
        Self { raw: 0, spec }
    }

    /// Builds a value from its raw (scaled) integer representation.
    ///
    /// # Panics
    ///
    /// Panics if `raw` lies outside the representable raw range of `spec`;
    /// raw values come from inside the crate where formats are tracked
    /// explicitly, so an out-of-range raw indicates a datapath modelling bug.
    #[must_use]
    pub fn from_raw(raw: i64, spec: FixedSpec) -> Self {
        assert!(
            (spec.min_raw()..=spec.max_raw()).contains(&raw),
            "raw value {raw} out of range for {spec}"
        );
        Self { raw, spec }
    }

    /// Quantizes an `f64`, rounding to nearest and saturating at the bounds.
    /// NaN quantizes to zero (hardware quantizers never see NaN; this keeps
    /// the function total).
    #[must_use]
    pub fn from_f64(value: f64, spec: FixedSpec) -> Self {
        if value.is_nan() {
            return Self::zero(spec);
        }
        let scaled = (value * spec.scale()).round();
        let raw = if scaled >= spec.max_raw() as f64 {
            spec.max_raw()
        } else if scaled <= spec.min_raw() as f64 {
            spec.min_raw()
        } else {
            scaled as i64
        };
        Self { raw, spec }
    }

    /// Quantizes an `f32` (see [`Fixed::from_f64`]).
    #[must_use]
    pub fn from_f32(value: f32, spec: FixedSpec) -> Self {
        Self::from_f64(f64::from(value), spec)
    }

    /// The raw scaled integer.
    #[must_use]
    pub const fn raw(&self) -> i64 {
        self.raw
    }

    /// The format this value is stored in.
    #[must_use]
    pub const fn spec(&self) -> FixedSpec {
        self.spec
    }

    /// Converts back to `f64` (always exact: the raw range fits in 41 bits).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        (self.raw as f64) / self.spec.scale()
    }

    /// Converts back to `f32`.
    #[must_use]
    pub fn to_f32(&self) -> f32 {
        self.to_f64() as f32
    }

    /// Re-rounds this value into a (usually narrower) target format,
    /// saturating on overflow — the hardware's requantization step after a
    /// multiplier or accumulator.
    #[must_use]
    pub fn requantize(&self, target: FixedSpec) -> Self {
        match target.frac_bits.cmp(&self.spec.frac_bits) {
            Ordering::Equal => {
                let raw = self.raw.clamp(target.min_raw(), target.max_raw());
                Self { raw, spec: target }
            }
            Ordering::Greater => {
                let shift = target.frac_bits - self.spec.frac_bits;
                let widened = self.raw << shift;
                let raw = widened.clamp(target.min_raw(), target.max_raw());
                Self { raw, spec: target }
            }
            Ordering::Less => {
                let shift = self.spec.frac_bits - target.frac_bits;
                // Round to nearest, ties away from zero.
                let half = 1i64 << (shift - 1);
                let rounded = if self.raw >= 0 {
                    (self.raw + half) >> shift
                } else {
                    -((-self.raw + half) >> shift)
                };
                let raw = rounded.clamp(target.min_raw(), target.max_raw());
                Self { raw, spec: target }
            }
        }
    }

    /// Widening addition: keeps the (common) fraction width, grows the
    /// integer field by one bit so the sum can never overflow.
    ///
    /// # Panics
    ///
    /// Panics if the operands carry different fraction widths — the hardware
    /// aligns binary points statically, so mixing them is a modelling bug.
    #[must_use]
    pub fn wide_add(&self, other: &Self) -> Self {
        assert_eq!(
            self.spec.frac_bits, other.spec.frac_bits,
            "cannot add fixed-point values with different fraction widths"
        );
        let spec = FixedSpec::new(self.spec.int_bits.max(other.spec.int_bits) + 1, self.spec.frac_bits);
        Self { raw: self.raw + other.raw, spec }
    }

    /// Widening multiplication: fraction widths add, integer widths add.
    #[must_use]
    pub fn wide_mul(&self, other: &Self) -> Self {
        let spec = FixedSpec::new(
            self.spec.int_bits + other.spec.int_bits + 1,
            self.spec.frac_bits + other.spec.frac_bits,
        );
        Self { raw: self.raw * other.raw, spec }
    }

    /// Absolute value (saturates `min_value` to `max_raw`, as hardware |x| does).
    #[must_use]
    pub fn abs(&self) -> Self {
        let raw = self.raw.checked_abs().unwrap_or(i64::MAX).min(self.spec.max_raw());
        Self { raw, spec: self.spec }
    }

    /// True if the value is negative (the sign bit of the representation).
    #[must_use]
    pub const fn is_negative(&self) -> bool {
        self.raw < 0
    }
}

impl Add for Fixed {
    type Output = Fixed;

    fn add(self, rhs: Fixed) -> Fixed {
        self.wide_add(&rhs)
    }
}

impl Sub for Fixed {
    type Output = Fixed;

    fn sub(self, rhs: Fixed) -> Fixed {
        self.wide_add(&(-rhs))
    }
}

impl Mul for Fixed {
    type Output = Fixed;

    fn mul(self, rhs: Fixed) -> Fixed {
        self.wide_mul(&rhs)
    }
}

impl Neg for Fixed {
    type Output = Fixed;

    fn neg(self) -> Fixed {
        // -min_raw overflows the format by one step; widen by a bit to stay exact.
        if self.raw == self.spec.min_raw() {
            let spec = FixedSpec::new(self.spec.int_bits + 1, self.spec.frac_bits);
            Fixed { raw: -self.raw, spec }
        } else {
            Fixed { raw: -self.raw, spec: self.spec }
        }
    }
}

impl PartialEq for Fixed {
    fn eq(&self, other: &Self) -> bool {
        // Compare numeric values irrespective of format width.
        match self.spec.frac_bits.cmp(&other.spec.frac_bits) {
            Ordering::Equal => self.raw == other.raw,
            Ordering::Less => (self.raw << (other.spec.frac_bits - self.spec.frac_bits)) == other.raw,
            Ordering::Greater => self.raw == (other.raw << (self.spec.frac_bits - other.spec.frac_bits)),
        }
    }
}

impl Eq for Fixed {}

impl PartialOrd for Fixed {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Fixed {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.spec.frac_bits.cmp(&other.spec.frac_bits) {
            Ordering::Equal => self.raw.cmp(&other.raw),
            Ordering::Less => (self.raw << (other.spec.frac_bits - self.spec.frac_bits)).cmp(&other.raw),
            Ordering::Greater => self.raw.cmp(&(other.raw << (self.spec.frac_bits - other.spec.frac_bits))),
        }
    }
}

impl fmt::Display for Fixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ({})", self.to_f64(), self.spec)
    }
}

/// Key/query/value element in the storage format of §IV-E
/// (sign + 5 integer + 3 fraction bits).
///
/// A thin convenience wrapper over [`Fixed`] pinned to [`FixedSpec::qkv`].
///
/// # Examples
///
/// ```
/// use elsa_numeric::QkvFixed;
/// let x = QkvFixed::from_f32(-1.44);
/// assert_eq!(x.to_f32(), -1.5); // rounded to a multiple of 1/8
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct QkvFixed(Fixed);

impl QkvFixed {
    /// Quantizes an `f32` activation into the 9-bit storage format.
    #[must_use]
    pub fn from_f32(value: f32) -> Self {
        Self(Fixed::from_f32(value, FixedSpec::qkv()))
    }

    /// The quantized value as `f32`.
    #[must_use]
    pub fn to_f32(&self) -> f32 {
        self.0.to_f32()
    }

    /// Access the underlying [`Fixed`] for widened arithmetic.
    #[must_use]
    pub fn as_fixed(&self) -> Fixed {
        self.0
    }

    /// Quantizes a whole slice in place, returning the quantized copies.
    #[must_use]
    pub fn quantize_slice(values: &[f32]) -> Vec<f32> {
        values.iter().map(|&v| Self::from_f32(v).to_f32()).collect()
    }
}

impl Default for QkvFixed {
    fn default() -> Self {
        Self(Fixed::zero(FixedSpec::qkv()))
    }
}

impl fmt::Display for QkvFixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

/// Hash-matrix element in the storage format of §IV-E (sign + 5 fraction bits).
///
/// # Examples
///
/// ```
/// use elsa_numeric::HashFixed;
/// let x = HashFixed::from_f32(0.49);
/// assert_eq!(x.to_f32(), 0.5); // resolution 1/32
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct HashFixed(Fixed);

impl HashFixed {
    /// Quantizes an `f32` hash-matrix coefficient into the 6-bit format.
    #[must_use]
    pub fn from_f32(value: f32) -> Self {
        Self(Fixed::from_f32(value, FixedSpec::hash_matrix()))
    }

    /// The quantized value as `f32`.
    #[must_use]
    pub fn to_f32(&self) -> f32 {
        self.0.to_f32()
    }

    /// Access the underlying [`Fixed`] for widened arithmetic.
    #[must_use]
    pub fn as_fixed(&self) -> Fixed {
        self.0
    }

    /// Quantizes a whole slice, returning the quantized copies.
    #[must_use]
    pub fn quantize_slice(values: &[f32]) -> Vec<f32> {
        values.iter().map(|&v| Self::from_f32(v).to_f32()).collect()
    }
}

impl Default for HashFixed {
    fn default() -> Self {
        Self(Fixed::zero(FixedSpec::hash_matrix()))
    }
}

impl fmt::Display for HashFixed {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(&self.0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qkv_spec_matches_paper() {
        let spec = FixedSpec::qkv();
        assert_eq!(spec.total_bits(), 9);
        assert_eq!(spec.resolution(), 0.125);
        assert_eq!(spec.max_value(), 31.875);
        assert_eq!(spec.min_value(), -32.0);
    }

    #[test]
    fn hash_spec_matches_paper() {
        let spec = FixedSpec::hash_matrix();
        assert_eq!(spec.total_bits(), 6);
        assert_eq!(spec.resolution(), 1.0 / 32.0);
        assert!((spec.max_value() - 31.0 / 32.0).abs() < 1e-12);
    }

    #[test]
    fn saturating_conversion() {
        let spec = FixedSpec::qkv();
        assert_eq!(Fixed::from_f64(1000.0, spec).to_f64(), 31.875);
        assert_eq!(Fixed::from_f64(-1000.0, spec).to_f64(), -32.0);
        assert_eq!(Fixed::from_f64(f64::NAN, spec).to_f64(), 0.0);
    }

    #[test]
    fn round_to_nearest() {
        let spec = FixedSpec::qkv();
        assert_eq!(Fixed::from_f64(0.0624, spec).to_f64(), 0.0); // 0.0624*8 = 0.4992 -> 0
        assert_eq!(Fixed::from_f64(0.07, spec).to_f64(), 0.125); // 0.07*8 = 0.56 -> 1
    }

    #[test]
    fn rounding_halfway() {
        let spec = FixedSpec::qkv();
        // 0.0625 scaled by 8 = 0.5 -> rounds away from zero to 1 -> 0.125
        assert_eq!(Fixed::from_f64(0.0625, spec).to_f64(), 0.125);
        assert_eq!(Fixed::from_f64(-0.0625, spec).to_f64(), -0.125);
    }

    #[test]
    fn addition_widens_int_field() {
        let spec = FixedSpec::qkv();
        let max = Fixed::from_f64(31.875, spec);
        let sum = max + max;
        assert_eq!(sum.to_f64(), 63.75);
        assert_eq!(sum.spec().int_bits(), 6);
        assert_eq!(sum.spec().frac_bits(), 3);
    }

    #[test]
    fn multiplication_widens_both_fields() {
        let a = Fixed::from_f64(31.875, FixedSpec::qkv());
        let b = Fixed::from_f64(-32.0, FixedSpec::qkv());
        let prod = a * b;
        assert_eq!(prod.to_f64(), 31.875 * -32.0);
        assert_eq!(prod.spec().frac_bits(), 6);
    }

    #[test]
    fn requantize_round_trip() {
        let wide = Fixed::from_f64(3.140625, FixedSpec::new(8, 6));
        let narrow = wide.requantize(FixedSpec::qkv());
        assert_eq!(narrow.to_f64(), 3.125);
        let widened = narrow.requantize(FixedSpec::new(8, 6));
        assert_eq!(widened.to_f64(), 3.125);
    }

    #[test]
    fn requantize_saturates() {
        let wide = Fixed::from_f64(100.0, FixedSpec::new(10, 3));
        let narrow = wide.requantize(FixedSpec::qkv());
        assert_eq!(narrow.to_f64(), 31.875);
    }

    #[test]
    fn negation_of_min_widens() {
        let spec = FixedSpec::qkv();
        let min = Fixed::from_f64(-32.0, spec);
        let neg = -min;
        assert_eq!(neg.to_f64(), 32.0);
    }

    #[test]
    fn ordering_across_formats() {
        let a = Fixed::from_f64(1.5, FixedSpec::qkv());
        let b = Fixed::from_f64(1.5, FixedSpec::new(5, 6));
        assert_eq!(a, b);
        let c = Fixed::from_f64(1.25, FixedSpec::new(5, 6));
        assert!(c < a);
    }

    #[test]
    fn qkv_wrapper_quantizes() {
        assert_eq!(QkvFixed::from_f32(3.17).to_f32(), 3.125);
        assert_eq!(QkvFixed::from_f32(-0.06).to_f32(), 0.0); // |-0.06*8| = 0.48 rounds to 0
        assert_eq!(QkvFixed::default().to_f32(), 0.0);
    }

    #[test]
    fn hash_wrapper_quantizes() {
        assert_eq!(HashFixed::from_f32(0.49).to_f32(), 0.5);
        // Saturates just below 1.
        assert!((HashFixed::from_f32(2.0).to_f32() - 31.0 / 32.0).abs() < 1e-6);
    }

    #[test]
    fn quantize_slice_matches_elementwise() {
        let data = [0.1f32, -0.2, 5.05, -31.99];
        let q = QkvFixed::quantize_slice(&data);
        for (orig, quant) in data.iter().zip(&q) {
            assert_eq!(*quant, QkvFixed::from_f32(*orig).to_f32());
        }
    }

    #[test]
    fn display_is_nonempty() {
        let x = Fixed::from_f64(1.0, FixedSpec::qkv());
        assert!(!format!("{x}").is_empty());
        assert!(!format!("{x:?}").is_empty());
        assert_eq!(format!("{}", FixedSpec::qkv()), "Q5.3");
    }
}
