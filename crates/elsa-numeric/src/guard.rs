//! Numeric guards over the LUT-based functional units.
//!
//! The ELSA datapath has no trap hardware: a `NaN` that sneaks into the
//! exponent unit, a zero routed into the reciprocal, or a score that
//! saturates the custom floating-point format all propagate silently into
//! the attention output. Related approximate-softmax accelerator designs
//! (H-FA, FLASH-D) share the same failure modes — overflow and NaN
//! propagation must be *detected and contained*, not served.
//!
//! This module adds the containment primitives:
//!
//! * checked variants of the special-function units
//!   ([`ExpUnit::exp_checked`], [`ReciprocalUnit::reciprocal_checked`],
//!   [`SqrtUnit::sqrt_checked`]) that classify a non-finite or saturated
//!   result as a typed [`NumericFault`] instead of returning garbage;
//! * [`ensure_finite`], the guard the serving path runs over LUT outputs
//!   and attention scores before results leave the accelerator model;
//! * [`SaturationCounter`], an accumulator for fault statistics so a
//!   deployment can observe *how often* its datapath saturates.
//!
//! The un-checked unit methods are untouched: the cycle-level simulator's
//! inner loop keeps its allocation-free fast path, and the guards run at the
//! serving boundary (see `elsa-runtime`) where a trip triggers graceful
//! degradation to exact attention rather than a crash.

use std::fmt;

use crate::cfloat::CustomFloat;
use crate::lut::{ExpUnit, ReciprocalUnit, SqrtUnit};

/// A detected numeric fault in the datapath.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NumericFault {
    /// A value that must be finite was `NaN` or `±∞`.
    NonFinite {
        /// Which unit or datapath stage observed the value.
        context: &'static str,
        /// The offending value (NaN compares unequal; kept for Display).
        value: f64,
    },
    /// A result clamped to the limit of its number format.
    Saturated {
        /// Which unit or datapath stage produced the saturated value.
        context: &'static str,
    },
}

impl fmt::Display for NumericFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            NumericFault::NonFinite { context, value } => {
                write!(f, "non-finite value {value} in {context}")
            }
            NumericFault::Saturated { context } => write!(f, "saturated output in {context}"),
        }
    }
}

impl std::error::Error for NumericFault {}

/// Requires `x` to be finite, tagging the failure with its datapath stage.
///
/// # Errors
///
/// Returns [`NumericFault::NonFinite`] when `x` is `NaN` or infinite.
pub fn ensure_finite(context: &'static str, x: f64) -> Result<f64, NumericFault> {
    if x.is_finite() {
        Ok(x)
    } else {
        Err(NumericFault::NonFinite { context, value: x })
    }
}

fn is_saturated(x: CustomFloat) -> bool {
    !x.is_zero() && x.to_f64().abs() >= CustomFloat::max_value().to_f64()
}

impl ExpUnit {
    /// [`exp`](Self::exp) with a finite-output check: a non-finite input or
    /// a result at the ceiling of the custom format is reported instead of
    /// silently flowing into the softmax accumulation.
    ///
    /// # Errors
    ///
    /// Returns [`NumericFault::NonFinite`] for a `NaN`/`±∞` input and
    /// [`NumericFault::Saturated`] when the result clamps to the format
    /// maximum.
    pub fn exp_checked(&self, x: f64) -> Result<CustomFloat, NumericFault> {
        let x = ensure_finite("exp unit input", x)?;
        let y = self.exp(x);
        if is_saturated(y) {
            return Err(NumericFault::Saturated { context: "exp unit output" });
        }
        Ok(y)
    }
}

impl ReciprocalUnit {
    /// [`reciprocal`](Self::reciprocal) with a saturation check: the
    /// hardware's divide-by-zero convention (return the format maximum) is
    /// surfaced as a fault so the caller can degrade instead of serving a
    /// pseudo-infinity.
    ///
    /// # Errors
    ///
    /// Returns [`NumericFault::Saturated`] for a zero input (the unit's
    /// saturated output) and [`NumericFault::NonFinite`] if the result
    /// round-trips to a non-finite `f64`.
    pub fn reciprocal_checked(&self, x: CustomFloat) -> Result<CustomFloat, NumericFault> {
        if x.is_zero() {
            return Err(NumericFault::Saturated { context: "reciprocal unit input zero" });
        }
        let y = self.reciprocal(x);
        ensure_finite("reciprocal unit output", y.to_f64())?;
        Ok(y)
    }
}

impl SqrtUnit {
    /// [`sqrt`](Self::sqrt) with a finite-input check. The datapath squares
    /// its input before this unit, so negatives cannot occur — but a `NaN`
    /// norm (from corrupted key memory) must not silently become zero.
    ///
    /// # Errors
    ///
    /// Returns [`NumericFault::NonFinite`] when the input is `NaN`/`±∞`.
    pub fn sqrt_checked(&self, x: f64) -> Result<f64, NumericFault> {
        let x = ensure_finite("sqrt unit input", x)?;
        Ok(self.sqrt(x))
    }
}

/// Accumulates numeric-fault statistics across many guarded evaluations.
///
/// # Examples
///
/// ```
/// use elsa_numeric::{guard::SaturationCounter, CustomFloat, ReciprocalUnit};
///
/// let unit = ReciprocalUnit::new();
/// let mut counter = SaturationCounter::default();
/// counter.observe(&unit.reciprocal_checked(CustomFloat::from_f32(2.0)));
/// counter.observe(&unit.reciprocal_checked(CustomFloat::zero()));
/// assert_eq!(counter.total(), 2);
/// assert_eq!(counter.saturated(), 1);
/// assert!((counter.fault_fraction() - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SaturationCounter {
    total: u64,
    saturated: u64,
    non_finite: u64,
}

impl SaturationCounter {
    /// Records the outcome of one guarded evaluation.
    pub fn observe<T>(&mut self, result: &Result<T, NumericFault>) {
        self.total += 1;
        match result {
            Ok(_) => {}
            Err(NumericFault::Saturated { .. }) => self.saturated += 1,
            Err(NumericFault::NonFinite { .. }) => self.non_finite += 1,
        }
    }

    /// Evaluations observed so far.
    #[must_use]
    pub const fn total(&self) -> u64 {
        self.total
    }

    /// Saturation faults observed.
    #[must_use]
    pub const fn saturated(&self) -> u64 {
        self.saturated
    }

    /// Non-finite faults observed.
    #[must_use]
    pub const fn non_finite(&self) -> u64 {
        self.non_finite
    }

    /// Faults of either kind as a fraction of all observations
    /// (0.0 when nothing was observed).
    #[must_use]
    pub fn fault_fraction(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            (self.saturated + self.non_finite) as f64 / self.total as f64
        }
    }

    /// Folds another counter into this one (for per-thread accumulation).
    pub fn merge(&mut self, other: &SaturationCounter) {
        self.total += other.total;
        self.saturated += other.saturated;
        self.non_finite += other.non_finite;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finite_values_pass_through_unchanged() {
        assert_eq!(ensure_finite("t", 1.5), Ok(1.5));
        assert_eq!(ensure_finite("t", -0.0), Ok(-0.0));
    }

    #[test]
    fn non_finite_values_are_faults() {
        assert!(matches!(
            ensure_finite("stage", f64::NAN),
            Err(NumericFault::NonFinite { context: "stage", .. })
        ));
        assert!(ensure_finite("t", f64::INFINITY).is_err());
        assert!(ensure_finite("t", f64::NEG_INFINITY).is_err());
    }

    #[test]
    fn checked_exp_matches_unchecked_on_normal_inputs() {
        let unit = ExpUnit::new();
        for i in -40..=40 {
            let x = f64::from(i) * 0.5;
            let checked = unit.exp_checked(x).expect("finite input");
            assert_eq!(checked.to_bits(), unit.exp(x).to_bits());
        }
    }

    #[test]
    fn checked_exp_rejects_nan_and_infinity() {
        let unit = ExpUnit::new();
        assert!(unit.exp_checked(f64::NAN).is_err());
        assert!(unit.exp_checked(f64::INFINITY).is_err());
    }

    #[test]
    fn checked_reciprocal_flags_zero_as_saturated() {
        let unit = ReciprocalUnit::new();
        assert_eq!(
            unit.reciprocal_checked(CustomFloat::zero()),
            Err(NumericFault::Saturated { context: "reciprocal unit input zero" })
        );
        let ok = unit.reciprocal_checked(CustomFloat::from_f32(4.0)).expect("nonzero");
        assert_eq!(ok.to_bits(), unit.reciprocal(CustomFloat::from_f32(4.0)).to_bits());
    }

    #[test]
    fn checked_sqrt_guards_nan_norms() {
        let unit = SqrtUnit::new();
        assert!(unit.sqrt_checked(f64::NAN).is_err());
        assert_eq!(unit.sqrt_checked(2.0).expect("finite"), unit.sqrt(2.0));
        // Negative inputs remain the datapath convention (zero), not a fault.
        assert_eq!(unit.sqrt_checked(-3.0).expect("finite"), 0.0);
    }

    #[test]
    fn counter_tracks_fault_kinds_and_merges() {
        let mut a = SaturationCounter::default();
        a.observe(&Ok::<(), NumericFault>(()));
        a.observe(&Err::<(), _>(NumericFault::Saturated { context: "x" }));
        let mut b = SaturationCounter::default();
        b.observe(&Err::<(), _>(NumericFault::NonFinite { context: "y", value: f64::NAN }));
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.saturated(), 1);
        assert_eq!(a.non_finite(), 1);
        assert!((a.fault_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(SaturationCounter::default().fault_fraction(), 0.0);
    }
}
