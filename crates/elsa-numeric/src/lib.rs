//! Number formats and special functional units of the ELSA accelerator datapath.
//!
//! The ELSA paper (§IV-E, *Design Details*) specifies a heavily quantized datapath:
//!
//! * key / query / value matrix elements: fixed point, **1 sign + 5 integer + 3
//!   fraction bits** ([`QkvFixed`]);
//! * elements of the pre-defined Kronecker hash matrices: fixed point, **1 sign +
//!   5 fraction bits** ([`HashFixed`]);
//! * intermediate values: the *minimal necessary integer bitwidth to avoid
//!   overflow while maintaining the number of fraction bits* (modelled by
//!   [`Fixed`]'s wide internal representation plus [`Fixed::requantize`]);
//! * outputs of the exponent function and everything downstream of it: a custom
//!   floating-point format with **1 sign + 10 exponent + 5 fraction bits**
//!   ([`CustomFloat`]).
//!
//! The special functional units of §IV-E are modelled bit-accurately where the
//! paper gives enough detail:
//!
//! * [`ExpUnit`] — `e^x = 2^frac((log2 e)·x) · 2^floor((log2 e)·x)` with a
//!   32-entry lookup table for the fractional power of two;
//! * [`ReciprocalUnit`] — a 32-entry lookup table over the 5 mantissa bits;
//! * [`SqrtUnit`] — the *tabulate and multiply* scheme (Takagi; Istoan & Pasca)
//!   using a table lookup followed by an operand-modified multiplication;
//! * [`CosLut`] — the `k+1`-entry `cos(π/k·h − θ_bias)` table used by the
//!   candidate selection modules (§IV-C).
//!
//! The [`fused`] module adds the functional units of the FlashAttention-class
//! streaming competitor (`elsa-baselines::FlashModel`): [`ExpMultUnit`], a
//! fused exponential-multiply with a single output rounding, and
//! [`LogDomainAdder`], the H-FA log-domain accumulator.
//!
//! Everything in this crate is deterministic and allocation-free (after unit
//! construction) so that the cycle-level simulator in `elsa-sim` can call it in
//! its inner loop.
//!
//! # Examples
//!
//! ```
//! use elsa_numeric::{QkvFixed, ExpUnit};
//!
//! // Quantize an activation the way the ELSA datapath would.
//! let x = QkvFixed::from_f32(3.17f32);
//! assert!((x.to_f32() - 3.125).abs() < 1e-6); // 3 fraction bits => 1/8 steps
//!
//! // Exponentiate an attention score through the LUT-based unit.
//! let unit = ExpUnit::new();
//! let e = unit.exp(2.0);
//! assert!((e.to_f32() - 7.389).abs() / 7.389 < 0.05);
//! ```

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod adder_tree;
pub mod cfloat;
pub mod fixed;
pub mod fused;
pub mod guard;
pub mod lut;

pub use adder_tree::AdderTree;
pub use cfloat::CustomFloat;
pub use fixed::{Fixed, FixedSpec, HashFixed, QkvFixed};
pub use fused::{ExpMultUnit, LogDomainAdder};
pub use guard::{ensure_finite, NumericFault, SaturationCounter};
pub use lut::{CosLut, ExpUnit, ReciprocalUnit, SqrtUnit};
