//! Lookup-table-based special functional units (§IV-E, *Special Functional Units*).
//!
//! The ELSA accelerator avoids iterative math hardware entirely: the exponent,
//! reciprocal and square-root functions are each a small table plus at most
//! one multiply, and the `cos(π/k·h − θ_bias)` needed by candidate selection
//! is a fully precomputed `k+1`-entry table indexed by the Hamming distance.

use crate::cfloat::CustomFloat;

/// Number of entries in the exponent / reciprocal tables, fixed by the paper.
pub const LUT_ENTRIES: usize = 32;

/// The exponent unit: computes `e^x` as
/// `2^frac((log2 e)·x) · 2^floor((log2 e)·x)` using a 32-entry table of
/// fractional powers of two.
///
/// The table stores `2^((i + 0.5)/32)` — the midpoint of each segment — which
/// halves the worst-case relative error versus storing the left edge
/// (≈1.1% instead of ≈2.2%).
///
/// # Examples
///
/// ```
/// use elsa_numeric::ExpUnit;
/// let unit = ExpUnit::new();
/// let y = unit.exp(1.0).to_f64();
/// assert!(((y - std::f64::consts::E) / std::f64::consts::E).abs() < 0.03);
/// ```
#[derive(Debug, Clone)]
pub struct ExpUnit {
    table: [f64; LUT_ENTRIES],
}

impl ExpUnit {
    /// Builds the unit, populating the 32-entry fractional-power table.
    #[must_use]
    pub fn new() -> Self {
        let mut table = [0.0; LUT_ENTRIES];
        for (i, slot) in table.iter_mut().enumerate() {
            *slot = f64::powf(2.0, (i as f64 + 0.5) / LUT_ENTRIES as f64);
        }
        Self { table }
    }

    /// Computes `e^x` in the custom floating-point output format.
    ///
    /// The decomposition is exact in hardware: `(log2 e)·x` is split into its
    /// integer part (which becomes the exponent field directly) and its
    /// fractional part (which indexes the table to produce the mantissa).
    #[must_use]
    pub fn exp(&self, x: f64) -> CustomFloat {
        let y = std::f64::consts::LOG2_E * x;
        let floor = y.floor();
        let frac = y - floor;
        let idx = ((frac * LUT_ENTRIES as f64) as usize).min(LUT_ENTRIES - 1);
        let mantissa = self.table[idx];
        CustomFloat::from_f64(mantissa * f64::powi(2.0, floor as i32))
    }

    /// Worst-case relative error of the unit (half a table segment in log2
    /// space, plus the output format's rounding).
    #[must_use]
    pub fn worst_case_relative_error() -> f64 {
        let seg = f64::powf(2.0, 0.5 / LUT_ENTRIES as f64) - 1.0;
        seg + CustomFloat::epsilon()
    }
}

impl Default for ExpUnit {
    fn default() -> Self {
        Self::new()
    }
}

/// The reciprocal unit: a 32-entry lookup over the 5-bit mantissa of a
/// [`CustomFloat`], with the exponent negated.
///
/// # Examples
///
/// ```
/// use elsa_numeric::{CustomFloat, ReciprocalUnit};
/// let unit = ReciprocalUnit::new();
/// let r = unit.reciprocal(CustomFloat::from_f32(4.0)).to_f64();
/// assert!((r - 0.25).abs() < 0.01);
/// ```
#[derive(Debug, Clone)]
pub struct ReciprocalUnit {
    table: [f64; LUT_ENTRIES],
}

impl ReciprocalUnit {
    /// Builds the unit; entry `f` holds `1 / (1 + (f + 0.5)/32)`, the
    /// reciprocal of the midpoint of mantissa segment `f`.
    #[must_use]
    pub fn new() -> Self {
        let mut table = [0.0; LUT_ENTRIES];
        for (f, slot) in table.iter_mut().enumerate() {
            *slot = 1.0 / (1.0 + (f as f64 + 0.5) / LUT_ENTRIES as f64);
        }
        Self { table }
    }

    /// Computes `1/x` for a nonzero custom float.
    ///
    /// Returns the format's maximum value when `x` is zero — a hardware
    /// reciprocal has no trap mechanism, and the pipeline only ever divides
    /// by a sum of exponentials which is strictly positive.
    #[must_use]
    pub fn reciprocal(&self, x: CustomFloat) -> CustomFloat {
        if x.is_zero() {
            return CustomFloat::max_value();
        }
        let mant_recip = self.table[x.fraction() as usize];
        let exp = f64::powi(2.0, -(i32::from(x.biased_exponent()) - 511));
        let mag = mant_recip * exp;
        CustomFloat::from_f64(if x.is_negative() { -mag } else { mag })
    }

    /// Convenience: reciprocal of an `f64` routed through the custom format,
    /// as the output-division module sees it.
    #[must_use]
    pub fn reciprocal_f64(&self, x: f64) -> f64 {
        self.reciprocal(CustomFloat::from_f64(x)).to_f64()
    }
}

impl Default for ReciprocalUnit {
    fn default() -> Self {
        Self::new()
    }
}

/// The square-root unit, implementing the *tabulate and multiply* scheme
/// (Takagi 1998; Istoan & Pasca 2015): one table lookup providing both the
/// square root at a segment midpoint and its derivative, followed by a single
/// multiply-add correction.
///
/// Used by the norm computation module to produce `‖K_y‖ = sqrt(K_y · K_y)`.
///
/// # Examples
///
/// ```
/// use elsa_numeric::SqrtUnit;
/// let unit = SqrtUnit::new();
/// assert!((unit.sqrt(2.0) - std::f64::consts::SQRT_2).abs() < 1e-3);
/// assert_eq!(unit.sqrt(0.0), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct SqrtUnit {
    /// Segment midpoint square roots over m ∈ [1, 4).
    root: [f64; LUT_ENTRIES],
    /// Segment derivative `1/(2·sqrt(midpoint))` for the multiply step.
    slope: [f64; LUT_ENTRIES],
}

impl SqrtUnit {
    /// Builds the tables over the normalized mantissa range `[1, 4)`
    /// (two octaves, so the exponent can always be made even).
    #[must_use]
    pub fn new() -> Self {
        let mut root = [0.0; LUT_ENTRIES];
        let mut slope = [0.0; LUT_ENTRIES];
        let seg = 3.0 / LUT_ENTRIES as f64;
        for i in 0..LUT_ENTRIES {
            let mid = 1.0 + (i as f64 + 0.5) * seg;
            root[i] = mid.sqrt();
            slope[i] = 0.5 / mid.sqrt();
        }
        Self { root, slope }
    }

    /// Computes `sqrt(x)` for `x ≥ 0`; negative inputs return zero (the norm
    /// datapath squares its input first, so negatives cannot occur).
    #[must_use]
    pub fn sqrt(&self, x: f64) -> f64 {
        if x <= 0.0 {
            return 0.0;
        }
        // Normalize to m * 4^e with m in [1, 4).
        let mut e = (x.log2() / 2.0).floor() as i32;
        let mut m = x / f64::powi(4.0, e);
        if m >= 4.0 {
            m /= 4.0;
            e += 1;
        } else if m < 1.0 {
            m *= 4.0;
            e -= 1;
        }
        let seg = 3.0 / LUT_ENTRIES as f64;
        let idx = (((m - 1.0) / seg) as usize).min(LUT_ENTRIES - 1);
        let mid = 1.0 + (idx as f64 + 0.5) * seg;
        // Tabulate (root) and multiply (slope correction).
        let r = self.root[idx] + (m - mid) * self.slope[idx];
        r * f64::powi(2.0, e)
    }

    /// Worst-case relative error of the first-order segment approximation.
    #[must_use]
    pub fn worst_case_relative_error() -> f64 {
        // |f''|/8 * seg^2 at m=1 where curvature is largest, f'' = -1/4 m^-3/2.
        let seg = 3.0 / LUT_ENTRIES as f64;
        seg * seg / 32.0 + 1e-12
    }
}

impl Default for SqrtUnit {
    fn default() -> Self {
        Self::new()
    }
}

/// The pre-populated `cos(max(0, π/k·h − θ_bias))` table of the candidate
/// selection module (§IV-C): `k+1` entries indexed by the Hamming distance
/// `h ∈ 0..=k`.
///
/// # Examples
///
/// ```
/// use elsa_numeric::CosLut;
/// let lut = CosLut::new(64, 0.127);
/// assert_eq!(lut.len(), 65);
/// assert_eq!(lut.value(0), 1.0);           // hamming 0 => angle clamps to 0
/// assert!(lut.value(32) < lut.value(16));  // monotone decreasing over [0, pi]
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CosLut {
    values: Vec<f64>,
    k: usize,
    theta_bias: f64,
}

impl CosLut {
    /// Builds the table for hash length `k` and angle-correction bias
    /// `theta_bias` (§III-B, *Angle Correction*).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize, theta_bias: f64) -> Self {
        assert!(k > 0, "hash length k must be positive");
        let values = (0..=k)
            .map(|h| {
                let angle = (std::f64::consts::PI / k as f64) * h as f64 - theta_bias;
                angle.max(0.0).cos()
            })
            .collect();
        Self { values, k, theta_bias }
    }

    /// The approximate `cos` of the angle estimated from Hamming distance `h`.
    ///
    /// # Panics
    ///
    /// Panics if `h > k` (a Hamming distance larger than the hash length is
    /// impossible by construction).
    #[must_use]
    pub fn value(&self, h: usize) -> f64 {
        self.values[h]
    }

    /// Number of entries (`k + 1`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Always false: the table has `k + 1 ≥ 2` entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The hash length this table was built for.
    #[must_use]
    pub const fn hash_length(&self) -> usize {
        self.k
    }

    /// The angle-correction bias baked into the table.
    #[must_use]
    pub const fn theta_bias(&self) -> f64 {
        self.theta_bias
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_unit_tracks_reference() {
        let unit = ExpUnit::new();
        let bound = ExpUnit::worst_case_relative_error() + 0.01;
        for i in -40..=40 {
            let x = f64::from(i) * 0.73;
            let approx = unit.exp(x).to_f64();
            let exact = x.exp();
            let rel = ((approx - exact) / exact).abs();
            assert!(rel < bound + 0.02, "exp({x}): rel err {rel}");
        }
    }

    #[test]
    fn exp_unit_output_in_custom_format() {
        let unit = ExpUnit::new();
        // e^60 ~ 1.1e26: far outside f16 range, must survive the custom format.
        let big = unit.exp(60.0).to_f64();
        assert!(big > 1e25 && big < 2e26);
        let small = unit.exp(-60.0).to_f64();
        assert!(small > 0.0 && small < 1e-25);
    }

    #[test]
    fn exp_unit_is_monotone_nondecreasing() {
        let unit = ExpUnit::new();
        let mut prev = 0.0;
        for i in -200..200 {
            let v = unit.exp(f64::from(i) * 0.1).to_f64();
            assert!(v >= prev, "exp not monotone at {i}");
            prev = v;
        }
    }

    #[test]
    fn reciprocal_tracks_reference() {
        let unit = ReciprocalUnit::new();
        for &x in &[1.0, 1.5, 2.0, 3.7, 100.0, 0.004, 7e10] {
            let r = unit.reciprocal_f64(x);
            let rel = ((r - 1.0 / x) * x).abs();
            // one segment of the 32-entry mantissa table ~ 1.5% worst case
            assert!(rel < 0.04, "recip({x}): rel err {rel}");
        }
    }

    #[test]
    fn reciprocal_of_zero_saturates() {
        let unit = ReciprocalUnit::new();
        assert_eq!(unit.reciprocal(CustomFloat::zero()), CustomFloat::max_value());
    }

    #[test]
    fn reciprocal_preserves_sign() {
        let unit = ReciprocalUnit::new();
        assert!(unit.reciprocal(CustomFloat::from_f64(-2.0)).to_f64() < 0.0);
    }

    #[test]
    fn sqrt_tracks_reference() {
        let unit = SqrtUnit::new();
        for &x in &[1.0, 2.0, 3.0, 4.0, 10.0, 100.0, 4096.0, 0.25, 0.001, 123.456] {
            let r = unit.sqrt(x);
            let rel = ((r - x.sqrt()) / x.sqrt()).abs();
            assert!(rel < 1e-3, "sqrt({x}): rel err {rel}");
        }
    }

    #[test]
    fn sqrt_edge_cases() {
        let unit = SqrtUnit::new();
        assert_eq!(unit.sqrt(0.0), 0.0);
        assert_eq!(unit.sqrt(-5.0), 0.0);
        assert!((unit.sqrt(1.0) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn sqrt_covers_key_norm_range() {
        // Norms of d=64 keys with |elem| <= 32: up to sqrt(64*1024) = 256.
        let unit = SqrtUnit::new();
        for i in 1..=256 {
            let x = f64::from(i * i);
            let r = unit.sqrt(x);
            assert!(((r - f64::from(i)) / f64::from(i)).abs() < 1e-3);
        }
    }

    #[test]
    fn cos_lut_matches_formula() {
        let k = 64;
        let bias = 0.127;
        let lut = CosLut::new(k, bias);
        for h in 0..=k {
            let angle = (std::f64::consts::PI / k as f64) * h as f64 - bias;
            let expect = angle.max(0.0).cos();
            assert!((lut.value(h) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn cos_lut_clamps_small_angles() {
        let lut = CosLut::new(64, 0.127);
        // h = 0,1,2 all give angle - bias <= 0 region boundaries:
        // pi/64 ~ 0.049: h<=2 -> angle <= 0.098 < 0.127 -> clamped to cos(0)=1.
        assert_eq!(lut.value(0), 1.0);
        assert_eq!(lut.value(1), 1.0);
        assert_eq!(lut.value(2), 1.0);
        assert!(lut.value(3) < 1.0);
    }

    #[test]
    fn cos_lut_sizes() {
        for k in [16, 32, 64, 128] {
            let lut = CosLut::new(k, 0.1);
            assert_eq!(lut.len(), k + 1);
            assert_eq!(lut.hash_length(), k);
            assert!(!lut.is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "k must be positive")]
    fn cos_lut_rejects_zero_k() {
        let _ = CosLut::new(0, 0.1);
    }
}
