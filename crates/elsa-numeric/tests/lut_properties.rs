//! Property tests guarding the §IV-E LUT functional units: the exponent,
//! reciprocal, and square-root approximations must stay inside their
//! analytical relative-error bounds against an `f64` reference across their
//! whole input domains.
//!
//! These are the numerical contracts the fixed-point/LUT datapath is built
//! on; the softmax pipeline composes all three units, so a silent regression
//! in any one of them corrupts every accuracy figure downstream.

use elsa_numeric::{CosLut, CustomFloat, ExpUnit, ReciprocalUnit, SqrtUnit};
use elsa_testkit::prelude::*;

/// One 32-entry mantissa segment of the reciprocal table, as a relative
/// half-width: the mantissa lies in [1, 2), the table is indexed by its top
/// 5 bits, and the stored value is the midpoint reciprocal.
fn reciprocal_segment_bound() -> f64 {
    // Worst case at mantissa ~ 1: segment width 1/32, so midpoint error
    // ~ 1/64 relative — plus one format epsilon for rounding the *input*
    // into the 5-bit-mantissa custom float and one for rounding the output.
    1.0 / 64.0 + 2.0 * CustomFloat::epsilon() + 1e-12
}

props! {
    config: Config::with_cases(256);

    // ---- exponent unit ----

    fn exp_relative_error_bounded_on_softmax_domain(x in range(-80.0, 80.0)) {
        // Softmax scores after max-subtraction are <= 0, but the unit is also
        // used on raw logits; cover both signs well past f16 range.
        let unit = ExpUnit::new();
        let approx = unit.exp(x).to_f64();
        let exact = x.exp();
        let rel = ((approx - exact) / exact).abs();
        prop_assert!(
            rel <= ExpUnit::worst_case_relative_error() + 1e-9,
            "exp({x}): rel err {rel} > bound {}",
            ExpUnit::worst_case_relative_error()
        );
    }

    fn exp_output_is_positive_and_finite(x in range(-200.0, 200.0)) {
        let unit = ExpUnit::new();
        let y = unit.exp(x).to_f64();
        prop_assert!(y > 0.0 || (x < -150.0 && y == 0.0), "exp({x}) = {y}");
        prop_assert!(y.is_finite(), "exp({x}) overflowed to {y}");
    }

    fn exp_monotone_on_random_pairs(a in range(-60.0, 60.0), b in range(-60.0, 60.0)) {
        let unit = ExpUnit::new();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(unit.exp(lo).to_f64() <= unit.exp(hi).to_f64());
    }

    // ---- reciprocal unit ----

    fn reciprocal_relative_error_bounded(mag in range(-12.0, 12.0), neg in bools()) {
        // Log-uniform magnitudes: softmax denominators span many octaves.
        let x = if neg { -1.0 } else { 1.0 } * 10f64.powf(mag);
        let unit = ReciprocalUnit::new();
        let r = unit.reciprocal_f64(x);
        let rel = ((r - 1.0 / x) * x).abs();
        prop_assert!(
            rel <= reciprocal_segment_bound(),
            "recip({x}): rel err {rel} > bound {}",
            reciprocal_segment_bound()
        );
    }

    fn reciprocal_preserves_sign_and_inverts_magnitude(mag in range(-6.0, 6.0), neg in bools()) {
        let x = if neg { -1.0 } else { 1.0 } * 10f64.powf(mag);
        let unit = ReciprocalUnit::new();
        let r = unit.reciprocal_f64(x);
        prop_assert_eq!(r.is_sign_negative(), x.is_sign_negative());
        // recip(recip(x)) returns to x within twice the one-pass bound.
        let back = unit.reciprocal_f64(r);
        let rel = ((back - x) / x).abs();
        prop_assert!(rel <= 2.0 * reciprocal_segment_bound() + 0.01, "double recip({x}): {rel}");
    }

    // ---- square-root unit ----

    fn sqrt_relative_error_bounded(mag in range(-9.0, 9.0)) {
        // Log-uniform over 18 decades; covers key norms (<= 256 for d=64
        // fixed-point keys) with huge margin on both sides.
        let x = 10f64.powf(mag);
        let unit = SqrtUnit::new();
        let r = unit.sqrt(x);
        let rel = ((r - x.sqrt()) / x.sqrt()).abs();
        // The tabulate-and-multiply bound plus f64 arithmetic slack.
        prop_assert!(
            rel <= SqrtUnit::worst_case_relative_error() + 1e-9,
            "sqrt({x}): rel err {rel} > bound {}",
            SqrtUnit::worst_case_relative_error()
        );
    }

    fn sqrt_monotone_on_random_pairs(a in range(0.0, 1e6), b in range(0.0, 1e6)) {
        let unit = SqrtUnit::new();
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(unit.sqrt(lo) <= unit.sqrt(hi) + 1e-12);
    }

    fn sqrt_of_square_recovers_norm(v in range(0.001, 300.0)) {
        // The norm datapath computes sqrt(dot(k, k)); squaring then rooting
        // must return the input within the unit's bound.
        let unit = SqrtUnit::new();
        let r = unit.sqrt(v * v);
        let rel = ((r - v) / v).abs();
        prop_assert!(rel <= SqrtUnit::worst_case_relative_error() + 1e-9, "norm {v}: {rel}");
    }

    // ---- cosine table ----

    fn cos_lut_within_unit_interval_and_monotone(k in ints(2, 256), h in ints(0, 257)) {
        prop_assume!(h <= k);
        let lut = CosLut::new(k, 0.127);
        let v = lut.value(h);
        prop_assert!((-1.0..=1.0).contains(&v), "cos value {v} outside [-1, 1]");
        if h > 0 {
            // Monotone nonincreasing in Hamming distance over [0, pi].
            prop_assert!(lut.value(h) <= lut.value(h - 1) + 1e-12);
        }
    }
}

#[test]
fn exp_bound_is_tight_enough_to_matter() {
    // The documented worst case (~1.1% + format eps) must not drift upward:
    // the paper's accuracy claims assume a sub-2% exponent unit.
    assert!(ExpUnit::worst_case_relative_error() < 0.03);
    assert!(SqrtUnit::worst_case_relative_error() < 1e-3);
}
