//! Property tests guarding the streaming-baseline functional units: the
//! fused exponential-multiply and the H-FA log-domain adder must stay inside
//! their documented analytical error bounds against an `f64` reference
//! across their whole input domains.
//!
//! These mirror `lut_properties.rs`: the `FlashModel` competitor's energy
//! and accuracy story both assume these bounds, so a silent regression here
//! invalidates the §VII baseline comparison the same way a LUT regression
//! invalidates ELSA's own accuracy figures.

use elsa_numeric::{CustomFloat, ExpMultUnit, ExpUnit, LogDomainAdder};
use elsa_testkit::prelude::*;
use elsa_testkit::TestRng;

props! {
    config: Config::with_cases(256);

    // ---- fused exponential-multiply unit ----

    fn exp_mult_relative_error_bounded(x in range(-60.0, 60.0), mag in range(-6.0, 6.0), neg in bools()) {
        // Streaming softmax multiplies e^{s-m} (s-m <= 0) by value elements
        // of either sign; cover raw-logit positives too.
        let y = if neg { -1.0 } else { 1.0 } * 10f64.powf(mag);
        let unit = ExpMultUnit::new();
        let approx = unit.exp_mult(x, y).to_f64();
        let exact = x.exp() * y;
        let rel = ((approx - exact) / exact).abs();
        prop_assert!(
            rel <= ExpMultUnit::worst_case_relative_error() + 1e-9,
            "exp_mult({x}, {y}): rel err {rel} > bound {}",
            ExpMultUnit::worst_case_relative_error()
        );
    }

    fn exp_mult_beats_unfused_two_rounding_bound(x in range(-30.0, 30.0), mag in range(-3.0, 3.0)) {
        // The whole point of fusion: one output rounding, not two. The fused
        // result must always sit within the *unfused* pipeline's wider bound
        // as well (sanity: fusing cannot make the error larger).
        let y = 10f64.powf(mag);
        let fused = ExpMultUnit::new().exp_mult(x, y).to_f64();
        let exact = x.exp() * y;
        let rel = ((fused - exact) / exact).abs();
        let unfused_bound = ExpUnit::worst_case_relative_error() + 2.0 * CustomFloat::epsilon();
        prop_assert!(rel <= unfused_bound + 1e-9, "exp_mult({x}, {y}): {rel}");
    }

    fn exp_mult_sign_follows_y(x in range(-20.0, 20.0), mag in range(-3.0, 3.0), neg in bools()) {
        let y = if neg { -1.0 } else { 1.0 } * 10f64.powf(mag);
        let unit = ExpMultUnit::new();
        let out = unit.exp_mult(x, y).to_f64();
        prop_assert_eq!(out.is_sign_negative(), y.is_sign_negative(), "exp_mult({}, {}) = {}", x, y, out);
    }

    // ---- log-domain adder ----

    fn log_add_absolute_error_bounded(a in range(-40.0, 40.0), b in range(-40.0, 40.0)) {
        let unit = LogDomainAdder::new();
        let got = unit.add(a, b);
        let exact = (f64::powf(2.0, a) + f64::powf(2.0, b)).log2();
        let err = (got - exact).abs();
        prop_assert!(
            err <= LogDomainAdder::worst_case_log2_error() + 1e-9,
            "add({a}, {b}): log2 err {err} > bound {}",
            LogDomainAdder::worst_case_log2_error()
        );
    }

    fn log_add_is_commutative_and_dominated_by_max(a in range(-50.0, 50.0), b in range(-50.0, 50.0)) {
        let unit = LogDomainAdder::new();
        let ab = unit.add(a, b);
        prop_assert_eq!(ab.to_bits(), unit.add(b, a).to_bits());
        // 2^a + 2^b lies in [max, 2*max]: the result is within [max, max+1].
        let m = a.max(b);
        prop_assert!(ab >= m && ab <= m + 1.0 + 1e-12, "add({a}, {b}) = {ab}");
    }

    fn log_sum_error_scales_linearly_with_length(n in ints(1, 64), seed in ints_u64(1, 1 << 32)) {
        // A streaming softmax denominator: n log-domain scores in [-20, 0],
        // folded in key order exactly as the H-FA accumulator would.
        let mut rng = TestRng::new(seed);
        let values: Vec<f64> = (0..n).map(|_| rng.uniform() * -20.0).collect();
        let unit = LogDomainAdder::new();
        let got = unit.sum(&values);
        let exact = values.iter().map(|&v| f64::powf(2.0, v)).sum::<f64>().log2();
        let bound = n as f64 * LogDomainAdder::worst_case_log2_error() + 1e-9;
        prop_assert!((got - exact).abs() <= bound, "sum of {n}: err {}", (got - exact).abs());
    }

    fn log_add_treats_neg_infinity_as_exact_zero(a in range(-100.0, 100.0)) {
        let unit = LogDomainAdder::new();
        prop_assert_eq!(unit.add(a, f64::NEG_INFINITY).to_bits(), a.to_bits());
        prop_assert_eq!(unit.add(f64::NEG_INFINITY, a).to_bits(), a.to_bits());
    }
}

#[test]
fn fused_bounds_are_tight_enough_to_matter() {
    // The fused unit inherits the exponent LUT's ~1.1% segment error plus
    // exactly one format epsilon; the documented bound must not drift.
    assert!(ExpMultUnit::worst_case_relative_error() < 0.03);
    assert!(
        ExpMultUnit::worst_case_relative_error()
            < ExpUnit::worst_case_relative_error() + CustomFloat::epsilon()
    );
    // One log-domain add is good to ~2.2% linear; a 512-key softmax
    // denominator stays under ~10^5 relative only because errors partially
    // cancel — the *bound* is what we document, and it must stay put.
    assert!(LogDomainAdder::worst_case_log2_error() < 0.032);
    assert!(LogDomainAdder::worst_case_relative_error(1) < 0.023);
    assert!(LogDomainAdder::worst_case_relative_error(2) > LogDomainAdder::worst_case_relative_error(1));
}
