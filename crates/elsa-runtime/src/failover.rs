//! Fault-tolerant serving: FIFO dispatch with failover, quarantine, and
//! graceful degradation to exact attention.
//!
//! [`FaultTolerantServer`] is the chaos-hardened sibling of
//! [`InferenceServer`](crate::InferenceServer). It serves the same FIFO
//! multi-accelerator simulation, but every dispatch consults a seeded
//! [`FaultPlan`]:
//!
//! * **Unit death** — units the plan declares dead are removed from the
//!   pool before the batch starts; their queued work rebalances over the
//!   survivors.
//! * **Transient faults** — a failed attempt burns its service time on the
//!   unit, then the request retries on whichever unit frees up first
//!   (bounded by [`FailoverPolicy::max_retries`]). Repeated faults
//!   quarantine the unit via [`HealthTracker`]; if quarantine ever empties
//!   the pool while non-dead units remain, the quarantined units are
//!   reinstated on probation rather than failing the rest of the batch.
//! * **Stragglers** — a slowed unit stretches the request's wall-clock
//!   service time; the FIFO queue behind it feels the delay.
//! * **Numeric corruption** — a corrupted result (NaN/∞/saturated output,
//!   wiped candidate set) is *detected by a guard on the result itself*,
//!   not by peeking at the plan, and the request is re-served with the
//!   approximation disabled (exact attention, the accelerator's base
//!   mode) and tagged `degraded`. The re-serve goes through the *tiled
//!   streaming* exact kernel (`elsa_attention::flash`): bit-identical to
//!   the naive base run, but O(n) transient memory instead of the O(n²)
//!   score matrix — the memory-light fallback an already-faulting unit
//!   should get.
//!
//! Every fault decision is a pure function of `(seed, unit, request,
//! attempt)`, so a batch replays bit-for-bit at any `ELSA_THREADS`, and a
//! **zero-fault plan is bit-identical to the fault-free server** — the
//! chaos layer costs one plan lookup per request, not a different code
//! path (enforced by `tests/fault_tolerance.rs`).

use elsa_attention::exact::AttentionInputs;
use elsa_core::ElsaAttention;
use elsa_fault::{FaultPlan, HealthTracker, SATURATION_LIMIT};
use elsa_linalg::Matrix;
use elsa_sim::{AcceleratorConfig, ElsaAccelerator, RunReport};

use crate::error::RuntimeError;
use crate::serving::{RequestRecord, ServingReport};

/// Dispatch limits for [`FaultTolerantServer`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FailoverPolicy {
    /// Maximum failed attempts per request before the dispatcher gives up.
    pub max_retries: u32,
    /// A request fails if no unit can *start* it by this time (seconds from
    /// batch arrival). `None` disables deadlines.
    pub deadline_s: Option<f64>,
    /// Consecutive faults on one unit before it is quarantined.
    pub quarantine_after: u32,
}

impl Default for FailoverPolicy {
    fn default() -> Self {
        Self { max_retries: 16, deadline_s: None, quarantine_after: 3 }
    }
}

/// A served batch: the accounting report plus the actual outputs.
///
/// `outputs[i]` is the attention output served for request `i` — exact
/// attention if the request degraded, `None` if it failed. Indices align
/// with `report.records`.
#[derive(Debug, Clone)]
pub struct ServedBatch {
    /// Per-request accounting, in arrival order.
    pub report: ServingReport,
    /// Served output per request (`None` for failed requests).
    pub outputs: Vec<Option<Matrix>>,
}

/// The numeric guard: a result is untrustworthy when its candidate set is
/// empty (a corrupted hash signature selects nothing) or any output value
/// is non-finite or saturated. One predicate catches NaN, ±∞, and the
/// fixed-point saturation sentinel: `!(v.abs() < SATURATION_LIMIT)`.
fn guard_trips(report: &RunReport) -> bool {
    (report.stats.num_queries > 0 && report.stats.selected_pairs == 0)
        || report.output.as_slice().iter().any(|v| !(v.abs() < SATURATION_LIMIT))
}

/// One request's unit-independent precompute: the approximate pipeline's
/// service time, the numeric-guard verdict on its clean result, and the
/// output itself (kept only when the caller wants outputs back).
struct Precomputed {
    service_s: f64,
    trips: bool,
    output: Option<Matrix>,
}

/// How one request left the dispatch loop.
enum Outcome {
    Served { unit: usize, service_s: f64, degraded: bool, output: Option<Matrix> },
    Failed { gave_up_at_s: f64 },
}

/// A FIFO multi-accelerator server that survives a [`FaultPlan`].
#[derive(Debug)]
pub struct FaultTolerantServer {
    accel_config: AcceleratorConfig,
    operator: ElsaAttention,
    plan: FaultPlan,
    policy: FailoverPolicy,
}

impl FaultTolerantServer {
    /// Builds the server.
    ///
    /// # Panics
    ///
    /// Panics if the operator does not fit the hardware configuration; see
    /// [`FaultTolerantServer::try_new`] for the non-panicking form.
    #[must_use]
    pub fn new(
        accel_config: AcceleratorConfig,
        operator: ElsaAttention,
        plan: FaultPlan,
        policy: FailoverPolicy,
    ) -> Self {
        match Self::try_new(accel_config, operator, plan, policy) {
            Ok(server) => server,
            // elsa-lint: allow(panic-policy) reason="documented # Panics wrapper; try_new is the serving-path form"
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the server, reporting an operator/hardware misfit as a typed
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Misfit`] when the hardware configuration is
    /// invalid or the operator's dimensions do not match it.
    pub fn try_new(
        accel_config: AcceleratorConfig,
        operator: ElsaAttention,
        plan: FaultPlan,
        policy: FailoverPolicy,
    ) -> Result<Self, RuntimeError> {
        // Same admission rules as the fault-free server.
        let _ = crate::serving::InferenceServer::try_new(accel_config, operator.clone())?;
        Ok(Self { accel_config, operator, plan, policy })
    }

    /// The governing fault plan.
    #[must_use]
    pub const fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The dispatch policy.
    #[must_use]
    pub const fn policy(&self) -> &FailoverPolicy {
        &self.policy
    }

    /// Serves a batch of simultaneously arriving requests FIFO over the
    /// surviving accelerators.
    ///
    /// The approximate pipeline runs once per request (fanned out over
    /// worker threads exactly like the fault-free server — per-request
    /// results are unit-independent); the serial dispatch fold then charges
    /// service times, faults, retries, and degradations to units in arrival
    /// order, so the batch is deterministic at any worker count.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Request`] when a request does not fit the
    /// hardware (the batch is rejected up front), or
    /// [`RuntimeError::NoHealthyUnits`] when the plan killed every unit in
    /// the pool.
    pub fn serve(&self, requests: &[AttentionInputs]) -> Result<ServedBatch, RuntimeError> {
        self.dispatch(requests, true)
    }

    /// Like [`FaultTolerantServer::serve`], but discards the output
    /// matrices and returns only the accounting report — the exact
    /// capability (and cost) of the fault-free
    /// [`InferenceServer::serve`](crate::InferenceServer::serve), which is
    /// why the zero-fault overhead benchmark compares against this form.
    ///
    /// # Errors
    ///
    /// Same contract as [`FaultTolerantServer::serve`].
    pub fn serve_report(&self, requests: &[AttentionInputs]) -> Result<ServingReport, RuntimeError> {
        Ok(self.dispatch(requests, false)?.report)
    }

    fn dispatch(
        &self,
        requests: &[AttentionInputs],
        keep_outputs: bool,
    ) -> Result<ServedBatch, RuntimeError> {
        let accel = ElsaAccelerator::try_new(self.accel_config, self.operator.clone())?;
        for (index, request) in requests.iter().enumerate() {
            accel
                .try_check_fit(request)
                .map_err(|source| RuntimeError::Request { index, source })?;
        }
        let units = self.accel_config.num_accelerators;
        let mut health = HealthTracker::new(units, self.policy.quarantine_after);
        for unit in 0..units {
            if self.plan.unit_dead(unit) {
                health.mark_dead(unit);
            }
        }
        if health.num_available() == 0 {
            return Err(RuntimeError::NoHealthyUnits);
        }

        // Unit-independent precompute, identical to the fault-free server:
        // the approximate run, its service seconds, and the numeric-guard
        // verdict on the clean result. Guard checks are unit-independent,
        // so they fan out here instead of serializing in the fold; the
        // output matrix is dropped immediately unless the caller wants it.
        let run_one = |i: usize| {
            let run = accel.run(&requests[i]);
            Precomputed {
                service_s: run.cycles.seconds(&self.accel_config),
                trips: guard_trips(&run),
                output: keep_outputs.then_some(run.output),
            }
        };
        let work: usize = requests
            .iter()
            .map(|r| r.num_queries().saturating_mul(r.num_keys()).saturating_mul(r.dim()))
            .sum();
        let runs: Vec<Precomputed> = if elsa_parallel::beneficial(work) && requests.len() > 1 {
            elsa_parallel::par_map_indexed(requests.len(), run_one)
        } else {
            (0..requests.len()).map(run_one).collect()
        };

        let mut free_at = vec![0.0f64; units];
        let mut records = Vec::with_capacity(requests.len());
        let mut outputs = Vec::with_capacity(requests.len());
        for (i, (request, mut run)) in requests.iter().zip(runs.into_iter()).enumerate() {
            let mut retries = 0u32;
            let mut attempt = 0u32;
            let outcome = loop {
                // FIFO over survivors: the available unit that frees first.
                let Some(unit) = health
                    .available_units()
                    .into_iter()
                    .min_by(|&a, &b| free_at[a].total_cmp(&free_at[b]))
                else {
                    // Quarantine is probation, not death: if faults emptied
                    // the pool but survivors exist, put the quarantined
                    // units back on probation (circuit-breaker half-open)
                    // instead of failing every remaining request.
                    for u in 0..units {
                        health.reinstate(u);
                    }
                    if health.num_available() == 0 {
                        // The whole pool is dead.
                        break Outcome::Failed {
                            gave_up_at_s: free_at.iter().copied().fold(0.0, f64::max),
                        };
                    }
                    continue;
                };
                if let Some(deadline) = self.policy.deadline_s {
                    if free_at[unit] > deadline {
                        break Outcome::Failed { gave_up_at_s: free_at[unit] };
                    }
                }
                let slowdown = self.plan.straggler_factor(unit, i);
                if self.plan.transient_fault(unit, i, attempt) {
                    // The failed attempt still occupied the unit.
                    free_at[unit] += run.service_s * slowdown;
                    health.record_fault(unit);
                    retries += 1;
                    attempt += 1;
                    if retries > self.policy.max_retries {
                        break Outcome::Failed { gave_up_at_s: free_at[unit] };
                    }
                    continue;
                }
                health.record_success(unit);
                // The guard trips on a naturally corrupt result (the clean
                // verdict, precomputed above) or on planned corruption:
                // every `CorruptionKind` defeats `!(v.abs() <
                // SATURATION_LIMIT)` or empties the candidate set, so a
                // poisoned result never passes (enforced by
                // `elsa_fault::inject` tests and the chaos battery).
                if run.trips || self.plan.corruption(unit, i).is_some() {
                    // Degrade through the tiled streaming kernel: bit-identical
                    // to `run_base` (proven in `elsa-sim` and the flash
                    // equivalence battery) but O(n) transient memory instead of
                    // the O(n²) score matrix — a faulting accelerator should
                    // not be handed the memory-heaviest possible fallback.
                    let base = accel.run_base_streaming(request);
                    let service_s =
                        (run.service_s + base.cycles.seconds(&self.accel_config)) * slowdown;
                    break Outcome::Served {
                        unit,
                        service_s,
                        degraded: true,
                        output: keep_outputs.then_some(base.output),
                    };
                }
                let service_s = run.service_s * slowdown;
                break Outcome::Served { unit, service_s, degraded: false, output: run.output.take() };
            };
            match outcome {
                Outcome::Served { unit, service_s, degraded, output } => {
                    free_at[unit] += service_s;
                    records.push(RequestRecord {
                        n_real: request.num_keys(),
                        service_s,
                        completion_s: free_at[unit],
                        degraded,
                        retries,
                        failed: false,
                    });
                    outputs.push(output);
                }
                Outcome::Failed { gave_up_at_s } => {
                    records.push(RequestRecord {
                        n_real: request.num_keys(),
                        service_s: 0.0,
                        completion_s: gave_up_at_s,
                        degraded: false,
                        retries,
                        failed: true,
                    });
                    outputs.push(None);
                }
            }
        }
        Ok(ServedBatch { report: ServingReport { records }, outputs })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsa_core::attention::ElsaParams;
    use elsa_fault::FaultRates;
    use elsa_linalg::SeededRng;
    use elsa_workloads::{DatasetKind, ModelKind, Workload};

    fn operator(seed: u64) -> ElsaAttention {
        let workload = Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M };
        let mut rng = SeededRng::new(seed);
        let train = workload.generate_batch(1, &mut rng);
        ElsaAttention::learn(ElsaParams::for_dims(64, 64, &mut SeededRng::new(seed + 1)), &train, 1.0)
    }

    fn config() -> AcceleratorConfig {
        AcceleratorConfig { n_max: 200, num_accelerators: 4, ..AcceleratorConfig::paper() }
    }

    fn requests(count: usize, seed: u64) -> Vec<AttentionInputs> {
        let workload = Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M };
        let mut rng = SeededRng::new(seed);
        workload.generate_batch(count, &mut rng)
    }

    #[test]
    fn zero_fault_serving_matches_the_plain_server() {
        let server = FaultTolerantServer::new(
            config(),
            operator(1),
            FaultPlan::none(),
            FailoverPolicy::default(),
        );
        let plain = crate::serving::InferenceServer::new(config(), operator(1));
        let batch = requests(16, 2);
        let served = server.serve(&batch).expect("no faults planned");
        assert_eq!(served.report, plain.serve(&batch));
        assert!(served.outputs.iter().all(Option::is_some));
    }

    #[test]
    fn serve_report_matches_serve_under_chaos() {
        let plan = FaultPlan::seeded(17, elsa_fault::FaultRates::chaotic());
        let server =
            FaultTolerantServer::new(config(), operator(18), plan, FailoverPolicy::default());
        let batch = requests(12, 19);
        match (server.serve(&batch), server.serve_report(&batch)) {
            (Ok(served), Ok(report)) => assert_eq!(served.report, report),
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("outcomes diverged: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn all_units_dead_is_a_typed_error() {
        let plan = FaultPlan::seeded(3, FaultRates { unit_death: 1.0, ..FaultRates::none() });
        let server =
            FaultTolerantServer::new(config(), operator(4), plan, FailoverPolicy::default());
        assert_eq!(
            server.serve(&requests(4, 5)).unwrap_err(),
            RuntimeError::NoHealthyUnits
        );
    }

    #[test]
    fn permanent_transients_exhaust_the_retry_budget() {
        let plan = FaultPlan::seeded(6, FaultRates { transient: 1.0, ..FaultRates::none() });
        let policy = FailoverPolicy { max_retries: 2, quarantine_after: 100, ..Default::default() };
        let server = FaultTolerantServer::new(config(), operator(7), plan, policy);
        let served = server.serve(&requests(3, 8)).expect("pool itself is healthy");
        assert_eq!(served.report.failed_count(), 3);
        assert_eq!(served.report.served_count(), 0);
        assert!(served.report.records.iter().all(|r| r.retries == 3), "budget: 1 + max_retries");
        assert!(served.outputs.iter().all(Option::is_none));
        assert_eq!(served.report.throughput_per_s(), 0.0);
    }

    #[test]
    fn tight_deadline_fails_queued_requests() {
        let cfg = AcceleratorConfig { num_accelerators: 1, ..config() };
        let policy = FailoverPolicy { deadline_s: Some(0.0), ..Default::default() };
        let server =
            FaultTolerantServer::new(cfg, operator(9), FaultPlan::none(), policy);
        let served = server.serve(&requests(6, 10)).expect("healthy pool");
        // The single unit is free at t = 0, so exactly one request starts
        // in time; everything queued behind it misses the deadline.
        assert_eq!(served.report.served_count(), 1);
        assert_eq!(served.report.failed_count(), 5);
    }

    #[test]
    fn forced_corruption_degrades_every_request_to_exact() {
        let plan = FaultPlan::seeded(11, FaultRates { corrupt: 1.0, ..FaultRates::none() });
        let server =
            FaultTolerantServer::new(config(), operator(12), plan, FailoverPolicy::default());
        let batch = requests(8, 13);
        let served = server.serve(&batch).expect("corruption is survivable");
        assert_eq!(served.report.degraded_count(), batch.len());
        assert_eq!(served.report.failed_count(), 0);
        let accel = ElsaAccelerator::new(config(), operator(12));
        for (request, output) in batch.iter().zip(&served.outputs) {
            let output = output.as_ref().expect("degraded, not failed");
            assert!(output.as_slice().iter().all(|v| v.is_finite()), "no NaN ever served");
            let exact = accel.run_base(request).output;
            let bits = |m: &Matrix| m.as_slice().iter().map(|v| v.to_bits()).collect::<Vec<_>>();
            assert_eq!(bits(output), bits(&exact), "degraded output is exact attention");
        }
    }

    #[test]
    fn degraded_requests_pay_the_exact_attention_time() {
        let plan = FaultPlan::seeded(14, FaultRates { corrupt: 1.0, ..FaultRates::none() });
        let cfg = AcceleratorConfig { num_accelerators: 1, ..config() };
        let healthy = FaultTolerantServer::new(
            cfg,
            operator(15),
            FaultPlan::none(),
            FailoverPolicy::default(),
        );
        let corrupted =
            FaultTolerantServer::new(cfg, operator(15), plan, FailoverPolicy::default());
        let batch = requests(4, 16);
        let clean = healthy.serve(&batch).expect("healthy");
        let degraded = corrupted.serve(&batch).expect("survivable");
        for (c, d) in clean.report.records.iter().zip(&degraded.report.records) {
            assert!(d.degraded);
            assert!(d.service_s > c.service_s, "fallback adds the exact-attention run");
        }
    }
}
