//! Deep (multi-layer) quality evaluation.
//!
//! The paper's accuracy numbers are *end-to-end*: the approximation error of
//! one attention sub-layer passes through many residual layers before it
//! reaches the metric, and residual streams absorb much of it. The
//! single-layer proxies in `elsa-workloads` are deliberately harsher; this
//! module closes the protocol gap by stacking real transformer layers,
//! calibrating one threshold per sub-layer from an exact forward pass
//! (exactly the Fig. 6 procedure), and measuring probe agreement at the
//! **top of the stack** — so error attenuation/accumulation across depth is
//! part of the measurement.

use elsa_attention::exact::{self, AttentionInputs};
use elsa_attention::{TransformerConfig, TransformerLayer};
use elsa_core::attention::{ElsaAttention, ElsaParams, SelectionStats};
use elsa_core::threshold::ThresholdLearner;
use elsa_linalg::{Matrix, SeededRng};

/// A stack of randomly initialized transformer layers whose attention
/// sub-layers can run exactly or through calibrated ELSA operators.
#[derive(Debug)]
pub struct DeepProxyModel {
    config: TransformerConfig,
    layers: Vec<TransformerLayer>,
}

impl DeepProxyModel {
    /// Builds the stack.
    ///
    /// # Panics
    ///
    /// Panics if the config's head dimension is not 64 (the hardware `d`).
    #[must_use]
    pub fn random(config: TransformerConfig, rng: &mut SeededRng) -> Self {
        assert_eq!(config.d_head(), 64, "deep proxy evaluation targets d = 64 heads");
        let layers = (0..config.num_layers).map(|_| TransformerLayer::random(&config, rng)).collect();
        Self { config, layers }
    }

    /// Builds the stack with symmetric attention projections (`W_K = W_Q`),
    /// which keep attention content-based and peaked at every depth — the
    /// regime trained models live in. Plain random projections wash the
    /// input structure out after one layer, making deep quality studies
    /// measure noise sensitivity instead of approximation quality.
    ///
    /// # Panics
    ///
    /// Panics if the config's head dimension is not 64.
    #[must_use]
    pub fn random_symmetric(config: TransformerConfig, gain: f64, rng: &mut SeededRng) -> Self {
        assert_eq!(config.d_head(), 64, "deep proxy evaluation targets d = 64 heads");
        let layers = (0..config.num_layers)
            .map(|_| TransformerLayer::random_symmetric(&config, gain, rng))
            .collect();
        Self { config, layers }
    }

    /// The configuration.
    #[must_use]
    pub const fn config(&self) -> &TransformerConfig {
        &self.config
    }

    /// Exact forward pass through every layer.
    #[must_use]
    pub fn forward_exact(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        for layer in &self.layers {
            h = layer.forward(&h);
        }
        h
    }

    /// Calibrates one ELSA operator per attention sub-layer by running the
    /// exact model on `calibration_inputs` and feeding each sub-layer's
    /// projected Q/K/V to its threshold learner (§III-E / Fig. 6).
    #[must_use]
    pub fn calibrate(
        &self,
        calibration_inputs: &[Matrix],
        p: f64,
        rng: &mut SeededRng,
    ) -> Vec<ElsaAttention> {
        let scale = 1.0 / (self.config.d_head() as f32).sqrt();
        let params = ElsaParams::new(
            elsa_core::hashing::SrpHasher::kronecker_three_way(64, rng),
            elsa_core::THETA_BIAS_D64_K64,
            scale,
        );
        let mut learners: Vec<ThresholdLearner> = (0..self.config.attention_sublayers())
            .map(|_| ThresholdLearner::with_scale(p, scale))
            .collect();
        for x in calibration_inputs {
            let mut h = x.clone();
            for (l, layer) in self.layers.iter().enumerate() {
                for head in 0..self.config.num_heads {
                    let inputs = layer.attention().project_head(&h, head);
                    learners[l * self.config.num_heads + head].observe(&inputs);
                }
                h = layer.forward(&h);
            }
        }
        learners
            .into_iter()
            .map(|learner| {
                ElsaAttention::with_threshold(params.clone(), learner.learned_threshold())
            })
            .collect()
    }

    /// Approximate forward pass: every attention sub-layer runs through its
    /// calibrated operator. Returns the output and merged selection stats.
    ///
    /// # Panics
    ///
    /// Panics if `operators.len()` differs from the sub-layer count.
    #[must_use]
    pub fn forward_approx(
        &self,
        x: &Matrix,
        operators: &[ElsaAttention],
    ) -> (Matrix, SelectionStats) {
        assert_eq!(
            operators.len(),
            self.config.attention_sublayers(),
            "one operator per sub-layer required"
        );
        let scale = 1.0 / (self.config.d_head() as f32).sqrt();
        let mut h = x.clone();
        let mut stats = SelectionStats::default();
        for (l, layer) in self.layers.iter().enumerate() {
            let mut head_idx = 0usize;
            h = layer.forward_with(&h, |inputs: &AttentionInputs| {
                let operator = &operators[l * self.config.num_heads + head_idx];
                head_idx += 1;
                let (cands, s) = operator.candidates(inputs);
                stats = stats.merged(&s);
                exact::attention_with_candidates(inputs, &cands, scale)
            });
        }
        (h, stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsa_workloads::tasks::ClassificationProbe;

    /// Clustered token embeddings => peaked, content-based attention.
    fn clustered_input(n: usize, d_model: usize, rng: &mut SeededRng) -> Matrix {
        let clusters = 8;
        let centers =
            Matrix::from_fn(clusters, d_model, |_, _| (rng.standard_normal() * 3.0) as f32);
        Matrix::from_fn(n, d_model, |r, c| {
            centers[(r % clusters, c)] + 0.3 * rng.standard_normal() as f32
        })
    }

    fn model(layers: usize, rng: &mut SeededRng) -> DeepProxyModel {
        DeepProxyModel::random(TransformerConfig::new(layers, 128, 2, 256, 64), rng)
    }

    #[test]
    fn calibration_yields_one_operator_per_sublayer() {
        let mut rng = SeededRng::new(1);
        let m = model(3, &mut rng);
        let cal = vec![clustered_input(48, 128, &mut rng)];
        let ops = m.calibrate(&cal, 1.0, &mut rng);
        assert_eq!(ops.len(), 6);
        assert!(ops.iter().all(|o| o.threshold().is_finite()));
    }

    #[test]
    fn approx_forward_tracks_exact_forward() {
        let mut rng = SeededRng::new(2);
        let m = model(2, &mut rng);
        let cal = vec![clustered_input(48, 128, &mut rng), clustered_input(48, 128, &mut rng)];
        let ops = m.calibrate(&cal, 0.5, &mut rng);
        let x = clustered_input(48, 128, &mut rng);
        let exact_out = m.forward_exact(&x);
        let (approx_out, stats) = m.forward_approx(&x, &ops);
        assert!(stats.candidate_fraction() < 1.0);
        let rel = exact_out.relative_frobenius_error(&approx_out);
        assert!(rel < 0.5, "deep relative error {rel}");
    }

    #[test]
    fn deeper_stacks_do_not_explode_error() {
        // Residual + layernorm keep the approximation error bounded with
        // depth (it must not grow multiplicatively).
        let _rng = SeededRng::new(3);
        let probe_rng = &mut SeededRng::new(4);
        let probe = ClassificationProbe::new(8, 128, probe_rng);
        let mut agreements = Vec::new();
        for depth in [1usize, 4] {
            let mut mrng = SeededRng::new(5);
            let m = model(depth, &mut mrng);
            let cal = vec![clustered_input(48, 128, &mut mrng)];
            let ops = m.calibrate(&cal, 1.0, &mut mrng);
            let x = clustered_input(48, 128, &mut mrng);
            let exact_out = m.forward_exact(&x);
            let (approx_out, _) = m.forward_approx(&x, &ops);
            agreements.push(probe.agreement(&exact_out, &approx_out));
        }
        assert!(agreements[1] > 0.5, "agreement at depth 4 = {}", agreements[1]);
    }

    #[test]
    #[should_panic(expected = "one operator per sub-layer")]
    fn rejects_wrong_operator_count() {
        let mut rng = SeededRng::new(6);
        let m = model(2, &mut rng);
        let x = clustered_input(16, 128, &mut rng);
        let _ = m.forward_approx(&x, &[]);
    }
}
