//! Per-sublayer threshold tables (§III-E).
//!
//! "It is impractical to leave these layer-specific threshold values as
//! user-defined hyperparameters, especially for models like BERT-large which
//! has 384 sub-layers utilizing the self-attention mechanism" — so the user
//! sets one `p`, and the runtime learns one threshold `t` per (layer, head)
//! from calibration data. Different sub-layers genuinely need different
//! thresholds: attention heads differ widely in how peaked their score
//! distributions are (Clark et al. 2019), which this module's tests exercise
//! by calibrating sub-layers with different synthetic profiles.

use elsa_attention::exact::AttentionInputs;
use elsa_attention::TransformerConfig;
use elsa_core::threshold::ThresholdLearner;

/// A learned threshold for every attention sub-layer of a model.
///
/// Indexed by `(layer, head)`; BERT-large yields 384 entries.
///
/// # Examples
///
/// ```
/// use elsa_runtime::ThresholdTable;
/// use elsa_attention::TransformerConfig;
///
/// let cfg = TransformerConfig::new(2, 128, 2, 256, 64);
/// let mut table = ThresholdTable::new(&cfg, 1.0);
/// assert_eq!(table.len(), 4);
/// assert!(!table.is_fully_calibrated());
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdTable {
    num_layers: usize,
    num_heads: usize,
    p: f64,
    learners: Vec<ThresholdLearner>,
}

impl ThresholdTable {
    /// Creates an (uncalibrated) table for every sub-layer of `config`, all
    /// sharing the single user hyperparameter `p`.
    #[must_use]
    pub fn new(config: &TransformerConfig, p: f64) -> Self {
        let count = config.attention_sublayers();
        Self {
            num_layers: config.num_layers,
            num_heads: config.num_heads,
            p,
            learners: (0..count).map(|_| ThresholdLearner::new(p)).collect(),
        }
    }

    /// Number of sub-layers (`layers × heads`).
    #[must_use]
    pub fn len(&self) -> usize {
        self.learners.len()
    }

    /// True if the table has no sub-layers (never the case for a valid
    /// config).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.learners.is_empty()
    }

    /// The shared degree-of-approximation hyperparameter.
    #[must_use]
    pub const fn p(&self) -> f64 {
        self.p
    }

    fn index(&self, layer: usize, head: usize) -> usize {
        assert!(layer < self.num_layers, "layer {layer} out of range");
        assert!(head < self.num_heads, "head {head} out of range");
        layer * self.num_heads + head
    }

    /// Feeds one calibration invocation to sub-layer `(layer, head)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn observe(&mut self, layer: usize, head: usize, inputs: &AttentionInputs) {
        let idx = self.index(layer, head);
        self.learners[idx].observe(inputs);
    }

    /// The learned threshold of a sub-layer (`-inf` ⇒ select everything, if
    /// that sub-layer never saw calibration data).
    #[must_use]
    pub fn threshold(&self, layer: usize, head: usize) -> f64 {
        self.learners[self.index(layer, head)].learned_threshold()
    }

    /// True once every sub-layer has at least one observation.
    #[must_use]
    pub fn is_fully_calibrated(&self) -> bool {
        self.learners.iter().all(|l| l.observations() > 0)
    }

    /// All thresholds in `(layer-major, head-minor)` order.
    #[must_use]
    pub fn thresholds(&self) -> Vec<f64> {
        self.learners.iter().map(ThresholdLearner::learned_threshold).collect()
    }

    /// Spread of the learned thresholds `(min, max)` — the quantity that
    /// justifies per-sublayer learning over a single global threshold.
    ///
    /// Returns `None` if nothing is calibrated yet.
    #[must_use]
    pub fn spread(&self) -> Option<(f64, f64)> {
        let finite: Vec<f64> =
            self.thresholds().into_iter().filter(|t| t.is_finite()).collect();
        if finite.is_empty() {
            return None;
        }
        let min = finite.iter().copied().fold(f64::INFINITY, f64::min);
        let max = finite.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some((min, max))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsa_linalg::{Matrix, SeededRng};
    use elsa_workloads::AttentionPatternConfig;

    fn cfg() -> TransformerConfig {
        TransformerConfig::new(3, 128, 2, 256, 64)
    }

    fn invocation(peaked: bool, seed: u64) -> AttentionInputs {
        let mut rng = SeededRng::new(seed);
        if peaked {
            AttentionPatternConfig::new(64, 64, 3, 2.5).generate(&mut rng)
        } else {
            let flat = AttentionPatternConfig {
                score_scale: 3.0,
                ..AttentionPatternConfig::new(64, 64, 12, 1.1)
            };
            flat.generate(&mut rng)
        }
    }

    #[test]
    fn bert_large_has_384_entries() {
        let bert = TransformerConfig::new(24, 1024, 16, 4096, 512);
        let table = ThresholdTable::new(&bert, 1.0);
        assert_eq!(table.len(), 384);
    }

    #[test]
    fn calibration_tracks_per_sublayer() {
        let mut table = ThresholdTable::new(&cfg(), 1.0);
        assert!(!table.is_fully_calibrated());
        for layer in 0..3 {
            for head in 0..2 {
                table.observe(layer, head, &invocation(true, 10 + (layer * 2 + head) as u64));
            }
        }
        assert!(table.is_fully_calibrated());
        assert_eq!(table.thresholds().len(), 6);
        assert!(table.thresholds().iter().all(|t| t.is_finite()));
    }

    #[test]
    fn different_profiles_learn_different_thresholds() {
        // A peaked sub-layer and a flat sub-layer must end up with visibly
        // different thresholds — the reason per-sublayer learning exists.
        let mut table = ThresholdTable::new(&cfg(), 1.0);
        table.observe(0, 0, &invocation(true, 1));
        table.observe(0, 1, &invocation(false, 2));
        let peaked_t = table.threshold(0, 0);
        let flat_t = table.threshold(0, 1);
        assert!(
            (peaked_t - flat_t).abs() > 0.05,
            "peaked {peaked_t} vs flat {flat_t} should differ"
        );
        let (min, max) = table.spread().expect("calibrated");
        assert!(min < max);
    }

    #[test]
    fn uncalibrated_sublayer_selects_everything() {
        let table = ThresholdTable::new(&cfg(), 1.0);
        assert_eq!(table.threshold(2, 1), f64::NEG_INFINITY);
        assert!(table.spread().is_none());
    }

    #[test]
    fn zero_key_calibration_data_is_harmless() {
        let mut table = ThresholdTable::new(&cfg(), 1.0);
        let degenerate = AttentionInputs::new(
            Matrix::zeros(4, 64),
            Matrix::zeros(4, 64),
            Matrix::zeros(4, 64),
        );
        table.observe(0, 0, &degenerate);
        assert_eq!(table.threshold(0, 0), f64::NEG_INFINITY);
    }

    #[test]
    #[should_panic(expected = "head 5 out of range")]
    fn rejects_bad_head_index() {
        let mut table = ThresholdTable::new(&cfg(), 1.0);
        table.observe(0, 5, &invocation(true, 3));
    }
}
