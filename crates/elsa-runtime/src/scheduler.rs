//! Batch-level scheduling of head-invocations across replicated
//! accelerators (§IV-D *Parallel Pipeline*: "the whole ELSA accelerators …
//! can be replicated to exploit batch-level parallelism as well (e.g., our
//! evaluation utilizes a set of twelve ELSA accelerators)").
//!
//! Each self-attention invocation (one head of one layer for one input) is
//! an independent job; an accelerator runs one job at a time. The scheduler
//! assigns jobs to accelerators and reports the makespan, including a fixed
//! host command-issue overhead per job (§IV-B: the host "can issue a simple
//! command to initiate the ELSA accelerator"; inputs pass by reference, so
//! no copy cost is modeled).

use crate::error::RuntimeError;

/// Job assignment policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Longest-processing-time-first greedy assignment (near-optimal for
    /// makespan; the natural choice when invocation costs are known from
    /// candidate counts).
    LongestFirst,
    /// Round-robin in arrival order (what a naive driver would do).
    RoundRobin,
}

/// The outcome of scheduling one batch of jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct Schedule {
    /// Busy time per accelerator, in seconds.
    pub per_accelerator_s: Vec<f64>,
    /// Which accelerator each job ran on (job order preserved).
    pub assignment: Vec<usize>,
}

impl Schedule {
    /// Batch completion time: the busiest accelerator's total.
    #[must_use]
    pub fn makespan_s(&self) -> f64 {
        self.per_accelerator_s.iter().copied().fold(0.0, f64::max)
    }

    /// Mean utilization relative to the makespan (1.0 = perfectly balanced).
    ///
    /// An empty `per_accelerator_s` (no units at all) reports `1.0`: there
    /// is nothing to be unbalanced. The guard is independent of the
    /// `makespan == 0` early-return so a caller constructing a `Schedule`
    /// by hand can never divide by a zero unit count and produce `NaN`.
    #[must_use]
    pub fn balance(&self) -> f64 {
        if self.per_accelerator_s.is_empty() {
            return 1.0;
        }
        let makespan = self.makespan_s();
        if makespan == 0.0 {
            return 1.0;
        }
        let mean =
            self.per_accelerator_s.iter().sum::<f64>() / self.per_accelerator_s.len() as f64;
        mean / makespan
    }
}

/// Schedules independent attention jobs over `num_accelerators` units.
///
/// # Examples
///
/// ```
/// use elsa_runtime::{BatchScheduler, SchedulePolicy};
///
/// let scheduler = BatchScheduler::new(3, 0.0, SchedulePolicy::LongestFirst);
/// let schedule = scheduler.schedule(&[5.0, 4.0, 3.0, 3.0, 2.0, 1.0]);
/// assert!((schedule.makespan_s() - 6.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchScheduler {
    num_accelerators: usize,
    /// Host command-issue overhead per job, in seconds.
    command_overhead_s: f64,
    policy: SchedulePolicy,
}

impl BatchScheduler {
    /// Creates a scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `num_accelerators == 0` or the overhead is negative; see
    /// [`BatchScheduler::try_new`] for the non-panicking form.
    #[must_use]
    pub fn new(num_accelerators: usize, command_overhead_s: f64, policy: SchedulePolicy) -> Self {
        match Self::try_new(num_accelerators, command_overhead_s, policy) {
            Ok(scheduler) => scheduler,
            // elsa-lint: allow(panic-policy) reason="documented # Panics wrapper; try_new is the serving-path form"
            Err(e) => panic!("{e}"),
        }
    }

    /// Creates a scheduler, reporting invalid parameters as a typed error.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoAccelerators`] or
    /// [`RuntimeError::NegativeOverhead`].
    pub fn try_new(
        num_accelerators: usize,
        command_overhead_s: f64,
        policy: SchedulePolicy,
    ) -> Result<Self, RuntimeError> {
        if num_accelerators == 0 {
            return Err(RuntimeError::NoAccelerators);
        }
        if !(command_overhead_s >= 0.0) {
            return Err(RuntimeError::NegativeOverhead { overhead_s: command_overhead_s });
        }
        Ok(Self { num_accelerators, command_overhead_s, policy })
    }

    /// The paper's deployment: twelve accelerators, 1 µs command issue,
    /// longest-first assignment.
    #[must_use]
    pub fn paper() -> Self {
        Self::new(12, 1.0e-6, SchedulePolicy::LongestFirst)
    }

    /// Number of accelerators.
    #[must_use]
    pub const fn num_accelerators(&self) -> usize {
        self.num_accelerators
    }

    /// Assigns the jobs (given their latencies in seconds) to accelerators.
    #[must_use]
    pub fn schedule(&self, job_latencies_s: &[f64]) -> Schedule {
        self.schedule_over(job_latencies_s, &vec![true; self.num_accelerators])
            // elsa-lint: allow(panic-policy) reason="infallible: construction guarantees num_accelerators > 0, so the all-true mask always has a survivor"
            .expect("all units available")
    }

    /// Assigns the jobs over the subset of accelerators marked available —
    /// the rebalancing step after a health tracker quarantines units. With
    /// every unit available this is exactly [`BatchScheduler::schedule`].
    ///
    /// `available` holds one flag per accelerator; `per_accelerator_s` in
    /// the result still covers all units (quarantined ones stay at `0.0`).
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::NoHealthyUnits`] when no unit is available.
    ///
    /// # Panics
    ///
    /// Panics if `available.len()` differs from the configured accelerator
    /// count (an internal invariant: the mask comes from a tracker sized off
    /// this scheduler).
    pub fn schedule_over(
        &self,
        job_latencies_s: &[f64],
        available: &[bool],
    ) -> Result<Schedule, RuntimeError> {
        assert_eq!(
            available.len(),
            self.num_accelerators,
            "availability mask must cover every accelerator"
        );
        let survivors: Vec<usize> =
            (0..self.num_accelerators).filter(|&u| available[u]).collect();
        if survivors.is_empty() {
            return Err(RuntimeError::NoHealthyUnits);
        }
        let mut per_accel = vec![0.0f64; self.num_accelerators];
        let mut assignment = vec![0usize; job_latencies_s.len()];
        match self.policy {
            SchedulePolicy::LongestFirst => {
                let mut order: Vec<usize> = (0..job_latencies_s.len()).collect();
                order.sort_by(|&a, &b| job_latencies_s[b].total_cmp(&job_latencies_s[a]));
                for job in order {
                    // `survivors` is nonempty (checked above), so the
                    // fallback index is never actually taken.
                    let accel = survivors
                        .iter()
                        .copied()
                        .min_by(|&a, &b| per_accel[a].total_cmp(&per_accel[b]))
                        .unwrap_or(survivors[0]);
                    per_accel[accel] += job_latencies_s[job] + self.command_overhead_s;
                    assignment[job] = accel;
                }
            }
            SchedulePolicy::RoundRobin => {
                for (job, &latency) in job_latencies_s.iter().enumerate() {
                    let accel = survivors[job % survivors.len()];
                    per_accel[accel] += latency + self.command_overhead_s;
                    assignment[job] = accel;
                }
            }
        }
        Ok(Schedule { per_accelerator_s: per_accel, assignment })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_accelerator_serializes() {
        let s = BatchScheduler::new(1, 0.0, SchedulePolicy::LongestFirst);
        let schedule = s.schedule(&[1.0, 2.0, 3.0]);
        assert!((schedule.makespan_s() - 6.0).abs() < 1e-12);
    }

    #[test]
    fn perfect_split_across_accelerators() {
        let s = BatchScheduler::new(4, 0.0, SchedulePolicy::LongestFirst);
        let schedule = s.schedule(&[1.0; 8]);
        assert!((schedule.makespan_s() - 2.0).abs() < 1e-12);
        assert!((schedule.balance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn longest_first_beats_round_robin_on_skewed_jobs() {
        let jobs = [8.0, 1.0, 8.0, 1.0, 8.0, 1.0, 1.0, 1.0];
        let lpt = BatchScheduler::new(2, 0.0, SchedulePolicy::LongestFirst).schedule(&jobs);
        let rr = BatchScheduler::new(2, 0.0, SchedulePolicy::RoundRobin).schedule(&jobs);
        assert!(lpt.makespan_s() <= rr.makespan_s());
        // RR alternates so one accelerator gets all three 8s = 25 total.
        assert!(rr.makespan_s() > 20.0);
        assert!(lpt.makespan_s() <= 16.0 + 1e-12);
    }

    #[test]
    fn command_overhead_accumulates() {
        let s = BatchScheduler::new(2, 0.5, SchedulePolicy::RoundRobin);
        let schedule = s.schedule(&[1.0, 1.0, 1.0, 1.0]);
        // 2 jobs per accelerator, each +0.5 overhead.
        assert!((schedule.makespan_s() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_batch_is_trivial() {
        let s = BatchScheduler::paper();
        let schedule = s.schedule(&[]);
        assert_eq!(schedule.makespan_s(), 0.0);
        assert_eq!(schedule.balance(), 1.0);
    }

    #[test]
    fn balance_of_empty_schedule_is_one_not_nan() {
        // A hand-built schedule with no units must not divide by zero even
        // though makespan_s() is 0.0 (folding max over nothing).
        let schedule = Schedule { per_accelerator_s: vec![], assignment: vec![] };
        assert_eq!(schedule.balance(), 1.0);
        assert!(!schedule.balance().is_nan());
    }

    #[test]
    fn balance_of_single_unit_schedule_is_one() {
        let s = BatchScheduler::new(1, 0.0, SchedulePolicy::LongestFirst);
        let schedule = s.schedule(&[2.0, 3.0]);
        assert!((schedule.balance() - 1.0).abs() < 1e-12, "one unit is always balanced");
        // And an idle single unit hits the makespan == 0 path.
        let idle = s.schedule(&[]);
        assert_eq!(idle.balance(), 1.0);
    }

    #[test]
    fn assignment_indices_valid() {
        let s = BatchScheduler::new(3, 0.0, SchedulePolicy::LongestFirst);
        let schedule = s.schedule(&[3.0, 1.0, 4.0, 1.0, 5.0]);
        assert_eq!(schedule.assignment.len(), 5);
        assert!(schedule.assignment.iter().all(|&a| a < 3));
    }

    #[test]
    fn twelve_accelerators_scale_batch_throughput() {
        // 16 equal head-invocations (BERT-large layer) over 12 accelerators:
        // makespan = 2 rounds for 4 of them => ceil(16/12) * t.
        let s = BatchScheduler::new(12, 0.0, SchedulePolicy::LongestFirst);
        let schedule = s.schedule(&[1.0; 16]);
        assert!((schedule.makespan_s() - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one accelerator")]
    fn rejects_zero_accelerators() {
        let _ = BatchScheduler::new(0, 0.0, SchedulePolicy::RoundRobin);
    }

    #[test]
    fn try_new_reports_typed_errors() {
        assert_eq!(
            BatchScheduler::try_new(0, 0.0, SchedulePolicy::RoundRobin),
            Err(RuntimeError::NoAccelerators)
        );
        assert_eq!(
            BatchScheduler::try_new(2, -0.5, SchedulePolicy::RoundRobin),
            Err(RuntimeError::NegativeOverhead { overhead_s: -0.5 })
        );
        assert!(BatchScheduler::try_new(2, 0.5, SchedulePolicy::RoundRobin).is_ok());
    }

    #[test]
    fn schedule_over_all_units_matches_schedule() {
        for policy in [SchedulePolicy::LongestFirst, SchedulePolicy::RoundRobin] {
            let s = BatchScheduler::new(3, 1.0e-6, policy);
            let jobs = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0];
            let full = s.schedule(&jobs);
            let over = s.schedule_over(&jobs, &[true, true, true]).expect("all available");
            assert_eq!(full, over);
        }
    }

    #[test]
    fn schedule_over_survivors_skips_quarantined_units() {
        for policy in [SchedulePolicy::LongestFirst, SchedulePolicy::RoundRobin] {
            let s = BatchScheduler::new(4, 0.0, policy);
            let jobs = [2.0, 2.0, 2.0, 2.0];
            let schedule =
                s.schedule_over(&jobs, &[false, true, false, true]).expect("two survivors");
            assert!(schedule.assignment.iter().all(|&a| a == 1 || a == 3));
            assert_eq!(schedule.per_accelerator_s[0], 0.0);
            assert_eq!(schedule.per_accelerator_s[2], 0.0);
            assert!((schedule.makespan_s() - 4.0).abs() < 1e-12, "rebalanced over survivors");
        }
    }

    #[test]
    fn schedule_over_empty_pool_is_an_error() {
        let s = BatchScheduler::new(2, 0.0, SchedulePolicy::LongestFirst);
        assert_eq!(
            s.schedule_over(&[1.0], &[false, false]),
            Err(RuntimeError::NoHealthyUnits)
        );
    }
}
