//! Serving-style simulation: a stream of variable-length attention requests
//! through the twelve-accelerator deployment.
//!
//! Real serving traffic (the paper's SQuAD/MovieLens datasets) mixes
//! sequence lengths; because ELSA skips padding, short requests finish
//! early, and request-level latency percentiles — not just means — decide
//! deployability. This module models a simple FIFO dispatcher: requests are
//! assigned to accelerators in arrival order, each accelerator serializes
//! its queue, and per-request completion times fall out.

use elsa_attention::exact::AttentionInputs;
use elsa_core::ElsaAttention;
use elsa_linalg::ops;
use elsa_sim::{AcceleratorConfig, ElsaAccelerator};

/// Completion record of one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// Number of real entities in the request.
    pub n_real: usize,
    /// Pure execution latency on its accelerator.
    pub service_s: f64,
    /// Time from arrival (all requests arrive at t = 0) to completion,
    /// including queueing behind earlier requests.
    pub completion_s: f64,
}

/// Aggregated serving metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Per-request records, in arrival order.
    pub records: Vec<RequestRecord>,
}

impl ServingReport {
    /// Completion-time percentile (e.g. 50.0, 95.0, 99.0).
    #[must_use]
    pub fn completion_percentile_s(&self, q: f64) -> f64 {
        let times: Vec<f64> = self.records.iter().map(|r| r.completion_s).collect();
        ops::percentile(&times, q)
    }

    /// Mean pure service time.
    #[must_use]
    pub fn mean_service_s(&self) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.records.iter().map(|r| r.service_s).sum::<f64>() / self.records.len() as f64
    }

    /// Aggregate throughput: requests divided by the last completion time.
    #[must_use]
    pub fn throughput_per_s(&self) -> f64 {
        let makespan = self
            .records
            .iter()
            .map(|r| r.completion_s)
            .fold(0.0f64, f64::max);
        if makespan == 0.0 {
            0.0
        } else {
            self.records.len() as f64 / makespan
        }
    }
}

/// A FIFO multi-accelerator inference server around one trained operator.
#[derive(Debug)]
pub struct InferenceServer {
    accel_config: AcceleratorConfig,
    operator: ElsaAttention,
}

impl InferenceServer {
    /// Builds the server.
    ///
    /// # Panics
    ///
    /// Panics if the operator does not fit the hardware configuration.
    #[must_use]
    pub fn new(accel_config: AcceleratorConfig, operator: ElsaAttention) -> Self {
        accel_config.validate();
        assert_eq!(operator.params().hasher().dim(), accel_config.d);
        Self { accel_config, operator }
    }

    /// Serves a batch of requests arriving simultaneously, dispatching them
    /// FIFO over the configured number of accelerators.
    ///
    /// Request simulations are independent of each other, so they fan out
    /// across worker threads when the batch is large; the FIFO assignment of
    /// completion times is then folded serially in arrival order, so the
    /// report is identical at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if any request exceeds the hardware's `n_max`.
    #[must_use]
    pub fn serve(&self, requests: &[AttentionInputs]) -> ServingReport {
        let accel = ElsaAccelerator::new(self.accel_config, self.operator.clone());
        let run_one =
            |i: usize| accel.run(&requests[i]).cycles.seconds(&self.accel_config);
        let work: usize = requests
            .iter()
            .map(|r| r.num_queries().saturating_mul(r.num_keys()).saturating_mul(r.dim()))
            .sum();
        let service_times: Vec<f64> = if elsa_parallel::beneficial(work) && requests.len() > 1 {
            elsa_parallel::par_map_indexed(requests.len(), run_one)
        } else {
            (0..requests.len()).map(run_one).collect()
        };
        let mut free_at = vec![0.0f64; self.accel_config.num_accelerators];
        let mut records = Vec::with_capacity(requests.len());
        for (request, service) in requests.iter().zip(service_times) {
            // FIFO: take the accelerator that frees up first.
            let (idx, _) = free_at
                .iter()
                .enumerate()
                .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite times"))
                .expect("at least one accelerator");
            free_at[idx] += service;
            records.push(RequestRecord {
                n_real: request.num_keys(),
                service_s: service,
                completion_s: free_at[idx],
            });
        }
        ServingReport { records }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsa_core::attention::ElsaParams;
    use elsa_linalg::SeededRng;
    use elsa_workloads::{DatasetKind, ModelKind, Workload};

    fn server(seed: u64) -> InferenceServer {
        let workload = Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M };
        let mut rng = SeededRng::new(seed);
        let train = workload.generate_batch(1, &mut rng);
        let operator = ElsaAttention::learn(
            ElsaParams::for_dims(64, 64, &mut SeededRng::new(seed + 1)),
            &train,
            1.0,
        );
        InferenceServer::new(
            AcceleratorConfig { n_max: 200, ..AcceleratorConfig::paper() },
            operator,
        )
    }

    fn requests(count: usize, seed: u64) -> Vec<AttentionInputs> {
        let workload = Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M };
        let mut rng = SeededRng::new(seed);
        workload.generate_batch(count, &mut rng)
    }

    #[test]
    fn percentiles_are_ordered() {
        let server = server(1);
        let report = server.serve(&requests(24, 2));
        let p50 = report.completion_percentile_s(50.0);
        let p95 = report.completion_percentile_s(95.0);
        let p99 = report.completion_percentile_s(99.0);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 > 0.0);
    }

    #[test]
    fn short_requests_have_short_service() {
        let server = server(3);
        let report = server.serve(&requests(24, 4));
        // Service time must correlate with request length: compare the
        // shortest and longest requests directly.
        let min = report.records.iter().min_by_key(|r| r.n_real).expect("nonempty");
        let max = report.records.iter().max_by_key(|r| r.n_real).expect("nonempty");
        if max.n_real > min.n_real + 40 {
            assert!(max.service_s > min.service_s, "padding-free service times");
        }
    }

    #[test]
    fn throughput_scales_with_accelerators() {
        let workload_requests = requests(48, 5);
        let one = {
            let mut s = server(6);
            s.accel_config.num_accelerators = 1;
            s.serve(&workload_requests).throughput_per_s()
        };
        let twelve = {
            let mut s = server(6);
            s.accel_config.num_accelerators = 12;
            s.serve(&workload_requests).throughput_per_s()
        };
        let ratio = twelve / one;
        assert!(ratio > 6.0, "12-accelerator scaling only {ratio}x");
    }

    #[test]
    fn empty_request_stream() {
        let server = server(7);
        let report = server.serve(&[]);
        assert_eq!(report.throughput_per_s(), 0.0);
        assert_eq!(report.mean_service_s(), 0.0);
    }

    #[test]
    fn serve_is_identical_serial_and_parallel() {
        // The per-request fan-out must not change a single bit of the report:
        // same service times, same FIFO completion times, any worker count.
        let server = server(8);
        let batch = requests(24, 9);
        let serial = elsa_parallel::with_threads(1, || server.serve(&batch));
        let parallel = elsa_parallel::with_threads(4, || server.serve(&batch));
        assert_eq!(serial, parallel);
    }
}
