//! Serving-style simulation: a stream of variable-length attention requests
//! through the twelve-accelerator deployment.
//!
//! Real serving traffic (the paper's SQuAD/MovieLens datasets) mixes
//! sequence lengths; because ELSA skips padding, short requests finish
//! early, and request-level latency percentiles — not just means — decide
//! deployability. This module models a simple FIFO dispatcher: requests are
//! assigned to accelerators in arrival order, each accelerator serializes
//! its queue, and per-request completion times fall out.

use elsa_attention::exact::AttentionInputs;
use elsa_core::ElsaAttention;
use elsa_linalg::ops;
use elsa_sim::{AcceleratorConfig, ElsaAccelerator, FitError};

use crate::error::RuntimeError;

/// Completion record of one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestRecord {
    /// Number of real entities in the request.
    pub n_real: usize,
    /// Pure execution latency on its accelerator.
    pub service_s: f64,
    /// Time from arrival (all requests arrive at t = 0) to completion,
    /// including queueing behind earlier requests. For a failed request this
    /// is the time at which the dispatcher gave up.
    pub completion_s: f64,
    /// The approximate pipeline tripped a numeric guard and the request was
    /// served by exact attention instead.
    pub degraded: bool,
    /// Failed attempts (transient faults) before the final outcome.
    pub retries: u32,
    /// The request was never served: deadline or retry budget exhausted, or
    /// no healthy unit remained.
    pub failed: bool,
}

impl RequestRecord {
    /// A record for a request served cleanly on the first attempt (the only
    /// outcome the fault-free [`InferenceServer`] produces).
    #[must_use]
    pub const fn served(n_real: usize, service_s: f64, completion_s: f64) -> Self {
        Self { n_real, service_s, completion_s, degraded: false, retries: 0, failed: false }
    }
}

/// Aggregated serving metrics.
///
/// Latency and throughput statistics are computed **over the survivors**
/// (records with `failed == false`): a request the dispatcher gave up on has
/// no meaningful completion latency, and folding its give-up time into a
/// percentile would reward fast failures. Empty and all-failed record sets
/// yield `0.0` everywhere — never `NaN`.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Per-request records, in arrival order.
    pub records: Vec<RequestRecord>,
}

impl ServingReport {
    fn survivors(&self) -> impl Iterator<Item = &RequestRecord> {
        self.records.iter().filter(|r| !r.failed)
    }

    /// Completion-time percentile (e.g. 50.0, 95.0, 99.0) over the
    /// survivors; `0.0` when no request survived.
    ///
    /// `q` is clamped to `[0, 100]` (the `[0, 1]` quantile range) before it
    /// reaches `ops::percentile`, so an out-of-range quantile from a caller
    /// computing e.g. `100.0 * (1.0 + eps)` degrades to the max, never to an
    /// out-of-bounds rank.
    #[must_use]
    pub fn completion_percentile_s(&self, q: f64) -> f64 {
        let times: Vec<f64> = self.survivors().map(|r| r.completion_s).collect();
        if times.is_empty() {
            0.0
        } else {
            ops::percentile(&times, q.clamp(0.0, 100.0))
        }
    }

    /// Mean pure service time over the survivors; `0.0` when no request
    /// survived.
    #[must_use]
    pub fn mean_service_s(&self) -> f64 {
        let (sum, count) =
            self.survivors().fold((0.0f64, 0usize), |(s, c), r| (s + r.service_s, c + 1));
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Aggregate throughput: surviving requests divided by their last
    /// completion time; `0.0` when no request survived.
    #[must_use]
    pub fn throughput_per_s(&self) -> f64 {
        let makespan = self.survivors().map(|r| r.completion_s).fold(0.0f64, f64::max);
        if makespan == 0.0 {
            0.0
        } else {
            self.survivors().count() as f64 / makespan
        }
    }

    /// Requests served (approximately or degraded-to-exact).
    #[must_use]
    pub fn served_count(&self) -> usize {
        self.survivors().count()
    }

    /// Requests the dispatcher gave up on.
    #[must_use]
    pub fn failed_count(&self) -> usize {
        self.records.len() - self.served_count()
    }

    /// Requests that fell back to exact attention after a numeric guard
    /// tripped.
    #[must_use]
    pub fn degraded_count(&self) -> usize {
        self.records.iter().filter(|r| r.degraded).count()
    }

    /// Total failed attempts across all requests (including requests that
    /// ultimately failed).
    #[must_use]
    pub fn total_retries(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.retries)).sum()
    }
}

/// A FIFO multi-accelerator inference server around one trained operator.
#[derive(Debug)]
pub struct InferenceServer {
    accel_config: AcceleratorConfig,
    operator: ElsaAttention,
}

impl InferenceServer {
    /// Builds the server.
    ///
    /// # Panics
    ///
    /// Panics if the operator does not fit the hardware configuration; see
    /// [`InferenceServer::try_new`] for the non-panicking form.
    #[must_use]
    pub fn new(accel_config: AcceleratorConfig, operator: ElsaAttention) -> Self {
        match Self::try_new(accel_config, operator) {
            Ok(server) => server,
            // elsa-lint: allow(panic-policy) reason="documented # Panics wrapper; try_new is the serving-path form"
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the server, reporting an operator/hardware misfit as a typed
    /// error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Misfit`] when the hardware configuration is
    /// invalid or the operator's dimensions do not match it.
    pub fn try_new(
        accel_config: AcceleratorConfig,
        operator: ElsaAttention,
    ) -> Result<Self, RuntimeError> {
        accel_config.try_validate()?;
        let operator_d = operator.params().hasher().dim();
        if operator_d != accel_config.d {
            return Err(RuntimeError::Misfit(FitError::OperatorDim {
                operator_d,
                hardware_d: accel_config.d,
            }));
        }
        let operator_k = operator.params().hasher().k();
        if operator_k != accel_config.k {
            return Err(RuntimeError::Misfit(FitError::OperatorHashLength {
                operator_k,
                hardware_k: accel_config.k,
            }));
        }
        Ok(Self { accel_config, operator })
    }

    /// Serves a batch of requests arriving simultaneously, dispatching them
    /// FIFO over the configured number of accelerators.
    ///
    /// Request simulations are independent of each other, so they fan out
    /// across worker threads when the batch is large; the FIFO assignment of
    /// completion times is then folded serially in arrival order, so the
    /// report is identical at any worker count.
    ///
    /// # Panics
    ///
    /// Panics if any request exceeds the hardware's `n_max`; see
    /// [`InferenceServer::try_serve`] for the non-panicking form.
    #[must_use]
    pub fn serve(&self, requests: &[AttentionInputs]) -> ServingReport {
        match self.try_serve(requests) {
            Ok(report) => report,
            // elsa-lint: allow(panic-policy) reason="documented # Panics wrapper; try_serve is the serving-path form"
            Err(e) => panic!("{e}"),
        }
    }

    /// Serves a batch, reporting a request that does not fit the hardware
    /// as a typed error instead of panicking.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Request`] naming the first offending request
    /// when one exceeds the hardware's `n_max` or has the wrong head
    /// dimension; the batch is rejected before any work is simulated.
    pub fn try_serve(&self, requests: &[AttentionInputs]) -> Result<ServingReport, RuntimeError> {
        let accel = ElsaAccelerator::try_new(self.accel_config, self.operator.clone())?;
        for (index, request) in requests.iter().enumerate() {
            accel
                .try_check_fit(request)
                .map_err(|source| RuntimeError::Request { index, source })?;
        }
        let run_one =
            |i: usize| accel.run(&requests[i]).cycles.seconds(&self.accel_config);
        let work: usize = requests
            .iter()
            .map(|r| r.num_queries().saturating_mul(r.num_keys()).saturating_mul(r.dim()))
            .sum();
        let service_times: Vec<f64> = if elsa_parallel::beneficial(work) && requests.len() > 1 {
            elsa_parallel::par_map_indexed(requests.len(), run_one)
        } else {
            (0..requests.len()).map(run_one).collect()
        };
        let mut free_at = vec![0.0f64; self.accel_config.num_accelerators];
        let mut records = Vec::with_capacity(requests.len());
        for (request, service) in requests.iter().zip(service_times) {
            // FIFO: take the accelerator that frees up first. First minimum,
            // so ties keep the lowest unit index; a plain scan avoids any
            // panicking comparator (try_validate guarantees the pool is
            // nonempty).
            let mut idx = 0usize;
            for (j, &t) in free_at.iter().enumerate() {
                if t < free_at[idx] {
                    idx = j;
                }
            }
            free_at[idx] += service;
            records.push(RequestRecord::served(request.num_keys(), service, free_at[idx]));
        }
        Ok(ServingReport { records })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsa_core::attention::ElsaParams;
    use elsa_linalg::SeededRng;
    use elsa_workloads::{DatasetKind, ModelKind, Workload};

    fn server(seed: u64) -> InferenceServer {
        let workload = Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M };
        let mut rng = SeededRng::new(seed);
        let train = workload.generate_batch(1, &mut rng);
        let operator = ElsaAttention::learn(
            ElsaParams::for_dims(64, 64, &mut SeededRng::new(seed + 1)),
            &train,
            1.0,
        );
        InferenceServer::new(
            AcceleratorConfig { n_max: 200, ..AcceleratorConfig::paper() },
            operator,
        )
    }

    fn requests(count: usize, seed: u64) -> Vec<AttentionInputs> {
        let workload = Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M };
        let mut rng = SeededRng::new(seed);
        workload.generate_batch(count, &mut rng)
    }

    #[test]
    fn percentiles_are_ordered() {
        let server = server(1);
        let report = server.serve(&requests(24, 2));
        let p50 = report.completion_percentile_s(50.0);
        let p95 = report.completion_percentile_s(95.0);
        let p99 = report.completion_percentile_s(99.0);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p50 > 0.0);
    }

    #[test]
    fn percentile_quantile_is_clamped() {
        let report = ServingReport {
            records: vec![
                RequestRecord::served(10, 1.0, 1.0),
                RequestRecord::served(10, 1.0, 2.0),
                RequestRecord::served(10, 1.0, 3.0),
            ],
        };
        // Out-of-range quantiles clamp to the extremes instead of indexing
        // out of bounds or extrapolating.
        assert_eq!(report.completion_percentile_s(-10.0), 1.0);
        assert_eq!(report.completion_percentile_s(0.0), 1.0);
        assert_eq!(report.completion_percentile_s(100.0), 3.0);
        assert_eq!(report.completion_percentile_s(250.0), 3.0);
    }

    #[test]
    fn short_requests_have_short_service() {
        let server = server(3);
        let report = server.serve(&requests(24, 4));
        // Service time must correlate with request length: compare the
        // shortest and longest requests directly.
        let min = report.records.iter().min_by_key(|r| r.n_real).expect("nonempty");
        let max = report.records.iter().max_by_key(|r| r.n_real).expect("nonempty");
        if max.n_real > min.n_real + 40 {
            assert!(max.service_s > min.service_s, "padding-free service times");
        }
    }

    #[test]
    fn throughput_scales_with_accelerators() {
        let workload_requests = requests(48, 5);
        let one = {
            let mut s = server(6);
            s.accel_config.num_accelerators = 1;
            s.serve(&workload_requests).throughput_per_s()
        };
        let twelve = {
            let mut s = server(6);
            s.accel_config.num_accelerators = 12;
            s.serve(&workload_requests).throughput_per_s()
        };
        let ratio = twelve / one;
        assert!(ratio > 6.0, "12-accelerator scaling only {ratio}x");
    }

    #[test]
    fn empty_request_stream() {
        let server = server(7);
        let report = server.serve(&[]);
        assert_eq!(report.throughput_per_s(), 0.0);
        assert_eq!(report.mean_service_s(), 0.0);
        assert_eq!(report.completion_percentile_s(99.0), 0.0);
        assert_eq!(report.served_count(), 0);
        assert_eq!(report.failed_count(), 0);
    }

    #[test]
    fn all_failed_records_yield_zero_metrics_without_nan() {
        let report = ServingReport {
            records: vec![
                RequestRecord {
                    n_real: 10,
                    service_s: 0.0,
                    completion_s: 1.0,
                    degraded: false,
                    retries: 3,
                    failed: true,
                },
                RequestRecord {
                    n_real: 20,
                    service_s: 0.0,
                    completion_s: 2.0,
                    degraded: false,
                    retries: 5,
                    failed: true,
                },
            ],
        };
        for value in [
            report.throughput_per_s(),
            report.mean_service_s(),
            report.completion_percentile_s(50.0),
            report.completion_percentile_s(99.0),
        ] {
            assert_eq!(value, 0.0, "all-failed batches must report 0, never NaN");
            assert!(!value.is_nan());
        }
        assert_eq!(report.served_count(), 0);
        assert_eq!(report.failed_count(), 2);
        assert_eq!(report.total_retries(), 8);
    }

    #[test]
    fn failed_records_are_excluded_from_latency_metrics() {
        let served = RequestRecord::served(10, 2.0, 4.0);
        let failed = RequestRecord {
            n_real: 10,
            service_s: 0.0,
            // A fast give-up must not drag percentiles down, nor a slow one
            // inflate the makespan.
            completion_s: 1000.0,
            degraded: false,
            retries: 16,
            failed: true,
        };
        let report = ServingReport { records: vec![served, failed] };
        assert_eq!(report.completion_percentile_s(99.0), 4.0);
        assert_eq!(report.mean_service_s(), 2.0);
        assert_eq!(report.throughput_per_s(), 1.0 / 4.0);
        assert_eq!(report.served_count(), 1);
        assert_eq!(report.failed_count(), 1);
        assert_eq!(report.total_retries(), 16);
    }

    #[test]
    fn try_new_rejects_misfit_operator_without_panicking() {
        let workload = Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M };
        let mut rng = SeededRng::new(11);
        let train = workload.generate_batch(1, &mut rng);
        let operator = ElsaAttention::learn(
            ElsaParams::for_dims(64, 64, &mut SeededRng::new(12)),
            &train,
            1.0,
        );
        let config = AcceleratorConfig { d: 32, ..AcceleratorConfig::paper() };
        let err = InferenceServer::try_new(config, operator).expect_err("operator d = 64 vs 32");
        assert!(err.to_string().contains("does not fit hardware d"));
    }

    #[test]
    fn try_serve_rejects_oversized_request_without_panicking() {
        let server = server(13);
        let workload = Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M };
        let mut rng = SeededRng::new(14);
        let mut batch = workload.generate_batch(3, &mut rng);
        // server() caps the hardware at n_max = 200.
        let mut oversized_rng = SeededRng::new(15);
        let mut mk =
            || elsa_linalg::Matrix::from_fn(300, 64, |_, _| oversized_rng.standard_normal() as f32);
        batch.insert(1, AttentionInputs::new(mk(), mk(), mk()));
        let err = server.try_serve(&batch).expect_err("request 1 exceeds n_max");
        assert!(matches!(err, crate::RuntimeError::Request { index: 1, .. }));
        assert!(err.to_string().contains("exceeds hardware n_max"));
    }

    #[test]
    fn serve_is_identical_serial_and_parallel() {
        // The per-request fan-out must not change a single bit of the report:
        // same service times, same FIFO completion times, any worker count.
        let server = server(8);
        let batch = requests(24, 9);
        let serial = elsa_parallel::with_threads(1, || server.serve(&batch));
        let parallel = elsa_parallel::with_threads(4, || server.serve(&batch));
        assert_eq!(serial, parallel);
    }
}
