//! Typed runtime errors.
//!
//! Everything a *caller* can get wrong — a mis-deployed operator, an
//! invalid hardware description, a request that does not fit, a pool with
//! nothing left to serve on — surfaces as a [`RuntimeError`] instead of a
//! panic, so a serving process can reject the one bad input and keep
//! serving the rest. Internal invariant violations (broken FIFO
//! accounting, non-finite virtual clocks) remain `assert!`s: those are
//! bugs, not inputs.

use std::fmt;

use elsa_sim::FitError;

/// An error the runtime reports to its caller instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RuntimeError {
    /// The operator or hardware configuration is unusable as deployed.
    Misfit(FitError),
    /// One request of a batch does not fit the hardware.
    Request {
        /// Index of the offending request in the batch.
        index: usize,
        /// Why it does not fit.
        source: FitError,
    },
    /// A scheduler was asked to manage zero accelerators.
    NoAccelerators,
    /// A scheduler was given a negative per-job command overhead.
    NegativeOverhead {
        /// The offending overhead in seconds.
        overhead_s: f64,
    },
    /// Every accelerator in the pool is dead or quarantined; nothing can
    /// be dispatched.
    NoHealthyUnits,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            RuntimeError::Misfit(e) => write!(f, "{e}"),
            RuntimeError::Request { index, source } => {
                write!(f, "request {index}: {source}")
            }
            RuntimeError::NoAccelerators => write!(f, "need at least one accelerator"),
            RuntimeError::NegativeOverhead { overhead_s } => {
                write!(f, "overhead cannot be negative (got {overhead_s})")
            }
            RuntimeError::NoHealthyUnits => {
                write!(f, "no healthy accelerator units remain in the pool")
            }
        }
    }
}

impl std::error::Error for RuntimeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RuntimeError::Misfit(e) | RuntimeError::Request { source: e, .. } => Some(e),
            _ => None,
        }
    }
}

impl From<FitError> for RuntimeError {
    fn from(e: FitError) -> Self {
        RuntimeError::Misfit(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_keeps_legacy_panic_phrases() {
        // The panicking wrappers format these, so messages that
        // should_panic tests match on must survive.
        assert!(RuntimeError::NoAccelerators.to_string().contains("at least one accelerator"));
        assert!(RuntimeError::NegativeOverhead { overhead_s: -1.0 }
            .to_string()
            .contains("overhead cannot be negative"));
        let misfit = RuntimeError::from(FitError::RequestTooLarge { n: 9, n_max: 4 });
        assert!(misfit.to_string().contains("exceeds hardware n_max"));
    }

    #[test]
    fn request_errors_carry_their_source() {
        use std::error::Error;
        let e = RuntimeError::Request {
            index: 3,
            source: FitError::RequestDim { input_d: 32, hardware_d: 64 },
        };
        assert!(e.to_string().starts_with("request 3:"));
        assert!(e.source().is_some());
    }
}
