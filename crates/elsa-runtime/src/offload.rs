//! Whole-model offload: run every attention sub-layer of a transformer on
//! the simulated accelerators and combine with the host's non-attention
//! cost (§V-C, *Impact on End-to-End Performance*).

use elsa_attention::exact::AttentionInputs;
use elsa_attention::TransformerConfig;
use elsa_baselines::GpuModel;
use elsa_core::attention::{ElsaAttention, ElsaParams, SelectionStats};
use elsa_linalg::SeededRng;
use elsa_sim::{AcceleratorConfig, ElsaAccelerator};

use crate::scheduler::BatchScheduler;

/// Per-layer result of one offloaded inference.
#[derive(Debug, Clone, PartialEq)]
pub struct LayerReport {
    /// Makespan of this layer's head-invocations across the accelerators.
    pub attention_makespan_s: f64,
    /// What the GPU would have spent on those same attention kernels.
    pub gpu_attention_s: f64,
    /// Host-side (GPU) time for projections / FFN / norms of this layer.
    pub host_other_s: f64,
    /// Aggregated candidate statistics over the layer's heads.
    pub stats: SelectionStats,
}

/// The result of one full offloaded inference.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelReport {
    /// One entry per layer.
    pub layers: Vec<LayerReport>,
}

impl ModelReport {
    /// Total inference time with attention offloaded to ELSA.
    #[must_use]
    pub fn offloaded_time_s(&self) -> f64 {
        self.layers.iter().map(|l| l.attention_makespan_s + l.host_other_s).sum()
    }

    /// Total inference time with everything on the GPU.
    #[must_use]
    pub fn gpu_only_time_s(&self) -> f64 {
        self.layers.iter().map(|l| l.gpu_attention_s + l.host_other_s).sum()
    }

    /// End-to-end speedup from offloading (the §V-C headline).
    #[must_use]
    pub fn end_to_end_speedup(&self) -> f64 {
        self.gpu_only_time_s() / self.offloaded_time_s()
    }

    /// Mean candidate fraction across all sub-layers.
    #[must_use]
    pub fn candidate_fraction(&self) -> f64 {
        let mut merged = SelectionStats::default();
        for l in &self.layers {
            merged = merged.merged(&l.stats);
        }
        merged.candidate_fraction()
    }
}

/// A transformer model whose attention sub-layers run on ELSA accelerators.
///
/// Calibration learns one threshold per sub-layer (the [`crate::ThresholdTable`]
/// protocol) and deploys one [`ElsaAttention`] operator per sub-layer; the
/// hash projection is shared across sub-layers, matching hardware whose
/// Kronecker factor registers are loaded once.
#[derive(Debug)]
pub struct ModelOffload {
    config: TransformerConfig,
    accel_config: AcceleratorConfig,
    scheduler: BatchScheduler,
    operators: Vec<ElsaAttention>,
}

impl ModelOffload {
    /// Calibrates the per-sublayer thresholds at degree-of-approximation `p`
    /// from `calibration_batches` invocations per sub-layer, produced by
    /// `generator(layer, head, batch, rng)`.
    ///
    /// # Panics
    ///
    /// Panics if `calibration_batches == 0`, or the model's head dimension
    /// differs from the accelerator's `d`.
    #[must_use]
    pub fn calibrate(
        config: TransformerConfig,
        accel_config: AcceleratorConfig,
        scheduler: BatchScheduler,
        p: f64,
        mut generator: impl FnMut(usize, usize, usize, &mut SeededRng) -> AttentionInputs,
        calibration_batches: usize,
        rng: &mut SeededRng,
    ) -> Self {
        assert!(calibration_batches > 0, "need calibration data");
        assert_eq!(config.d_head(), accel_config.d, "head dimension must match hardware");
        let params = ElsaParams::for_dims(accel_config.d, accel_config.k, rng);
        let mut operators = Vec::with_capacity(config.attention_sublayers());
        for layer in 0..config.num_layers {
            for head in 0..config.num_heads {
                let batches: Vec<AttentionInputs> = (0..calibration_batches)
                    .map(|b| generator(layer, head, b, rng))
                    .collect();
                operators.push(ElsaAttention::learn(params.clone(), &batches, p));
            }
        }
        Self { config, accel_config, scheduler, operators }
    }

    /// The per-sublayer operator (layer-major, head-minor).
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    #[must_use]
    pub fn operator(&self, layer: usize, head: usize) -> &ElsaAttention {
        assert!(layer < self.config.num_layers && head < self.config.num_heads);
        &self.operators[layer * self.config.num_heads + head]
    }

    /// The learned thresholds, layer-major.
    #[must_use]
    pub fn thresholds(&self) -> Vec<f64> {
        self.operators.iter().map(ElsaAttention::threshold).collect()
    }

    /// Runs one inference: `generator(layer, head, rng)` supplies each
    /// sub-layer's (projected) attention inputs; every invocation runs on
    /// the cycle-level simulator, heads are scheduled across the
    /// accelerators, and the host cost model fills in the rest of the layer.
    #[must_use]
    pub fn run(
        &self,
        mut generator: impl FnMut(usize, usize, &mut SeededRng) -> AttentionInputs,
        rng: &mut SeededRng,
    ) -> ModelReport {
        let gpu = GpuModel::v100();
        let padded = self.config.max_seq_len;
        let mut layers = Vec::with_capacity(self.config.num_layers);
        for layer in 0..self.config.num_layers {
            let mut latencies = Vec::with_capacity(self.config.num_heads);
            let mut stats = SelectionStats::default();
            for head in 0..self.config.num_heads {
                let inputs = generator(layer, head, rng);
                let accel = ElsaAccelerator::new(
                    self.accel_config,
                    self.operator(layer, head).clone(),
                );
                let report = accel.run(&inputs);
                latencies.push(report.cycles.seconds(&self.accel_config));
                stats = stats.merged(&report.stats);
            }
            let schedule = self.scheduler.schedule(&latencies);
            layers.push(LayerReport {
                attention_makespan_s: schedule.makespan_s(),
                gpu_attention_s: gpu.attention_kernel_time_s(padded, self.config.d_head())
                    * self.config.num_heads as f64,
                host_other_s: gpu.non_attention_layer_time_s(&self.config, padded),
                stats,
            });
        }
        ModelReport { layers }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::SchedulePolicy;
    use elsa_workloads::AttentionPatternConfig;

    fn small_model() -> TransformerConfig {
        TransformerConfig::new(2, 128, 2, 256, 128)
    }

    fn generator(layer: usize, head: usize, rng: &mut SeededRng) -> AttentionInputs {
        // Sub-layers differ in peakedness, like real heads do.
        let relevant = 3 + layer * 2 + head;
        AttentionPatternConfig::new(128, 64, relevant, 2.0).generate(rng)
    }

    fn offload(p: f64) -> ModelOffload {
        let mut rng = SeededRng::new(1);
        ModelOffload::calibrate(
            small_model(),
            AcceleratorConfig { n_max: 128, ..AcceleratorConfig::paper() },
            BatchScheduler::new(12, 1.0e-6, SchedulePolicy::LongestFirst),
            p,
            |l, h, _b, rng| generator(l, h, rng),
            2,
            &mut rng,
        )
    }

    #[test]
    fn calibration_produces_per_sublayer_thresholds() {
        let model = offload(1.0);
        let thresholds = model.thresholds();
        assert_eq!(thresholds.len(), 4);
        assert!(thresholds.iter().all(|t| t.is_finite()));
        // Different profiles => not all identical.
        let first = thresholds[0];
        assert!(thresholds.iter().any(|&t| (t - first).abs() > 1e-6));
    }

    #[test]
    fn offloaded_inference_beats_gpu_only() {
        let model = offload(1.0);
        let mut rng = SeededRng::new(2);
        let report = model.run(generator, &mut rng);
        assert_eq!(report.layers.len(), 2);
        assert!(report.end_to_end_speedup() > 1.0, "speedup {}", report.end_to_end_speedup());
        assert!(report.candidate_fraction() < 1.0);
        assert!(report.offloaded_time_s() > 0.0);
    }

    #[test]
    fn more_aggressive_p_is_not_slower() {
        let mut rng = SeededRng::new(3);
        let conservative = offload(0.5).run(generator, &mut rng);
        let mut rng = SeededRng::new(3);
        let aggressive = offload(4.0).run(generator, &mut rng);
        assert!(aggressive.offloaded_time_s() <= conservative.offloaded_time_s() + 1e-9);
    }

    #[test]
    #[should_panic(expected = "head dimension must match")]
    fn rejects_dimension_mismatch() {
        let mut rng = SeededRng::new(4);
        let bad = TransformerConfig::new(1, 96, 3, 128, 64); // d_head = 32
        let _ = ModelOffload::calibrate(
            bad,
            AcceleratorConfig::paper(),
            BatchScheduler::paper(),
            1.0,
            |l, h, _b, rng| generator(l, h, rng),
            1,
            &mut rng,
        );
    }
}
