//! Host-integration runtime for the ELSA accelerator (§IV-B, §V-C).
//!
//! The paper positions ELSA as "a specialized functional unit … which can be
//! integrated with various computing devices such as CPUs, GPUs, and other
//! NN accelerators": the host issues a command per self-attention invocation
//! (passing Q/K/V by reference into scratchpad memory), twelve accelerators
//! exploit batch-level parallelism, and the candidate-selection threshold is
//! learned **per attention sub-layer** — 384 of them for BERT-large (§III-E).
//!
//! This crate is that integration layer:
//!
//! * [`thresholds`] — [`thresholds::ThresholdTable`]: one learned threshold
//!   per (layer, head) sub-layer, trained from per-sublayer calibration
//!   batches exactly as Fig. 6 describes;
//! * [`scheduler`] — [`scheduler::BatchScheduler`]: assigns head-invocations
//!   to accelerators (LPT or round-robin), including the per-command host
//!   issue overhead, and reports the layer makespan;
//! * [`quality`] — [`quality::DeepProxyModel`]: stacked transformer layers
//!   whose attention runs exactly or through calibrated ELSA operators, so
//!   accuracy can be measured at the top of a deep residual stack (the
//!   paper's end-to-end protocol) instead of at a single layer;
//! * [`offload`] — [`offload::ModelOffload`]: a whole-model driver that runs
//!   every attention sub-layer of a transformer through the cycle-level
//!   simulator and combines the result with the host-side (GPU) cost of the
//!   non-attention work, yielding the end-to-end speedups of §V-C;
//! * [`error`] — [`error::RuntimeError`]: typed errors for everything a
//!   caller can get wrong, so serving keeps running instead of panicking;
//! * [`failover`] — [`failover::FaultTolerantServer`]: the chaos-hardened
//!   FIFO server: failover across surviving accelerators under a seeded
//!   `elsa-fault` plan, quarantine of repeatedly faulting units, and
//!   graceful degradation to exact attention when a numeric guard trips.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod error;
pub mod failover;
pub mod offload;
pub mod quality;
pub mod scheduler;
pub mod serving;
pub mod thresholds;

pub use error::RuntimeError;
pub use failover::{FailoverPolicy, FaultTolerantServer, ServedBatch};
pub use offload::{ModelOffload, ModelReport};
pub use quality::DeepProxyModel;
pub use serving::{InferenceServer, RequestRecord, ServingReport};
pub use scheduler::{BatchScheduler, SchedulePolicy};
pub use thresholds::ThresholdTable;
