//! # elsa-testkit
//!
//! Zero-dependency test substrate for the ELSA reproduction, replacing the
//! external `rand`, `proptest`, and `criterion` crates so the workspace
//! builds and tests fully offline.
//!
//! Three modules:
//!
//! * [`rng`] — seeded, splittable pseudo-randomness: [`SplitMix64`] for seed
//!   expansion and [`TestRng`] (xoshiro256++) with uniform, bounded-integer,
//!   and Box–Muller normal sampling. `elsa_linalg::SeededRng` wraps
//!   [`TestRng`]; simulation code should keep going through that wrapper.
//! * [`prop`] — a property-based testing harness: composable [`prop::Gen`]
//!   generators (ranges, vectors, subsets, matrices, tuples), seeded case
//!   generation, greedy shrinking, and failure reports that include the
//!   reproducing seed. Entry points: the [`props!`] macro or [`prop::check`].
//! * [`bench`] — a micro-benchmark harness for `harness = false` bench
//!   targets: warmup, timed samples, min/median/p95 reporting, compatible
//!   with `cargo bench` (measures) and `cargo test --benches` (smoke-runs).
//!
//! The crate depends only on `std`. Keeping it that way is a workspace
//! policy enforced by `scripts/verify.sh`.

pub mod bench;
pub mod prop;
pub mod rng;

pub use rng::{SplitMix64, TestRng};

/// Everything a property-test file needs: the [`props!`] macro re-exported
/// assertion macros, generator constructors, and config types.
pub mod prelude {
    pub use crate::prop::{
        bools, ints, ints_u64, just, matrices, range, range_f32, subsets, vecs, CaseError,
        CaseResult, Config, Gen, GenMatrix,
    };
    pub use crate::rng::TestRng;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, props};
}
