//! Seeded, splittable pseudo-random number generation.
//!
//! Two generators, both from the public-domain xoshiro family reference
//! implementations (Blackman & Vigna):
//!
//! * [`SplitMix64`] — a tiny 64-bit state mixer. Used to expand a user seed
//!   into the 256-bit xoshiro state and to derive per-case seeds in the
//!   property harness. Never hand it to simulation code directly.
//! * [`TestRng`] — xoshiro256++, the workhorse generator. Passes BigCrush,
//!   has a 2^256 − 1 period, and is a handful of shifts and rotates per draw.
//!
//! [`TestRng`] also carries the sampling primitives the workspace needs
//! (uniform floats, bounded integers, Box–Muller normals) so downstream
//! wrappers like `elsa_linalg::SeededRng` stay thin.

/// SplitMix64: a 64-bit finalizer-style generator used for seed expansion.
///
/// # Examples
///
/// ```
/// use elsa_testkit::rng::SplitMix64;
/// let mut a = SplitMix64::new(1);
/// let mut b = SplitMix64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Golden-ratio increment of the Weyl sequence.
    pub const GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

    /// Creates the mixer from a seed.
    #[must_use]
    pub const fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64 random bits.
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(Self::GAMMA);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// One-shot mix of a value: `SplitMix64::mix(x)` is the first output of
    /// `SplitMix64::new(x)`. Handy for deriving stream labels.
    #[must_use]
    pub fn mix(x: u64) -> u64 {
        Self::new(x).next_u64()
    }
}

/// xoshiro256++: the deterministic generator behind every stochastic
/// component of the reproduction.
///
/// # Examples
///
/// ```
/// use elsa_testkit::rng::TestRng;
/// let mut a = TestRng::new(42);
/// let mut b = TestRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// assert!(a.uniform() >= 0.0 && a.uniform() < 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
    /// Spare normal deviate from the last Box–Muller pair.
    cached_normal: Option<f64>,
}

impl TestRng {
    /// Creates a generator from an explicit seed, expanding it to the
    /// 256-bit state with SplitMix64 (the seeding procedure recommended by
    /// the xoshiro authors).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        let mut mixer = SplitMix64::new(seed);
        let s = [mixer.next_u64(), mixer.next_u64(), mixer.next_u64(), mixer.next_u64()];
        Self { s, cached_normal: None }
    }

    /// Next 64 random bits (xoshiro256++ step).
    #[must_use]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        self.cached_normal = None;
        result
    }

    /// Derives an independent child generator for the given stream label.
    ///
    /// Splitting draws one value from `self` (advancing it) and mixes the
    /// label through SplitMix64, so distinct labels from the same parent
    /// state — and the same label from distinct parent states — give
    /// unrelated streams.
    #[must_use]
    pub fn split(&mut self, label: u64) -> Self {
        let base = self.next_u64();
        Self::new(base ^ SplitMix64::mix(label))
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    #[must_use]
    pub fn uniform(&mut self) -> f64 {
        // Standard double conversion: take the top 53 bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[must_use]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty uniform range [{lo}, {hi})");
        lo + self.uniform() * (hi - lo)
    }

    /// Unbiased uniform integer in `[0, n)` (Lemire's multiply-shift method
    /// with rejection).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index range must be nonempty");
        let n = n as u64;
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(n);
            let low = m as u64;
            // Reject the final partial block so every residue is equally likely.
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// Bernoulli draw with success probability `p` (clamped to `[0, 1]`).
    #[must_use]
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// A standard normal `N(0, 1)` deviate via the Box–Muller transform.
    ///
    /// Deviates come in pairs; the spare is cached and returned by the next
    /// call (the cache is invalidated by any intervening raw draw).
    #[must_use]
    pub fn standard_normal(&mut self) -> f64 {
        if let Some(z) = self.cached_normal.take() {
            return z;
        }
        // Box–Muller on (0,1] × [0,1) uniforms.
        let u1 = 1.0 - self.uniform(); // in (0, 1], avoids ln(0)
        let u2 = self.uniform();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// A normal deviate with the given mean and standard deviation.
    #[must_use]
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // First outputs of SplitMix64 seeded with 1234567, from the
        // published reference implementation.
        let mut sm = SplitMix64::new(1_234_567);
        assert_eq!(sm.next_u64(), 6_457_827_717_110_365_317);
        assert_eq!(sm.next_u64(), 3_203_168_211_198_807_973);
        assert_eq!(sm.next_u64(), 9_817_491_932_198_370_423);
    }

    #[test]
    fn xoshiro_known_answer_seed_42() {
        // First outputs of xoshiro256++ with SplitMix64(42) state expansion;
        // guards both the seeding procedure and the step function.
        let mut rng = TestRng::new(42);
        assert_eq!(rng.next_u64(), 15_021_278_609_987_233_951);
        assert_eq!(rng.next_u64(), 5_881_210_131_331_364_753);
        assert_eq!(rng.next_u64(), 18_149_643_915_985_481_100);
    }

    #[test]
    fn xoshiro_deterministic_across_instances() {
        let mut a = TestRng::new(99);
        let mut b = TestRng::new(99);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_produce_disjoint_prefixes() {
        let mut a = TestRng::new(0);
        let mut b = TestRng::new(1);
        let collisions = (0..256).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(collisions, 0);
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut rng = TestRng::new(7);
        for _ in 0..10_000 {
            let u = rng.uniform();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn index_unbiased_over_small_range() {
        let mut rng = TestRng::new(11);
        let n = 7;
        let mut counts = vec![0u32; n];
        let draws = 70_000;
        for _ in 0..draws {
            counts[rng.index(n)] += 1;
        }
        let expect = draws as f64 / n as f64;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (f64::from(c) - expect).abs() / expect;
            assert!(dev < 0.05, "bucket {i}: count {c}, expected {expect}");
        }
    }

    #[test]
    fn split_streams_diverge_from_parent_and_siblings() {
        let mut parent = TestRng::new(5);
        let mut c1 = parent.split(1);
        let mut c2 = parent.split(2);
        let mut p = TestRng::new(5);
        let _ = p.split(1);
        let _ = p.split(2);
        let matches_sib = (0..128).filter(|_| c1.next_u64() == c2.next_u64()).count();
        let matches_par = (0..128).filter(|_| parent.next_u64() == p.next_u64()).count();
        assert_eq!(matches_sib, 0);
        // Parents advanced identically, so they stay in lockstep.
        assert_eq!(matches_par, 128);
    }

    #[test]
    fn raw_draw_invalidates_normal_cache() {
        // A raw bit draw between two normals must not replay the cached
        // spare from a stale Box–Muller pair.
        let mut a = TestRng::new(3);
        let mut b = TestRng::new(3);
        let _ = a.standard_normal();
        let _ = b.standard_normal();
        let _ = b.next_u64();
        // `a` returns its cached spare; `b` was invalidated and regenerates.
        assert_ne!(a.standard_normal(), b.standard_normal());
    }
}
