//! A minimal property-based testing harness.
//!
//! The shape follows proptest: a [`Gen`] produces random values and knows how
//! to propose smaller variants of a failing one; [`check`] drives seeded case
//! generation, and on failure shrinks greedily and panics with the
//! reproducing seed. The [`props!`](crate::props) macro packages one
//! generator + property pair per `#[test]` function.
//!
//! # Reproducing failures
//!
//! Every failure message contains a `case seed`. Set `ELSA_TESTKIT_SEED` to
//! that value to make the failing draw the *first* case of the run:
//!
//! ```text
//! ELSA_TESTKIT_SEED=0x1234abcd cargo test -q failing_property
//! ```

use crate::rng::{SplitMix64, TestRng};
use std::fmt::Debug;

/// Why a single case did not pass.
#[derive(Debug, Clone)]
pub enum CaseError {
    /// The property's assertion failed with this message.
    Fail(String),
    /// The generated input did not satisfy a `prop_assume!` precondition.
    Discard,
}

/// Outcome of running the property on one generated value.
pub type CaseResult = Result<(), CaseError>;

/// A generator of random test inputs with optional greedy shrinking.
pub trait Gen {
    /// The type of generated values.
    type Value: Clone + Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Proposes strictly "smaller" variants of a failing value, most
    /// aggressive first. The default proposes nothing (no shrinking).
    fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
        Vec::new()
    }
}

// Allow passing generators by reference.
impl<G: Gen + ?Sized> Gen for &G {
    type Value = G::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
    fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
        (**self).shrink(value)
    }
}

/// Harness configuration: number of cases, base seed, shrink/discard limits.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of passing cases required.
    pub cases: u32,
    /// Base seed; per-case seeds are derived from it. Overridden by the
    /// `ELSA_TESTKIT_SEED` environment variable.
    pub seed: u64,
    /// Maximum greedy shrink steps after a failure.
    pub max_shrink_steps: u32,
    /// Maximum discarded cases per passing case before giving up.
    pub max_discard_ratio: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self { cases: 256, seed: 0xE15A_7E57_0000_0000, max_shrink_steps: 512, max_discard_ratio: 10 }
    }
}

impl Config {
    /// A config running `cases` cases with the default seed and limits.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases, ..Self::default() }
    }

    /// Replaces the base seed.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

fn env_seed() -> Option<u64> {
    let raw = std::env::var("ELSA_TESTKIT_SEED").ok()?;
    let raw = raw.trim();
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(seed) => Some(seed),
        Err(_) => panic!("ELSA_TESTKIT_SEED is not a valid u64: {raw:?}"),
    }
}

/// Runs `prop` against `config.cases` values drawn from `gen`.
///
/// On failure the input is shrunk greedily — repeatedly replacing it with the
/// first proposed variant that still fails — and the panic message reports
/// the property name, the reproducing case seed, and both the original and
/// shrunk inputs.
///
/// # Panics
///
/// Panics if any case fails, or if the discard ratio is exceeded.
pub fn check<G: Gen>(name: &str, config: &Config, gen: &G, prop: impl Fn(&G::Value) -> CaseResult) {
    let base_seed = env_seed().unwrap_or(config.seed);
    // Each case gets its own seed so one reported number reproduces it.
    let mut seed_stream = SplitMix64::new(base_seed);
    let mut passed: u32 = 0;
    let mut discarded: u64 = 0;
    let mut case_index: u64 = 0;
    while passed < config.cases {
        // With ELSA_TESTKIT_SEED set, the first case replays the seed exactly.
        let case_seed = if case_index == 0 && env_seed().is_some() {
            base_seed
        } else {
            seed_stream.next_u64()
        };
        case_index += 1;
        let mut rng = TestRng::new(case_seed);
        let value = gen.generate(&mut rng);
        match prop(&value) {
            Ok(()) => passed += 1,
            Err(CaseError::Discard) => {
                discarded += 1;
                let allowed = u64::from(config.max_discard_ratio) * u64::from(config.cases);
                assert!(
                    discarded <= allowed,
                    "property `{name}`: discarded {discarded} cases \
                     (limit {allowed}); weaken the prop_assume! preconditions"
                );
            }
            Err(CaseError::Fail(first_msg)) => {
                let (shrunk, msg, steps) = shrink_failure(gen, &prop, value.clone(), first_msg, config);
                panic!(
                    "property `{name}` failed after {passed} passing case(s)\n\
                     case seed: {case_seed:#018x} (rerun with ELSA_TESTKIT_SEED={case_seed:#x})\n\
                     original input: {value:?}\n\
                     shrunk input ({steps} step(s)): {shrunk:?}\n\
                     failure: {msg}"
                );
            }
        }
    }
}

/// Greedy shrinking: keep the first proposed variant that still fails.
fn shrink_failure<G: Gen>(
    gen: &G,
    prop: &impl Fn(&G::Value) -> CaseResult,
    mut current: G::Value,
    mut msg: String,
    config: &Config,
) -> (G::Value, String, u32) {
    let mut steps = 0;
    'outer: while steps < config.max_shrink_steps {
        for candidate in gen.shrink(&current) {
            if let Err(CaseError::Fail(m)) = prop(&candidate) {
                current = candidate;
                msg = m;
                steps += 1;
                continue 'outer;
            }
        }
        break;
    }
    (current, msg, steps)
}

// ---------------------------------------------------------------------------
// Scalar generators
// ---------------------------------------------------------------------------

/// Uniform `f64` in `[lo, hi)`; shrinks toward the in-range point nearest 0.
#[derive(Debug, Clone)]
pub struct F64Range {
    lo: f64,
    hi: f64,
}

/// Uniform `f64` in `[lo, hi)`.
///
/// # Panics
///
/// Panics if the range is empty or not finite.
#[must_use]
pub fn range(lo: f64, hi: f64) -> F64Range {
    assert!(lo < hi && lo.is_finite() && hi.is_finite(), "bad f64 range [{lo}, {hi})");
    F64Range { lo, hi }
}

impl F64Range {
    fn origin(&self) -> f64 {
        0.0f64.clamp(self.lo, self.hi - (self.hi - self.lo) * 1e-9)
    }
}

impl Gen for F64Range {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.uniform_in(self.lo, self.hi)
    }

    fn shrink(&self, &value: &f64) -> Vec<f64> {
        let origin = self.origin();
        if value == origin {
            return Vec::new();
        }
        let mid = origin + (value - origin) / 2.0;
        let mut out = vec![origin];
        if mid != value && mid != origin {
            out.push(mid);
        }
        out
    }
}

/// Uniform `f32` in `[lo, hi)`; shrinks toward the in-range point nearest 0.
#[derive(Debug, Clone)]
pub struct F32Range {
    inner: F64Range,
}

/// Uniform `f32` in `[lo, hi)`.
///
/// # Panics
///
/// Panics if the range is empty or not finite.
#[must_use]
pub fn range_f32(lo: f32, hi: f32) -> F32Range {
    F32Range { inner: range(f64::from(lo), f64::from(hi)) }
}

impl Gen for F32Range {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        self.inner.generate(rng) as f32
    }

    fn shrink(&self, &value: &f32) -> Vec<f32> {
        self.inner
            .shrink(&f64::from(value))
            .into_iter()
            .map(|v| v as f32)
            .filter(|&v| v != value)
            .collect()
    }
}

/// Uniform `usize` in `[lo, hi)`; shrinks toward `lo`.
#[derive(Debug, Clone)]
pub struct UsizeRange {
    lo: usize,
    hi: usize,
}

/// Uniform `usize` in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
#[must_use]
pub fn ints(lo: usize, hi: usize) -> UsizeRange {
    assert!(lo < hi, "bad usize range [{lo}, {hi})");
    UsizeRange { lo, hi }
}

impl Gen for UsizeRange {
    type Value = usize;

    fn generate(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.index(self.hi - self.lo)
    }

    fn shrink(&self, &value: &usize) -> Vec<usize> {
        if value == self.lo {
            return Vec::new();
        }
        let mid = self.lo + (value - self.lo) / 2;
        let mut out = vec![self.lo];
        if mid != self.lo && mid != value {
            out.push(mid);
        }
        if value - 1 != mid && value - 1 != self.lo {
            out.push(value - 1);
        }
        out
    }
}

/// Uniform `u64` over the full domain; shrinks toward 0.
#[derive(Debug, Clone)]
pub struct U64Range {
    lo: u64,
    hi: u64,
}

/// Uniform `u64` in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
#[must_use]
pub fn ints_u64(lo: u64, hi: u64) -> U64Range {
    assert!(lo < hi, "bad u64 range [{lo}, {hi})");
    U64Range { lo, hi }
}

impl Gen for U64Range {
    type Value = u64;

    fn generate(&self, rng: &mut TestRng) -> u64 {
        // Ranges here are far below 2^53 in practice; go through index when
        // the span fits a usize, otherwise take raw bits modulo the span.
        let span = self.hi - self.lo;
        if let Ok(span_us) = usize::try_from(span) {
            self.lo + rng.index(span_us) as u64
        } else {
            self.lo + rng.next_u64() % span
        }
    }

    fn shrink(&self, &value: &u64) -> Vec<u64> {
        if value == self.lo {
            return Vec::new();
        }
        let mid = self.lo + (value - self.lo) / 2;
        let mut out = vec![self.lo];
        if mid != self.lo && mid != value {
            out.push(mid);
        }
        out
    }
}

/// Fair coin; shrinks `true` to `false`.
#[derive(Debug, Clone)]
pub struct BoolGen;

/// Fair coin flip.
#[must_use]
pub fn bools() -> BoolGen {
    BoolGen
}

impl Gen for BoolGen {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }

    fn shrink(&self, &value: &bool) -> Vec<bool> {
        if value {
            vec![false]
        } else {
            Vec::new()
        }
    }
}

/// A constant generator (never shrinks).
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

/// Always yields `value`.
#[must_use]
pub fn just<T: Clone + Debug>(value: T) -> Just<T> {
    Just(value)
}

impl<T: Clone + Debug> Gen for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// ---------------------------------------------------------------------------
// Collection generators
// ---------------------------------------------------------------------------

/// Vector of values from an element generator, with a length range.
///
/// Shrinks by truncating (halving, then dropping one) down to the minimum
/// length, then by shrinking individual elements front to back.
#[derive(Debug, Clone)]
pub struct VecGen<G> {
    elem: G,
    min_len: usize,
    max_len: usize,
}

/// Vector of `len ∈ [min_len, max_len)` values drawn from `elem`.
///
/// # Panics
///
/// Panics if the length range is empty.
#[must_use]
pub fn vecs<G: Gen>(elem: G, min_len: usize, max_len: usize) -> VecGen<G> {
    assert!(min_len < max_len, "bad length range [{min_len}, {max_len})");
    VecGen { elem, min_len, max_len }
}

impl<G: Gen> Gen for VecGen<G> {
    type Value = Vec<G::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<G::Value> {
        let len = self.min_len + rng.index(self.max_len - self.min_len);
        (0..len).map(|_| self.elem.generate(rng)).collect()
    }

    fn shrink(&self, value: &Vec<G::Value>) -> Vec<Vec<G::Value>> {
        let mut out = Vec::new();
        // Structural shrinks: shorter vectors first.
        if value.len() > self.min_len {
            let half = (value.len() / 2).max(self.min_len);
            if half < value.len() {
                out.push(value[..half].to_vec());
            }
            out.push(value[..value.len() - 1].to_vec());
        }
        // Element shrinks: first shrinkable element only (greedy).
        for (i, v) in value.iter().enumerate() {
            let elem_shrinks = self.elem.shrink(v);
            if !elem_shrinks.is_empty() {
                for s in elem_shrinks {
                    let mut copy = value.clone();
                    copy[i] = s;
                    out.push(copy);
                }
                break;
            }
        }
        out
    }
}

/// Sorted vector of distinct indices drawn from `0..n` (any subset size,
/// including empty). Shrinks by dropping elements.
#[derive(Debug, Clone)]
pub struct SubsetGen {
    n: usize,
}

/// Random sorted subset of `0..n`.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn subsets(n: usize) -> SubsetGen {
    assert!(n > 0, "subset domain must be nonempty");
    SubsetGen { n }
}

impl Gen for SubsetGen {
    type Value = Vec<usize>;

    fn generate(&self, rng: &mut TestRng) -> Vec<usize> {
        // Include each index with a random per-case density so both sparse
        // and dense subsets appear.
        let density = rng.uniform();
        (0..self.n).filter(|_| rng.bernoulli(density)).collect()
    }

    fn shrink(&self, value: &Vec<usize>) -> Vec<Vec<usize>> {
        let mut out = Vec::new();
        if value.is_empty() {
            return out;
        }
        out.push(Vec::new());
        if value.len() > 1 {
            out.push(value[..value.len() / 2].to_vec());
            out.push(value[value.len() / 2..].to_vec());
            out.push(value[..value.len() - 1].to_vec());
            out.push(value[1..].to_vec());
        }
        out
    }
}

/// A generated dense matrix: row-major `f64` data with explicit dimensions.
///
/// The testkit cannot depend on `elsa-linalg` (which depends back on the
/// testkit), so matrix generation produces this neutral struct; convert with
/// `Matrix::from_fn(m.rows, m.cols, |r, c| m.at(r, c) as f32)` or similar.
#[derive(Debug, Clone, PartialEq)]
pub struct GenMatrix {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major element data, `rows * cols` long.
    pub data: Vec<f64>,
}

impl GenMatrix {
    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn at(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "({r},{c}) out of {}x{}", self.rows, self.cols);
        self.data[r * self.cols + c]
    }
}

/// Matrices with dimensions drawn from ranges and elements from a scalar
/// generator. Shrinks by halving rows, then columns, then shrinking the
/// first shrinkable element.
#[derive(Debug, Clone)]
pub struct MatrixGen<G> {
    rows: UsizeRange,
    cols: UsizeRange,
    elem: G,
}

/// Matrix generator over `[min_rows, max_rows) × [min_cols, max_cols)`.
#[must_use]
pub fn matrices<G: Gen<Value = f64>>(
    rows: UsizeRange,
    cols: UsizeRange,
    elem: G,
) -> MatrixGen<G> {
    MatrixGen { rows, cols, elem }
}

impl<G: Gen<Value = f64>> Gen for MatrixGen<G> {
    type Value = GenMatrix;

    fn generate(&self, rng: &mut TestRng) -> GenMatrix {
        let rows = self.rows.generate(rng);
        let cols = self.cols.generate(rng);
        let data = (0..rows * cols).map(|_| self.elem.generate(rng)).collect();
        GenMatrix { rows, cols, data }
    }

    fn shrink(&self, value: &GenMatrix) -> Vec<GenMatrix> {
        let mut out = Vec::new();
        for rows in self.rows.shrink(&value.rows) {
            out.push(GenMatrix {
                rows,
                cols: value.cols,
                data: value.data[..rows * value.cols].to_vec(),
            });
        }
        for cols in self.cols.shrink(&value.cols) {
            let mut data = Vec::with_capacity(value.rows * cols);
            for r in 0..value.rows {
                data.extend_from_slice(&value.data[r * value.cols..r * value.cols + cols]);
            }
            out.push(GenMatrix { rows: value.rows, cols, data });
        }
        for (i, v) in value.data.iter().enumerate() {
            let elem_shrinks = self.elem.shrink(v);
            if !elem_shrinks.is_empty() {
                for s in elem_shrinks {
                    let mut copy = value.clone();
                    copy.data[i] = s;
                    out.push(copy);
                }
                break;
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Tuple generators
// ---------------------------------------------------------------------------

macro_rules! impl_gen_for_tuple {
    ( $( $g:ident : $idx:tt ),+ ) => {
        impl<$( $g: Gen ),+> Gen for ( $( $g, )+ ) {
            type Value = ( $( $g::Value, )+ );

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ( $( self.$idx.generate(rng), )+ )
            }

            fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                let mut out = Vec::new();
                $(
                    for s in self.$idx.shrink(&value.$idx) {
                        let mut copy = value.clone();
                        copy.$idx = s;
                        out.push(copy);
                    }
                )+
                out
            }
        }
    };
}

impl_gen_for_tuple!(A: 0);
impl_gen_for_tuple!(A: 0, B: 1);
impl_gen_for_tuple!(A: 0, B: 1, C: 2);
impl_gen_for_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_gen_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_gen_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_gen_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_gen_for_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines `#[test]` functions that check properties over generated inputs.
///
/// ```
/// use elsa_testkit::prelude::*;
///
/// props! {
///     config: Config::with_cases(64);
///
///     fn addition_commutes(a in range(-1e6, 1e6), b in range(-1e6, 1e6)) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// # fn main() {}
/// ```
#[macro_export]
macro_rules! props {
    (
        config: $config:expr;
        $(
            $(#[$meta:meta])*
            fn $name:ident( $( $arg:ident in $gen:expr ),+ $(,)? ) $body:block
        )+
    ) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let __config = $config;
                let __gen = ( $( $gen, )+ );
                $crate::prop::check(stringify!($name), &__config, &__gen, |__case| {
                    let ( $( $arg, )+ ) = ::std::clone::Clone::clone(__case);
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                });
            }
        )+
    };
}

/// Asserts a condition inside a property; on failure the case is reported
/// (with its reproducing seed) and shrunk.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::prop::CaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a == __b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), __a, __b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(__a == __b, $($fmt)+);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (__a, __b) = (&$a, &$b);
        $crate::prop_assert!(
            __a != __b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), __a
        );
    }};
}

/// Discards the current case unless the precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::prop::CaseError::Discard);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let counter = std::cell::Cell::new(0u32);
        check("always_true", &Config::with_cases(100), &range(0.0, 1.0), |_| {
            counter.set(counter.get() + 1);
            Ok(())
        });
        assert_eq!(counter.get(), 100);
    }

    #[test]
    fn generation_is_deterministic_for_a_seed() {
        let gen = (range(-5.0, 5.0), ints(0, 100));
        let mut a = TestRng::new(77);
        let mut b = TestRng::new(77);
        for _ in 0..50 {
            assert_eq!(gen.generate(&mut a), gen.generate(&mut b));
        }
    }

    #[test]
    fn failure_panics_with_seed_and_shrunk_input() {
        let result = std::panic::catch_unwind(|| {
            check("gt_ten_fails", &Config::with_cases(64), &range(0.0, 100.0), |&v| {
                if v >= 10.0 {
                    Err(CaseError::Fail(format!("{v} >= 10")))
                } else {
                    Ok(())
                }
            });
        });
        let msg = *result.expect_err("property must fail").downcast::<String>().unwrap();
        assert!(msg.contains("gt_ten_fails"), "{msg}");
        assert!(msg.contains("ELSA_TESTKIT_SEED="), "{msg}");
        assert!(msg.contains("shrunk input"), "{msg}");
    }

    #[test]
    fn scalar_shrink_reaches_boundary() {
        // The minimal failing input for v >= 10 over [0, 100) is 10 itself;
        // greedy bisection toward 0 must land within one ulp-scale hop of it.
        let result = std::panic::catch_unwind(|| {
            check("boundary", &Config::with_cases(16), &range(0.0, 100.0), |&v| {
                if v >= 10.0 {
                    Err(CaseError::Fail("too big".into()))
                } else {
                    Ok(())
                }
            });
        });
        let msg = *result.expect_err("must fail").downcast::<String>().unwrap();
        let shrunk: f64 = msg
            .lines()
            .find(|l| l.contains("shrunk input"))
            .and_then(|l| l.rsplit(':').next())
            .and_then(|v| v.trim().parse().ok())
            .expect("shrunk value parses");
        assert!((10.0..=20.0).contains(&shrunk), "shrunk to {shrunk}: {msg}");
    }

    #[test]
    fn vec_shrink_reduces_length_to_minimum() {
        let gen = vecs(range(0.0, 1.0), 1, 64);
        let long: Vec<f64> = vec![0.5; 40];
        let shrinks = gen.shrink(&long);
        assert!(shrinks.iter().any(|s| s.len() < long.len()));
        assert!(shrinks.iter().all(|s| !s.is_empty()));
    }

    #[test]
    fn subset_shrinks_propose_smaller_subsets() {
        let gen = subsets(32);
        let value = vec![1, 5, 9, 20];
        let shrinks = gen.shrink(&value);
        assert!(shrinks.contains(&Vec::new()));
        assert!(shrinks.iter().all(|s| s.len() < value.len() || s.is_empty()));
    }

    #[test]
    fn discard_limit_enforced() {
        let result = std::panic::catch_unwind(|| {
            check("all_discarded", &Config::with_cases(8), &range(0.0, 1.0), |_| {
                Err(CaseError::Discard)
            });
        });
        let msg = *result.expect_err("must give up").downcast::<String>().unwrap();
        assert!(msg.contains("discarded"), "{msg}");
    }

    #[test]
    fn matrix_generator_respects_dims() {
        let gen = matrices(ints(1, 8), ints(1, 8), range(-1.0, 1.0));
        let mut rng = TestRng::new(9);
        for _ in 0..100 {
            let m = gen.generate(&mut rng);
            assert_eq!(m.data.len(), m.rows * m.cols);
            assert!((1..8).contains(&m.rows) && (1..8).contains(&m.cols));
        }
    }

    props! {
        config: Config::with_cases(32);

        fn props_macro_smoke(a in range(-10.0, 10.0), flag in bools()) {
            prop_assume!(a.is_finite());
            let doubled = a * 2.0;
            prop_assert!((doubled - 2.0 * a).abs() < 1e-12);
            if flag {
                prop_assert_ne!(doubled + 1.0, doubled);
            }
        }

        fn props_macro_single_arg(v in ints(0, 50)) {
            prop_assert!(v < 50);
        }
    }
}
