//! A lightweight micro-benchmark harness, `cargo bench` compatible.
//!
//! Bench targets declare `harness = false` and use [`bench_main!`](crate::bench_main):
//!
//! ```ignore
//! use elsa_testkit::bench::{Bench, BenchmarkId};
//!
//! fn bench_sum(c: &mut Bench) {
//!     let mut group = c.benchmark_group("sums");
//!     group.bench_function("1k", |b| b.iter(|| (0..1000u64).sum::<u64>()));
//!     group.finish();
//! }
//!
//! elsa_testkit::bench_main!(bench_sum);
//! ```
//!
//! Under `cargo bench` (the binary receives `--bench`) each benchmark is
//! warmed up and timed over many samples, reporting min / median / p95 per
//! iteration. Under `cargo test --benches` (no `--bench` flag) each closure
//! runs exactly once as a smoke test, so benches can never silently rot.

use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
///
/// Same contract as `criterion::black_box` / `std::hint::black_box`.
#[must_use]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// How the harness was invoked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// `cargo bench`: warm up and measure.
    Measure,
    /// `cargo test` / direct run: execute each benchmark once.
    Smoke,
}

/// Identifier for one benchmark within a group: a function name and an
/// optional parameter (mirrors the criterion type so ports are mechanical).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: Option<String>,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// Id with both a function name and a parameter.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self { function: Some(function.into()), parameter: Some(parameter.to_string()) }
    }

    /// Id distinguished only by a parameter value.
    #[must_use]
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self { function: None, parameter: Some(parameter.to_string()) }
    }

    fn label(&self) -> String {
        match (&self.function, &self.parameter) {
            (Some(f), Some(p)) => format!("{f}/{p}"),
            (Some(f), None) => f.clone(),
            (None, Some(p)) => p.clone(),
            (None, None) => String::from("bench"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        Self { function: Some(name.to_string()), parameter: None }
    }
}

/// Top-level harness handle passed to each registered bench function.
#[derive(Debug)]
pub struct Bench {
    mode: Mode,
    /// Substring filter from the command line (criterion-style positional arg).
    filter: Option<String>,
    ran: usize,
}

impl Bench {
    /// Builds the harness from `std::env::args`, detecting `--bench` (added
    /// by `cargo bench`) vs test invocation, and taking the first
    /// non-flag argument as a name filter.
    #[must_use]
    pub fn from_args() -> Self {
        let mut mode = Mode::Smoke;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" => mode = Mode::Measure,
                "--test" => mode = Mode::Smoke,
                a if !a.starts_with('-') && filter.is_none() => filter = Some(a.to_string()),
                _ => {}
            }
        }
        Self { mode, filter, ran: 0 }
    }

    /// Harness with an explicit mode (for tests of the harness itself).
    #[must_use]
    pub fn with_mode(mode: Mode) -> Self {
        Self { mode, filter: None, ran: 0 }
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchGroup<'_> {
        BenchGroup { bench: self, name: name.into(), sample_size: 30 }
    }

    /// Prints the closing summary; called by [`bench_main!`](crate::bench_main).
    pub fn final_summary(&self) {
        if self.mode == Mode::Measure {
            println!("\n{} benchmark(s) measured", self.ran);
        }
    }

    fn matches(&self, label: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| label.contains(f))
    }
}

/// A group of related benchmarks sharing a name prefix and sample size.
#[derive(Debug)]
pub struct BenchGroup<'a> {
    bench: &'a mut Bench,
    name: String,
    sample_size: usize,
}

impl BenchGroup<'_> {
    /// Sets the number of timed samples collected per benchmark.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2` (percentiles need at least two samples).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Registers and runs a benchmark taking no external input.
    pub fn bench_function(&mut self, id: impl Into<BenchmarkId>, mut f: impl FnMut(&mut Bencher)) {
        self.run(id.into(), |b| f(b));
    }

    /// Registers and runs a benchmark over a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) {
        self.run(id, |b| f(b, input));
    }

    /// No-op, for criterion signature compatibility.
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let label = format!("{}/{}", self.name, id.label());
        if !self.bench.matches(&label) {
            return;
        }
        let mut bencher = Bencher {
            mode: self.bench.mode,
            sample_size: self.sample_size,
            report: None,
        };
        f(&mut bencher);
        self.bench.ran += 1;
        match (self.bench.mode, bencher.report) {
            (Mode::Measure, Some(r)) => println!("{label:<48} {r}"),
            (Mode::Measure, None) => println!("{label:<48} (no iter call)"),
            (Mode::Smoke, _) => {}
        }
    }
}

/// Timing statistics for one benchmark, in nanoseconds per iteration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Fastest sample.
    pub min_ns: f64,
    /// Median sample.
    pub median_ns: f64,
    /// 95th-percentile sample.
    pub p95_ns: f64,
    /// Number of samples collected.
    pub samples: usize,
    /// Iterations per sample.
    pub iters_per_sample: u64,
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "median {:>10}  p95 {:>10}  min {:>10}  ({} samples x {} iters)",
            format_ns(self.median_ns),
            format_ns(self.p95_ns),
            format_ns(self.min_ns),
            self.samples,
            self.iters_per_sample,
        )
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Passed to each benchmark closure; call [`Bencher::iter`] with the
/// routine to measure.
#[derive(Debug)]
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    report: Option<Report>,
}

/// Target wall-clock time for one timed sample.
const SAMPLE_TARGET: Duration = Duration::from_millis(10);
/// Warmup budget before sampling starts.
const WARMUP_TARGET: Duration = Duration::from_millis(200);

impl Bencher {
    /// Runs the routine: once in smoke mode, warmup + timed samples in
    /// measure mode. The routine's return value is passed through
    /// [`black_box`] so computing it cannot be optimized away.
    pub fn iter<R>(&mut self, mut routine: impl FnMut() -> R) {
        match self.mode {
            Mode::Smoke => {
                let _ = black_box(routine());
            }
            Mode::Measure => {
                self.report = Some(Self::measure(&mut routine, self.sample_size));
            }
        }
    }

    fn measure<R>(routine: &mut impl FnMut() -> R, sample_size: usize) -> Report {
        // Warmup: run until the budget elapses, estimating per-iter cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_TARGET {
            let _ = black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;
        // Choose iterations per sample so each sample hits the target time.
        let iters_per_sample =
            ((SAMPLE_TARGET.as_secs_f64() / per_iter).ceil() as u64).clamp(1, 1_000_000_000);
        let mut samples_ns: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                let _ = black_box(routine());
            }
            samples_ns.push(t.elapsed().as_nanos() as f64 / iters_per_sample as f64);
        }
        samples_ns.sort_by(f64::total_cmp);
        let pick = |q: f64| {
            let idx = ((samples_ns.len() - 1) as f64 * q).round() as usize;
            samples_ns[idx]
        };
        Report {
            min_ns: samples_ns[0],
            median_ns: pick(0.5),
            p95_ns: pick(0.95),
            samples: samples_ns.len(),
            iters_per_sample,
        }
    }
}

/// Generates the `main` function of a `harness = false` bench target,
/// running each listed `fn(&mut Bench)` in order.
#[macro_export]
macro_rules! bench_main {
    ( $( $func:path ),+ $(,)? ) => {
        fn main() {
            let mut bench = $crate::bench::Bench::from_args();
            $( $func(&mut bench); )+
            bench.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_each_routine_once() {
        let mut bench = Bench::with_mode(Mode::Smoke);
        let count = std::cell::Cell::new(0u32);
        let mut group = bench.benchmark_group("g");
        group.bench_function("one", |b| b.iter(|| count.set(count.get() + 1)));
        group.bench_with_input(BenchmarkId::new("two", 7), &7, |b, &x| {
            b.iter(|| count.set(count.get() + x))
        });
        group.finish();
        assert_eq!(count.get(), 8);
    }

    #[test]
    fn measure_mode_produces_ordered_percentiles() {
        let report = Bencher::measure(&mut || black_box((0..100u64).sum::<u64>()), 10);
        assert!(report.min_ns > 0.0);
        assert!(report.min_ns <= report.median_ns);
        assert!(report.median_ns <= report.p95_ns);
        assert_eq!(report.samples, 10);
        assert!(report.iters_per_sample >= 1);
    }

    #[test]
    fn filter_skips_nonmatching_benchmarks() {
        let mut bench = Bench::with_mode(Mode::Smoke);
        bench.filter = Some("wanted".into());
        let count = std::cell::Cell::new(0u32);
        let mut group = bench.benchmark_group("g");
        group.bench_function("wanted_case", |b| b.iter(|| count.set(count.get() + 1)));
        group.bench_function("other", |b| b.iter(|| count.set(count.get() + 100)));
        group.finish();
        assert_eq!(count.get(), 1);
    }

    #[test]
    fn benchmark_id_labels() {
        assert_eq!(BenchmarkId::new("f", 128).label(), "f/128");
        assert_eq!(BenchmarkId::from_parameter("dense").label(), "dense");
        assert_eq!(BenchmarkId::from("plain").label(), "plain");
    }

    #[test]
    fn format_ns_scales_units() {
        assert_eq!(format_ns(12.3), "12.3 ns");
        assert_eq!(format_ns(12_300.0), "12.30 us");
        assert_eq!(format_ns(12_300_000.0), "12.30 ms");
        assert_eq!(format_ns(2_500_000_000.0), "2.500 s");
    }
}
