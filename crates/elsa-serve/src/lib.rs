//! Online serving for the ELSA accelerator pool.
//!
//! The offline servers in `elsa-runtime` answer "how fast does a batch that
//! is already here finish?". Production serving asks harder questions: how
//! long do requests *queue* at a given offered load, when should a batcher
//! stop waiting, and what do you drop when demand outruns the pool? This
//! crate answers them with a fully deterministic online pipeline:
//!
//! * [`clock`] — a virtual clock in integer nanoseconds; no wall-clock
//!   reads anywhere, so every run replays bit-for-bit on any host at any
//!   `ELSA_THREADS`.
//! * [`arrival`] — seeded open-loop Poisson arrival traces over the
//!   evaluation workloads, with optional burst phases. Shapes and timings
//!   are independent PRNG streams, so one seed sweeps cleanly across λ.
//! * [`queue`] — a bounded, length-bucketed admission queue with three
//!   backpressure policies (block, tail drop, head drop).
//! * [`batcher`] — length-bucketed dynamic batching. ELSA pays real
//!   lengths ([`BatcherMode::Bucketed`]); the [`BatcherMode::Padded`]
//!   emulation charges GPU-style pad-to-batch-max cost, so the padding
//!   waste the paper's architecture avoids is a measured number.
//! * [`estimator`] — closed-form service-time estimates (the paper's
//!   per-query cycle bound) for capacity planning and λ sweeps.
//! * [`dispatch`] — the serial event loop: SLO-aware dispatch onto the
//!   accelerator pool through the same failover semantics as
//!   `elsa_runtime::FaultTolerantServer`, emitting one [`OnlineRecord`]
//!   per arrival and a [`ServeReport`] with queue-delay percentiles, SLO
//!   attainment, shed/timeout accounting, and per-bucket occupancy.
//! * [`session`] — multi-turn decode serving: replayable [`SessionTrace`]s
//!   (each arrival is the next turn of a live session, with session
//!   affinity in the batcher), plus the bounded decode cache — a
//!   [`SessionRegistry`] accounting every session's incremental KV/hash
//!   state against a capacity budget with deterministic LRU or SLO-aware
//!   eviction. A cache hit is charged only the appended tokens'
//!   preprocessing; an evicted session pays the full from-scratch rebuild
//!   on its next turn.
//!
//! Degenerate configurations collapse onto the offline baselines: an
//! unbounded queue, batch size 1, and a simultaneous trace reproduce
//! [`elsa_runtime::InferenceServer::serve`] bit-for-bit (enforced by
//! `tests/online_serving.rs`).

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod arrival;
pub mod batcher;
pub mod clock;
pub mod dispatch;
pub mod estimator;
pub mod queue;
pub mod session;

pub use arrival::{ArrivalConfig, ArrivalRequest, ArrivalTrace, Burst};
pub use batcher::{BatchPolicy, BatcherMode, BucketStats};
pub use clock::VirtualClock;
pub use dispatch::{OnlineRecord, OnlineServer, Outcome, ServeConfig, ServeReport, SessionReport};
pub use estimator::ServiceEstimator;
pub use queue::{AdmissionQueue, Backpressure, QueuedRequest};
pub use session::{
    CacheConfig, CacheStats, EvictionPolicy, SessionArrivalConfig, SessionRegistry, SessionTrace,
    SessionTurnRequest,
};
