//! Closed-form service-time estimation for admission control.
//!
//! The dispatcher's *exact* cost for a request is the cycle-accurate
//! simulation in `crates/elsa-sim` — but an admission controller sometimes
//! needs a cost **before** the simulation runs (capacity planning, the
//! λ-sweep in `bench_serve`, sanity bounds in tests). [`ServiceEstimator`]
//! closes that gap with the paper's closed-form per-query bound
//! (`elsa_sim::cycle::closed_form_query_cycles`): assume a uniform candidate
//! fraction `ρ`, charge `n` pipelined queries at the bound plus
//! preprocessing and drain, and convert cycles to seconds at the configured
//! clock.
//!
//! The estimate is monotone in `n` and deliberately simple; the SLO
//! shedding decision in the event loop uses the *measured* per-request
//! service time instead, so the estimator can stay a planning tool.

use elsa_sim::cycle::closed_form_query_cycles;
use elsa_sim::AcceleratorConfig;

/// Analytic per-request service-time model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceEstimator {
    config: AcceleratorConfig,
    candidate_fraction: f64,
}

impl ServiceEstimator {
    /// Builds an estimator assuming each query selects `candidate_fraction`
    /// of the keys (clamped to `[0, 1]`).
    #[must_use]
    pub fn new(config: AcceleratorConfig, candidate_fraction: f64) -> Self {
        Self { config, candidate_fraction: candidate_fraction.clamp(0.0, 1.0) }
    }

    /// The hardware configuration being modeled.
    #[must_use]
    pub const fn config(&self) -> &AcceleratorConfig {
        &self.config
    }

    /// Assumed candidates per bank for an `n`-key request: `ρ·n` selected
    /// keys spread evenly over the `P_a` banks, rounded up.
    #[must_use]
    pub fn candidates_per_bank(&self, n: usize) -> usize {
        let selected = (self.candidate_fraction * n as f64).ceil() as usize;
        selected.div_ceil(self.config.p_a)
    }

    /// Estimated total cycles for an `n`-entity invocation (`n` queries
    /// over `n` keys): preprocessing + `n` pipelined queries at the
    /// closed-form initiation interval + the final division drain.
    #[must_use]
    pub fn invocation_cycles(&self, n: usize) -> u64 {
        if n == 0 {
            return 0;
        }
        let per_bank = vec![self.candidates_per_bank(n); self.config.p_a];
        let ii = closed_form_query_cycles(&self.config, n, &per_bank);
        self.config.preprocessing_cycles(n) + n as u64 * ii + self.config.division_cycles()
    }

    /// Estimated service seconds for an `n`-entity invocation.
    #[must_use]
    pub fn service_s(&self, n: usize) -> f64 {
        self.invocation_cycles(n) as f64 * self.config.cycle_time_s()
    }

    /// Estimated cycles for one decode turn that appends `appended` tokens
    /// to an `n`-token context and runs `appended` queries over it.
    ///
    /// With `cached = true` the session's incremental state (SRP
    /// signatures, key norms) is resident, so preprocessing covers only the
    /// appended tokens — the `O(k)` per-step hash work of
    /// `elsa_core::session::StreamingSession::append`. With `cached = false`
    /// (first turn, or evicted state) the whole `n`-token context is
    /// re-preprocessed from scratch. `decode_step_cycles(n, n, false)` is
    /// exactly [`invocation_cycles`](Self::invocation_cycles)`(n)`.
    #[must_use]
    pub fn decode_step_cycles(&self, n: usize, appended: usize, cached: bool) -> u64 {
        if n == 0 || appended == 0 {
            return 0;
        }
        let per_bank = vec![self.candidates_per_bank(n); self.config.p_a];
        let ii = closed_form_query_cycles(&self.config, n, &per_bank);
        let pre = self.config.preprocessing_cycles(if cached { appended } else { n });
        pre + appended as u64 * ii + self.config.division_cycles()
    }

    /// The offered load (requests/s of `n`-entity invocations) the whole
    /// pool can sustain: above this λ the queue grows without bound.
    ///
    /// # Panics
    ///
    /// Panics for `n = 0` (a zero-cost request has no saturation point).
    #[must_use]
    pub fn sustainable_lambda_per_s(&self, n: usize) -> f64 {
        let service = self.service_s(n);
        assert!(service > 0.0, "zero-cost request has no saturation point");
        self.config.num_accelerators as f64 / service
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper() -> AcceleratorConfig {
        AcceleratorConfig::paper()
    }

    #[test]
    fn estimate_is_monotone_in_length() {
        let est = ServiceEstimator::new(paper(), 0.25);
        let mut prev = 0.0;
        for n in [1usize, 8, 32, 64, 128, 256, 512] {
            let s = est.service_s(n);
            assert!(s > prev, "service({n}) = {s} not increasing");
            prev = s;
        }
    }

    #[test]
    fn denser_candidates_cost_no_less() {
        let sparse = ServiceEstimator::new(paper(), 0.05);
        let dense = ServiceEstimator::new(paper(), 0.9);
        for n in [64usize, 256, 512] {
            assert!(dense.service_s(n) >= sparse.service_s(n));
        }
    }

    #[test]
    fn sustainable_lambda_scales_with_pool_size() {
        let one = ServiceEstimator::new(
            AcceleratorConfig { num_accelerators: 1, ..paper() },
            0.25,
        );
        let twelve = ServiceEstimator::new(paper(), 0.25);
        let ratio = twelve.sustainable_lambda_per_s(256) / one.sustainable_lambda_per_s(256);
        assert!((ratio - 12.0).abs() < 1e-9);
    }

    #[test]
    fn uncached_full_decode_step_is_the_invocation_estimate() {
        let est = ServiceEstimator::new(paper(), 0.25);
        for n in [1usize, 64, 200, 512] {
            assert_eq!(est.decode_step_cycles(n, n, false), est.invocation_cycles(n));
        }
        assert_eq!(est.decode_step_cycles(0, 0, true), 0);
    }

    #[test]
    fn cached_decode_step_is_strictly_cheaper_for_long_contexts() {
        let est = ServiceEstimator::new(paper(), 0.25);
        for n in [2usize, 128, 200, 384, 512] {
            let hit = est.decode_step_cycles(n, 1, true);
            let miss = est.decode_step_cycles(n, 1, false);
            assert!(hit < miss, "n={n}: hit {hit} !< miss {miss}");
            // The saving is exactly the skipped key re-hashing.
            assert_eq!(
                miss - hit,
                est.config().preprocessing_cycles(n) - est.config().preprocessing_cycles(1)
            );
        }
    }

    #[test]
    fn fraction_is_clamped() {
        let est = ServiceEstimator::new(paper(), 7.0);
        // ρ clamps to 1: every key a candidate, n/P_a per bank.
        assert_eq!(est.candidates_per_bank(512), 128);
        let none = ServiceEstimator::new(paper(), -3.0);
        assert_eq!(none.candidates_per_bank(512), 0);
        assert_eq!(none.invocation_cycles(0), 0);
    }
}
