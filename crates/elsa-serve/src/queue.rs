//! The bounded, length-bucketed admission queue.
//!
//! Requests wait here between arrival and batch dispatch. The queue is a
//! set of per-bucket FIFOs (one per length bucket of the
//! [`BatchPolicy`](crate::batcher::BatchPolicy)) under a single shared
//! capacity bound; when the bound is hit, the configured [`Backpressure`]
//! policy decides who pays — the arriving request, the oldest waiter, or
//! nobody (the batcher is forced to dispatch early and make room).
//!
//! The queue itself is pure data structure: it never sheds or dispatches on
//! its own. The event loop in [`dispatch`](crate::dispatch) owns those
//! decisions, which keeps every policy choice in one audited place.

use std::collections::VecDeque;

/// What to do with a new arrival when the admission queue is full.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backpressure {
    /// Never shed: force the batcher to dispatch the bucket holding the
    /// oldest waiter immediately, freeing room for the arrival.
    Block,
    /// Shed the arriving request (tail drop).
    ShedNewest,
    /// Shed the oldest queued request to admit the arrival (head drop —
    /// the oldest waiter is the most likely to miss its deadline anyway).
    ShedOldest,
}

/// One request waiting in the admission queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueuedRequest {
    /// Trace id of the request (its arrival-order index).
    pub id: usize,
    /// Arrival instant on the virtual clock.
    pub arrival_ns: u64,
    /// Absolute completion deadline, if any.
    pub deadline_ns: Option<u64>,
    /// Real sequence length of the request.
    pub n_real: usize,
    /// Length bucket the request was routed to.
    pub bucket: usize,
}

/// Per-bucket FIFOs under one shared capacity bound.
#[derive(Debug, Clone)]
pub struct AdmissionQueue {
    capacity: Option<usize>,
    buckets: Vec<VecDeque<QueuedRequest>>,
    len: usize,
}

impl AdmissionQueue {
    /// An empty queue with `num_buckets` FIFOs and an optional shared
    /// capacity (`None` = unbounded).
    ///
    /// # Panics
    ///
    /// Panics on zero buckets or a zero capacity (a queue that can hold
    /// nothing cannot admit anything).
    #[must_use]
    pub fn new(num_buckets: usize, capacity: Option<usize>) -> Self {
        assert!(num_buckets > 0, "need at least one bucket");
        assert!(capacity != Some(0), "capacity 0 cannot admit any request");
        Self { capacity, buckets: vec![VecDeque::new(); num_buckets], len: 0 }
    }

    /// Total queued requests across all buckets.
    #[must_use]
    pub const fn len(&self) -> usize {
        self.len
    }

    /// Whether no request is queued.
    #[must_use]
    pub const fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the shared capacity bound is reached.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.capacity.is_some_and(|c| self.len >= c)
    }

    /// Queued requests in one bucket.
    #[must_use]
    pub fn bucket_len(&self, bucket: usize) -> usize {
        self.buckets[bucket].len()
    }

    /// Enqueues a request at the tail of its bucket.
    ///
    /// # Panics
    ///
    /// Panics if the queue is full — the event loop must apply its
    /// [`Backpressure`] policy *before* pushing.
    pub fn push(&mut self, request: QueuedRequest) {
        assert!(!self.is_full(), "push into a full queue: apply backpressure first");
        self.buckets[request.bucket].push_back(request);
        self.len += 1;
    }

    /// The oldest waiter in one bucket.
    #[must_use]
    pub fn oldest_in_bucket(&self, bucket: usize) -> Option<&QueuedRequest> {
        self.buckets[bucket].front()
    }

    /// The bucket holding the globally oldest request (ties broken by the
    /// lower request id, which is unique).
    #[must_use]
    pub fn oldest_bucket(&self) -> Option<usize> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(b, q)| q.front().map(|r| (r.arrival_ns, r.id, b)))
            .min()
            .map(|(_, _, b)| b)
    }

    /// Removes and returns the globally oldest request.
    pub fn pop_oldest(&mut self) -> Option<QueuedRequest> {
        let bucket = self.oldest_bucket()?;
        let request = self.buckets[bucket].pop_front();
        if request.is_some() {
            self.len -= 1;
        }
        request
    }

    /// Removes up to `max` requests from the front of a bucket (the batch).
    pub fn drain_bucket(&mut self, bucket: usize, max: usize) -> Vec<QueuedRequest> {
        let take = self.buckets[bucket].len().min(max);
        self.len -= take;
        self.buckets[bucket].drain(..take).collect()
    }

    /// The earliest batching expiry across buckets: `(arrival of the
    /// bucket's oldest waiter + max_wait_ns, bucket)`, minimized over
    /// non-empty buckets (ties to the lower bucket index). `None` when the
    /// queue is empty.
    #[must_use]
    pub fn earliest_expiry(&self, max_wait_ns: u64) -> Option<(u64, usize)> {
        self.buckets
            .iter()
            .enumerate()
            .filter_map(|(b, q)| {
                q.front().map(|r| (r.arrival_ns.saturating_add(max_wait_ns), b))
            })
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(id: usize, arrival_ns: u64, bucket: usize) -> QueuedRequest {
        QueuedRequest { id, arrival_ns, deadline_ns: None, n_real: 8, bucket }
    }

    #[test]
    fn fifo_within_a_bucket() {
        let mut q = AdmissionQueue::new(2, None);
        q.push(req(0, 10, 0));
        q.push(req(1, 20, 0));
        q.push(req(2, 30, 1));
        assert_eq!(q.len(), 3);
        let batch = q.drain_bucket(0, 8);
        assert_eq!(batch.iter().map(|r| r.id).collect::<Vec<_>>(), vec![0, 1]);
        assert_eq!(q.len(), 1);
    }

    #[test]
    fn capacity_is_shared_across_buckets() {
        let mut q = AdmissionQueue::new(3, Some(2));
        q.push(req(0, 0, 0));
        assert!(!q.is_full());
        q.push(req(1, 0, 2));
        assert!(q.is_full());
    }

    #[test]
    #[should_panic(expected = "apply backpressure")]
    fn push_into_full_queue_panics() {
        let mut q = AdmissionQueue::new(1, Some(1));
        q.push(req(0, 0, 0));
        q.push(req(1, 1, 0));
    }

    #[test]
    fn oldest_is_global_across_buckets() {
        let mut q = AdmissionQueue::new(2, None);
        q.push(req(0, 50, 1));
        q.push(req(1, 10, 0));
        assert_eq!(q.oldest_bucket(), Some(0));
        assert_eq!(q.pop_oldest().map(|r| r.id), Some(1));
        assert_eq!(q.pop_oldest().map(|r| r.id), Some(0));
        assert_eq!(q.pop_oldest(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn oldest_ties_break_by_id() {
        let mut q = AdmissionQueue::new(2, None);
        q.push(req(7, 10, 1));
        q.push(req(3, 10, 0));
        // Same arrival instant: the lower id (earlier in trace order) wins,
        // regardless of bucket index.
        assert_eq!(q.pop_oldest().map(|r| r.id), Some(3));
    }

    #[test]
    fn earliest_expiry_tracks_bucket_heads() {
        let mut q = AdmissionQueue::new(2, None);
        assert_eq!(q.earliest_expiry(100), None);
        q.push(req(0, 50, 1));
        q.push(req(1, 30, 0));
        assert_eq!(q.earliest_expiry(100), Some((130, 0)));
        let _ = q.drain_bucket(0, 1);
        assert_eq!(q.earliest_expiry(100), Some((150, 1)));
    }
}
