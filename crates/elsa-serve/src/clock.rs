//! The deterministic virtual clock.
//!
//! Online serving is about *time*: arrival instants, queue waits, batching
//! deadlines, SLO budgets. The hermetic/offline policy of this workspace
//! (see `crates/elsa-testkit`) forbids wall-clock reads in simulation code —
//! a run must replay bit-for-bit on any host at any `ELSA_THREADS` — so the
//! serving pipeline runs on a **virtual clock**: integer nanoseconds,
//! advanced only by the event loop, never by `std::time`.
//!
//! Two time domains meet in the dispatcher:
//!
//! * **queueing time** lives in integer nanoseconds ([`VirtualClock`]),
//!   where ordering and arithmetic are exact;
//! * **accelerator busy time** lives in `f64` seconds, because that is what
//!   [`elsa_sim::CycleReport::seconds`] produces and what
//!   `InferenceServer::serve` accumulates — keeping the same representation
//!   makes the unbatched online pipeline *bit-identical* to the offline
//!   server (enforced by `tests/online_serving.rs`).
//!
//! [`secs_to_ns`] / [`ns_to_secs`] are the only sanctioned bridges.

/// Nanoseconds per second.
pub const NANOS_PER_SEC: u64 = 1_000_000_000;

/// Converts seconds to integer nanoseconds (round-to-nearest, saturating at
/// zero for negative inputs and at `u64::MAX` for absurdly large ones).
///
/// # Panics
///
/// Panics if `s` is NaN — a NaN duration is always a bug upstream.
#[must_use]
pub fn secs_to_ns(s: f64) -> u64 {
    assert!(!s.is_nan(), "NaN duration");
    let ns = (s * NANOS_PER_SEC as f64).round();
    if ns <= 0.0 {
        0
    } else if ns >= u64::MAX as f64 {
        u64::MAX
    } else {
        ns as u64
    }
}

/// Converts integer nanoseconds to seconds.
#[must_use]
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 / NANOS_PER_SEC as f64
}

/// A monotone virtual clock in integer nanoseconds.
///
/// The serving event loop is the only writer; it advances the clock to each
/// event's timestamp and asserts monotonicity, so any ordering bug in the
/// simulation surfaces as a panic instead of silently reordered history.
///
/// # Examples
///
/// ```
/// use elsa_serve::clock::VirtualClock;
///
/// let mut clock = VirtualClock::new();
/// clock.advance_to(1_500);
/// assert_eq!(clock.now_ns(), 1_500);
/// clock.advance_to(1_500); // same instant is fine
/// assert!(clock.now_s() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VirtualClock {
    now_ns: u64,
}

impl VirtualClock {
    /// A clock at t = 0.
    #[must_use]
    pub const fn new() -> Self {
        Self { now_ns: 0 }
    }

    /// Current virtual time in nanoseconds.
    #[must_use]
    pub const fn now_ns(&self) -> u64 {
        self.now_ns
    }

    /// Current virtual time in seconds.
    #[must_use]
    pub fn now_s(&self) -> f64 {
        ns_to_secs(self.now_ns)
    }

    /// Advances the clock to `t_ns`.
    ///
    /// # Panics
    ///
    /// Panics if `t_ns` is in the past — the event loop must process events
    /// in timestamp order.
    pub fn advance_to(&mut self, t_ns: u64) {
        assert!(
            t_ns >= self.now_ns,
            "virtual clock moved backwards: {} -> {t_ns}",
            self.now_ns
        );
        self.now_ns = t_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip_on_whole_nanoseconds() {
        for ns in [0u64, 1, 999, 1_000_000_000, 123_456_789_012] {
            assert_eq!(secs_to_ns(ns_to_secs(ns)), ns);
        }
    }

    #[test]
    fn secs_to_ns_saturates() {
        assert_eq!(secs_to_ns(-1.0), 0);
        assert_eq!(secs_to_ns(0.0), 0);
        assert_eq!(secs_to_ns(1e30), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "NaN duration")]
    fn secs_to_ns_rejects_nan() {
        let _ = secs_to_ns(f64::NAN);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = VirtualClock::new();
        c.advance_to(10);
        c.advance_to(10);
        c.advance_to(11);
        assert_eq!(c.now_ns(), 11);
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn clock_rejects_backward_jumps() {
        let mut c = VirtualClock::new();
        c.advance_to(10);
        c.advance_to(9);
    }
}
