//! The serving event loop: admission → batching → SLO-aware dispatch.
//!
//! [`OnlineServer::serve`] replays an [`ArrivalTrace`] through the full
//! online pipeline on the virtual clock:
//!
//! 1. **Precompute** (the only parallel stage): every request's approximate
//!    pipeline runs once — service seconds, numeric-guard verdict, inputs —
//!    fanned out over worker threads in arrival order exactly like the
//!    offline servers, so the report is bit-identical at any
//!    `ELSA_THREADS`.
//! 2. **Admission**: arrivals enter the bounded
//!    [`AdmissionQueue`]; a full queue triggers the configured
//!    [`Backpressure`] policy.
//! 3. **Batching**: a length bucket dispatches when it holds
//!    `max_batch` requests or its oldest waiter has queued `max_wait_ns`.
//! 4. **Dispatch**: each batch member routes to the accelerator unit that
//!    frees first, through the same failover loop as
//!    `elsa_runtime::FaultTolerantServer` — transient retries, straggler
//!    slowdowns, quarantine with probation, corruption degrading to exact
//!    attention — plus two online-only outcomes: a request whose deadline
//!    passed while it queued is **timed out**, and (optionally) a request
//!    whose estimated completion would overshoot its deadline is **shed**
//!    before it wastes accelerator time.
//!
//! Every arrival produces exactly one [`OnlineRecord`], so
//! `offered = served + shed + timed-out + failed` holds by construction
//! (and is asserted).
//!
//! [`OnlineServer::serve_sessions`] replays a multi-turn [`SessionTrace`]
//! through the *same* engine with two additions: **session affinity** (every
//! turn of a session dispatches through the bucket pinned at the session's
//! first admission, so one conversation never straddles batching queues)
//! and the **decode cache** (a [`SessionRegistry`] deciding per turn whether
//! the incremental `StreamingSession` state is resident — a hit pays only
//! the appended tokens' preprocessing cycles, a miss pays the full
//! from-scratch rebuild). The cache changes *charged service time only*;
//! functional outputs are byte-identical either way, which is what keeps
//! the degenerate single-turn/unbounded configuration bit-identical to
//! [`OnlineServer::serve`].

use std::collections::BTreeMap;

use elsa_attention::exact::AttentionInputs;
use elsa_core::ElsaAttention;
use elsa_fault::{FaultPlan, HealthTracker, SATURATION_LIMIT};
use elsa_linalg::{ops, Matrix};
use elsa_runtime::{InferenceServer, RequestRecord, RuntimeError, ServingReport};
use elsa_sim::{AcceleratorConfig, ElsaAccelerator, FitError, RunReport};
use elsa_workloads::sessions::turn_inputs;

use crate::arrival::ArrivalTrace;
use crate::batcher::{BatchPolicy, BatcherMode, BucketStats};
use crate::clock::{ns_to_secs, VirtualClock};
use crate::queue::{AdmissionQueue, Backpressure, QueuedRequest};
use crate::session::{CacheConfig, CacheStats, SessionRegistry, SessionTrace, SessionTurnRequest};

/// Full configuration of the online pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeConfig {
    /// Admission-queue capacity shared across buckets (`None` = unbounded).
    pub queue_capacity: Option<usize>,
    /// What happens to arrivals when the queue is full.
    pub backpressure: Backpressure,
    /// Batch-formation policy.
    pub batch: BatchPolicy,
    /// How batches are charged: real lengths (ELSA) or padded (GPU
    /// emulation).
    pub mode: BatcherMode,
    /// Shed a request at dispatch when its estimated completion (earliest
    /// unit availability + its measured service time) overshoots its
    /// deadline, instead of burning accelerator time on a guaranteed miss.
    pub shed_unmeetable: bool,
    /// Failed attempts per request before the dispatcher gives up.
    pub max_retries: u32,
    /// Consecutive faults on one unit before it is quarantined.
    pub quarantine_after: u32,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            queue_capacity: None,
            backpressure: Backpressure::Block,
            batch: BatchPolicy::single_bucket(8, 100_000),
            mode: BatcherMode::Bucketed,
            shed_unmeetable: false,
            max_retries: 16,
            quarantine_after: 3,
        }
    }
}

impl ServeConfig {
    /// No queueing, no batching, no shedding: dispatch every request alone
    /// the moment it arrives. On a simultaneous trace this reduces the
    /// pipeline to the offline [`InferenceServer`] bit-for-bit.
    #[must_use]
    pub fn immediate() -> Self {
        Self { batch: BatchPolicy::immediate(), ..Self::default() }
    }
}

/// How one request left the pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Completed on an accelerator (possibly degraded to exact attention).
    Served {
        /// The numeric guard tripped and the request fell back to the
        /// accelerator's exact base mode.
        degraded: bool,
    },
    /// Dropped by [`Backpressure`] on a full admission queue.
    ShedQueueFull,
    /// Dropped at dispatch: its deadline was provably unmeetable.
    ShedUnmeetable,
    /// Its deadline expired while it waited in the queue.
    TimedOut,
    /// The dispatcher gave up (retry budget exhausted or pool dead).
    Failed,
}

/// Accounting for one request of an online trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OnlineRecord {
    /// Trace id (arrival-order index).
    pub id: usize,
    /// Real sequence length.
    pub n_real: usize,
    /// Length bucket the request was routed to.
    pub bucket: usize,
    /// Arrival instant.
    pub arrival_ns: u64,
    /// Absolute deadline, if the request carried an SLO.
    pub deadline_ns: Option<u64>,
    /// Virtual instant at which the outcome was decided (batch dispatch or
    /// shed).
    pub decided_ns: u64,
    /// Arrival to accelerator start (served) or to the shed/timeout
    /// decision (everything else), in seconds.
    pub queue_delay_s: f64,
    /// Accelerator busy seconds actually charged (0 when not served).
    pub service_s: f64,
    /// Seconds from the virtual origin to completion (served) or to the
    /// give-up/shed instant.
    pub completion_s: f64,
    /// Failed attempts before the final outcome.
    pub retries: u32,
    /// How the request left the pipeline.
    pub outcome: Outcome,
}

impl OnlineRecord {
    /// Whether the request was served within its deadline. Deadline-free
    /// served requests count as met; everything unserved as missed.
    #[must_use]
    pub fn slo_met(&self) -> bool {
        matches!(self.outcome, Outcome::Served { .. })
            && self.deadline_ns.is_none_or(|d| self.completion_s <= ns_to_secs(d))
    }
}

/// The full outcome of one online trace.
///
/// Extends the offline [`ServingReport`] vocabulary with queue-delay
/// percentiles, SLO attainment, shed/timeout accounting, and per-bucket
/// batch occupancy. `PartialEq` compares every `f64` exactly, which is what
/// the cross-thread determinism test relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Per-request records, in arrival (id) order.
    pub records: Vec<OnlineRecord>,
    /// Dispatch accounting per length bucket.
    pub bucket_stats: Vec<BucketStats>,
}

impl ServeReport {
    fn served(&self) -> impl Iterator<Item = &OnlineRecord> {
        self.records.iter().filter(|r| matches!(r.outcome, Outcome::Served { .. }))
    }

    /// Requests offered to the pipeline.
    #[must_use]
    pub fn offered_count(&self) -> usize {
        self.records.len()
    }

    /// Requests served (including degraded).
    #[must_use]
    pub fn served_count(&self) -> usize {
        self.served().count()
    }

    /// Served requests that degraded to exact attention.
    #[must_use]
    pub fn degraded_count(&self) -> usize {
        self.records
            .iter()
            .filter(|r| matches!(r.outcome, Outcome::Served { degraded: true }))
            .count()
    }

    /// Requests dropped by queue backpressure.
    #[must_use]
    pub fn shed_queue_full_count(&self) -> usize {
        self.records.iter().filter(|r| r.outcome == Outcome::ShedQueueFull).count()
    }

    /// Requests shed at dispatch as unmeetable.
    #[must_use]
    pub fn shed_unmeetable_count(&self) -> usize {
        self.records.iter().filter(|r| r.outcome == Outcome::ShedUnmeetable).count()
    }

    /// All load-shedding drops (queue-full + unmeetable).
    #[must_use]
    pub fn shed_count(&self) -> usize {
        self.shed_queue_full_count() + self.shed_unmeetable_count()
    }

    /// Requests whose deadline expired in the queue.
    #[must_use]
    pub fn timed_out_count(&self) -> usize {
        self.records.iter().filter(|r| r.outcome == Outcome::TimedOut).count()
    }

    /// Requests the dispatcher gave up on.
    #[must_use]
    pub fn failed_count(&self) -> usize {
        self.records.iter().filter(|r| r.outcome == Outcome::Failed).count()
    }

    /// Total failed attempts across all requests.
    #[must_use]
    pub fn total_retries(&self) -> u64 {
        self.records.iter().map(|r| u64::from(r.retries)).sum()
    }

    /// Queue-delay percentile over the served requests (`q` clamped to
    /// `[0, 100]`); `0.0` when nothing was served.
    #[must_use]
    pub fn queue_delay_percentile_s(&self, q: f64) -> f64 {
        let delays: Vec<f64> = self.served().map(|r| r.queue_delay_s).collect();
        if delays.is_empty() {
            0.0
        } else {
            ops::percentile(&delays, q.clamp(0.0, 100.0))
        }
    }

    /// Mean queue delay over the served requests; `0.0` when nothing was
    /// served.
    #[must_use]
    pub fn mean_queue_delay_s(&self) -> f64 {
        let (sum, count) =
            self.served().fold((0.0f64, 0usize), |(s, c), r| (s + r.queue_delay_s, c + 1));
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    }

    /// Fraction of deadline-carrying requests served within their deadline;
    /// `1.0` when no request carried a deadline (nothing to miss).
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        let (met, total) = self
            .records
            .iter()
            .filter(|r| r.deadline_ns.is_some())
            .fold((0usize, 0usize), |(m, t), r| (m + usize::from(r.slo_met()), t + 1));
        if total == 0 {
            1.0
        } else {
            met as f64 / total as f64
        }
    }

    /// Served requests divided by the last served completion; `0.0` when
    /// nothing was served.
    #[must_use]
    pub fn throughput_per_s(&self) -> f64 {
        let makespan = self.served().map(|r| r.completion_s).fold(0.0f64, f64::max);
        if makespan == 0.0 {
            0.0
        } else {
            self.served_count() as f64 / makespan
        }
    }

    /// Projects the online records onto the offline [`ServingReport`]
    /// vocabulary: served requests keep their service/completion times,
    /// everything else becomes a failed record. On a simultaneous trace
    /// under [`ServeConfig::immediate`], this is bit-identical to
    /// [`InferenceServer::serve`] on the materialized requests.
    #[must_use]
    pub fn to_serving_report(&self) -> ServingReport {
        let records = self
            .records
            .iter()
            .map(|r| match r.outcome {
                Outcome::Served { degraded } => RequestRecord {
                    n_real: r.n_real,
                    service_s: r.service_s,
                    completion_s: r.completion_s,
                    degraded,
                    retries: r.retries,
                    failed: false,
                },
                _ => RequestRecord {
                    n_real: r.n_real,
                    service_s: 0.0,
                    completion_s: r.completion_s,
                    degraded: false,
                    retries: r.retries,
                    failed: true,
                },
            })
            .collect();
        ServingReport { records }
    }
}

/// The numeric guard (same predicate as the fault-tolerant offline server):
/// a result is untrustworthy when a non-empty query set selected nothing or
/// any output value is non-finite or saturated.
fn guard_trips(report: &RunReport) -> bool {
    (report.stats.num_queries > 0 && report.stats.selected_pairs == 0)
        || report.output.as_slice().iter().any(|v| !(v.abs() < SATURATION_LIMIT))
}

/// One request's thread-independent precompute.
struct Prepared {
    inputs: AttentionInputs,
    service_s: f64,
    /// Service seconds when the session cache holds the expected prefix:
    /// the run's cycles with the full-context preprocessing replaced by
    /// preprocessing of only the appended tokens. Equal to `service_s`
    /// outside session serving.
    hit_service_s: f64,
    trips: bool,
}

/// Session bookkeeping threaded through one engine run.
struct SessionState<'a> {
    registry: SessionRegistry,
    /// The trace's turns, indexed by request id.
    meta: &'a [SessionTurnRequest],
    hits: u64,
    cold: u64,
    stale: u64,
    rebuilt_tokens: u64,
}

impl SessionState<'_> {
    /// Whether the turn's session holds exactly the prefix the turn expects
    /// (read-only; the registry is committed only when the turn is served).
    fn is_hit(&self, m: &SessionTurnRequest) -> bool {
        let expected = m.prefix_len - m.appended;
        expected > 0 && self.registry.cached_len(m.session) == Some(expected)
    }
}

/// The outcome of one session-serving run: the ordinary serving report plus
/// the cache's behavior.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionReport {
    /// Per-turn records and bucket accounting, exactly as
    /// [`OnlineServer::serve`] reports them.
    pub serve: ServeReport,
    /// Hit/miss/eviction accounting of the decode cache.
    pub cache: CacheStats,
}

/// The online serving front-end: one operator, one accelerator pool, one
/// fault plan, one serving configuration.
#[derive(Debug)]
pub struct OnlineServer {
    accel_config: AcceleratorConfig,
    operator: ElsaAttention,
    plan: FaultPlan,
    config: ServeConfig,
}

impl OnlineServer {
    /// Builds the server.
    ///
    /// # Panics
    ///
    /// Panics if the operator does not fit the hardware or the batch policy
    /// is malformed; see [`OnlineServer::try_new`] for the non-panicking
    /// form.
    #[must_use]
    pub fn new(
        accel_config: AcceleratorConfig,
        operator: ElsaAttention,
        plan: FaultPlan,
        config: ServeConfig,
    ) -> Self {
        match Self::try_new(accel_config, operator, plan, config) {
            Ok(server) => server,
            // elsa-lint: allow(panic-policy) reason="documented # Panics wrapper; try_new is the serving-path form"
            Err(e) => panic!("{e}"),
        }
    }

    /// Builds the server, reporting an operator/hardware misfit as a typed
    /// error.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Misfit`] when the hardware configuration is
    /// invalid or the operator's dimensions do not match it.
    ///
    /// # Panics
    ///
    /// Panics if the batch policy is malformed (zero batch size,
    /// non-ascending bucket bounds) — that is a construction bug, not an
    /// input.
    pub fn try_new(
        accel_config: AcceleratorConfig,
        operator: ElsaAttention,
        plan: FaultPlan,
        config: ServeConfig,
    ) -> Result<Self, RuntimeError> {
        config.batch.validate();
        let _ = InferenceServer::try_new(accel_config, operator.clone())?;
        Ok(Self { accel_config, operator, plan, config })
    }

    /// The serving configuration.
    #[must_use]
    pub const fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// The governing fault plan.
    #[must_use]
    pub const fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Replays an arrival trace through the pipeline.
    ///
    /// # Errors
    ///
    /// Returns [`RuntimeError::Request`] when a request does not fit the
    /// hardware (the trace is rejected before any virtual time passes), or
    /// [`RuntimeError::NoHealthyUnits`] when the fault plan killed every
    /// unit.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival or its ids are not the
    /// arrival-order indices (both are guaranteed by every
    /// [`ArrivalTrace`] constructor).
    pub fn serve(&self, trace: &ArrivalTrace) -> Result<ServeReport, RuntimeError> {
        assert!(
            trace.requests.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns),
            "arrival trace must be sorted by arrival time"
        );
        assert!(
            trace.requests.iter().enumerate().all(|(i, r)| r.id == i),
            "arrival trace ids must be arrival-order indices"
        );
        let accel = ElsaAccelerator::try_new(self.accel_config, self.operator.clone())?;
        let health = self.healthy_pool()?;

        // Thread-independent precompute, fanned out in arrival order: the
        // serial event loop below never touches the simulator except for
        // padded-timing and degraded-fallback runs, which are themselves
        // deterministic functions of the precomputed state.
        let run_one = |i: usize| -> Result<Prepared, FitError> {
            let inputs = trace.requests[i].entry.materialize();
            let run = accel.try_run(&inputs)?;
            let service_s = run.cycles.seconds(&self.accel_config);
            Ok(Prepared {
                service_s,
                hit_service_s: service_s,
                trips: guard_trips(&run),
                inputs,
            })
        };
        let work: usize = trace
            .requests
            .iter()
            .map(|r| {
                let n = r.entry.pattern.n_real;
                n.saturating_mul(n).saturating_mul(r.entry.pattern.d)
            })
            .sum();
        let prepared = Self::collect_prepared(
            if elsa_parallel::beneficial(work) && trace.len() > 1 {
                elsa_parallel::par_map_indexed(trace.len(), run_one)
            } else {
                (0..trace.len()).map(run_one).collect()
            },
        )?;

        let admissions: Vec<QueuedRequest> = trace
            .requests
            .iter()
            .map(|request| {
                let n_real = prepared[request.id].inputs.num_keys();
                QueuedRequest {
                    id: request.id,
                    arrival_ns: request.arrival_ns,
                    deadline_ns: request.deadline_ns,
                    n_real,
                    bucket: self.config.batch.bucket_of(n_real),
                }
            })
            .collect();
        let (records, bucket_stats, _) = self.run_engine(&accel, health, &prepared, &admissions, None);
        Ok(ServeReport { records, bucket_stats })
    }

    /// Replays a multi-turn session trace through the pipeline with session
    /// affinity and the decode cache model (see the module docs). The cache
    /// affects charged service times only — each turn's functional output is
    /// computed from its full inputs regardless — so the accounting
    /// invariant `offered = served + shed + timed-out + failed` and the
    /// bit-identical-at-any-`ELSA_THREADS` contract carry over unchanged.
    ///
    /// A turn is a **hit** when its session was last served with exactly
    /// `prefix_len - appended` tokens of context and its state is still
    /// resident: it is charged the run's cycles with full-context
    /// preprocessing replaced by preprocessing of only the appended tokens.
    /// Anything else (first turns, evicted sessions, sessions desynchronized
    /// by a dropped turn) pays the full from-scratch cost. The registry
    /// commits only when a turn is actually served.
    ///
    /// # Errors
    ///
    /// Same as [`OnlineServer::serve`].
    ///
    /// # Panics
    ///
    /// Panics if the trace is not sorted by arrival or its ids are not the
    /// arrival-order indices (both are guaranteed by every [`SessionTrace`]
    /// constructor).
    pub fn serve_sessions(
        &self,
        trace: &SessionTrace,
        cache: CacheConfig,
    ) -> Result<SessionReport, RuntimeError> {
        assert!(
            trace.requests.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns),
            "session trace must be sorted by arrival time"
        );
        assert!(
            trace.requests.iter().enumerate().all(|(i, r)| r.id == i),
            "session trace ids must be arrival-order indices"
        );
        let accel = ElsaAccelerator::try_new(self.accel_config, self.operator.clone())?;
        let health = self.healthy_pool()?;

        let run_one = |i: usize| -> Result<Prepared, FitError> {
            let request = &trace.requests[i];
            let full = request.entry.materialize();
            let inputs = turn_inputs(&full, request.prefix_len, request.appended);
            let run = accel.try_run(&inputs)?;
            let hit_cycles = run.cycles.total() - run.cycles.preprocessing
                + self.accel_config.preprocessing_cycles(request.appended);
            Ok(Prepared {
                service_s: run.cycles.seconds(&self.accel_config),
                hit_service_s: hit_cycles as f64 * self.accel_config.cycle_time_s(),
                trips: guard_trips(&run),
                inputs,
            })
        };
        let work: usize = trace
            .requests
            .iter()
            .map(|r| {
                let n = r.entry.pattern.n_real;
                n.saturating_mul(n).saturating_mul(r.entry.pattern.d)
            })
            .sum();
        let prepared = Self::collect_prepared(
            if elsa_parallel::beneficial(work) && trace.len() > 1 {
                elsa_parallel::par_map_indexed(trace.len(), run_one)
            } else {
                (0..trace.len()).map(run_one).collect()
            },
        )?;

        // Session affinity: the bucket is pinned when a session is first
        // admitted (by its prefill length) and every later turn follows it,
        // even after the context outgrows the bucket's bound. The pin map is
        // deliberately separate from the eviction registry — losing cached
        // state must not reshuffle a conversation across queues.
        let mut affinity: BTreeMap<u64, usize> = BTreeMap::new();
        let admissions: Vec<QueuedRequest> = trace
            .requests
            .iter()
            .map(|request| {
                let bucket = *affinity
                    .entry(request.session)
                    .or_insert_with(|| self.config.batch.bucket_of(request.prefix_len));
                QueuedRequest {
                    id: request.id,
                    arrival_ns: request.arrival_ns,
                    deadline_ns: request.deadline_ns,
                    n_real: request.prefix_len,
                    bucket,
                }
            })
            .collect();
        let hasher = self.operator.params().hasher();
        let state = SessionState {
            registry: SessionRegistry::new(cache, hasher.dim(), hasher.k()),
            meta: &trace.requests,
            hits: 0,
            cold: 0,
            stale: 0,
            rebuilt_tokens: 0,
        };
        let (records, bucket_stats, cache_stats) =
            self.run_engine(&accel, health, &prepared, &admissions, Some(state));
        Ok(SessionReport {
            serve: ServeReport { records, bucket_stats },
            cache: cache_stats.unwrap_or_default(),
        })
    }

    /// Marks plan-dead units and rejects an all-dead pool.
    fn healthy_pool(&self) -> Result<HealthTracker, RuntimeError> {
        let units = self.accel_config.num_accelerators;
        let mut health = HealthTracker::new(units, self.config.quarantine_after);
        for unit in 0..units {
            if self.plan.unit_dead(unit) {
                health.mark_dead(unit);
            }
        }
        if health.num_available() == 0 {
            return Err(RuntimeError::NoHealthyUnits);
        }
        Ok(health)
    }

    /// Surfaces the first misfit of a precompute fan-out as a typed error.
    fn collect_prepared(
        runs: Vec<Result<Prepared, FitError>>,
    ) -> Result<Vec<Prepared>, RuntimeError> {
        let mut prepared = Vec::with_capacity(runs.len());
        for (index, run) in runs.into_iter().enumerate() {
            prepared.push(run.map_err(|source| RuntimeError::Request { index, source })?);
        }
        Ok(prepared)
    }

    /// The serial virtual-clock event loop shared by [`serve`](Self::serve)
    /// and [`serve_sessions`](Self::serve_sessions): admissions must be in
    /// arrival order with one entry per prepared request.
    fn run_engine(
        &self,
        accel: &ElsaAccelerator,
        health: HealthTracker,
        prepared: &[Prepared],
        admissions: &[QueuedRequest],
        sessions: Option<SessionState<'_>>,
    ) -> (Vec<OnlineRecord>, Vec<BucketStats>, Option<CacheStats>) {
        let units = self.accel_config.num_accelerators;
        let mut engine = Engine {
            accel,
            accel_config: &self.accel_config,
            plan: &self.plan,
            cfg: &self.config,
            prepared,
            clock: VirtualClock::new(),
            queue: AdmissionQueue::new(self.config.batch.num_buckets(), self.config.queue_capacity),
            free_at: vec![0.0f64; units],
            health,
            slots: (0..prepared.len()).map(|_| None).collect(),
            stats: self
                .config
                .batch
                .length_buckets
                .iter()
                .map(|&bound| BucketStats { bound, ..BucketStats::default() })
                .collect(),
            sessions,
        };
        for request in admissions {
            engine.flush_expired(request.arrival_ns);
            engine.clock.advance_to(request.arrival_ns);
            engine.admit(*request);
        }
        engine.flush_expired(u64::MAX);

        let cache_stats = engine.sessions.map(|s| CacheStats {
            hits: s.hits,
            cold: s.cold,
            stale: s.stale,
            rebuilt_tokens: s.rebuilt_tokens,
            evictions: s.registry.evictions(),
            peak_bytes: s.registry.peak_bytes(),
        });
        let records: Vec<OnlineRecord> = engine
            .slots
            .into_iter()
            .enumerate()
            // elsa-lint: allow(panic-policy) reason="exact-accounting invariant: every request is finished exactly once; a hole here is a bug the ServeReport must not paper over"
            .map(|(i, slot)| slot.unwrap_or_else(|| panic!("request {i} left unaccounted")))
            .collect();
        (records, engine.stats, cache_stats)
    }
}

/// Mutable state of one serving run.
struct Engine<'a> {
    accel: &'a ElsaAccelerator,
    accel_config: &'a AcceleratorConfig,
    plan: &'a FaultPlan,
    cfg: &'a ServeConfig,
    prepared: &'a [Prepared],
    clock: VirtualClock,
    queue: AdmissionQueue,
    free_at: Vec<f64>,
    health: HealthTracker,
    slots: Vec<Option<OnlineRecord>>,
    stats: Vec<BucketStats>,
    sessions: Option<SessionState<'a>>,
}

impl Engine<'_> {
    /// Dispatches every bucket whose batching window expires at or before
    /// `horizon_ns`, in expiry order, advancing the clock to each expiry.
    fn flush_expired(&mut self, horizon_ns: u64) {
        while let Some((expiry, bucket)) =
            self.queue.earliest_expiry(self.cfg.batch.max_wait_ns)
        {
            if expiry > horizon_ns {
                break;
            }
            self.clock.advance_to(expiry.max(self.clock.now_ns()));
            self.dispatch_bucket(bucket);
        }
    }

    /// Admits one arrival at the current instant, applying backpressure if
    /// the queue is full and dispatching its bucket if that fills it.
    fn admit(&mut self, request: QueuedRequest) {
        if self.queue.is_full() {
            match self.cfg.backpressure {
                Backpressure::ShedNewest => {
                    let now_s = self.clock.now_s();
                    self.finish(request, 0.0, 0.0, now_s, 0, Outcome::ShedQueueFull);
                    return;
                }
                Backpressure::ShedOldest => {
                    // elsa-lint: allow(panic-policy) reason="is_full() implies the queue is nonempty, so an oldest victim always exists"
                    let victim = self.queue.pop_oldest().expect("full queue is nonempty");
                    let now_s = self.clock.now_s();
                    let delay = now_s - ns_to_secs(victim.arrival_ns);
                    self.finish(victim, delay, 0.0, now_s, 0, Outcome::ShedQueueFull);
                }
                Backpressure::Block => {
                    // elsa-lint: allow(panic-policy) reason="is_full() implies the queue is nonempty, so an oldest bucket always exists"
                    let bucket = self.queue.oldest_bucket().expect("full queue is nonempty");
                    self.dispatch_bucket(bucket);
                }
            }
        }
        self.queue.push(request);
        if self.queue.bucket_len(request.bucket) >= self.cfg.batch.max_batch {
            self.dispatch_bucket(request.bucket);
        }
    }

    /// Forms a batch from one bucket at the current instant and dispatches
    /// its members in FIFO order.
    fn dispatch_bucket(&mut self, bucket: usize) {
        let batch = self.queue.drain_bucket(bucket, self.cfg.batch.max_batch);
        if batch.is_empty() {
            return;
        }
        self.stats[bucket].batches += 1;
        self.stats[bucket].requests += batch.len() as u64;
        // Padding is a formation-time decision: the batch maximum is fixed
        // over everything drained, before deadline checks, exactly as a
        // pad-to-max kernel launch would be shaped.
        let padded_n = match self.cfg.mode {
            BatcherMode::Bucketed => 0,
            BatcherMode::Padded => batch.iter().map(|r| r.n_real).max().unwrap_or(0),
        };
        for request in batch {
            self.stats[bucket].real_rows += request.n_real as u64;
            let charged = match self.cfg.mode {
                BatcherMode::Bucketed => self.bucketed_service_s(request.id),
                BatcherMode::Padded => {
                    self.stats[bucket].padded_rows += (padded_n - request.n_real) as u64;
                    self.padded_service_s(request.id, padded_n)
                }
            };
            self.dispatch_one(request, charged);
        }
    }

    /// The bucketed (real-length) service seconds of one request: the
    /// cache-discounted hit cost when session serving holds the expected
    /// prefix, the full precomputed cost otherwise. Read-only — the
    /// registry commits in [`commit_session`](Self::commit_session), which
    /// runs before the next request of the batch is charged, so the
    /// classification made here is the one committed.
    fn bucketed_service_s(&self, id: usize) -> f64 {
        match &self.sessions {
            Some(s) if s.is_hit(&s.meta[id]) => self.prepared[id].hit_service_s,
            _ => self.prepared[id].service_s,
        }
    }

    /// Session bookkeeping for one *served* turn: classify hit/cold/stale
    /// against the registry, then commit the session's new context length
    /// (or release it on its final turn). Dropped turns never reach this,
    /// so a shed/timed-out/failed turn leaves the cached state behind —
    /// the session's next turn then misses and rebuilds from scratch.
    fn commit_session(&mut self, id: usize) {
        let Some(s) = &mut self.sessions else { return };
        let m = &s.meta[id];
        let expected = m.prefix_len - m.appended;
        if expected == 0 {
            s.cold += 1;
        } else if s.registry.cached_len(m.session) == Some(expected) {
            s.hits += 1;
        } else {
            s.stale += 1;
            s.rebuilt_tokens += expected as u64;
        }
        if m.last_turn {
            s.registry.remove(m.session);
        } else {
            s.registry.commit(m.session, m.prefix_len);
        }
    }

    /// The service seconds of one request padded (with zero rows) to
    /// `padded_n` entities — the GPU-emulation cost. Falls back to the
    /// precomputed time when no padding is needed.
    fn padded_service_s(&self, id: usize, padded_n: usize) -> f64 {
        let p = &self.prepared[id];
        if padded_n <= p.inputs.num_keys() {
            return p.service_s;
        }
        let pad = |m: &Matrix| m.vstack(&Matrix::zeros(padded_n - m.rows(), m.cols()));
        let padded = AttentionInputs::new(
            pad(p.inputs.query()),
            pad(p.inputs.key()),
            pad(p.inputs.value()),
        );
        self.accel.run(&padded).cycles.seconds(self.accel_config)
    }

    /// Routes one request through deadline checks and the failover loop.
    fn dispatch_one(&mut self, request: QueuedRequest, charged_service: f64) {
        let now_ns = self.clock.now_ns();
        let now_s = self.clock.now_s();
        let waited_s = now_s - ns_to_secs(request.arrival_ns);
        if let Some(deadline) = request.deadline_ns {
            if deadline < now_ns {
                self.finish(request, waited_s, 0.0, now_s, 0, Outcome::TimedOut);
                return;
            }
            if self.cfg.shed_unmeetable {
                let earliest = self
                    .health
                    .available_units()
                    .into_iter()
                    .map(|u| self.free_at[u])
                    .min_by(f64::total_cmp);
                if let Some(earliest) = earliest {
                    if earliest.max(now_s) + charged_service > ns_to_secs(deadline) {
                        self.finish(request, waited_s, 0.0, now_s, 0, Outcome::ShedUnmeetable);
                        return;
                    }
                }
            }
        }
        let mut retries = 0u32;
        let mut attempt = 0u32;
        loop {
            // FIFO over survivors: the available unit that frees first
            // (first minimum, matching the offline servers).
            let Some(unit) = self.health.available_units().into_iter().min_by(|&a, &b| {
                self.free_at[a].total_cmp(&self.free_at[b])
            }) else {
                // Quarantine is probation, not death: reinstate and retry
                // (circuit-breaker half-open), unless the pool is truly
                // dead.
                for u in 0..self.free_at.len() {
                    self.health.reinstate(u);
                }
                if self.health.num_available() == 0 {
                    let gave_up = self.free_at.iter().copied().fold(now_s, f64::max);
                    self.finish(request, waited_s, 0.0, gave_up, retries, Outcome::Failed);
                    return;
                }
                continue;
            };
            let start = self.free_at[unit].max(now_s);
            let slowdown = self.plan.straggler_factor(unit, request.id);
            if self.plan.transient_fault(unit, request.id, attempt) {
                // The failed attempt still occupied the unit.
                self.free_at[unit] = start + charged_service * slowdown;
                self.health.record_fault(unit);
                retries += 1;
                attempt += 1;
                if retries > self.cfg.max_retries {
                    let gave_up = self.free_at[unit];
                    self.finish(request, waited_s, 0.0, gave_up, retries, Outcome::Failed);
                    return;
                }
                continue;
            }
            self.health.record_success(unit);
            let (service_s, degraded) = if self.prepared[request.id].trips
                || self.plan.corruption(unit, request.id).is_some()
            {
                // Streaming exact fallback: bit-identical to `run_base` with
                // O(n) transient memory (see `elsa_attention::flash`).
                let base = self.accel.run_base_streaming(&self.prepared[request.id].inputs);
                ((charged_service + base.cycles.seconds(self.accel_config)) * slowdown, true)
            } else {
                (charged_service * slowdown, false)
            };
            self.free_at[unit] = start + service_s;
            let completion_s = self.free_at[unit];
            let queue_delay_s = start - ns_to_secs(request.arrival_ns);
            self.commit_session(request.id);
            self.finish(
                request,
                queue_delay_s,
                service_s,
                completion_s,
                retries,
                Outcome::Served { degraded },
            );
            return;
        }
    }

    /// Writes the single record a request is allowed.
    fn finish(
        &mut self,
        request: QueuedRequest,
        queue_delay_s: f64,
        service_s: f64,
        completion_s: f64,
        retries: u32,
        outcome: Outcome,
    ) {
        let slot = &mut self.slots[request.id];
        assert!(slot.is_none(), "request {} accounted twice", request.id);
        *slot = Some(OnlineRecord {
            id: request.id,
            n_real: request.n_real,
            bucket: request.bucket,
            arrival_ns: request.arrival_ns,
            deadline_ns: request.deadline_ns,
            decided_ns: self.clock.now_ns(),
            queue_delay_s,
            service_s,
            completion_s,
            retries,
            outcome,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::{ArrivalConfig, ArrivalTrace};
    use elsa_core::attention::ElsaParams;
    use elsa_linalg::SeededRng;
    use elsa_workloads::{DatasetKind, ModelKind, Workload};

    fn workload() -> Workload {
        Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M }
    }

    fn operator(seed: u64) -> ElsaAttention {
        let mut rng = SeededRng::new(seed);
        let train = workload().generate_batch(1, &mut rng);
        ElsaAttention::learn(
            ElsaParams::for_dims(64, 64, &mut SeededRng::new(seed + 1)),
            &train,
            1.0,
        )
    }

    fn config() -> AcceleratorConfig {
        AcceleratorConfig { n_max: 200, num_accelerators: 4, ..AcceleratorConfig::paper() }
    }

    fn trace(count: usize, lambda: f64, slo_ns: Option<u64>, seed: u64) -> ArrivalTrace {
        let cfg = ArrivalConfig { lambda_per_s: lambda, count, slo_ns, burst: None };
        ArrivalTrace::generate(&workload(), &cfg, &mut SeededRng::new(seed))
    }

    #[test]
    fn every_request_is_accounted_exactly_once() {
        let server = OnlineServer::new(
            config(),
            operator(1),
            FaultPlan::none(),
            ServeConfig {
                queue_capacity: Some(4),
                backpressure: Backpressure::ShedNewest,
                shed_unmeetable: true,
                ..ServeConfig::default()
            },
        );
        let trace = trace(64, 200_000.0, Some(100_000), 2);
        let report = server.serve(&trace).expect("healthy pool");
        assert_eq!(report.offered_count(), 64);
        assert_eq!(
            report.served_count()
                + report.shed_count()
                + report.timed_out_count()
                + report.failed_count(),
            64,
            "exact accounting"
        );
        // Records come back in arrival order.
        for (i, r) in report.records.iter().enumerate() {
            assert_eq!(r.id, i);
        }
    }

    #[test]
    fn light_load_serves_everything_within_slo() {
        let server =
            OnlineServer::new(config(), operator(3), FaultPlan::none(), ServeConfig::immediate());
        // λ far below saturation, generous SLO.
        let trace = trace(24, 1_000.0, Some(crate::clock::NANOS_PER_SEC), 4);
        let report = server.serve(&trace).expect("healthy pool");
        assert_eq!(report.served_count(), 24);
        assert_eq!(report.slo_attainment(), 1.0);
        assert!(report.queue_delay_percentile_s(99.0) < 1e-3);
        assert!(report.throughput_per_s() > 0.0);
    }

    #[test]
    fn shed_oldest_prefers_the_head_of_the_queue() {
        // One unit, capacity 2, huge batch window: the queue fills and the
        // oldest waiters get dropped.
        let server = OnlineServer::new(
            AcceleratorConfig { num_accelerators: 1, ..config() },
            operator(5),
            FaultPlan::none(),
            ServeConfig {
                queue_capacity: Some(2),
                backpressure: Backpressure::ShedOldest,
                batch: BatchPolicy::single_bucket(64, u64::MAX / 2),
                ..ServeConfig::default()
            },
        );
        let trace = trace(12, 1_000_000.0, None, 6);
        let report = server.serve(&trace).expect("healthy pool");
        assert_eq!(report.shed_queue_full_count(), 10, "capacity 2 of 12 survive");
        let shed: Vec<usize> = report
            .records
            .iter()
            .filter(|r| r.outcome == Outcome::ShedQueueFull)
            .map(|r| r.id)
            .collect();
        assert_eq!(shed, (0..10).collect::<Vec<_>>(), "head drop sheds the oldest");
    }

    #[test]
    fn block_backpressure_never_sheds() {
        let server = OnlineServer::new(
            config(),
            operator(7),
            FaultPlan::none(),
            ServeConfig {
                queue_capacity: Some(2),
                backpressure: Backpressure::Block,
                batch: BatchPolicy::single_bucket(8, 1_000_000),
                ..ServeConfig::default()
            },
        );
        let trace = trace(32, 500_000.0, None, 8);
        let report = server.serve(&trace).expect("healthy pool");
        assert_eq!(report.served_count(), 32);
        assert_eq!(report.shed_count(), 0);
    }

    #[test]
    fn unmeetable_deadlines_are_shed_not_burned() {
        // Impossible SLO: shorter than any service time. With shedding on,
        // every request is dropped before occupying a unit.
        let server = OnlineServer::new(
            config(),
            operator(9),
            FaultPlan::none(),
            ServeConfig { shed_unmeetable: true, ..ServeConfig::immediate() },
        );
        let trace = trace(8, 1_000.0, Some(10), 10);
        let report = server.serve(&trace).expect("healthy pool");
        assert_eq!(report.shed_unmeetable_count(), 8);
        assert_eq!(report.slo_attainment(), 0.0);
        assert_eq!(report.throughput_per_s(), 0.0);
    }

    #[test]
    fn batching_waits_are_bounded_by_the_window() {
        let max_wait_ns = 2_000_000; // 2 ms
        let server = OnlineServer::new(
            config(),
            operator(11),
            FaultPlan::none(),
            ServeConfig {
                batch: BatchPolicy::single_bucket(64, max_wait_ns),
                ..ServeConfig::default()
            },
        );
        // λ low enough that batches form by expiry, not by max_batch.
        let trace = trace(16, 5_000.0, None, 12);
        let report = server.serve(&trace).expect("healthy pool");
        assert_eq!(report.served_count(), 16);
        for r in &report.records {
            assert!(
                r.decided_ns <= r.arrival_ns + max_wait_ns,
                "request {} dispatched {}ns after arrival",
                r.id,
                r.decided_ns - r.arrival_ns
            );
        }
        let stats = &report.bucket_stats[0];
        assert!(stats.batches < 16, "batching actually grouped requests");
        assert!(stats.mean_fill() > 1.0);
    }

    #[test]
    fn dead_pool_is_a_typed_error() {
        let plan = FaultPlan::seeded(
            13,
            elsa_fault::FaultRates { unit_death: 1.0, ..elsa_fault::FaultRates::none() },
        );
        let server = OnlineServer::new(config(), operator(14), plan, ServeConfig::default());
        assert_eq!(
            server.serve(&trace(4, 1_000.0, None, 15)).unwrap_err(),
            RuntimeError::NoHealthyUnits
        );
    }

    #[test]
    fn oversized_request_is_rejected_up_front() {
        // n_max = 200 but BertLarge pads to 384 real entities sometimes; use
        // a tiny n_max to force the misfit deterministically.
        let server = OnlineServer::new(
            AcceleratorConfig { n_max: 8, ..config() },
            operator(16),
            FaultPlan::none(),
            ServeConfig::default(),
        );
        let err = server.serve(&trace(6, 1_000.0, None, 17)).unwrap_err();
        assert!(matches!(err, RuntimeError::Request { .. }));
    }

    #[test]
    fn padded_mode_charges_at_least_the_real_cost() {
        let trace = trace(24, 1_000_000.0, None, 18);
        let serve = |mode| {
            let server = OnlineServer::new(
                config(),
                operator(19),
                FaultPlan::none(),
                ServeConfig {
                    batch: BatchPolicy::single_bucket(8, 1_000_000),
                    mode,
                    ..ServeConfig::default()
                },
            );
            server.serve(&trace).expect("healthy pool")
        };
        let bucketed = serve(BatcherMode::Bucketed);
        let padded = serve(BatcherMode::Padded);
        assert_eq!(bucketed.served_count(), padded.served_count());
        for (b, p) in bucketed.records.iter().zip(&padded.records) {
            assert!(p.service_s >= b.service_s, "padding can only add work");
        }
        assert!(padded.bucket_stats[0].padded_rows > 0, "mixed lengths actually padded");
        assert_eq!(bucketed.bucket_stats[0].padded_rows, 0, "ELSA pays no padding");
        assert_eq!(bucketed.bucket_stats[0].padding_waste(), 0.0);
    }

    #[test]
    fn multi_turn_sessions_hit_the_cache() {
        use crate::session::{CacheConfig, SessionArrivalConfig, SessionTrace};
        let server =
            OnlineServer::new(config(), operator(21), FaultPlan::none(), ServeConfig::default());
        let cfg = SessionArrivalConfig {
            lambda_per_s: 5_000.0,
            sessions: 4,
            slo_ns: None,
            max_decode_turns: Some(3),
        };
        let trace = SessionTrace::generate(&workload(), &cfg, &mut SeededRng::new(22));
        let report = server.serve_sessions(&trace, CacheConfig::unbounded()).expect("healthy");
        let r = &report.serve;
        assert_eq!(r.offered_count(), trace.len());
        assert_eq!(
            r.served_count() + r.shed_count() + r.timed_out_count() + r.failed_count(),
            trace.len(),
            "exact accounting"
        );
        // Unbounded cache, nothing dropped: every decode turn after its
        // prefill is a hit, one cold start per session, no staleness.
        assert_eq!(report.cache.cold, 4);
        assert_eq!(report.cache.hits as usize, trace.len() - 4);
        assert_eq!(report.cache.stale, 0);
        assert_eq!(report.cache.evictions, 0);
        assert!(report.cache.peak_bytes > 0);
        // A hit decode turn is charged strictly less than its from-scratch
        // precompute (the skipped context re-hashing).
        let hit_turn = r
            .records
            .iter()
            .zip(&trace.requests)
            .find(|(rec, req)| {
                req.appended == 1 && matches!(rec.outcome, Outcome::Served { degraded: false })
            })
            .map(|(rec, _)| rec)
            .expect("some decode turn served cleanly");
        assert!(hit_turn.service_s > 0.0);
    }

    #[test]
    fn single_turn_unbounded_sessions_match_plain_serving_bitwise() {
        use crate::session::{CacheConfig, SessionTrace};
        let make = || {
            OnlineServer::new(
                config(),
                operator(23),
                FaultPlan::none(),
                ServeConfig {
                    batch: BatchPolicy::single_bucket(4, 500_000),
                    ..ServeConfig::default()
                },
            )
        };
        let arrivals = trace(24, 50_000.0, Some(5_000_000), 24);
        let plain = make().serve(&arrivals).expect("healthy");
        let sessions = make()
            .serve_sessions(&SessionTrace::single_turn(&arrivals), CacheConfig::unbounded())
            .expect("healthy");
        assert_eq!(plain, sessions.serve, "degenerate session serving is bit-identical");
        assert_eq!(sessions.cache.hits, 0);
        assert_eq!(sessions.cache.cold, sessions.serve.served_count() as u64);
    }

    #[test]
    fn dropped_turns_force_stale_rebuilds() {
        use crate::session::{CacheConfig, SessionArrivalConfig, SessionTrace};
        // An SLO so tight that some turns time out in the queue on one unit:
        // the following turn of that session must be stale, never a hit.
        let server = OnlineServer::new(
            AcceleratorConfig { num_accelerators: 1, ..config() },
            operator(25),
            FaultPlan::none(),
            ServeConfig { shed_unmeetable: true, ..ServeConfig::default() },
        );
        let cfg = SessionArrivalConfig {
            lambda_per_s: 500_000.0,
            sessions: 3,
            slo_ns: Some(40_000),
            max_decode_turns: Some(4),
        };
        let trace = SessionTrace::generate(&workload(), &cfg, &mut SeededRng::new(26));
        let report = server.serve_sessions(&trace, CacheConfig::unbounded()).expect("healthy");
        let r = &report.serve;
        assert_eq!(
            r.served_count() + r.shed_count() + r.timed_out_count() + r.failed_count(),
            trace.len(),
            "exact accounting under drops"
        );
        assert!(r.shed_count() + r.timed_out_count() > 0, "overload actually dropped turns");
        // Cache classification only covers served turns.
        assert_eq!(
            report.cache.hits + report.cache.cold + report.cache.stale,
            r.served_count() as u64
        );
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let server =
            OnlineServer::new(config(), operator(20), FaultPlan::none(), ServeConfig::default());
        let report = server.serve(&ArrivalTrace { requests: Vec::new() }).expect("empty is fine");
        assert_eq!(report.offered_count(), 0);
        assert_eq!(report.slo_attainment(), 1.0);
        assert_eq!(report.queue_delay_percentile_s(99.0), 0.0);
        assert_eq!(report.throughput_per_s(), 0.0);
    }
}
