//! Seeded open-loop arrival generation.
//!
//! An [`ArrivalTrace`] is the online analogue of
//! [`elsa_workloads::WorkloadTrace`]: a fully materialized, replayable
//! description of *what* arrives *when*. Request shapes come from the same
//! per-workload length distribution the offline traces use
//! ([`Workload::sample_entry`]); arrival instants are exponential
//! inter-arrival draws at an offered load λ (a Poisson process), optionally
//! modulated by periodic [`Burst`] phases.
//!
//! Two independent PRNG streams are forked from the caller's generator —
//! one for request shapes, one for inter-arrival times — so two traces
//! generated from the **same seed at different λ contain the same request
//! sequence** with compressed or stretched arrival times. That is what makes
//! "SLO attainment degrades monotonically in λ" a sharp, testable statement
//! instead of a statistical tendency across unrelated workloads.

use elsa_attention::exact::AttentionInputs;
use elsa_linalg::SeededRng;
use elsa_workloads::trace::TraceEntry;
use elsa_workloads::{Workload, WorkloadTrace};

use crate::clock::secs_to_ns;

/// Periodic burst modulation of the base arrival rate.
///
/// Each period of `period_ns` opens with an `active_ns`-long window during
/// which the instantaneous rate is `lambda_per_s × multiplier`; outside the
/// window the base rate applies. A multiplier below 1 models periodic lulls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Burst {
    /// Length of one burst cycle in nanoseconds.
    pub period_ns: u64,
    /// Length of the high-rate window at the start of each cycle.
    pub active_ns: u64,
    /// Rate multiplier inside the window (> 0).
    pub multiplier: f64,
}

/// Configuration of one generated arrival trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalConfig {
    /// Mean offered load in requests per second (> 0).
    pub lambda_per_s: f64,
    /// Number of requests to generate.
    pub count: usize,
    /// Per-request latency SLO: the deadline is `arrival + slo_ns`.
    /// `None` disables deadlines (nothing is ever shed for SLO reasons).
    pub slo_ns: Option<u64>,
    /// Optional periodic burst phases.
    pub burst: Option<Burst>,
}

impl ArrivalConfig {
    /// An open-loop Poisson stream of `count` requests at rate λ, no SLO,
    /// no bursts.
    #[must_use]
    pub const fn poisson(lambda_per_s: f64, count: usize) -> Self {
        Self { lambda_per_s, count, slo_ns: None, burst: None }
    }
}

/// One request of an arrival trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalRequest {
    /// Index of the request in arrival order (the identity every fault
    /// decision and record is keyed on).
    pub id: usize,
    /// Arrival instant on the virtual clock.
    pub arrival_ns: u64,
    /// Absolute completion deadline, if the request carries an SLO.
    pub deadline_ns: Option<u64>,
    /// The replayable request shape (generator config + seed).
    pub entry: TraceEntry,
}

/// A replayable stream of timed attention requests, sorted by arrival.
#[derive(Debug, Clone, PartialEq)]
pub struct ArrivalTrace {
    /// The requests in arrival order.
    pub requests: Vec<ArrivalRequest>,
}

impl ArrivalTrace {
    /// Generates an open-loop trace for a workload.
    ///
    /// Shapes and inter-arrival times come from independent forks of `rng`,
    /// so regenerating with a different `lambda_per_s` (or different
    /// [`Burst`]) yields the *same* request sequence on a different
    /// timeline.
    ///
    /// # Panics
    ///
    /// Panics if `lambda_per_s` is not strictly positive and finite, or if
    /// a burst has a zero period, a window longer than its period, or a
    /// non-positive multiplier.
    #[must_use]
    pub fn generate(workload: &Workload, config: &ArrivalConfig, rng: &mut SeededRng) -> Self {
        assert!(
            config.lambda_per_s > 0.0 && config.lambda_per_s.is_finite(),
            "offered load must be positive, got {}",
            config.lambda_per_s
        );
        if let Some(b) = config.burst {
            assert!(b.period_ns > 0, "burst period must be positive");
            assert!(b.active_ns <= b.period_ns, "burst window exceeds its period");
            assert!(b.multiplier > 0.0 && b.multiplier.is_finite(), "bad burst multiplier");
        }
        // Independent streams: shapes must not shift when λ changes.
        let mut shape_rng = rng.fork(0x5EAE_0001);
        let mut time_rng = rng.fork(0x5EAE_0002);
        let mut t_ns = 0u64;
        let requests = (0..config.count)
            .map(|id| {
                let rate = config.lambda_per_s * burst_multiplier_at(t_ns, config.burst);
                // Exponential inter-arrival: -ln(1-U)/rate, U ∈ [0, 1).
                let dt_s = -(1.0 - time_rng.uniform()).ln() / rate;
                t_ns = t_ns.saturating_add(secs_to_ns(dt_s));
                ArrivalRequest {
                    id,
                    arrival_ns: t_ns,
                    deadline_ns: config.slo_ns.map(|slo| t_ns.saturating_add(slo)),
                    entry: workload.sample_entry(&mut shape_rng, id as u64),
                }
            })
            .collect();
        Self { requests }
    }

    /// Wraps a recorded offline trace in arrival times drawn at rate λ
    /// (same timing model as [`ArrivalTrace::generate`], shapes taken
    /// verbatim from `trace`).
    ///
    /// # Panics
    ///
    /// Same validation as [`ArrivalTrace::generate`].
    #[must_use]
    pub fn over_trace(trace: &WorkloadTrace, config: &ArrivalConfig, rng: &mut SeededRng) -> Self {
        assert!(
            config.lambda_per_s > 0.0 && config.lambda_per_s.is_finite(),
            "offered load must be positive, got {}",
            config.lambda_per_s
        );
        let mut time_rng = rng.fork(0x5EAE_0002);
        let mut t_ns = 0u64;
        let requests = trace
            .entries
            .iter()
            .enumerate()
            .map(|(id, &entry)| {
                let rate = config.lambda_per_s * burst_multiplier_at(t_ns, config.burst);
                let dt_s = -(1.0 - time_rng.uniform()).ln() / rate;
                t_ns = t_ns.saturating_add(secs_to_ns(dt_s));
                ArrivalRequest {
                    id,
                    arrival_ns: t_ns,
                    deadline_ns: config.slo_ns.map(|slo| t_ns.saturating_add(slo)),
                    entry,
                }
            })
            .collect();
        Self { requests }
    }

    /// Every entry of a recorded trace arriving simultaneously at t = 0
    /// with no deadlines — the degenerate stream on which the online
    /// pipeline must reproduce the offline `InferenceServer::serve`
    /// bit-for-bit.
    #[must_use]
    pub fn simultaneous(trace: &WorkloadTrace) -> Self {
        let requests = trace
            .entries
            .iter()
            .enumerate()
            .map(|(id, &entry)| ArrivalRequest { id, arrival_ns: 0, deadline_ns: None, entry })
            .collect();
        Self { requests }
    }

    /// Number of requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Regenerates every request's attention inputs, in arrival order.
    #[must_use]
    pub fn materialize(&self) -> Vec<AttentionInputs> {
        self.requests.iter().map(|r| r.entry.materialize()).collect()
    }

    /// The realized offered load: requests divided by the arrival span.
    /// `0.0` for traces with fewer than two requests.
    #[must_use]
    pub fn offered_lambda_per_s(&self) -> f64 {
        match (self.requests.first(), self.requests.last()) {
            (Some(first), Some(last)) if last.arrival_ns > first.arrival_ns => {
                (self.len() - 1) as f64
                    / crate::clock::ns_to_secs(last.arrival_ns - first.arrival_ns)
            }
            _ => 0.0,
        }
    }
}

fn burst_multiplier_at(t_ns: u64, burst: Option<Burst>) -> f64 {
    match burst {
        Some(b) if t_ns % b.period_ns < b.active_ns => b.multiplier,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsa_workloads::{DatasetKind, ModelKind};

    fn workload() -> Workload {
        Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = ArrivalConfig::poisson(1000.0, 32);
        let a = ArrivalTrace::generate(&workload(), &cfg, &mut SeededRng::new(1));
        let b = ArrivalTrace::generate(&workload(), &cfg, &mut SeededRng::new(1));
        assert_eq!(a, b);
        assert_eq!(a.materialize(), b.materialize());
    }

    #[test]
    fn arrivals_are_sorted_and_rate_is_plausible() {
        let cfg = ArrivalConfig::poisson(10_000.0, 256);
        let trace = ArrivalTrace::generate(&workload(), &cfg, &mut SeededRng::new(2));
        assert!(trace.requests.windows(2).all(|w| w[0].arrival_ns <= w[1].arrival_ns));
        let realized = trace.offered_lambda_per_s();
        assert!(
            (5_000.0..20_000.0).contains(&realized),
            "realized λ = {realized} too far from 10k"
        );
    }

    #[test]
    fn same_seed_different_lambda_same_shapes_scaled_times() {
        let slow = ArrivalTrace::generate(
            &workload(),
            &ArrivalConfig::poisson(1000.0, 48),
            &mut SeededRng::new(3),
        );
        let fast = ArrivalTrace::generate(
            &workload(),
            &ArrivalConfig::poisson(4000.0, 48),
            &mut SeededRng::new(3),
        );
        for (s, f) in slow.requests.iter().zip(&fast.requests) {
            assert_eq!(s.entry, f.entry, "shapes must not depend on λ");
            assert!(f.arrival_ns <= s.arrival_ns, "higher λ compresses the timeline");
        }
    }

    #[test]
    fn slo_deadlines_are_arrival_relative() {
        let cfg = ArrivalConfig { slo_ns: Some(5_000), ..ArrivalConfig::poisson(1000.0, 8) };
        let trace = ArrivalTrace::generate(&workload(), &cfg, &mut SeededRng::new(4));
        for r in &trace.requests {
            assert_eq!(r.deadline_ns, Some(r.arrival_ns + 5_000));
        }
    }

    #[test]
    fn burst_phases_compress_the_window() {
        // 10× rate in the first half of each millisecond: the mean
        // inter-arrival inside windows must be far below the base mean.
        let burst = Burst { period_ns: 1_000_000, active_ns: 500_000, multiplier: 10.0 };
        let cfg = ArrivalConfig {
            burst: Some(burst),
            ..ArrivalConfig::poisson(10_000.0, 512)
        };
        let bursty = ArrivalTrace::generate(&workload(), &cfg, &mut SeededRng::new(5));
        let calm = ArrivalTrace::generate(
            &workload(),
            &ArrivalConfig::poisson(10_000.0, 512),
            &mut SeededRng::new(5),
        );
        assert!(
            bursty.requests.last().unwrap().arrival_ns
                < calm.requests.last().unwrap().arrival_ns,
            "bursts raise the average rate, shortening the trace"
        );
        // Shapes identical regardless of bursts.
        for (a, b) in bursty.requests.iter().zip(&calm.requests) {
            assert_eq!(a.entry, b.entry);
        }
    }

    #[test]
    fn over_trace_preserves_entries() {
        let recorded = WorkloadTrace::record(&workload(), 12, &mut SeededRng::new(6));
        let online = ArrivalTrace::over_trace(
            &recorded,
            &ArrivalConfig::poisson(1000.0, 0),
            &mut SeededRng::new(7),
        );
        assert_eq!(online.len(), 12);
        for (arr, rec) in online.requests.iter().zip(&recorded.entries) {
            assert_eq!(&arr.entry, rec);
        }
    }

    #[test]
    fn simultaneous_trace_arrives_at_zero() {
        let recorded = WorkloadTrace::record(&workload(), 5, &mut SeededRng::new(8));
        let online = ArrivalTrace::simultaneous(&recorded);
        assert!(online.requests.iter().all(|r| r.arrival_ns == 0 && r.deadline_ns.is_none()));
        assert_eq!(online.materialize(), recorded.materialize());
        assert_eq!(online.offered_lambda_per_s(), 0.0);
    }
}
