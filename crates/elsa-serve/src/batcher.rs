//! Length-bucketed dynamic batching.
//!
//! ELSA's accelerator pays for the *real* sequence length of every request
//! (`crates/elsa-sim` charges `n_real` cycles, not `n_max`), so its natural
//! batching discipline is **bucketed**: group requests of similar length and
//! dispatch each at its own cost — no padding anywhere. A GPU running the
//! same traffic must pad every sequence in a batch to the batch maximum; the
//! [`BatcherMode::Padded`] emulation charges exactly that, making the
//! padding-waste gap a measured quantity instead of a talking point (the
//! serving-side companion to the paper's §V claim that skipping padded
//! entities is free throughput).
//!
//! The batcher itself is policy ([`BatchPolicy`]) plus bookkeeping
//! ([`BucketStats`]); batch *formation* lives in the event loop
//! ([`dispatch`](crate::dispatch)), which decides when a bucket is rich
//! enough (`max_batch`) or old enough (`max_wait_ns`) to go.

/// How a formed batch is charged to the accelerator pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatcherMode {
    /// ELSA semantics: every request runs at its real length. No padding.
    Bucketed,
    /// GPU emulation: every request in a batch is padded (with zero rows)
    /// to the longest request in the batch and charged the padded cost.
    Padded,
}

/// When to form a batch, and how lengths are grouped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Dispatch a bucket as soon as it holds this many requests.
    pub max_batch: usize,
    /// Dispatch a bucket when its oldest waiter has queued this long.
    pub max_wait_ns: u64,
    /// Ascending upper length bounds of the buckets. A request of length
    /// `n` joins the first bucket with `n <= bound`; anything longer than
    /// the last bound also joins the last bucket (catch-all).
    pub length_buckets: Vec<usize>,
}

impl BatchPolicy {
    /// Immediate dispatch: batch size 1, no waiting, one catch-all bucket.
    /// Under this policy the online pipeline degenerates to the offline
    /// FIFO server (the bit-identity baseline of `tests/online_serving.rs`).
    #[must_use]
    pub fn immediate() -> Self {
        Self { max_batch: 1, max_wait_ns: 0, length_buckets: vec![usize::MAX] }
    }

    /// One catch-all bucket with the given batch size and wait bound.
    #[must_use]
    pub fn single_bucket(max_batch: usize, max_wait_ns: u64) -> Self {
        Self { max_batch, max_wait_ns, length_buckets: vec![usize::MAX] }
    }

    /// Validates the policy.
    ///
    /// # Panics
    ///
    /// Panics on a zero batch size, no buckets, or bucket bounds that are
    /// not strictly ascending.
    pub fn validate(&self) {
        assert!(self.max_batch > 0, "max_batch must be positive");
        assert!(!self.length_buckets.is_empty(), "need at least one length bucket");
        assert!(
            self.length_buckets.windows(2).all(|w| w[0] < w[1]),
            "bucket bounds must be strictly ascending"
        );
    }

    /// Number of buckets.
    #[must_use]
    pub fn num_buckets(&self) -> usize {
        self.length_buckets.len()
    }

    /// The bucket a request of real length `n` joins.
    #[must_use]
    pub fn bucket_of(&self, n: usize) -> usize {
        self.length_buckets
            .iter()
            .position(|&bound| n <= bound)
            .unwrap_or(self.length_buckets.len() - 1)
    }
}

/// Dispatch accounting for one length bucket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BucketStats {
    /// Upper length bound of the bucket (`usize::MAX` for a catch-all).
    pub bound: usize,
    /// Requests dispatched through the bucket.
    pub requests: u64,
    /// Batches formed.
    pub batches: u64,
    /// Zero rows added by padding (always 0 in [`BatcherMode::Bucketed`]).
    pub padded_rows: u64,
    /// Real rows dispatched (sum of `n_real`).
    pub real_rows: u64,
}

impl BucketStats {
    /// Mean requests per batch — the bucket's occupancy. `0.0` for a bucket
    /// that never dispatched.
    #[must_use]
    pub fn mean_fill(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }

    /// Fraction of dispatched rows that were padding. `0.0` when nothing
    /// was dispatched.
    #[must_use]
    pub fn padding_waste(&self) -> f64 {
        let total = self.real_rows + self.padded_rows;
        if total == 0 {
            0.0
        } else {
            self.padded_rows as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_routing_first_fit_with_catch_all() {
        let policy =
            BatchPolicy { max_batch: 8, max_wait_ns: 0, length_buckets: vec![64, 128, 256] };
        policy.validate();
        assert_eq!(policy.bucket_of(1), 0);
        assert_eq!(policy.bucket_of(64), 0);
        assert_eq!(policy.bucket_of(65), 1);
        assert_eq!(policy.bucket_of(256), 2);
        assert_eq!(policy.bucket_of(10_000), 2, "catch-all");
    }

    #[test]
    fn immediate_policy_is_degenerate() {
        let policy = BatchPolicy::immediate();
        policy.validate();
        assert_eq!(policy.max_batch, 1);
        assert_eq!(policy.max_wait_ns, 0);
        assert_eq!(policy.num_buckets(), 1);
        assert_eq!(policy.bucket_of(usize::MAX), 0);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unordered_buckets_rejected() {
        BatchPolicy { max_batch: 4, max_wait_ns: 0, length_buckets: vec![128, 64] }.validate();
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_batch_rejected() {
        BatchPolicy { max_batch: 0, max_wait_ns: 0, length_buckets: vec![64] }.validate();
    }

    #[test]
    fn stats_ratios_never_nan() {
        let empty = BucketStats::default();
        assert_eq!(empty.mean_fill(), 0.0);
        assert_eq!(empty.padding_waste(), 0.0);
        let stats = BucketStats {
            bound: 128,
            requests: 6,
            batches: 2,
            padded_rows: 30,
            real_rows: 90,
        };
        assert_eq!(stats.mean_fill(), 3.0);
        assert_eq!(stats.padding_waste(), 0.25);
    }
}
