//! Sliding-window (local) attention with optional global tokens — the
//! Longformer / sparse-transformer family the paper's §V-E groups under
//! "sparse attention techniques achieve very little speedup".
//!
//! Each query attends to the `window` keys on either side of its own
//! position plus the first `num_global` keys (CLS-style globals). The
//! pattern is *static*: unlike ELSA it cannot find distant relevant keys,
//! which is exactly the quality failure mode the comparison bench surfaces.

use elsa_attention::exact::{self, AttentionInputs};
use elsa_core::SelectionStats;
use elsa_linalg::Matrix;

/// Static local-window attention.
///
/// # Examples
///
/// ```
/// use elsa_sparse::LocalAttention;
/// let local = LocalAttention::new(2, 1);
/// let cands = local.window_for(5, 16);
/// assert_eq!(cands, vec![0, 3, 4, 5, 6, 7]); // global 0 + window [3..=7]
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalAttention {
    window: usize,
    num_global: usize,
}

impl LocalAttention {
    /// A window of `window` keys on each side plus `num_global` global keys.
    ///
    /// # Panics
    ///
    /// Panics if both `window` and `num_global` are zero (every query would
    /// attend to nothing but itself — degenerate).
    #[must_use]
    pub fn new(window: usize, num_global: usize) -> Self {
        assert!(window > 0 || num_global > 0, "pattern must attend to something");
        Self { window, num_global }
    }

    /// Window radius.
    #[must_use]
    pub const fn window(&self) -> usize {
        self.window
    }

    /// The candidate set for query position `i` of `n` keys (sorted,
    /// deduplicated; always contains `i` itself).
    #[must_use]
    pub fn window_for(&self, i: usize, n: usize) -> Vec<usize> {
        let lo = i.saturating_sub(self.window);
        let hi = (i + self.window).min(n - 1);
        let mut set: Vec<usize> = (0..self.num_global.min(n)).collect();
        for j in lo..=hi {
            if !set.contains(&j) {
                set.push(j);
            }
        }
        if !set.contains(&i) {
            set.push(i);
        }
        set.sort_unstable();
        set
    }

    /// Candidate sets for a whole invocation.
    #[must_use]
    pub fn candidates(&self, inputs: &AttentionInputs) -> (Vec<Vec<usize>>, SelectionStats) {
        let n = inputs.num_keys();
        let nq = inputs.num_queries();
        let candidates: Vec<Vec<usize>> = (0..nq).map(|i| self.window_for(i.min(n - 1), n)).collect();
        let selected = candidates.iter().map(Vec::len).sum();
        (
            candidates,
            SelectionStats {
                total_pairs: nq * n,
                selected_pairs: selected,
                num_queries: nq,
                num_keys: n,
                fallback_queries: 0,
            },
        )
    }

    /// Forward pass (exact attention over the static pattern).
    #[must_use]
    pub fn forward(&self, inputs: &AttentionInputs) -> (Matrix, SelectionStats) {
        let (cands, stats) = self.candidates(inputs);
        (exact::attention_with_candidates(inputs, &cands, 1.0), stats)
    }

    /// Arithmetic operations: `4·c̄·n·d` with `c̄ ≈ 2·window + globals`.
    #[must_use]
    pub fn ops_count(&self, n: usize, d: usize) -> u64 {
        let c = (2 * self.window + 1 + self.num_global).min(n) as u64;
        4 * c * (n as u64) * (d as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsa_linalg::SeededRng;

    fn random_inputs(n: usize, d: usize, seed: u64) -> AttentionInputs {
        let mut rng = SeededRng::new(seed);
        let q = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let k = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let v = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        AttentionInputs::new(q, k, v)
    }

    #[test]
    fn window_clamps_at_edges() {
        let local = LocalAttention::new(3, 0);
        assert_eq!(local.window_for(0, 10), vec![0, 1, 2, 3]);
        assert_eq!(local.window_for(9, 10), vec![6, 7, 8, 9]);
    }

    #[test]
    fn globals_always_included() {
        let local = LocalAttention::new(1, 2);
        let w = local.window_for(8, 16);
        assert!(w.contains(&0) && w.contains(&1));
        assert!(w.contains(&7) && w.contains(&8) && w.contains(&9));
    }

    #[test]
    fn self_position_always_attended() {
        let local = LocalAttention::new(1, 0);
        for i in 0..12 {
            assert!(local.window_for(i, 12).contains(&i));
        }
    }

    #[test]
    fn candidate_fraction_matches_window_size() {
        let local = LocalAttention::new(8, 0);
        let inputs = random_inputs(128, 16, 1);
        let (_, stats) = local.candidates(&inputs);
        let expect = 17.0 / 128.0; // 2w+1 per interior query
        assert!((stats.candidate_fraction() - expect).abs() < 0.01);
    }

    #[test]
    fn forward_produces_finite_rows() {
        let local = LocalAttention::new(4, 1);
        let inputs = random_inputs(32, 8, 2);
        let (out, _) = local.forward(&inputs);
        assert!(out.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn misses_distant_relevant_keys() {
        // Plant the relevant key far outside the window: local attention
        // must fail where content-based selection (ELSA) succeeds.
        let n = 64;
        let d = 16;
        let mut rng = SeededRng::new(3);
        let k = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let mut q = Matrix::zeros(n, d);
        for i in 0..n {
            let target = (i + n / 2) % n; // always far away
            for c in 0..d {
                q[(i, c)] = 3.0 * k[(target, c)];
            }
        }
        let v = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let inputs = AttentionInputs::new(q, k, v);
        let local = LocalAttention::new(4, 0);
        let (out, _) = local.forward(&inputs);
        let exact_out = exact::attention(&inputs);
        let rel = exact_out.relative_frobenius_error(&out);
        assert!(rel > 0.5, "local attention should miss distant keys, rel = {rel}");
    }

    #[test]
    fn ops_count_linear_in_n() {
        let local = LocalAttention::new(16, 2);
        assert_eq!(local.ops_count(512, 64) * 2, local.ops_count(1024, 64));
    }

    #[test]
    #[should_panic(expected = "attend to something")]
    fn rejects_empty_pattern() {
        let _ = LocalAttention::new(0, 0);
    }
}
