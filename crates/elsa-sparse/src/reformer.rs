//! Reformer-style LSH attention (Kitaev, Kaiser, Levskaya — ICLR 2020).
//!
//! Queries and keys are bucketed by a sign-random-projection hash; each
//! query attends only to keys in its own bucket, unioned over several
//! independent hashing rounds. This is the same LSH machinery ELSA builds
//! on — the crucial difference is *how the reduction is exploited*: Reformer
//! runs on commercial hardware and pays sorting/gather overheads that ELSA's
//! specialized selection pipeline avoids, which is exactly the paper's §V-E
//! argument. [`LshAttention::wall_clock_model_s`] quantifies it.

use elsa_attention::exact::{self, AttentionInputs};
use elsa_core::hashing::SrpHasher;
use elsa_core::SelectionStats;
use elsa_linalg::{Matrix, SeededRng};

/// Configuration of the LSH attention baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshAttentionConfig {
    /// Hash bits per round (`2^bits` buckets).
    pub bucket_bits: usize,
    /// Independent hashing rounds whose candidate sets are unioned.
    pub rounds: usize,
}

impl Default for LshAttentionConfig {
    fn default() -> Self {
        Self { bucket_bits: 4, rounds: 2 }
    }
}

/// The LSH-bucketed attention operator.
///
/// # Examples
///
/// ```
/// use elsa_sparse::{LshAttention, LshAttentionConfig};
/// use elsa_linalg::{Matrix, SeededRng};
/// use elsa_attention::AttentionInputs;
///
/// let mut rng = SeededRng::new(0);
/// let lsh = LshAttention::new(64, LshAttentionConfig::default(), &mut rng);
/// let mut mk = || Matrix::from_fn(32, 64, |_, _| rng.standard_normal() as f32);
/// let inputs = AttentionInputs::new(mk(), mk(), mk());
/// let (out, stats) = lsh.forward(&inputs);
/// assert_eq!(out.rows(), 32);
/// assert!(stats.candidate_fraction() <= 1.0);
/// ```
#[derive(Debug)]
pub struct LshAttention {
    hashers: Vec<SrpHasher>,
    config: LshAttentionConfig,
}

impl LshAttention {
    /// Draws `rounds` independent `bucket_bits`-bit hashers for dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `bucket_bits == 0`, `bucket_bits > 24`, or `rounds == 0`.
    #[must_use]
    pub fn new(d: usize, config: LshAttentionConfig, rng: &mut SeededRng) -> Self {
        assert!(config.bucket_bits > 0 && config.bucket_bits <= 24, "unreasonable bucket bits");
        assert!(config.rounds > 0, "need at least one round");
        let hashers = (0..config.rounds)
            .map(|_| SrpHasher::dense(config.bucket_bits, d, rng))
            .collect();
        Self { hashers, config }
    }

    /// The configuration.
    #[must_use]
    pub const fn config(&self) -> LshAttentionConfig {
        self.config
    }

    /// Bucket id of a vector under round `r`.
    fn bucket(&self, round: usize, x: &[f32]) -> usize {
        let h = self.hashers[round].hash(x);
        let mut id = 0usize;
        for b in 0..h.len() {
            id |= usize::from(h.bit(b)) << b;
        }
        id
    }

    /// Computes the per-query candidate sets (union over rounds of
    /// same-bucket keys). Queries whose buckets are empty in every round
    /// fall back to attending their positional neighbour set `{i}` clamped
    /// into range (Reformer always attends within its own chunk).
    ///
    /// Bucket-id hashing fans out across worker threads when the invocation
    /// is large; the bucket map itself is then built serially in key order,
    /// so candidate sets are identical at any worker count.
    #[must_use]
    pub fn candidates(&self, inputs: &AttentionInputs) -> (Vec<Vec<usize>>, SelectionStats) {
        let n = inputs.num_keys();
        let nq = inputs.num_queries();
        let d = inputs.dim();
        let mut sets: Vec<std::collections::BTreeSet<usize>> =
            vec![std::collections::BTreeSet::new(); nq];
        let hash_work = (n + nq).saturating_mul(self.config.bucket_bits).saturating_mul(d);
        for round in 0..self.config.rounds {
            // Bucket ids for all keys and queries (the parallelizable part).
            let key_ids: Vec<usize> = if elsa_parallel::beneficial(hash_work) {
                elsa_parallel::par_map_indexed(n, |j| self.bucket(round, inputs.key().row(j)))
            } else {
                (0..n).map(|j| self.bucket(round, inputs.key().row(j))).collect()
            };
            let query_ids: Vec<usize> = if elsa_parallel::beneficial(hash_work) {
                elsa_parallel::par_map_indexed(nq, |i| self.bucket(round, inputs.query().row(i)))
            } else {
                (0..nq).map(|i| self.bucket(round, inputs.query().row(i))).collect()
            };
            // Bucket all keys once, serially in key order. BTreeMap rather
            // than HashMap: the map is only ever probed by key (never
            // iterated), but the deterministic-crate policy (elsa-lint D2)
            // bans hash-ordered containers outright so order can never leak
            // into candidate sets through a future refactor.
            let mut buckets: std::collections::BTreeMap<usize, Vec<usize>> =
                std::collections::BTreeMap::new();
            for (j, &id) in key_ids.iter().enumerate() {
                buckets.entry(id).or_default().push(j);
            }
            for (i, set) in sets.iter_mut().enumerate() {
                if let Some(members) = buckets.get(&query_ids[i]) {
                    set.extend(members.iter().copied());
                }
            }
        }
        let mut stats = SelectionStats {
            total_pairs: nq * n,
            num_queries: nq,
            num_keys: n,
            ..SelectionStats::default()
        };
        let candidates: Vec<Vec<usize>> = sets
            .into_iter()
            .enumerate()
            .map(|(i, set)| {
                if set.is_empty() {
                    stats.fallback_queries += 1;
                    vec![i.min(n - 1)]
                } else {
                    set.into_iter().collect()
                }
            })
            .collect();
        stats.selected_pairs = candidates.iter().map(Vec::len).sum();
        (candidates, stats)
    }

    /// Full forward pass: bucket, union, exact attention over candidates.
    #[must_use]
    pub fn forward(&self, inputs: &AttentionInputs) -> (Matrix, SelectionStats) {
        let (cands, stats) = self.candidates(inputs);
        (exact::attention_with_candidates(inputs, &cands, 1.0), stats)
    }

    /// Arithmetic operations of the scheme: hashing (`2·n·bits·d` MACs per
    /// round for queries + keys) plus candidate attention (`4·c̄·n·d`).
    #[must_use]
    pub fn ops_count(&self, n: usize, d: usize, avg_candidates: f64) -> u64 {
        let hash = 2 * 2 * (n as u64)
            * (self.config.bucket_bits as u64)
            * (d as u64)
            * (self.config.rounds as u64);
        let attn = (4.0 * avg_candidates * n as f64 * d as f64).round() as u64;
        hash + attn
    }

    /// Modeled wall-clock on commercial hardware (GPU-class, 14 TFLOPS):
    /// hashing + **bucket sort** (`rounds · n log n` with Reformer's large
    /// constant: segmented sorts, gathers, re-chunking) + gathered attention
    /// at low efficiency. This is what makes Reformer lose below `n ≈ 2048`
    /// despite the arithmetic reduction (§V-E).
    #[must_use]
    pub fn wall_clock_model_s(&self, n: usize, d: usize, avg_candidates: f64) -> f64 {
        let peak = 14.0e12;
        let nf = n as f64;
        let hash =
            (2.0 * 2.0 * nf * self.config.bucket_bits as f64 * d as f64 * self.config.rounds as f64)
                / (peak * 0.3);
        // Sorting + chunk bookkeeping: ~10 ns per element per log-level per
        // round (measured Reformer overheads are of this order on V100).
        let sort = self.config.rounds as f64 * nf * nf.log2().max(1.0) * 10.0e-9;
        let attn = 4.0 * avg_candidates * nf * d as f64 / (peak * 0.05);
        hash + sort + attn
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsa_baselines::GpuModel;

    fn clustered_inputs(n: usize, d: usize, seed: u64) -> AttentionInputs {
        // Keys in a few directions; queries near their cluster's direction.
        let mut rng = SeededRng::new(seed);
        let clusters = 8;
        let centers = Matrix::from_fn(clusters, d, |_, _| rng.standard_normal() as f32);
        let k = Matrix::from_fn(n, d, |r, c| {
            2.0 * centers[(r % clusters, c)] + 0.4 * rng.standard_normal() as f32
        });
        let q = Matrix::from_fn(n, d, |r, c| {
            2.0 * centers[(r % clusters, c)] + 0.4 * rng.standard_normal() as f32
        });
        let v = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        AttentionInputs::new(q, k, v)
    }

    #[test]
    fn buckets_reduce_candidates() {
        let mut rng = SeededRng::new(1);
        let lsh = LshAttention::new(64, LshAttentionConfig { bucket_bits: 4, rounds: 1 }, &mut rng);
        let inputs = clustered_inputs(128, 64, 2);
        let (_, stats) = lsh.forward(&inputs);
        assert!(stats.candidate_fraction() < 0.6, "{}", stats.candidate_fraction());
        assert!(stats.selected_pairs >= 128);
    }

    #[test]
    fn more_rounds_more_recall_more_candidates() {
        let mut rng = SeededRng::new(3);
        let one = LshAttention::new(64, LshAttentionConfig { bucket_bits: 4, rounds: 1 }, &mut rng);
        let mut rng = SeededRng::new(3);
        let four = LshAttention::new(64, LshAttentionConfig { bucket_bits: 4, rounds: 4 }, &mut rng);
        let inputs = clustered_inputs(128, 64, 4);
        let (_, s1) = one.forward(&inputs);
        let (_, s4) = four.forward(&inputs);
        assert!(s4.candidate_fraction() >= s1.candidate_fraction());
    }

    #[test]
    fn same_cluster_keys_are_found() {
        // The query's own cluster (high-attention keys) should be captured.
        let mut rng = SeededRng::new(5);
        let lsh = LshAttention::new(64, LshAttentionConfig { bucket_bits: 3, rounds: 4 }, &mut rng);
        let inputs = clustered_inputs(64, 64, 6);
        let (cands, _) = lsh.candidates(&inputs);
        let mut captured = 0usize;
        let mut total = 0usize;
        for (i, set) in cands.iter().enumerate() {
            // Keys of the same cluster as query i:
            for j in (i % 8..64).step_by(8) {
                total += 1;
                if set.contains(&j) {
                    captured += 1;
                }
            }
        }
        let recall = captured as f64 / total as f64;
        assert!(recall > 0.7, "same-cluster recall {recall}");
    }

    #[test]
    fn output_close_to_exact_on_clustered_data() {
        let mut rng = SeededRng::new(7);
        let lsh = LshAttention::new(64, LshAttentionConfig { bucket_bits: 3, rounds: 4 }, &mut rng);
        let inputs = clustered_inputs(96, 64, 8);
        let (out, _) = lsh.forward(&inputs);
        let exact_out = exact::attention(&inputs);
        let rel = exact_out.relative_frobenius_error(&out);
        assert!(rel < 0.35, "relative error {rel}");
    }

    #[test]
    fn wall_clock_crossover_near_2048(/* §V-E: no speedup below ~2048 */) {
        let mut rng = SeededRng::new(9);
        let lsh = LshAttention::new(64, LshAttentionConfig::default(), &mut rng);
        let gpu = GpuModel::v100();
        // Below 2048: LSH attention on GPU is NOT faster than dense.
        for n in [256usize, 512, 1024] {
            let dense = gpu.attention_kernel_time_s(n, 64);
            let sparse = lsh.wall_clock_model_s(n, 64, 0.15 * n as f64);
            assert!(sparse >= dense * 0.9, "n={n}: sparse {sparse} vs dense {dense}");
        }
        // Well above: the asymptotics finally win.
        let n = 8192;
        let dense = gpu.attention_kernel_time_s(n, 64);
        let sparse = lsh.wall_clock_model_s(n, 64, 0.05 * n as f64);
        assert!(sparse < dense, "n={n}: sparse {sparse} vs dense {dense}");
    }

    #[test]
    fn candidate_sets_are_sorted_and_replay_identically() {
        // Regression guard for the bucket-map container: candidate sets must
        // be a pure function of the inputs with ascending key order — no
        // trace of any map's iteration order may reach the output.
        let mut rng = SeededRng::new(11);
        let lsh = LshAttention::new(32, LshAttentionConfig::default(), &mut rng);
        let inputs = clustered_inputs(96, 32, 12);
        let (a, stats_a) = lsh.candidates(&inputs);
        let (b, stats_b) = lsh.candidates(&inputs);
        assert_eq!(a, b);
        assert_eq!(stats_a, stats_b);
        assert!(a.iter().all(|set| set.windows(2).all(|w| w[0] < w[1])), "unsorted candidates");
    }

    #[test]
    fn fallback_queries_get_a_candidate() {
        // Adversarial: zero-norm keys hash arbitrarily; every query still
        // ends with a nonempty set.
        let mut rng = SeededRng::new(10);
        let lsh = LshAttention::new(8, LshAttentionConfig { bucket_bits: 6, rounds: 1 }, &mut rng);
        let q = Matrix::from_fn(4, 8, |_, _| rng.standard_normal() as f32);
        let k = Matrix::from_fn(4, 8, |_, _| rng.standard_normal() as f32);
        let v = Matrix::zeros(4, 8);
        let (cands, _) = lsh.candidates(&AttentionInputs::new(q, k, v));
        assert!(cands.iter().all(|c| !c.is_empty()));
    }
}
