//! Segmented attention — the status-quo workaround ELSA's introduction
//! criticizes (§I): "When the input text has more than 512 tokens, the
//! input text needs to be divided into multiple segments …, and the
//! self-attention is separately applied for each segment. Unfortunately,
//! such a scheme makes NLP models unable to capture the relation between
//! two tokens that do not belong to the same segment."
//!
//! Implemented here as a baseline so the repository can quantify exactly
//! that failure: each query attends only to keys inside its own fixed-size
//! segment.

use elsa_attention::exact::{self, AttentionInputs};
use elsa_core::SelectionStats;
use elsa_linalg::Matrix;

/// Fixed-size segment attention.
///
/// # Examples
///
/// ```
/// use elsa_sparse::segmented::SegmentedAttention;
/// let seg = SegmentedAttention::new(4);
/// assert_eq!(seg.segment_of(5), 1);
/// assert_eq!(seg.segment_range(1, 10), (4, 8));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentedAttention {
    segment_len: usize,
}

impl SegmentedAttention {
    /// Segments of `segment_len` tokens (the last segment may be shorter).
    ///
    /// # Panics
    ///
    /// Panics if `segment_len == 0`.
    #[must_use]
    pub fn new(segment_len: usize) -> Self {
        assert!(segment_len > 0, "segments must be nonempty");
        Self { segment_len }
    }

    /// Segment length.
    #[must_use]
    pub const fn segment_len(&self) -> usize {
        self.segment_len
    }

    /// Which segment position `i` belongs to.
    #[must_use]
    pub const fn segment_of(&self, i: usize) -> usize {
        i / self.segment_len
    }

    /// `[start, end)` key range of segment `s` for an `n`-token input.
    #[must_use]
    pub fn segment_range(&self, s: usize, n: usize) -> (usize, usize) {
        let start = s * self.segment_len;
        (start.min(n), ((s + 1) * self.segment_len).min(n))
    }

    /// Candidate sets: each query sees exactly its own segment.
    #[must_use]
    pub fn candidates(&self, inputs: &AttentionInputs) -> (Vec<Vec<usize>>, SelectionStats) {
        let n = inputs.num_keys();
        let nq = inputs.num_queries();
        let candidates: Vec<Vec<usize>> = (0..nq)
            .map(|i| {
                let (lo, hi) = self.segment_range(self.segment_of(i.min(n - 1)), n);
                (lo..hi).collect()
            })
            .collect();
        let selected = candidates.iter().map(Vec::len).sum();
        (
            candidates,
            SelectionStats {
                total_pairs: nq * n,
                selected_pairs: selected,
                num_queries: nq,
                num_keys: n,
                fallback_queries: 0,
            },
        )
    }

    /// Forward pass (exact attention within each segment).
    #[must_use]
    pub fn forward(&self, inputs: &AttentionInputs) -> (Matrix, SelectionStats) {
        let (cands, stats) = self.candidates(inputs);
        (exact::attention_with_candidates(inputs, &cands, 1.0), stats)
    }

    /// MAC count: segments of length `L` cost `Σ 2·L_s²·d ≈ 2·n·L·d` —
    /// linear in `n` instead of quadratic, which is why the workaround is
    /// popular despite its blindness.
    #[must_use]
    pub fn ops_count(&self, n: usize, d: usize) -> u64 {
        let full = n / self.segment_len;
        let rem = n % self.segment_len;
        let l = self.segment_len as u64;
        2 * (full as u64 * l * l + (rem as u64) * (rem as u64)) * d as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsa_linalg::SeededRng;

    #[test]
    fn segment_geometry() {
        let seg = SegmentedAttention::new(8);
        assert_eq!(seg.segment_of(0), 0);
        assert_eq!(seg.segment_of(7), 0);
        assert_eq!(seg.segment_of(8), 1);
        assert_eq!(seg.segment_range(2, 20), (16, 20)); // truncated tail
    }

    #[test]
    fn candidates_stay_within_segment() {
        let seg = SegmentedAttention::new(4);
        let mut rng = SeededRng::new(1);
        let m = |rng: &mut SeededRng| Matrix::from_fn(10, 8, |_, _| rng.standard_normal() as f32);
        let inputs = AttentionInputs::new(m(&mut rng), m(&mut rng), m(&mut rng));
        let (cands, stats) = seg.candidates(&inputs);
        assert_eq!(cands[0], vec![0, 1, 2, 3]);
        assert_eq!(cands[5], vec![4, 5, 6, 7]);
        assert_eq!(cands[9], vec![8, 9]); // short tail segment
        assert_eq!(stats.selected_pairs, 4 * 4 + 4 * 4 + 2 * 2);
    }

    #[test]
    fn within_segment_attention_is_exact() {
        // If all relevance lives inside segments, segmentation is lossless.
        let seg = SegmentedAttention::new(4);
        let mut rng = SeededRng::new(2);
        let n = 8;
        let d = 16;
        let k = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let mut q = Matrix::zeros(n, d);
        for i in 0..n {
            // Attend strongly to a key in the same segment.
            let target = (i / 4) * 4 + ((i + 1) % 4);
            for c in 0..d {
                q[(i, c)] = 4.0 * k[(target, c)];
            }
        }
        let v = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let inputs = AttentionInputs::new(q, k, v);
        let (out, _) = seg.forward(&inputs);
        let exact_out = exact::attention(&inputs);
        // Cross-segment softmax tails are ~0, so outputs nearly coincide.
        assert!(exact_out.relative_frobenius_error(&out) < 0.02);
    }

    #[test]
    fn cross_segment_relations_are_lost() {
        // The §I failure: relevance planted in a *different* segment.
        let seg = SegmentedAttention::new(4);
        let mut rng = SeededRng::new(3);
        let n = 16;
        let d = 16;
        let k = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let mut q = Matrix::zeros(n, d);
        for i in 0..n {
            let target = (i + 8) % n; // two segments away
            for c in 0..d {
                q[(i, c)] = 4.0 * k[(target, c)];
            }
        }
        let v = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let inputs = AttentionInputs::new(q, k, v);
        let (out, _) = seg.forward(&inputs);
        let exact_out = exact::attention(&inputs);
        assert!(exact_out.relative_frobenius_error(&out) > 0.5);
    }

    #[test]
    fn ops_linear_in_n() {
        let seg = SegmentedAttention::new(128);
        let a = seg.ops_count(512, 64);
        let b = seg.ops_count(1024, 64);
        assert_eq!(b, 2 * a);
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn rejects_zero_segment() {
        let _ = SegmentedAttention::new(0);
    }
}
