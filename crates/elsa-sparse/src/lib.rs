//! Software sparse-attention baselines.
//!
//! §V-E of the ELSA paper argues that software-only sparse attention fails
//! to deliver wall-clock speedups at practical sequence lengths: "Reformer
//! fails to achieve any speedup for sequence length less than 2048, due to
//! its huge constant in their time complexity", and windowed/sparse schemes
//! deliver "very little speedup (e.g., 20% speedup for 2% accuracy loss)".
//! To make that comparison concrete, this crate implements the two
//! representative software schemes **as algorithms** (producing outputs and
//! attended-pair statistics comparable with ELSA's operator) plus
//! wall-clock cost models on commercial hardware:
//!
//! * [`reformer`] — LSH bucketed attention (Kitaev et al., ICLR 2020):
//!   multi-round sign-random-projection bucketing, intra-bucket attention;
//! * [`local`] — sliding-window attention with optional global tokens
//!   (the Longformer/sparse-transformer family);
//! * [`segmented`] — fixed-segment attention, the §I status-quo workaround
//!   whose cross-segment blindness motivates cheap long-range attention.
//!
//! Both reuse the exact candidate-restricted attention kernel from
//! `elsa-attention`, so quality comparisons against ELSA are apples-to-apples.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod local;
pub mod reformer;
pub mod segmented;

pub use local::LocalAttention;
pub use segmented::SegmentedAttention;
pub use reformer::{LshAttention, LshAttentionConfig};
