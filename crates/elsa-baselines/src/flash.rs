//! A FlashAttention-class streaming accelerator — the *modern exact*
//! competitor the 2021-era baseline set lacks.
//!
//! The model combines the tiled online-softmax dataflow (Dao et al. 2022)
//! with the hardware operators of the post-ELSA accelerator literature:
//! H-FA's log-domain accumulation and Low-Cost FlashAttention's fused
//! exponential-multiply units (see `PAPERS.md`; the functional units are
//! modeled in `elsa_numeric::fused`, the software-exact kernel in
//! `elsa_attention::flash`). It is held **iso-compute with ELSA and the
//! ideal accelerator**: the same 528 multipliers at 1 GHz, twelve replicated
//! units — so any speedup it shows over the naive baseline is architectural
//! (no score-matrix spill), never a bigger-chip artifact.
//!
//! Cycle accounting is the roofline of three fully-overlapped engines, fed by
//! [`elsa_attention::flops::FlashAttentionOps`] so the FLOP/byte counts can
//! never diverge from the committed `BENCH_flash.json` accounting:
//!
//! * **multiply engine** — score + weighted-sum + renormalization FLOPs over
//!   `2 × multipliers` per cycle (one MAC = 2 FLOPs);
//! * **exp engine** — one fused exp·mult per lane per cycle across
//!   [`FlashModel::exp_mult_lanes`] lanes (the fusion is what lets the exp
//!   stream match the multiply array instead of stalling behind a separate
//!   multiplier pass);
//! * **memory engine** — compulsory HBM traffic plus tile reloads over
//!   [`FlashModel::hbm_bytes_per_cycle`].
//!
//! Like ELSA and the ideal accelerator — and unlike the GPU/TPU — it skips
//! padding rows.

use elsa_attention::flops::FlashAttentionOps;

use crate::AttentionDevice;

/// Analytic model of the streaming-attention accelerator.
///
/// # Examples
///
/// ```
/// use elsa_baselines::{AttentionDevice, FlashModel, IdealAccelerator};
/// let flash = FlashModel::paper();
/// // Iso-compute with the ideal dense accelerator...
/// assert_eq!(flash.peak_flops(), IdealAccelerator::paper().peak_flops());
/// // ...but slower per invocation: exact attention pays for renormalization
/// // and exponentials that the ideal model's pure-MAC count ignores.
/// let ideal = IdealAccelerator::paper();
/// assert!(flash.attention_latency_s(512, 512, 64) >= ideal.attention_latency_s(512, 512, 64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlashModel {
    /// Number of multipliers (shared with ELSA-base: 528).
    pub multipliers: usize,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Number of replicated units (matching ELSA's batch parallelism).
    pub num_units: usize,
    /// Fused exp·mult lanes: one `e^x · y` retired per lane per cycle.
    pub exp_mult_lanes: usize,
    /// Key/query tile rows buffered on chip.
    pub tile: usize,
    /// Sustained HBM bandwidth per unit, in bytes per cycle.
    pub hbm_bytes_per_cycle: f64,
}

impl FlashModel {
    /// The iso-compute configuration used in `BENCH_flash.json`: 528
    /// multipliers at 1 GHz and twelve units (identical to
    /// [`crate::IdealAccelerator::paper`]), 16 fused exp·mult lanes, 64-row
    /// tiles, and 64 B/cycle of HBM per unit (an HBM2-class budget: 900 GB/s
    /// chip-wide ÷ 12 units ≈ 75 B/cycle at 1 GHz, rounded down to a power
    /// of two).
    #[must_use]
    pub const fn paper() -> Self {
        Self {
            multipliers: 528,
            clock_ghz: 1.0,
            num_units: 12,
            exp_mult_lanes: 16,
            tile: 64,
            hbm_bytes_per_cycle: 64.0,
        }
    }

    /// The operation/byte counts for one `n × d` self-attention invocation
    /// at this model's tile size.
    #[must_use]
    pub fn ops(&self, n: usize, d: usize) -> FlashAttentionOps {
        FlashAttentionOps::count(n, n, d, d, self.tile)
    }

    /// Cycles for one `n × d` invocation on one unit: the bottleneck of the
    /// multiply, exp, and memory engines, each rounded up to whole cycles.
    #[must_use]
    pub fn attention_cycles(&self, n: usize, d: usize) -> u64 {
        let ops = self.ops(n, d);
        let mult_flops = ops.score_flops + ops.weighted_sum_flops + ops.renorm_flops
            + ops.division_flops;
        let mult = mult_flops.div_ceil(2 * self.multipliers as u64);
        let exp = ops.exp_ops.div_ceil(self.exp_mult_lanes as u64);
        let mem = (ops.total_bytes() as f64 / self.hbm_bytes_per_cycle).ceil() as u64;
        mult.max(exp).max(mem)
    }

    /// Which engine bounds the invocation: `"multiply"`, `"exp"`, or
    /// `"memory"` — the roofline diagnosis `BENCH_flash.json` reports.
    #[must_use]
    pub fn bottleneck(&self, n: usize, d: usize) -> &'static str {
        let ops = self.ops(n, d);
        let mult_flops = ops.score_flops + ops.weighted_sum_flops + ops.renorm_flops
            + ops.division_flops;
        let mult = mult_flops.div_ceil(2 * self.multipliers as u64);
        let exp = ops.exp_ops.div_ceil(self.exp_mult_lanes as u64);
        let mem = (ops.total_bytes() as f64 / self.hbm_bytes_per_cycle).ceil() as u64;
        if mem >= mult && mem >= exp {
            "memory"
        } else if mult >= exp {
            "multiply"
        } else {
            "exp"
        }
    }
}

impl AttentionDevice for FlashModel {
    fn name(&self) -> &str {
        "FlashAttention-class accelerator"
    }

    fn attention_latency_s(&self, n_real: usize, _n_padded: usize, d: usize) -> f64 {
        self.attention_cycles(n_real, d) as f64 * 1e-9 / self.clock_ghz
    }

    fn peak_flops(&self) -> f64 {
        2.0 * self.multipliers as f64 * self.clock_ghz * 1e9 * self.num_units as f64
    }

    fn attention_throughput(&self, n_real: usize, n_padded: usize, d: usize) -> f64 {
        self.num_units as f64 / self.attention_latency_s(n_real, n_padded, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::IdealAccelerator;

    #[test]
    fn iso_compute_with_ideal() {
        assert_eq!(FlashModel::paper().peak_flops(), IdealAccelerator::paper().peak_flops());
    }

    #[test]
    fn never_faster_than_ideal_macs() {
        // The ideal model charges only the 2n²d MACs; flash charges those
        // plus exp/renorm/memory, so its cycle count dominates everywhere.
        let flash = FlashModel::paper();
        let ideal = IdealAccelerator::paper();
        for n in [16, 64, 128, 200, 512] {
            assert!(
                flash.attention_cycles(n, 64) >= ideal.attention_cycles(n, 64),
                "n={n}"
            );
        }
    }

    #[test]
    fn skips_padding() {
        let flash = FlashModel::paper();
        assert!(flash.attention_latency_s(128, 512, 64) < flash.attention_latency_s(512, 512, 64));
    }

    #[test]
    fn large_n_is_compute_bound_small_n_is_memory_bound() {
        // Streaming attention's arithmetic intensity grows with n: tiny
        // invocations are dominated by the compulsory Q/K/V transfer, large
        // ones by the n²-scaling multiply array.
        let flash = FlashModel::paper();
        assert_eq!(flash.bottleneck(16, 64), "memory");
        assert_eq!(flash.bottleneck(512, 64), "multiply");
    }

    #[test]
    fn throughput_scales_with_units() {
        let one = FlashModel { num_units: 1, ..FlashModel::paper() };
        let twelve = FlashModel::paper();
        let r = twelve.attention_throughput(512, 512, 64) / one.attention_throughput(512, 512, 64);
        assert!((r - 12.0).abs() < 1e-9);
    }

    #[test]
    fn cycles_match_roofline_by_hand() {
        let flash = FlashModel::paper();
        let ops = flash.ops(512, 64);
        let mult = (ops.score_flops + ops.weighted_sum_flops + ops.renorm_flops
            + ops.division_flops)
            .div_ceil(2 * 528);
        let exp = ops.exp_ops.div_ceil(16);
        let mem = (ops.total_bytes() as f64 / 64.0).ceil() as u64;
        assert_eq!(flash.attention_cycles(512, 64), mult.max(exp).max(mem));
    }
}
