//! Google TPUv2 cost model (§V-E, *Comparison with Google TPU*).
//!
//! The paper normalizes by peak FLOPS: TPUv2 peaks at 180 TFLOPS in bf16,
//! assumed `45 TFLOPS` FP32-equivalent (¼), and the measured
//! (peak-normalized) TPU throughput was 5.4–6.7× the GPU's on ALBERT
//! workloads. The model therefore reuses the GPU's structure with a higher
//! attention efficiency: the 128×128 systolic array runs the batched
//! attention GEMMs at a much better sustained fraction, but pads `n` to the
//! systolic tile and still executes softmax on the scalar/vector units.

use crate::AttentionDevice;

/// Analytic TPUv2 model.
///
/// # Examples
///
/// ```
/// use elsa_baselines::{AttentionDevice, TpuModel};
/// let tpu = TpuModel::v2();
/// assert!(tpu.attention_latency_s(512, 512, 64) > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TpuModel {
    /// FP32-equivalent peak throughput in FLOP/s.
    pub peak_flops: f64,
    /// Sustained fraction of (FP32-equivalent) peak on attention GEMMs.
    pub attention_efficiency: f64,
    /// Vector-unit exponential throughput in elements/s (softmax stays
    /// on-chip in scratchpad memory).
    pub exp_throughput: f64,
    /// Systolic tile the sequence length is padded to.
    pub tile: usize,
}

impl TpuModel {
    /// TPUv2 constants.
    #[must_use]
    pub fn v2() -> Self {
        Self {
            peak_flops: 45.0e12, // 180 TFLOPS bf16 / 4
            attention_efficiency: 0.75,
            exp_throughput: 2.0e12,
            tile: 128,
        }
    }

    /// Pads to the systolic tile.
    #[must_use]
    pub fn padded(&self, n: usize) -> usize {
        n.div_ceil(self.tile) * self.tile
    }
}

impl AttentionDevice for TpuModel {
    fn name(&self) -> &str {
        "Google TPUv2"
    }

    fn attention_latency_s(&self, _n_real: usize, n_padded: usize, d: usize) -> f64 {
        let n = self.padded(n_padded) as f64;
        let d = d as f64;
        let gemms = 2.0 * 2.0 * n * n * d / (self.peak_flops * self.attention_efficiency);
        // Softmax runs on the vector unit out of on-chip scratchpad.
        let softmax = n * n / self.exp_throughput;
        gemms + softmax
    }

    fn peak_flops(&self) -> f64 {
        self.peak_flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::GpuModel;

    #[test]
    fn padding_rounds_to_tile() {
        let tpu = TpuModel::v2();
        assert_eq!(tpu.padded(100), 128);
        assert_eq!(tpu.padded(512), 512);
        assert_eq!(tpu.padded(513), 640);
    }

    #[test]
    fn peak_normalized_throughput_beats_gpu(/* paper: 5.4-6.7x */) {
        let tpu = TpuModel::v2();
        let gpu = GpuModel::v100();
        // Throughput normalized by peak FLOPS (paper's iso-peak metric).
        let norm = |t: f64, peak: f64| 1.0 / (t * peak);
        let tpu_norm = norm(tpu.attention_latency_s(512, 512, 64), tpu.peak_flops());
        let gpu_norm = norm(gpu.attention_latency_s(512, 512, 64), gpu.peak_flops());
        let ratio = tpu_norm / gpu_norm;
        assert!(
            (4.0..=8.0).contains(&ratio),
            "TPU peak-normalized advantage {ratio}, paper reports 5.4-6.7"
        );
    }

    #[test]
    fn raw_latency_beats_gpu() {
        let tpu = TpuModel::v2();
        let gpu = GpuModel::v100();
        assert!(tpu.attention_latency_s(512, 512, 64) < gpu.attention_latency_s(512, 512, 64));
    }
}
