//! NVIDIA V100 GPU cost model.
//!
//! Calibration sources (all from the paper or public V100 data, fit once):
//!
//! * peak FP32 throughput 14 TFLOPS, HBM2 bandwidth 900 GB/s, TDP 250 W with
//!   the paper's observation that self-attention keeps it at ≈240 W;
//! * attention-shaped batched GEMMs (`n×64 · 64×n`) sustain a small fraction
//!   of peak on CUDA cores — the efficiency constant (15%) is set so the
//!   ELSA-base–over-GPU speedup lands inside the paper's observed 8–44×
//!   envelope given padding behaviour (44× on padding-heavy SQuAD, ~7–8×
//!   on densely-packed RACE);
//! * dense GEMMs (projections, FFN) sustain ≈45% of FP32 peak, which places
//!   Fig. 2's runtime fractions in the paper's 30–40% band at published
//!   sequence lengths;
//! * the approximate-similarity path costs ≈0.32 ns per query–key pair
//!   (XOR + popcount + table gather + multiply + compare + stream
//!   compaction: ~15 poorly-coalesced scalar instructions), which reproduces
//!   §IV-A's finding that the approximation is a ≈3.14× *slowdown* on GPU.

use elsa_attention::flops::LayerFlops;
use elsa_attention::TransformerConfig;

use crate::AttentionDevice;

/// Analytic V100 model.
///
/// # Examples
///
/// ```
/// use elsa_baselines::{AttentionDevice, GpuModel};
/// let gpu = GpuModel::v100();
/// // Padding hurts: a 128-token input on a 512-padded kernel costs the same
/// // as a 512-token input.
/// let t_small = gpu.attention_latency_s(128, 512, 64);
/// let t_full = gpu.attention_latency_s(512, 512, 64);
/// assert_eq!(t_small, t_full);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuModel {
    /// Peak FP32 throughput in FLOP/s.
    pub peak_flops: f64,
    /// HBM bandwidth in bytes/s.
    pub mem_bandwidth: f64,
    /// Sustained fraction of peak on attention-shaped batched GEMMs.
    pub attention_gemm_efficiency: f64,
    /// Sustained fraction of peak on large dense GEMMs (projections / FFN).
    pub dense_gemm_efficiency: f64,
    /// Fixed kernel-launch overhead in seconds, amortized over the batch.
    pub kernel_overhead_s: f64,
    /// Effective batch size over which launch overheads amortize.
    pub batch: f64,
    /// Seconds per query–key pair for the approximate-similarity kernel.
    pub approx_pair_cost_s: f64,
    /// Sustained fraction of peak on gather-based sparse attention.
    pub gather_efficiency: f64,
    /// Measured power draw while running self-attention, in watts.
    pub power_w: f64,
}

impl GpuModel {
    /// The V100 configuration used in the paper's evaluation.
    #[must_use]
    pub fn v100() -> Self {
        Self {
            peak_flops: 14.0e12,
            mem_bandwidth: 900.0e9,
            attention_gemm_efficiency: 0.15,
            dense_gemm_efficiency: 0.45,
            kernel_overhead_s: 5.0e-6,
            batch: 16.0,
            approx_pair_cost_s: 0.32e-9,
            gather_efficiency: 0.06,
            power_w: 240.0,
        }
    }

    /// Time for the three attention kernels of one head at padded size `n`:
    /// `QKᵀ` GEMM, softmax (memory-bound), `S′V` GEMM.
    #[must_use]
    pub fn attention_kernel_time_s(&self, n_padded: usize, d: usize) -> f64 {
        let n = n_padded as f64;
        let d = d as f64;
        let gemm_flops = 2.0 * n * n * d; // one of the two GEMMs
        let gemm_t = gemm_flops / (self.peak_flops * self.attention_gemm_efficiency);
        // Softmax reads and writes the n×n score matrix (fp32) plus an
        // exponential per element; it is bandwidth-bound on V100.
        let softmax_bytes = 3.0 * n * n * 4.0;
        let softmax_t = (softmax_bytes / self.mem_bandwidth).max(n * n / self.peak_flops);
        let overhead = 3.0 * self.kernel_overhead_s / self.batch;
        2.0 * gemm_t + softmax_t + overhead
    }

    /// Time for ELSA's *approximation algorithm executed on the GPU*
    /// (§IV-A): hashing, per-pair approximate similarity, and gather-based
    /// attention over the surviving `avg_candidates` keys per query.
    #[must_use]
    pub fn approx_attention_time_s(&self, n_real: usize, d: usize, avg_candidates: f64) -> f64 {
        let n = n_real as f64;
        let d_f = d as f64;
        // Hashing all keys and queries: 2·n·k·d MACs at dense-GEMM rates.
        let k = d_f; // k = d configuration
        let hash_t = 2.0 * 2.0 * n * k * d_f / (self.peak_flops * self.dense_gemm_efficiency);
        // Per-pair similarity: scalar XOR/popcount/gather path.
        let sim_t = n * n * self.approx_pair_cost_s;
        // Sparse attention over selected candidates: irregular gathers.
        let attn_t = 2.0 * 2.0 * avg_candidates * n * d_f
            / (self.peak_flops * self.gather_efficiency);
        let overhead = 8.0 * self.kernel_overhead_s / self.batch;
        hash_t + sim_t + attn_t + overhead
    }

    /// Time for the non-attention parts of one transformer layer (QKV/output
    /// projections + FFN + elementwise) at sequence length `n`.
    #[must_use]
    pub fn non_attention_layer_time_s(&self, config: &TransformerConfig, n_padded: usize) -> f64 {
        let flops = LayerFlops::for_layer(config, n_padded);
        let gemm = flops.non_attention() as f64 - flops.other as f64;
        let elementwise_bytes = flops.other as f64 * 2.0; // rough: 2 B/FLOP
        gemm / (self.peak_flops * self.dense_gemm_efficiency)
            + elementwise_bytes / self.mem_bandwidth
            + 6.0 * self.kernel_overhead_s / self.batch
    }

    /// Full-layer time (all heads) at padded length `n_padded`.
    #[must_use]
    pub fn layer_time_s(&self, config: &TransformerConfig, n_padded: usize) -> f64 {
        self.attention_kernel_time_s(n_padded, config.d_head()) * config.num_heads as f64
            + self.non_attention_layer_time_s(config, n_padded)
    }

    /// Fraction of model runtime spent in self-attention (Fig. 2's bars).
    #[must_use]
    pub fn attention_runtime_fraction(&self, config: &TransformerConfig, n_padded: usize) -> f64 {
        let att = self.attention_kernel_time_s(n_padded, config.d_head()) * config.num_heads as f64;
        att / self.layer_time_s(config, n_padded)
    }

    /// Time to sort every column of an `n × d` key matrix on the GPU — the
    /// host-side preprocessing the A³ accelerator requires (§V-E).
    #[must_use]
    pub fn column_sort_time_s(&self, n: usize, d: usize) -> f64 {
        // Segmented radix sort sustains roughly 2×10^10 elements/s on V100;
        // d segments of n keys plus index payloads.
        let elems = (n * d) as f64;
        elems * (n as f64).log2() / 2.0e10 + self.kernel_overhead_s
    }

    /// Energy for one attention invocation in joules.
    #[must_use]
    pub fn attention_energy_j(&self, n_padded: usize, d: usize) -> f64 {
        self.attention_kernel_time_s(n_padded, d) * self.power_w
    }
}

impl AttentionDevice for GpuModel {
    fn name(&self) -> &str {
        "NVIDIA V100"
    }

    fn attention_latency_s(&self, _n_real: usize, n_padded: usize, d: usize) -> f64 {
        // The GPU pays for padded rows regardless of real occupancy.
        self.attention_kernel_time_s(n_padded, d)
    }

    fn peak_flops(&self) -> f64 {
        self.peak_flops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attention_time_scales_quadratically() {
        let gpu = GpuModel::v100();
        let t512 = gpu.attention_kernel_time_s(512, 64);
        let t1024 = gpu.attention_kernel_time_s(1024, 64);
        let ratio = t1024 / t512;
        assert!((3.5..=4.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn approx_on_gpu_is_slower_than_exact(/* §IV-A: 3.14x slowdown */) {
        let gpu = GpuModel::v100();
        let n = 512;
        let exact = gpu.attention_kernel_time_s(n, 64);
        let approx = gpu.approx_attention_time_s(n, 64, 0.35 * n as f64);
        let slowdown = approx / exact;
        assert!(
            (2.5..=4.0).contains(&slowdown),
            "approximation-on-GPU slowdown {slowdown}, paper reports 3.14"
        );
    }

    #[test]
    fn fig2_fraction_in_paper_band() {
        let gpu = GpuModel::v100();
        let bert = TransformerConfig::new(24, 1024, 16, 4096, 512);
        let frac = gpu.attention_runtime_fraction(&bert, 512);
        assert!((0.15..=0.45).contains(&frac), "attention fraction {frac}");
        // 4x longer input: portion grows towards the paper's ~64%.
        let frac4 = gpu.attention_runtime_fraction(&bert, 2048);
        assert!(frac4 > 0.45, "fraction at 4x = {frac4}");
        // FFN/4 at published n: portion grows markedly (paper: ~73% with both).
        let slim = bert.with_ffn_scaled(0.25);
        let frac_slim4 = gpu.attention_runtime_fraction(&slim, 2048);
        assert!(frac_slim4 > frac4);
    }

    #[test]
    fn padding_dominates_short_inputs() {
        let gpu = GpuModel::v100();
        // Latency identical regardless of real token count.
        assert_eq!(
            gpu.attention_latency_s(100, 512, 64),
            gpu.attention_latency_s(512, 512, 64)
        );
    }

    #[test]
    fn column_sort_nontrivial_versus_attention() {
        let gpu = GpuModel::v100();
        let sort = gpu.column_sort_time_s(512, 64);
        assert!(sort > 0.0);
        // Sorting 64 columns of 512 keys costs a noticeable fraction of the
        // attention kernel itself — the A³ preprocessing problem.
        let att = gpu.attention_kernel_time_s(512, 64);
        assert!(sort > att * 0.1, "sort {sort} vs attention {att}");
    }

    #[test]
    fn energy_uses_measured_power() {
        let gpu = GpuModel::v100();
        let e = gpu.attention_energy_j(512, 64);
        assert!((e - gpu.attention_kernel_time_s(512, 64) * 240.0).abs() < 1e-12);
    }
}
