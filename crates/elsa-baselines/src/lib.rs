//! Baseline device models for the ELSA evaluation (§V).
//!
//! The paper compares ELSA against an NVIDIA V100 GPU, an *ideal* dense
//! accelerator (100%-utilized multipliers, no approximation), the A³
//! attention accelerator (HPCA 2020), and Google's TPUv2. This crate adds a
//! post-publication competitor the 2021 baseline set lacks: a
//! FlashAttention-class streaming accelerator ([`FlashModel`]) with fused
//! exp·mult units and tiled online softmax, held iso-compute with ELSA. None of that
//! hardware is available here, so each device is an **analytic cost model**:
//! peak throughput × kernel-level efficiency, with memory-bandwidth and
//! kernel-launch terms where they matter. Efficiency constants are fit once,
//! to the *published* characteristics of each device on attention-shaped
//! kernels (see each module's docs), and then every experiment reads from
//! the same model — no per-figure tuning.
//!
//! All models report **latency in seconds for one self-attention invocation**
//! (one `n × d` head) plus batched-throughput helpers, so the Fig. 11
//! comparisons are apples-to-apples with the cycle-level ELSA simulator.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod a3;
pub mod flash;
pub mod gpu;
pub mod ideal;
pub mod tpu;

pub use a3::A3Model;
pub use flash::FlashModel;
pub use gpu::GpuModel;
pub use ideal::IdealAccelerator;
pub use tpu::TpuModel;

/// A device that can run the self-attention kernel — the common interface
/// the benchmark harness tabulates.
pub trait AttentionDevice {
    /// Human-readable device name.
    fn name(&self) -> &str;

    /// Latency in seconds for one self-attention invocation of `n_real`
    /// actual entities on hardware that processes `n_padded` rows
    /// (GPU/TPU implementations pad; accelerators do not).
    fn attention_latency_s(&self, n_real: usize, n_padded: usize, d: usize) -> f64;

    /// Peak arithmetic throughput in FLOP/s (FP32-equivalent), used for the
    /// paper's iso-peak-FLOPS normalization.
    fn peak_flops(&self) -> f64;

    /// Invocations per second given a batch of identical invocations
    /// (default: simple reciprocal of latency; devices with batch
    /// parallelism override).
    fn attention_throughput(&self, n_real: usize, n_padded: usize, d: usize) -> f64 {
        1.0 / self.attention_latency_s(n_real, n_padded, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trait_objects_work() {
        let devices: Vec<Box<dyn AttentionDevice>> = vec![
            Box::new(GpuModel::v100()),
            Box::new(IdealAccelerator::paper()),
            Box::new(TpuModel::v2()),
            Box::new(FlashModel::paper()),
        ];
        for d in &devices {
            let t = d.attention_latency_s(512, 512, 64);
            assert!(t > 0.0, "{} latency {t}", d.name());
            assert!(d.peak_flops() > 0.0);
        }
    }
}
