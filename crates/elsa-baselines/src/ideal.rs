//! The *ideal* dense accelerator of §V-C.
//!
//! "We compare ELSA configurations with an ideal accelerator, which can
//! sustain 100% peak FP throughput at 1 GHz frequency, while having the same
//! number (i.e., 528) of multipliers with the ELSA-base accelerator. This is
//! effectively an upper-bound of performance for the other matrix
//! multiplication accelerators *without* approximation."
//!
//! Like ELSA (and unlike the GPU), the ideal accelerator skips padding rows.

use crate::AttentionDevice;

/// An accelerator that retires one MAC per multiplier per cycle, always.
///
/// # Examples
///
/// ```
/// use elsa_baselines::{AttentionDevice, IdealAccelerator};
/// let ideal = IdealAccelerator::paper();
/// // 2·n²·d MACs over 528 multipliers at 1 GHz (rounded up to whole cycles).
/// let t = ideal.attention_latency_s(512, 512, 64);
/// let cycles = (2u64 * 512 * 512 * 64).div_ceil(528);
/// assert!((t - cycles as f64 * 1e-9).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdealAccelerator {
    /// Number of multipliers.
    pub multipliers: usize,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Number of replicated units (matching ELSA's batch parallelism).
    pub num_units: usize,
}

impl IdealAccelerator {
    /// The paper's configuration: 528 multipliers at 1 GHz, twelve units.
    #[must_use]
    pub const fn paper() -> Self {
        Self { multipliers: 528, clock_ghz: 1.0, num_units: 12 }
    }

    /// Cycles for one `n × d` attention invocation:
    /// `2·n²·d` MACs spread perfectly over the multipliers.
    #[must_use]
    pub fn attention_cycles(&self, n: usize, d: usize) -> u64 {
        let macs = 2 * (n as u64) * (n as u64) * (d as u64);
        macs.div_ceil(self.multipliers as u64)
    }
}

impl AttentionDevice for IdealAccelerator {
    fn name(&self) -> &str {
        "Ideal accelerator"
    }

    fn attention_latency_s(&self, n_real: usize, _n_padded: usize, d: usize) -> f64 {
        self.attention_cycles(n_real, d) as f64 * 1e-9 / self.clock_ghz
    }

    fn peak_flops(&self) -> f64 {
        2.0 * self.multipliers as f64 * self.clock_ghz * 1e9 * self.num_units as f64
    }

    fn attention_throughput(&self, n_real: usize, n_padded: usize, d: usize) -> f64 {
        self.num_units as f64 / self.attention_latency_s(n_real, n_padded, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_formula() {
        let ideal = IdealAccelerator::paper();
        assert_eq!(ideal.attention_cycles(512, 64), (2 * 512 * 512 * 64u64).div_ceil(528));
    }

    #[test]
    fn skips_padding() {
        let ideal = IdealAccelerator::paper();
        assert!(ideal.attention_latency_s(128, 512, 64) < ideal.attention_latency_s(512, 512, 64));
    }

    #[test]
    fn peak_close_to_thirteen_tops() {
        let ideal = IdealAccelerator::paper();
        let tops = ideal.peak_flops() / 1e12;
        assert!((12.0..=13.5).contains(&tops), "{tops}");
    }

    #[test]
    fn throughput_scales_with_units() {
        let one = IdealAccelerator { num_units: 1, ..IdealAccelerator::paper() };
        let twelve = IdealAccelerator::paper();
        let r = twelve.attention_throughput(512, 512, 64) / one.attention_throughput(512, 512, 64);
        assert!((r - 12.0).abs() < 1e-9);
    }
}
