//! Model of the A³ attention accelerator (Ham et al., HPCA 2020) — §V-E.
//!
//! A³ also approximates attention, but with a different scheme whose two
//! structural limitations the paper calls out:
//!
//! 1. **Expensive preprocessing** — every column of the key matrix must be
//!    sorted, on external hardware (the host GPU). The sort time is fixed
//!    per invocation, so as A³ accelerators are replicated the execution
//!    time shrinks while preprocessing does not, and it comes to dominate.
//!    It also needs storage for the sorted copy (2× the key matrix).
//! 2. **Serial candidate selection** — the approximation examines sorted
//!    columns and can emit at most two candidate keys per cycle (often
//!    fewer), and the process cannot be parallelized, capping the achievable
//!    candidate-side throughput and ruling out multiple parallel attention
//!    computation modules.
//!
//! The quantitative anchor from the paper: on BERT/SQuADv1.1, A³'s
//! approximation buys **1.85×** over its own no-approximation baseline at
//! 1.3% accuracy loss (versus ELSA-conservative/moderate's 2.76×/3.72× at
//! <1%/<2.5% loss).

use crate::gpu::GpuModel;

/// Analytic A³ model.
///
/// # Examples
///
/// ```
/// use elsa_baselines::A3Model;
/// let a3 = A3Model::paper();
/// let base = a3.base_execution_cycles(512);
/// let approx = a3.approx_execution_cycles(512);
/// assert!((base as f64 / approx as f64 - 1.85).abs() < 0.05);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct A3Model {
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Average candidate keys emitted per cycle by the selection stage
    /// (bounded above by 2, often lower).
    pub selection_keys_per_cycle: f64,
    /// Candidate reduction A³'s scheme achieves at ≈1.3% accuracy loss
    /// (`c = n / iso_accuracy_reduction`).
    pub iso_accuracy_reduction: f64,
    /// Host model used for the column-sort preprocessing.
    pub host: GpuModel,
}

impl A3Model {
    /// The configuration reflecting the published A³ results.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            clock_ghz: 1.0,
            selection_keys_per_cycle: 1.5,
            iso_accuracy_reduction: 1.85,
            host: GpuModel::v100(),
        }
    }

    /// Execution cycles without approximation: the single attention pipeline
    /// consumes one key per cycle per query (`n²` cycles).
    #[must_use]
    pub fn base_execution_cycles(&self, n: usize) -> u64 {
        (n as u64) * (n as u64)
    }

    /// Execution cycles with A³'s approximation at iso-accuracy: the
    /// candidate count per query drops to `n / iso_accuracy_reduction`, and
    /// the serial selection stage must also emit those candidates at
    /// `selection_keys_per_cycle`.
    #[must_use]
    pub fn approx_execution_cycles(&self, n: usize) -> u64 {
        let c = n as f64 / self.iso_accuracy_reduction;
        let attention = c; // one candidate per cycle
        let selection = c / self.selection_keys_per_cycle;
        ((n as f64) * attention.max(selection)).round() as u64
    }

    /// Host preprocessing time (sorting all `d` key columns) in seconds.
    #[must_use]
    pub fn preprocessing_time_s(&self, n: usize, d: usize) -> f64 {
        self.host.column_sort_time_s(n, d)
    }

    /// End-to-end time for one invocation with `units` replicated A³
    /// accelerators: execution parallelizes, preprocessing does not.
    #[must_use]
    pub fn total_time_s(&self, n: usize, d: usize, units: usize, approx: bool) -> f64 {
        let cycles = if approx {
            self.approx_execution_cycles(n)
        } else {
            self.base_execution_cycles(n)
        };
        let exec = cycles as f64 * 1e-9 / self.clock_ghz / units as f64;
        self.preprocessing_time_s(n, d) + exec
    }

    /// Extra on-chip storage factor the sorted key copy requires
    /// (the paper: "twice larger than the original key matrix").
    #[must_use]
    pub fn preprocessing_storage_factor(&self) -> f64 {
        2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso_accuracy_speedup_is_1_85() {
        let a3 = A3Model::paper();
        let s = a3.base_execution_cycles(512) as f64 / a3.approx_execution_cycles(512) as f64;
        assert!((s - 1.85).abs() < 0.02, "A3 approximation speedup {s}");
    }

    #[test]
    fn preprocessing_dominates_with_many_units(/* §V-E limitation 1 */) {
        let a3 = A3Model::paper();
        let n = 512;
        let one = a3.total_time_s(n, 64, 1, true);
        let twelve = a3.total_time_s(n, 64, 12, true);
        let pre = a3.preprocessing_time_s(n, 64);
        // With 12 units the preprocessing is the majority of total time.
        assert!(pre / twelve > 0.5, "preprocessing share {}", pre / twelve);
        // And scaling units 12x buys far less than 12x.
        assert!(one / twelve < 6.0, "scaling efficiency {}", one / twelve);
    }

    #[test]
    fn selection_rate_caps_speedup() {
        // If the scheme tried to reduce candidates 4x, the serial selection
        // stage (<= 2/cycle) would still bound per-query time.
        let mut a3 = A3Model::paper();
        a3.iso_accuracy_reduction = 8.0;
        a3.selection_keys_per_cycle = 1.0;
        let s = a3.base_execution_cycles(512) as f64 / a3.approx_execution_cycles(512) as f64;
        assert!(s <= 8.0 + 1e-9);
        // Selection at 1/cycle with c = n/8 takes c cycles: same as attention,
        // so the cap binds through the max().
        assert!((s - 8.0).abs() < 0.05);
    }

    #[test]
    fn storage_overhead_factor() {
        assert_eq!(A3Model::paper().preprocessing_storage_factor(), 2.0);
    }
}
