//! **Ablation / §IV-D** — pipeline parameter sweep: which stage bottlenecks
//! per-query throughput as `P_c`, `m_h`, `m_o` vary, at different candidate
//! densities. Reproduces the design rule that every non-attention stage must
//! stay under the attention module's per-query time.
//!
//! Run: `cargo run --release -p elsa-bench --bin ablation_pipeline`

use elsa_bench::table::{fmt, Table};
use elsa_sim::cycle::simulate_execution;
use elsa_sim::AcceleratorConfig;

/// Evenly spread candidate sets with the given per-query count.
fn candidates(n: usize, c: usize) -> Vec<Vec<usize>> {
    let step = (n / c.max(1)).max(1);
    let one: Vec<usize> = (0..c).map(|i| (i * step) % n).collect();
    vec![one; n]
}

fn main() {
    let n = 512;
    println!("Ablation — pipeline configuration sweep (n = 512, d = 64)\n");
    let mut table = Table::new(&[
        "P_a", "P_c", "m_h", "m_o", "candidates/query",
        "cycles/query", "bottleneck",
    ]);
    let sweeps: Vec<AcceleratorConfig> = vec![
        AcceleratorConfig::paper(),
        AcceleratorConfig { p_c: 2, ..AcceleratorConfig::paper() },
        AcceleratorConfig { p_c: 16, ..AcceleratorConfig::paper() },
        AcceleratorConfig { m_h: 64, ..AcceleratorConfig::paper() },
        AcceleratorConfig { m_o: 4, ..AcceleratorConfig::paper() },
        AcceleratorConfig::single_pipeline(),
    ];
    for cfg in &sweeps {
        for c in [16usize, 64, 256] {
            let report = simulate_execution(cfg, n, &candidates(n, c), false);
            let per_query = report.execution as f64 / n as f64;
            let names = ["hash", "selection scan", "attention", "division"];
            let dominant = report
                .bottleneck_counts
                .iter()
                .enumerate()
                .max_by_key(|(_, &v)| v)
                .map(|(i, _)| names[i])
                .expect("four stages");
            table.row(&[
                cfg.p_a.to_string(),
                cfg.p_c.to_string(),
                cfg.m_h.to_string(),
                cfg.m_o.to_string(),
                c.to_string(),
                fmt(per_query, 1),
                dominant.to_string(),
            ]);
        }
    }
    table.print();
    println!(
        "\npaper's rule: keep 3d^(4/3)/m_h, n/(P_a·P_c) and d/m_o all below the\nattention module's c cycles — otherwise aggressive approximation is wasted\n(the paper notes moderate/aggressive runs can bottleneck on selection)"
    );
}
