//! **Ablation / §III-E motivation** — threshold-based candidate selection
//! (ELSA) versus an oracle top-k over the *approximate* similarities with
//! the same average candidate budget. Top-k needs an `n log n` sort the
//! hardware cannot stream; the question is how much quality the threshold
//! gives up for its O(1)-per-key implementability.
//!
//! Run: `cargo run --release -p elsa-bench --bin ablation_topk`

use elsa_attention::exact::{self, AttentionInputs};
use elsa_bench::table::{fmt, Table};
use elsa_core::attention::{ElsaAttention, ElsaParams, PreprocessedKeys};
use elsa_linalg::{Matrix, SeededRng};
use elsa_workloads::tasks::ClassificationProbe;
use elsa_workloads::AttentionPatternConfig;

/// Top-k selection over approximate similarities, same budget per query.
fn topk_candidates(operator: &ElsaAttention, inputs: &AttentionInputs, k: usize) -> Vec<Vec<usize>> {
    let pre = PreprocessedKeys::compute(operator.params(), inputs.key());
    let lut = operator.params().lut();
    let hasher = operator.params().hasher();
    (0..inputs.num_queries())
        .map(|i| {
            let qh = hasher.hash(inputs.query().row(i));
            let mut sims: Vec<(usize, f64)> = pre
                .hashes()
                .iter()
                .zip(pre.norms())
                .enumerate()
                .map(|(j, (h, &norm))| (j, lut.similarity(&qh, h, norm)))
                .collect();
            sims.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite similarity"));
            sims.truncate(k.max(1));
            sims.into_iter().map(|(j, _)| j).collect()
        })
        .collect()
}

fn main() {
    let d = 64;
    let n = 256;
    let mut rng = SeededRng::new(14);
    let cfg = AttentionPatternConfig::new(n, d, 6, 2.0);
    let train = cfg.generate_batch(2, &mut rng);
    let test = cfg.generate_batch(3, &mut rng);
    let probe = ClassificationProbe::new(16, d, &mut rng);
    println!("Ablation — learned threshold vs top-k selection (equal budget)\n");
    let mut table = Table::new(&[
        "p",
        "threshold metric (%)",
        "budget (cand/query)",
        "top-k metric (%)",
        "gap (pp)",
    ]);
    for p in [0.5, 1.0, 2.0, 4.0] {
        let mut rng2 = SeededRng::new(15);
        let params = ElsaParams::for_dims(d, d, &mut rng2);
        let operator = ElsaAttention::learn(params, &train, p);
        let mut thr_metric = 0.0;
        let mut topk_metric = 0.0;
        let mut budget = 0.0;
        for inputs in &test {
            let exact_out = exact::attention(inputs);
            let (thr_out, stats) = operator.forward(inputs);
            let k = stats.avg_candidates_per_query().round().max(1.0) as usize;
            budget += k as f64;
            let cands = topk_candidates(&operator, inputs, k);
            let topk_out: Matrix = exact::attention_with_candidates(inputs, &cands, 1.0);
            thr_metric += probe.agreement(&exact_out, &thr_out);
            topk_metric += probe.agreement(&exact_out, &topk_out);
        }
        let count = test.len() as f64;
        table.row(&[
            fmt(p, 1),
            fmt(thr_metric / count * 100.0, 2),
            fmt(budget / count, 1),
            fmt(topk_metric / count * 100.0, 2),
            fmt((topk_metric - thr_metric) / count * 100.0, 2),
        ]);
    }
    table.print();
    println!(
        "\nthe threshold trades a small quality gap for a streaming, sort-free\nimplementation (one compare per key per cycle, §III-E's motivation)"
    );
}
