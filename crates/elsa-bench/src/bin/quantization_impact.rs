//! **E11 / §IV-E** — impact of the hardware number representations
//! (9-bit fixed-point inputs, 6-bit hash matrices, LUT exp/recip/sqrt,
//! 16-bit custom float) on the end metric, versus the FP32 software
//! implementation of the same approximation. The paper reports < 0.2%.
//!
//! Run: `cargo run --release -p elsa-bench --bin quantization_impact`

use elsa_bench::harness::{generate_split, HarnessOptions};
use elsa_bench::table::{fmt, Table};
use elsa_core::attention::{ElsaAttention, ElsaParams};
use elsa_linalg::SeededRng;
use elsa_sim::functional::QuantizedElsaAttention;
use elsa_workloads::tasks::ClassificationProbe;
use elsa_workloads::Workload;

fn main() {
    let opts = HarnessOptions::default();
    println!("§IV-E — metric impact of the quantized datapath (vs FP32 approximation)\n");
    let mut table = Table::new(&[
        "workload",
        "FP32 metric (%)",
        "quantized metric (%)",
        "impact (pp)",
    ]);
    let mut worst: f64 = 0.0;
    for workload in Workload::all() {
        let (train, test) = generate_split(&workload, &opts);
        let mut rng = SeededRng::new(opts.seed ^ 0xE15A);
        let params = ElsaParams::for_dims(64, 64, &mut rng);
        let operator = ElsaAttention::learn(params, &train, 1.0);
        let quant = QuantizedElsaAttention::from_reference(&operator);
        let probe = (workload.probe_classes() >= 2)
            .then(|| ClassificationProbe::new(workload.probe_classes(), 64, &mut rng));
        let mut m_f32 = 0.0;
        let mut m_quant = 0.0;
        for inputs in &test {
            let exact = elsa_attention::exact::attention(inputs);
            let (f32_out, _) = operator.forward(inputs);
            let (q_out, _) = quant.forward(inputs);
            match &probe {
                Some(probe) => {
                    m_f32 += probe.agreement(&exact, &f32_out);
                    m_quant += probe.agreement(&exact, &q_out);
                }
                None => {
                    m_f32 += elsa_workloads::tasks::ndcg_at_k(&exact, &f32_out, inputs.value(), 10);
                    m_quant += elsa_workloads::tasks::ndcg_at_k(&exact, &q_out, inputs.value(), 10);
                }
            }
        }
        let count = test.len() as f64;
        let impact = (m_f32 - m_quant) / count * 100.0;
        worst = worst.max(impact.abs());
        table.row(&[
            workload.name(),
            fmt(m_f32 / count * 100.0, 2),
            fmt(m_quant / count * 100.0, 2),
            fmt(impact, 2),
        ]);
    }
    table.print();
    println!("\nworst-case absolute metric impact: {worst:.2} pp (paper: < 0.2%)");
}
