//! **Protocol bridge for E2/E11** — accuracy loss measured at the top of a
//! *deep* transformer stack instead of a single attention layer.
//!
//! The paper's sub-1%-loss numbers are end-to-end task metrics of 24-layer
//! models; our per-layer proxies are strictly harsher. This experiment
//! stacks real transformer layers (residuals + layer norms included), runs
//! every attention sub-layer through calibrated ELSA operators, and shows
//! how the measured loss shrinks as depth grows — closing most of the gap
//! between the single-layer proxy and the paper's protocol.
//!
//! Run: `cargo run --release -p elsa-bench --bin deep_accuracy`

use elsa_attention::TransformerConfig;
use elsa_bench::table::{fmt, Table};
use elsa_linalg::{Matrix, SeededRng};
use elsa_runtime::DeepProxyModel;
use elsa_workloads::tasks::ClassificationProbe;

fn clustered_input(n: usize, d_model: usize, rng: &mut SeededRng) -> Matrix {
    let clusters = 8;
    let centers = Matrix::from_fn(clusters, d_model, |_, _| (rng.standard_normal() * 3.0) as f32);
    Matrix::from_fn(n, d_model, |r, c| {
        centers[(r % clusters, c)] + 0.3 * rng.standard_normal() as f32
    })
}

fn main() {
    let d_model = 128;
    let n = 64;
    let trials = 4;
    println!("deep-stack accuracy: proxy loss vs model depth (p = 1, n = {n})\n");
    let mut table = Table::new(&[
        "layers",
        "probe agreement (%)",
        "loss (pp)",
        "candidates (%)",
    ]);
    for depth in [1usize, 2, 4, 8] {
        let mut rng = SeededRng::new(60 + depth as u64);
        let model = DeepProxyModel::random_symmetric(
            TransformerConfig::new(depth, d_model, 2, 256, n),
            3.0,
            &mut rng,
        );
        let cal: Vec<Matrix> = (0..2).map(|_| clustered_input(n, d_model, &mut rng)).collect();
        let ops = model.calibrate(&cal, 1.0, &mut rng);
        let probe = ClassificationProbe::new(8, d_model, &mut rng);
        let mut agreement = 0.0;
        let mut cand = 0.0;
        for _ in 0..trials {
            let x = clustered_input(n, d_model, &mut rng);
            let exact_out = model.forward_exact(&x);
            let (approx_out, stats) = model.forward_approx(&x, &ops);
            agreement += probe.agreement(&exact_out, &approx_out);
            cand += stats.candidate_fraction();
        }
        agreement /= trials as f64;
        cand /= trials as f64;
        table.row(&[
            depth.to_string(),
            fmt(agreement * 100.0, 2),
            fmt((1.0 - agreement) * 100.0, 2),
            fmt(cand * 100.0, 1),
        ]);
    }
    table.print();
    println!(
        "\nresidual streams and layer norms absorb per-layer attention noise, which\nis why the paper's end-to-end metrics tolerate approximation that looks\nlossier under a single-layer probe (EXPERIMENTS.md E2/E11 discussion)"
    );
}
