//! **E1 / Fig. 2** — portion of GPU runtime spent in the self-attention
//! mechanism, per model, at the published sequence length and at 4× length,
//! with the published FFN width and with FFN/4 (the Lite-Transformer
//! variant).
//!
//! Run: `cargo run --release -p elsa-bench --bin fig02_runtime_portion`

use elsa_baselines::GpuModel;
use elsa_bench::table::{fmt, Table};
use elsa_workloads::ModelKind;

fn main() {
    let gpu = GpuModel::v100();
    println!("Fig. 2 — self-attention share of GPU model runtime\n");
    let mut table = Table::new(&[
        "model",
        "n",
        "attention % (FFN 1x)",
        "attention % (FFN 1/4x)",
        "attention % (4x seq)",
        "attention % (4x seq, FFN 1/4x)",
    ]);
    let mut sums = [0.0f64; 4];
    for model in ModelKind::all() {
        let cfg = model.config();
        let n = cfg.max_seq_len;
        let slim = cfg.with_ffn_scaled(0.25);
        let fracs = [
            gpu.attention_runtime_fraction(&cfg, n),
            gpu.attention_runtime_fraction(&slim, n),
            gpu.attention_runtime_fraction(&cfg, 4 * n),
            gpu.attention_runtime_fraction(&slim, 4 * n),
        ];
        for (s, f) in sums.iter_mut().zip(fracs) {
            *s += f;
        }
        table.row(&[
            model.name().to_string(),
            n.to_string(),
            fmt(fracs[0] * 100.0, 1),
            fmt(fracs[1] * 100.0, 1),
            fmt(fracs[2] * 100.0, 1),
            fmt(fracs[3] * 100.0, 1),
        ]);
    }
    let count = ModelKind::all().len() as f64;
    table.row(&[
        "AVERAGE".into(),
        "-".into(),
        fmt(sums[0] / count * 100.0, 1),
        fmt(sums[1] / count * 100.0, 1),
        fmt(sums[2] / count * 100.0, 1),
        fmt(sums[3] / count * 100.0, 1),
    ]);
    table.print();
    println!(
        "\npaper: ~38% average at published n; ~64% at 4x n; ~73% with 4x n and FFN/4"
    );
}
