//! **Ablation / §IV-C** — selection-queue depth and arbitration policy:
//! the detailed per-module-queue model versus the coarse bank model, and
//! longest-queue-first versus round-robin arbitration.
//!
//! Run: `cargo run --release -p elsa-bench --bin ablation_arbiter`

use elsa_bench::table::Table;
use elsa_linalg::SeededRng;
use elsa_sim::arbiter::{simulate_bank_drain_queued, ArbiterPolicy};
use elsa_sim::cycle::simulate_bank_drain;

fn main() {
    let p_c = 8;
    let bank_keys = 128;
    let mut rng = SeededRng::new(40);
    println!("Ablation — selection output queues and arbitration (one bank, P_c = 8, 128 keys)\n");
    let mut table = Table::new(&[
        "candidate pattern",
        "coarse model",
        "LQF depth=inf",
        "LQF depth=2",
        "LQF depth=1",
        "RR depth=2",
        "stalls (LQF d=1)",
    ]);
    let patterns: Vec<(&str, Vec<usize>)> = vec![
        ("dense (all keys)", (0..bank_keys).collect()),
        ("uniform 25%", (0..bank_keys).step_by(4).collect()),
        ("uniform 6%", (0..bank_keys).step_by(16).collect()),
        ("burst at end", (112..bank_keys).collect()),
        ("single module hot", (0..16).map(|i| i * 8).collect()), // module 0's stripe
        ("random 25%", {
            let mut v = rng.sample_indices(bank_keys, 32);
            v.sort_unstable();
            v
        }),
    ];
    for (name, positions) in &patterns {
        let coarse = simulate_bank_drain(p_c, bank_keys, positions);
        let deep = simulate_bank_drain_queued(
            p_c,
            bank_keys,
            positions,
            1 << 16,
            ArbiterPolicy::LongestQueueFirst,
        );
        let d2 =
            simulate_bank_drain_queued(p_c, bank_keys, positions, 2, ArbiterPolicy::LongestQueueFirst);
        let d1 =
            simulate_bank_drain_queued(p_c, bank_keys, positions, 1, ArbiterPolicy::LongestQueueFirst);
        let rr2 = simulate_bank_drain_queued(p_c, bank_keys, positions, 2, ArbiterPolicy::RoundRobin);
        table.row(&[
            (*name).to_string(),
            coarse.to_string(),
            deep.finish_cycle.to_string(),
            d2.finish_cycle.to_string(),
            d1.finish_cycle.to_string(),
            rr2.finish_cycle.to_string(),
            d1.stall_cycles.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nsmall per-module queues suffice: the attention module drains one\ncandidate per cycle anyway, so backpressure stalls only reorder the scan\n(longest-queue-first keeps the hottest queue bounded, §IV-C)"
    );
}
