//! **E12 / §III-B** — calibration of the angle-correction bias θ_bias:
//! the 80th-percentile error of the Hamming angle estimator on synthetic
//! standard-normal vectors. Paper: 0.127 for d = k = 64.
//!
//! Run: `cargo run --release -p elsa-bench --bin theta_bias_calibration`

use elsa_bench::table::{fmt, Table};
use elsa_core::calibration::{calibrate_theta_bias, CalibrationConfig};
use elsa_linalg::SeededRng;

fn main() {
    println!("§III-B — θ_bias calibration (80th-percentile estimator error)\n");
    let mut table = Table::new(&["d", "k", "θ_bias (calibrated)", "note"]);
    let mut rng = SeededRng::new(2021);
    for (d, k) in [(64, 16), (64, 32), (64, 64), (64, 128), (128, 128)] {
        let cfg = CalibrationConfig { d, k, pairs: 3000, hasher_draws: 8, percentile: 80.0 };
        let bias = calibrate_theta_bias(&cfg, &mut rng);
        let note = if d == 64 && k == 64 { "paper: 0.127" } else { "" };
        table.row(&[d.to_string(), k.to_string(), fmt(bias, 4), note.to_string()]);
    }
    table.print();
    println!(
        "\nlonger hashes estimate the angle more tightly, so they need less\ncorrection; the d = k = 64 hardware point must land near the paper's 0.127"
    );
}
