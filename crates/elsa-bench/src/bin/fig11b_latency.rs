//! **E4 / Fig. 11(b)** — average latency of one self-attention operation,
//! normalized to the ideal accelerator, with the preprocessing share
//! (the hatched area in the paper's figure).
//!
//! Run: `cargo run --release -p elsa-bench --bin fig11b_latency`

use elsa_bench::harness::{evaluate_all, ElsaPoint, HarnessOptions};
use elsa_bench::table::{fmt, geomean, Table};

fn main() {
    let opts = HarnessOptions::default();
    let results = evaluate_all(&opts);
    println!("Fig. 11(b) — normalized self-attention latency (ideal accelerator = 1)\n");
    let mut table = Table::new(&[
        "workload",
        "ELSA-base",
        "conservative",
        "moderate",
        "aggressive",
        "preproc % (base)",
    ]);
    let mut per_point: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for perf in &results {
        let ideal = perf.ideal_latency_s;
        let rel = [
            perf.point(ElsaPoint::Base).latency_s / ideal,
            perf.point(ElsaPoint::Conservative).latency_s / ideal,
            perf.point(ElsaPoint::Moderate).latency_s / ideal,
            perf.point(ElsaPoint::Aggressive).latency_s / ideal,
        ];
        for (acc, r) in per_point.iter_mut().zip(rel) {
            acc.push(r);
        }
        table.row(&[
            perf.workload.name(),
            fmt(rel[0], 2),
            fmt(rel[1], 2),
            fmt(rel[2], 2),
            fmt(rel[3], 2),
            fmt(perf.point(ElsaPoint::Base).preprocessing_fraction * 100.0, 1),
        ]);
    }
    table.row(&[
        "GEOMEAN".into(),
        fmt(geomean(&per_point[0]), 2),
        fmt(geomean(&per_point[1]), 2),
        fmt(geomean(&per_point[2]), 2),
        fmt(geomean(&per_point[3]), 2),
        "-".into(),
    ]);
    table.print();
    println!(
        "\npaper: ELSA-base 1.03x of ideal; conservative 0.38x, moderate 0.29x,\naggressive 0.26x; preprocessing is a small share of total time"
    );
}
