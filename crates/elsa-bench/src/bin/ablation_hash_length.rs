//! **Ablation / §IV-E "Choice of Hash Length k"** — sweep the hash length:
//! longer hashes estimate angles better (higher metric at equal p) but cost
//! more hash computation, storage and selection-module area.
//!
//! Run: `cargo run --release -p elsa-bench --bin ablation_hash_length`

use elsa_bench::table::{fmt, Table};
use elsa_core::attention::{ElsaAttention, ElsaParams};
use elsa_core::calibration::{calibrate_theta_bias, CalibrationConfig};
use elsa_core::hashing::SrpHasher;
use elsa_linalg::SeededRng;
use elsa_workloads::tasks::ClassificationProbe;
use elsa_workloads::AttentionPatternConfig;

fn main() {
    let d = 64;
    let n = 512;
    let cfg = AttentionPatternConfig::new(n, d, 6, 2.0);
    let mut rng = SeededRng::new(11);
    let train = cfg.generate_batch(2, &mut rng);
    let test = cfg.generate_batch(3, &mut rng);
    let probe = ClassificationProbe::new(16, d, &mut rng);
    println!("Ablation — hash length k (d = 64, p = 1, n = 512)\n");
    let mut table = Table::new(&[
        "k",
        "θ_bias",
        "metric (%)",
        "candidates (%)",
        "hash mults/vec",
        "hash SRAM (KB)",
    ]);
    for k in [8usize, 16, 32, 64, 128] {
        let mut fork = rng.fork(k as u64);
        let bias = if k == 64 {
            elsa_core::THETA_BIAS_D64_K64
        } else {
            let cal = CalibrationConfig { d, k, pairs: 1500, hasher_draws: 4, percentile: 80.0 };
            calibrate_theta_bias(&cal, &mut fork)
        };
        let hasher = SrpHasher::dense(k, d, &mut fork);
        let mults = hasher.multiplication_count();
        let params = ElsaParams::new(hasher, bias, 1.0);
        let operator = ElsaAttention::learn(params, &train, 1.0);
        let mut metric = 0.0;
        let mut cand = 0.0;
        for inputs in &test {
            let exact = elsa_attention::exact::attention(inputs);
            let (out, stats) = operator.forward(inputs);
            metric += probe.agreement(&exact, &out);
            cand += stats.candidate_fraction();
        }
        let count = test.len() as f64;
        table.row(&[
            k.to_string(),
            fmt(bias, 3),
            fmt(metric / count * 100.0, 2),
            fmt(cand / count * 100.0, 1),
            mults.to_string(),
            fmt((n * k) as f64 / 8.0 / 1024.0, 2),
        ]);
    }
    table.print();
    println!(
        "\npaper: k = d works well as long as k is not too small (< 16); larger k\nimproves the estimate but grows hash cost, storage, and selection area"
    );
}
