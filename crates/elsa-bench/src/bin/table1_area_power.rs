//! **E5 / Table I** — per-module area and peak power of the ELSA
//! accelerator at the paper's synthesis configuration
//! (`n=512, d=64, P_a=4, P_c=8, m_h=256, m_o=16`, TSMC 40 nm @ 1 GHz).
//!
//! Run: `cargo run --release -p elsa-bench --bin table1_area_power`

use elsa_sim::{AcceleratorConfig, AreaPowerTable};

fn main() {
    let config = AcceleratorConfig::paper();
    let table = AreaPowerTable::for_config(&config);
    println!("Table I — area and (peak) power characteristics of ELSA\n");
    print!("{}", table.to_markdown());
    println!();
    println!(
        "single accelerator peak power: {:.2} W (paper: ~1.49 W incl. external memories)",
        table.peak_power_w()
    );
    println!(
        "twelve accelerators peak power: {:.2} W (paper: ~17.93 W)",
        table.aggregate_peak_power_w()
    );
    println!(
        "accelerator area: {:.3} mm^2 + external memories {:.3} mm^2 (paper: 1.255 + 0.892)",
        table.accelerator_area_mm2(),
        table.external_area_mm2()
    );
    println!(
        "peak throughput: {:.3} TOPS/accelerator, {:.1} TOPS aggregate (paper: 1.088 / ~13)",
        config.peak_ops_per_second() / 1e12,
        config.aggregate_peak_ops_per_second() / 1e12
    );
}
