//! **E14 / Fig. 12** — the paper shows a post-layout die photo; the closest
//! faithful text equivalent is an area treemap of the same synthesis
//! configuration (the information content of Table I's area column).
//!
//! Run: `cargo run --release -p elsa-bench --bin fig12_layout`

use elsa_sim::{AcceleratorConfig, AreaPowerTable};

fn main() {
    let table = AreaPowerTable::for_config(&AcceleratorConfig::paper());
    let total = table.accelerator_area_mm2() + table.external_area_mm2();
    println!("Fig. 12 — ELSA accelerator area layout (text treemap)\n");
    println!("total: {total:.3} mm^2 (accelerator {:.3} + external memories {:.3})\n",
        table.accelerator_area_mm2(), table.external_area_mm2());
    let mut rows: Vec<(&str, f64)> = table
        .modules
        .iter()
        .chain(&table.external)
        .map(|m| (m.name, m.area_mm2))
        .collect();
    rows.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite areas"));
    let width = 60.0;
    for (name, area) in rows {
        let share = area / total;
        let bar = "#".repeat((share * width).round().max(1.0) as usize);
        println!("{name:<22} {area:>6.3} mm^2  {:>5.1}%  {bar}", share * 100.0);
    }
    println!(
        "\nthe attention computation modules dominate; the candidate selection\nhardware that enables the whole approximation is a small sliver (paper §V-D)"
    );
}
