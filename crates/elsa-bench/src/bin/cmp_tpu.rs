//! **E9 / §V-E** — peak-FLOPS-normalized comparison with Google TPUv2 on
//! the ALBERT workloads.
//!
//! Paper numbers: ELSA-base is 8.3× / 6.4× / 2.4× better than TPU on
//! SQuAD v1.1 / v2.0 / RACE (peak-normalized), ELSA-moderate 27.8× / 20.9×
//! / 8.0×; the TPU itself measures 5.5× / 6.7× / 5.4× better than the GPU.
//!
//! Run: `cargo run --release -p elsa-bench --bin cmp_tpu`

use elsa_baselines::{AttentionDevice, GpuModel, TpuModel};
use elsa_bench::harness::{evaluate_workload_perf, ElsaPoint, HarnessOptions};
use elsa_bench::table::{fmt, Table};
use elsa_sim::AcceleratorConfig;
use elsa_workloads::{DatasetKind, ModelKind, Workload};

fn main() {
    let opts = HarnessOptions::default();
    let tpu = TpuModel::v2();
    let gpu = GpuModel::v100();
    let elsa_peak = AcceleratorConfig::paper().aggregate_peak_ops_per_second();
    println!("§V-E — ELSA vs TPUv2 on ALBERT (peak-FLOPS-normalized throughput)\n");
    let mut table = Table::new(&[
        "dataset",
        "TPU vs GPU",
        "ELSA-base vs TPU",
        "ELSA-moderate vs TPU",
    ]);
    for dataset in [DatasetKind::SquadV11, DatasetKind::SquadV20, DatasetKind::Race] {
        let workload = Workload { model: ModelKind::AlbertLarge, dataset };
        let perf = evaluate_workload_perf(&workload, &opts);
        let padded = perf.padded_len;
        // Peak-normalized throughput: invocations/s divided by peak FLOPS.
        let tpu_norm = 1.0 / (tpu.attention_latency_s(padded, padded, 64) * tpu.peak_flops());
        let gpu_norm = 1.0 / (perf.gpu_latency_s * gpu.peak_flops());
        let base_norm = perf.point(ElsaPoint::Base).throughput_per_s / elsa_peak;
        let mod_norm = perf.point(ElsaPoint::Moderate).throughput_per_s / elsa_peak;
        table.row(&[
            dataset.name().to_string(),
            fmt(tpu_norm / gpu_norm, 1),
            fmt(base_norm / tpu_norm, 1),
            fmt(mod_norm / tpu_norm, 1),
        ]);
    }
    table.print();
    println!(
        "\npaper: TPU vs GPU 5.5/6.7/5.4; ELSA-base vs TPU 8.3/6.4/2.4;\nELSA-moderate vs TPU 27.8/20.9/8.0 (SQuADv1.1 / SQuADv2.0 / RACE)"
    );
}
