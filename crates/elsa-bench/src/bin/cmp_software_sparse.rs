//! **§V-E discussion** — ELSA versus *software* sparse attention
//! (Reformer-style LSH bucketing, Longformer-style local windows) on the
//! same synthetic workload: quality at equal attended-pair budgets, plus
//! the wall-clock story ("Reformer fails to achieve any speedup for
//! sequence length less than 2048").
//!
//! Run: `cargo run --release -p elsa-bench --bin cmp_software_sparse`

use elsa_attention::exact;
use elsa_baselines::GpuModel;
use elsa_bench::table::{fmt, Table};
use elsa_core::attention::{ElsaAttention, ElsaParams};
use elsa_linalg::SeededRng;
use elsa_sparse::{LocalAttention, LshAttention, LshAttentionConfig};
use elsa_workloads::tasks::ClassificationProbe;
use elsa_workloads::AttentionPatternConfig;

fn main() {
    let n = 512;
    let d = 64;
    let mut rng = SeededRng::new(30);
    let pattern = AttentionPatternConfig::new(n, d, 6, 2.0);
    let train = pattern.generate_batch(2, &mut rng);
    let test = pattern.generate_batch(3, &mut rng);
    let probe = ClassificationProbe::new(16, d, &mut rng);

    println!("§V-E — ELSA vs software sparse attention (n = 512, content-based relevance)\n");
    let mut table = Table::new(&["scheme", "attended pairs (%)", "metric (%)"]);

    let mut eval = |name: String, cands_fn: &mut dyn FnMut(&elsa_attention::AttentionInputs) -> Vec<Vec<usize>>| {
        let mut metric = 0.0;
        let mut frac = 0.0;
        for inputs in &test {
            let cands = cands_fn(inputs);
            let selected: usize = cands.iter().map(Vec::len).sum();
            frac += selected as f64 / (inputs.num_queries() * inputs.num_keys()) as f64;
            let out = exact::attention_with_candidates(inputs, &cands, 1.0);
            metric += probe.agreement(&exact::attention(inputs), &out);
        }
        let count = test.len() as f64;
        table.row(&[name, fmt(frac / count * 100.0, 1), fmt(metric / count * 100.0, 2)]);
    };

    // ELSA at p = 1 and p = 2.
    for p in [1.0, 2.0] {
        let mut op_rng = SeededRng::new(31);
        let operator =
            ElsaAttention::learn(ElsaParams::for_dims(d, d, &mut op_rng), &train, p);
        eval(format!("ELSA (p = {p})"), &mut |inputs| operator.candidates(inputs).0);
    }
    // Reformer-style LSH at two budgets.
    for (bits, rounds) in [(4usize, 2usize), (3, 4)] {
        let mut lsh_rng = SeededRng::new(32);
        let lsh = LshAttention::new(d, LshAttentionConfig { bucket_bits: bits, rounds }, &mut lsh_rng);
        eval(format!("LSH ({bits} bits x {rounds} rounds)"), &mut |inputs| {
            lsh.candidates(inputs).0
        });
    }
    // Local windows at two budgets.
    for window in [32usize, 64] {
        let local = LocalAttention::new(window, 2);
        eval(format!("local (window +-{window})"), &mut |inputs| local.candidates(inputs).0);
    }
    table.print();
    println!(
        "\nthe planted relevance here is content-based and position-free, so the\nstatic local pattern pays a large quality penalty at equal budget, and LSH\nneeds several rounds to match ELSA's norm-aware thresholding\n"
    );

    // Wall-clock story on commercial hardware.
    let gpu = GpuModel::v100();
    let mut lsh_rng = SeededRng::new(33);
    let lsh = LshAttention::new(d, LshAttentionConfig::default(), &mut lsh_rng);
    println!("modeled V100 wall-clock: dense vs Reformer-style LSH attention");
    let mut wc = Table::new(&["n", "dense (us)", "LSH (us)", "LSH speedup"]);
    for n in [512usize, 1024, 2048, 4096, 8192] {
        let dense = gpu.attention_kernel_time_s(n, d);
        let sparse = lsh.wall_clock_model_s(n, d, 0.1 * n as f64);
        wc.row(&[
            n.to_string(),
            fmt(dense * 1e6, 0),
            fmt(sparse * 1e6, 0),
            format!("{:.2}x", dense / sparse),
        ]);
    }
    wc.print();
    println!(
        "\npaper: 'Reformer fails to achieve any speedup for sequence length less\nthan 2048, due to its huge constant in their time complexity'"
    );
}
