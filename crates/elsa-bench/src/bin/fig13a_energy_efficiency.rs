//! **E6 / Fig. 13(a)** — energy efficiency (performance per watt) of the
//! ELSA configurations, normalized to the GPU.
//!
//! Per-invocation energy is the activity-based estimate from the cycle
//! simulation (one accelerator + its external memories); the GPU's is its
//! modeled kernel time × its measured ~240 W draw.
//!
//! Run: `cargo run --release -p elsa-bench --bin fig13a_energy_efficiency`

use elsa_bench::harness::{evaluate_all, ElsaPoint, HarnessOptions};
use elsa_bench::table::{fmt_factor, geomean, Table};

fn main() {
    let opts = HarnessOptions::default();
    let results = evaluate_all(&opts);
    println!("Fig. 13(a) — normalized energy efficiency (perf/W, GPU = 1)\n");
    let mut table =
        Table::new(&["workload", "ELSA-base", "conservative", "moderate", "aggressive"]);
    let mut per_point: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for perf in &results {
        // perf/W == 1 / (energy per invocation); normalize by the GPU's.
        let ratios = [
            perf.gpu_energy_j / perf.point(ElsaPoint::Base).energy_j,
            perf.gpu_energy_j / perf.point(ElsaPoint::Conservative).energy_j,
            perf.gpu_energy_j / perf.point(ElsaPoint::Moderate).energy_j,
            perf.gpu_energy_j / perf.point(ElsaPoint::Aggressive).energy_j,
        ];
        for (acc, r) in per_point.iter_mut().zip(ratios) {
            acc.push(r);
        }
        table.row(&[
            perf.workload.name(),
            fmt_factor(ratios[0]),
            fmt_factor(ratios[1]),
            fmt_factor(ratios[2]),
            fmt_factor(ratios[3]),
        ]);
    }
    table.row(&[
        "GEOMEAN".into(),
        fmt_factor(geomean(&per_point[0])),
        fmt_factor(geomean(&per_point[1])),
        fmt_factor(geomean(&per_point[2])),
        fmt_factor(geomean(&per_point[3])),
    ]);
    table.print();
    println!(
        "\npaper geomeans: base 442x, conservative 1265x, moderate 1726x, aggressive 2093x"
    );
}
