//! **E-PAR** — serial vs parallel attention-pipeline baseline, emitted as
//! JSON for the committed `BENCH_parallel.json` at the repo root.
//!
//! Capture: `cargo run --release -p elsa-bench --bin bench_parallel > BENCH_parallel.json`
//!
//! Measures the exact attention kernel and the full ELSA approximate
//! pipeline (hash → candidate selection → candidate attention) at
//! n ∈ {128, 512, 2048}, each pinned to one worker and then run at four
//! workers via `elsa_parallel::with_threads`. Inputs are seeded, so the
//! *computed values* are identical across runs and worker counts (that
//! equivalence is separately enforced by `tests/parallel_equivalence.rs`);
//! only the timings vary with the host.
//!
//! The emitted `host_cores` field records `available_parallelism()` at
//! capture time: speedup from 4 workers requires ≥ 4 physical cores, and on
//! a single-core host the parallel path can only measure its scheduling
//! overhead (speedup ≤ 1).

use std::time::Instant;

use elsa_attention::exact::{self, AttentionInputs};
use elsa_core::attention::{ElsaAttention, ElsaParams};
use elsa_linalg::{Matrix, SeededRng};

const D: usize = 64;
const PARALLEL_WORKERS: usize = 4;
const SIZES: [usize; 3] = [128, 512, 2048];

fn random_inputs(n: usize, seed: u64) -> AttentionInputs {
    let mut rng = SeededRng::new(seed);
    let mk = |rng: &mut SeededRng| Matrix::from_fn(n, D, |_, _| rng.standard_normal() as f32);
    AttentionInputs::new(mk(&mut rng), mk(&mut rng), mk(&mut rng))
}

/// Median wall-clock seconds of `samples` runs (after one warmup run).
fn median_s(samples: usize, mut f: impl FnMut()) -> f64 {
    f(); // warmup
    let mut times: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

struct Row {
    kernel: &'static str,
    n: usize,
    serial_median_s: f64,
    parallel_median_s: f64,
}

fn main() {
    let host_cores = std::thread::available_parallelism().map_or(0, std::num::NonZeroUsize::get);
    let mut rows: Vec<Row> = Vec::new();

    for &n in &SIZES {
        let samples = if n >= 2048 { 3 } else { 7 };
        let inputs = random_inputs(n, 11);
        let serial =
            median_s(samples, || {
                elsa_parallel::with_threads(1, || {
                    std::hint::black_box(exact::scaled_attention(&inputs));
                });
            });
        let parallel = median_s(samples, || {
            elsa_parallel::with_threads(PARALLEL_WORKERS, || {
                std::hint::black_box(exact::scaled_attention(&inputs));
            });
        });
        rows.push(Row { kernel: "exact_attention", n, serial_median_s: serial, parallel_median_s: parallel });
    }

    let operator = ElsaAttention::with_threshold(
        ElsaParams::for_dims(D, D, &mut SeededRng::new(12)),
        0.3,
    );
    for &n in &SIZES {
        let samples = if n >= 2048 { 3 } else { 7 };
        let inputs = random_inputs(n, 13);
        let serial = median_s(samples, || {
            elsa_parallel::with_threads(1, || {
                std::hint::black_box(operator.forward(&inputs));
            });
        });
        let parallel = median_s(samples, || {
            elsa_parallel::with_threads(PARALLEL_WORKERS, || {
                std::hint::black_box(operator.forward(&inputs));
            });
        });
        rows.push(Row { kernel: "elsa_pipeline", n, serial_median_s: serial, parallel_median_s: parallel });
    }

    println!("{{");
    println!("  \"bench\": \"parallel_attention_pipeline\",");
    println!(
        "  \"capture_command\": \"cargo run --release -p elsa-bench --bin bench_parallel > BENCH_parallel.json\","
    );
    println!("  \"d\": {D},");
    println!("  \"parallel_workers\": {PARALLEL_WORKERS},");
    println!("  \"host_cores\": {host_cores},");
    println!(
        "  \"note\": \"speedup = serial_median_s / parallel_median_s; values are bit-identical across worker counts (tests/parallel_equivalence.rs), so only timing differs. A >= 2x speedup at 4 workers requires a host with >= 4 cores; on host_cores < 4 the parallel column measures scheduling overhead instead.\","
    );
    println!("  \"results\": [");
    let last = rows.len() - 1;
    for (i, r) in rows.iter().enumerate() {
        let speedup = r.serial_median_s / r.parallel_median_s;
        let comma = if i == last { "" } else { "," };
        println!(
            "    {{ \"kernel\": \"{}\", \"n\": {}, \"serial_median_s\": {:.6}, \"parallel_median_s\": {:.6}, \"speedup\": {:.3} }}{comma}",
            r.kernel, r.n, r.serial_median_s, r.parallel_median_s, speedup
        );
    }
    println!("  ]");
    println!("}}");
}
