//! **E10 / §IV-A** — the motivating negative result: running ELSA's
//! approximation scheme *on the GPU* is slower than just doing the exact
//! attention, because Hamming/LUT/compare work maps badly onto CUDA cores.
//! The paper measured a 3.14× slowdown.
//!
//! Run: `cargo run --release -p elsa-bench --bin gpu_approx_slowdown`

use elsa_baselines::GpuModel;
use elsa_bench::table::{fmt, Table};

fn main() {
    let gpu = GpuModel::v100();
    println!("§IV-A — ELSA approximation executed on the V100 (BERT-like, d = 64)\n");
    let mut table = Table::new(&[
        "n",
        "exact attention (us)",
        "approx on GPU (us)",
        "slowdown",
    ]);
    for n in [128usize, 256, 512, 1024] {
        let exact = gpu.attention_kernel_time_s(n, 64);
        // 35% of keys survive selection — the conservative operating regime.
        let approx = gpu.approx_attention_time_s(n, 64, 0.35 * n as f64);
        table.row(&[
            n.to_string(),
            fmt(exact * 1e6, 1),
            fmt(approx * 1e6, 1),
            format!("{:.2}x", approx / exact),
        ]);
    }
    table.print();
    println!(
        "\npaper: 3.14x slowdown at the evaluation configuration — the reduction in\narithmetic only pays off in specialized hardware (the co-design argument)"
    );
}
