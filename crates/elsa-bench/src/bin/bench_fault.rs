//! **E-FAULT** — fault-injection overhead and graceful-degradation sweep,
//! emitted as JSON for the committed `BENCH_fault.json` at the repo root.
//!
//! Capture: `cargo run --release -p elsa-bench --bin bench_fault > BENCH_fault.json`
//!
//! Two measurements:
//!
//! 1. **Zero-fault overhead** — wall-clock of
//!    `FaultTolerantServer::serve_report` with `FaultPlan::none()` against
//!    the plain `InferenceServer::serve` on the same batch (both produce
//!    the accounting report without materializing outputs, so the delta is
//!    the chaos layer itself). The layer must cost plan lookups, not a
//!    different code path: the acceptance bar is < 2% overhead on the min-of-samples timings (the
//!    reports themselves are bit-identical, enforced by
//!    `tests/fault_tolerance.rs`).
//! 2. **Fault-rate sweep** — one fault class at a time at increasing
//!    rates, reporting the simulated-clock p99 completion latency, the
//!    degraded fraction, the failed fraction, and mean retries. Latencies
//!    come from the simulator's deterministic virtual clock, so the sweep
//!    is reproducible anywhere; only the overhead timings vary with the
//!    host.

use std::time::Instant;

use elsa_core::attention::{ElsaAttention, ElsaParams};
use elsa_fault::{FaultPlan, FaultRates};
use elsa_linalg::SeededRng;
use elsa_runtime::{FailoverPolicy, FaultTolerantServer, InferenceServer};
use elsa_sim::AcceleratorConfig;
use elsa_workloads::{DatasetKind, ModelKind, Workload};

const BATCH: usize = 48;
const PLAN_SEED: u64 = 0xE15A_FA11;

fn config() -> AcceleratorConfig {
    AcceleratorConfig { n_max: 200, num_accelerators: 4, ..AcceleratorConfig::paper() }
}

struct SweepRow {
    fault: &'static str,
    rate: f64,
    p99_s: f64,
    degraded_fraction: f64,
    failed_fraction: f64,
    mean_retries: f64,
}

fn main() {
    let workload = Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M };
    let operator = {
        let mut rng = SeededRng::new(20);
        let train = workload.generate_batch(1, &mut rng);
        ElsaAttention::learn(ElsaParams::for_dims(64, 64, &mut SeededRng::new(21)), &train, 1.0)
    };
    let batch = {
        let mut rng = SeededRng::new(22);
        workload.generate_batch(BATCH, &mut rng)
    };

    // 1. Zero-fault wrapper overhead.
    let plain = InferenceServer::new(config(), operator.clone());
    let wrapped = FaultTolerantServer::new(
        config(),
        operator.clone(),
        FaultPlan::none(),
        FailoverPolicy::default(),
    );
    // The overhead being measured is sub-percent, so raw timings drown in
    // host noise. Take *paired* samples — each iteration times both servers
    // back to back, alternating which goes first so neither side
    // systematically runs on a warmer cache — and report the ratio of the
    // per-side *minima*: timing noise on a shared host is strictly
    // additive, so the minimum over many samples converges on the true
    // cost while a median ratio still wobbles by several percent. Pinned
    // to one worker: the thread pool's scheduling jitter would otherwise
    // swamp the signal, and the chaos layer's cost (plan lookups in the
    // serial dispatch fold) is worker-independent.
    let pairs = 40;
    let (mut plain_s, mut wrapped_s) = (f64::INFINITY, f64::INFINITY);
    elsa_parallel::with_threads(1, || {
        let time_plain = |plain_s: &mut f64| {
            let t = Instant::now();
            std::hint::black_box(plain.serve(&batch));
            *plain_s = plain_s.min(t.elapsed().as_secs_f64());
        };
        let time_wrapped = |wrapped_s: &mut f64| {
            let t = Instant::now();
            std::hint::black_box(wrapped.serve_report(&batch).expect("zero-fault plan"));
            *wrapped_s = wrapped_s.min(t.elapsed().as_secs_f64());
        };
        let mut warmup = f64::INFINITY;
        time_plain(&mut warmup);
        time_wrapped(&mut warmup);
        for i in 0..pairs {
            if i % 2 == 0 {
                time_plain(&mut plain_s);
                time_wrapped(&mut wrapped_s);
            } else {
                time_wrapped(&mut wrapped_s);
                time_plain(&mut plain_s);
            }
        }
    });
    let overhead_pct = (wrapped_s / plain_s - 1.0) * 100.0;

    // 2. Fault-rate sweep, one class at a time.
    let sweeps: [(&'static str, fn(f64) -> FaultRates); 3] = [
        ("transient", |r| FaultRates { transient: r, ..FaultRates::none() }),
        ("straggler", |r| FaultRates {
            straggler: r,
            straggler_max_factor: 4.0,
            ..FaultRates::none()
        }),
        ("corrupt", |r| FaultRates { corrupt: r, ..FaultRates::none() }),
    ];
    let mut rows: Vec<SweepRow> = Vec::new();
    for (fault, rates) in sweeps {
        for rate in [0.0, 0.05, 0.1, 0.2, 0.4] {
            let server = FaultTolerantServer::new(
                config(),
                operator.clone(),
                FaultPlan::seeded(PLAN_SEED, rates(rate)),
                FailoverPolicy::default(),
            );
            let report = server.serve_report(&batch).expect("no unit death in the sweep");
            let n = report.records.len() as f64;
            rows.push(SweepRow {
                fault,
                rate,
                p99_s: report.completion_percentile_s(99.0),
                degraded_fraction: report.degraded_count() as f64 / n,
                failed_fraction: report.failed_count() as f64 / n,
                mean_retries: report.total_retries() as f64 / n,
            });
        }
    }

    println!("{{");
    println!("  \"bench\": \"fault_injection_serving\",");
    println!(
        "  \"capture_command\": \"cargo run --release -p elsa-bench --bin bench_fault > BENCH_fault.json\","
    );
    println!("  \"batch\": {BATCH},");
    println!("  \"num_accelerators\": 4,");
    println!("  \"plan_seed\": {PLAN_SEED},");
    println!(
        "  \"note\": \"zero_fault_overhead_pct is host wall-clock: < 2 on a quiet host (the chaos layer is plan lookups, not a second code path; shared containers add a few percent of one-sided noise); sweep latencies are the simulator's deterministic virtual clock and reproduce exactly on any host.\","
    );
    println!("  \"zero_fault\": {{");
    println!("    \"plain_serve_min_s\": {plain_s:.6},");
    println!("    \"wrapped_serve_min_s\": {wrapped_s:.6},");
    println!("    \"overhead_pct\": {overhead_pct:.3}");
    println!("  }},");
    println!("  \"sweep\": [");
    let last = rows.len() - 1;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        println!(
            "    {{ \"fault\": \"{}\", \"rate\": {:.2}, \"p99_completion_s\": {:.6}, \"degraded_fraction\": {:.4}, \"failed_fraction\": {:.4}, \"mean_retries\": {:.4} }}{comma}",
            r.fault, r.rate, r.p99_s, r.degraded_fraction, r.failed_fraction, r.mean_retries
        );
    }
    println!("  ]");
    println!("}}");
}
