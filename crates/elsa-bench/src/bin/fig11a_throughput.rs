//! **E3 / Fig. 11(a)** — self-attention throughput normalized to the GPU,
//! for the ideal accelerator and the four ELSA operating points, per
//! workload, with geometric means.
//!
//! Run: `cargo run --release -p elsa-bench --bin fig11a_throughput`

use elsa_bench::harness::{evaluate_all, ElsaPoint, HarnessOptions};
use elsa_bench::table::{fmt_factor, geomean, Table};

fn main() {
    let opts = HarnessOptions::default();
    let results = evaluate_all(&opts);
    println!("Fig. 11(a) — normalized self-attention throughput (GPU = 1)\n");
    let mut table = Table::new(&[
        "workload",
        "mean real n",
        "ideal",
        "ELSA-base",
        "conservative",
        "moderate",
        "aggressive",
    ]);
    let mut per_point: Vec<Vec<f64>> = vec![Vec::new(); 5];
    for perf in &results {
        let gpu = perf.gpu_throughput_per_s();
        let speedups = [
            perf.ideal_throughput_per_s() / gpu,
            perf.point(ElsaPoint::Base).throughput_per_s / gpu,
            perf.point(ElsaPoint::Conservative).throughput_per_s / gpu,
            perf.point(ElsaPoint::Moderate).throughput_per_s / gpu,
            perf.point(ElsaPoint::Aggressive).throughput_per_s / gpu,
        ];
        for (acc, s) in per_point.iter_mut().zip(speedups) {
            acc.push(s);
        }
        table.row(&[
            perf.workload.name(),
            format!("{:.0}/{}", perf.mean_real_len, perf.padded_len),
            fmt_factor(speedups[0]),
            fmt_factor(speedups[1]),
            fmt_factor(speedups[2]),
            fmt_factor(speedups[3]),
            fmt_factor(speedups[4]),
        ]);
    }
    table.row(&[
        "GEOMEAN".into(),
        "-".into(),
        fmt_factor(geomean(&per_point[0])),
        fmt_factor(geomean(&per_point[1])),
        fmt_factor(geomean(&per_point[2])),
        fmt_factor(geomean(&per_point[3])),
        fmt_factor(geomean(&per_point[4])),
    ]);
    table.print();
    println!(
        "\npaper: ELSA-base 7.99-43.93x per workload; geomeans 57x / 73x / 81x for\nconservative / moderate / aggressive (58.1x headline geomean)"
    );
}
