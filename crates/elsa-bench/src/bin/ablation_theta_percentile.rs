//! **Ablation / §III-B** — why the 80th percentile? The angle-correction
//! bias trades recall of relevant keys (larger percentile ⇒ larger bias ⇒
//! similarities over-estimated more often ⇒ fewer misses) against candidate
//! count (everything looks more similar, so more keys pass the threshold).
//! This sweeps the percentile and shows the paper's 80 sitting at the knee.
//!
//! Run: `cargo run --release -p elsa-bench --bin ablation_theta_percentile`

use elsa_bench::table::{fmt, Table};
use elsa_core::attention::{ElsaAttention, ElsaParams};
use elsa_core::calibration::{calibrate_theta_bias, CalibrationConfig};
use elsa_core::hashing::SrpHasher;
use elsa_linalg::SeededRng;
use elsa_workloads::tasks::ClassificationProbe;
use elsa_workloads::AttentionPatternConfig;

fn main() {
    let d = 64;
    let n = 256;
    let mut rng = SeededRng::new(70);
    let pattern = AttentionPatternConfig::new(n, d, 6, 2.0);
    let train = pattern.generate_batch(2, &mut rng);
    let test = pattern.generate_batch(3, &mut rng);
    let probe = ClassificationProbe::new(16, d, &mut rng);
    println!("Ablation — angle-correction percentile (d = k = 64, p = 1)\n");
    let mut table = Table::new(&[
        "percentile",
        "θ_bias",
        "metric (%)",
        "candidates (%)",
    ]);
    for percentile in [0.0, 50.0, 80.0, 90.0, 95.0] {
        let mut cal_rng = SeededRng::new(71);
        let bias = if percentile == 0.0 {
            0.0 // no correction at all
        } else {
            let cfg = CalibrationConfig {
                d,
                k: d,
                pairs: 2000,
                hasher_draws: 6,
                percentile,
            };
            calibrate_theta_bias(&cfg, &mut cal_rng)
        };
        let mut op_rng = SeededRng::new(72);
        let hasher = SrpHasher::kronecker_three_way(d, &mut op_rng);
        let operator =
            ElsaAttention::learn(ElsaParams::new(hasher, bias, 1.0), &train, 1.0);
        let mut metric = 0.0;
        let mut cand = 0.0;
        for inputs in &test {
            let exact = elsa_attention::exact::attention(inputs);
            let (out, stats) = operator.forward(inputs);
            metric += probe.agreement(&exact, &out);
            cand += stats.candidate_fraction();
        }
        let count = test.len() as f64;
        let label = if percentile == 0.0 { "none".into() } else { fmt(percentile, 0) };
        table.row(&[
            label,
            fmt(bias, 3),
            fmt(metric / count * 100.0, 2),
            fmt(cand / count * 100.0, 1),
        ]);
    }
    table.print();
    println!(
        "\nwithout correction (bias 0) half the relevant keys get under-estimated\nsimilarities and recall suffers; past ~80 the metric gains flatten while the\ncandidate count (and thus cycles/energy) keeps climbing — §III-B's choice"
    );
}
