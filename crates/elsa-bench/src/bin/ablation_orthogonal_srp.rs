//! **Ablation / §III-B** — orthogonal projections (ELSA's SRP variant) vs
//! plain independent-Gaussian SRP: estimator error and end-metric impact.
//!
//! Run: `cargo run --release -p elsa-bench --bin ablation_orthogonal_srp`

use elsa_bench::table::{fmt, Table};
use elsa_core::attention::{ElsaAttention, ElsaParams};
use elsa_core::hashing::{estimate_angle, SrpHasher};
use elsa_linalg::{ops, SeededRng};
use elsa_workloads::tasks::ClassificationProbe;
use elsa_workloads::AttentionPatternConfig;

fn estimator_mse(hasher: &SrpHasher, rng: &mut SeededRng, trials: usize) -> f64 {
    let d = hasher.dim();
    let mut sq = 0.0;
    for _ in 0..trials {
        let a = rng.normal_vec(d);
        let b = rng.normal_vec(d);
        let truth = ops::angle_between(&a, &b);
        let est = estimate_angle(hasher.hash(&a).hamming(&hasher.hash(&b)), hasher.k());
        sq += (est - truth) * (est - truth);
    }
    sq / trials as f64
}

fn main() {
    let d = 64;
    let n = 256;
    let mut rng = SeededRng::new(13);
    let cfg = AttentionPatternConfig::new(n, d, 6, 2.0);
    let train = cfg.generate_batch(2, &mut rng);
    let test = cfg.generate_batch(3, &mut rng);
    let probe = ClassificationProbe::new(16, d, &mut rng);
    println!("Ablation — orthogonal vs plain-Gaussian sign random projection\n");
    let mut table = Table::new(&[
        "projection",
        "estimator MSE (rad^2)",
        "metric (%)",
        "candidates (%)",
    ]);
    for (name, orthogonal) in [("orthogonal (Gram-Schmidt)", true), ("independent Gaussian", false)] {
        // Average over several projection draws to isolate the effect.
        let draws = 5;
        let mut mse = 0.0;
        let mut metric = 0.0;
        let mut cand = 0.0;
        for draw in 0..draws {
            let mut fork = rng.fork(draw);
            let hasher = if orthogonal {
                SrpHasher::dense(d, d, &mut fork)
            } else {
                SrpHasher::dense_gaussian(d, d, &mut fork)
            };
            mse += estimator_mse(&hasher, &mut fork, 800);
            let params = ElsaParams::new(hasher, elsa_core::THETA_BIAS_D64_K64, 1.0);
            let operator = ElsaAttention::learn(params, &train, 1.0);
            for inputs in &test {
                let exact = elsa_attention::exact::attention(inputs);
                let (out, stats) = operator.forward(inputs);
                metric += probe.agreement(&exact, &out);
                cand += stats.candidate_fraction();
            }
        }
        let runs = (draws as usize * test.len()) as f64;
        table.row(&[
            name.to_string(),
            fmt(mse / draws as f64, 5),
            fmt(metric / runs * 100.0, 2),
            fmt(cand / runs * 100.0, 1),
        ]);
    }
    table.print();
    println!(
        "\npaper (§III-B, citing Ji et al.): orthogonalizing the projections removes\nredundant directions and provably reduces the angular estimation error"
    );
}
