//! **E2 / Fig. 10** — proxy accuracy (lines) and candidate fraction (bars)
//! versus the approximation-degree hyperparameter `p`, per model–dataset
//! combination.
//!
//! Run: `cargo run --release -p elsa-bench --bin fig10_accuracy_vs_p`

use elsa_bench::harness::{sweep_p, HarnessOptions};
use elsa_bench::table::{fmt, Table};
use elsa_workloads::workload::{Workload, P_GRID};

fn main() {
    let opts = HarnessOptions::default();
    println!("Fig. 10 — accuracy metric and candidate fraction vs p\n");
    for workload in Workload::all() {
        let sweep = sweep_p(&workload, &opts);
        println!(
            "{}  (metric: {}, relative to exact = 100)",
            workload.name(),
            workload.dataset.metric_name()
        );
        let mut table = Table::new(&["p", "metric (%)", "loss (%)", "candidates (%)"]);
        for eval in &sweep {
            table.row(&[
                fmt(eval.p, 2),
                fmt(eval.metric * 100.0, 2),
                fmt(eval.loss_percent(), 2),
                fmt(eval.stats.candidate_fraction() * 100.0, 1),
            ]);
        }
        table.print();
        println!();
    }
    // Headline claims of §V-B.
    let opts = HarnessOptions::default();
    let mut frac_at_p1 = Vec::new();
    let mut frac_at_p2 = Vec::new();
    for workload in Workload::all() {
        let sweep = sweep_p(&workload, &opts);
        for eval in &sweep {
            if (eval.p - 1.0).abs() < 1e-9 {
                frac_at_p1.push(eval.stats.candidate_fraction());
            }
            if (eval.p - 2.0).abs() < 1e-9 {
                frac_at_p2.push(eval.stats.candidate_fraction());
            }
        }
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "average candidate fraction at p=1: {:.1}% (paper: <40% with sub-1% loss)",
        avg(&frac_at_p1) * 100.0
    );
    println!(
        "average candidate fraction at p=2: {:.1}% (paper: ~26% with sub-2% loss)",
        avg(&frac_at_p2) * 100.0
    );
    let _ = P_GRID;
}
