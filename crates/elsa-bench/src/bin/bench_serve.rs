//! **E-SERVE** — online serving λ-sweep and batching-mode comparison,
//! emitted as JSON for the committed `BENCH_serve.json` at the repo root.
//!
//! Capture: `cargo run --release -p elsa-bench --bin bench_serve > BENCH_serve.json`
//!
//! Two measurements, both on the simulator's deterministic virtual clock
//! (no host wall-clock anywhere, so the JSON reproduces bit-for-bit on any
//! machine):
//!
//! 1. **λ sweep** — one seeded request sequence replayed at increasing
//!    offered load (the arrival generator's forked PRNG streams keep the
//!    shapes fixed while λ compresses the timeline), reporting queue-delay
//!    p50/p95/p99, SLO attainment, shed/timeout fractions, and served
//!    throughput per load point. The sweep brackets the pool's saturation
//!    point from 0.25× to 8×.
//! 2. **Bucketed vs padded batching** — the same overloaded trace served
//!    under ELSA's length-bucketed (no padding) batching and under the
//!    GPU-style pad-to-batch-max emulation, reporting the padding-waste
//!    fraction and the throughput gap.

use elsa_core::attention::{ElsaAttention, ElsaParams};
use elsa_fault::FaultPlan;
use elsa_linalg::SeededRng;
use elsa_serve::clock::secs_to_ns;
use elsa_serve::{
    ArrivalConfig, ArrivalTrace, Backpressure, BatchPolicy, BatcherMode, OnlineServer,
    ServeConfig, ServeReport, ServiceEstimator,
};
use elsa_sim::AcceleratorConfig;
use elsa_workloads::{DatasetKind, ModelKind, Workload};

const COUNT: usize = 160;
const TRACE_SEED: u64 = 0x5E4E_BE4C;

fn config() -> AcceleratorConfig {
    AcceleratorConfig { n_max: 200, num_accelerators: 4, ..AcceleratorConfig::paper() }
}

fn workload() -> Workload {
    Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M }
}

fn operator() -> ElsaAttention {
    let mut rng = SeededRng::new(30);
    let train = workload().generate_batch(1, &mut rng);
    ElsaAttention::learn(ElsaParams::for_dims(64, 64, &mut SeededRng::new(31)), &train, 1.0)
}

fn trace_at(lambda: f64, slo_ns: Option<u64>) -> ArrivalTrace {
    ArrivalTrace::generate(
        &workload(),
        &ArrivalConfig { lambda_per_s: lambda, count: COUNT, slo_ns, burst: None },
        &mut SeededRng::new(TRACE_SEED),
    )
}

struct SweepRow {
    lambda: f64,
    load_factor: f64,
    qd_p50_s: f64,
    qd_p95_s: f64,
    qd_p99_s: f64,
    slo_attainment: f64,
    shed_fraction: f64,
    timed_out_fraction: f64,
    throughput_per_s: f64,
}

fn mode_summary(report: &ServeReport) -> (f64, f64, f64) {
    (
        report.throughput_per_s(),
        report.queue_delay_percentile_s(99.0),
        report.bucket_stats.iter().map(|s| s.padded_rows).sum::<u64>() as f64
            / report.bucket_stats.iter().map(|s| s.real_rows + s.padded_rows).sum::<u64>().max(1)
                as f64,
    )
}

fn main() {
    let operator = operator();
    let cfg = config();

    // Calibrate the saturation point from a light-load unbatched run: mean
    // service over the actual request mix, pool capacity = units / mean.
    let probe_server =
        OnlineServer::new(cfg, operator.clone(), FaultPlan::none(), ServeConfig::immediate());
    let probe = probe_server.serve(&trace_at(1_000.0, None)).expect("healthy pool");
    let mean_service_s = probe.records.iter().map(|r| r.service_s).sum::<f64>()
        / probe.records.len() as f64;
    let lambda_star = cfg.num_accelerators as f64 / mean_service_s;
    // Deadline: 6x the mean service time — tight enough that queueing past
    // saturation visibly burns it, loose enough that light load meets it.
    let slo_ns = secs_to_ns(6.0 * mean_service_s);
    let analytic = ServiceEstimator::new(cfg, 0.25);

    // 1. λ sweep at fixed shapes.
    let serve_config = ServeConfig {
        queue_capacity: Some(24),
        backpressure: Backpressure::ShedNewest,
        batch: BatchPolicy::single_bucket(4, slo_ns / 4),
        shed_unmeetable: true,
        ..ServeConfig::default()
    };
    let server = OnlineServer::new(cfg, operator.clone(), FaultPlan::none(), serve_config);
    let mut rows: Vec<SweepRow> = Vec::new();
    for load_factor in [0.25, 0.5, 1.0, 2.0, 4.0, 8.0] {
        let lambda = load_factor * lambda_star;
        let report = server.serve(&trace_at(lambda, Some(slo_ns))).expect("healthy pool");
        let n = report.offered_count() as f64;
        rows.push(SweepRow {
            lambda,
            load_factor,
            qd_p50_s: report.queue_delay_percentile_s(50.0),
            qd_p95_s: report.queue_delay_percentile_s(95.0),
            qd_p99_s: report.queue_delay_percentile_s(99.0),
            slo_attainment: report.slo_attainment(),
            shed_fraction: report.shed_count() as f64 / n,
            timed_out_fraction: report.timed_out_count() as f64 / n,
            throughput_per_s: report.throughput_per_s(),
        });
    }

    // 2. Bucketed vs padded batching on an overloaded mixed-length trace.
    let batch_trace = trace_at(4.0 * lambda_star, None);
    let serve_mode = |mode| {
        let server = OnlineServer::new(
            cfg,
            operator.clone(),
            FaultPlan::none(),
            ServeConfig {
                batch: BatchPolicy::single_bucket(8, slo_ns),
                mode,
                ..ServeConfig::default()
            },
        );
        server.serve(&batch_trace).expect("healthy pool")
    };
    let (bucketed_tp, bucketed_qd99, bucketed_waste) =
        mode_summary(&serve_mode(BatcherMode::Bucketed));
    let (padded_tp, padded_qd99, padded_waste) = mode_summary(&serve_mode(BatcherMode::Padded));
    let gain_pct = (bucketed_tp / padded_tp - 1.0) * 100.0;

    println!("{{");
    println!("  \"bench\": \"online_serving\",");
    println!(
        "  \"capture_command\": \"cargo run --release -p elsa-bench --bin bench_serve > BENCH_serve.json\","
    );
    println!("  \"workload\": \"{}\",", workload().name());
    println!("  \"trace_count\": {COUNT},");
    println!("  \"trace_seed\": {TRACE_SEED},");
    println!("  \"num_accelerators\": {},", cfg.num_accelerators);
    println!(
        "  \"note\": \"all latencies and throughputs are the simulator's deterministic virtual clock; the JSON reproduces bit-for-bit on any host. One seeded request sequence is replayed at every lambda (forked PRNG streams fix the shapes), so load points compare like with like.\","
    );
    println!("  \"calibration\": {{");
    println!("    \"mean_service_s\": {mean_service_s:.9},");
    println!("    \"measured_sustainable_lambda_per_s\": {lambda_star:.1},");
    println!(
        "    \"analytic_sustainable_lambda_per_s\": {:.1},",
        analytic.sustainable_lambda_per_s(
            (probe.records.iter().map(|r| r.n_real).sum::<usize>() / probe.records.len()).max(1)
        )
    );
    println!("    \"slo_ns\": {slo_ns}");
    println!("  }},");
    println!("  \"lambda_sweep\": [");
    let last = rows.len() - 1;
    for (i, r) in rows.iter().enumerate() {
        let comma = if i == last { "" } else { "," };
        println!(
            "    {{ \"load_factor\": {:.2}, \"lambda_per_s\": {:.1}, \"queue_delay_p50_s\": {:.9}, \"queue_delay_p95_s\": {:.9}, \"queue_delay_p99_s\": {:.9}, \"slo_attainment\": {:.4}, \"shed_fraction\": {:.4}, \"timed_out_fraction\": {:.4}, \"throughput_per_s\": {:.1} }}{comma}",
            r.load_factor,
            r.lambda,
            r.qd_p50_s,
            r.qd_p95_s,
            r.qd_p99_s,
            r.slo_attainment,
            r.shed_fraction,
            r.timed_out_fraction,
            r.throughput_per_s
        );
    }
    println!("  ],");
    println!("  \"batching\": {{");
    println!("    \"load_factor\": 4.0,");
    println!("    \"max_batch\": 8,");
    println!("    \"bucketed\": {{ \"throughput_per_s\": {bucketed_tp:.1}, \"queue_delay_p99_s\": {bucketed_qd99:.9}, \"padding_waste\": {bucketed_waste:.4} }},");
    println!("    \"padded\": {{ \"throughput_per_s\": {padded_tp:.1}, \"queue_delay_p99_s\": {padded_qd99:.9}, \"padding_waste\": {padded_waste:.4} }},");
    println!("    \"bucketed_throughput_gain_pct\": {gain_pct:.2}");
    println!("  }}");
    println!("}}");
}
