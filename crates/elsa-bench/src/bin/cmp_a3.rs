//! **E8 / §V-E** — comparison with the A³ accelerator on a
//! BERT / SQuAD v1.1-like workload.
//!
//! Paper numbers: A³'s approximation gives 1.85× over its own base at 1.3%
//! accuracy loss; ELSA-conservative/moderate give 2.76×/3.72× over
//! ELSA-base at <1%/<2.5% loss (5.96×/8.04× better raw speedup after
//! accounting for baselines). A³'s host-side sort preprocessing also stops
//! it from scaling to multiple accelerators.
//!
//! Run: `cargo run --release -p elsa-bench --bin cmp_a3`

use elsa_baselines::A3Model;
use elsa_bench::harness::{compare_a3, evaluate_workload_perf, HarnessOptions};
use elsa_bench::table::{fmt, Table};
use elsa_workloads::{DatasetKind, ModelKind, Workload};

fn main() {
    let opts = HarnessOptions::default();
    let workload = Workload { model: ModelKind::BertLarge, dataset: DatasetKind::SquadV11 };
    let perf = evaluate_workload_perf(&workload, &opts);
    let cmp = compare_a3(&perf);
    println!("§V-E — ELSA vs A3 on {}\n", workload.name());
    let mut table = Table::new(&["metric", "A3", "ELSA-conservative", "ELSA-moderate"]);
    table.row(&[
        "speedup over own base".into(),
        format!("{:.2}x", cmp.a3_speedup),
        format!("{:.2}x", cmp.elsa_conservative_speedup),
        format!("{:.2}x", cmp.elsa_moderate_speedup),
    ]);
    table.row(&[
        "relative advantage vs A3".into(),
        "1.00x".into(),
        format!("{:.2}x", cmp.elsa_conservative_speedup / cmp.a3_speedup),
        format!("{:.2}x", cmp.elsa_moderate_speedup / cmp.a3_speedup),
    ]);
    table.print();
    println!("paper: A3 1.85x; ELSA 2.76x / 3.72x over its base\n");

    // Preprocessing scaling pathology.
    let a3 = A3Model::paper();
    let n = perf.mean_real_len.round() as usize;
    println!("A3 preprocessing share of total time vs number of accelerators:");
    let mut scaling = Table::new(&["units", "total time (us)", "preprocessing share (%)"]);
    for units in [1usize, 2, 4, 8, 12] {
        let total = a3.total_time_s(n, 64, units, true);
        let share = a3.preprocessing_time_s(n, 64) / total;
        scaling.row(&[units.to_string(), fmt(total * 1e6, 1), fmt(share * 100.0, 1)]);
    }
    scaling.print();
    println!(
        "\nELSA's preprocessing runs on-accelerator and replicates with it; A3's\nhost-side column sort does not (and needs 2x key-matrix storage: factor {}).",
        a3.preprocessing_storage_factor()
    );
}
