//! **E-SESSION** — amortized per-token decode cost of the incremental
//! session cache versus from-scratch preprocessing, plus the bounded-cache
//! behavior at 1k+ concurrent sessions. Emitted as JSON for the committed
//! `BENCH_session.json` at the repo root.
//!
//! Capture: `cargo run --release -p elsa-bench --bin bench_session > BENCH_session.json`
//!
//! Every number is **host-independent**: per-step cycle costs come from the
//! closed-form decode estimate (`ServiceEstimator::decode_step_cycles`, the
//! paper's per-query bound plus preprocessing), cache behavior from the
//! deterministic `SessionRegistry`, and every schedule from pinned seeds.
//! No wall clock is read, so `scripts/verify.sh` diffs this bin's output
//! against the committed file as a regression gate.
//!
//! Two sections:
//!
//! * `amortized_decode` — decoding a context token by token to final length
//!   `n`: the incremental path pays `O(k)` hash work per step (only the
//!   appended token is preprocessed), the from-scratch path re-preprocesses
//!   all `t` resident tokens at step `t`. Amortized per-token cycles must
//!   stay strictly below from-scratch for every `n ≥ 128`.
//! * `concurrent_sessions` — 1024 interleaved decode sessions against the
//!   registry under a capacity sweep (unbounded, then 75/50/25 % of the
//!   unbounded peak) × {LRU, SLO-aware}: hit/cold/stale accounting,
//!   evictions, peak residency, and the total decode cycles actually
//!   charged (hits pay appended-only preprocessing; evicted sessions pay
//!   the full rebuild on return) versus the always-from-scratch total.

use elsa_linalg::SeededRng;
use elsa_serve::{CacheConfig, EvictionPolicy, ServiceEstimator, SessionRegistry};
use elsa_sim::AcceleratorConfig;

const D: usize = 64;
const K: usize = 64;
/// Assumed candidate fraction for the closed-form bound (the paper's
/// moderate operating point).
const RHO: f64 = 0.25;
const SESSIONS: usize = 1024;
const SHAPE_SEED: u64 = 0x5E55_BE7C;
const PICK_SEED: u64 = 0x5E55_BE7D;

/// One session's turn schedule: a prompt prefill, then single-token decode
/// steps up to the total length (the same shape `SessionSpec::turns` emits).
#[derive(Clone, Copy)]
struct Spec {
    prompt: usize,
    total: usize,
}

fn record_specs(rng: &mut SeededRng) -> Vec<Spec> {
    (0..SESSIONS)
        .map(|_| {
            let total = 128 + rng.index(385); // 128..=512, within n_max
            let prompt = 1 + rng.index(total / 2);
            Spec { prompt, total }
        })
        .collect()
}

struct SweepRow {
    label: String,
    policy: &'static str,
    capacity_bytes: Option<u64>,
    hits: u64,
    cold: u64,
    stale: u64,
    rebuilt_tokens: u64,
    evictions: u64,
    peak_bytes: u64,
    charged_cycles: u64,
    scratch_cycles: u64,
}

/// Replays the interleaved 1024-session decode stream against one cache
/// configuration, charging each turn the closed-form hit or rebuild cost.
fn run_sweep(
    est: &ServiceEstimator,
    specs: &[Spec],
    label: &str,
    policy_name: &'static str,
    cache: CacheConfig,
) -> SweepRow {
    let mut registry = SessionRegistry::new(cache, D, K);
    let mut pick_rng = SeededRng::new(PICK_SEED);
    let mut alive: Vec<usize> = (0..specs.len()).collect();
    let mut prefix = vec![0usize; specs.len()];
    let (mut hits, mut cold, mut stale, mut rebuilt_tokens) = (0u64, 0u64, 0u64, 0u64);
    let (mut charged_cycles, mut scratch_cycles) = (0u64, 0u64);
    while !alive.is_empty() {
        let slot = pick_rng.index(alive.len());
        let s = alive[slot];
        let spec = specs[s];
        let appended = if prefix[s] == 0 { spec.prompt } else { 1 };
        prefix[s] += appended;
        let expected = prefix[s] - appended;
        let hit = expected > 0 && registry.cached_len(s as u64) == Some(expected);
        if expected == 0 {
            cold += 1;
        } else if hit {
            hits += 1;
        } else {
            stale += 1;
            rebuilt_tokens += expected as u64;
        }
        charged_cycles += est.decode_step_cycles(prefix[s], appended, hit);
        scratch_cycles += est.decode_step_cycles(prefix[s], appended, false);
        if prefix[s] == spec.total {
            registry.remove(s as u64);
            // `Vec::remove` keeps order stable, so the pick stream replays.
            alive.remove(slot);
        } else {
            registry.commit(s as u64, prefix[s]);
        }
    }
    SweepRow {
        label: label.to_owned(),
        policy: policy_name,
        capacity_bytes: cache.capacity_bytes,
        hits,
        cold,
        stale,
        rebuilt_tokens,
        evictions: registry.evictions(),
        peak_bytes: registry.peak_bytes(),
        charged_cycles,
        scratch_cycles,
    }
}

fn main() {
    let est = ServiceEstimator::new(AcceleratorConfig::paper(), RHO);

    // Section 1: single-session amortized decode, token by token to n.
    let finals = [128usize, 200, 384, 512];
    let mut amortized = Vec::new();
    for &n in &finals {
        let incremental: u64 = (1..=n).map(|t| est.decode_step_cycles(t, 1, true)).sum();
        let scratch: u64 = (1..=n).map(|t| est.decode_step_cycles(t, 1, false)).sum();
        amortized.push((n, incremental, scratch));
    }

    // Section 2: the concurrent-session sweep. The unbounded run's peak
    // residency anchors the capacity fractions, so the bounded rows are
    // meaningfully over-subscribed regardless of the sampled lengths.
    let specs = record_specs(&mut SeededRng::new(SHAPE_SEED));
    let unbounded = run_sweep(&est, &specs, "unbounded", "lru", CacheConfig::unbounded());
    let peak = unbounded.peak_bytes;
    let mut sweep = vec![unbounded];
    for (frac_label, num, den) in [("75pct", 3u64, 4u64), ("50pct", 1, 2), ("25pct", 1, 4)] {
        let cap = peak * num / den;
        for (policy_name, policy) in
            [("lru", EvictionPolicy::Lru), ("slo_aware", EvictionPolicy::SloAware)]
        {
            sweep.push(run_sweep(
                &est,
                &specs,
                &format!("{frac_label}_{policy_name}"),
                policy_name,
                CacheConfig { capacity_bytes: Some(cap), policy },
            ));
        }
    }

    println!("{{");
    println!("  \"bench\": \"incremental_decode_sessions\",");
    println!(
        "  \"capture_command\": \"cargo run --release -p elsa-bench --bin bench_session > BENCH_session.json\","
    );
    println!("  \"note\": \"all values are host-independent (closed-form decode-step cycles, deterministic cache registry, pinned seeds); scripts/verify.sh diffs this bin's output against the committed file\",");
    println!(
        "  \"model\": {{ \"d\": {D}, \"k\": {K}, \"candidate_fraction\": {RHO:.2}, \"per_token_bytes\": {} }},",
        SessionRegistry::per_token_bytes(D, K)
    );
    println!("  \"amortized_decode\": [");
    for (i, &(n, incremental, scratch)) in amortized.iter().enumerate() {
        let comma = if i + 1 == amortized.len() { "" } else { "," };
        println!(
            "    {{ \"n\": {}, \"incremental_total_cycles\": {}, \"scratch_total_cycles\": {}, \"incremental_per_token_cycles\": {:.1}, \"scratch_per_token_cycles\": {:.1}, \"speedup\": {:.3}, \"incremental_strictly_cheaper\": {} }}{}",
            n,
            incremental,
            scratch,
            incremental as f64 / n as f64,
            scratch as f64 / n as f64,
            scratch as f64 / incremental as f64,
            incremental < scratch,
            comma
        );
    }
    println!("  ],");
    println!("  \"concurrent_sessions\": {{");
    println!("    \"sessions\": {SESSIONS},");
    println!("    \"shape_seed\": \"0x{SHAPE_SEED:X}\",");
    println!("    \"pick_seed\": \"0x{PICK_SEED:X}\",");
    println!("    \"sweep\": [");
    for (i, r) in sweep.iter().enumerate() {
        let comma = if i + 1 == sweep.len() { "" } else { "," };
        let capacity = r
            .capacity_bytes
            .map_or_else(|| "null".to_owned(), |c| c.to_string());
        let served = r.hits + r.cold + r.stale;
        println!(
            "      {{ \"label\": \"{}\", \"policy\": \"{}\", \"capacity_bytes\": {}, \"turns\": {}, \"hits\": {}, \"cold\": {}, \"stale\": {}, \"hit_rate\": {:.4}, \"rebuilt_tokens\": {}, \"evictions\": {}, \"peak_bytes\": {}, \"charged_cycles\": {}, \"scratch_cycles\": {}, \"amortized_speedup\": {:.3}, \"cheaper_than_scratch\": {} }}{}",
            r.label,
            r.policy,
            capacity,
            served,
            r.hits,
            r.cold,
            r.stale,
            r.hits as f64 / served as f64,
            r.rebuilt_tokens,
            r.evictions,
            r.peak_bytes,
            r.charged_cycles,
            r.scratch_cycles,
            r.scratch_cycles as f64 / r.charged_cycles as f64,
            r.charged_cycles < r.scratch_cycles,
            comma
        );
    }
    println!("    ]");
    println!("  }}");
    println!("}}");
}
