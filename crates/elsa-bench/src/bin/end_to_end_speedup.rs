//! **E13 / §V-C "Impact on End-to-End Performance"** — model-level speedup
//! when ELSA-conservative accelerators handle the self-attention while the
//! GPU runs the rest of each layer, at the published max input length and
//! at 4× that length.
//!
//! Paper: 1.4–2.5× end-to-end at default lengths; 2.4–5.0× at 4× lengths.
//!
//! Run: `cargo run --release -p elsa-bench --bin end_to_end_speedup`

use elsa_baselines::GpuModel;
use elsa_bench::harness::{evaluate_workload_perf, ElsaPoint, HarnessOptions};
use elsa_bench::table::{fmt, Table};
use elsa_workloads::{DatasetKind, ModelKind, Workload};

/// End-to-end speedup with attention offloaded to ELSA: Amdahl over the
/// attention fraction, with the offloaded attention time taken from the
/// cycle simulation (per head, all heads across 12 accelerators).
fn speedup(
    gpu: &GpuModel,
    model: ModelKind,
    elsa_attention_latency_s: f64,
    seq_scale: f64,
) -> f64 {
    let cfg = model.config();
    let n = (cfg.max_seq_len as f64 * seq_scale) as usize;
    let gpu_attention = gpu.attention_kernel_time_s(n, cfg.d_head()) * cfg.num_heads as f64;
    let other = gpu.non_attention_layer_time_s(&cfg, n);
    // ELSA runs heads across its 12 accelerators; scale the measured
    // per-invocation latency to this sequence length (quadratic exec phase).
    let heads_per_round = 12.0f64.min(cfg.num_heads as f64);
    let scale = seq_scale * seq_scale;
    let elsa_attention =
        elsa_attention_latency_s * scale * (cfg.num_heads as f64 / heads_per_round);
    (gpu_attention + other) / (elsa_attention + other)
}

fn main() {
    let opts = HarnessOptions::default();
    let gpu = GpuModel::v100();
    println!("§V-C — end-to-end model speedup with ELSA-conservative attention\n");
    let mut table = Table::new(&["model", "speedup @ 1x len", "speedup @ 4x len"]);
    let pairs = [
        (ModelKind::BertLarge, DatasetKind::SquadV11),
        (ModelKind::RobertaLarge, DatasetKind::SquadV11),
        (ModelKind::AlbertLarge, DatasetKind::SquadV11),
        (ModelKind::SasRec, DatasetKind::MovieLens1M),
        (ModelKind::Bert4Rec, DatasetKind::MovieLens1M),
    ];
    for (model, dataset) in pairs {
        let perf = evaluate_workload_perf(&Workload { model, dataset }, &opts);
        let lat = perf.point(ElsaPoint::Conservative).latency_s;
        table.row(&[
            model.name().to_string(),
            format!("{}x", fmt(speedup(&gpu, model, lat, 1.0), 2)),
            format!("{}x", fmt(speedup(&gpu, model, lat, 4.0), 2)),
        ]);
    }
    table.print();
    println!("\npaper: 1.4-2.5x at default max input length; 2.4-5.0x at 4x length");
}
