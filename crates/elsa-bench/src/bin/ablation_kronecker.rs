//! **Ablation / §III-C** — dense vs 2-way vs 3-way Kronecker hash
//! computation: multiplication counts against angle-estimation quality.
//! The structured transform should cut cost 4–5× with no quality loss.
//!
//! Run: `cargo run --release -p elsa-bench --bin ablation_kronecker`

use elsa_bench::table::{fmt, Table};
use elsa_core::hashing::{estimate_angle, SrpHasher};
use elsa_linalg::{ops, SeededRng};

fn mean_abs_error(hasher: &SrpHasher, rng: &mut SeededRng, trials: usize) -> f64 {
    let d = hasher.dim();
    let mut err = 0.0;
    for _ in 0..trials {
        let a = rng.normal_vec(d);
        let b = rng.normal_vec(d);
        let truth = ops::angle_between(&a, &b);
        let est = estimate_angle(hasher.hash(&a).hamming(&hasher.hash(&b)), hasher.k());
        err += (est - truth).abs();
    }
    err / trials as f64
}

fn main() {
    let d = 64;
    let trials = 2000;
    let mut rng = SeededRng::new(12);
    println!("Ablation — hash projection structure (d = k = 64)\n");
    let mut table = Table::new(&[
        "projection",
        "mults/hash",
        "hash cycles (m_h=256)",
        "mean |angle error| (rad)",
    ]);
    let variants: Vec<(&str, SrpHasher)> = vec![
        ("dense orthogonal", SrpHasher::dense(d, d, &mut rng)),
        ("2-way Kronecker (8x8 ⊗ 8x8)", SrpHasher::kronecker_two_way(d, &mut rng)),
        ("3-way Kronecker (4x4 ⊗ 4x4 ⊗ 4x4)", SrpHasher::kronecker_three_way(d, &mut rng)),
    ];
    for (name, hasher) in &variants {
        let mults = hasher.multiplication_count();
        table.row(&[
            (*name).to_string(),
            mults.to_string(),
            (mults as u64).div_ceil(256).to_string(),
            fmt(mean_abs_error(hasher, &mut rng, trials), 4),
        ]);
    }
    table.print();
    println!(
        "\npaper: dense needs d^2 = 4096 multiplies, 2-way 2·d^1.5 = 1024,\n3-way 3·d^(4/3) = 768 — with identical estimator quality (all orthogonal)"
    );
}
