//! **§I motivation** — long-context attention: today's workaround segments
//! the input at 512 tokens and loses every cross-segment relation; ELSA's
//! cheap attention makes the full-context computation affordable. This
//! binary quantifies both halves of that claim on a 2048-token workload
//! whose planted relevant keys are uniformly distributed (most end up in a
//! different segment than their query).
//!
//! Run: `cargo run --release -p elsa-bench --bin cmp_segmentation`

use elsa_attention::exact;
use elsa_bench::table::{fmt, Table};
use elsa_core::attention::{ElsaAttention, ElsaParams};
use elsa_linalg::SeededRng;
use elsa_sim::{AcceleratorConfig, ElsaAccelerator};
use elsa_sparse::SegmentedAttention;
use elsa_workloads::tasks::ClassificationProbe;
use elsa_workloads::AttentionPatternConfig;

fn main() {
    let n = 2048;
    let d = 64;
    let mut rng = SeededRng::new(50);
    let pattern = AttentionPatternConfig::new(n, d, 6, 2.0);
    let train = pattern.generate(&mut rng);
    let test = pattern.generate(&mut rng);
    let probe = ClassificationProbe::new(16, d, &mut rng);
    let exact_out = exact::attention(&test);

    println!("§I — full-context attention at n = 2048 (relevant keys anywhere)\n");
    let mut table = Table::new(&[
        "scheme",
        "context seen",
        "metric (%)",
        "pairs computed (%)",
        "ELSA cycles (x1000)",
    ]);

    // Status quo: independent 512-token segments.
    let seg = SegmentedAttention::new(512);
    let (seg_out, seg_stats) = seg.forward(&test);
    table.row(&[
        "segmented (512)".into(),
        "within segment".into(),
        fmt(probe.agreement(&exact_out, &seg_out) * 100.0, 1),
        fmt(seg_stats.candidate_fraction() * 100.0, 1),
        "-".into(),
    ]);

    // ELSA over the full context.
    let mut op_rng = SeededRng::new(51);
    let operator = ElsaAttention::learn(
        ElsaParams::for_dims(d, d, &mut op_rng),
        std::slice::from_ref(&train),
        1.0,
    );
    let config = AcceleratorConfig { n_max: n, ..AcceleratorConfig::paper() };
    let accel = ElsaAccelerator::new(config, operator);
    let report = accel.run(&test);
    table.row(&[
        "ELSA (p = 1, full context)".into(),
        "entire input".into(),
        fmt(probe.agreement(&exact_out, &report.output) * 100.0, 1),
        fmt(report.stats.candidate_fraction() * 100.0, 1),
        fmt(report.cycles.total() as f64 / 1000.0, 0),
    ]);

    // Exact full attention on the same hardware, for the cycle comparison.
    let base = accel.run_base(&test);
    table.row(&[
        "exact (full context)".into(),
        "entire input".into(),
        "100.0".into(),
        "100.0".into(),
        fmt(base.cycles.total() as f64 / 1000.0, 0),
    ]);
    table.print();
    println!(
        "\nsegmentation computes few pairs but answers the wrong question when\nrelations cross the 512-token boundary; ELSA sees the whole context for\n{:.1}x fewer cycles than exact full-context attention (the paper's §I case\nfor applying self-attention to larger data)",
        base.cycles.total() as f64 / report.cycles.total() as f64
    );
}
