//! **Ablation / §IV-D "Parallel Pipeline"** — scaling the number of
//! attention computation modules `P_a`: the paper notes that `m_h` and
//! `m_o` must grow with `P_a` ("we find that m_h = 256 and m_o = 16 work
//! well for P_a = 4") or the hash/division stages throttle the now-faster
//! selection/attention stages.
//!
//! Run: `cargo run --release -p elsa-bench --bin ablation_parallel_pipeline`

use elsa_bench::table::{fmt, Table};
use elsa_sim::cycle::{simulate_execution, simulate_execution_base};
use elsa_sim::AcceleratorConfig;

fn candidates(n: usize, c: usize) -> Vec<Vec<usize>> {
    // Stride by a prime so the candidates spread evenly across banks
    // (a power-of-two stride would alias into a single bank).
    let mut one: Vec<usize> = (0..c).map(|i| (i * 509) % n).collect();
    one.sort_unstable();
    one.dedup();
    vec![one; n]
}

fn main() {
    let n = 512;
    println!("Ablation — parallel pipeline scaling (n = 512, c = 16 candidates/query)\n");
    let mut table = Table::new(&[
        "P_a",
        "m_h",
        "m_o",
        "base cycles/query",
        "approx cycles/query",
        "approx speedup",
        "bottleneck",
    ]);
    // (P_a, m_h, m_o): first with naive fixed m_h/m_o, then the paper's
    // balanced values.
    let configs = [
        (1usize, 64usize, 8usize),
        (2, 64, 8),
        (4, 64, 8),
        (4, 256, 16), // the paper's balanced configuration
        (8, 64, 8),   // unbalanced: the hash module throttles the pipeline
        (8, 256, 16),
    ];
    for (p_a, m_h, m_o) in configs {
        let cfg = AcceleratorConfig { p_a, m_h, m_o, ..AcceleratorConfig::paper() };
        let base = simulate_execution_base(&cfg, n, n);
        let approx = simulate_execution(&cfg, n, &candidates(n, 16), false);
        let names = ["hash", "selection scan", "attention", "division"];
        let dominant = approx
            .bottleneck_counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &v)| v)
            .map(|(i, _)| names[i])
            .expect("four stages");
        table.row(&[
            p_a.to_string(),
            m_h.to_string(),
            m_o.to_string(),
            fmt(base.execution as f64 / n as f64, 1),
            fmt(approx.execution as f64 / n as f64, 1),
            format!("{:.2}x", base.execution as f64 / approx.execution as f64),
            dominant.to_string(),
        ]);
    }
    table.print();
    println!(
        "\nscaling P_a without scaling m_h/m_o moves the bottleneck to the hash\nmodule (§IV-D: 'pipeline configuration parameters such as m_h and m_o may\nneed to be adjusted'); the paper's P_a = 4, m_h = 256, m_o = 16 is balanced"
    );
}
