//! **E-FLASH** — FLOP/byte/model-cycle accounting of the tiled streaming
//! (FlashAttention-class) exact baseline versus the naive exact kernel and
//! ELSA's candidate selection, across the workload zoo. Emitted as JSON for
//! the committed `BENCH_flash.json` at the repo root.
//!
//! Capture: `cargo run --release -p elsa-bench --bin bench_flash > BENCH_flash.json`
//!
//! Every number here is **host-independent**: operation counts come from
//! `elsa_attention::flops`, cycle counts from the analytic `FlashModel` /
//! `IdealAccelerator` rooflines and the deterministic ELSA cycle simulator,
//! and workloads are generated from pinned seeds. No wall clock is read, so
//! `scripts/verify.sh` diffs the bin's output against the committed file as
//! a regression gate.
//!
//! Per workload (one pinned invocation each):
//!
//! * the naive exact kernel's FLOPs, off-chip bytes (with the O(n²)
//!   score-matrix spill) and workspace;
//! * the streaming kernel's FLOPs (renormalization charged), bytes (tile
//!   reloads charged), O(n)-class workspace, `FlashModel` cycles and
//!   roofline bottleneck;
//! * ELSA's approximate pipeline: simulated cycles and selected-pair
//!   fraction from the learned operator, plus ELSA-base (exact) cycles via
//!   the same streaming-fallback path the server degrades through.

use elsa_attention::flops::{naive_attention_bytes, FlashAttentionOps};
use elsa_attention::{flash, AttentionInputs};
use elsa_baselines::{FlashModel, IdealAccelerator};
use elsa_core::attention::{ElsaAttention, ElsaParams};
use elsa_linalg::SeededRng;
use elsa_sim::{AcceleratorConfig, ElsaAccelerator};
use elsa_workloads::Workload;

const D: usize = 64;
const OPERATOR_SEED: u64 = 0xE15B;
const DATA_SEED: u64 = 0xF1A5;
/// Approximation degree for the ELSA operator (the paper's moderate point).
const P: f64 = 1.0;

struct Row {
    workload: String,
    n: usize,
    naive_flops: u64,
    naive_bytes: u64,
    naive_workspace_bytes: u64,
    flash_flops: u64,
    flash_bytes: u64,
    flash_tile_reload_bytes: u64,
    flash_workspace_bytes: u64,
    flash_cycles: u64,
    flash_bottleneck: &'static str,
    ideal_cycles: u64,
    elsa_base_cycles: u64,
    elsa_approx_cycles: u64,
    elsa_selected_fraction: f64,
}

fn row(workload: &Workload, index: u64) -> Row {
    let mut rng = SeededRng::new(DATA_SEED ^ (index << 8));
    let train = workload.generate_batch(1, &mut rng);
    let operator = ElsaAttention::learn(
        ElsaParams::for_dims(D, D, &mut SeededRng::new(OPERATOR_SEED)),
        &train,
        P,
    );
    let accel = ElsaAccelerator::new(AcceleratorConfig::paper(), operator);
    let test: AttentionInputs = workload.generate_invocation(&mut rng);
    let n = test.num_keys();

    let approx = accel.run(&test);
    let base = accel.run_base_streaming(&test);
    let model = FlashModel::paper();
    let ops = FlashAttentionOps::count(n, n, D, D, model.tile);
    // Single-tile flash IS the naive compute (no renormalization, no tile
    // reloads), counted in the same FLOP convention — so the naive/flash
    // columns differ only by the charges the tiling actually adds.
    let naive_ops = FlashAttentionOps::count(n, n, D, D, n);

    Row {
        workload: workload.name(),
        n,
        naive_flops: naive_ops.total_flops(),
        naive_bytes: naive_attention_bytes(n, n, D, D),
        naive_workspace_bytes: flash::naive_workspace_bytes(n, n),
        flash_flops: ops.total_flops(),
        flash_bytes: ops.total_bytes(),
        flash_tile_reload_bytes: ops.tile_reload_bytes,
        flash_workspace_bytes: flash::streaming_workspace_bytes(n, D, 1),
        flash_cycles: model.attention_cycles(n, D),
        flash_bottleneck: model.bottleneck(n, D),
        ideal_cycles: IdealAccelerator::paper().attention_cycles(n, D),
        elsa_base_cycles: base.cycles.total(),
        elsa_approx_cycles: approx.cycles.total(),
        elsa_selected_fraction: approx.stats.candidate_fraction(),
    }
}

fn main() {
    let model = FlashModel::paper();
    let rows: Vec<Row> = Workload::all()
        .iter()
        .enumerate()
        .map(|(i, w)| row(w, i as u64))
        .collect();

    println!("{{");
    println!("  \"bench\": \"flash_streaming_baseline\",");
    println!(
        "  \"capture_command\": \"cargo run --release -p elsa-bench --bin bench_flash > BENCH_flash.json\","
    );
    println!("  \"note\": \"all values are host-independent (analytic FLOP/byte counts, deterministic cycle models, pinned seeds); scripts/verify.sh diffs this bin's output against the committed file\",");
    println!(
        "  \"flash_model\": {{ \"multipliers\": {}, \"clock_ghz\": {:.1}, \"exp_mult_lanes\": {}, \"tile\": {}, \"hbm_bytes_per_cycle\": {:.1} }},",
        model.multipliers, model.clock_ghz, model.exp_mult_lanes, model.tile, model.hbm_bytes_per_cycle
    );
    println!("  \"approximation_p\": {P:.1},");
    println!("  \"workloads\": [");
    for (i, r) in rows.iter().enumerate() {
        let comma = if i + 1 == rows.len() { "" } else { "," };
        println!("    {{ \"workload\": \"{}\", \"n\": {}, \"naive_flops\": {}, \"naive_bytes\": {}, \"naive_workspace_bytes\": {}, \"flash_flops\": {}, \"flash_bytes\": {}, \"flash_tile_reload_bytes\": {}, \"flash_workspace_bytes\": {}, \"flash_cycles\": {}, \"flash_bottleneck\": \"{}\", \"ideal_cycles\": {}, \"elsa_base_cycles\": {}, \"elsa_approx_cycles\": {}, \"elsa_selected_fraction\": {:.4} }}{}",
            r.workload, r.n, r.naive_flops, r.naive_bytes, r.naive_workspace_bytes,
            r.flash_flops, r.flash_bytes, r.flash_tile_reload_bytes, r.flash_workspace_bytes,
            r.flash_cycles, r.flash_bottleneck, r.ideal_cycles,
            r.elsa_base_cycles, r.elsa_approx_cycles, r.elsa_selected_fraction, comma);
    }
    println!("  ]");
    println!("}}");
}
