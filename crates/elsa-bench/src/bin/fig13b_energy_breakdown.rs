//! **E7 / Fig. 13(b)** — per-module energy breakdown of one self-attention
//! invocation, for ELSA-base / conservative / moderate / aggressive
//! (the paper's stacked bars), averaged over the NLP workloads.
//!
//! Run: `cargo run --release -p elsa-bench --bin fig13b_energy_breakdown`

use elsa_bench::harness::{evaluate_workload_perf, ElsaPoint, HarnessOptions};
use elsa_bench::table::{fmt, Table};
use elsa_workloads::{DatasetKind, ModelKind, Workload};

fn main() {
    let opts = HarnessOptions::default();
    let workload = Workload { model: ModelKind::BertLarge, dataset: DatasetKind::SquadV11 };
    let perf = evaluate_workload_perf(&workload, &opts);
    println!(
        "Fig. 13(b) — energy breakdown per invocation, {} (µJ)\n",
        workload.name()
    );
    let module_names: Vec<&'static str> =
        perf.point(ElsaPoint::Base).module_energy_j.iter().map(|(n, _)| *n).collect();
    let mut headers: Vec<&str> = vec!["module"];
    for p in ElsaPoint::all() {
        headers.push(p.name());
    }
    let mut table = Table::new(&headers);
    for (i, name) in module_names.iter().enumerate() {
        let mut row = vec![(*name).to_string()];
        for point in ElsaPoint::all() {
            let j = perf.point(point).module_energy_j[i].1;
            row.push(fmt(j * 1e6, 2));
        }
        table.row(&row);
    }
    let mut static_row = vec!["(static, all modules)".to_string()];
    let mut total_row = vec!["TOTAL".to_string()];
    for point in ElsaPoint::all() {
        let p = perf.point(point);
        static_row.push(fmt(p.static_energy_j * 1e6, 2));
        total_row.push(fmt(p.energy_j * 1e6, 2));
    }
    table.row(&static_row);
    table.row(&total_row);
    table.print();
    println!(
        "\npaper: approximation cuts total energy mainly by shrinking the attention\ncomputation, output division and external memory energy, despite adding the\nhash/selection hardware"
    );
}
