//! Shared harness for the per-figure benchmark binaries.
//!
//! Every table and figure of the paper's evaluation section has a binary in
//! `src/bin/` (see `DESIGN.md` §3 for the index). The heavy lifting —
//! sweeping the approximation degree `p` per workload, picking the
//! conservative / moderate / aggressive operating points, and running the
//! cycle-level accelerator simulation — lives here so the binaries stay
//! declarative.
//!
//! All entry points are deterministic: they take explicit seeds and the
//! binaries use fixed defaults, so two runs print identical numbers.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod harness;
pub mod table;

pub use harness::{ElsaPoint, PointResult, WorkloadPerf};
pub use table::Table;
