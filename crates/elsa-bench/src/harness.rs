//! Workload-level evaluation driver shared by the figure binaries.

use elsa_attention::exact::AttentionInputs;
use elsa_baselines::{A3Model, AttentionDevice, GpuModel, IdealAccelerator, TpuModel};
use elsa_core::attention::{ElsaAttention, ElsaParams};
use elsa_linalg::SeededRng;
use elsa_sim::{AcceleratorConfig, ElsaAccelerator};
use elsa_workloads::workload::{evaluate_workload, AccuracyEvaluation, Workload, P_GRID};

/// The four ELSA operating points of §V-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElsaPoint {
    /// No approximation (`p = 0` fallback).
    Base,
    /// Worst-case accuracy loss ≤ 1% (0.5% NDCG for recommenders).
    Conservative,
    /// Loss ≤ 2.5% (1.0% for recommenders).
    Moderate,
    /// Loss ≤ 5% (2.0% for recommenders).
    Aggressive,
}

impl ElsaPoint {
    /// All four points in presentation order.
    #[must_use]
    pub const fn all() -> [ElsaPoint; 4] {
        [ElsaPoint::Base, ElsaPoint::Conservative, ElsaPoint::Moderate, ElsaPoint::Aggressive]
    }

    /// Display name.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            ElsaPoint::Base => "ELSA-base",
            ElsaPoint::Conservative => "ELSA-conservative",
            ElsaPoint::Moderate => "ELSA-moderate",
            ElsaPoint::Aggressive => "ELSA-aggressive",
        }
    }

    /// The accuracy-loss budget (percentage points) for a workload, or
    /// `None` for the base point.
    #[must_use]
    pub fn loss_budget(&self, workload: &Workload) -> Option<f64> {
        let rec = workload.model.is_recommender();
        match self {
            ElsaPoint::Base => None,
            ElsaPoint::Conservative => Some(if rec { 0.5 } else { 1.0 }),
            ElsaPoint::Moderate => Some(if rec { 1.0 } else { 2.5 }),
            ElsaPoint::Aggressive => Some(if rec { 2.0 } else { 5.0 }),
        }
    }
}

/// Performance/energy results for one ELSA operating point on one workload.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// Which operating point.
    pub point: ElsaPoint,
    /// The approximation degree chosen for it (0 for base).
    pub p: f64,
    /// Measured proxy-accuracy loss in percentage points (0 for base).
    pub loss_percent: f64,
    /// Fraction of query–key pairs selected as candidates.
    pub candidate_fraction: f64,
    /// Mean latency of one self-attention invocation on one accelerator.
    pub latency_s: f64,
    /// Fraction of the latency spent preprocessing (Fig. 11(b) hatching).
    pub preprocessing_fraction: f64,
    /// Mean energy per invocation (one accelerator incl. external memories).
    pub energy_j: f64,
    /// Mean per-module dynamic energy, Table I order.
    pub module_energy_j: Vec<(&'static str, f64)>,
    /// Mean static (leakage) energy per invocation.
    pub static_energy_j: f64,
    /// Invocation throughput of the full twelve-accelerator set.
    pub throughput_per_s: f64,
}

/// One workload's results across devices and ELSA points.
#[derive(Debug, Clone)]
pub struct WorkloadPerf {
    /// The workload.
    pub workload: Workload,
    /// Mean number of real (non-padding) entities over the test batch.
    pub mean_real_len: f64,
    /// Padded model input length.
    pub padded_len: usize,
    /// GPU latency per invocation (pays for padding).
    pub gpu_latency_s: f64,
    /// GPU energy per invocation.
    pub gpu_energy_j: f64,
    /// Ideal-accelerator latency per invocation (real entities only).
    pub ideal_latency_s: f64,
    /// TPU latency per invocation (pays for padding).
    pub tpu_latency_s: f64,
    /// Results for base / conservative / moderate / aggressive.
    pub points: Vec<PointResult>,
}

impl WorkloadPerf {
    /// The result for a given point.
    ///
    /// # Panics
    ///
    /// Panics if the point was not evaluated.
    #[must_use]
    pub fn point(&self, point: ElsaPoint) -> &PointResult {
        self.points.iter().find(|p| p.point == point).expect("point evaluated")
    }

    /// GPU invocation throughput (the GPU processes one batched invocation
    /// stream; throughput is the reciprocal of its per-invocation latency).
    #[must_use]
    pub fn gpu_throughput_per_s(&self) -> f64 {
        1.0 / self.gpu_latency_s
    }

    /// Ideal-accelerator throughput with the paper's twelve units.
    #[must_use]
    pub fn ideal_throughput_per_s(&self) -> f64 {
        IdealAccelerator::paper().num_units as f64 / self.ideal_latency_s
    }
}

/// Batch sizes for the evaluation driver (kept small enough that every
/// figure binary finishes in seconds, large enough to be stable).
#[derive(Debug, Clone, Copy)]
pub struct HarnessOptions {
    /// Training invocations for threshold learning.
    pub train_batches: usize,
    /// Test invocations for accuracy + performance measurement.
    pub test_batches: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Default for HarnessOptions {
    fn default() -> Self {
        Self { train_batches: 2, test_batches: 4, seed: 2021 }
    }
}

/// Sweeps the approximation degree over [`P_GRID`] for one workload,
/// returning one accuracy evaluation per grid point (Fig. 10's data).
#[must_use]
pub fn sweep_p(workload: &Workload, opts: &HarnessOptions) -> Vec<AccuracyEvaluation> {
    let (train, test) = generate_split(workload, opts);
    P_GRID
        .iter()
        .map(|&p| evaluate_workload(workload, p, &train, &test, opts.seed ^ 0xACC))
        .collect()
}

/// Generates the train/test invocation batches for a workload.
#[must_use]
pub fn generate_split(
    workload: &Workload,
    opts: &HarnessOptions,
) -> (Vec<AttentionInputs>, Vec<AttentionInputs>) {
    let mut rng = SeededRng::new(opts.seed ^ hash_name(&workload.name()));
    let train = workload.generate_batch(opts.train_batches, &mut rng);
    let test = workload.generate_batch(opts.test_batches, &mut rng);
    (train, test)
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3))
}

/// Runs the full device comparison for one workload: GPU / ideal / TPU
/// latencies plus cycle-level ELSA results at all four operating points.
#[must_use]
pub fn evaluate_workload_perf(workload: &Workload, opts: &HarnessOptions) -> WorkloadPerf {
    let (train, test) = generate_split(workload, opts);
    let padded = workload.padded_length();
    let mean_real_len =
        test.iter().map(|i| i.num_keys() as f64).sum::<f64>() / test.len() as f64;

    // Sweep once; pick operating points from the same evaluations.
    let sweep: Vec<AccuracyEvaluation> = P_GRID
        .iter()
        .map(|&p| evaluate_workload(workload, p, &train, &test, opts.seed ^ 0xACC))
        .collect();

    let config = AcceleratorConfig { n_max: padded.div_ceil(4) * 4, ..AcceleratorConfig::paper() };
    let mut points = Vec::new();
    for point in ElsaPoint::all() {
        let (p, loss) = match point.loss_budget(workload) {
            None => (0.0, 0.0),
            Some(budget) => {
                let chosen = sweep
                    .iter().rfind(|e| e.loss_percent() <= budget)
                    .unwrap_or(&sweep[0]);
                (chosen.p, chosen.loss_percent())
            }
        };
        let mut rng = SeededRng::new(opts.seed ^ 0xE15A);
        let params = ElsaParams::for_dims(64, 64, &mut rng);
        let operator = if point == ElsaPoint::Base {
            ElsaAttention::exact_fallback(params)
        } else {
            ElsaAttention::learn(params, &train, p)
        };
        let accel = ElsaAccelerator::new(config, operator);
        let mut latency = 0.0;
        let mut preproc = 0.0;
        let mut energy = 0.0;
        let mut static_energy = 0.0;
        let mut cand = 0.0;
        let mut module_energy: Vec<(&'static str, f64)> = Vec::new();
        for inputs in &test {
            let report =
                if point == ElsaPoint::Base { accel.run_base(inputs) } else { accel.run(inputs) };
            latency += report.cycles.seconds(&config);
            preproc += report.cycles.preprocessing_fraction();
            energy += report.energy.total_j();
            static_energy += report.energy.static_energy_j;
            cand += report.stats.candidate_fraction();
            if module_energy.is_empty() {
                module_energy = report.energy.per_module.clone();
            } else {
                for (slot, (_, j)) in module_energy.iter_mut().zip(&report.energy.per_module) {
                    slot.1 += j;
                }
            }
        }
        let count = test.len() as f64;
        for slot in module_energy.iter_mut() {
            slot.1 /= count;
        }
        points.push(PointResult {
            point,
            p,
            loss_percent: loss,
            candidate_fraction: cand / count,
            latency_s: latency / count,
            preprocessing_fraction: preproc / count,
            energy_j: energy / count,
            module_energy_j: module_energy,
            static_energy_j: static_energy / count,
            throughput_per_s: config.num_accelerators as f64 / (latency / count),
        });
    }

    let gpu = GpuModel::v100();
    let ideal = IdealAccelerator::paper();
    let tpu = TpuModel::v2();
    let ideal_latency = test
        .iter()
        .map(|i| ideal.attention_latency_s(i.num_keys(), padded, 64))
        .sum::<f64>()
        / test.len() as f64;
    WorkloadPerf {
        workload: *workload,
        mean_real_len,
        padded_len: padded,
        gpu_latency_s: gpu.attention_latency_s(padded, padded, 64),
        gpu_energy_j: gpu.attention_energy_j(padded, 64),
        ideal_latency_s: ideal_latency,
        tpu_latency_s: tpu.attention_latency_s(padded, padded, 64),
        points,
    }
}

/// Evaluates every workload of the paper (12 combinations).
#[must_use]
pub fn evaluate_all(opts: &HarnessOptions) -> Vec<WorkloadPerf> {
    Workload::all().iter().map(|w| evaluate_workload_perf(w, opts)).collect()
}

/// The A³ comparison data for §V-E (E8).
#[derive(Debug, Clone, Copy)]
pub struct A3Comparison {
    /// A³'s speedup over its own base from approximation.
    pub a3_speedup: f64,
    /// ELSA-conservative speedup over ELSA-base.
    pub elsa_conservative_speedup: f64,
    /// ELSA-moderate speedup over ELSA-base.
    pub elsa_moderate_speedup: f64,
}

/// Computes the §V-E comparison on a BERT/SQuADv1.1-like workload.
#[must_use]
pub fn compare_a3(perf: &WorkloadPerf) -> A3Comparison {
    let a3 = A3Model::paper();
    let n = perf.mean_real_len.round() as usize;
    let a3_speedup =
        a3.base_execution_cycles(n) as f64 / a3.approx_execution_cycles(n) as f64;
    let base = perf.point(ElsaPoint::Base).latency_s;
    A3Comparison {
        a3_speedup,
        elsa_conservative_speedup: base / perf.point(ElsaPoint::Conservative).latency_s,
        elsa_moderate_speedup: base / perf.point(ElsaPoint::Moderate).latency_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsa_workloads::{DatasetKind, ModelKind};

    fn small_opts() -> HarnessOptions {
        HarnessOptions { train_batches: 1, test_batches: 2, seed: 7 }
    }

    /// A fast workload for harness tests (n = 200 recommender).
    fn fast_workload() -> Workload {
        Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M }
    }

    #[test]
    fn perf_points_ordered_by_aggressiveness() {
        let perf = evaluate_workload_perf(&fast_workload(), &small_opts());
        let base = perf.point(ElsaPoint::Base);
        let cons = perf.point(ElsaPoint::Conservative);
        let aggr = perf.point(ElsaPoint::Aggressive);
        assert!((base.candidate_fraction - 1.0).abs() < 1e-9);
        assert!(cons.candidate_fraction <= 1.0);
        assert!(aggr.candidate_fraction <= cons.candidate_fraction + 1e-9);
        assert!(aggr.latency_s <= cons.latency_s + 1e-12);
        assert!(cons.latency_s <= base.latency_s + 1e-12);
    }

    #[test]
    fn elsa_base_beats_gpu() {
        let perf = evaluate_workload_perf(&fast_workload(), &small_opts());
        let base = perf.point(ElsaPoint::Base);
        assert!(
            base.throughput_per_s > perf.gpu_throughput_per_s(),
            "ELSA-base {} <= GPU {}",
            base.throughput_per_s,
            perf.gpu_throughput_per_s()
        );
    }

    #[test]
    fn sweep_has_one_eval_per_grid_point() {
        let sweep = sweep_p(&fast_workload(), &small_opts());
        assert_eq!(sweep.len(), P_GRID.len());
        for (e, &p) in sweep.iter().zip(&P_GRID) {
            assert_eq!(e.p, p);
        }
    }

    #[test]
    fn a3_comparison_shape() {
        let perf = evaluate_workload_perf(&fast_workload(), &small_opts());
        let cmp = compare_a3(&perf);
        assert!((cmp.a3_speedup - 1.85).abs() < 0.05);
        assert!(cmp.elsa_conservative_speedup >= 1.0);
        assert!(cmp.elsa_moderate_speedup + 1e-9 >= cmp.elsa_conservative_speedup);
    }

    #[test]
    fn deterministic_given_options() {
        let a = evaluate_workload_perf(&fast_workload(), &small_opts());
        let b = evaluate_workload_perf(&fast_workload(), &small_opts());
        assert_eq!(a.gpu_latency_s, b.gpu_latency_s);
        assert_eq!(a.point(ElsaPoint::Moderate).latency_s, b.point(ElsaPoint::Moderate).latency_s);
    }
}
