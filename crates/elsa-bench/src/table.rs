//! Plain-text aligned table rendering for benchmark output.

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use elsa_bench::Table;
/// let mut t = Table::new(&["workload", "speedup"]);
/// t.row(&["BERT / SQuAD v1.1".into(), "43.9".into()]);
/// let s = t.render();
/// assert!(s.contains("BERT"));
/// assert!(s.contains("speedup"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(headers: &[&str]) -> Self {
        Self { headers: headers.iter().map(|s| (*s).to_string()).collect(), rows: Vec::new() }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row length differs from the header count.
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Convenience: append a row of displayable values.
    pub fn row_display(&mut self, cells: &[&dyn std::fmt::Display]) {
        let cells: Vec<String> = cells.iter().map(|c| c.to_string()).collect();
        self.row(&cells);
    }

    /// Renders with aligned columns and a separator under the header.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut width = vec![0usize; cols];
        for (i, h) in self.headers.iter().enumerate() {
            width[i] = h.chars().count();
        }
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                width[i] = width[i].max(c.chars().count());
            }
        }
        let fmt_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                let pad = width[i] - c.chars().count();
                line.push_str(c);
                line.push_str(&" ".repeat(pad));
                if i + 1 < cols {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        let mut out = fmt_row(&self.headers);
        out.push('\n');
        out.push_str(&"-".repeat(width.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Renders as CSV (fields containing commas or quotes are quoted).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let escape = |cell: &str| {
            if cell.contains(',') || cell.contains('"') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let push_row = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| escape(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        push_row(&self.headers, &mut out);
        for row in &self.rows {
            push_row(row, &mut out);
        }
        out
    }
}

/// Formats a float with the given number of decimal places (helper used by
/// the binaries).
#[must_use]
pub fn fmt(v: f64, decimals: usize) -> String {
    format!("{v:.decimals$}")
}

/// Formats a multiplicative factor like `43.9x`.
#[must_use]
pub fn fmt_factor(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}x")
    } else {
        format!("{v:.1}x")
    }
}

/// Geometric mean of a nonempty slice of positive values.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
#[must_use]
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new(&["a", "long-header"]);
        t.row(&["xx".into(), "1".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a "));
        assert!(lines[1].starts_with("---"));
    }

    #[test]
    fn geomean_known() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn rejects_bad_row() {
        let mut t = Table::new(&["a"]);
        t.row(&["x".into(), "y".into()]);
    }

    #[test]
    fn csv_round_trip_basics() {
        let mut t = Table::new(&["name", "value"]);
        t.row(&["plain".into(), "1".into()]);
        t.row(&["with, comma".into(), "quote \" inside".into()]);
        let csv = t.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "name,value");
        assert_eq!(lines[1], "plain,1");
        assert!(lines[2].starts_with("\"with, comma\""));
        assert!(lines[2].contains("\"\"")); // doubled quote
    }

    #[test]
    fn factor_formatting() {
        assert_eq!(fmt_factor(43.93), "43.9x");
        assert_eq!(fmt_factor(442.0), "442x");
        assert_eq!(fmt(0.1234, 2), "0.12");
    }
}
