//! Serial vs parallel attention-pipeline micro-benchmarks.
//!
//! Compares the same computation pinned to one worker
//! (`elsa_parallel::with_threads(1, ..)`) against four workers, for the
//! exact attention kernel and the full ELSA approximate pipeline at
//! n ∈ {128, 512, 2048}. The committed baseline numbers live in
//! `BENCH_parallel.json` at the repo root, captured by the
//! `bench_parallel` binary (see EXPERIMENTS.md §E-PAR).
//!
//! Runs on the `elsa-testkit` bench harness: `cargo bench` measures,
//! `cargo test --benches` smoke-runs every benchmark once.

use elsa_attention::exact::{self, AttentionInputs};
use elsa_core::attention::{ElsaAttention, ElsaParams};
use elsa_linalg::{Matrix, SeededRng};
use elsa_testkit::bench::{Bench, BenchmarkId};

const D: usize = 64;
const PARALLEL_WORKERS: usize = 4;

fn random_inputs(n: usize, seed: u64) -> AttentionInputs {
    let mut rng = SeededRng::new(seed);
    let mk = |rng: &mut SeededRng| Matrix::from_fn(n, D, |_, _| rng.standard_normal() as f32);
    AttentionInputs::new(mk(&mut rng), mk(&mut rng), mk(&mut rng))
}

fn bench_parallel_pipeline(c: &mut Bench) {
    let mut group = c.benchmark_group("exact_attention");
    group.sample_size(10);
    for &n in &[128usize, 512, 2048] {
        let inputs = random_inputs(n, 11);
        group.bench_with_input(BenchmarkId::new("serial", n), &inputs, |b, inputs| {
            b.iter(|| elsa_parallel::with_threads(1, || exact::scaled_attention(inputs)));
        });
        group.bench_with_input(BenchmarkId::new("par4", n), &inputs, |b, inputs| {
            b.iter(|| {
                elsa_parallel::with_threads(PARALLEL_WORKERS, || exact::scaled_attention(inputs))
            });
        });
    }
    group.finish();

    let mut group = c.benchmark_group("elsa_pipeline");
    group.sample_size(10);
    let operator = ElsaAttention::with_threshold(
        ElsaParams::for_dims(D, D, &mut SeededRng::new(12)),
        0.3,
    );
    for &n in &[128usize, 512, 2048] {
        let inputs = random_inputs(n, 13);
        group.bench_with_input(BenchmarkId::new("serial", n), &inputs, |b, inputs| {
            b.iter(|| elsa_parallel::with_threads(1, || operator.forward(inputs)));
        });
        group.bench_with_input(BenchmarkId::new("par4", n), &inputs, |b, inputs| {
            b.iter(|| {
                elsa_parallel::with_threads(PARALLEL_WORKERS, || operator.forward(inputs))
            });
        });
    }
    group.finish();
}

elsa_testkit::bench_main!(bench_parallel_pipeline);
