//! Micro-benchmarks of the hash-computation paths: dense projection vs the
//! 2-way and 3-way Kronecker transforms, plus Hamming distance and the full
//! preprocessing of a key matrix.
//!
//! Runs on the `elsa-testkit` bench harness: `cargo bench` measures,
//! `cargo test --benches` smoke-runs every benchmark once.

use elsa_core::attention::{ElsaParams, PreprocessedKeys};
use elsa_core::hashing::SrpHasher;
use elsa_linalg::{Matrix, SeededRng};
use elsa_testkit::bench::{Bench, BenchmarkId};

fn bench_hashing(c: &mut Bench) {
    let d = 64;
    let mut rng = SeededRng::new(3);
    let x = rng.normal_vec(d);
    let variants: Vec<(&str, SrpHasher)> = vec![
        ("dense", SrpHasher::dense(d, d, &mut rng)),
        ("kronecker2", SrpHasher::kronecker_two_way(d, &mut rng)),
        ("kronecker3", SrpHasher::kronecker_three_way(d, &mut rng)),
    ];
    let mut group = c.benchmark_group("hash_single_vector");
    for (name, hasher) in &variants {
        group.bench_with_input(BenchmarkId::from_parameter(name), hasher, |b, h| {
            b.iter(|| h.hash(&x));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("hamming");
    let h1 = variants[0].1.hash(&x);
    let y = rng.normal_vec(d);
    let h2 = variants[0].1.hash(&y);
    group.bench_function("k64", |b| b.iter(|| h1.hamming(&h2)));
    group.finish();

    let mut group = c.benchmark_group("preprocess_keys");
    group.sample_size(20);
    for &n in &[128usize, 512] {
        let keys = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let mut rng2 = SeededRng::new(4);
        let params = ElsaParams::for_dims(d, d, &mut rng2);
        group.bench_with_input(BenchmarkId::from_parameter(n), &keys, |b, keys| {
            b.iter(|| PreprocessedKeys::compute(&params, keys));
        });
    }
    group.finish();
}

elsa_testkit::bench_main!(bench_hashing);
