//! Micro-benchmarks of the attention kernels: exact attention,
//! candidate-restricted attention, and the full ELSA approximate operator,
//! across sequence lengths.
//!
//! Runs on the `elsa-testkit` bench harness: `cargo bench` measures,
//! `cargo test --benches` smoke-runs every benchmark once.

use elsa_attention::exact;
use elsa_core::attention::{ElsaAttention, ElsaParams};
use elsa_linalg::SeededRng;
use elsa_testkit::bench::{Bench, BenchmarkId};
use elsa_workloads::AttentionPatternConfig;

fn bench_attention(c: &mut Bench) {
    let mut group = c.benchmark_group("attention");
    group.sample_size(20);
    for &n in &[128usize, 256, 512] {
        let cfg = AttentionPatternConfig::new(n, 64, 6, 2.0);
        let mut rng = SeededRng::new(1);
        let train = cfg.generate(&mut rng);
        let inputs = cfg.generate(&mut rng);
        let mut rng2 = SeededRng::new(2);
        let operator =
            ElsaAttention::learn(ElsaParams::for_dims(64, 64, &mut rng2), &[train], 1.0);

        group.bench_with_input(BenchmarkId::new("exact", n), &inputs, |b, inputs| {
            b.iter(|| exact::attention(inputs));
        });
        group.bench_with_input(BenchmarkId::new("elsa_approx", n), &inputs, |b, inputs| {
            b.iter(|| operator.forward(inputs));
        });
        let (cands, _) = operator.candidates(&inputs);
        group.bench_with_input(
            BenchmarkId::new("candidate_attention", n),
            &inputs,
            |b, inputs| {
                b.iter(|| exact::attention_with_candidates(inputs, &cands, 1.0));
            },
        );
    }
    group.finish();
}

elsa_testkit::bench_main!(bench_attention);
