//! Micro-benchmarks of the cycle-level pipeline simulator and the quantized
//! functional datapath — the costs of *running the simulation* itself, which
//! bound how large an experiment sweep can be.
//!
//! Runs on the `elsa-testkit` bench harness: `cargo bench` measures,
//! `cargo test --benches` smoke-runs every benchmark once.

use elsa_core::attention::{ElsaAttention, ElsaParams};
use elsa_linalg::SeededRng;
use elsa_sim::cycle::{simulate_execution, simulate_execution_base};
use elsa_sim::functional::QuantizedElsaAttention;
use elsa_sim::AcceleratorConfig;
use elsa_testkit::bench::{Bench, BenchmarkId};
use elsa_workloads::AttentionPatternConfig;

fn bench_pipeline(c: &mut Bench) {
    let cfg = AcceleratorConfig::paper();
    let n = 512;
    let mut group = c.benchmark_group("cycle_sim");
    group.bench_function("base_n512", |b| {
        b.iter(|| simulate_execution_base(&cfg, n, n));
    });
    let sparse: Vec<Vec<usize>> = (0..n).map(|i| vec![i, (i + 7) % n, (i + 31) % n]).collect();
    group.bench_function("sparse_n512", |b| {
        b.iter(|| simulate_execution(&cfg, n, &sparse, false));
    });
    group.finish();

    let mut group = c.benchmark_group("quantized_datapath");
    group.sample_size(10);
    for &n in &[64usize, 128] {
        let pattern = AttentionPatternConfig::new(n, 64, 4, 2.0);
        let mut rng = SeededRng::new(5);
        let train = pattern.generate(&mut rng);
        let inputs = pattern.generate(&mut rng);
        let mut rng2 = SeededRng::new(6);
        let operator =
            ElsaAttention::learn(ElsaParams::for_dims(64, 64, &mut rng2), &[train], 1.0);
        let quant = QuantizedElsaAttention::from_reference(&operator);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inputs, |b, inputs| {
            b.iter(|| quant.forward(inputs));
        });
    }
    group.finish();
}

elsa_testkit::bench_main!(bench_pipeline);
