//! Generative model of attention inputs with controllable peakedness.
//!
//! Trained transformer attention heads concentrate most of each softmax row
//! on a handful of keys (one dominant token plus a short tail — Clark et
//! al., *What does BERT look at?*, 2019). The generator plants exactly that
//! structure: each query is a weighted combination of its `num_relevant`
//! target keys plus noise, rescaled so the dominant raw score reaches
//! `score_scale`. With `score_scale ≈ ln(n) + const`, the dominant key holds
//! most of the softmax mass while the ~n background keys collectively stay
//! small — the regime in which ELSA's approximation (and real attention
//! sparsity) operates.

use elsa_attention::exact::AttentionInputs;
use elsa_linalg::{ops, Matrix, SeededRng};

/// Parameters of the synthetic attention workload generator.
///
/// # Examples
///
/// ```
/// use elsa_workloads::AttentionPatternConfig;
/// use elsa_linalg::SeededRng;
///
/// let cfg = AttentionPatternConfig::new(128, 64, 4, 2.0);
/// let inputs = cfg.generate(&mut SeededRng::new(0));
/// assert_eq!(inputs.num_keys(), 128);
/// assert_eq!(inputs.dim(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AttentionPatternConfig {
    /// Number of (real) entities `n`.
    pub n_real: usize,
    /// Head dimension `d`.
    pub d: usize,
    /// Relevant keys planted per query.
    pub num_relevant: usize,
    /// Weight ratio of the dominant relevant key to the secondary ones.
    pub dominance: f32,
    /// Standard deviation of the additive query noise direction.
    pub noise: f32,
    /// Raw attention score of the dominant key (softmax logit).
    pub score_scale: f32,
}

impl AttentionPatternConfig {
    /// Creates a configuration with a `score_scale` calibrated to the
    /// sequence length (`ln n + 2 + dominance`), which keeps the background
    /// softmax mass small at any `n`.
    ///
    /// # Panics
    ///
    /// Panics if `num_relevant == 0` or `num_relevant > n_real`, or any
    /// dimension is zero.
    #[must_use]
    pub fn new(n_real: usize, d: usize, num_relevant: usize, dominance: f32) -> Self {
        assert!(n_real > 0 && d > 0, "dimensions must be positive");
        assert!(
            (1..=n_real).contains(&num_relevant),
            "num_relevant must be in 1..=n_real"
        );
        Self {
            n_real,
            d,
            num_relevant,
            dominance,
            noise: 0.5,
            score_scale: (n_real as f32).ln() + 2.0 + dominance,
        }
    }

    /// Generates one attention invocation (`Q`, `K`, `V` all `n × d`).
    #[must_use]
    pub fn generate(&self, rng: &mut SeededRng) -> AttentionInputs {
        let n = self.n_real;
        let d = self.d;
        let keys = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let values = Matrix::from_fn(n, d, |_, _| rng.standard_normal() as f32);
        let mut queries = Matrix::zeros(n, d);
        for i in 0..n {
            let targets = rng.sample_indices(n, self.num_relevant);
            let mut direction = vec![0.0f32; d];
            for (rank, &t) in targets.iter().enumerate() {
                let w = if rank == 0 { self.dominance } else { 1.0 };
                ops::axpy(w, keys.row(t), &mut direction);
            }
            for v in direction.iter_mut() {
                *v += self.noise * rng.standard_normal() as f32;
            }
            // Rescale so the dominant raw score hits score_scale exactly.
            let dominant_score = ops::dot(&direction, keys.row(targets[0]));
            let alpha = if dominant_score.abs() > 1e-9 {
                f64::from(self.score_scale) / dominant_score
            } else {
                1.0
            };
            let row = queries.row_mut(i);
            for (dst, &src) in row.iter_mut().zip(&direction) {
                *dst = (f64::from(src) * alpha) as f32;
            }
        }
        AttentionInputs::new(queries, keys, values)
    }

    /// Generates a batch of independent invocations.
    #[must_use]
    pub fn generate_batch(&self, count: usize, rng: &mut SeededRng) -> Vec<AttentionInputs> {
        (0..count).map(|_| self.generate(rng)).collect()
    }

    /// Measures the fraction of keys whose softmax-normalized score exceeds
    /// `p/n` — the paper's relevance criterion — averaged over the queries
    /// of one generated invocation. Used for calibration tests.
    #[must_use]
    pub fn relevant_fraction(&self, inputs: &AttentionInputs, p: f64) -> f64 {
        let scores = elsa_attention::exact::normalized_scores(inputs, 1.0);
        let n = inputs.num_keys();
        let cutoff = (p / n as f64) as f32;
        let mut count = 0usize;
        for i in 0..scores.rows() {
            count += scores.row(i).iter().filter(|&&s| s > cutoff).count();
        }
        count as f64 / (scores.rows() * n) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elsa_attention::exact;

    #[test]
    fn shapes_and_determinism() {
        let cfg = AttentionPatternConfig::new(64, 32, 3, 2.0);
        let a = cfg.generate(&mut SeededRng::new(5));
        let b = cfg.generate(&mut SeededRng::new(5));
        assert_eq!(a, b);
        assert_eq!(a.num_keys(), 64);
        assert_eq!(a.dim(), 32);
    }

    #[test]
    fn dominant_score_is_calibrated() {
        let cfg = AttentionPatternConfig::new(128, 64, 4, 2.0);
        let inputs = cfg.generate(&mut SeededRng::new(6));
        let scores = exact::attention_scores(&inputs, 1.0);
        // The planted dominant key scores exactly score_scale, so the row
        // max is at least that; occasionally a secondary key with a lucky
        // cross-correlation edges slightly higher.
        for i in 0..inputs.num_queries() {
            let max = scores.row(i).iter().copied().fold(f32::NEG_INFINITY, f32::max);
            assert!(
                max >= cfg.score_scale - 1e-3 && max < cfg.score_scale + 8.0,
                "query {i} max score {max} vs target {}",
                cfg.score_scale
            );
        }
    }

    #[test]
    fn softmax_mass_is_concentrated() {
        let cfg = AttentionPatternConfig::new(256, 64, 5, 2.0);
        let inputs = cfg.generate(&mut SeededRng::new(7));
        let scores = exact::normalized_scores(&inputs, 1.0);
        // Top-8 keys per row should hold the large majority of the mass.
        let mut captured = 0.0f64;
        for i in 0..inputs.num_queries() {
            let mut row: Vec<f32> = scores.row(i).to_vec();
            row.sort_by(|a, b| b.partial_cmp(a).unwrap());
            captured += row[..8].iter().map(|&x| f64::from(x)).sum::<f64>();
        }
        captured /= inputs.num_queries() as f64;
        assert!(captured > 0.6, "top-8 softmax mass {captured}");
    }

    #[test]
    fn relevant_fraction_in_sparse_regime() {
        // The p=1 relevance bar should mark only a few percent of keys —
        // softmax rows are genuinely sparse at n=512.
        let cfg = AttentionPatternConfig::new(512, 64, 6, 2.0);
        let inputs = cfg.generate(&mut SeededRng::new(8));
        let frac = cfg.relevant_fraction(&inputs, 1.0);
        assert!((0.002..=0.2).contains(&frac), "relevant fraction {frac}");
    }

    #[test]
    fn larger_p_marks_fewer_keys_relevant() {
        let cfg = AttentionPatternConfig::new(256, 64, 6, 2.0);
        let inputs = cfg.generate(&mut SeededRng::new(9));
        let f1 = cfg.relevant_fraction(&inputs, 0.5);
        let f2 = cfg.relevant_fraction(&inputs, 4.0);
        assert!(f1 >= f2);
    }

    #[test]
    fn flatter_profile_spreads_mass() {
        let peaky = AttentionPatternConfig::new(128, 64, 3, 2.5);
        let flat = AttentionPatternConfig {
            score_scale: 4.0,
            ..AttentionPatternConfig::new(128, 64, 12, 1.1)
        };
        let mut rng = SeededRng::new(10);
        let pi = peaky.generate(&mut rng);
        let fi = flat.generate(&mut rng);
        assert!(flat.relevant_fraction(&fi, 1.0) > peaky.relevant_fraction(&pi, 1.0));
    }

    #[test]
    #[should_panic(expected = "num_relevant")]
    fn rejects_zero_relevant() {
        let _ = AttentionPatternConfig::new(10, 4, 0, 1.0);
    }
}
