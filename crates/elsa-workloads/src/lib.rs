//! Workloads reproducing the ELSA evaluation (§V-A).
//!
//! The paper evaluates five self-attention models — BERT-large,
//! RoBERTa-large, ALBERT-large, SASRec and BERT4Rec — on SQuAD v1.1/v2.0,
//! RACE, IMDB and MovieLens-1M. Trained checkpoints and the datasets
//! themselves are not available in this environment, so this crate supplies
//! the synthetic equivalents documented in `DESIGN.md` §2:
//!
//! * [`models`] — the exact published *shapes* of the five models
//!   (layers / heads / dimensions / sequence lengths), which drive every
//!   performance and energy result;
//! * [`datasets`] — samplers for the *real-token length distributions* of
//!   the five datasets, the only property of the data the performance
//!   results depend on (GPU pads to `n`, ELSA does not — §V-C);
//! * [`synthetic`] — a generative model of Q/K/V triples with controllable
//!   attention peakedness, calibrated per model so that the fraction of
//!   keys clearing the paper's `p·(1/n)` relevance bar matches the
//!   candidate fractions reported in Fig. 10;
//! * [`tasks`] — proxy accuracy metrics (classification agreement for the
//!   NLP tasks, NDCG@10 for the recommenders) measured **relative to the
//!   exact-attention model**, mirroring the paper's "accuracy loss vs
//!   baseline" framing;
//! * [`workload`] — the twelve model–dataset combinations of the evaluation
//!   and batch generation for them;
//! * [`trace`] — replayable plain-text traces pinning down exactly which
//!   invocations an experiment ran;
//! * [`sessions`] — multi-turn decode schedules (prompt prefill + one turn
//!   per decoded token) over the same recorded invocations, for the
//!   incremental-decode serving path.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod datasets;
pub mod models;
pub mod sessions;
pub mod synthetic;
pub mod tasks;
pub mod trace;
pub mod workload;

pub use datasets::DatasetKind;
pub use models::ModelKind;
pub use sessions::{record_sessions, turn_inputs, SessionSpec, SessionTurn};
pub use synthetic::AttentionPatternConfig;
pub use trace::WorkloadTrace;
pub use workload::Workload;
