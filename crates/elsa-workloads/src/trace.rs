//! Serializable workload traces.
//!
//! A trace pins down *exactly* which invocations an experiment ran — the
//! sampled real lengths, the per-invocation generator seeds and the pattern
//! profile — in a plain-text format that can be stored next to results and
//! replayed later (the role the authors' captured PyTorch inputs play in
//! the original evaluation). Replaying a trace regenerates bit-identical
//! `AttentionInputs`.
//!
//! Format: one header line `elsa-trace v1 d=<d>`, then one line per entry:
//! `n=<n> relevant=<r> dominance=<f> noise=<f> score_scale=<f> seed=<u64>`.

use std::fmt::Write as _;

use elsa_attention::exact::AttentionInputs;
use elsa_linalg::SeededRng;

use crate::synthetic::AttentionPatternConfig;
use crate::workload::Workload;

/// One recorded invocation: the generator configuration plus its seed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceEntry {
    /// The synthetic pattern parameters.
    pub pattern: AttentionPatternConfig,
    /// The RNG seed that generates this invocation.
    pub seed: u64,
}

impl TraceEntry {
    /// Regenerates the invocation.
    #[must_use]
    pub fn materialize(&self) -> AttentionInputs {
        self.pattern.generate(&mut SeededRng::new(self.seed))
    }
}

/// A replayable sequence of attention invocations.
///
/// # Examples
///
/// ```
/// use elsa_workloads::trace::WorkloadTrace;
/// use elsa_workloads::{DatasetKind, ModelKind, Workload};
/// use elsa_linalg::SeededRng;
///
/// let w = Workload { model: ModelKind::BertLarge, dataset: DatasetKind::SquadV11 };
/// let trace = WorkloadTrace::record(&w, 3, &mut SeededRng::new(1));
/// let text = trace.to_text();
/// let back = WorkloadTrace::from_text(&text).unwrap();
/// assert_eq!(trace, back);
/// assert_eq!(trace.materialize()[0], back.materialize()[0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadTrace {
    /// Head dimension shared by all entries.
    pub d: usize,
    /// The recorded invocations.
    pub entries: Vec<TraceEntry>,
}

/// Error parsing a trace file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line (0 = header).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

impl WorkloadTrace {
    /// Records `count` invocations of a workload: samples the real lengths
    /// and assigns each entry an independent seed.
    #[must_use]
    pub fn record(workload: &Workload, count: usize, rng: &mut SeededRng) -> Self {
        let entries = (0..count).map(|i| workload.sample_entry(rng, i as u64)).collect();
        Self { d: 64, entries }
    }

    /// Regenerates every invocation.
    #[must_use]
    pub fn materialize(&self) -> Vec<AttentionInputs> {
        self.entries.iter().map(TraceEntry::materialize).collect()
    }

    /// Serializes to the plain-text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = format!("elsa-trace v1 d={}\n", self.d);
        for e in &self.entries {
            let p = &e.pattern;
            writeln!(
                out,
                "n={} relevant={} dominance={} noise={} score_scale={} seed={}",
                p.n_real, p.num_relevant, p.dominance, p.noise, p.score_scale, e.seed
            )
            .expect("writing to String cannot fail");
        }
        out
    }

    /// Parses the plain-text format.
    ///
    /// # Errors
    ///
    /// Returns [`ParseTraceError`] on a malformed header, unknown fields,
    /// or unparsable values.
    pub fn from_text(text: &str) -> Result<Self, ParseTraceError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or(ParseTraceError {
            line: 0,
            message: "empty trace".into(),
        })?;
        let d = header
            .strip_prefix("elsa-trace v1 d=")
            .and_then(|v| v.parse::<usize>().ok())
            .ok_or(ParseTraceError { line: 0, message: format!("bad header {header:?}") })?;
        let mut entries = Vec::new();
        for (idx, line) in lines.enumerate() {
            let line_no = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let mut n = None;
            let mut relevant = None;
            let mut dominance = None;
            let mut noise = None;
            let mut score_scale = None;
            let mut seed = None;
            for field in line.split_whitespace() {
                let (key, value) = field.split_once('=').ok_or(ParseTraceError {
                    line: line_no,
                    message: format!("field {field:?} missing '='"),
                })?;
                let bad = |msg: &str| ParseTraceError { line: line_no, message: msg.into() };
                match key {
                    "n" => n = Some(value.parse().map_err(|_| bad("bad n"))?),
                    "relevant" => relevant = Some(value.parse().map_err(|_| bad("bad relevant"))?),
                    "dominance" => dominance = Some(value.parse().map_err(|_| bad("bad dominance"))?),
                    "noise" => noise = Some(value.parse().map_err(|_| bad("bad noise"))?),
                    "score_scale" => {
                        score_scale = Some(value.parse().map_err(|_| bad("bad score_scale"))?);
                    }
                    "seed" => seed = Some(value.parse().map_err(|_| bad("bad seed"))?),
                    other => {
                        return Err(ParseTraceError {
                            line: line_no,
                            message: format!("unknown field {other:?}"),
                        })
                    }
                }
            }
            let missing = |msg: &str| ParseTraceError { line: line_no, message: msg.into() };
            let pattern = AttentionPatternConfig {
                n_real: n.ok_or_else(|| missing("missing n"))?,
                d,
                num_relevant: relevant.ok_or_else(|| missing("missing relevant"))?,
                dominance: dominance.ok_or_else(|| missing("missing dominance"))?,
                noise: noise.ok_or_else(|| missing("missing noise"))?,
                score_scale: score_scale.ok_or_else(|| missing("missing score_scale"))?,
            };
            entries.push(TraceEntry { pattern, seed: seed.ok_or_else(|| missing("missing seed"))? });
        }
        Ok(Self { d, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, ModelKind};

    fn workload() -> Workload {
        Workload { model: ModelKind::BertLarge, dataset: DatasetKind::SquadV11 }
    }

    #[test]
    fn record_and_materialize() {
        let mut rng = SeededRng::new(1);
        let trace = WorkloadTrace::record(&workload(), 4, &mut rng);
        assert_eq!(trace.entries.len(), 4);
        let inputs = trace.materialize();
        assert_eq!(inputs.len(), 4);
        for (inv, entry) in inputs.iter().zip(&trace.entries) {
            assert_eq!(inv.num_keys(), entry.pattern.n_real);
        }
    }

    #[test]
    fn text_round_trip_is_lossless() {
        let mut rng = SeededRng::new(2);
        let trace = WorkloadTrace::record(&workload(), 5, &mut rng);
        let text = trace.to_text();
        let back = WorkloadTrace::from_text(&text).expect("parses");
        assert_eq!(trace, back);
        // And materialization is bit-identical.
        assert_eq!(trace.materialize(), back.materialize());
    }

    #[test]
    fn replay_is_deterministic() {
        let mut rng = SeededRng::new(3);
        let trace = WorkloadTrace::record(&workload(), 2, &mut rng);
        assert_eq!(trace.materialize(), trace.materialize());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(WorkloadTrace::from_text("").is_err());
        assert!(WorkloadTrace::from_text("not a trace\n").is_err());
        let err = WorkloadTrace::from_text("elsa-trace v1 d=64\nn=10 bogus=3\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("unknown field"));
        let err = WorkloadTrace::from_text("elsa-trace v1 d=64\nn=banana\n").unwrap_err();
        assert!(err.message.contains("bad n"));
        let err = WorkloadTrace::from_text("elsa-trace v1 d=64\nn=10\n").unwrap_err();
        assert!(err.message.contains("missing"));
    }

    #[test]
    fn blank_lines_tolerated() {
        let mut rng = SeededRng::new(4);
        let trace = WorkloadTrace::record(&workload(), 1, &mut rng);
        let text = format!("{}\n\n", trace.to_text());
        assert_eq!(WorkloadTrace::from_text(&text).expect("parses"), trace);
    }

    #[test]
    fn error_display_nonempty() {
        let err = WorkloadTrace::from_text("").unwrap_err();
        assert!(!err.to_string().is_empty());
    }

    mod round_trip_props {
        use super::*;
        use elsa_testkit::prelude::*;

        props! {
            config: Config::with_cases(48);

            // `to_text` → `from_text` is the identity for any recorded
            // trace, across every workload of the evaluation.
            fn recorded_trace_round_trips(
                seed in ints_u64(0, 1 << 32),
                count in ints(1, 6),
                widx in ints(0, 12),
            ) {
                let workload = Workload::all()[widx];
                let mut rng = SeededRng::new(seed);
                let trace = WorkloadTrace::record(&workload, count, &mut rng);
                let text = trace.to_text();
                let back = match WorkloadTrace::from_text(&text) {
                    Ok(back) => back,
                    Err(e) => return Err(CaseError::Fail(format!("parse failed: {e}"))),
                };
                prop_assert_eq!(&trace, &back);
                prop_assert_eq!(trace.materialize(), back.materialize());
            }

            // Arbitrary pattern fields survive the text format too: `{}`
            // float formatting is shortest-round-trip, so no precision is
            // lost even for awkward values.
            fn arbitrary_entries_round_trip(
                n in ints(1, 600),
                relevant_frac in range(0.0, 1.0),
                dominance in range_f32(-8.0, 8.0),
                noise in range_f32(0.0, 4.0),
                score_scale in range_f32(-20.0, 20.0),
                seed in ints_u64(0, u64::MAX),
            ) {
                let pattern = AttentionPatternConfig {
                    n_real: n,
                    d: 64,
                    num_relevant: 1 + (relevant_frac * (n - 1) as f64) as usize,
                    dominance,
                    noise,
                    score_scale,
                };
                let trace = WorkloadTrace { d: 64, entries: vec![TraceEntry { pattern, seed }] };
                let back = match WorkloadTrace::from_text(&trace.to_text()) {
                    Ok(back) => back,
                    Err(e) => return Err(CaseError::Fail(format!("parse failed: {e}"))),
                };
                prop_assert_eq!(&trace, &back);
            }

            // Truncating the serialized text inside the last entry (before
            // its trailing `seed=` field) always surfaces a
            // `ParseTraceError` naming that line — never a silently shorter
            // trace.
            fn truncated_text_is_a_parse_error(
                seed in ints_u64(0, 1 << 32),
                count in ints(1, 5),
            ) {
                let workload = Workload::all()[0];
                let mut rng = SeededRng::new(seed);
                let trace = WorkloadTrace::record(&workload, count, &mut rng);
                let text = trace.to_text();
                let cut = text.rfind(" seed=").expect("entries always carry a seed field");
                let err = match WorkloadTrace::from_text(&text[..cut]) {
                    Err(err) => err,
                    Ok(_) => {
                        return Err(CaseError::Fail("truncated trace parsed cleanly".into()))
                    }
                };
                prop_assert_eq!(err.line, count, "error points at the truncated entry");
                prop_assert!(
                    err.message.contains("missing seed"),
                    "unexpected message: {}",
                    err.message
                );
            }
        }
    }
}
