//! The five evaluated models (§V-A), by their published shapes.

use elsa_attention::TransformerConfig;

/// One of the paper's five self-attention-oriented models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// Google BERT (large): 24 layers, 16 heads, d_model 1024, FFN 4096.
    BertLarge,
    /// Facebook RoBERTa (large): same shape as BERT-large.
    RobertaLarge,
    /// Google ALBERT (large): 24 layers (shared weights), 16 heads, 1024/4096.
    AlbertLarge,
    /// SASRec, 3-layer sequential recommender (single head, d 64).
    SasRec,
    /// BERT4Rec, 3-layer 2-head sequential recommender.
    Bert4Rec,
}

impl ModelKind {
    /// All five models in the paper's presentation order.
    #[must_use]
    pub const fn all() -> [ModelKind; 5] {
        [
            ModelKind::BertLarge,
            ModelKind::RobertaLarge,
            ModelKind::AlbertLarge,
            ModelKind::SasRec,
            ModelKind::Bert4Rec,
        ]
    }

    /// Display name matching the paper's figures.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            ModelKind::BertLarge => "BERT",
            ModelKind::RobertaLarge => "RoBERTa",
            ModelKind::AlbertLarge => "ALBERT",
            ModelKind::SasRec => "SASRec",
            ModelKind::Bert4Rec => "BERT4Rec",
        }
    }

    /// The published architecture shape. All models use a per-head
    /// dimension of 64 (§IV-E: "We utilize d = 64, which all our evaluated
    /// models originally used").
    #[must_use]
    pub fn config(&self) -> TransformerConfig {
        match self {
            ModelKind::BertLarge | ModelKind::RobertaLarge | ModelKind::AlbertLarge => {
                TransformerConfig::new(24, 1024, 16, 4096, 512)
            }
            ModelKind::SasRec => TransformerConfig::new(3, 64, 1, 256, 200),
            ModelKind::Bert4Rec => TransformerConfig::new(3, 128, 2, 512, 200),
        }
    }

    /// True for the sequential recommendation models (whose accuracy metric
    /// is NDCG@10 and whose approximation-degree buckets are tighter,
    /// §V-C).
    #[must_use]
    pub const fn is_recommender(&self) -> bool {
        matches!(self, ModelKind::SasRec | ModelKind::Bert4Rec)
    }

    /// Attention-pattern peakedness profile for the synthetic generator:
    /// `(num_relevant, dominance)`. NLP models concentrate attention on a
    /// handful of tokens (Clark et al., 2019); the recommenders' attention
    /// over interaction histories is flatter (recency-weighted), which is
    /// why Fig. 10 shows them needing a larger candidate fraction at equal
    /// accuracy.
    #[must_use]
    pub const fn attention_profile(&self) -> (usize, f32) {
        match self {
            ModelKind::BertLarge => (6, 2.0),
            ModelKind::RobertaLarge => (5, 2.2),
            ModelKind::AlbertLarge => (8, 1.8),
            ModelKind::SasRec => (12, 1.2),
            ModelKind::Bert4Rec => (10, 1.4),
        }
    }
}

impl std::fmt::Display for ModelKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_have_d_head_64() {
        for m in ModelKind::all() {
            assert_eq!(m.config().d_head(), 64, "{m}");
        }
    }

    #[test]
    fn bert_large_has_384_sublayers() {
        assert_eq!(ModelKind::BertLarge.config().attention_sublayers(), 384);
    }

    #[test]
    fn recommenders_flagged() {
        assert!(ModelKind::SasRec.is_recommender());
        assert!(ModelKind::Bert4Rec.is_recommender());
        assert!(!ModelKind::BertLarge.is_recommender());
    }

    #[test]
    fn recommender_sequence_cap_is_200() {
        assert_eq!(ModelKind::SasRec.config().max_seq_len, 200);
        assert_eq!(ModelKind::Bert4Rec.config().max_seq_len, 200);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = ModelKind::all().iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn nlp_profiles_are_peakier_than_recommenders() {
        let (_, bert_dom) = ModelKind::BertLarge.attention_profile();
        let (_, sas_dom) = ModelKind::SasRec.attention_profile();
        assert!(bert_dom > sas_dom);
    }
}
