//! Proxy accuracy metrics (§V-B methodology, adapted).
//!
//! The paper measures *end-to-end model metrics* (F1 on SQuAD, accuracy on
//! RACE/IMDB, NDCG@10 on MovieLens) with and without approximation and
//! reports the loss. Without trained checkpoints we measure the same
//! quantity one level down: a fixed downstream readout (a linear probe for
//! classification tasks, a ranking head for recommendation) is applied to
//! the **exact** attention output to define labels, and the approximate
//! pipeline is scored against those labels. Exact attention scores 100% by
//! construction (matching the paper's "baseline" row), and every deviation
//! is attributable to the approximation — the same monotone-in-`p` loss
//! curve as Fig. 10.

use elsa_linalg::{ops, Matrix, SeededRng};

/// A frozen linear readout over attention outputs: `C` class vectors of
/// dimension `d`; the predicted class of a row is the argmax inner product.
///
/// # Examples
///
/// ```
/// use elsa_workloads::tasks::ClassificationProbe;
/// use elsa_linalg::{Matrix, SeededRng};
///
/// let probe = ClassificationProbe::new(4, 8, &mut SeededRng::new(0));
/// let out = Matrix::from_fn(10, 8, |r, c| ((r + c) % 3) as f32);
/// let labels = probe.predict(&out);
/// assert_eq!(labels.len(), 10);
/// // Agreement with itself is perfect.
/// assert_eq!(probe.agreement(&out, &out), 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct ClassificationProbe {
    weights: Matrix,
}

impl ClassificationProbe {
    /// Draws `num_classes` random unit class vectors.
    ///
    /// # Panics
    ///
    /// Panics if `num_classes < 2` or `d == 0`.
    #[must_use]
    pub fn new(num_classes: usize, d: usize, rng: &mut SeededRng) -> Self {
        assert!(num_classes >= 2, "need at least two classes");
        assert!(d > 0);
        let mut weights = Matrix::zeros(num_classes, d);
        for c in 0..num_classes {
            let u = rng.unit_vector(d);
            weights.row_mut(c).copy_from_slice(&u);
        }
        Self { weights }
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.weights.rows()
    }

    /// Predicted class per output row.
    ///
    /// # Panics
    ///
    /// Panics if `output.cols()` differs from the probe dimension.
    #[must_use]
    pub fn predict(&self, output: &Matrix) -> Vec<usize> {
        assert_eq!(output.cols(), self.weights.cols(), "probe dimension mismatch");
        (0..output.rows())
            .map(|i| {
                let logits: Vec<f32> = (0..self.weights.rows())
                    .map(|c| ops::dot(output.row(i), self.weights.row(c)) as f32)
                    .collect();
                ops::argmax(&logits).expect("at least two classes")
            })
            .collect()
    }

    /// Fraction of rows where the two outputs produce the same predicted
    /// class — the proxy "accuracy" with `reference` as ground truth.
    ///
    /// # Panics
    ///
    /// Panics if the outputs have different shapes.
    #[must_use]
    pub fn agreement(&self, reference: &Matrix, candidate: &Matrix) -> f64 {
        assert_eq!(reference.rows(), candidate.rows(), "row count mismatch");
        let a = self.predict(reference);
        let b = self.predict(candidate);
        let same = a.iter().zip(&b).filter(|(x, y)| x == y).count();
        same as f64 / a.len().max(1) as f64
    }
}

/// NDCG@k of a candidate ranking against the reference ranking's top item.
///
/// Items are scored by inner product with the output row; the reference
/// output defines the single relevant item (its top-scored one), and the
/// candidate output's ranking of that item determines the gain —
/// `1/log2(1+rank)` if it ranks within `k`, else 0. This is the standard
/// leave-one-out NDCG@10 protocol of SASRec/BERT4Rec, with the trained
/// model's own choice as the relevant item.
///
/// # Panics
///
/// Panics if shapes mismatch or `k == 0`.
#[must_use]
pub fn ndcg_at_k(reference: &Matrix, candidate: &Matrix, items: &Matrix, k: usize) -> f64 {
    assert!(k > 0, "k must be positive");
    assert_eq!(reference.rows(), candidate.rows(), "row count mismatch");
    assert_eq!(reference.cols(), items.cols(), "item dimension mismatch");
    let mut total = 0.0f64;
    for i in 0..reference.rows() {
        let ref_scores: Vec<f32> = (0..items.rows())
            .map(|j| ops::dot(reference.row(i), items.row(j)) as f32)
            .collect();
        let relevant = ops::argmax(&ref_scores).expect("nonempty items");
        let cand_scores: Vec<f32> = (0..items.rows())
            .map(|j| ops::dot(candidate.row(i), items.row(j)) as f32)
            .collect();
        // Rank of the relevant item in the candidate ordering (1-based).
        let relevant_score = cand_scores[relevant];
        let rank = 1 + cand_scores.iter().filter(|&&s| s > relevant_score).count();
        if rank <= k {
            total += 1.0 / ((rank as f64) + 1.0).log2();
        }
    }
    total / reference.rows().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_self_agreement_is_one() {
        let mut rng = SeededRng::new(1);
        let probe = ClassificationProbe::new(8, 16, &mut rng);
        let out = Matrix::from_fn(20, 16, |_, _| rng.standard_normal() as f32);
        assert_eq!(probe.agreement(&out, &out), 1.0);
    }

    #[test]
    fn probe_detects_perturbation_monotonically() {
        let mut rng = SeededRng::new(2);
        let probe = ClassificationProbe::new(8, 16, &mut rng);
        let out = Matrix::from_fn(200, 16, |_, _| rng.standard_normal() as f32);
        let perturb = |eps: f32, rng: &mut SeededRng| {
            Matrix::from_fn(200, 16, |r, c| out[(r, c)] + eps * rng.standard_normal() as f32)
        };
        let small = probe.agreement(&out, &perturb(0.05, &mut rng));
        let large = probe.agreement(&out, &perturb(1.0, &mut rng));
        assert!(small > large, "small-noise {small} <= large-noise {large}");
        assert!(small > 0.9);
    }

    #[test]
    fn ndcg_self_is_one() {
        let mut rng = SeededRng::new(3);
        let out = Matrix::from_fn(10, 8, |_, _| rng.standard_normal() as f32);
        let items = Matrix::from_fn(50, 8, |_, _| rng.standard_normal() as f32);
        assert!((ndcg_at_k(&out, &out, &items, 10) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_degrades_with_noise() {
        let mut rng = SeededRng::new(4);
        let out = Matrix::from_fn(100, 8, |_, _| rng.standard_normal() as f32);
        let items = Matrix::from_fn(100, 8, |_, _| rng.standard_normal() as f32);
        let noisy = Matrix::from_fn(100, 8, |r, c| out[(r, c)] + 0.8 * rng.standard_normal() as f32);
        let n = ndcg_at_k(&out, &noisy, &items, 10);
        assert!(n < 1.0);
        assert!(n > 0.1, "ndcg {n}");
    }

    #[test]
    fn ndcg_zero_when_relevant_buried() {
        // Candidate that inverts the reference scores pushes the relevant
        // item to the bottom.
        let reference = Matrix::from_rows(&[&[1.0, 0.0]]);
        let candidate = Matrix::from_rows(&[&[-1.0, 0.0]]);
        let items = Matrix::from_fn(100, 2, |j, c| if c == 0 { j as f32 } else { 1.0 });
        assert_eq!(ndcg_at_k(&reference, &candidate, &items, 10), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two classes")]
    fn probe_rejects_single_class() {
        let _ = ClassificationProbe::new(1, 4, &mut SeededRng::new(0));
    }
}
