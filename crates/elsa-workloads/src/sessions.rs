//! Multi-turn decode sessions over the workload zoo.
//!
//! The offline trace format ([`crate::trace`]) records *one-shot* encoder
//! invocations: the whole `n_real × d` context arrives at once. Decode
//! serving replays the same recorded invocation as a *session*: a prompt
//! prefill of `prompt_len` tokens, then one decode turn per remaining token
//! until the full context is built. Each turn's inputs are row slices of the
//! single materialized invocation ([`turn_inputs`]), so running every turn
//! of a session touches exactly the bits the one-shot invocation would —
//! which is what lets the serving layer prove its degenerate single-turn
//! mode bit-identical to the one-shot path.

use elsa_attention::exact::AttentionInputs;
use elsa_linalg::SeededRng;

use crate::trace::TraceEntry;
use crate::workload::Workload;

/// One autoregressive decode session: a recorded invocation plus the prompt
/// split that turns it into a prefill-then-decode schedule.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SessionSpec {
    /// Stable session identifier (unique within one recorded batch).
    pub session: u64,
    /// The recorded invocation supplying the full context.
    pub entry: TraceEntry,
    /// Tokens in the prompt prefill (first turn); `1 ..= n_total()`.
    pub prompt_len: usize,
}

/// One turn of a session: the context length after this turn and how many
/// of its trailing tokens this turn appended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionTurn {
    /// Context length (keys/values) visible to this turn.
    pub prefix_len: usize,
    /// Tokens appended by this turn (= query rows it runs).
    pub appended: usize,
}

impl SessionSpec {
    /// Total tokens of the full context.
    #[must_use]
    pub const fn n_total(&self) -> usize {
        self.entry.pattern.n_real
    }

    /// The turn schedule: a prefill of `prompt_len` tokens, then one
    /// single-token decode turn per remaining token. The last turn's
    /// `prefix_len` is always [`n_total`](Self::n_total).
    #[must_use]
    pub fn turns(&self) -> Vec<SessionTurn> {
        let mut out = vec![SessionTurn { prefix_len: self.prompt_len, appended: self.prompt_len }];
        for prefix_len in self.prompt_len + 1..=self.n_total() {
            out.push(SessionTurn { prefix_len, appended: 1 });
        }
        out
    }

    /// Number of turns in the schedule.
    #[must_use]
    pub const fn num_turns(&self) -> usize {
        1 + self.n_total() - self.prompt_len
    }
}

/// Records `count` sessions of a workload: each draws a [`TraceEntry`] from
/// the workload's length distribution (exactly as
/// [`WorkloadTrace::record`](crate::trace::WorkloadTrace::record) does) plus
/// a prompt length uniform in `1..=n_real`, so prefill-heavy and
/// decode-heavy sessions both occur. Fully replayable from the seed.
#[must_use]
pub fn record_sessions(workload: &Workload, count: usize, rng: &mut SeededRng) -> Vec<SessionSpec> {
    (0..count)
        .map(|i| {
            let entry = workload.sample_entry(rng, i as u64);
            let prompt_len = 1 + rng.index(entry.pattern.n_real);
            SessionSpec { session: i as u64, entry, prompt_len }
        })
        .collect()
}

/// The inputs for one turn, sliced from the session's fully materialized
/// invocation: keys/values are rows `0..prefix_len` (the context built so
/// far), queries are the `appended` rows this turn contributed (rows
/// `prefix_len - appended .. prefix_len`). With `appended == prefix_len ==
/// n_real` this is exactly the one-shot invocation.
///
/// # Panics
///
/// Panics if `appended == 0`, `appended > prefix_len`, or `prefix_len`
/// exceeds the invocation's length.
#[must_use]
pub fn turn_inputs(full: &AttentionInputs, prefix_len: usize, appended: usize) -> AttentionInputs {
    assert!(appended > 0 && appended <= prefix_len, "bad turn shape");
    assert!(prefix_len <= full.num_keys(), "prefix exceeds context");
    AttentionInputs::new(
        full.query().row_slice(prefix_len - appended..prefix_len),
        full.key().row_slice(0..prefix_len),
        full.value().row_slice(0..prefix_len),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DatasetKind, ModelKind};

    fn workload() -> Workload {
        Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M }
    }

    #[test]
    fn turn_schedule_covers_every_token_exactly_once() {
        let mut rng = SeededRng::new(1);
        for spec in record_sessions(&workload(), 8, &mut rng) {
            let turns = spec.turns();
            assert_eq!(turns.len(), spec.num_turns());
            assert_eq!(turns[0].appended, spec.prompt_len);
            let appended: usize = turns.iter().map(|t| t.appended).sum();
            assert_eq!(appended, spec.n_total());
            let mut prefix = 0;
            for t in &turns {
                prefix += t.appended;
                assert_eq!(t.prefix_len, prefix);
            }
            assert_eq!(prefix, spec.n_total());
        }
    }

    #[test]
    fn recording_is_replay_deterministic() {
        let a = record_sessions(&workload(), 6, &mut SeededRng::new(7));
        let b = record_sessions(&workload(), 6, &mut SeededRng::new(7));
        assert_eq!(a, b);
        for s in &a {
            assert!(s.prompt_len >= 1 && s.prompt_len <= s.n_total());
        }
    }

    #[test]
    fn full_session_turn_equals_one_shot_invocation() {
        let mut rng = SeededRng::new(3);
        let spec = record_sessions(&workload(), 1, &mut rng)[0];
        let full = spec.entry.materialize();
        let n = spec.n_total();
        assert_eq!(turn_inputs(&full, n, n), full);
    }

    #[test]
    fn turn_inputs_slice_the_right_rows() {
        let mut rng = SeededRng::new(4);
        let spec = record_sessions(&workload(), 1, &mut rng)[0];
        let full = spec.entry.materialize();
        let mut seen_query_rows = 0;
        for t in spec.turns() {
            let turn = turn_inputs(&full, t.prefix_len, t.appended);
            assert_eq!(turn.num_keys(), t.prefix_len);
            assert_eq!(turn.num_queries(), t.appended);
            // Keys are the context prefix, queries the newly appended rows.
            assert_eq!(turn.key().row(t.prefix_len - 1), full.key().row(t.prefix_len - 1));
            assert_eq!(turn.query().row(0), full.query().row(seen_query_rows));
            seen_query_rows += t.appended;
        }
        assert_eq!(seen_query_rows, spec.n_total());
    }

    #[test]
    #[should_panic(expected = "bad turn shape")]
    fn rejects_zero_appended() {
        let mut rng = SeededRng::new(5);
        let spec = record_sessions(&workload(), 1, &mut rng)[0];
        let full = spec.entry.materialize();
        let _ = turn_inputs(&full, 4, 0);
    }
}
