//! The model–dataset combinations of the evaluation (§V-A) and the
//! accuracy-evaluation loop behind Fig. 10.

use elsa_attention::exact::{self, AttentionInputs};
use elsa_core::attention::{ElsaAttention, ElsaParams, SelectionStats};
use elsa_linalg::SeededRng;

use crate::datasets::DatasetKind;
use crate::models::ModelKind;
use crate::synthetic::AttentionPatternConfig;
use crate::tasks::{self, ClassificationProbe};
use crate::trace::TraceEntry;

/// One model–dataset pairing from the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Workload {
    /// The model.
    pub model: ModelKind,
    /// The dataset.
    pub dataset: DatasetKind,
}

impl Workload {
    /// The twelve combinations the paper evaluates: the three NLP models on
    /// SQuAD v1.1/v2.0 and RACE, RoBERTa additionally on IMDB, and the two
    /// recommenders on MovieLens-1M.
    #[must_use]
    pub fn all() -> Vec<Workload> {
        let mut out = Vec::new();
        for model in [ModelKind::BertLarge, ModelKind::RobertaLarge, ModelKind::AlbertLarge] {
            for dataset in [DatasetKind::SquadV11, DatasetKind::SquadV20, DatasetKind::Race] {
                out.push(Workload { model, dataset });
            }
        }
        out.push(Workload { model: ModelKind::RobertaLarge, dataset: DatasetKind::Imdb });
        out.push(Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M });
        out.push(Workload { model: ModelKind::Bert4Rec, dataset: DatasetKind::MovieLens1M });
        out
    }

    /// `"MODEL / DATASET"` display name.
    #[must_use]
    pub fn name(&self) -> String {
        format!("{} / {}", self.model.name(), self.dataset.name())
    }

    /// The padded model input length (`n`) for this workload.
    #[must_use]
    pub fn padded_length(&self) -> usize {
        self.dataset.model_input_length().min(self.model.config().max_seq_len)
    }

    /// The synthetic attention-pattern generator for one invocation with
    /// `n_real` real entities, using the model's peakedness profile.
    #[must_use]
    pub fn pattern_config(&self, n_real: usize) -> AttentionPatternConfig {
        let (num_relevant, dominance) = self.model.attention_profile();
        AttentionPatternConfig::new(n_real, 64, num_relevant.min(n_real), dominance)
    }

    /// Samples one replayable [`TraceEntry`]: a real length drawn from the
    /// dataset's distribution (capped at the padded length) plus an
    /// independent per-entry generator seed derived from `label`.
    ///
    /// This is the single sampling point shared by
    /// [`WorkloadTrace::record`](crate::trace::WorkloadTrace::record) and by
    /// online arrival generators (`elsa-serve`), so a recorded offline trace
    /// and a live request stream draw request shapes from exactly the same
    /// distribution.
    #[must_use]
    pub fn sample_entry(&self, rng: &mut SeededRng, label: u64) -> TraceEntry {
        let n_real = self.dataset.sample_real_length(rng).min(self.padded_length());
        TraceEntry {
            pattern: self.pattern_config(n_real),
            seed: rng.fork(label).uniform().to_bits(),
        }
    }

    /// Samples a real length and generates one attention invocation.
    #[must_use]
    pub fn generate_invocation(&self, rng: &mut SeededRng) -> AttentionInputs {
        let n_real = self
            .dataset
            .sample_real_length(rng)
            .min(self.padded_length());
        self.pattern_config(n_real).generate(rng)
    }

    /// Generates a batch of invocations.
    #[must_use]
    pub fn generate_batch(&self, count: usize, rng: &mut SeededRng) -> Vec<AttentionInputs> {
        (0..count).map(|_| self.generate_invocation(rng)).collect()
    }

    /// Number of probe classes for the proxy metric (see
    /// [`crate::tasks`]): a 16-way probe stands in for SQuAD span
    /// selection, RACE is 4-way multiple choice, IMDB binary.
    #[must_use]
    pub const fn probe_classes(&self) -> usize {
        match self.dataset {
            DatasetKind::SquadV11 | DatasetKind::SquadV20 => 16,
            DatasetKind::Race => 4,
            DatasetKind::Imdb => 2,
            DatasetKind::MovieLens1M => 0, // NDCG path, no probe
        }
    }
}

impl std::fmt::Display for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// The outcome of evaluating one workload at one approximation degree `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyEvaluation {
    /// The degree of approximation evaluated.
    pub p: f64,
    /// Proxy metric relative to exact attention (1.0 = no loss).
    pub metric: f64,
    /// Aggregated selection statistics over the test batch.
    pub stats: SelectionStats,
}

impl AccuracyEvaluation {
    /// Accuracy loss versus the exact baseline, in percentage points.
    #[must_use]
    pub fn loss_percent(&self) -> f64 {
        (1.0 - self.metric) * 100.0
    }
}

/// Runs the Fig. 10 protocol for one workload and one `p`: learn the
/// threshold on `train` invocations, evaluate the proxy metric and the
/// candidate fraction on `test` invocations.
///
/// # Panics
///
/// Panics if `train` or `test` is empty.
#[must_use]
pub fn evaluate_workload(
    workload: &Workload,
    p: f64,
    train: &[AttentionInputs],
    test: &[AttentionInputs],
    seed: u64,
) -> AccuracyEvaluation {
    assert!(!train.is_empty() && !test.is_empty(), "need train and test data");
    let mut rng = SeededRng::new(seed);
    let params = ElsaParams::for_dims(64, 64, &mut rng);
    let operator = ElsaAttention::learn(params, train, p);
    let probe = (workload.probe_classes() >= 2)
        .then(|| ClassificationProbe::new(workload.probe_classes(), 64, &mut rng));
    let mut metric_sum = 0.0f64;
    let mut stats = SelectionStats::default();
    for inputs in test {
        let exact_out = exact::attention(inputs);
        let (approx_out, s) = operator.forward(inputs);
        stats = stats.merged(&s);
        metric_sum += match &probe {
            Some(probe) => probe.agreement(&exact_out, &approx_out),
            None => tasks::ndcg_at_k(&exact_out, &approx_out, inputs.value(), 10),
        };
    }
    AccuracyEvaluation { p, metric: metric_sum / test.len() as f64, stats }
}

/// The p-grid the sweep experiments use (Fig. 10's x-axis).
pub const P_GRID: [f64; 6] = [0.5, 1.0, 2.0, 4.0, 6.0, 8.0];

/// Finds the most aggressive `p` on [`P_GRID`] whose accuracy loss stays
/// within `max_loss_percent`, re-learning the threshold for each candidate
/// `p` — the paper's procedure for defining the conservative / moderate /
/// aggressive operating points (§V-C). Returns the evaluation at the chosen
/// `p` (falling back to the smallest grid point if nothing qualifies).
#[must_use]
pub fn find_p_for_loss(
    workload: &Workload,
    max_loss_percent: f64,
    train: &[AttentionInputs],
    test: &[AttentionInputs],
    seed: u64,
) -> AccuracyEvaluation {
    let mut best: Option<AccuracyEvaluation> = None;
    for &p in &P_GRID {
        let eval = evaluate_workload(workload, p, train, test, seed);
        if eval.loss_percent() <= max_loss_percent {
            best = Some(eval);
        }
    }
    best.unwrap_or_else(|| evaluate_workload(workload, P_GRID[0], train, test, seed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twelve_workloads() {
        let all = Workload::all();
        assert_eq!(all.len(), 12);
        let names: std::collections::BTreeSet<String> = all.iter().map(Workload::name).collect();
        assert_eq!(names.len(), 12);
    }

    #[test]
    fn recommenders_use_ndcg_path() {
        let w = Workload { model: ModelKind::SasRec, dataset: DatasetKind::MovieLens1M };
        assert_eq!(w.probe_classes(), 0);
        assert_eq!(w.padded_length(), 200);
    }

    #[test]
    fn generated_invocations_respect_lengths() {
        let w = Workload { model: ModelKind::BertLarge, dataset: DatasetKind::SquadV11 };
        let mut rng = SeededRng::new(1);
        for _ in 0..5 {
            let inv = w.generate_invocation(&mut rng);
            assert!(inv.num_keys() <= 512);
            assert!(inv.num_keys() >= 16);
            assert_eq!(inv.dim(), 64);
        }
    }

    #[test]
    fn evaluation_monotone_in_p_roughly() {
        // Smaller p => higher metric (less aggressive approximation). Use a
        // small n so the test stays fast in debug builds.
        let w = Workload { model: ModelKind::BertLarge, dataset: DatasetKind::SquadV11 };
        let cfg = w.pattern_config(128);
        let mut rng = SeededRng::new(2);
        let train = cfg.generate_batch(2, &mut rng);
        let test = cfg.generate_batch(2, &mut rng);
        let conservative = evaluate_workload(&w, 0.5, &train, &test, 3);
        let aggressive = evaluate_workload(&w, 8.0, &train, &test, 3);
        assert!(
            conservative.metric >= aggressive.metric - 0.02,
            "metric(p=0.5)={} < metric(p=8)={}",
            conservative.metric,
            aggressive.metric
        );
        assert!(
            conservative.stats.candidate_fraction() >= aggressive.stats.candidate_fraction(),
            "candidate fraction should shrink with p"
        );
        // Conservative approximation keeps the proxy metric high.
        assert!(conservative.metric > 0.9, "metric {}", conservative.metric);
    }

    #[test]
    fn find_p_respects_loss_budget() {
        let w = Workload { model: ModelKind::BertLarge, dataset: DatasetKind::SquadV11 };
        let cfg = w.pattern_config(128);
        let mut rng = SeededRng::new(4);
        let train = cfg.generate_batch(2, &mut rng);
        let test = cfg.generate_batch(2, &mut rng);
        let eval = find_p_for_loss(&w, 1.0, &train, &test, 5);
        // Either the loss is within budget, or we fell back to the most
        // conservative grid point.
        assert!(eval.loss_percent() <= 1.0 + 1e-9 || eval.p == P_GRID[0]);
    }
}
