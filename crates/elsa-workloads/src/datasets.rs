//! Sequence-length samplers standing in for the evaluation datasets.
//!
//! For the *performance* experiments the only property of a dataset that
//! matters is how many **real** (non-padding) tokens each example has: the
//! GPU pads everything to the model's `n` and pays for the padding, while
//! ELSA and the ideal accelerator process only real entities (§V-C,
//! *Throughput*). The samplers below encode the published length statistics
//! of each dataset; parameters are documented inline.

use elsa_linalg::SeededRng;

/// One of the paper's evaluation datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// SQuAD v1.1 — question + Wikipedia paragraph, BERT-tokenized;
    /// typical 120–400 tokens against a 512-token model input.
    SquadV11,
    /// SQuAD v2.0 — same contexts as v1.1 plus unanswerable questions;
    /// essentially the same length profile.
    SquadV20,
    /// RACE — long exam passages; the vast majority saturate the 512 limit.
    Race,
    /// IMDB — movie reviews; median ≈230 tokens, heavy right tail truncated
    /// at 512.
    Imdb,
    /// MovieLens-1M — user interaction histories capped at 200 items; every
    /// user has ≥20 ratings and the mean is ≈165, so many saturate the cap.
    MovieLens1M,
}

impl DatasetKind {
    /// All five datasets.
    #[must_use]
    pub const fn all() -> [DatasetKind; 5] {
        [
            DatasetKind::SquadV11,
            DatasetKind::SquadV20,
            DatasetKind::Race,
            DatasetKind::Imdb,
            DatasetKind::MovieLens1M,
        ]
    }

    /// Display name matching the paper's figures.
    #[must_use]
    pub const fn name(&self) -> &'static str {
        match self {
            DatasetKind::SquadV11 => "SQuAD v1.1",
            DatasetKind::SquadV20 => "SQuAD v2.0",
            DatasetKind::Race => "RACE",
            DatasetKind::Imdb => "IMDB",
            DatasetKind::MovieLens1M => "MovieLens-1M",
        }
    }

    /// The padded model input length this dataset is run with.
    #[must_use]
    pub const fn model_input_length(&self) -> usize {
        match self {
            DatasetKind::MovieLens1M => 200,
            _ => 512,
        }
    }

    /// The accuracy metric the paper reports for this dataset.
    #[must_use]
    pub const fn metric_name(&self) -> &'static str {
        match self {
            DatasetKind::SquadV11 | DatasetKind::SquadV20 => "F1",
            DatasetKind::Race | DatasetKind::Imdb => "accuracy",
            DatasetKind::MovieLens1M => "NDCG@10",
        }
    }

    /// Samples the number of real tokens for one example, clamped to
    /// `[16, model_input_length]`.
    #[must_use]
    pub fn sample_real_length(&self, rng: &mut SeededRng) -> usize {
        let n = self.model_input_length();
        let raw = match self {
            // Question+context: roughly normal around 190 with spread 70.
            DatasetKind::SquadV11 | DatasetKind::SquadV20 => rng.normal(190.0, 70.0),
            // RACE passages nearly always hit the truncation limit.
            DatasetKind::Race => rng.normal(505.0, 30.0),
            // Log-normal-ish review lengths, median ~230.
            DatasetKind::Imdb => (rng.normal(5.44, 0.55)).exp(),
            // Histories: uniform-ish 20..200 with a spike at the cap.
            DatasetKind::MovieLens1M => {
                if rng.bernoulli(0.35) {
                    n as f64
                } else {
                    rng.uniform_in(20.0, 200.0)
                }
            }
        };
        (raw.round() as usize).clamp(16, n)
    }

    /// Mean real length over many samples (used to sanity-check the
    /// samplers and by analytic speedup estimates).
    #[must_use]
    pub fn mean_real_length(&self, samples: usize, rng: &mut SeededRng) -> f64 {
        let total: usize = (0..samples).map(|_| self.sample_real_length(rng)).sum();
        total as f64 / samples as f64
    }
}

impl std::fmt::Display for DatasetKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_respect_bounds() {
        let mut rng = SeededRng::new(1);
        for ds in DatasetKind::all() {
            for _ in 0..200 {
                let len = ds.sample_real_length(&mut rng);
                assert!(len >= 16 && len <= ds.model_input_length(), "{ds}: {len}");
            }
        }
    }

    #[test]
    fn race_saturates_and_squad_does_not() {
        let mut rng = SeededRng::new(2);
        let race = DatasetKind::Race.mean_real_length(500, &mut rng);
        let squad = DatasetKind::SquadV11.mean_real_length(500, &mut rng);
        assert!(race > 450.0, "RACE mean {race}");
        assert!(squad < 300.0, "SQuAD mean {squad}");
        // This is why the paper's GPU-relative speedups are largest on
        // SQuAD (padding waste) and smallest on RACE.
        assert!(race > squad + 150.0);
    }

    #[test]
    fn imdb_median_near_230() {
        let mut rng = SeededRng::new(3);
        let mut lens: Vec<usize> =
            (0..1001).map(|_| DatasetKind::Imdb.sample_real_length(&mut rng)).collect();
        lens.sort_unstable();
        let median = lens[500];
        assert!((170..=300).contains(&median), "IMDB median {median}");
    }

    #[test]
    fn movielens_capped_at_200() {
        let mut rng = SeededRng::new(4);
        let mean = DatasetKind::MovieLens1M.mean_real_length(500, &mut rng);
        assert!((100.0..=190.0).contains(&mean), "ML mean {mean}");
    }

    #[test]
    fn metric_names() {
        assert_eq!(DatasetKind::SquadV11.metric_name(), "F1");
        assert_eq!(DatasetKind::MovieLens1M.metric_name(), "NDCG@10");
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<usize> = {
            let mut rng = SeededRng::new(9);
            (0..50).map(|_| DatasetKind::SquadV11.sample_real_length(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = SeededRng::new(9);
            (0..50).map(|_| DatasetKind::SquadV11.sample_real_length(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
