//! Simulator of the ELSA hardware accelerator (§IV of the paper).
//!
//! Three independent models, sharing the algorithm implementation from
//! `elsa-core`:
//!
//! * [`cycle`] — a **cycle-level performance model** of the pipeline in
//!   Fig. 7/Fig. 9: hash computation module, norm computation module,
//!   `P_c` candidate selection modules per bank, longest-queue-first
//!   arbitration into `P_a` attention computation modules, and the output
//!   division module. Per-query work is simulated with an explicit
//!   scan/queue/drain loop (not just the closed-form bound, which is kept
//!   alongside for validation).
//! * [`functional`] — a **bit-level functional model** of the quantized
//!   datapath of §IV-E: 9-bit fixed-point inputs, 6-bit hash matrices,
//!   LUT-based exp/reciprocal/square root, and the 16-bit custom float for
//!   everything downstream of the exponent unit. Used to reproduce the
//!   "<0.2% metric impact" claim (E11 in DESIGN.md).
//! * [`cost`] — an **area/power/energy model** calibrated against Table I,
//!   parameterized by the pipeline configuration so that the Fig. 13 energy
//!   results and ablations over `P_c`/`m_h`/`m_o` fall out of module counts
//!   rather than hard-coded totals.
//!
//! [`accelerator`] ties them together into an [`accelerator::ElsaAccelerator`]
//! that takes an attention invocation and reports output, cycles and energy.

#![deny(missing_docs)]
#![deny(missing_debug_implementations)]

pub mod accelerator;
pub mod arbiter;
pub mod config;
pub mod cost;
pub mod cycle;
pub mod fit;
pub mod functional;
pub mod timeline;

pub use accelerator::{ElsaAccelerator, RunReport};
pub use arbiter::{ArbiterPolicy, BankDrainReport};
pub use config::AcceleratorConfig;
pub use cost::{AreaPowerTable, EnergyBreakdown};
pub use cycle::CycleReport;
pub use fit::FitError;
pub use timeline::PipelineTimeline;
