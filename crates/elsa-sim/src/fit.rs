//! Typed operator/hardware misfit errors.
//!
//! The accelerator model historically panicked when a trained operator or an
//! incoming invocation did not fit the configured hardware. A production
//! serving stack cannot afford that: a single malformed request or a
//! mis-deployed operator must surface as a recoverable error the dispatcher
//! can route around (see `elsa-runtime` and `elsa-fault`). [`FitError`]
//! carries every way an operator, configuration, or invocation can fail to
//! fit; the panicking constructors remain as thin wrappers for callers that
//! have already validated their inputs.

use std::fmt;

/// Why an operator, configuration, or invocation does not fit the hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// The [`AcceleratorConfig`](crate::AcceleratorConfig) itself is
    /// internally inconsistent.
    Config {
        /// Human-readable description of the violated constraint.
        reason: &'static str,
    },
    /// The operator's head dimension differs from the hardware's `d`.
    OperatorDim {
        /// Head dimension the operator was trained for.
        operator_d: usize,
        /// Head dimension the hardware is configured for.
        hardware_d: usize,
    },
    /// The operator's hash length differs from the hardware's `k`.
    OperatorHashLength {
        /// Hash length the operator was trained for.
        operator_k: usize,
        /// Hash length the hardware is configured for.
        hardware_k: usize,
    },
    /// An invocation has more keys than the memories are sized for.
    RequestTooLarge {
        /// Number of keys in the invocation.
        n: usize,
        /// Maximum number of entities the hardware supports.
        n_max: usize,
    },
    /// An invocation's head dimension differs from the configured `d`.
    RequestDim {
        /// Head dimension of the invocation.
        input_d: usize,
        /// Head dimension the hardware is configured for.
        hardware_d: usize,
    },
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            FitError::Config { reason } => write!(f, "invalid accelerator config: {reason}"),
            FitError::OperatorDim { operator_d, hardware_d } => write!(
                f,
                "operator d = {operator_d} does not fit hardware d = {hardware_d}"
            ),
            FitError::OperatorHashLength { operator_k, hardware_k } => write!(
                f,
                "operator k = {operator_k} does not fit hardware k = {hardware_k}"
            ),
            FitError::RequestTooLarge { n, n_max } => {
                write!(f, "invocation n = {n} exceeds hardware n_max = {n_max}")
            }
            FitError::RequestDim { input_d, hardware_d } => write!(
                f,
                "head dimension mismatch: invocation d = {input_d}, hardware d = {hardware_d}"
            ),
        }
    }
}

impl std::error::Error for FitError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_keep_legacy_phrases() {
        // The panicking wrappers format these errors, so the historical
        // panic substrings (relied on by should_panic tests downstream)
        // must survive in the Display output.
        let too_large = FitError::RequestTooLarge { n: 1024, n_max: 512 };
        assert!(too_large.to_string().contains("exceeds hardware n_max"));
        let banks = FitError::Config { reason: "n_max must divide into P_a banks" };
        assert!(banks.to_string().contains("banks"));
        let dim = FitError::RequestDim { input_d: 32, hardware_d: 64 };
        assert!(dim.to_string().contains("head dimension mismatch"));
    }

    #[test]
    fn error_trait_object_safe() {
        let e: Box<dyn std::error::Error> =
            Box::new(FitError::OperatorDim { operator_d: 32, hardware_d: 64 });
        assert!(e.to_string().contains("does not fit hardware"));
    }
}
