//! Detailed selection-queue / arbiter model (§IV-C).
//!
//! The coarse bank model in [`crate::cycle`] treats each bank's `P_c`
//! selection modules as one combined scanner feeding an unbounded queue.
//! This module models the microarchitecture the paper actually describes:
//! each candidate selection module owns a **finite output queue**, the keys
//! of a bank are striped across the modules, and an **arbiter** forwards one
//! candidate per cycle to the bank's attention computation module using the
//! *longest-queue-first* policy. A module whose queue is full stalls its
//! scan (backpressure), which is how a finite queue can cost cycles when
//! candidates arrive in bursts.
//!
//! With deep queues this model converges to the coarse one — a property the
//! test-suite checks — so the coarse model remains the default for sweeps
//! and this one is used for the arbiter ablation.

/// Arbitration policy for draining the selection-module queues.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArbiterPolicy {
    /// Pick the module with the most queued candidates (the paper's policy).
    LongestQueueFirst,
    /// Rotate over modules regardless of occupancy (ablation baseline).
    RoundRobin,
}

/// Result of one detailed bank-drain simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankDrainReport {
    /// Cycle at which the attention module consumed the last candidate
    /// (or the scan finished, whichever is later).
    pub finish_cycle: u64,
    /// Total scan-stall cycles across all selection modules (queue full).
    pub stall_cycles: u64,
    /// Maximum queue occupancy observed across modules.
    pub max_occupancy: usize,
}

/// Simulates one query's drain through one bank with explicit per-module
/// queues.
///
/// * `p_c` — number of selection modules in the bank;
/// * `bank_keys` — keys stored in the bank;
/// * `candidate_positions` — sorted within-bank scan positions of the keys
///   that pass the threshold;
/// * `queue_depth` — per-module output queue capacity (entries);
/// * `policy` — arbitration policy.
///
/// Keys are striped: module `m` scans positions `m, m + P_c, m + 2·P_c, …`
/// (one key per module per cycle, so the bank examines `P_c` keys/cycle
/// when no queue is full).
///
/// # Panics
///
/// Panics if `p_c == 0` or `queue_depth == 0`, or positions are not sorted
/// strictly increasing / in range.
#[must_use]
pub fn simulate_bank_drain_queued(
    p_c: usize,
    bank_keys: usize,
    candidate_positions: &[usize],
    queue_depth: usize,
    policy: ArbiterPolicy,
) -> BankDrainReport {
    assert!(p_c > 0, "at least one selection module required");
    assert!(queue_depth > 0, "queues must hold at least one entry");
    assert!(
        candidate_positions.windows(2).all(|w| w[0] < w[1]),
        "candidate positions must be sorted strictly increasing"
    );
    if let Some(&last) = candidate_positions.last() {
        assert!(last < bank_keys, "candidate position out of range");
    }
    // Membership bitmap for O(1) candidate lookup during the scan.
    let mut is_candidate = vec![false; bank_keys];
    for &p in candidate_positions {
        is_candidate[p] = true;
    }
    // Per-module scan cursors (next stripe index) and queues (counts only —
    // the IDs don't affect timing).
    let mut next_stripe = vec![0usize; p_c];
    let mut queue = vec![0usize; p_c];
    let mut consumed = 0usize;
    let total = candidate_positions.len();
    let mut scanned = 0usize;
    let mut stalls = 0u64;
    let mut max_occ = 0usize;
    let mut rr_cursor = 0usize;
    let mut cycle = 0u64;
    // Upper bound prevents infinite loops on modelling bugs.
    let bound = 4 * (bank_keys as u64 + total as u64) + 16;
    while (consumed < total || scanned < bank_keys) && cycle < bound {
        cycle += 1;
        // Phase 1: each module examines its next key unless its queue is full.
        for m in 0..p_c {
            let pos = next_stripe[m] * p_c + m;
            if pos >= bank_keys {
                continue; // this module finished its stripe
            }
            if queue[m] >= queue_depth {
                stalls += 1;
                continue; // backpressure
            }
            next_stripe[m] += 1;
            scanned += 1;
            if is_candidate[pos] {
                queue[m] += 1;
                max_occ = max_occ.max(queue[m]);
            }
        }
        // Phase 2: the arbiter forwards one candidate to the attention module.
        let pick = match policy {
            ArbiterPolicy::LongestQueueFirst => (0..p_c)
                .filter(|&m| queue[m] > 0)
                .max_by_key(|&m| queue[m]),
            ArbiterPolicy::RoundRobin => {
                let found = (0..p_c)
                    .map(|i| (rr_cursor + i) % p_c)
                    .find(|&m| queue[m] > 0);
                if let Some(m) = found {
                    rr_cursor = (m + 1) % p_c;
                }
                found
            }
        };
        if let Some(m) = pick {
            queue[m] -= 1;
            consumed += 1;
        }
    }
    debug_assert!(cycle < bound, "arbiter simulation failed to converge");
    BankDrainReport { finish_cycle: cycle, stall_cycles: stalls, max_occupancy: max_occ }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cycle::simulate_bank_drain;

    const DEEP: usize = 1 << 16;

    #[test]
    fn deep_queues_match_coarse_model_on_dense_candidates() {
        let all: Vec<usize> = (0..128).collect();
        let detailed =
            simulate_bank_drain_queued(8, 128, &all, DEEP, ArbiterPolicy::LongestQueueFirst);
        let coarse = simulate_bank_drain(8, 128, &all);
        assert_eq!(detailed.finish_cycle, coarse);
        assert_eq!(detailed.stall_cycles, 0);
    }

    #[test]
    fn deep_queues_match_coarse_model_on_sparse_candidates() {
        let sparse = vec![0usize, 40, 80, 120];
        let detailed =
            simulate_bank_drain_queued(8, 128, &sparse, DEEP, ArbiterPolicy::LongestQueueFirst);
        let coarse = simulate_bank_drain(8, 128, &sparse);
        assert_eq!(detailed.finish_cycle, coarse);
    }

    #[test]
    fn empty_candidates_take_scan_time() {
        let r = simulate_bank_drain_queued(8, 128, &[], DEEP, ArbiterPolicy::LongestQueueFirst);
        assert_eq!(r.finish_cycle, 16);
        assert_eq!(r.max_occupancy, 0);
    }

    #[test]
    fn shallow_queues_cause_stalls_on_bursts() {
        // Every key is a candidate: with depth 1 the modules stall because
        // the attention module drains only one of eight queues per cycle.
        let all: Vec<usize> = (0..128).collect();
        let shallow =
            simulate_bank_drain_queued(8, 128, &all, 1, ArbiterPolicy::LongestQueueFirst);
        let deep = simulate_bank_drain_queued(8, 128, &all, DEEP, ArbiterPolicy::LongestQueueFirst);
        assert!(shallow.stall_cycles > 0);
        // Dense drains are attention-bound either way: finish time equal.
        assert_eq!(shallow.finish_cycle, deep.finish_cycle);
        assert!(shallow.max_occupancy <= 1);
    }

    #[test]
    fn queue_depth_never_helps_beyond_candidate_count() {
        let cands = vec![3usize, 5, 9, 17, 33, 65];
        let d2 = simulate_bank_drain_queued(8, 128, &cands, 2, ArbiterPolicy::LongestQueueFirst);
        let d8 = simulate_bank_drain_queued(8, 128, &cands, 8, ArbiterPolicy::LongestQueueFirst);
        assert!(d8.finish_cycle <= d2.finish_cycle);
    }

    #[test]
    fn round_robin_no_worse_than_lqf_plus_pc() {
        // Fairness bound: with identical arrivals the two policies differ by
        // at most a rotation (they drain one candidate per cycle either way).
        let cands: Vec<usize> = (0..64).map(|i| i * 2).collect();
        let lqf = simulate_bank_drain_queued(8, 128, &cands, 4, ArbiterPolicy::LongestQueueFirst);
        let rr = simulate_bank_drain_queued(8, 128, &cands, 4, ArbiterPolicy::RoundRobin);
        assert!(rr.finish_cycle <= lqf.finish_cycle + 8);
        assert!(lqf.finish_cycle <= rr.finish_cycle + 8);
    }

    #[test]
    fn lqf_bounds_max_occupancy_better_than_rr() {
        // Skewed arrivals: all candidates on module 0's stripe. LQF drains
        // the hot queue every cycle, so its occupancy stays low.
        let cands: Vec<usize> = (0..16).map(|i| i * 8).collect(); // stripe of module 0
        let lqf = simulate_bank_drain_queued(8, 128, &cands, DEEP, ArbiterPolicy::LongestQueueFirst);
        let rr = simulate_bank_drain_queued(8, 128, &cands, DEEP, ArbiterPolicy::RoundRobin);
        assert!(lqf.max_occupancy <= rr.max_occupancy);
    }

    #[test]
    #[should_panic(expected = "sorted strictly increasing")]
    fn rejects_unsorted_positions() {
        let _ = simulate_bank_drain_queued(4, 16, &[5, 3], 4, ArbiterPolicy::LongestQueueFirst);
    }
}
